package dut

// The benchmark harness: one testing.B benchmark per experiment of the
// reproduction (DESIGN.md section 3), each regenerating its table at a
// reduced scale per iteration, plus micro-benchmarks of the load-bearing
// primitives (Walsh-Hadamard transform, samplers, collision counting, the
// Lemma 4.1 evaluator, a full networked round). Run
//
//	go test -bench=. -benchmem
//
// for the harness, and cmd/dut-bench for the full-scale tables written to
// results/ and quoted in EXPERIMENTS.md.

import (
	"context"
	"testing"

	"github.com/distributed-uniformity/dut/internal/boolfn"
	"github.com/distributed-uniformity/dut/internal/centralized"
	"github.com/distributed-uniformity/dut/internal/congest"
	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/experiments"
	"github.com/distributed-uniformity/dut/internal/lowerbound"
	"github.com/distributed-uniformity/dut/internal/network"
)

// benchScale keeps per-iteration experiment runs short; the shapes the
// experiments report are unaffected, only the Monte-Carlo noise grows.
const benchScale = 0.05

func benchmarkExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := experiments.Config{Scale: benchScale, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// One benchmark per experiment (tables/figures stand-ins; see DESIGN.md).

func BenchmarkE1ArbitraryRule(b *testing.B)  { benchmarkExperiment(b, "E1") }
func BenchmarkE2ANDRule(b *testing.B)        { benchmarkExperiment(b, "E2") }
func BenchmarkE3SmallThreshold(b *testing.B) { benchmarkExperiment(b, "E3") }
func BenchmarkE4Learning(b *testing.B)       { benchmarkExperiment(b, "E4") }
func BenchmarkE5Centralized(b *testing.B)    { benchmarkExperiment(b, "E5") }
func BenchmarkE6Lemma42(b *testing.B)        { benchmarkExperiment(b, "E6") }
func BenchmarkE7Lemma43(b *testing.B)        { benchmarkExperiment(b, "E7") }
func BenchmarkE8Lemma44(b *testing.B)        { benchmarkExperiment(b, "E8") }
func BenchmarkE9EvenCover(b *testing.B)      { benchmarkExperiment(b, "E9") }
func BenchmarkE10FourierForm(b *testing.B)   { benchmarkExperiment(b, "E10") }
func BenchmarkE11BitLength(b *testing.B)     { benchmarkExperiment(b, "E11") }
func BenchmarkE12Asymmetric(b *testing.B)    { benchmarkExperiment(b, "E12") }
func BenchmarkE13ANDOneSample(b *testing.B)  { benchmarkExperiment(b, "E13") }
func BenchmarkE14Divergence(b *testing.B)    { benchmarkExperiment(b, "E14") }
func BenchmarkE15KKL(b *testing.B)           { benchmarkExperiment(b, "E15") }

// Micro-benchmarks: the primitives the experiments spend their time in,
// and the ablation comparisons called out in DESIGN.md section 4.

func BenchmarkWHT(b *testing.B) {
	for _, m := range []int{10, 16, 20} {
		b.Run(benchName("m", m), func(b *testing.B) {
			f, err := boolfn.RandomReal(m, NewRand(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spec := boolfn.Transform(f)
				if spec.Len() != f.Len() {
					b.Fatal("bad transform")
				}
			}
		})
	}
}

func BenchmarkCoeffNaiveVsWHT(b *testing.B) {
	// The ablation oracle: naive character inner products, per coefficient.
	const m = 12
	f, err := boolfn.RandomReal(m, NewRand(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := boolfn.CoeffNaive(f, uint64(i)%uint64(f.Len())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSamplers(b *testing.B) {
	zipf, err := dist.Zipf(1<<14, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("alias", func(b *testing.B) {
		s, err := dist.NewAliasSampler(zipf)
		if err != nil {
			b.Fatal(err)
		}
		rng := NewRand(3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = s.Sample(rng)
		}
	})
	b.Run("cdf", func(b *testing.B) {
		s, err := dist.NewCDFSampler(zipf)
		if err != nil {
			b.Fatal(err)
		}
		rng := NewRand(3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = s.Sample(rng)
		}
	})
}

func BenchmarkCollisionCount(b *testing.B) {
	const n = 1 << 12
	q := centralized.RecommendedSamples(n, 0.5)
	u, err := dist.Uniform(n)
	if err != nil {
		b.Fatal(err)
	}
	s, err := dist.NewAliasSampler(u)
	if err != nil {
		b.Fatal(err)
	}
	samples := dist.SampleN(s, q, NewRand(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := centralized.CollisionCount(samples, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiffEvaluator(b *testing.B) {
	in, err := lowerbound.NewInstance(3, 4, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	g, err := lowerbound.RandomStrategy(in, 0.4, NewRand(5))
	if err != nil {
		b.Fatal(err)
	}
	e, err := lowerbound.NewDiffEvaluator(in, g)
	if err != nil {
		b.Fatal(err)
	}
	z, err := dist.RandomPerturbation(in.Ell, NewRand(6))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fourier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Diff(z); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := in.NuZDirect(g, z); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSMPRound(b *testing.B) {
	const (
		n   = 1 << 12
		k   = 16
		eps = 0.5
	)
	q := core.RecommendedThresholdSamples(n, k, eps)
	p, err := core.NewThresholdTester(core.ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		b.Fatal(err)
	}
	u, err := dist.Uniform(n)
	if err != nil {
		b.Fatal(err)
	}
	s, err := dist.NewAliasSampler(u)
	if err != nil {
		b.Fatal(err)
	}
	rng := NewRand(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(s, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetworkedRound(b *testing.B) {
	const (
		n   = 1 << 10
		k   = 8
		eps = 0.5
	)
	q := core.RecommendedThresholdSamples(n, k, eps)
	smp, err := core.NewThresholdTester(core.ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		b.Fatal(err)
	}
	cluster, err := network.NewCluster(network.ClusterConfig{
		K: k, Q: q,
		Rule:    smp.Local(),
		Referee: core.BitReferee{Rule: core.ThresholdRule{T: core.DefaultThresholdT(k)}},
	})
	if err != nil {
		b.Fatal(err)
	}
	u, err := dist.Uniform(n)
	if err != nil {
		b.Fatal(err)
	}
	s, err := dist.NewAliasSampler(u)
	if err != nil {
		b.Fatal(err)
	}
	rng := NewRand(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(s, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func BenchmarkE16MultiBit(b *testing.B) { benchmarkExperiment(b, "E16") }
func BenchmarkE17Ablation(b *testing.B) { benchmarkExperiment(b, "E17") }
func BenchmarkE18CONGEST(b *testing.B)  { benchmarkExperiment(b, "E18") }

func BenchmarkCONGESTRound(b *testing.B) {
	const (
		n   = 1 << 10
		k   = 16
		eps = 0.5
	)
	q := core.RecommendedThresholdSamples(n, k, eps)
	smp, err := core.NewThresholdTester(core.ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		b.Fatal(err)
	}
	g, err := congest.Grid(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	tester, err := congest.NewTester(congest.TesterConfig{
		Graph: g, Root: 0, Q: q, Rule: smp.Local(), T: core.DefaultThresholdT(k),
	})
	if err != nil {
		b.Fatal(err)
	}
	u, err := dist.Uniform(n)
	if err != nil {
		b.Fatal(err)
	}
	s, err := dist.NewAliasSampler(u)
	if err != nil {
		b.Fatal(err)
	}
	rng := NewRand(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tester.Run(s, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionAmortization(b *testing.B) {
	// Single-round clusters pay connection setup per verdict; sessions
	// amortize it over many rounds.
	const (
		n      = 1 << 10
		k      = 8
		eps    = 0.5
		rounds = 16
	)
	q := core.RecommendedThresholdSamples(n, k, eps)
	smp, err := core.NewThresholdTester(core.ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		b.Fatal(err)
	}
	u, err := dist.Uniform(n)
	if err != nil {
		b.Fatal(err)
	}
	s, err := dist.NewAliasSampler(u)
	if err != nil {
		b.Fatal(err)
	}
	mkCluster := func() *network.Cluster {
		c, err := network.NewCluster(network.ClusterConfig{
			K: k, Q: q,
			Rule:    smp.Local(),
			Referee: core.BitReferee{Rule: core.ThresholdRule{T: core.DefaultThresholdT(k)}},
		})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	b.Run("single-rounds", func(b *testing.B) {
		c := mkCluster()
		rng := NewRand(10)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < rounds; r++ {
				if _, err := c.Run(s, rng); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("session", func(b *testing.B) {
		c := mkCluster()
		rng := NewRand(10)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.RunMany(context.Background(), s, rng, rounds); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE19Transfer(b *testing.B)       { benchmarkExperiment(b, "E19") }
func BenchmarkE20ExactProtocols(b *testing.B) { benchmarkExperiment(b, "E20") }
func BenchmarkE21RBitDecay(b *testing.B)      { benchmarkExperiment(b, "E21") }
func BenchmarkE22ShardedScale(b *testing.B)   { benchmarkExperiment(b, "E22") }
