package dut

import (
	"context"
	"testing"
)

func TestTestUniformityAcceptsUniform(t *testing.T) {
	const (
		n   = 256
		eps = 0.5
	)
	u, err := Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(u)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(1)
	q := RecommendedSamples(n, eps)
	accepts := 0
	const runs = 30
	for i := 0; i < runs; i++ {
		samples := make([]int, q)
		for j := range samples {
			samples[j] = s.Sample(rng)
		}
		ok, err := TestUniformity(samples, n, eps)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			accepts++
		}
	}
	if accepts < runs*2/3 {
		t.Errorf("accepted uniform only %d/%d times", accepts, runs)
	}
}

func TestTestUniformityRejectsFar(t *testing.T) {
	const (
		n   = 256
		eps = 0.5
	)
	far, err := PairedBump(n, eps)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(far)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(2)
	q := RecommendedSamples(n, eps)
	rejects := 0
	const runs = 30
	for i := 0; i < runs; i++ {
		samples := make([]int, q)
		for j := range samples {
			samples[j] = s.Sample(rng)
		}
		ok, err := TestUniformity(samples, n, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			rejects++
		}
	}
	if rejects < runs*2/3 {
		t.Errorf("rejected far distribution only %d/%d times", rejects, runs)
	}
}

func TestTestUniformityValidation(t *testing.T) {
	if _, err := TestUniformity(nil, 4, 0.5); err == nil {
		t.Error("empty sample batch accepted")
	}
	if _, err := TestUniformity([]int{0, 9}, 4, 0.5); err == nil {
		t.Error("out-of-domain sample accepted")
	}
}

func TestFacadeDistributedRound(t *testing.T) {
	// End-to-end through the public API only: build a tester, estimate
	// acceptance, compare to the theorem floor.
	const (
		n   = 1024
		k   = 16
		eps = 0.5
	)
	q := RecommendedThresholdSamples(n, k, eps)
	p, err := NewThresholdTester(ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	u, err := Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	far, err := PairedBump(n, eps)
	if err != nil {
		t.Fatal(err)
	}
	ok, pNull, pFar, err := Separates(p, u, far, 2.0/3, 200, EstimateOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("threshold tester failed to separate: accept(U)=%v accept(far)=%v", pNull, pFar)
	}
	floor, err := LowerBoundSamples(n, k, eps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if float64(q) < floor {
		t.Errorf("recommended q=%d below the Theorem 6.1 floor %v", q, floor)
	}
}

func TestFacadeNetworkedCluster(t *testing.T) {
	const (
		n   = 256
		k   = 4
		eps = 0.5
	)
	q := RecommendedThresholdSamples(n, k, eps)
	smp, err := NewThresholdTester(ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(ClusterConfig{
		K: k, Q: q,
		Rule:    smp.Local(),
		Referee: BitReferee{Rule: ThresholdRule{T: DefaultThresholdT(k)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(u)
	if err != nil {
		t.Fatal(err)
	}
	accepts := 0
	rng := NewRand(4)
	for i := 0; i < 10; i++ {
		ok, err := cluster.Run(s, rng)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			accepts++
		}
	}
	if accepts < 7 {
		t.Errorf("networked cluster accepted uniform only %d/10 rounds", accepts)
	}
}

func TestFacadeHardFamily(t *testing.T) {
	h, err := NewHardFamily(5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	nu, z, err := h.RandomPerturbed(NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(z) != h.CubeSize() {
		t.Errorf("perturbation length %d", len(z))
	}
	if d := DistanceFromUniform(nu); d < 0.499 || d > 0.501 {
		t.Errorf("hard instance distance %v, want 0.5", d)
	}
}

func TestFacadeIdentityTester(t *testing.T) {
	target, err := Zipf(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := RecommendedSamples(256, 0.25)
	tester, err := NewIdentityTester(target, q, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(target)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(7)
	accepts := 0
	for i := 0; i < 20; i++ {
		samples := make([]int, q)
		for j := range samples {
			samples[j] = s.Sample(rng)
		}
		ok, err := tester.Test(samples)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			accepts++
		}
	}
	if accepts < 13 {
		t.Errorf("identity tester accepted its own target only %d/20 times", accepts)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(9), NewRand(9)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds diverged")
		}
	}
}

func TestLowerBoundFormulasExposed(t *testing.T) {
	if v, err := ANDRuleLowerBound(1<<12, 64, 0.5, 1); err != nil || v <= 0 {
		t.Errorf("ANDRuleLowerBound: %v, %v", v, err)
	}
	if v, err := ThresholdRuleLowerBound(1<<12, 64, 4, 0.5, 1); err != nil || v <= 0 {
		t.Errorf("ThresholdRuleLowerBound: %v, %v", v, err)
	}
	if v, err := LearningLowerBound(100, 10, 1); err != nil || v != 100 {
		t.Errorf("LearningLowerBound: %v, %v", v, err)
	}
	if v, err := MultiBitLowerBound(1<<12, 64, 2, 0.5, 1); err != nil || v <= 0 {
		t.Errorf("MultiBitLowerBound: %v, %v", v, err)
	}
	if v, err := AsymmetricDeadlineLowerBound(1<<12, []float64{1, 2}, 0.5, 1); err != nil || v <= 0 {
		t.Errorf("AsymmetricDeadlineLowerBound: %v, %v", v, err)
	}
}

func TestFacadeCONGESTTester(t *testing.T) {
	const (
		n   = 256
		k   = 9
		eps = 0.5
	)
	grid, err := GridGraph(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := RecommendedThresholdSamples(n, k, eps)
	smp, err := NewThresholdTester(ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	tester, err := NewCONGESTTester(CONGESTTesterConfig{
		Graph: grid, Root: 0, Q: q, Rule: smp.Local(), T: DefaultThresholdT(k),
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(u)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(31)
	accepts := 0
	for i := 0; i < 10; i++ {
		ok, err := tester.Run(s, rng)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			accepts++
		}
	}
	if accepts < 7 {
		t.Errorf("CONGEST tester accepted uniform only %d/10 rounds", accepts)
	}
	if tester.LastRounds() < grid.Diameter() {
		t.Errorf("rounds %d below diameter %d", tester.LastRounds(), grid.Diameter())
	}
	tree, err := RandomTreeGraph(12, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tree.N() != 12 || !tree.Connected() {
		t.Error("random tree builder broken through the facade")
	}
}

func TestFacadeSessionRunMany(t *testing.T) {
	const (
		n   = 256
		k   = 4
		eps = 0.5
	)
	q := RecommendedThresholdSamples(n, k, eps)
	smp, err := NewThresholdTester(ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(ClusterConfig{
		K: k, Q: q,
		Rule:    smp.Local(),
		Referee: BitReferee{Rule: ThresholdRule{T: DefaultThresholdT(k)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(u)
	if err != nil {
		t.Fatal(err)
	}
	verdicts, err := cluster.RunMany(context.Background(), s, NewRand(41), 9)
	if err != nil {
		t.Fatal(err)
	}
	maj, err := MajorityVerdict(verdicts)
	if err != nil {
		t.Fatal(err)
	}
	if !maj {
		t.Errorf("majority rejected uniform input: %v", verdicts)
	}
}

func TestFacadeEngine(t *testing.T) {
	const (
		n   = 256
		k   = 8
		eps = 0.5
	)
	tester, err := NewThresholdTester(ThresholdTesterConfig{
		N: n, K: k, Q: RecommendedThresholdSamples(n, k, eps), Eps: eps,
	})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := BackendFor(tester)
	if err != nil {
		t.Fatal(err)
	}
	if backend.Players() != k {
		t.Fatalf("Players() = %d, want %d", backend.Players(), k)
	}
	eng, err := NewEngine(backend, EngineOptions{Seed: 17, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	u, err := Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	far, err := PairedBump(n, eps)
	if err != nil {
		t.Fatal(err)
	}
	nullSrc, err := DistSource(u)
	if err != nil {
		t.Fatal(err)
	}
	farSrc, err := DistSource(far)
	if err != nil {
		t.Fatal(err)
	}
	sep, err := eng.Separates(context.Background(), nullSrc, farSrc, 2.0/3, 300)
	if err != nil {
		t.Fatal(err)
	}
	if sep.Outcome != Separated {
		t.Fatalf("threshold tester at recommended q: outcome %v (null %.3f, far %.3f)",
			sep.Outcome, sep.Null.Estimate.P, sep.Far.Estimate.P)
	}
	// The same seed through the engine twice must reproduce the verdict
	// sequence exactly.
	r1, err := eng.Run(context.Background(), nullSrc, 20)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Run(context.Background(), nullSrc, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].Verdict != r2[i].Verdict {
			t.Fatalf("trial %d: verdicts differ across identical runs", i)
		}
	}
}
