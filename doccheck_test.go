package dut

// A documentation quality gate: every exported identifier in every library
// package must carry a doc comment. This keeps the "doc comments on every
// public item" deliverable enforced by CI rather than by review.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllExportedIdentifiersDocumented(t *testing.T) {
	var missing []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "examples" || name == "results" || name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range file.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc == nil {
					missing = append(missing, path+": func "+dd.Name.Name)
				}
			case *ast.GenDecl:
				groupDocumented := dd.Doc != nil
				for _, spec := range dd.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && !groupDocumented && sp.Doc == nil && sp.Comment == nil {
							missing = append(missing, path+": type "+sp.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range sp.Names {
							if name.IsExported() && !groupDocumented && sp.Doc == nil && sp.Comment == nil {
								missing = append(missing, path+": value "+name.Name)
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Errorf("exported identifier without doc comment: %s", m)
	}
}
