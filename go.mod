module github.com/distributed-uniformity/dut

go 1.22
