# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

.PHONY: all build vet test test-short test-race cover bench verify results clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

vet:
	$(GO) vet ./...

# The default test target vets everything and additionally runs the
# network package (goroutine-heavy: referee, nodes, chaos suite) under
# the race detector.
test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/network/...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# The benchmark harness: one testing.B benchmark per experiment plus
# micro-benchmarks. See bench_output.txt for a recorded run.
bench:
	$(GO) test -bench=. -benchmem ./...

# Numeric verification of every lemma/claim (exhaustive small instances).
verify:
	$(GO) run ./cmd/dut-verify

# Regenerate every experiment table quoted in EXPERIMENTS.md.
results:
	$(GO) run ./cmd/dut-bench -scale 1 -seed 1 -out results -csv

clean:
	rm -f test_output.txt bench_output.txt
