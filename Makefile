# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

# bench regression gate: percent of trials/sec a benchmark may lose vs
# the committed BENCH_engine.json before `make bench` fails; 0 disables.
BENCH_MAX_REGRESS ?= 0

.PHONY: all build vet staticcheck lint test test-short test-race cover bench bench-all verify results clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet, gated on the binary being installed: the
# target is a no-op (with a note) where staticcheck is unavailable, so
# `make test` works on a bare Go toolchain. In CI (CI=1) a missing
# binary is an error instead of a note, so the pipeline cannot silently
# skip the check.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ -n "$$CI" ]; then \
		echo "staticcheck not installed but CI is set; failing (go install honnef.co/go/tools/cmd/staticcheck@latest)" >&2; \
		exit 1; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# The repo's own contract analyzers (stdlib-only, no tool install
# needed): determinism, scratch aliasing, float equality, frame
# discipline, context propagation, and seed purity. See README "Static
# analysis" and DESIGN.md section 7.
lint:
	$(GO) run ./cmd/dutlint ./...

# The default test target vets everything, runs staticcheck when
# available, and additionally runs the concurrency-heavy packages (the
# networked referee/nodes and the engine's worker-pool driver) under the
# race detector. The plain pass includes the allocation guards
# (dist.SampleInto, engine.ReusableRNG, and the SMP scratch hot path);
# they skip themselves in the race pass, whose instrumentation allocates.
test: vet staticcheck lint
	$(GO) test ./...
	$(GO) test -race ./internal/network/... ./internal/engine/...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Engine throughput: trials/sec per backend (SMP, cluster, CONGEST)
# under the unified driver, distilled into BENCH_engine.json. The
# committed report is read first and per-benchmark deltas (trials/sec,
# B/op, allocs/op) are printed before it is overwritten.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/engine | tee bench_engine.txt
	$(GO) run ./cmd/benchjson -baseline BENCH_engine.json -o BENCH_engine.json -max-regress $(BENCH_MAX_REGRESS) < bench_engine.txt
	@echo "wrote BENCH_engine.json"

# Every benchmark in the repository (experiments + micro-benchmarks).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Numeric verification of every lemma/claim (exhaustive small instances).
verify:
	$(GO) run ./cmd/dut-verify

# Regenerate every experiment table quoted in EXPERIMENTS.md.
results:
	$(GO) run ./cmd/dut-bench -scale 1 -seed 1 -out results -csv

clean:
	rm -f test_output.txt bench_output.txt bench_engine.txt
