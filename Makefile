# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

# bench regression gate: percent the gated metric may regress vs the
# committed BENCH_engine.json before `make bench` fails; 0 disables.
BENCH_MAX_REGRESS ?= 0
# Metric the gate compares: trials_per_sec (a drop fails) or
# allocs_per_op (an increase fails; deterministic, so the right choice
# on noisy shared runners).
BENCH_REGRESS_METRIC ?= trials_per_sec
# Batch geometry of the engine benchmarks: trials per wire frame and
# batches in flight. Empty uses the in-tree defaults (256/4); 0 turns
# batching off and benches the classic per-trial protocol.
BENCH_BATCH ?=
BENCH_WINDOW ?=
# Per-benchmark time budget passed to `go test -benchtime`, e.g. 2s or
# 5000x for a fixed trial count (what CI uses for stable allocs/op).
BENCH_TIME ?= 1s

.PHONY: all build vet staticcheck govulncheck lint lint-json lint-escape test test-short test-race cover bench bench-all bench-history verify results clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet, gated on the binary being installed: the
# target is a no-op (with a note) where staticcheck is unavailable, so
# `make test` works on a bare Go toolchain. In CI (CI=1) a missing
# binary is an error instead of a note, so the pipeline cannot silently
# skip the check.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ -n "$$CI" ]; then \
		echo "staticcheck not installed but CI is set; failing (go install honnef.co/go/tools/cmd/staticcheck@latest)" >&2; \
		exit 1; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Known-vulnerability scan, gated like staticcheck: a no-op note where
# govulncheck is unavailable, a hard failure under CI=1 so the pipeline
# cannot silently skip it.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	elif [ -n "$$CI" ]; then \
		echo "govulncheck not installed but CI is set; failing (go install golang.org/x/vuln/cmd/govulncheck@latest)" >&2; \
		exit 1; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# The repo's own contract analyzers (stdlib-only, no tool install
# needed): determinism, scratch aliasing, float equality, frame
# discipline, context propagation, seed purity, and the call-graph-aware
# hot-path rules (alloc-freedom, atomic discipline, goroutine joins,
# wire exhaustiveness). One invocation runs every rule over every
# package against a single cached call-graph Program — the load and
# graph cost is paid once, and the total analysis wall time prints on
# stderr. See README "Static analysis" and DESIGN.md sections 7 and 12.
lint:
	$(GO) run ./cmd/dutlint ./...

# Machine-readable findings (suppressed included, marked) for CI
# artifact upload.
lint-json:
	$(GO) run ./cmd/dutlint -json ./... > dutlint.json

# Compiler escape-analysis diff: every heap escape `go build
# -gcflags=-m=2` reports inside a //dut:hotpath-reachable function must
# be flagged by dut/hotalloc, covered by a documented //lint:ignore, or
# sit in a cold or guarded-grow block. Fails when the compiler sees an
# allocation the analyzer has no account of.
lint-escape:
	$(GO) run ./cmd/dutlint -escape ./...

# The default test target vets everything, runs staticcheck when
# available, and additionally runs the concurrency-heavy packages (the
# networked referee/nodes and the engine's worker-pool driver) under the
# race detector. That race pass covers the cross-topology determinism
# tests — flat star vs sharded referee tree on a fixed small budget
# (engine/crosstopology_test.go, network/sharded_test.go) — so a data
# race anywhere on the aggregation path fails CI. The plain pass
# includes the allocation guards (dist.SampleInto, engine.ReusableRNG,
# the SMP scratch hot path, and the L1 reduce/root decide path); they
# skip themselves in the race pass, whose instrumentation allocates.
# dutlint runs once here: all ten rules share one cached load and call
# graph per invocation, so splitting rules across targets would re-pay
# the load cost per rule for nothing.
test: vet staticcheck lint lint-escape
	$(GO) test ./...
	$(GO) test -race ./internal/network/... ./internal/engine/...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Engine throughput: trials/sec per backend (SMP, cluster, CONGEST)
# under the unified driver, distilled into BENCH_engine.json. The
# committed report is read first and per-benchmark deltas (trials/sec,
# B/op, allocs/op) are printed before it is overwritten. BENCH_BATCH /
# BENCH_WINDOW select the wire batch geometry, BENCH_TIME the benchtime,
# and BENCH_MAX_REGRESS / BENCH_REGRESS_METRIC the regression gate.
bench:
	BENCH_BATCH=$(BENCH_BATCH) BENCH_WINDOW=$(BENCH_WINDOW) \
		$(GO) test -bench . -benchmem -benchtime $(BENCH_TIME) -run '^$$' ./internal/engine | tee bench_engine.txt
	$(GO) run ./cmd/benchjson -baseline BENCH_engine.json -o BENCH_engine.json \
		-max-regress $(BENCH_MAX_REGRESS) -regress-metric $(BENCH_REGRESS_METRIC) < bench_engine.txt
	@echo "wrote BENCH_engine.json"
	@mkdir -p results/bench
	@sha="$$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"; \
	dirty=""; \
	if [ -n "$$(git status --porcelain -- . ':!BENCH_engine.json' ':!bench_engine.txt' ':!results' 2>/dev/null)" ]; then dirty="-dirty"; fi; \
	cp BENCH_engine.json "results/bench/$$sha$$dirty.json"; \
	echo "archived results/bench/$$sha$$dirty.json"

# Every benchmark in the repository (experiments + micro-benchmarks).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Per-benchmark trend table over the archived `make bench` reports:
# trials/sec and allocs/op per commit, rendered to
# results/bench/TREND.md. CI regenerates and uploads it next to
# BENCH_engine.json after the bench gate.
bench-history:
	$(GO) run ./cmd/benchjson -history results/bench

# Numeric verification of every lemma/claim (exhaustive small instances).
verify:
	$(GO) run ./cmd/dut-verify

# Regenerate every experiment table quoted in EXPERIMENTS.md.
results:
	$(GO) run ./cmd/dut-bench -scale 1 -seed 1 -out results -csv

clean:
	rm -f test_output.txt bench_output.txt bench_engine.txt dutlint.json
