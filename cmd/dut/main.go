// Command dut is the command-line front end of the distributed uniformity
// testing library.
//
// Subcommands:
//
//	dut test    — run a uniformity tester (centralized or distributed,
//	              simulated in-process) against a synthetic source or a
//	              whitespace-separated sample stream on stdin.
//	dut netdemo — run one full referee/players round over TCP loopback
//	              (or in-memory pipes) and print the verdict.
//	dut bounds  — print the paper's lower-bound formulas evaluated at the
//	              given parameters, next to the matching upper-bound
//	              recommendations.
//	dut exp     — run one experiment from the registry and print its
//	              table (default E21, the Theorem 6.4 r-bit decay sweep).
//	dut verify  — shorthand pointing at cmd/dut-verify.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/distributed-uniformity/dut/internal/centralized"
	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
	"github.com/distributed-uniformity/dut/internal/experiments"
	"github.com/distributed-uniformity/dut/internal/lowerbound"
	"github.com/distributed-uniformity/dut/internal/network"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "test":
		return cmdTest(args[1:])
	case "netdemo":
		return cmdNetDemo(args[1:])
	case "bounds":
		return cmdBounds(args[1:])
	case "exp":
		return cmdExp(args[1:])
	case "verify":
		fmt.Fprintln(os.Stderr, "dut: run `go run ./cmd/dut-verify` for the full lemma verification suite")
		return 2
	case "-h", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "dut: unknown subcommand %q\n", args[0])
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  dut test    [-n N] [-eps E] [-mode collision|chisq|threshold|and] [-k K] [-q Q] [-source uniform|zipf|hard|stdin] [-trials T] [-seed S]
  dut netdemo [-n N] [-eps E] [-k K] [-q Q] [-bits R] [-tcp] [-seed S] [-rounds R] [-minvotes M] [-crash C] [-delay D] [-batch B] [-window W] [-shards S | -aggregators A] [-aggweights W1,W2,...] [-shardseed S]
  dut bounds  [-n N] [-eps E] [-k K] [-T T] [-r R] [-q Q]
  dut exp     [-id E21] [-scale S] [-seed S] [-par P] [-list]
`)
}

func cmdTest(args []string) int {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var (
		n      = fs.Int("n", 1024, "domain size (power of two for -source hard)")
		eps    = fs.Float64("eps", 0.5, "proximity parameter")
		mode   = fs.String("mode", "collision", "tester: collision | chisq | threshold | and")
		k      = fs.Int("k", 16, "players (distributed modes)")
		q      = fs.Int("q", 0, "samples per player / total samples (0 = recommended)")
		source = fs.String("source", "uniform", "sample source: uniform | zipf | hard | stdin")
		trials = fs.Int("trials", 1, "repeat the test this many times and report the acceptance rate")
		seed   = fs.Uint64("seed", uint64(time.Now().UnixNano()), "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rng := rand.New(rand.NewPCG(*seed, *seed^0x1f3d5b79))

	if *source == "stdin" {
		return testStdin(*n, *eps, *mode, *q, rng)
	}

	sampler, desc, err := buildSource(*source, *n, *eps, rng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dut test: %v\n", err)
		return 1
	}

	accept, err := runTester(*mode, *n, *eps, *k, *q, *trials, sampler, rng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dut test: %v\n", err)
		return 1
	}
	fmt.Printf("source: %s\nmode:   %s\naccept rate: %.3f over %d trial(s)\n", desc, *mode, accept, *trials)
	if accept >= 0.5 {
		fmt.Println("verdict: ACCEPT (looks uniform)")
	} else {
		fmt.Println("verdict: REJECT (far from uniform)")
	}
	return 0
}

func buildSource(source string, n int, eps float64, rng *rand.Rand) (dist.Sampler, string, error) {
	var (
		d    dist.Dist
		desc string
		err  error
	)
	switch source {
	case "uniform":
		d, err = dist.Uniform(n)
		desc = fmt.Sprintf("uniform over [%d]", n)
	case "zipf":
		d, err = dist.Zipf(n, 1)
		desc = fmt.Sprintf("zipf(1) over [%d]", n)
	case "hard":
		var h dist.HardInstance
		h, err = hardFor(n, eps)
		if err == nil {
			d, _, err = h.RandomPerturbed(rng)
		}
		desc = fmt.Sprintf("hard family nu_z over [%d], eps=%v", n, eps)
	default:
		return nil, "", fmt.Errorf("unknown source %q", source)
	}
	if err != nil {
		return nil, "", err
	}
	s, err := dist.NewAliasSampler(d)
	if err != nil {
		return nil, "", err
	}
	return s, desc, nil
}

func hardFor(n int, eps float64) (dist.HardInstance, error) {
	ell := 0
	for 1<<(ell+1) < n {
		ell++
	}
	if 1<<(ell+1) != n {
		return dist.HardInstance{}, fmt.Errorf("-source hard needs a power-of-two domain, got %d", n)
	}
	return dist.NewHardInstance(ell, eps)
}

func runTester(mode string, n int, eps float64, k, q, trials int, sampler dist.Sampler, rng *rand.Rand) (float64, error) {
	switch mode {
	case "collision", "chisq":
		if q == 0 {
			q = centralized.RecommendedSamples(n, eps)
		}
		var tester centralized.Tester
		var err error
		if mode == "collision" {
			tester, err = centralized.NewCollisionTester(n, q, eps)
		} else {
			var u dist.Dist
			u, err = dist.Uniform(n)
			if err == nil {
				tester, err = centralized.NewChiSquaredTester(u, q, eps)
			}
		}
		if err != nil {
			return 0, err
		}
		accepts := 0
		buf := make([]int, q)
		for i := 0; i < trials; i++ {
			dist.SampleInto(sampler, buf, rng)
			ok, err := tester.Test(buf)
			if err != nil {
				return 0, err
			}
			if ok {
				accepts++
			}
		}
		return float64(accepts) / float64(trials), nil
	case "threshold", "and":
		if q == 0 {
			if mode == "threshold" {
				q = core.RecommendedThresholdSamples(n, k, eps)
			} else {
				q = centralized.RecommendedSamples(n, eps)
			}
		}
		var p core.Protocol
		var err error
		if mode == "threshold" {
			p, err = core.NewThresholdTester(core.ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
		} else {
			p, err = core.NewANDTester(n, k, q, eps)
		}
		if err != nil {
			return 0, err
		}
		b, err := core.BackendFor(p)
		if err != nil {
			return 0, err
		}
		res, err := engine.Estimate(context.Background(), b, engine.Fixed(sampler), trials,
			engine.Options{Seed: rng.Uint64()})
		if err != nil {
			return 0, err
		}
		return res.Estimate.P, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", mode)
	}
}

func testStdin(n int, eps float64, mode string, q int, rng *rand.Rand) int {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Split(bufio.ScanWords)
	var samples []int
	for scanner.Scan() {
		v, err := strconv.Atoi(scanner.Text())
		if err != nil {
			fmt.Fprintf(os.Stderr, "dut test: bad sample %q: %v\n", scanner.Text(), err)
			return 1
		}
		samples = append(samples, v)
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "dut test: reading stdin: %v\n", err)
		return 1
	}
	if len(samples) < 2 {
		fmt.Fprintln(os.Stderr, "dut test: need at least 2 samples on stdin")
		return 1
	}
	_ = q
	_ = rng
	var tester centralized.Tester
	var err error
	switch mode {
	case "collision":
		tester, err = centralized.NewCollisionTester(n, len(samples), eps)
	case "chisq":
		var u dist.Dist
		u, err = dist.Uniform(n)
		if err == nil {
			tester, err = centralized.NewChiSquaredTester(u, len(samples), eps)
		}
	default:
		fmt.Fprintf(os.Stderr, "dut test: stdin supports -mode collision|chisq, got %q\n", mode)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dut test: %v\n", err)
		return 1
	}
	ok, err := tester.Test(samples)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dut test: %v\n", err)
		return 1
	}
	recommended := centralized.RecommendedSamples(n, eps)
	fmt.Printf("samples: %d (recommended for n=%d, eps=%v: %d)\n", len(samples), n, eps, recommended)
	if len(samples) < recommended {
		fmt.Println("warning: sample count below the recommended size; the verdict is weak")
	}
	if ok {
		fmt.Println("verdict: ACCEPT (looks uniform)")
	} else {
		fmt.Println("verdict: REJECT (far from uniform)")
	}
	return 0
}

func cmdNetDemo(args []string) int {
	fs := flag.NewFlagSet("netdemo", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 1024, "domain size (power of two)")
		eps      = fs.Float64("eps", 0.5, "proximity parameter")
		k        = fs.Int("k", 8, "player nodes")
		q        = fs.Int("q", 0, "samples per node (0 = recommended)")
		bits     = fs.Int("bits", 1, "message width r: 1 runs the classic threshold tester, 2..60 the quantized r-bit sum tester")
		tcp      = fs.Bool("tcp", false, "use TCP loopback instead of in-memory pipes")
		far      = fs.Bool("far", false, "feed the nodes an eps-far distribution instead of uniform")
		seed     = fs.Uint64("seed", uint64(time.Now().UnixNano()), "random seed")
		rounds   = fs.Int("rounds", 1, "amplification rounds over one session")
		minVotes = fs.Int("minvotes", 0, "quorum: tolerate stragglers down to this many votes (0 = strict)")
		crash    = fs.Int("crash", 0, "chaos: crash this many nodes at their first vote")
		delay    = fs.Duration("delay", 0, "chaos: per-frame write delay injected on one node")
		batch    = fs.Int("batch", 0, "trials per ROUND_BATCH wire frame (0 = classic one-frame-per-round protocol)")
		window   = fs.Int("window", 1, "batches kept in flight per session (needs -batch)")
		shards   = fs.Int("shards", 0, "L1 aggregator shards between players and root (0 or 1 = flat star)")
		aggs     = fs.Int("aggregators", 0, "alias for -shards: number of L1 aggregators in the referee tree")
		aggW     = fs.String("aggweights", "", "comma-separated relative aggregator capacities, one per shard (empty = uniform)")
		shardS   = fs.Uint64("shardseed", 0, "shuffle players across shards with this seed (0 = contiguous ranges)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rng := rand.New(rand.NewPCG(*seed, *seed+1))
	if *q == 0 {
		*q = core.RecommendedThresholdSamples(*n, *k, *eps)
	}
	if *rounds < 1 {
		fmt.Fprintln(os.Stderr, "dut netdemo: -rounds must be at least 1")
		return 2
	}
	if *crash < 0 || *crash >= *k {
		if *crash != 0 {
			fmt.Fprintf(os.Stderr, "dut netdemo: -crash must be in [0, k); got %d with k=%d\n", *crash, *k)
			return 2
		}
	}
	if (*crash > 0 || *delay > 0) && *minVotes == 0 {
		fmt.Fprintln(os.Stderr, "dut netdemo: chaos flags need a quorum; set -minvotes below k")
		return 2
	}
	if *batch < 0 || *window < 1 {
		fmt.Fprintln(os.Stderr, "dut netdemo: -batch must be non-negative and -window at least 1")
		return 2
	}
	if *batch == 0 && *window > 1 {
		fmt.Fprintln(os.Stderr, "dut netdemo: -window needs -batch")
		return 2
	}

	if *bits < 1 {
		fmt.Fprintln(os.Stderr, "dut netdemo: -bits must be at least 1")
		return 2
	}
	if *aggs != 0 {
		if *shards != 0 && *shards != *aggs {
			fmt.Fprintf(os.Stderr, "dut netdemo: -shards %d and -aggregators %d disagree; they name the same tier\n", *shards, *aggs)
			return 2
		}
		*shards = *aggs
	}
	var weights []int
	if *aggW != "" {
		for _, field := range strings.Split(*aggW, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil {
				fmt.Fprintf(os.Stderr, "dut netdemo: -aggweights %q: %v\n", *aggW, err)
				return 2
			}
			weights = append(weights, w)
		}
	}
	// The rule's width is pinned on the referee server, so a node
	// announcing a different width in HELLO fails by name at handshake
	// time; here both sides are built from the same rule, so the
	// negotiation always succeeds.
	var rule core.LocalRule
	var referee core.Referee
	if *bits == 1 {
		smp, err := core.NewThresholdTester(core.ThresholdTesterConfig{N: *n, K: *k, Q: *q, Eps: *eps})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dut netdemo: %v\n", err)
			return 1
		}
		rule = smp.Local()
		referee = core.BitReferee{Rule: core.ThresholdRule{T: core.DefaultThresholdT(*k)}}
	} else {
		qrule, err := core.NewQuantizedCollisionRule(*n, *q, *bits)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dut netdemo: %v\n", err)
			return 1
		}
		rule = qrule
		referee = core.SumThresholdReferee{Bits: *bits, T: core.QuantizedSumThreshold(*n, *k, *q)}
	}
	var tr network.Transport = network.NewMemTransport()
	trName := "in-memory pipes"
	if *tcp {
		tr = network.TCPTransport{}
		trName = "TCP loopback"
	}
	if *crash > 0 || *delay > 0 {
		plans := make(map[uint32]network.FaultPlan)
		for p := 0; p < *crash; p++ {
			plans[uint32(p)] = network.FaultPlan{CrashAtRound: 1}
		}
		if *delay > 0 {
			// Slow down the last node: it is never one of the crashed ones.
			plans[uint32(*k-1)] = network.FaultPlan{Delay: *delay}
		}
		ft, err := network.NewFaultTransport(tr, network.FaultConfig{Seed: *seed, Plans: plans})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dut netdemo: %v\n", err)
			return 1
		}
		tr = ft
		trName += " + fault injection"
	}
	// The counter is the outermost decorator so it sees exactly the
	// bytes that cross the (possibly fault-injected) transport; netdemo
	// runs a single worker, so its tier attribution is valid.
	counter, err := network.NewCountingTransport(tr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dut netdemo: %v\n", err)
		return 1
	}
	tr = counter
	cluster, err := network.NewCluster(network.ClusterConfig{
		K: *k, Q: *q,
		Rule:              rule,
		Referee:           referee,
		Transport:         tr,
		Timeout:           30 * time.Second,
		MinVotes:          *minVotes,
		Shards:            *shards,
		AggregatorWeights: weights,
		ShardSeed:         *shardS,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dut netdemo: %v\n", err)
		return 1
	}

	source := "uniform"
	var sampler dist.Sampler
	if *far {
		source = "eps-far hard family"
		h, err := hardFor(*n, *eps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dut netdemo: %v\n", err)
			return 1
		}
		nu, _, err := h.RandomPerturbed(rng)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dut netdemo: %v\n", err)
			return 1
		}
		sampler, err = dist.NewAliasSampler(nu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dut netdemo: %v\n", err)
			return 1
		}
	} else {
		u, err := dist.Uniform(*n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dut netdemo: %v\n", err)
			return 1
		}
		sampler, err = dist.NewAliasSampler(u)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dut netdemo: %v\n", err)
			return 1
		}
	}

	fmt.Printf("referee + %d nodes over %s; n=%d eps=%v q=%d per node; input: %s\n",
		*k, trName, *n, *eps, *q, source)
	if *bits > 1 {
		fmt.Printf("message width: %d bits per vote (quantized collision sum, T=%d)\n",
			*bits, core.QuantizedSumThreshold(*n, *k, *q))
	}
	if *minVotes > 0 {
		fmt.Printf("quorum: %d of %d votes\n", *minVotes, *k)
	}
	if *shards > 1 {
		layout := "contiguous shards"
		if *shardS != 0 {
			layout = fmt.Sprintf("shuffled shards (seed %d)", *shardS)
		}
		if len(weights) > 0 {
			layout += fmt.Sprintf(", weights %v", weights)
		}
		fmt.Printf("referee tree: %d L1 aggregators, %s\n", *shards, layout)
	}
	if *batch > 0 {
		fmt.Printf("batched wire protocol: %d trials per frame, %d batches in flight\n", *batch, *window)
	}
	start := time.Now()
	// One session regardless of the round count: both paths route the
	// rounds through the unified engine driver, so a 1-round demo and a
	// full amplification session exercise the same path. With -batch the
	// engine drives the cluster backend's pipelined batch session
	// (ROUND_BATCH/VOTE_BATCH/VERDICT_BATCH frames) instead of the
	// classic one-frame-per-round session.
	var accept bool
	var verdicts []bool
	var allStats []network.RoundStats
	if *batch > 0 {
		verdicts, allStats, err = runBatchedDemo(cluster, sampler, rng, *rounds, *batch, *window)
	} else {
		verdicts, allStats, err = cluster.RunManyStats(context.Background(), sampler, rng, *rounds)
	}
	if err == nil {
		accept, err = network.MajorityVerdict(verdicts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dut netdemo: round failed: %v\n", err)
		return 1
	}
	for _, s := range allStats {
		verdict := "REJECT"
		if s.Verdict {
			verdict = "ACCEPT"
		}
		fmt.Printf("round %d: verdict=%s votes=%d/%d stragglers=%d retries=%d wall=%v\n",
			s.Round, verdict, s.Votes, *k, s.Stragglers, s.Retries, s.Wall.Round(time.Microsecond))
	}
	rootC, aggC := counter.Snapshot()
	if *shards > 1 {
		fmt.Printf("frames root -> aggregators:    %s\n", network.FormatFrameCounts(rootC.Down))
		fmt.Printf("frames aggregators -> root:    %s\n", network.FormatFrameCounts(rootC.Up))
		fmt.Printf("frames aggregators -> players: %s\n", network.FormatFrameCounts(aggC.Down))
		fmt.Printf("frames players -> aggregators: %s\n", network.FormatFrameCounts(aggC.Up))
	} else {
		fmt.Printf("frames root -> players: %s\n", network.FormatFrameCounts(rootC.Down))
		fmt.Printf("frames players -> root: %s\n", network.FormatFrameCounts(rootC.Up))
	}
	fmt.Printf("session completed in %v\n", time.Since(start).Round(time.Microsecond))
	if accept {
		fmt.Println("verdict: ACCEPT (network believes the input is uniform)")
	} else {
		fmt.Println("verdict: REJECT (network raised the alarm)")
	}
	return 0
}

// runBatchedDemo drives the cluster through the engine's batched trial
// driver and maps the per-trial results back to the RoundStats shape the
// demo prints.
func runBatchedDemo(cluster *network.Cluster, sampler dist.Sampler, rng *rand.Rand, rounds, batch, window int) ([]bool, []network.RoundStats, error) {
	backend, err := network.NewBackend(cluster)
	if err != nil {
		return nil, nil, err
	}
	src := func(int, *rand.Rand) (dist.Sampler, error) { return sampler, nil }
	results, err := engine.Run(context.Background(), backend, src, rounds, engine.Options{
		Workers: 1,
		Seed:    rng.Uint64(),
		Batch:   batch,
		Window:  window,
	})
	if err != nil {
		return nil, nil, err
	}
	verdicts := make([]bool, len(results))
	stats := make([]network.RoundStats, len(results))
	for i, r := range results {
		verdicts[i] = r.Verdict
		stats[i] = network.RoundStats{
			Round:      r.Trial,
			Votes:      r.Votes,
			Stragglers: r.Stragglers,
			Retries:    r.Retries,
			Wall:       r.Wall,
			Verdict:    r.Verdict,
		}
	}
	return verdicts, stats, nil
}

func cmdExp(args []string) int {
	fs := flag.NewFlagSet("exp", flag.ContinueOnError)
	var (
		id    = fs.String("id", "E21", "experiment ID from the registry")
		list  = fs.Bool("list", false, "list registered experiments and exit")
		scale = fs.Float64("scale", 1, "trial-count multiplier (smaller = faster smoke run)")
		seed  = fs.Uint64("seed", 1, "random seed")
		par   = fs.Int("par", 0, "worker parallelism (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %s (%s)\n", e.ID, e.Title, e.Reproduces)
		}
		return 0
	}
	e, ok := experiments.ByID(*id)
	if !ok {
		fmt.Fprintf(os.Stderr, "dut exp: unknown experiment %q; -list prints the registry\n", *id)
		return 2
	}
	table, err := e.Run(experiments.Config{Scale: *scale, Seed: *seed, Parallelism: *par})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dut exp: %v\n", err)
		return 1
	}
	fmt.Println(table.Markdown())
	return 0
}

func cmdBounds(args []string) int {
	fs := flag.NewFlagSet("bounds", flag.ContinueOnError)
	var (
		n   = fs.Int("n", 4096, "domain size")
		eps = fs.Float64("eps", 0.5, "proximity parameter")
		k   = fs.Int("k", 64, "players")
		t   = fs.Int("T", 4, "referee threshold for the Theorem 1.3 row")
		r   = fs.Int("r", 4, "message bits for the Theorem 6.4 row")
		q   = fs.Int("q", 8, "samples per player for the Theorem 1.4 row")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	type row struct {
		name  string
		eval  func() (float64, error)
		match string
	}
	rows := []row{
		{
			name:  "Thm 6.1  any rule:      q >= (C/eps^2) min(sqrt(n/k), n/k)",
			eval:  func() (float64, error) { return lowerbound.Theorem61Q(*n, *k, *eps, 1) },
			match: fmt.Sprintf("threshold tester recommends q = %d", core.RecommendedThresholdSamples(*n, *k, *eps)),
		},
		{
			name:  "Thm 6.5  AND rule:      q >= C sqrt(n)/(log^2 k eps^2)",
			eval:  func() (float64, error) { return lowerbound.Theorem65Q(*n, *k, *eps, 0.25) },
			match: fmt.Sprintf("centralized scale is q = %d", centralized.RecommendedSamples(*n, *eps)),
		},
		{
			name:  fmt.Sprintf("Thm 1.3  T=%d threshold: q >= C sqrt(n)/(T log^2(k/eps) eps^2)", *t),
			eval:  func() (float64, error) { return lowerbound.Theorem13Q(*n, *k, *t, *eps, 0.25) },
			match: "",
		},
		{
			name:  fmt.Sprintf("Thm 6.4  r=%d bits:      q >= (C/eps^2) min(sqrt(n/(2^r k)), n/(2^r k))", *r),
			eval:  func() (float64, error) { return lowerbound.Theorem64Q(*n, *k, *r, *eps, 1) },
			match: "",
		},
		{
			name:  fmt.Sprintf("Thm 1.4  learning, q=%d: k >= C n^2/q^2", *q),
			eval:  func() (float64, error) { return lowerbound.Theorem14K(*n, *q, 1) },
			match: "",
		},
	}
	fmt.Printf("paper lower bounds at n=%d, k=%d, eps=%v (C = 1 or 1/4 as printed):\n\n", *n, *k, *eps)
	for _, r := range rows {
		v, err := r.eval()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dut bounds: %v\n", err)
			return 1
		}
		fmt.Printf("  %-68s = %10.1f", r.name, v)
		if r.match != "" {
			fmt.Printf("   (%s)", r.match)
		}
		fmt.Println()
	}
	return 0
}
