package main

import (
	"math/rand/v2"
	"testing"
)

func TestRunDispatch(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("no args exit = %d", code)
	}
	if code := run([]string{"help"}); code != 0 {
		t.Errorf("help exit = %d", code)
	}
	if code := run([]string{"frobnicate"}); code != 2 {
		t.Errorf("unknown subcommand exit = %d", code)
	}
	if code := run([]string{"verify"}); code != 2 {
		t.Errorf("verify pointer exit = %d", code)
	}
}

func TestCmdBounds(t *testing.T) {
	if code := cmdBounds(nil); code != 0 {
		t.Errorf("default bounds exit = %d", code)
	}
	if code := cmdBounds([]string{"-n", "1024", "-k", "16", "-eps", "0.25"}); code != 0 {
		t.Errorf("custom bounds exit = %d", code)
	}
	if code := cmdBounds([]string{"-n", "1"}); code != 1 {
		t.Errorf("invalid n exit = %d", code)
	}
	if code := cmdBounds([]string{"-badflag"}); code != 2 {
		t.Errorf("bad flag exit = %d", code)
	}
}

func TestHardFor(t *testing.T) {
	h, err := hardFor(1024, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 1024 {
		t.Errorf("N = %d", h.N())
	}
	if _, err := hardFor(1000, 0.5); err == nil {
		t.Error("non-power-of-two accepted")
	}
}

func TestBuildSource(t *testing.T) {
	rng := newTestRand()
	for _, source := range []string{"uniform", "zipf", "hard"} {
		s, desc, err := buildSource(source, 64, 0.5, rng)
		if err != nil {
			t.Fatalf("%s: %v", source, err)
		}
		if s == nil || desc == "" {
			t.Errorf("%s: empty result", source)
		}
		if v := s.Sample(rng); v < 0 || v >= 64 {
			t.Errorf("%s: sample %d out of range", source, v)
		}
	}
	if _, _, err := buildSource("nope", 64, 0.5, rng); err == nil {
		t.Error("unknown source accepted")
	}
	if _, _, err := buildSource("hard", 100, 0.5, rng); err == nil {
		t.Error("non-power-of-two hard accepted")
	}
}

func TestRunTesterModes(t *testing.T) {
	rng := newTestRand()
	s, _, err := buildSource("uniform", 256, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"collision", "chisq", "threshold", "and"} {
		rate, err := runTester(mode, 256, 0.5, 4, 0, 5, s, rng)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if rate < 0 || rate > 1 {
			t.Errorf("%s: rate %v", mode, rate)
		}
	}
	if _, err := runTester("nope", 256, 0.5, 4, 0, 1, s, rng); err == nil {
		t.Error("unknown mode accepted")
	}
	// Explicit q is honored.
	if _, err := runTester("collision", 256, 0.5, 4, 50, 2, s, rng); err != nil {
		t.Errorf("explicit q: %v", err)
	}
}

func TestCmdTestSyntheticSources(t *testing.T) {
	if code := cmdTest([]string{"-n", "256", "-source", "uniform", "-mode", "collision", "-trials", "3", "-seed", "1"}); code != 0 {
		t.Errorf("uniform test exit = %d", code)
	}
	if code := cmdTest([]string{"-n", "256", "-source", "hard", "-mode", "threshold", "-k", "4", "-trials", "3", "-seed", "2"}); code != 0 {
		t.Errorf("hard test exit = %d", code)
	}
	if code := cmdTest([]string{"-source", "nope"}); code != 1 {
		t.Errorf("bad source exit = %d", code)
	}
	if code := cmdTest([]string{"-badflag"}); code != 2 {
		t.Errorf("bad flag exit = %d", code)
	}
}

func TestCmdNetDemo(t *testing.T) {
	if code := cmdNetDemo([]string{"-n", "256", "-k", "4", "-seed", "3"}); code != 0 {
		t.Errorf("mem netdemo exit = %d", code)
	}
	if code := cmdNetDemo([]string{"-n", "256", "-k", "4", "-tcp", "-far", "-seed", "4"}); code != 0 {
		t.Errorf("tcp netdemo exit = %d", code)
	}
	if code := cmdNetDemo([]string{"-n", "1000", "-far"}); code != 1 {
		t.Errorf("non-power-of-two far exit = %d", code)
	}
	if code := cmdNetDemo([]string{"-badflag"}); code != 2 {
		t.Errorf("bad flag exit = %d", code)
	}
}

func TestCmdNetDemoBatched(t *testing.T) {
	if code := cmdNetDemo([]string{"-n", "256", "-k", "4", "-seed", "3", "-rounds", "9", "-batch", "4", "-window", "2"}); code != 0 {
		t.Errorf("batched mem netdemo exit = %d", code)
	}
	if code := cmdNetDemo([]string{"-n", "256", "-k", "4", "-tcp", "-far", "-seed", "4", "-batch", "8"}); code != 0 {
		t.Errorf("batched tcp netdemo exit = %d", code)
	}
	if code := cmdNetDemo([]string{"-n", "256", "-k", "4", "-window", "2"}); code != 2 {
		t.Errorf("-window without -batch exit = %d", code)
	}
	if code := cmdNetDemo([]string{"-n", "256", "-k", "4", "-batch", "-1"}); code != 2 {
		t.Errorf("negative -batch exit = %d", code)
	}
}

func newTestRand() *rand.Rand {
	return rand.New(rand.NewPCG(7, 11))
}
