// Command dutlint runs the repo's contract analyzers (determinism,
// scratch aliasing, float equality, frame discipline, context
// propagation, seed purity) over the packages matching the given
// patterns. Findings print as "file:line:col rule: message"; the exit
// status is 1 when any finding survives //lint:ignore suppression, 2 on
// a load or internal error.
//
// Usage:
//
//	dutlint [-list] [-<rule>=false ...] [packages]
//
// Patterns default to ./... relative to the enclosing module root. Each
// analyzer has a boolean flag named after its rule suffix (for example
// -nondeterminism=false disables dut/nondeterminism).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/distributed-uniformity/dut/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dutlint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	all := lint.Analyzers()
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		short := strings.TrimPrefix(a.Name, "dut/")
		enabled[a.Name] = fs.Bool(short, true, "enable "+a.Name+" ("+a.Doc+")")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range all {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var analyzers []*lint.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "dutlint: every analyzer is disabled")
		return 2
	}

	root, err := lint.ModuleRoot("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dutlint:", err)
		return 2
	}
	pkgs, err := lint.Load(root, fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dutlint:", err)
		return 2
	}

	found := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dutlint:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "dutlint: %d finding(s)\n", found)
		return 1
	}
	return 0
}
