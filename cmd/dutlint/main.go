// Command dutlint runs the repo's contract analyzers (determinism,
// scratch aliasing, float equality, frame discipline, context
// propagation, seed purity, hot-path alloc-freedom, atomic discipline,
// goroutine joins, wire exhaustiveness) over the packages matching the
// given patterns. Findings print as "file:line:col rule: message"; the
// exit status is 1 when any finding survives //lint:ignore suppression,
// 2 on a load or internal error.
//
// Usage:
//
//	dutlint [-list] [-json] [-escape] [-<rule>=false ...] [packages]
//
// Patterns default to ./... relative to the enclosing module root. Each
// analyzer has a boolean flag named after its rule suffix (for example
// -nondeterminism=false disables dut/nondeterminism). All analyzers of
// one run share a single call-graph Program, so the load and graph cost
// is paid once, not once per rule; the total analysis wall time is
// reported on stderr.
//
// -json emits the findings as a JSON array on stdout — suppressed
// findings included, marked — for CI artifact upload.
//
// -escape audits the analyzer against the compiler: it runs `go build
// -gcflags=-m=2` over every package containing hot-reachable functions
// and reports each compiler-detected heap escape inside a hot function
// that dut/hotalloc neither flagged nor a documented suppression covers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"github.com/distributed-uniformity/dut/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonDiagnostic is the machine-readable finding shape emitted by -json.
type jsonDiagnostic struct {
	Rule       string `json:"rule"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("dutlint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings (suppressed included) as JSON on stdout")
	escape := fs.Bool("escape", false, "diff compiler escape analysis against dut/hotalloc over the hot packages")
	all := lint.Analyzers()
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		short := strings.TrimPrefix(a.Name, "dut/")
		enabled[a.Name] = fs.Bool(short, true, "enable "+a.Name+" ("+a.Doc+")")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range all {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var analyzers []*lint.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "dutlint: every analyzer is disabled")
		return 2
	}

	root, err := lint.ModuleRoot("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dutlint:", err)
		return 2
	}
	pkgs, err := lint.Load(root, fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dutlint:", err)
		return 2
	}

	// One Program for the whole run: every analyzer of every package
	// shares the same cached call-graph fragments and derived
	// reachability, so the graph is built once per package, not once per
	// rule.
	started := time.Now()
	prog := lint.NewProgram(pkgs...)
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		ds, err := lint.RunPackageAll(prog, pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dutlint:", err)
			return 2
		}
		diags = append(diags, ds...)
	}
	elapsed := time.Since(started)

	if *escape {
		return runEscape(prog, diags, root)
	}

	found := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		if !*asJSON {
			fmt.Println(d)
		}
		found++
	}
	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Rule: d.Rule, File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Message: d.Message, Suppressed: d.Suppressed,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "dutlint:", err)
			return 2
		}
	}
	fmt.Fprintf(os.Stderr, "dutlint: %d package(s), %d rule(s) analyzed in %s\n",
		len(pkgs), len(analyzers), elapsed.Round(time.Millisecond))
	if found > 0 {
		fmt.Fprintf(os.Stderr, "dutlint: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// runEscape executes the compiler-diff audit: build the hot packages
// with escape-analysis diagnostics enabled and report heap escapes the
// analyzer has no account of.
func runEscape(prog *lint.Program, diags []lint.Diagnostic, root string) int {
	hot := prog.HotPackages()
	if len(hot) == 0 {
		fmt.Fprintln(os.Stderr, "dutlint: -escape found no //dut:hotpath roots")
		return 2
	}
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m=2"}, hot...)...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dutlint: go build -gcflags=-m=2: %v\n%s", err, out)
		return 2
	}
	misses := lint.EscapeAudit(prog, diags, string(out), root)
	for _, m := range misses {
		fmt.Println(m)
	}
	fmt.Fprintf(os.Stderr, "dutlint: escape audit over %d hot package(s): %d unaccounted escape(s)\n",
		len(hot), len(misses))
	if len(misses) > 0 {
		return 1
	}
	return 0
}
