// Command dut-verify numerically verifies every identity and inequality
// the paper proves, on exhaustive small instances: Claim 3.1, Lemma 4.1,
// equation (3), Lemmas 5.1/4.2/4.3/4.4, Proposition 5.2, Lemma 5.5,
// Lemma 5.4 (KKL), and Fact 6.3. It prints one PASS/FAIL line per check
// and exits non-zero on any failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"

	"github.com/distributed-uniformity/dut/internal/boolfn"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/lowerbound"
	"github.com/distributed-uniformity/dut/internal/stats"
)

func main() {
	os.Exit(run())
}

type reporter struct {
	failures int
	verbose  bool
	out      io.Writer
}

func (r *reporter) check(name string, ok bool, detail string) {
	w := r.out
	if w == nil {
		w = os.Stdout
	}
	status := "PASS"
	if !ok {
		status = "FAIL"
		r.failures++
	}
	if !ok || r.verbose {
		fmt.Fprintf(w, "%s  %-60s %s\n", status, name, detail)
	} else {
		fmt.Fprintf(w, "%s  %s\n", status, name)
	}
}

func run() int {
	var (
		seed    = flag.Uint64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "print details for passing checks too")
	)
	flag.Parse()
	return verifyAll(*seed, *verbose)
}

// verifyAll runs the complete checklist; split from run so tests can call
// it without touching the process-wide flag set.
func verifyAll(seed uint64, verbose bool) int {
	rep := &reporter{verbose: verbose}
	rng := rand.New(rand.NewPCG(seed, seed^0x5851f42d4c957f2d))

	verifyIdentities(rep, rng)
	verifyLemmas(rep, rng)
	verifyCombinatorics(rep)
	verifyKKLAndFact63(rep, rng)
	verifyOptimalStrategy(rep)

	fmt.Println()
	if rep.failures > 0 {
		fmt.Printf("%d check(s) FAILED\n", rep.failures)
		return 1
	}
	fmt.Println("all checks passed")
	return 0
}

func verifyIdentities(rep *reporter, rng *rand.Rand) {
	for _, ic := range []struct {
		ell, q int
		eps    float64
	}{{1, 2, 0.5}, {2, 3, 0.3}, {3, 2, 0.7}} {
		in, err := lowerbound.NewInstance(ic.ell, ic.q, ic.eps)
		if err != nil {
			rep.check("instance construction", false, err.Error())
			continue
		}
		z, err := dist.RandomPerturbation(in.Ell, rng)
		if err != nil {
			rep.check("perturbation", false, err.Error())
			continue
		}
		var worst float64
		for idx := uint64(0); idx < uint64(1)<<uint(in.InputBits()); idx++ {
			samples, err := in.SamplesFromInput(idx)
			if err != nil {
				rep.check("sample decode", false, err.Error())
				return
			}
			direct, err := in.NuZQ(z, samples)
			if err != nil {
				rep.check("NuZQ", false, err.Error())
				return
			}
			fourier, err := in.NuZQFourier(z, samples)
			if err != nil {
				rep.check("NuZQFourier", false, err.Error())
				return
			}
			if r := math.Abs(direct - fourier); r > worst {
				worst = r
			}
		}
		rep.check(fmt.Sprintf("Claim 3.1 pointwise (ell=%d q=%d)", ic.ell, ic.q),
			worst < 1e-14, fmt.Sprintf("max residual %.2e", worst))

		g, err := lowerbound.RandomStrategy(in, 0.4, rng)
		if err != nil {
			rep.check("strategy", false, err.Error())
			continue
		}
		e, err := lowerbound.NewDiffEvaluator(in, g)
		if err != nil {
			rep.check("evaluator", false, err.Error())
			continue
		}
		fast, err := e.Diff(z)
		if err != nil {
			rep.check("Diff", false, err.Error())
			continue
		}
		slow, err := in.NuZDirect(g, z)
		if err != nil {
			rep.check("NuZDirect", false, err.Error())
			continue
		}
		res := math.Abs(fast - (slow - e.Mu()))
		rep.check(fmt.Sprintf("Lemma 4.1 spectral=direct (ell=%d q=%d)", ic.ell, ic.q),
			res < 1e-12, fmt.Sprintf("residual %.2e", res))

		mean, _, err := e.ZMoments()
		if err != nil {
			rep.check("ZMoments", false, err.Error())
			continue
		}
		eq3 := math.Abs(mean - e.ExpectedDiffEvenCover())
		rep.check(fmt.Sprintf("equation (3) even-cover formula (ell=%d q=%d)", ic.ell, ic.q),
			eq3 < 1e-12, fmt.Sprintf("residual %.2e", eq3))
	}
}

func verifyLemmas(rep *reporter, rng *rand.Rand) {
	grid := []struct {
		ell, q int
		eps    float64
	}{{2, 3, 0.1}, {3, 3, 0.15}, {3, 4, 0.2}}
	for _, ic := range grid {
		in, err := lowerbound.NewInstance(ic.ell, ic.q, ic.eps)
		if err != nil {
			rep.check("instance", false, err.Error())
			continue
		}
		for _, p := range []float64{0.5, 0.05} {
			g, err := lowerbound.RandomStrategy(in, p, rng)
			if err != nil {
				rep.check("strategy", false, err.Error())
				continue
			}
			e, err := lowerbound.NewDiffEvaluator(in, g)
			if err != nil {
				rep.check("evaluator", false, err.Error())
				continue
			}
			mean, second, err := e.ZMoments()
			if err != nil {
				rep.check("moments", false, err.Error())
				continue
			}
			name := fmt.Sprintf("(ell=%d q=%d eps=%v p=%v)", ic.ell, ic.q, ic.eps, p)
			if lowerbound.Lemma51Precondition(in.N(), in.Q, in.Eps) {
				b, err := lowerbound.Lemma51Bound(in.N(), in.Q, in.Eps, e.Var())
				if err != nil {
					rep.check("L5.1 bound", false, err.Error())
				} else {
					rep.check("Lemma 5.1 "+name, math.Abs(mean) <= b+1e-12,
						fmt.Sprintf("|E diff|=%.2e bound=%.2e", math.Abs(mean), b))
				}
			}
			if lowerbound.Lemma42Precondition(in.N(), in.Q, in.Eps) {
				b, err := lowerbound.Lemma42Bound(in.N(), in.Q, in.Eps, e.Var())
				if err != nil {
					rep.check("L4.2 bound", false, err.Error())
				} else {
					rep.check("Lemma 4.2 "+name, second <= b+1e-12,
						fmt.Sprintf("E diff^2=%.2e bound=%.2e", second, b))
				}
			}
		}
	}

	// Lemma 4.3 / 4.4 on their dedicated biased-regime instance.
	in, err := lowerbound.NewInstance(3, 3, 0.08)
	if err != nil {
		rep.check("biased instance", false, err.Error())
		return
	}
	for _, p := range []float64{0.01, 0.1} {
		g, err := lowerbound.RandomStrategy(in, p, rng)
		if err != nil {
			rep.check("strategy", false, err.Error())
			continue
		}
		e, err := lowerbound.NewDiffEvaluator(in, g)
		if err != nil {
			rep.check("evaluator", false, err.Error())
			continue
		}
		mean, second, err := e.ZMoments()
		if err != nil {
			rep.check("moments", false, err.Error())
			continue
		}
		for _, m := range []int{1, 2} {
			if lowerbound.Lemma43Precondition(in.N(), in.Q, m, in.Eps) {
				b, err := lowerbound.Lemma43Bound(in.N(), in.Q, m, in.Eps, e.Var())
				if err != nil {
					rep.check("L4.3 bound", false, err.Error())
				} else {
					rep.check(fmt.Sprintf("Lemma 4.3 (m=%d p=%v)", m, p), math.Abs(mean) <= b+1e-12,
						fmt.Sprintf("|E diff|=%.2e bound=%.2e", math.Abs(mean), b))
				}
			}
			b, err := lowerbound.Lemma44Bound(in.N(), in.Q, m, in.Eps, e.Var(), 1)
			if err != nil {
				rep.check("L4.4 bound", false, err.Error())
			} else {
				rep.check(fmt.Sprintf("Lemma 4.4 C=1 (m=%d p=%v)", m, p), second <= b+1e-12,
					fmt.Sprintf("E diff^2=%.2e bound=%.2e", second, b))
			}
		}
	}
}

func verifyCombinatorics(rep *reporter) {
	for _, g := range []struct{ ell, q int }{{2, 4}, {3, 4}} {
		for size := 2; size <= g.q; size += 2 {
			set := uint64(1)<<uint(size) - 1
			exact, err := lowerbound.CountEvenlyCovered(g.ell, g.q, set)
			if err != nil {
				rep.check("CountEvenlyCovered", false, err.Error())
				continue
			}
			bound, err := lowerbound.XSBound(g.ell, g.q, size)
			if err != nil {
				rep.check("XSBound", false, err.Error())
				continue
			}
			rep.check(fmt.Sprintf("Proposition 5.2 (ell=%d q=%d |S|=%d)", g.ell, g.q, size),
				float64(exact) <= bound+1e-9, fmt.Sprintf("exact=%d bound=%.3g", exact, bound))
		}
	}
	for _, g := range []struct{ ell, q, r, m int }{{2, 4, 1, 2}, {2, 4, 2, 2}, {3, 4, 1, 2}} {
		exact, err := lowerbound.ARMomentExact(g.ell, g.q, g.r, g.m)
		if err != nil {
			rep.check("ARMomentExact", false, err.Error())
			continue
		}
		bound, err := lowerbound.ARMomentBound(g.ell, g.q, g.r, g.m)
		if err != nil {
			rep.check("ARMomentBound", false, err.Error())
			continue
		}
		rep.check(fmt.Sprintf("Lemma 5.5 (ell=%d q=%d r=%d m=%d)", g.ell, g.q, g.r, g.m),
			exact <= bound+1e-9, fmt.Sprintf("exact=%.3g bound=%.3g", exact, bound))
	}
}

func verifyKKLAndFact63(rep *reporter, rng *rand.Rand) {
	worst := 0.0
	ok := true
	for _, p := range []float64{0.02, 0.1, 0.5} {
		f, err := boolfn.RandomBiased(9, p, rng)
		if err != nil {
			rep.check("RandomBiased", false, err.Error())
			return
		}
		for _, r := range []int{1, 2} {
			for _, delta := range []float64{0.3, 1} {
				res, err := boolfn.CheckKKL(f, r, delta)
				if err != nil {
					rep.check("CheckKKL", false, err.Error())
					return
				}
				if res.Ratio > worst {
					worst = res.Ratio
				}
				ok = ok && res.Satisfied
			}
		}
	}
	rep.check("Lemma 5.4 (KKL level inequality)", ok, fmt.Sprintf("worst ratio %.3f", worst))

	worst = 0
	ok = true
	for _, alpha := range []float64{0.01, 0.3, 0.7, 0.99} {
		for _, beta := range []float64{0.05, 0.5, 0.95} {
			kl, err := stats.BernoulliKL(alpha, beta)
			if err != nil {
				rep.check("BernoulliKL", false, err.Error())
				return
			}
			bound, err := stats.BernoulliKLChiBound(alpha, beta)
			if err != nil {
				rep.check("BernoulliKLChiBound", false, err.Error())
				return
			}
			if bound > 0 && kl/bound > worst {
				worst = kl / bound
			}
			ok = ok && kl <= bound+1e-12
		}
	}
	rep.check("Fact 6.3 (KL <= chi-squared bound)", ok, fmt.Sprintf("worst ratio %.3f", worst))
}

// verifyOptimalStrategy is appended to the main checks by init; it
// confirms the closed-form extremal strategy is (a) truly attained and
// (b) still below the Lemma 5.1 bound.
func verifyOptimalStrategy(rep *reporter) {
	for _, ic := range []struct {
		ell, q int
		eps    float64
	}{{2, 3, 0.1}, {3, 3, 0.15}} {
		in, err := lowerbound.NewInstance(ic.ell, ic.q, ic.eps)
		if err != nil {
			rep.check("optimal instance", false, err.Error())
			continue
		}
		g, claimed, err := lowerbound.OptimalFirstMomentStrategy(in)
		if err != nil {
			rep.check("optimal strategy", false, err.Error())
			continue
		}
		e, err := lowerbound.NewDiffEvaluator(in, g)
		if err != nil {
			rep.check("optimal evaluator", false, err.Error())
			continue
		}
		mean, _, err := e.ZMoments()
		if err != nil {
			rep.check("optimal moments", false, err.Error())
			continue
		}
		rep.check(fmt.Sprintf("optimal strategy attains its value (ell=%d q=%d)", ic.ell, ic.q),
			math.Abs(mean-claimed) < 1e-14, fmt.Sprintf("attained %.3e claimed %.3e", mean, claimed))
		if lowerbound.Lemma51Precondition(in.N(), in.Q, in.Eps) {
			bound, err := lowerbound.Lemma51Bound(in.N(), in.Q, in.Eps, e.Var())
			if err != nil {
				rep.check("optimal bound", false, err.Error())
				continue
			}
			rep.check(fmt.Sprintf("Lemma 5.1 dominates the OPTIMAL strategy (ell=%d q=%d)", ic.ell, ic.q),
				claimed <= bound+1e-12, fmt.Sprintf("optimal %.3e bound %.3e (tightness %.3f)", claimed, bound, claimed/bound))
		}
	}
}
