package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFullVerificationSuitePasses(t *testing.T) {
	// The complete lemma/identity checklist must pass; any FAIL line is a
	// regression in the mathematical machinery.
	if code := verifyAll(1, false); code != 0 {
		t.Fatalf("dut-verify exited %d", code)
	}
}

func TestReporterCountsFailures(t *testing.T) {
	var buf bytes.Buffer
	rep := &reporter{out: &buf}
	rep.check("good", true, "")
	rep.check("bad", false, "detail")
	rep.check("also bad", false, "detail")
	if rep.failures != 2 {
		t.Errorf("failures = %d, want 2", rep.failures)
	}
	if got := strings.Count(buf.String(), "FAIL"); got != 2 {
		t.Errorf("printed %d FAIL lines, want 2", got)
	}
	var vbuf bytes.Buffer
	verbose := &reporter{verbose: true, out: &vbuf}
	verbose.check("good", true, "detail shown")
	if verbose.failures != 0 {
		t.Errorf("verbose pass counted as failure")
	}
	if !strings.Contains(vbuf.String(), "detail shown") {
		t.Error("verbose mode did not print details")
	}
}
