// Command benchjson distills `go test -bench` output into a small JSON
// report. It reads the benchmark text on stdin and writes one record per
// benchmark line with the iteration count, ns/op, and the derived
// trials/sec throughput — the shape `make bench` stores in
// BENCH_engine.json so engine-backend throughput can be tracked across
// commits without parsing the raw bench text again.
//
// With -baseline, benchjson first reads a previously committed report
// and prints per-benchmark deltas (trials/sec, B/op, allocs/op) against
// it before writing the new file, so `make bench` shows how the run
// moved relative to the checked-in BENCH_engine.json.
//
// With -max-regress P (0 < P <= 100, requires -baseline), benchjson
// exits non-zero when any benchmark regresses more than P percent
// against its baseline entry, turning the delta report into a
// regression gate for CI. -regress-metric picks what the gate
// compares: trials_per_sec (the default; a drop is a regression) or
// allocs_per_op (an increase is a regression — the stable choice for
// shared CI runners, where throughput is noisy but allocation counts
// are deterministic). Benchmarks without a baseline entry never fail
// the gate (they are new), and the report is still written so the
// failing run can be inspected.
//
// With -history DIR, benchjson reads nothing from stdin; instead it
// loads every archived report in DIR (the results/bench directory
// `make bench` appends to, one <sha>.json per run) and renders a
// per-benchmark trend table — trials/sec and allocs/op per commit — as
// markdown. The table goes to DIR/TREND.md unless -o overrides it;
// `make bench-history` is the wired-up entry point.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./internal/engine | benchjson -baseline BENCH_engine.json -o BENCH_engine.json -max-regress 20
//	benchjson -history results/bench
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	// Name is the benchmark name with the Benchmark prefix and any
	// -GOMAXPROCS suffix stripped (e.g. "EngineSMP").
	Name string `json:"name"`
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op: nanoseconds per trial.
	NsPerOp float64 `json:"ns_per_op"`
	// TrialsPerSec is 1e9/NsPerOp: engine trial throughput.
	TrialsPerSec float64 `json:"trials_per_sec"`
	// BytesPerOp is B/op when -benchmem was set (0 otherwise).
	BytesPerOp int64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is allocs/op when -benchmem was set, nil otherwise. A
	// pointer keeps a genuine zero-allocation benchmark distinguishable
	// from a run without -benchmem: &0 serializes as "allocs_per_op": 0,
	// nil omits the field entirely.
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

// allocs unpacks the optional allocs/op measurement.
func (b Benchmark) allocs() (int64, bool) {
	if b.AllocsPerOp == nil {
		return 0, false
	}
	return *b.AllocsPerOp, true
}

// Report is the file benchjson writes.
type Report struct {
	// OS echoes the bench header's goos when present.
	OS string `json:"os,omitempty"`
	// Arch echoes the bench header's goarch when present.
	Arch string `json:"arch,omitempty"`
	// CPU echoes the bench header's cpu when present.
	CPU string `json:"cpu,omitempty"`
	// Benchmarks holds one entry per parsed benchmark line.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_engine.json", "output file (- for stdout)")
	baseline := flag.String("baseline", "", "committed report to diff against (read before -o overwrites it)")
	maxRegress := flag.Float64("max-regress", 0,
		"fail (exit 1) when -regress-metric regresses more than this percentage vs -baseline; 0 disables the gate")
	regressMetric := flag.String("regress-metric", metricTrialsPerSec,
		"metric the -max-regress gate compares: trials_per_sec or allocs_per_op")
	history := flag.String("history", "",
		"directory of archived reports (results/bench): render a per-benchmark trend table instead of reading stdin")
	flag.Parse()
	if *history != "" {
		outPath := filepath.Join(*history, "TREND.md")
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "o" {
				outPath = *out
			}
		})
		if err := writeTrend(*history, outPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *maxRegress < 0 || *maxRegress > 100 {
		fmt.Fprintf(os.Stderr, "benchjson: -max-regress %v outside [0,100]\n", *maxRegress)
		os.Exit(2)
	}
	if *maxRegress > 0 && *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -max-regress needs -baseline to compare against")
		os.Exit(2)
	}
	if *regressMetric != metricTrialsPerSec && *regressMetric != metricAllocsPerOp {
		fmt.Fprintf(os.Stderr, "benchjson: -regress-metric %q: want %s or %s\n",
			*regressMetric, metricTrialsPerSec, metricAllocsPerOp)
		os.Exit(2)
	}
	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	var regressions []string
	if *baseline != "" {
		if base, err := readReport(*baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s unreadable (%v); skipping deltas\n", *baseline, err)
		} else {
			printDeltas(os.Stderr, base, report)
			if *maxRegress > 0 {
				regressions = findRegressions(base, report, *maxRegress, *regressMetric)
			}
		}
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchjson: regression:", r)
		}
		os.Exit(1)
	}
}

// Metrics the -max-regress gate can compare.
const (
	metricTrialsPerSec = "trials_per_sec"
	metricAllocsPerOp  = "allocs_per_op"
)

// findRegressions returns one description per benchmark whose chosen
// metric regressed more than maxPct percent against its baseline entry:
// a trials/sec drop, or an allocs/op increase (any increase over a zero
// baseline counts). New benchmarks (absent from the baseline) and
// baseline entries without a usable value are skipped.
func findRegressions(base, cur Report, maxPct float64, metric string) []string {
	prev := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		prev[b.Name] = b
	}
	var out []string
	for _, b := range cur.Benchmarks {
		old, ok := prev[b.Name]
		if !ok {
			continue
		}
		switch metric {
		case metricAllocsPerOp:
			oldAllocs, oldOK := old.allocs()
			newAllocs, newOK := b.allocs()
			if !oldOK || !newOK {
				continue // one side ran without -benchmem: nothing to gate
			}
			if newAllocs <= oldAllocs {
				continue
			}
			// A zero-alloc baseline tolerates no growth at any budget.
			if oldAllocs == 0 || pctChange(float64(oldAllocs), float64(newAllocs)) > maxPct {
				out = append(out, fmt.Sprintf("%s allocs/op %d -> %d (over allowed +%.1f%%)",
					b.Name, oldAllocs, newAllocs, maxPct))
			}
		default:
			if old.TrialsPerSec <= 0 {
				continue
			}
			drop := -pctChange(old.TrialsPerSec, b.TrialsPerSec)
			if drop > maxPct {
				out = append(out, fmt.Sprintf("%s trials/sec %.0f -> %.0f (-%.1f%% > allowed %.1f%%)",
					b.Name, old.TrialsPerSec, b.TrialsPerSec, drop, maxPct))
			}
		}
	}
	return out
}

// trendRun is one archived report, labelled by the commit its file is
// named after.
type trendRun struct {
	label  string
	mod    time.Time
	report Report
}

// loadHistory reads every .json report under dir and orders the runs
// oldest to newest. The archive files are named by commit hash, which
// carries no ordering, so the file modification time stands in for the
// run order (`make bench` writes each archive as it runs); ties break
// by name for determinism.
func loadHistory(dir string) ([]trendRun, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var runs []trendRun
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		report, err := readReport(filepath.Join(dir, e.Name()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: skipping %s: %v\n", e.Name(), err)
			continue
		}
		runs = append(runs, trendRun{
			label:  strings.TrimSuffix(e.Name(), ".json"),
			mod:    info.ModTime(),
			report: report,
		})
	}
	sort.Slice(runs, func(i, j int) bool {
		if !runs[i].mod.Equal(runs[j].mod) {
			return runs[i].mod.Before(runs[j].mod)
		}
		return runs[i].label < runs[j].label
	})
	return runs, nil
}

// renderTrend formats the archived runs as one markdown table per
// benchmark, benchmarks ordered by first appearance across the history
// and runs oldest first. Runs missing a benchmark are simply absent
// from its table.
func renderTrend(runs []trendRun) string {
	var order []string
	type point struct {
		label  string
		trials float64
		allocs string
	}
	series := make(map[string][]point)
	for _, run := range runs {
		for _, b := range run.report.Benchmarks {
			if _, seen := series[b.Name]; !seen {
				order = append(order, b.Name)
			}
			allocs := "n/a"
			if a, ok := b.allocs(); ok {
				allocs = strconv.FormatInt(a, 10)
			}
			series[b.Name] = append(series[b.Name], point{
				label:  run.label,
				trials: b.TrialsPerSec,
				allocs: allocs,
			})
		}
	}
	var sb strings.Builder
	sb.WriteString("# Engine benchmark trend\n\n")
	sb.WriteString("Generated by `benchjson -history` (`make bench-history`) from the\n")
	sb.WriteString("archived reports in this directory — one per `make bench` run, named\n")
	sb.WriteString("by commit. Runs are ordered oldest to newest by archive time.\n")
	for _, name := range order {
		fmt.Fprintf(&sb, "\n## %s\n\n", name)
		sb.WriteString("| run | trials/sec | allocs/op |\n")
		sb.WriteString("|:--|--:|--:|\n")
		for _, p := range series[name] {
			fmt.Fprintf(&sb, "| `%s` | %.0f | %s |\n", p.label, p.trials, p.allocs)
		}
	}
	return sb.String()
}

// writeTrend renders dir's archive into a trend table at out.
func writeTrend(dir, out string) error {
	runs, err := loadHistory(dir)
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		return fmt.Errorf("no benchmark archives in %s", dir)
	}
	if err := os.WriteFile(out, []byte(renderTrend(runs)), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s from %d archived run(s)\n", out, len(runs))
	return nil
}

// readReport loads a previously written benchjson file.
func readReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, err
	}
	return r, nil
}

// printDeltas writes one line per benchmark comparing the fresh run
// against the baseline report: trials/sec throughput plus the -benchmem
// pairs, each with its relative change. Benchmarks present on only one
// side are flagged rather than silently dropped.
func printDeltas(w io.Writer, base, cur Report) {
	prev := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		prev[b.Name] = b
	}
	fmt.Fprintln(w, "benchjson: deltas vs baseline")
	for _, b := range cur.Benchmarks {
		old, ok := prev[b.Name]
		if !ok {
			fmt.Fprintf(w, "  %-16s new benchmark (no baseline entry)\n", b.Name)
			continue
		}
		delete(prev, b.Name)
		fmt.Fprintf(w, "  %-16s trials/sec %.0f -> %.0f (%+.1f%%)  B/op %d -> %d (%+.1f%%)  allocs/op %s\n",
			b.Name,
			old.TrialsPerSec, b.TrialsPerSec, pctChange(old.TrialsPerSec, b.TrialsPerSec),
			old.BytesPerOp, b.BytesPerOp, pctChange(float64(old.BytesPerOp), float64(b.BytesPerOp)),
			allocsDelta(old, b))
	}
	for name := range prev {
		fmt.Fprintf(w, "  %-16s missing from this run (baseline only)\n", name)
	}
}

// allocsDelta renders the allocs/op comparison, writing "n/a" for a
// side that ran without -benchmem rather than conflating it with zero.
func allocsDelta(old, cur Benchmark) string {
	oldAllocs, oldOK := old.allocs()
	newAllocs, newOK := cur.allocs()
	switch {
	case oldOK && newOK:
		return fmt.Sprintf("%d -> %d (%+d)", oldAllocs, newAllocs, newAllocs-oldAllocs)
	case oldOK:
		return fmt.Sprintf("%d -> n/a", oldAllocs)
	case newOK:
		return fmt.Sprintf("n/a -> %d", newAllocs)
	default:
		return "n/a"
	}
}

// pctChange is the relative change from old to cur in percent; 0 when
// the baseline value is 0 (no meaningful ratio).
func pctChange(old, cur float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (cur - old) / old
}

// parse reads `go test -bench` text and extracts the result lines.
func parse(r io.Reader) (Report, error) {
	var report Report
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.OS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Arch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok, err := parseLine(line)
		if err != nil {
			return Report{}, err
		}
		if ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	return report, sc.Err()
}

// parseLine parses one benchmark result line; ok is false for
// Benchmark-prefixed lines that are not results (e.g. a bare name echoed
// with -v).
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	// Name, iterations, value, "ns/op", then optional -benchmem pairs.
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false, nil
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	nsPerOp, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Benchmark{}, false, fmt.Errorf("bad ns/op in %q: %w", line, err)
	}
	b := Benchmark{Name: name, Iterations: iters, NsPerOp: nsPerOp}
	if nsPerOp > 0 {
		b.TrialsPerSec = 1e9 / nsPerOp
	}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			v := v
			b.AllocsPerOp = &v
		}
	}
	return b, true, nil
}
