// Command benchjson distills `go test -bench` output into a small JSON
// report. It reads the benchmark text on stdin and writes one record per
// benchmark line with the iteration count, ns/op, and the derived
// trials/sec throughput — the shape `make bench` stores in
// BENCH_engine.json so engine-backend throughput can be tracked across
// commits without parsing the raw bench text again.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./internal/engine | benchjson -o BENCH_engine.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	// Name is the benchmark name with the Benchmark prefix and any
	// -GOMAXPROCS suffix stripped (e.g. "EngineSMP").
	Name string `json:"name"`
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op: nanoseconds per trial.
	NsPerOp float64 `json:"ns_per_op"`
	// TrialsPerSec is 1e9/NsPerOp: engine trial throughput.
	TrialsPerSec float64 `json:"trials_per_sec"`
	// BytesPerOp is B/op when -benchmem was set (0 otherwise).
	BytesPerOp int64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is allocs/op when -benchmem was set (0 otherwise).
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
}

// Report is the file benchjson writes.
type Report struct {
	// OS echoes the bench header's goos when present.
	OS string `json:"os,omitempty"`
	// Arch echoes the bench header's goarch when present.
	Arch string `json:"arch,omitempty"`
	// CPU echoes the bench header's cpu when present.
	CPU string `json:"cpu,omitempty"`
	// Benchmarks holds one entry per parsed benchmark line.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_engine.json", "output file (- for stdout)")
	flag.Parse()
	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` text and extracts the result lines.
func parse(r io.Reader) (Report, error) {
	var report Report
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.OS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Arch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok, err := parseLine(line)
		if err != nil {
			return Report{}, err
		}
		if ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	return report, sc.Err()
}

// parseLine parses one benchmark result line; ok is false for
// Benchmark-prefixed lines that are not results (e.g. a bare name echoed
// with -v).
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	// Name, iterations, value, "ns/op", then optional -benchmem pairs.
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false, nil
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	nsPerOp, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Benchmark{}, false, fmt.Errorf("bad ns/op in %q: %w", line, err)
	}
	b := Benchmark{Name: name, Iterations: iters, NsPerOp: nsPerOp}
	if nsPerOp > 0 {
		b.TrialsPerSec = 1e9 / nsPerOp
	}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, true, nil
}
