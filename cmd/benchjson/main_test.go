package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/distributed-uniformity/dut/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineSMP-8     	   50000	      2500 ns/op	     320 B/op	       6 allocs/op
BenchmarkEngineCluster   	     100	    131515.5 ns/op
BenchmarkEngineCONGEST-8 	    1000	     17400 ns/op
BenchmarkEngineZero-8    	  500000	      1900 ns/op	     329 B/op	       0 allocs/op
PASS
ok  	github.com/distributed-uniformity/dut/internal/engine	0.008s
`

func allocsPtr(v int64) *int64 { return &v }

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if report.OS != "linux" || report.Arch != "amd64" || report.CPU == "" {
		t.Fatalf("header: %+v", report)
	}
	if len(report.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(report.Benchmarks))
	}
	smp := report.Benchmarks[0]
	if smp.Name != "EngineSMP" {
		t.Errorf("name %q: GOMAXPROCS suffix not stripped", smp.Name)
	}
	if smp.Iterations != 50000 || smp.NsPerOp != 2500 {
		t.Errorf("smp = %+v", smp)
	}
	if want := 1e9 / 2500; math.Abs(smp.TrialsPerSec-want) > 1e-9 {
		t.Errorf("trials/sec = %v, want %v", smp.TrialsPerSec, want)
	}
	if a, ok := smp.allocs(); smp.BytesPerOp != 320 || !ok || a != 6 {
		t.Errorf("benchmem pairs: %+v", smp)
	}
	cluster := report.Benchmarks[1]
	if cluster.Name != "EngineCluster" || cluster.NsPerOp != 131515.5 {
		t.Errorf("cluster = %+v", cluster)
	}
	if _, ok := cluster.allocs(); cluster.BytesPerOp != 0 || ok {
		t.Errorf("cluster benchmem should be absent: %+v", cluster)
	}
	zero := report.Benchmarks[3]
	if a, ok := zero.allocs(); !ok || a != 0 {
		t.Errorf("zero-alloc benchmark must record an explicit 0: %+v", zero)
	}
}

func TestZeroAllocsSurviveJSONRoundTrip(t *testing.T) {
	// The whole point of the pointer: a measured 0 allocs/op must appear
	// in the JSON, while a run without -benchmem must omit the field.
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	if out := string(enc); !strings.Contains(out, `"allocs_per_op":0`) {
		t.Errorf("encoded report drops the explicit zero allocs/op:\n%s", out)
	}
	noMem, err := json.Marshal(report.Benchmarks[1]) // EngineCluster ran without -benchmem
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(noMem), "allocs_per_op") {
		t.Errorf("benchmark without -benchmem should omit allocs_per_op:\n%s", noMem)
	}
	var back Report
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if a, ok := back.Benchmarks[3].allocs(); !ok || a != 0 {
		t.Errorf("round-tripped zero allocs = (%d, %v), want (0, true)", a, ok)
	}
	if _, ok := back.Benchmarks[1].allocs(); ok {
		t.Error("round-tripped no-benchmem entry grew an allocs measurement")
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	report, err := parse(strings.NewReader("BenchmarkFoo\nBenchmarkBar some junk here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from junk", len(report.Benchmarks))
	}
}

func TestPrintDeltas(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		{Name: "EngineSMP", TrialsPerSec: 578369, BytesPerOp: 357, AllocsPerOp: allocsPtr(15)},
		{Name: "EngineBare", TrialsPerSec: 200},
		{Name: "EngineGone", TrialsPerSec: 100},
	}}
	cur := Report{Benchmarks: []Benchmark{
		{Name: "EngineSMP", TrialsPerSec: 1156738, BytesPerOp: 40, AllocsPerOp: allocsPtr(3)},
		{Name: "EngineBare", TrialsPerSec: 220},
		{Name: "EngineNew", TrialsPerSec: 50},
	}}
	var buf strings.Builder
	printDeltas(&buf, base, cur)
	out := buf.String()
	for _, want := range []string{
		"allocs/op 15 -> 3 (-12)",
		"trials/sec 578369 -> 1156738 (+100.0%)",
		"B/op 357 -> 40 (-88.8%)",
		"allocs/op n/a",
		"EngineNew",
		"EngineGone",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("delta output missing %q:\n%s", want, out)
		}
	}
}

func TestPctChange(t *testing.T) {
	if got := pctChange(0, 5); got != 0 {
		t.Errorf("pctChange(0, 5) = %v, want 0", got)
	}
	if got := pctChange(200, 100); got != -50 {
		t.Errorf("pctChange(200, 100) = %v, want -50", got)
	}
}

func TestParseRejectsMalformedCounts(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX xx 5 ns/op\n")); err == nil {
		t.Error("bad iteration count accepted")
	}
	if _, err := parse(strings.NewReader("BenchmarkX 5 yy ns/op\n")); err == nil {
		t.Error("bad ns/op accepted")
	}
}

func TestTrendFromHistory(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r Report, at time.Time) {
		t.Helper()
		enc, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(path, at, at); err != nil {
			t.Fatal(err)
		}
	}
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	// Written out of lexical order: the modification time, not the name,
	// must order the runs.
	write("bbb2222.json", Report{Benchmarks: []Benchmark{
		{Name: "EngineSMP", TrialsPerSec: 2000, AllocsPerOp: allocsPtr(0)},
		{Name: "EngineNew", TrialsPerSec: 99},
	}}, base.Add(time.Hour))
	write("aaa1111.json", Report{Benchmarks: []Benchmark{
		{Name: "EngineSMP", TrialsPerSec: 1000, AllocsPerOp: allocsPtr(3)},
	}}, base)
	write("not-a-report.txt", Report{}, base)

	runs, err := loadHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].label != "aaa1111" || runs[1].label != "bbb2222" {
		t.Fatalf("loadHistory order = %+v, want aaa1111 then bbb2222", runs)
	}
	out := renderTrend(runs)
	for _, want := range []string{
		"## EngineSMP",
		"## EngineNew",
		"| `aaa1111` | 1000 | 3 |",
		"| `bbb2222` | 2000 | 0 |",
		"| `bbb2222` | 99 | n/a |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trend missing %q:\n%s", want, out)
		}
	}
	// Oldest run first within a benchmark's table.
	if strings.Index(out, "aaa1111") > strings.Index(out, "bbb2222") {
		t.Errorf("runs out of order:\n%s", out)
	}
	trend := filepath.Join(dir, "TREND.md")
	if err := writeTrend(dir, trend); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(trend); err != nil || string(data) != out {
		t.Errorf("writeTrend wrote a different table (err=%v)", err)
	}
}

func TestFindRegressions(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		{Name: "Steady", TrialsPerSec: 1000},
		{Name: "Slower", TrialsPerSec: 1000},
		{Name: "ZeroBase", TrialsPerSec: 0},
	}}
	cur := Report{Benchmarks: []Benchmark{
		{Name: "Steady", TrialsPerSec: 950},   // -5%: inside a 20% budget
		{Name: "Slower", TrialsPerSec: 700},   // -30%: over budget
		{Name: "ZeroBase", TrialsPerSec: 500}, // no meaningful baseline ratio
		{Name: "Brand", TrialsPerSec: 1},      // new benchmark, never gated
	}}
	got := findRegressions(base, cur, 20, metricTrialsPerSec)
	if len(got) != 1 || !strings.Contains(got[0], "Slower") {
		t.Errorf("findRegressions = %v, want exactly the Slower entry", got)
	}
	if got := findRegressions(base, cur, 50, metricTrialsPerSec); len(got) != 0 {
		t.Errorf("findRegressions with 50%% budget = %v, want none", got)
	}
}

func TestFindRegressionsAllocsMetric(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		{Name: "Steady", TrialsPerSec: 1000, AllocsPerOp: allocsPtr(100)},
		{Name: "Grown", TrialsPerSec: 1000, AllocsPerOp: allocsPtr(100)},
		{Name: "ZeroHeld", TrialsPerSec: 1000, AllocsPerOp: allocsPtr(0)},
		{Name: "ZeroLost", TrialsPerSec: 1000, AllocsPerOp: allocsPtr(0)},
		{Name: "NoMem", TrialsPerSec: 1000},
	}}
	cur := Report{Benchmarks: []Benchmark{
		// Throughput collapse must not trip the allocs gate — CI uses it
		// precisely because trials/sec is noisy on shared runners.
		{Name: "Steady", TrialsPerSec: 10, AllocsPerOp: allocsPtr(105)}, // +5%: inside a 10% budget
		{Name: "Grown", TrialsPerSec: 1000, AllocsPerOp: allocsPtr(120)},
		{Name: "ZeroHeld", TrialsPerSec: 1000, AllocsPerOp: allocsPtr(0)},
		{Name: "ZeroLost", TrialsPerSec: 1000, AllocsPerOp: allocsPtr(1)},
		{Name: "NoMem", TrialsPerSec: 1000, AllocsPerOp: allocsPtr(50)},
	}}
	got := findRegressions(base, cur, 10, metricAllocsPerOp)
	if len(got) != 2 {
		t.Fatalf("findRegressions(allocs) = %v, want Grown and ZeroLost", got)
	}
	joined := strings.Join(got, "\n")
	for _, want := range []string{"Grown", "ZeroLost"} {
		if !strings.Contains(joined, want) {
			t.Errorf("allocs regressions missing %s:\n%s", want, joined)
		}
	}
}
