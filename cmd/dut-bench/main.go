// Command dut-bench regenerates the experiment tables reported in
// EXPERIMENTS.md: one table per theorem/lemma of Meir-Minzer-Oshman
// (PODC 2019), written as markdown (and optionally CSV) under -out.
//
// Usage:
//
//	dut-bench [-run E1,E2] [-scale 1.0] [-seed 1] [-out results] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/distributed-uniformity/dut/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runList = flag.String("run", "", "comma-separated experiment ids (default: all)")
		scale   = flag.Float64("scale", 1, "trial-count multiplier; <1 for smoke runs")
		seed    = flag.Uint64("seed", 1, "random seed")
		outDir  = flag.String("out", "results", "output directory")
		csv     = flag.Bool("csv", false, "also write CSV files")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()
	return benchMain(*runList, *scale, *seed, *outDir, *csv, *list)
}

// benchMain is the flag-free body of the command; tests call it directly.
func benchMain(runList string, scale float64, seed uint64, outDir string, csv, list bool) int {
	if list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %-55s reproduces %s\n", e.ID, e.Title, e.Reproduces)
		}
		return 0
	}

	wanted := map[string]bool{}
	if runList != "" {
		for _, id := range strings.Split(runList, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "dut-bench: %v\n", err)
		return 1
	}

	cfg := experiments.Config{Scale: scale, Seed: seed}
	failures := 0
	for _, e := range experiments.Registry() {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		start := time.Now()
		fmt.Printf("== %s: %s (reproduces %s)\n", e.ID, e.Title, e.Reproduces)
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dut-bench: %s failed: %v\n", e.ID, err)
			failures++
			continue
		}
		md := table.Markdown()
		fmt.Println(md)
		fmt.Printf("   (%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		path := filepath.Join(outDir, e.ID+".md")
		if err := os.WriteFile(path, []byte(md), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dut-bench: write %s: %v\n", path, err)
			failures++
		}
		if csv {
			path := filepath.Join(outDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dut-bench: write %s: %v\n", path, err)
				failures++
			}
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}
