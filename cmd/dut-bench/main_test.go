package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchMainList(t *testing.T) {
	if code := benchMain("", 1, 1, t.TempDir(), false, true); code != 0 {
		t.Errorf("list exit = %d", code)
	}
}

func TestBenchMainRunsOneExperiment(t *testing.T) {
	dir := t.TempDir()
	// E10 is exact and fast at any scale.
	if code := benchMain("E10", 0.05, 1, dir, true, false); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	md, err := os.ReadFile(filepath.Join(dir, "E10.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "E10") {
		t.Error("markdown output missing experiment content")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "E10.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "residual") {
		t.Error("csv output missing header")
	}
	// Unselected experiments must not be written.
	if _, err := os.Stat(filepath.Join(dir, "E1.md")); !os.IsNotExist(err) {
		t.Error("unselected experiment was written")
	}
}

func TestBenchMainUnknownIDWritesNothing(t *testing.T) {
	dir := t.TempDir()
	if code := benchMain("E99", 0.05, 1, dir, false, false); code != 0 {
		t.Errorf("unknown id exit = %d (selection simply matches nothing)", code)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("unexpected outputs: %v", entries)
	}
}

func TestBenchMainBadOutputDir(t *testing.T) {
	// A file in place of the output directory must fail cleanly.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := benchMain("E10", 0.05, 1, blocker, false, false); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
}
