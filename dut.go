// Package dut is the public API of the distributed uniformity testing
// library, a full reproduction of Meir, Minzer and Oshman, "Can Distributed
// Uniformity Testing Be Local?" (PODC 2019).
//
// The library has four layers, all reachable from this package:
//
//   - Distributions (dut.Uniform, dut.Zipf, dut.NewHardFamily, ...): finite
//     discrete distributions, distances, samplers, and the paper's hard
//     family nu_z.
//   - Centralized testers (dut.TestUniformity, dut.NewCollisionTester,
//     dut.NewIdentityTester, ...): the classical baselines.
//   - Distributed testers (dut.NewThresholdTester, dut.NewANDTester,
//     dut.NewACTTester, dut.NewGroupLearner): the simultaneous-message
//     protocols the paper's lower bounds are measured against, runnable
//     in-process or as a real networked cluster (dut.NewCluster).
//   - Lower-bound machinery (dut.LowerBoundSamples, dut.ANDRuleLowerBound,
//     ...): closed-form evaluators of the paper's theorems, for plotting
//     measured costs against proven floors.
//
// The deeper machinery (Fourier analysis of strategies, exhaustive lemma
// verification, the experiment registry) lives in internal/ packages and is
// exposed through the cmd/ binaries; see README.md.
package dut

import (
	"fmt"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/centralized"
	"github.com/distributed-uniformity/dut/internal/congest"
	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
	"github.com/distributed-uniformity/dut/internal/lowerbound"
	"github.com/distributed-uniformity/dut/internal/network"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// Core re-exported types. Aliases keep the facade zero-cost: values flow
// between this package and the internal implementations unchanged.
type (
	// Distribution is a discrete probability distribution over {0..n-1}.
	Distribution = dist.Dist
	// Sampler draws iid samples from a distribution.
	Sampler = dist.Sampler
	// HardFamily is the paper's Section 3 perturbation family over a
	// doubled Boolean cube.
	HardFamily = dist.HardInstance
	// Perturbation is the sign vector z selecting one nu_z.
	Perturbation = dist.Perturbation

	// Tester is a centralized distribution tester.
	Tester = centralized.Tester
	// ClosenessTester tests equality of two unknown distributions.
	ClosenessTester = centralized.ClosenessTester
	// IndependenceTester tests independence of pair-valued samples.
	IndependenceTester = centralized.IndependenceTester
	// Learner estimates a distribution from samples.
	Learner = centralized.Learner

	// Protocol is a distributed tester: k players, a referee, one verdict.
	Protocol = core.Protocol
	// LocalRule is a player's strategy.
	LocalRule = core.LocalRule
	// Referee is the decision function applied to the players' messages.
	Referee = core.Referee
	// DecisionRule is a Boolean referee rule over single-bit votes.
	DecisionRule = core.DecisionRule
	// Message is a player's report (up to 64 bits).
	Message = core.Message
	// ThresholdTesterConfig configures NewThresholdTester.
	ThresholdTesterConfig = core.ThresholdTesterConfig
	// GroupLearner is the distributed learning protocol of Theorem 1.4's
	// task.
	GroupLearner = core.GroupLearner

	// Cluster runs a protocol as a networked system (referee server +
	// player nodes).
	Cluster = network.Cluster
	// ClusterConfig configures NewCluster.
	ClusterConfig = network.ClusterConfig
	// Transport carries the cluster's frames.
	Transport = network.Transport
	// RoundStats reports one networked round: votes received, stragglers
	// tolerated, connect retries and wall time.
	RoundStats = network.RoundStats
	// FaultTransport decorates a Transport with deterministic injected
	// faults for chaos testing.
	FaultTransport = network.FaultTransport
	// FaultConfig configures NewFaultTransport.
	FaultConfig = network.FaultConfig
	// FaultPlan is one player's injected-fault plan.
	FaultPlan = network.FaultPlan
	// FaultStats counts the faults a FaultTransport actually injected.
	FaultStats = network.FaultStats
	// AbsenteePolicy says how a quorum-mode referee treats missing votes.
	AbsenteePolicy = core.AbsenteePolicy

	// AcceptanceEstimate reports a Monte-Carlo acceptance probability with
	// a Wilson confidence interval.
	AcceptanceEstimate = stats.SuccessEstimate
	// EstimateOptions tunes Monte-Carlo estimation.
	EstimateOptions = stats.EstimateOptions
)

// Decision rules, re-exported.
type (
	// ANDRule accepts iff every player accepts (the fully local rule).
	ANDRule = core.ANDRule
	// ORRule accepts iff any player accepts.
	ORRule = core.ORRule
	// ThresholdRule rejects iff at least T players reject.
	ThresholdRule = core.ThresholdRule
	// MajorityRule rejects iff a strict majority rejects.
	MajorityRule = core.MajorityRule
	// BitReferee lifts a DecisionRule to a Referee.
	BitReferee = core.BitReferee
	// QuantizedCollisionRule saturates each player's collision count
	// into an r-bit message (Theorem 6.4's communication regime).
	QuantizedCollisionRule = core.QuantizedCollisionRule
	// SumThresholdReferee accepts iff the sum of r-bit messages is at
	// most T.
	SumThresholdReferee = core.SumThresholdReferee
)

// Distribution constructors.
var (
	// Uniform returns U_n.
	Uniform = dist.Uniform
	// FromProbs builds a distribution from an explicit probability vector.
	FromProbs = dist.FromProbs
	// FromWeights builds a distribution proportional to weights.
	FromWeights = dist.FromWeights
	// Zipf returns a Zipf(s) distribution.
	Zipf = dist.Zipf
	// PairedBump is the canonical eps-far instance (+eps/n on even
	// elements, -eps/n on odd).
	PairedBump = dist.PairedBump
	// TwoBump tilts the two halves of the domain by ±eps/n.
	TwoBump = dist.TwoBump
	// HeavyHitter adds delta mass to one element.
	HeavyHitter = dist.HeavyHitter
	// NewHardFamily builds the paper's hard family with universe
	// n = 2^(ell+1).
	NewHardFamily = dist.NewHardInstance
	// NewSampler builds the default (alias-method) sampler.
	NewSampler = func(d Distribution) (Sampler, error) { return dist.NewAliasSampler(d) }

	// L1 is the L1 distance between distributions (the paper's metric).
	L1 = dist.L1
	// TV is the total variation distance.
	TV = dist.TV
	// KL is the Kullback-Leibler divergence in bits.
	KL = dist.KL
	// DistanceFromUniform is ||d - U_n||_1.
	DistanceFromUniform = dist.DistanceFromUniform
)

// Centralized testers.
var (
	// NewCollisionTester is the Goldreich-Ron/Paninski collision tester
	// (Theta(sqrt(n)/eps^2) samples).
	NewCollisionTester = centralized.NewCollisionTester
	// NewChiSquaredTester tests identity to a known distribution.
	NewChiSquaredTester = centralized.NewChiSquaredTester
	// NewPluginTester is the learn-then-compare baseline
	// (Theta(n/eps^2) samples).
	NewPluginTester = centralized.NewPluginTester
	// NewIdentityTester tests identity to an arbitrary known distribution
	// via Goldreich's reduction to uniformity.
	NewIdentityTester = centralized.NewIdentityTester
	// NewLearner builds an empirical (optionally smoothed) learner.
	NewLearner = centralized.NewLearner
	// NewClosenessTester tests whether two unknown distributions are equal
	// or eps-far (L2-flavored two-sample tester).
	NewClosenessTester = centralized.NewClosenessTester
	// NewIndependenceTester is Pearson's chi-squared independence test
	// over pair-encoded samples.
	NewIndependenceTester = centralized.NewIndependenceTester
	// ProductDist and CorrelatedPair build independence-testing workloads.
	ProductDist    = centralized.ProductDist
	CorrelatedPair = centralized.CorrelatedPair
	// RecommendedSamples is the collision tester's sample size for a 2/3
	// guarantee.
	RecommendedSamples = centralized.RecommendedSamples
)

// Distributed protocols.
var (
	// NewThresholdTester builds the sample-optimal threshold-rule tester
	// of Fischer-Meir-Oshman (q = O(sqrt(n/k)/eps^2)).
	NewThresholdTester = core.NewThresholdTester
	// NewANDTester builds the fully local AND-rule tester.
	NewANDTester = core.NewANDTester
	// NewAsymmetricThresholdTester supports per-player sample counts
	// (Section 6.2's model).
	NewAsymmetricThresholdTester = core.NewAsymmetricThresholdTester
	// NewACTTester builds the single-sample l-bit public-coin tester
	// (k = Theta(n/(2^{l/2} eps^2)) players).
	NewACTTester = core.NewACTTester
	// NewGroupLearner builds the distributed learning protocol.
	NewGroupLearner = core.NewGroupLearner
	// NewQuantizedCollisionRule builds the r-bit saturating collision
	// rule over [n] with q samples per player.
	NewQuantizedCollisionRule = core.NewQuantizedCollisionRule
	// NewQuantizedSumTester wires the quantized rule to a sum-threshold
	// referee at the recommended threshold.
	NewQuantizedSumTester = core.NewQuantizedSumTester
	// QuantizedSumThreshold is that recommended threshold (two standard
	// deviations above the uniform collision-sum mean).
	QuantizedSumThreshold = core.QuantizedSumThreshold
	// RecommendedThresholdSamples is the threshold tester's per-player q
	// for a 2/3 guarantee.
	RecommendedThresholdSamples = core.RecommendedThresholdSamples
	// RecommendedACTPlayers is the hashing tester's player count for a 2/3
	// guarantee.
	RecommendedACTPlayers = core.RecommendedACTPlayers
	// DefaultThresholdT is the referee threshold making the threshold
	// tester sample-optimal.
	DefaultThresholdT = core.DefaultThresholdT
	// EstimateAcceptance measures a protocol's acceptance probability.
	EstimateAcceptance = core.EstimateAcceptance
	// Separates checks the 2/3-vs-1/3 guarantee against a null and an
	// alternative.
	Separates = core.Separates
	// Amplify majority-votes a protocol over an odd number of rounds,
	// driving its error down exponentially.
	Amplify = core.Amplify
	// RoundsForFailure sizes the amplification for a target failure
	// probability.
	RoundsForFailure = core.RoundsForFailure
)

// Networked deployment.
var (
	// NewCluster runs a protocol as a referee server plus player nodes.
	// Cluster.Run executes one round; Cluster.RunMany keeps the
	// connections open for a multi-round amplification session. With
	// ClusterConfig.MinVotes set the cluster tolerates stragglers down to
	// the quorum (see RunStats/RunManyStats for the per-round accounting).
	NewCluster = network.NewCluster
	// NewMemTransport is the in-process transport.
	NewMemTransport = network.NewMemTransport
	// NewFaultTransport decorates a transport with seeded fault injection.
	NewFaultTransport = network.NewFaultTransport
	// MajorityVerdict reduces a session's per-round verdicts to the
	// amplified decision.
	MajorityVerdict = network.MajorityVerdict
)

// Absentee policies for quorum-mode clusters: how a vote that never
// arrived enters the referee's decision.
const (
	// AbsenteeDefault defers to the decision rule's advice.
	AbsenteeDefault = core.AbsenteeDefault
	// AbsenteeReject counts a missing vote as a rejection.
	AbsenteeReject = core.AbsenteeReject
	// AbsenteeAccept counts a missing vote as an acceptance.
	AbsenteeAccept = core.AbsenteeAccept
	// AbsenteeOmit decides over the received votes only.
	AbsenteeOmit = core.AbsenteeOmit
)

// TCPTransport dials over TCP loopback.
type TCPTransport = network.TCPTransport

// Lower-bound formulas (Section 6 of the paper), for comparing measured
// costs against proven floors.
var (
	// LowerBoundSamples evaluates Theorem 6.1: any-rule distributed
	// uniformity testing needs q >= (C/eps^2) min(sqrt(n/k), n/k).
	LowerBoundSamples = lowerbound.Theorem61Q
	// ANDRuleLowerBound evaluates Theorem 6.5's AND-rule floor.
	ANDRuleLowerBound = lowerbound.Theorem65Q
	// ThresholdRuleLowerBound evaluates Theorem 1.3's T-threshold floor.
	ThresholdRuleLowerBound = lowerbound.Theorem13Q
	// LearningLowerBound evaluates Theorem 1.4: k = Omega(n^2/q^2).
	LearningLowerBound = lowerbound.Theorem14K
	// MultiBitLowerBound evaluates Theorem 6.4 for r-bit messages.
	MultiBitLowerBound = lowerbound.Theorem64Q
	// AsymmetricDeadlineLowerBound evaluates the Section 6.2 bound on the
	// common deadline tau.
	AsymmetricDeadlineLowerBound = lowerbound.AsymmetricTau
)

// TestUniformity runs the collision-based uniformity test on a batch of
// samples from a domain of size n with proximity eps. It returns true when
// the samples look uniform. The guarantee holds when len(samples) is at
// least RecommendedSamples(n, eps); with fewer samples the verdict is
// returned anyway but is weak.
func TestUniformity(samples []int, n int, eps float64) (bool, error) {
	if len(samples) < 2 {
		return false, fmt.Errorf("dut: uniformity test needs at least 2 samples, got %d", len(samples))
	}
	t, err := centralized.NewCollisionTester(n, len(samples), eps)
	if err != nil {
		return false, err
	}
	return t.Test(samples)
}

// NewRand returns a seeded generator of the kind every randomized API here
// accepts. Two generators with equal seeds produce identical streams.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// CONGEST-model deployment (the graph-network model of [FMO18], which
// Section 6.2 of the paper reduces to the referee model).
type (
	// Graph is an undirected communication graph for CONGEST deployments.
	Graph = congest.Graph
	// CONGESTTester runs the threshold tester by BFS-tree aggregation over
	// a Graph; it implements Protocol.
	CONGESTTester = congest.Tester
	// CONGESTTesterConfig configures NewCONGESTTester.
	CONGESTTesterConfig = congest.TesterConfig
)

// Unified execution engine: one context-aware trial driver behind the
// in-process SMP simulator, the networked cluster and the CONGEST
// deployment. All randomness derives from (seed, trial, player) streams,
// so equal seeds give bit-identical verdict sequences on every backend
// regardless of worker count.
type (
	// Engine bundles a Backend with EngineOptions; build one with
	// NewEngine and drive it via Run/Estimate/Separates/Amplify.
	Engine = engine.Engine
	// Backend executes protocol rounds for the engine's trial driver.
	Backend = engine.Backend
	// RoundSpec names one trial for a Backend.
	RoundSpec = engine.RoundSpec
	// BatchBackend is the optional batched extension of Backend: the
	// driver hands it whole slices of trials (EngineOptions.Batch /
	// EngineOptions.Window) so a backend can pack many trials per wire
	// frame and keep several batches in flight, with verdicts still
	// bit-identical to the unbatched run.
	BatchBackend = engine.BatchBackend
	// RoundResult is the uniform per-round accounting every backend
	// reports (a superset of the networked RoundStats).
	RoundResult = engine.RoundResult
	// EngineOptions configures the trial driver (workers, confidence,
	// base seed).
	EngineOptions = engine.Options
	// EngineResult is an estimate plus per-round results and totals.
	EngineResult = engine.Result
	// EngineTotals aggregates RoundResult accounting over a run.
	EngineTotals = engine.Totals
	// TrialSource yields the sampler for one trial; use FixedSource or
	// DistSource for the common cases.
	TrialSource = engine.Source
	// Separation is the engine's two-sided separation report.
	Separation = engine.Separation
	// SeparationOutcome is the three-valued verdict of a separation
	// check: Separated, NotSeparated or Inconclusive.
	SeparationOutcome = engine.Outcome
)

// Engine constructors and backend adapters.
var (
	// NewEngine bundles a backend with driver options.
	NewEngine = engine.New
	// BackendFor adapts any Protocol to the engine (a *core.SMP gets the
	// fully deterministic cross-backend treatment).
	BackendFor = core.BackendFor
	// NewClusterBackend adapts a networked Cluster: each trial is one
	// full networked round whose verdict is bit-identical to the SMP
	// backend's for the same seed.
	NewClusterBackend = network.NewBackend
	// NewCONGESTBackend adapts a CONGEST tester; trials additionally
	// report Messages and CommRounds.
	NewCONGESTBackend = congest.NewBackend
	// FixedSource serves the same sampler on every trial.
	FixedSource = engine.Fixed
	// DistSource builds the default sampler for a distribution once and
	// serves it on every trial.
	DistSource = engine.FromDist
)

// Separation outcomes.
const (
	// Separated: both interval bounds clear the target.
	Separated = engine.Separated
	// NotSeparated: an interval bound misses the target.
	NotSeparated = engine.NotSeparated
	// SeparationInconclusive: an interval straddles the target.
	SeparationInconclusive = engine.Inconclusive
)

// Graph builders and the CONGEST tester constructor.
var (
	// NewGraph builds a graph from an edge list.
	NewGraph = congest.NewGraph
	// PathGraph, RingGraph, StarGraph, CompleteGraph, GridGraph and
	// RandomTreeGraph are standard topologies.
	PathGraph       = congest.Path
	RingGraph       = congest.Ring
	StarGraph       = congest.Star
	CompleteGraph   = congest.Complete
	GridGraph       = congest.Grid
	RandomTreeGraph = congest.RandomTree
	// NewCONGESTTester deploys a single-bit local rule over a graph with
	// BFS-tree vote aggregation.
	NewCONGESTTester = congest.NewTester
)
