#!/usr/bin/env bash
# load-test.sh — reproducible heavy-traffic runs of the sharded referee
# tree through `dut netdemo`.
#
# Usage:
#   scripts/load-test.sh [basic|throughput|chaos|broadcast|broadcast-chaos] [extra netdemo flags...]
#
# Profiles:
#   basic       a mid-size tree on in-memory pipes: 1k players, 8
#               aggregators, strict verdicts — the smoke test for the
#               topology.
#   throughput  the pipelined wire protocol at scale: 10k players, 16
#               aggregators, batched rounds with windows in flight.
#   chaos       a quorum-mode tree under fault injection (crashed and
#               delayed players) with shuffled shard placement.
#   broadcast   the verdict fan-out wall: 100k players behind 32
#               aggregators with batched rounds in flight. The per-tier
#               frame counts netdemo prints show the root writing one
#               AGG_VERDICT per aggregator per batch while the
#               aggregators re-expand them to 100k VERDICT_BATCHes.
#   broadcast-chaos
#               the same 100k x 32 tree in quorum mode with crashed and
#               delayed players riding the relay path.
#
# Every profile pins its seed, so two runs of the same profile exercise
# byte-identical traffic. Extra flags are passed through to netdemo and
# may override the profile's defaults (flag packages take the last
# occurrence).
set -euo pipefail

cd "$(dirname "$0")/.."

profile="${1:-basic}"
shift || true

run() {
    echo "+ dut netdemo $*" >&2
    go run ./cmd/dut netdemo "$@"
}

case "$profile" in
basic)
    run -n 1024 -k 1000 -q 4 -shards 8 -rounds 5 -batch 0 -seed 1 "$@"
    ;;
throughput)
    run -n 4096 -k 10000 -q 2 -bits 3 -shards 16 -rounds 64 \
        -batch 16 -window 4 -seed 2 "$@"
    ;;
chaos)
    run -n 1024 -k 1000 -q 4 -shards 8 -shardseed 7 -rounds 8 \
        -minvotes 900 -crash 20 -delay 2ms -batch 8 -window 2 -seed 3 "$@"
    ;;
broadcast)
    run -n 4096 -k 100000 -q 2 -shards 32 -rounds 16 \
        -batch 8 -window 2 -seed 4 "$@"
    ;;
broadcast-chaos)
    run -n 4096 -k 100000 -q 2 -shards 32 -shardseed 7 -rounds 8 \
        -minvotes 99000 -crash 200 -delay 1ms -batch 4 -window 2 -seed 5 "$@"
    ;;
*)
    echo "load-test.sh: unknown profile '$profile' (want basic, throughput, chaos, broadcast or broadcast-chaos)" >&2
    exit 2
    ;;
esac
