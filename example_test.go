package dut_test

import (
	"fmt"

	dut "github.com/distributed-uniformity/dut"
)

// The simplest entry point: feed samples to the collision-based uniformity
// test.
func ExampleTestUniformity() {
	const n, eps = 256, 0.5
	far, _ := dut.PairedBump(n, eps) // an eps-far distribution
	sampler, _ := dut.NewSampler(far)
	rng := dut.NewRand(2)

	samples := make([]int, dut.RecommendedSamples(n, eps))
	for i := range samples {
		samples[i] = sampler.Sample(rng)
	}
	uniform, _ := dut.TestUniformity(samples, n, eps)
	fmt.Println("looks uniform:", uniform)
	// Output: looks uniform: false
}

// A distributed tester: k players, each with sqrt(k)x fewer samples than a
// centralized tester would need, and a threshold-rule referee.
func ExampleNewThresholdTester() {
	const n, k, eps = 1024, 16, 0.5
	q := dut.RecommendedThresholdSamples(n, k, eps)
	tester, _ := dut.NewThresholdTester(dut.ThresholdTesterConfig{
		N: n, K: k, Q: q, Eps: eps,
	})

	uniform, _ := dut.Uniform(n)
	sampler, _ := dut.NewSampler(uniform)
	accept, _ := tester.Run(sampler, dut.NewRand(7))
	fmt.Printf("%d players x %d samples, verdict on uniform input: %v\n", k, q, accept)
	// Output: 16 players x 322 samples, verdict on uniform input: true
}

// The paper's hard family: every nu_z is exactly eps-far from uniform, yet
// their average is exactly uniform.
func ExampleNewHardFamily() {
	family, _ := dut.NewHardFamily(5, 0.5) // universe size 2^6 = 64
	nu, _, _ := family.RandomPerturbed(dut.NewRand(3))
	fmt.Printf("universe %d, distance from uniform %.2f\n",
		family.N(), dut.DistanceFromUniform(nu))
	// Output: universe 64, distance from uniform 0.50
}

// Evaluating the paper's lower bounds at concrete parameters.
func ExampleLowerBoundSamples() {
	floor, _ := dut.LowerBoundSamples(4096, 64, 0.5, 1)
	fmt.Printf("any-rule floor at n=4096, k=64, eps=0.5: %.0f samples/player\n", floor)
	// Output: any-rule floor at n=4096, k=64, eps=0.5: 32 samples/player
}

// Majority-vote amplification turns the model's 2/3 guarantee into any
// target confidence.
func ExampleAmplify() {
	const n, k, eps = 256, 8, 0.5
	q := dut.RecommendedThresholdSamples(n, k, eps)
	inner, _ := dut.NewThresholdTester(dut.ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	rounds, _ := dut.RoundsForFailure(0.01)
	boosted, _ := dut.Amplify(inner, rounds)
	fmt.Printf("%d rounds for 1%% failure; per-player samples %d\n",
		boosted.Rounds(), boosted.MaxSamplesPerPlayer())
	// Output: 83 rounds for 1% failure; per-player samples 19007
}
