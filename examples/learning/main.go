// Learning: k one-bit-per-player nodes jointly learn an unknown
// distribution (Theorem 1.4's task). The example sweeps the player count
// and prints the measured L1 error next to the paper's k = Omega(n^2/q^2)
// lower bound for the same accuracy.
package main

import (
	"fmt"
	"log"

	dut "github.com/distributed-uniformity/dut"
)

func main() {
	const (
		n = 16
		q = 4 // samples per player
	)
	truth, err := dut.Zipf(n, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("learning a Zipf(1) distribution over %d items, %d samples/player, 1 bit/player\n\n", n, q)
	fmt.Printf("%8s  %12s\n", "players", "mean L1 err")
	var lastErr float64
	for _, groups := range []int{4, 16, 64, 256, 1024} {
		k := groups * n
		learner, err := dut.NewGroupLearner(n, k, q)
		if err != nil {
			log.Fatal(err)
		}
		meanErr, err := learner.EstimateL1Error(truth, 40, uint64(groups))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %12.3f\n", k, meanErr)
		lastErr = meanErr
	}

	floor, err := dut.LearningLowerBound(n, q, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat the final size the estimate is within %.3f of the truth in L1;\n", lastErr)
	fmt.Printf("Theorem 1.4 lower bound for constant accuracy with q=%d: k >= %.0f players\n", q, floor)

	// Show the final learned distribution next to the truth.
	learner, err := dut.NewGroupLearner(n, 1024*n, q)
	if err != nil {
		log.Fatal(err)
	}
	sampler, err := dut.NewSampler(truth)
	if err != nil {
		log.Fatal(err)
	}
	est, err := learner.Learn(sampler, dut.NewRand(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%6s  %8s  %8s\n", "item", "truth", "learned")
	for i := 0; i < n; i++ {
		fmt.Printf("%6d  %8.4f  %8.4f\n", i, truth.Prob(i), est.Prob(i))
	}
}
