// Gridnet: distributed uniformity testing in the CONGEST model — the
// graph-network setting the lower bounds transfer to via the paper's
// Section 6.2 reduction. A 6x6 sensor grid aggregates its votes up a BFS
// tree; no referee exists, yet the verdict (and its statistics) match the
// referee model exactly, while rounds track the grid's diameter and every
// message fits in a CONGEST-sized payload.
package main

import (
	"context"
	"fmt"
	"log"

	dut "github.com/distributed-uniformity/dut"
)

func main() {
	const (
		rows, cols = 6, 6
		k          = rows * cols
		n          = 1024
		eps        = 0.5
	)
	grid, err := dut.GridGraph(rows, cols)
	if err != nil {
		log.Fatal(err)
	}
	q := dut.RecommendedThresholdSamples(n, k, eps)

	// Reuse the SMP threshold tester's local rule; the grid replaces the
	// referee with BFS-tree aggregation rooted at a corner node.
	smp, err := dut.NewThresholdTester(dut.ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		log.Fatal(err)
	}
	tester, err := dut.NewCONGESTTester(dut.CONGESTTesterConfig{
		Graph: grid,
		Root:  0,
		Q:     q,
		Rule:  smp.Local(),
		T:     dut.DefaultThresholdT(k),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The execution engine drives the grid like any other backend; each
	// trial's RoundResult additionally reports the CONGEST accounting
	// (communication rounds, edge messages).
	backend, err := dut.NewCONGESTBackend(tester)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := dut.NewEngine(backend, dut.EngineOptions{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	scenario := func(name string, d dut.Distribution) {
		sampler, err := dut.NewSampler(d)
		if err != nil {
			log.Fatal(err)
		}
		results, err := eng.Run(context.Background(), dut.FixedSource(sampler), 1)
		if err != nil {
			log.Fatal(err)
		}
		r := results[0]
		verdict := "uniform"
		if !r.Verdict {
			verdict = "FAR FROM UNIFORM"
		}
		fmt.Printf("%-22s -> %-17s (%d rounds, %d messages)\n",
			name, verdict, r.CommRounds, r.Messages)
	}

	fmt.Printf("%dx%d grid (diameter %d), %d sensors x %d samples, n=%d, eps=%v\n\n",
		rows, cols, grid.Diameter(), k, q, n, eps)

	uniform, err := dut.Uniform(n)
	if err != nil {
		log.Fatal(err)
	}
	scenario("uniform input", uniform)

	family, err := dut.NewHardFamily(9, eps) // n = 2^10
	if err != nil {
		log.Fatal(err)
	}
	nu, _, err := family.RandomPerturbed(dut.NewRand(21))
	if err != nil {
		log.Fatal(err)
	}
	scenario("adversarial nu_z", nu)

	fmt.Printf("\nCONGEST budget: every message fits well under the model's O(log n) bits;\n")
	fmt.Printf("round count ~ diameter (%d); the verdict statistics equal the referee model's.\n", grid.Diameter())
}
