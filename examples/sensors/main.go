// Sensors: the paper's motivating scenario — a sensor network that raises
// an alarm when its measurements drift from the expected (uniform)
// profile. The network runs as a real cluster: a referee server plus k
// sensor nodes exchanging frames over TCP loopback. The deployment uses the
// fully local AND rule (any one alarmed sensor alarms the network), so each
// sensor must sample at near-centralized rates — the locality cost
// quantified by Theorem 1.2.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	dut "github.com/distributed-uniformity/dut"
)

func main() {
	const (
		n       = 1024 // measurement buckets
		eps     = 0.5  // alarm sensitivity
		sensors = 8
	)
	rng := dut.NewRand(99)

	// The AND rule forces centralized-scale sampling per sensor
	// (Theorem 1.2); the threshold rule would need only sqrt(k)x less.
	qAND := dut.RecommendedSamples(n, eps)
	andTester, err := dut.NewANDTester(n, sensors, qAND, eps)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := dut.NewCluster(dut.ClusterConfig{
		K: sensors, Q: qAND,
		Rule:      andTester.Local(),
		Referee:   dut.BitReferee{Rule: dut.ANDRule{}},
		Transport: dut.TCPTransport{},
		Timeout:   30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each protocol round is only 2/3-confident, as the model requires
	// (the healthy-side false-alarm rate is ~1/4 by design); a deployment
	// amplifies by running independent rounds and alerting when at least
	// two thirds of them alarm. The execution engine drives the rounds —
	// each engine trial is one full networked round over TCP loopback —
	// and its (seed, trial, sensor) streams make the session reproducible.
	backend, err := dut.NewClusterBackend(cluster)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := dut.NewEngine(backend, dut.EngineOptions{Seed: 99, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	const rounds = 15
	scenario := func(name string, d dut.Distribution) {
		sampler, err := dut.NewSampler(d)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		results, err := eng.Run(context.Background(), dut.FixedSource(sampler), rounds)
		if err != nil {
			log.Fatal(err)
		}
		alarms := 0
		for _, r := range results {
			if !r.Verdict {
				alarms++
			}
		}
		verdict := "ALL CLEAR"
		if 3*alarms >= 2*rounds {
			verdict = "ALARM RAISED"
		}
		fmt.Printf("%-28s -> %-12s (%d/%d rounds alarmed, %v total, %d sensors x %d readings)\n",
			name, verdict, alarms, rounds, time.Since(start).Round(time.Millisecond), sensors, qAND)
	}

	healthy, err := dut.Uniform(n)
	if err != nil {
		log.Fatal(err)
	}
	scenario("healthy environment", healthy)

	// A stuck sensor cluster: one measurement bucket absorbs extra mass.
	stuck, err := dut.HeavyHitter(n, 17, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(stuck-bucket distance from uniform: %.2f)\n", dut.DistanceFromUniform(stuck))
	scenario("stuck measurement bucket", stuck)

	// Adversarial drift: the paper's hard family, the worst case for any
	// tester at this eps.
	family, err := dut.NewHardFamily(9, eps) // n = 2^10
	if err != nil {
		log.Fatal(err)
	}
	nu, _, err := family.RandomPerturbed(rng)
	if err != nil {
		log.Fatal(err)
	}
	scenario("adversarial eps-far drift", nu)

	fmt.Printf("\nlocality tax: AND rule needs %d readings/sensor; the threshold rule would need %d\n",
		qAND, dut.RecommendedThresholdSamples(n, sensors, eps))
}
