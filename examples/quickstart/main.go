// Quickstart: test whether a stream of samples is uniform, first with the
// centralized collision tester and then with a 16-player distributed
// tester, and compare the per-player cost against the paper's lower bound.
package main

import (
	"context"
	"fmt"
	"log"

	dut "github.com/distributed-uniformity/dut"
)

func main() {
	const (
		n   = 1024 // domain size
		eps = 0.5  // proximity parameter
		k   = 16   // players in the distributed tester
	)
	rng := dut.NewRand(42)

	// An unknown distribution: eps-far from uniform.
	unknown, err := dut.PairedBump(n, eps)
	if err != nil {
		log.Fatal(err)
	}
	sampler, err := dut.NewSampler(unknown)
	if err != nil {
		log.Fatal(err)
	}

	// --- Centralized: one tester sees all q samples. ---
	q := dut.RecommendedSamples(n, eps)
	samples := make([]int, q)
	for i := range samples {
		samples[i] = sampler.Sample(rng)
	}
	uniform, err := dut.TestUniformity(samples, n, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("centralized: %d samples -> uniform? %v\n", q, uniform)

	// --- Distributed: k players with far fewer samples each. ---
	qPer := dut.RecommendedThresholdSamples(n, k, eps)
	tester, err := dut.NewThresholdTester(dut.ThresholdTesterConfig{
		N: n, K: k, Q: qPer, Eps: eps,
	})
	if err != nil {
		log.Fatal(err)
	}
	// One protocol run is only 2/3-confident; the execution engine runs
	// trials on a worker pool (deterministically in the seed) and reports
	// the acceptance rate with a confidence interval.
	backend, err := dut.BackendFor(tester)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := dut.NewEngine(backend, dut.EngineOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	const trials = 25
	res, err := eng.Estimate(context.Background(), dut.FixedSource(sampler), trials)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed: %d players x %d samples -> accepted %d/%d trials (uniform? %v)\n",
		k, qPer, res.Totals.Accepts, trials, res.Estimate.P >= 0.5)

	// --- How close is that to optimal? Theorem 6.1's floor: ---
	floor, err := dut.LowerBoundSamples(n, k, eps, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-player lower bound (Theorem 6.1, C=1): %.0f samples\n", floor)
	fmt.Printf("centralized-per-player equivalent: %d; distributed saves %.1fx per player\n",
		q, float64(q)/float64(qPer))
}
