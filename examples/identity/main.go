// Identity: test whether traffic matches a known reference profile (a
// Zipf popularity curve) using Goldreich's reduction from identity testing
// to uniformity testing — the completeness property that makes the paper's
// uniformity lower bounds bite for every identity-testing problem.
package main

import (
	"fmt"
	"log"

	dut "github.com/distributed-uniformity/dut"
)

func main() {
	const (
		n   = 64  // items
		eps = 0.4 // tolerated drift (L1)
	)
	rng := dut.NewRand(11)

	// The reference profile the system was provisioned for.
	reference, err := dut.Zipf(n, 1)
	if err != nil {
		log.Fatal(err)
	}

	// The reduced uniformity instance lives on a domain of ~8n/eps
	// buckets; pick the sample size for that domain.
	q := dut.RecommendedSamples(8*n*3, eps/2)
	tester, err := dut.NewIdentityTester(reference, q, eps, 99)
	if err != nil {
		log.Fatal(err)
	}

	check := func(name string, actual dut.Distribution) {
		l1, err := dut.L1(actual, reference)
		if err != nil {
			log.Fatal(err)
		}
		sampler, err := dut.NewSampler(actual)
		if err != nil {
			log.Fatal(err)
		}
		samples := make([]int, q)
		for i := range samples {
			samples[i] = sampler.Sample(rng)
		}
		ok, err := tester.Test(samples)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "MATCHES reference"
		if !ok {
			verdict = "DRIFTED from reference"
		}
		fmt.Printf("%-24s (true L1 drift %.2f) -> %s\n", name, l1, verdict)
	}

	check("production traffic", reference)

	// Mild drift below the threshold: a slightly flatter curve.
	flatter, err := dut.Zipf(n, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	check("slightly flatter", flatter)

	// Real drift: traffic collapses onto a few hot items.
	hot, err := dut.Zipf(n, 2.5)
	if err != nil {
		log.Fatal(err)
	}
	check("hot-spotted traffic", hot)

	fmt.Printf("\nreduction details: %d samples on %d reference items, judged on the reduced uniformity domain\n", q, n)
}
