package experiments

import (
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/boolfn"
	"github.com/distributed-uniformity/dut/internal/lowerbound"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// e14 verifies the Section 6 information pipeline: Fact 6.3 (the
// chi-squared bound dominates Bernoulli KL), and the per-player divergence
// of concrete strategies against the inequality (12) budget, plus the
// referee requirement of inequality (10).
func e14() Experiment {
	return Experiment{
		ID:         "E14",
		Title:      "Divergence pipeline: Fact 6.3 and inequalities (10)/(12)",
		Reproduces: "Fact 6.3, inequalities (10)-(13) of Section 6.1",
		Run: func(cfg Config) (*Table, error) {
			fact := NewTable(
				"E14a: Bernoulli KL vs the Fact 6.3 chi-squared bound",
				"alpha", "beta", "KL (bits)", "Fact 6.3 bound", "ratio",
			)
			worst := 0.0
			for _, alpha := range []float64{0.01, 0.2, 0.5, 0.8, 0.99} {
				for _, beta := range []float64{0.05, 0.3, 0.5, 0.7, 0.95} {
					kl, err := stats.BernoulliKL(alpha, beta)
					if err != nil {
						return nil, err
					}
					bound, err := stats.BernoulliKLChiBound(alpha, beta)
					if err != nil {
						return nil, err
					}
					r := ratioOrZero(kl, bound)
					if r > worst {
						worst = r
					}
					fact.MustAddRow(FmtF(alpha), FmtF(beta), FmtSci(kl), FmtSci(bound), FmtRatio(r))
				}
			}

			budget := NewTable(
				"E14b: per-player divergence of concrete strategies vs the inequality (12) budget (exact over all z)",
				"ell", "q", "eps", "strategy", "E_z KL (bits)", "budget (ineq. 12)", "ratio",
			)
			rng := rand.New(rand.NewPCG(cfg.Seed+14, 1))
			for _, ic := range lemmaInstances() {
				in, err := lowerbound.NewInstance(ic.ell, ic.q, ic.eps)
				if err != nil {
					return nil, err
				}
				if !lowerbound.Lemma42Precondition(in.N(), in.Q, in.Eps) {
					continue
				}
				strategies := map[string]func() (boolfn.Func, error){
					"random p=0.5":  func() (boolfn.Func, error) { return lowerbound.RandomStrategy(in, 0.5, rng) },
					"sign detector": func() (boolfn.Func, error) { return lowerbound.SignAgreementDetector(in) },
				}
				for name, mk := range strategies {
					g, err := mk()
					if err != nil {
						return nil, err
					}
					e, err := lowerbound.NewDiffEvaluator(in, g)
					if err != nil {
						return nil, err
					}
					if e.Var() == 0 {
						continue
					}
					div, err := lowerbound.ExpectedPlayerDivergence(e)
					if err != nil {
						return nil, err
					}
					bound, err := lowerbound.DivergenceUpperBound(in.N(), in.Q, in.Eps)
					if err != nil {
						return nil, err
					}
					budget.MustAddRow(
						FmtInt(ic.ell), FmtInt(ic.q), FmtF(ic.eps), name,
						FmtSci(div), FmtSci(bound), FmtRatio(ratioOrZero(div, bound)),
					)
				}
			}

			requirement := NewTable(
				"E14c: inequality (10) referee requirement and the implied q* (n=2^16, delta=1/3)",
				"k", "required bits/player", "inverted q* (ineq. 13)", "Theorem 6.1 formula (C=1)",
			)
			const n = 1 << 16
			for _, k := range []int{16, 256, 4096} {
				need, err := lowerbound.RefereeRequirement(k, 1.0/3)
				if err != nil {
					return nil, err
				}
				qStar, err := lowerbound.MinimalQFromDivergence(n, k, 0.25, 1.0/3)
				if err != nil {
					return nil, err
				}
				ref, err := lowerbound.Theorem61Q(n, k, 0.25, 1)
				if err != nil {
					return nil, err
				}
				requirement.MustAddRow(FmtInt(k), FmtSci(need), FmtF(qStar), FmtF(ref))
			}

			combined := NewTable(fact.Title, fact.Columns...)
			combined.Rows = fact.Rows
			combined.Notes = "Paper check: every Fact 6.3 ratio <= 1 (worst " + FmtRatio(worst) + ").\n\n" +
				budget.Markdown() + "\n" + requirement.Markdown()
			return combined, nil
		},
	}
}

// e15 verifies the Lemma 5.4 (KKL) level inequality on random biased
// functions and on structured ones, reporting the worst ratio.
func e15() Experiment {
	return Experiment{
		ID:         "E15",
		Title:      "KKL level inequality (Lemma 5.4)",
		Reproduces: "Lemma 5.4",
		Run: func(cfg Config) (*Table, error) {
			table := NewTable(
				"E15: Fourier weight below level r vs the Lemma 5.4 bound (m=10 variables)",
				"function", "mean", "r", "delta", "weight", "bound", "ratio",
			)
			rng := rand.New(rand.NewPCG(cfg.Seed+15, 1))
			worst := 0.0
			check := func(name string, f boolfn.Func) error {
				for _, r := range []int{1, 2, 3} {
					for _, delta := range []float64{0.3, 1} {
						rep, err := boolfn.CheckKKL(f, r, delta)
						if err != nil {
							return err
						}
						if rep.Ratio > worst {
							worst = rep.Ratio
						}
						table.MustAddRow(
							name, FmtF(rep.Mean), FmtInt(r), FmtF(delta),
							FmtSci(rep.Weight), FmtSci(rep.Bound), FmtRatio(rep.Ratio),
						)
					}
				}
				return nil
			}
			for _, p := range []float64{0.01, 0.05, 0.2, 0.5} {
				f, err := boolfn.RandomBiased(10, p, rng)
				if err != nil {
					return nil, err
				}
				if err := check(FmtF(p)+"-biased random", f); err != nil {
					return nil, err
				}
			}
			maj, err := boolfn.Majority(9)
			if err != nil {
				return nil, err
			}
			majF, err := boolfn.Extend(10, 0x1FF, maj)
			if err != nil {
				return nil, err
			}
			if err := check("majority(9)", majF); err != nil {
				return nil, err
			}
			thr, err := boolfn.ThresholdCount(10, 8)
			if err != nil {
				return nil, err
			}
			if err := check("threshold(8 of 10)", thr); err != nil {
				return nil, err
			}
			table.Notes = "Paper check: every ratio <= 1 (worst observed " + FmtRatio(worst) + ") — the level inequality the Lemma 4.3 proof leans on holds with room to spare."
			return table, nil
		},
	}
}
