package experiments

import (
	"fmt"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/lowerbound"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// e21 is the Theorem 6.4 workload: the quantized collision tester at
// fixed (n, k, q), swept over the message width r. Every width runs the
// same trials under common random numbers (same engine seed, and the
// quantized rule consumes no private coins), so each player's r-bit
// message min(count, 2^r-1) is pointwise monotone in r and the
// tester's excess acceptance over the exact reference decays
// monotonically — the measured face of the theorem's 2^-Theta(r)
// information decay. The reference width is exact, not approximate:
// the largest possible collision count C(q,2) fits below its cap.
func e21() Experiment {
	return Experiment{
		ID:         "E21",
		Title:      "Quantized r-bit tester: acceptance-gap decay vs message width",
		Reproduces: "Theorem 6.4's 2^-Theta(r) decay, measured as a monotone acceptance gap",
		Run: func(cfg Config) (*Table, error) {
			const (
				n   = 256
				ell = 7 // n = 2^(ell+1)
				k   = 16
				q   = 48
				eps = 0.5
				// refBits is exact: max collision count C(48,2) = 1128 < 2^11-1.
				refBits = 11
			)
			h, err := dist.NewHardInstance(ell, eps)
			if err != nil {
				return nil, err
			}
			trials := cfg.trials(300)
			optsU := stats.EstimateOptions{Seed: cfg.Seed + 25, Parallelism: cfg.Parallelism}
			optsF := optsU
			optsF.Seed ^= 0x5851f42d4c957f2d
			accepts := func(bits int) (pu, pf float64, err error) {
				p, err := core.NewQuantizedSumTester(n, k, q, bits)
				if err != nil {
					return 0, 0, err
				}
				pu, err = acceptUniform(p, n, trials, optsU)
				if err != nil {
					return 0, 0, err
				}
				pf, err = acceptHardFamily(p, h, trials, optsF)
				return pu, pf, err
			}
			refU, refF, err := accepts(refBits)
			if err != nil {
				return nil, err
			}
			table := NewTable(
				fmt.Sprintf("E21: quantized collision tester vs message width r (n=%d, k=%d, q=%d, T=%d, %d trials per cell)",
					n, k, q, core.QuantizedSumThreshold(n, k, q), trials),
				"r", "accept(U)", "accept(far)", "U-far gap", "gap to exact (far)", "Thm 6.4 floor q",
			)
			prev := 2.0
			for r := 1; r <= 8; r++ {
				pu, pf, err := accepts(r)
				if err != nil {
					return nil, err
				}
				quant := pf - refF
				// Common random numbers make this monotone pointwise, not
				// just in expectation; a violation means a determinism bug,
				// not Monte-Carlo noise.
				if quant > prev {
					return nil, fmt.Errorf("experiments: E21 gap to exact grew from %v to %v at r=%d; the common-random-numbers coupling is broken", prev, quant, r)
				}
				prev = quant
				floor, err := lowerbound.Theorem64Q(n, k, r, eps, 1)
				if err != nil {
					return nil, err
				}
				table.MustAddRow(
					FmtInt(r), FmtProb(pu), FmtProb(pf),
					FmtProb(pu-pf), FmtProb(quant), FmtF(floor),
				)
			}
			table.Notes = "Paper check: saturating each player's collision count into r bits throws away exactly the " +
				"information Theorem 6.4 prices. At r = 1..2 the cap (1, 3) sits below the per-player mean, the sum " +
				"cannot reach T, and the tester is blind (accept = 1 on both columns); as r grows the saturated counts " +
				"recover the exact statistic and the far-side excess acceptance over the exact reference (accept(U) = " +
				FmtProb(refU) + ", accept(far) = " + FmtProb(refF) + " at r = " + FmtInt(refBits) + ") decays " +
				"monotonically to zero — monotone pointwise by the common-random-numbers coupling, which the run " +
				"verifies trial by trial. The floor column is the theorem's minimal q at each width: the budget the " +
				"lower bound demands falls by ~2^(r/2) per added bit over this range, the mirror image of the " +
				"measured gap recovery."
			return table, nil
		},
	}
}
