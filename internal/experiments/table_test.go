package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTableAddRow(t *testing.T) {
	tb := NewTable("t", "a", "b")
	if err := tb.AddRow("1", "2"); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow("only one"); err == nil {
		t.Error("arity mismatch accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow did not panic on arity mismatch")
		}
	}()
	tb.MustAddRow("x")
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "k", "q*")
	tb.MustAddRow("1", "100")
	tb.MustAddRow("4", "50")
	tb.Notes = "a note"
	md := tb.Markdown()
	for _, want := range []string{"### Demo", "| k | q* |", "|---|---|", "| 1 | 100 |", "| 4 | 50 |", "a note"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "name", "value")
	tb.MustAddRow("plain", "1")
	tb.MustAddRow("with, comma", "2")
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines: %q", len(lines), csv)
	}
	if lines[0] != "name,value" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"with, comma"`) {
		t.Errorf("comma cell not quoted: %q", lines[2])
	}
}

func TestFormatters(t *testing.T) {
	if FmtInt(42) != "42" {
		t.Error("FmtInt")
	}
	if FmtF(1.23456789) != "1.235" {
		t.Errorf("FmtF = %q", FmtF(1.23456789))
	}
	if FmtRatio(0.5) != "0.500" {
		t.Errorf("FmtRatio = %q", FmtRatio(0.5))
	}
	if !strings.Contains(FmtSci(12345.0), "e+04") {
		t.Errorf("FmtSci = %q", FmtSci(12345.0))
	}
}

func TestRatioOrZero(t *testing.T) {
	if ratioOrZero(0, 0) != 0 {
		t.Error("0/0")
	}
	if !math.IsInf(ratioOrZero(1, 0), 1) {
		t.Error("1/0")
	}
	if ratioOrZero(1, 2) != 0.5 {
		t.Error("1/2")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.scale() != 1 {
		t.Errorf("default scale = %v", c.scale())
	}
	if c.trials(100) != 100 {
		t.Errorf("default trials = %d", c.trials(100))
	}
	c.Scale = 0.01
	if c.trials(100) != 20 {
		t.Errorf("floored trials = %d", c.trials(100))
	}
	c.Scale = 2
	if c.trials(100) != 200 {
		t.Errorf("scaled trials = %d", c.trials(100))
	}
}

func TestRegistryCompleteAndOrdered(t *testing.T) {
	reg := Registry()
	if len(reg) != 22 {
		t.Fatalf("registry has %d experiments, want 22", len(reg))
	}
	seen := map[string]bool{}
	prev := 0
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Reproduces == "" || e.Run == nil {
			t.Errorf("experiment %q has empty fields", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		n := idNum(e.ID)
		if n <= prev {
			t.Errorf("registry out of order at %q", e.ID)
		}
		prev = n
	}
	for i := 1; i <= 21; i++ {
		if !seen["E"+FmtInt(i)] {
			t.Errorf("missing experiment E%d", i)
		}
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("E5")
	if !ok || e.ID != "E5" {
		t.Errorf("ByID(E5) = %v, %v", e.ID, ok)
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) found something")
	}
}
