package experiments

import (
	"fmt"
	"sort"
)

// Config tunes an experiment run.
type Config struct {
	// Scale multiplies trial counts and sweep sizes; 1 reproduces the
	// EXPERIMENTS.md tables, smaller values give smoke runs. Zero means 1.
	Scale float64
	// Seed drives all randomness.
	Seed uint64
	// Parallelism caps worker goroutines; 0 means GOMAXPROCS. Negative
	// values are rejected by Validate rather than silently passed through
	// to the estimators (whose "negative means GOMAXPROCS" default would
	// mask a caller bug such as a miscomputed worker budget).
	Parallelism int
}

// Validate rejects configurations no experiment can run meaningfully.
// Every registered experiment's Run calls it before doing any work.
func (c Config) Validate() error {
	if c.Parallelism < 0 {
		return fmt.Errorf("experiments: negative parallelism %d", c.Parallelism)
	}
	if c.Scale < 0 {
		return fmt.Errorf("experiments: negative scale %v", c.Scale)
	}
	return nil
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// trials scales a base trial count, with a floor to keep estimates
// meaningful.
func (c Config) trials(base int) int {
	t := int(float64(base) * c.scale())
	if t < 20 {
		t = 20
	}
	return t
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	// ID is the stable identifier ("E1"... "E15") from DESIGN.md.
	ID string
	// Title is a one-line description.
	Title string
	// Reproduces names the paper result the experiment checks.
	Reproduces string
	// Run generates the result table.
	Run func(cfg Config) (*Table, error)
}

// Registry returns all experiments sorted by ID (numeric order). Every
// returned experiment's Run validates its Config before executing.
func Registry() []Experiment {
	exps := []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(), e8(), e9(),
		e10(), e11(), e12(), e13(), e14(), e15(), e16(), e17(), e18(), e19(), e20(), e21(), e22(),
	}
	for i := range exps {
		exps[i].Run = validated(exps[i].Run)
	}
	sort.Slice(exps, func(i, j int) bool {
		return idNum(exps[i].ID) < idNum(exps[j].ID)
	})
	return exps
}

// validated guards an experiment's Run with Config.Validate.
func validated(run func(Config) (*Table, error)) func(Config) (*Table, error) {
	return func(cfg Config) (*Table, error) {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return run(cfg)
	}
}

func idNum(id string) int {
	var n int
	_, _ = fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID looks an experiment up by its identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
