package experiments

import (
	"math"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/boolfn"
	"github.com/distributed-uniformity/dut/internal/centralized"
	"github.com/distributed-uniformity/dut/internal/congest"
	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/lowerbound"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// e16 measures how much more distinguishing information an r-bit message
// carries than a single bit — the mechanism behind Theorem 6.4's
// 2^{-Theta(r)} decay of the lower bounds. Exact over all z.
func e16() Experiment {
	return Experiment{
		ID:         "E16",
		Title:      "Multi-bit messages: divergence growth vs r",
		Reproduces: "Theorem 6.4 mechanism (per-player information grows at most 2^Theta(r))",
		Run: func(cfg Config) (*Table, error) {
			// ell=2, q=5: a collision-rich instance (expected same-element
			// collisions ~ C(5,2)/8 = 1.25), so extra message bits have
			// real information to carry. Exhaustive over all 16 z's.
			in, err := lowerbound.NewInstance(2, 5, 0.3)
			if err != nil {
				return nil, err
			}
			table := NewTable(
				"E16: exact E_z[KL] of r-bit messages (ell=2, q=5, eps=0.3), exhaustive over z",
				"r", "quantized-collision E_z KL", "max over random strategies", "growth vs r=1", "2^r envelope",
			)
			rng := rand.New(rand.NewPCG(cfg.Seed+16, 1))
			randomTrials := cfg.trials(10)
			var base float64
			for _, r := range []int{1, 2, 3} {
				s, err := lowerbound.QuantizedCollisionStrategy(in, r)
				if err != nil {
					return nil, err
				}
				e, err := lowerbound.NewMultiBitEvaluator(s)
				if err != nil {
					return nil, err
				}
				quantized, err := e.ExpectedKL()
				if err != nil {
					return nil, err
				}
				if r == 1 {
					base = quantized
				}
				maxRandom := 0.0
				for trial := 0; trial < randomTrials; trial++ {
					rs, err := lowerbound.RandomMultiBitStrategy(in, r, rng)
					if err != nil {
						return nil, err
					}
					re, err := lowerbound.NewMultiBitEvaluator(rs)
					if err != nil {
						return nil, err
					}
					kl, err := re.ExpectedKL()
					if err != nil {
						return nil, err
					}
					if kl > maxRandom {
						maxRandom = kl
					}
				}
				table.MustAddRow(
					FmtInt(r),
					FmtSci(quantized),
					FmtSci(maxRandom),
					FmtRatio(quantized/base),
					FmtInt(1<<uint(r)),
				)
			}
			table.Notes = "Shape check: widening the message grows the per-player information, but sub-geometrically — " +
				"well inside the 2^Theta(r) envelope that Theorem 6.4 transfers into its 2^{-Theta(r)} lower-bound " +
				"decay. The quantized collision statistic dominates random strategies at every width."
			return table, nil
		},
	}
}

// e17 is the threshold-design ablation from DESIGN.md section 4: closed-
// form (Poisson/Chebyshev-derived) thresholds versus Monte-Carlo
// calibrated ones, and the collision statistic versus the chi-squared
// statistic, all measured as centralized minimal q.
func e17() Experiment {
	return Experiment{
		ID:         "E17",
		Title:      "Ablation: threshold design and local statistic",
		Reproduces: "DESIGN.md ablations (constants, not theorems)",
		Run: func(cfg Config) (*Table, error) {
			const (
				n   = 1024
				ell = 9
				eps = 0.5
			)
			h, err := dist.NewHardInstance(ell, eps)
			if err != nil {
				return nil, err
			}
			uniform, err := dist.Uniform(n)
			if err != nil {
				return nil, err
			}
			trials := cfg.trials(150)
			calTrials := cfg.trials(2000)
			table := NewTable(
				"E17: centralized minimal q under different threshold designs (n=1024, eps=0.5)",
				"statistic", "threshold design", "measured q*", "q*/(sqrt(n)/eps^2)",
			)
			builders := []struct {
				stat   string
				design string
				build  func(q int) (centralized.Tester, error)
			}{
				{"collision", "closed form", func(q int) (centralized.Tester, error) {
					return centralized.NewCollisionTester(n, q, eps)
				}},
				{"collision", "calibrated (alpha=1/4)", func(q int) (centralized.Tester, error) {
					th, err := centralized.CalibrateThreshold(centralized.CollisionStatistic(n), uniform, q, calTrials, 0.25, cfg.Seed+17)
					if err != nil {
						return nil, err
					}
					return centralized.NewCollisionTesterWithThreshold(n, q, eps, th)
				}},
				{"chi-squared", "closed form", func(q int) (centralized.Tester, error) {
					return centralized.NewChiSquaredTester(uniform, q, eps)
				}},
				{"chi-squared", "calibrated (alpha=1/4)", func(q int) (centralized.Tester, error) {
					th, err := centralized.CalibrateThreshold(centralized.ChiSquaredUniformityStatistic(n), uniform, q, calTrials, 0.25, cfg.Seed+18)
					if err != nil {
						return nil, err
					}
					return centralized.NewChiSquaredTesterWithThreshold(uniform, q, eps, th)
				}},
			}
			for _, b := range builders {
				qStar, err := minimalCentralizedQ(b.build, n, h, trials, cfg.Seed+19)
				if err != nil {
					return nil, err
				}
				table.MustAddRow(
					b.stat, b.design, FmtInt(qStar),
					FmtRatio(float64(qStar)/(math.Sqrt(float64(n))/(eps*eps))),
				)
			}
			table.Notes = "Ablation: at this eps all four combinations land within ~15% of one another — threshold " +
				"design and statistic choice trade constants only, and run-to-run Monte-Carlo noise at the 2/3 " +
				"boundary is of the same order as the differences. No combination changes any scaling shape, which " +
				"is the point: the paper's bounds are about information, not about which reasonable statistic one " +
				"thresholds."
			return table, nil
		},
	}
}

// e18 runs the threshold tester in the CONGEST model over several
// topologies: identical statistical behavior to the SMP referee (the
// Section 6.2 reduction, constructively), with round complexity tracking
// the diameter and O(1) messages per edge.
func e18() Experiment {
	return Experiment{
		ID:         "E18",
		Title:      "CONGEST deployment: rounds vs diameter, SMP equivalence",
		Reproduces: "Section 6.2's model reduction (constructive form)",
		Run: func(cfg Config) (*Table, error) {
			const (
				n   = 1024
				ell = 9
				k   = 16
				eps = 0.5
			)
			h, err := dist.NewHardInstance(ell, eps)
			if err != nil {
				return nil, err
			}
			q := core.RecommendedThresholdSamples(n, k, eps)
			smp, err := core.NewThresholdTester(core.ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewPCG(cfg.Seed+20, 1))
			tree, err := congest.RandomTree(k, rng)
			if err != nil {
				return nil, err
			}
			topologies := []struct {
				name string
				mk   func() (*congest.Graph, error)
			}{
				{"path(16)", func() (*congest.Graph, error) { return congest.Path(k) }},
				{"ring(16)", func() (*congest.Graph, error) { return congest.Ring(k) }},
				{"star(16)", func() (*congest.Graph, error) { return congest.Star(k) }},
				{"grid(4x4)", func() (*congest.Graph, error) { return congest.Grid(4, 4) }},
				{"random tree(16)", func() (*congest.Graph, error) { return tree, nil }},
			}
			trials := cfg.trials(150)
			table := NewTable(
				"E18: the k=16 threshold tester deployed in CONGEST (n=1024, eps=0.5, q="+FmtInt(q)+" per node)",
				"topology", "diameter", "rounds", "messages", "max msg bits", "accept(U)", "accept(far)",
			)
			for _, topo := range topologies {
				g, err := topo.mk()
				if err != nil {
					return nil, err
				}
				tester, err := congest.NewTester(congest.TesterConfig{
					Graph: g, Root: 0, Q: q, Rule: smp.Local(), T: core.DefaultThresholdT(k),
				})
				if err != nil {
					return nil, err
				}
				opts := stats.EstimateOptions{Seed: cfg.Seed + 21, Parallelism: 1}
				pu, err := acceptUniform(tester, n, trials, opts)
				if err != nil {
					return nil, err
				}
				farOpts := opts
				farOpts.Seed ^= 0x1234
				pf, err := acceptHardFamily(tester, h, trials, farOpts)
				if err != nil {
					return nil, err
				}
				table.MustAddRow(
					topo.name,
					FmtInt(g.Diameter()),
					FmtInt(tester.LastRounds()),
					FmtInt(tester.LastMessages()),
					FmtInt(tester.LastMaxMessageBits()),
					FmtProb(pu),
					FmtProb(pf),
				)
			}
			smpU, err := acceptUniform(smp, n, trials, stats.EstimateOptions{Seed: cfg.Seed + 22})
			if err != nil {
				return nil, err
			}
			smpF, err := acceptHardFamily(smp, h, trials, stats.EstimateOptions{Seed: cfg.Seed + 23})
			if err != nil {
				return nil, err
			}
			table.Notes = "SMP reference on the same workload: accept(U) = " + FmtProb(smpU) + ", accept(far) = " + FmtProb(smpF) +
				". Every topology reproduces the referee's statistics (the aggregation is exact), rounds track the " +
				"diameter, and all messages fit the CONGEST bandwidth cap."
			return table, nil
		},
	}
}

// e19 demonstrates the introduction's transfer claim: uniformity testing
// is a special case of closeness testing (and independence testing), so
// the paper's lower bounds bind those problems too. It measures the
// closeness tester's minimal per-batch q on the uniformity special case —
// which must be at least the uniformity floor — and checks the Pearson
// independence tester on correlated workloads.
func e19() Experiment {
	return Experiment{
		ID:         "E19",
		Title:      "Transfer: closeness and independence inherit the bounds",
		Reproduces: "Introduction's reductions (uniformity is a special case)",
		Run: func(cfg Config) (*Table, error) {
			const (
				ell = 9
				n   = 1 << (ell + 1)
			)
			h, err := dist.NewHardInstance(ell, 0.5)
			if err != nil {
				return nil, err
			}
			uniform, err := dist.Uniform(n)
			if err != nil {
				return nil, err
			}
			su, err := dist.NewAliasSampler(uniform)
			if err != nil {
				return nil, err
			}
			trials := cfg.trials(150)
			table := NewTable(
				"E19a: closeness tester on the uniformity special case (n=1024)",
				"eps", "measured per-batch q*", "total samples 2q*", "Thm 6.1 floor (k=1, C=1)",
			)
			for _, eps := range []float64{0.5, 0.25} {
				eps := eps
				pred := func(q int) (bool, error) {
					tester, err := centralized.NewUniformityViaCloseness(n, q, eps)
					if err != nil {
						return false, err
					}
					opts := stats.EstimateOptions{Seed: cfg.Seed ^ uint64(q)*0x9e3779b97f4a7c15}
					var first errOnce
					estU, err := stats.EstimateSuccess(trials, func(rng *rand.Rand) bool {
						ref := dist.SampleN(su, q, rng)
						unknown := dist.SampleN(su, q, rng)
						ok, terr := tester.Test(unknown, ref)
						if terr != nil {
							first.record(terr)
						}
						return ok
					}, opts)
					if err != nil {
						return false, err
					}
					if err := first.get(); err != nil {
						return false, err
					}
					if estU.P < successTarget {
						return false, nil
					}
					optsF := opts
					optsF.Seed ^= 0x2545f4914f6cdd1d
					estF, err := stats.EstimateSuccess(trials, func(rng *rand.Rand) bool {
						nu, _, herr := h.RandomPerturbed(rng)
						if herr != nil {
							first.record(herr)
							return false
						}
						// The hard instance is built at eps=0.5; rescale the
						// perturbation for the eps=0.25 row by mixing with
						// uniform.
						if eps < 0.5 {
							nu, herr = nu.Mix(uniform, eps/0.5)
							if herr != nil {
								first.record(herr)
								return false
							}
						}
						snu, herr := dist.NewAliasSampler(nu)
						if herr != nil {
							first.record(herr)
							return false
						}
						ref := dist.SampleN(su, q, rng)
						farBatch := dist.SampleN(snu, q, rng)
						ok, terr := tester.Test(farBatch, ref)
						if terr != nil {
							first.record(terr)
						}
						return ok
					}, optsF)
					if err != nil {
						return false, err
					}
					if err := first.get(); err != nil {
						return false, err
					}
					return 1-estF.P >= successTarget, nil
				}
				qStar, err := stats.GrowThenShrink(2, 1<<22, pred)
				if err != nil {
					return nil, err
				}
				floor, err := lowerbound.Theorem61Q(n, 1, eps, 1)
				if err != nil {
					return nil, err
				}
				table.MustAddRow(
					FmtF(eps),
					FmtInt(qStar),
					FmtInt(2*qStar),
					FmtF(floor),
				)
			}

			indep := NewTable(
				"E19b: Pearson independence tester on 8x8 pairs (alpha=1/3, 1500 samples)",
				"workload", "true L1 from product", "accept rate",
			)
			it, err := centralized.NewIndependenceTester(8, 8, 1.0/3)
			if err != nil {
				return nil, err
			}
			px, err := dist.Zipf(8, 0.7)
			if err != nil {
				return nil, err
			}
			py, err := dist.Zipf(8, 1.1)
			if err != nil {
				return nil, err
			}
			prod, err := centralized.ProductDist(px, py)
			if err != nil {
				return nil, err
			}
			workloads := []struct {
				name string
				d    dist.Dist
			}{{"independent zipf product", prod}}
			for _, rho := range []float64{0.1, 0.3} {
				corr, err := centralized.CorrelatedPair(8, rho)
				if err != nil {
					return nil, err
				}
				workloads = append(workloads, struct {
					name string
					d    dist.Dist
				}{FmtF(rho) + "-correlated pair", corr})
			}
			for _, w := range workloads {
				s, err := dist.NewAliasSampler(w.d)
				if err != nil {
					return nil, err
				}
				var first errOnce
				est, err := stats.EstimateSuccess(trials, func(rng *rand.Rand) bool {
					samples := dist.SampleN(s, 1500, rng)
					ok, terr := it.Test(samples)
					if terr != nil {
						first.record(terr)
					}
					return ok
				}, stats.EstimateOptions{Seed: cfg.Seed + 24})
				if err != nil {
					return nil, err
				}
				if err := first.get(); err != nil {
					return nil, err
				}
				marg := marginalsL1(w.d, 8)
				indep.MustAddRow(w.name, FmtRatio(marg), FmtProb(est.P))
			}

			table.Notes = "Paper check: running a closeness tester on the uniformity special case pays at least the " +
				"uniformity price — total samples stay above the Theorem 6.1 k=1 floor and follow the sqrt(n)/eps^2 " +
				"shape — the transfer direction of the introduction's reduction, measured. (E5's direct collision " +
				"tester solves the same task with a comparable total.)\n\n" + indep.Markdown()
			return table, nil
		},
	}
}

// marginalsL1 returns the L1 distance of a pair distribution over [m]x[m]
// from the product of its marginals.
func marginalsL1(d dist.Dist, m int) float64 {
	rows := make([]float64, m)
	cols := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			p := d.Prob(i*m + j)
			rows[i] += p
			cols[j] += p
		}
	}
	var l1 float64
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			l1 += math.Abs(d.Prob(i*m+j) - rows[i]*cols[j])
		}
	}
	return l1
}

// e20 runs the whole Section 6.1 argument exactly on concrete protocols:
// the referee's acceptance gap between uniform and the averaged hard
// family, versus the information-theoretic ceiling that additivity (eq. 9)
// plus Pinsker put on it. Everything exact — joint bit distributions,
// expectations over all z.
func e20() Experiment {
	return Experiment{
		ID:         "E20",
		Title:      "Exact protocols: acceptance gap vs the divergence ceiling",
		Reproduces: "Section 6.1 pipeline (equations (9)-(10)), end to end",
		Run: func(cfg Config) (*Table, error) {
			in, err := lowerbound.NewInstance(3, 3, 0.3)
			if err != nil {
				return nil, err
			}
			g, err := lowerbound.SignAgreementDetector(in)
			if err != nil {
				return nil, err
			}
			table := NewTable(
				"E20: exact k-player protocols on (ell=3, q=3, eps=0.3), sign-agreement strategies",
				"rule", "k", "accept(U)", "E_z accept(nu_z)", "gap", "divergence ceiling", "gap/ceiling",
			)
			for _, tt := range []struct {
				name string
				rule core.DecisionRule
				k    int
			}{
				{"AND", core.ANDRule{}, 4},
				{"AND", core.ANDRule{}, 12},
				{"OR", core.ORRule{}, 12},
				{"majority", core.MajorityRule{}, 5},
				{"majority", core.MajorityRule{}, 13},
				{"threshold T=2", core.ThresholdRule{T: 2}, 12},
				{"threshold T=4", core.ThresholdRule{T: 4}, 12},
			} {
				strategies := make([]boolfn.Func, tt.k)
				for i := range strategies {
					strategies[i] = g
				}
				p, err := lowerbound.NewExactProtocol(in, strategies, tt.rule)
				if err != nil {
					return nil, err
				}
				accU, err := p.AcceptUniform()
				if err != nil {
					return nil, err
				}
				accF, err := p.AcceptHardFamily()
				if err != nil {
					return nil, err
				}
				ceiling, err := p.DivergenceCeiling()
				if err != nil {
					return nil, err
				}
				gap := math.Abs(accU - accF)
				table.MustAddRow(
					tt.name, FmtInt(tt.k),
					FmtProb(accU), FmtProb(accF),
					FmtProb(gap), FmtProb(ceiling), FmtRatio(ratioOrZero(gap, ceiling)),
				)
			}
			table.Notes = "Paper check: every protocol's exact acceptance gap sits below the ceiling " +
				"sqrt((ln2/2) k E_z[D]) that equation (9)'s additivity and Pinsker's inequality impose — the " +
				"referee, whatever its rule, can only distinguish as much as the players' bits carry. How much of " +
				"the ceiling a rule converts depends on where its count threshold sits relative to the players' " +
				"operating point: a well-placed threshold (T=2 here) keeps converting a constant fraction as k " +
				"grows, the AND rule's efficiency decays with k (0.83 at k=4 to 0.28 at k=12), and rules far from " +
				"the operating point (OR, large-k majority against these high-acceptance players) convert almost " +
				"nothing — the mechanism behind Theorems 1.1-1.3, in microcosm."
			return table, nil
		},
	}
}
