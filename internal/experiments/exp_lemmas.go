package experiments

import (
	"math"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/boolfn"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/lowerbound"
)

// lemmaInstances is the exhaustive verification grid: small enough that
// expectations over z are exact (every one of the 2^{2^ell} perturbations
// is enumerated), with eps small enough that the lemma preconditions hold.
func lemmaInstances() []struct {
	ell, q int
	eps    float64
} {
	return []struct {
		ell, q int
		eps    float64
	}{
		{2, 2, 0.1}, {2, 3, 0.1}, {2, 4, 0.15}, {3, 2, 0.1}, {3, 3, 0.15}, {3, 4, 0.2},
	}
}

// strategyMenu enumerates the strategies each lemma is checked against.
func strategyMenu(in lowerbound.Instance, rng *rand.Rand) (map[string]boolfn.Func, error) {
	menu := make(map[string]boolfn.Func)
	for _, p := range []struct {
		name string
		p    float64
	}{{"random p=0.5", 0.5}, {"random p=0.1", 0.1}, {"random p=0.02", 0.02}} {
		g, err := lowerbound.RandomStrategy(in, p.p, rng)
		if err != nil {
			return nil, err
		}
		menu[p.name] = g
	}
	sign, err := lowerbound.SignAgreementDetector(in)
	if err != nil {
		return nil, err
	}
	menu["sign detector"] = sign
	matched, err := lowerbound.MatchedPairDetector(in)
	if err != nil {
		return nil, err
	}
	menu["matched detector"] = matched
	optimal, _, err := lowerbound.OptimalFirstMomentStrategy(in)
	if err != nil {
		return nil, err
	}
	menu["OPTIMAL (1st moment)"] = optimal
	if lowerbound.AdversaryFeasible(in) {
		greedy, _, err := lowerbound.GreedySecondMomentAdversary(in, optimal, 50)
		if err != nil {
			return nil, err
		}
		menu["GREEDY (2nd moment)"] = greedy
	}
	return menu, nil
}

// e6 verifies Lemma 5.1 and Lemma 4.2 exactly on the grid and reports how
// tight the bounds are (ratio measured/bound, always <= 1).
func e6() Experiment {
	return Experiment{
		ID:         "E6",
		Title:      "Lemma 5.1 / 4.2 exhaustive verification",
		Reproduces: "Lemma 5.1 and Lemma 4.2",
		Run: func(cfg Config) (*Table, error) {
			table := NewTable(
				"E6: |E_z diff| vs Lemma 5.1 bound and E_z[diff^2] vs Lemma 4.2 bound (exact over all z)",
				"ell", "q", "eps", "strategy", "|E diff|", "L5.1 bound", "ratio", "E diff^2", "L4.2 bound", "ratio",
			)
			rng := rand.New(rand.NewPCG(cfg.Seed+6, 1))
			worst51, worst42 := 0.0, 0.0
			for _, ic := range lemmaInstances() {
				in, err := lowerbound.NewInstance(ic.ell, ic.q, ic.eps)
				if err != nil {
					return nil, err
				}
				menu, err := strategyMenu(in, rng)
				if err != nil {
					return nil, err
				}
				for name, g := range menu {
					e, err := lowerbound.NewDiffEvaluator(in, g)
					if err != nil {
						return nil, err
					}
					mean, second, err := e.ZMoments()
					if err != nil {
						return nil, err
					}
					b51, err := lowerbound.Lemma51Bound(in.N(), in.Q, in.Eps, e.Var())
					if err != nil {
						return nil, err
					}
					b42, err := lowerbound.Lemma42Bound(in.N(), in.Q, in.Eps, e.Var())
					if err != nil {
						return nil, err
					}
					r51 := ratioOrZero(math.Abs(mean), b51)
					r42 := ratioOrZero(second, b42)
					if lowerbound.Lemma51Precondition(in.N(), in.Q, in.Eps) && r51 > worst51 {
						worst51 = r51
					}
					if lowerbound.Lemma42Precondition(in.N(), in.Q, in.Eps) && r42 > worst42 {
						worst42 = r42
					}
					table.MustAddRow(
						FmtInt(ic.ell), FmtInt(ic.q), FmtF(ic.eps), name,
						FmtSci(math.Abs(mean)), FmtSci(b51), FmtRatio(r51),
						FmtSci(second), FmtSci(b42), FmtRatio(r42),
					)
				}
			}
			table.Notes = "Paper check: every ratio <= 1 within preconditions (worst observed: " +
				FmtRatio(worst51) + " for L5.1, " + FmtRatio(worst42) + " for L4.2). The OPTIMAL rows use the " +
				"exactly-extremal strategy for the first moment (the argmax over all 2^(2^m) Boolean strategies, " +
				"computed in closed form), so their L5.1 ratio is the lemma's true tightness on that instance — no " +
				"strategy whatsoever can get closer. The GREEDY rows are certified local optima of the second moment " +
				"(single-bit-flip search), so their L4.2 ratio lower-bounds that lemma's true tightness."
			return table, nil
		},
	}
}

// ratioOrZero divides, mapping 0/0 to 0.
func ratioOrZero(num, den float64) float64 {
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// e7 verifies the biased-strategy bound of Lemma 4.3 and shows the regime
// where it beats the generic Lemma 5.1 bound (small variance).
func e7() Experiment {
	return Experiment{
		ID:         "E7",
		Title:      "Lemma 4.3 verification on biased strategies",
		Reproduces: "Lemma 4.3",
		Run: func(cfg Config) (*Table, error) {
			in, err := lowerbound.NewInstance(3, 3, 0.08)
			if err != nil {
				return nil, err
			}
			table := NewTable(
				"E7: biased strategies on (ell=3, q=3, eps=0.08), exact over all z",
				"bias p", "var(G)", "m", "|E diff|", "L4.3 bound", "ratio", "L5.1 bound (reference)",
			)
			rng := rand.New(rand.NewPCG(cfg.Seed+7, 1))
			for _, p := range []float64{0.005, 0.02, 0.05, 0.2, 0.5} {
				g, err := lowerbound.RandomStrategy(in, p, rng)
				if err != nil {
					return nil, err
				}
				e, err := lowerbound.NewDiffEvaluator(in, g)
				if err != nil {
					return nil, err
				}
				mean, _, err := e.ZMoments()
				if err != nil {
					return nil, err
				}
				for _, m := range []int{1, 2} {
					if !lowerbound.Lemma43Precondition(in.N(), in.Q, m, in.Eps) {
						continue
					}
					b43, err := lowerbound.Lemma43Bound(in.N(), in.Q, m, in.Eps, e.Var())
					if err != nil {
						return nil, err
					}
					b51, err := lowerbound.Lemma51Bound(in.N(), in.Q, in.Eps, e.Var())
					if err != nil {
						return nil, err
					}
					table.MustAddRow(
						FmtF(p), FmtSci(e.Var()), FmtInt(m),
						FmtSci(math.Abs(mean)), FmtSci(b43), FmtRatio(ratioOrZero(math.Abs(mean), b43)),
						FmtSci(b51),
					)
				}
			}
			table.Notes = "Paper check: all ratios <= 1. The Lemma 4.3 bound scales as var^{(2m+1)/(2m+2)}, closer to linear-in-var than Lemma 5.1's sqrt(var), which is the leverage Theorem 1.2 extracts from highly-biased AND-rule bits."
			return table, nil
		},
	}
}

// e8 verifies Lemma 4.4 and reports the smallest constant C that dominates
// on the grid.
func e8() Experiment {
	return Experiment{
		ID:         "E8",
		Title:      "Lemma 4.4 verification and constant fit",
		Reproduces: "Lemma 4.4",
		Run: func(cfg Config) (*Table, error) {
			in, err := lowerbound.NewInstance(3, 3, 0.08)
			if err != nil {
				return nil, err
			}
			table := NewTable(
				"E8: medium-variance interpolation bound on (ell=3, q=3, eps=0.08), exact over all z",
				"bias p", "var(G)", "m", "E diff^2", "L4.4 bound (C=1)", "ratio", "needed C",
			)
			rng := rand.New(rand.NewPCG(cfg.Seed+8, 1))
			worstC := 0.0
			for _, p := range []float64{0.01, 0.05, 0.2, 0.5} {
				g, err := lowerbound.RandomStrategy(in, p, rng)
				if err != nil {
					return nil, err
				}
				e, err := lowerbound.NewDiffEvaluator(in, g)
				if err != nil {
					return nil, err
				}
				_, second, err := e.ZMoments()
				if err != nil {
					return nil, err
				}
				for _, m := range []int{1, 2} {
					bound, err := lowerbound.Lemma44Bound(in.N(), in.Q, m, in.Eps, e.Var(), 1)
					if err != nil {
						return nil, err
					}
					needed := neededLemma44C(in, m, e.Var(), second)
					if needed > worstC {
						worstC = needed
					}
					table.MustAddRow(
						FmtF(p), FmtSci(e.Var()), FmtInt(m),
						FmtSci(second), FmtSci(bound), FmtRatio(ratioOrZero(second, bound)),
						FmtSci(needed),
					)
				}
			}
			table.Notes = "Paper check: Lemma 4.4 asserts existence of a constant C; on this grid the largest C needed is " + FmtSci(worstC) + " (C=1 already dominates everywhere the ratio column is <= 1)."
			return table, nil
		},
	}
}

// neededLemma44C solves for the smallest C making the Lemma 4.4 RHS
// dominate the measured second moment.
func neededLemma44C(in lowerbound.Instance, m int, varG, second float64) float64 {
	qf, nf, mf := float64(in.Q), float64(in.N()), float64(m)
	first := 2 * in.Eps * in.Eps * qf / nf * varG
	if second <= first {
		return 0
	}
	ratio := qf / math.Sqrt(nf)
	unit := (ratio + math.Pow(ratio, 1/(mf+1))) * mf * mf * in.Eps * in.Eps *
		math.Pow(varG, 2-1/(mf+1))
	if unit == 0 {
		return math.Inf(1)
	}
	return (second - first) / unit
}

// e10 verifies the exact identities: Claim 3.1 (the Fourier form of
// nu_z^q) and Lemma 4.1 (the spectral difference formula), reporting the
// maximal numerical residuals, which should sit at float64 noise.
func e10() Experiment {
	return Experiment{
		ID:         "E10",
		Title:      "Claim 3.1 / Lemma 4.1 exactness residuals",
		Reproduces: "Claim 3.1 and Lemma 4.1",
		Run: func(cfg Config) (*Table, error) {
			table := NewTable(
				"E10: maximal |direct - Fourier| residuals over exhaustive grids",
				"ell", "q", "eps", "Claim 3.1 residual", "Lemma 4.1 residual", "eq.(3) residual",
			)
			rng := rand.New(rand.NewPCG(cfg.Seed+10, 1))
			for _, ic := range []struct {
				ell, q int
				eps    float64
			}{{1, 2, 0.5}, {2, 3, 0.3}, {3, 2, 0.7}, {2, 4, 0.2}} {
				in, err := lowerbound.NewInstance(ic.ell, ic.q, ic.eps)
				if err != nil {
					return nil, err
				}
				g, err := lowerbound.RandomStrategy(in, 0.4, rng)
				if err != nil {
					return nil, err
				}
				e, err := lowerbound.NewDiffEvaluator(in, g)
				if err != nil {
					return nil, err
				}
				var claimRes, lemmaRes float64
				for trial := 0; trial < 4; trial++ {
					z, err := dist.RandomPerturbation(in.Ell, rng)
					if err != nil {
						return nil, err
					}
					for idx := uint64(0); idx < uint64(1)<<uint(in.InputBits()); idx += 5 {
						samples, err := in.SamplesFromInput(idx)
						if err != nil {
							return nil, err
						}
						direct, err := in.NuZQ(z, samples)
						if err != nil {
							return nil, err
						}
						fourier, err := in.NuZQFourier(z, samples)
						if err != nil {
							return nil, err
						}
						if r := math.Abs(direct - fourier); r > claimRes {
							claimRes = r
						}
					}
					fast, err := e.Diff(z)
					if err != nil {
						return nil, err
					}
					slow, err := in.NuZDirect(g, z)
					if err != nil {
						return nil, err
					}
					if r := math.Abs(fast - (slow - e.Mu())); r > lemmaRes {
						lemmaRes = r
					}
				}
				mean, _, err := e.ZMoments()
				if err != nil {
					return nil, err
				}
				eq3Res := math.Abs(mean - e.ExpectedDiffEvenCover())
				table.MustAddRow(
					FmtInt(ic.ell), FmtInt(ic.q), FmtF(ic.eps),
					FmtSci(claimRes), FmtSci(lemmaRes), FmtSci(eq3Res),
				)
			}
			table.Notes = "Paper check: all residuals at float64 rounding noise (~1e-15) — the identities are exact."
			return table, nil
		},
	}
}
