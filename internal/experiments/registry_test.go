package experiments

import (
	"strings"
	"testing"
)

// TestConfigValidate pins the validation contract: negative Parallelism
// and negative Scale are rejected, everything else passes.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value", Config{}, true},
		{"explicit parallelism", Config{Parallelism: 4}, true},
		{"negative parallelism", Config{Parallelism: -1}, false},
		{"very negative parallelism", Config{Parallelism: -128}, false},
		{"negative scale", Config{Scale: -0.5}, false},
		{"smoke scale", Config{Scale: 0.01}, true},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

// TestRegistryRejectsNegativeParallelism is the regression test for the
// previously unchecked pass-through: every registered experiment must
// refuse a negative Parallelism before doing any work.
func TestRegistryRejectsNegativeParallelism(t *testing.T) {
	for _, e := range Registry() {
		_, err := e.Run(Config{Scale: 0.01, Parallelism: -3})
		if err == nil {
			t.Errorf("%s: ran with Parallelism=-3, want validation error", e.ID)
			continue
		}
		if !strings.Contains(err.Error(), "parallelism") {
			t.Errorf("%s: error %q does not mention parallelism", e.ID, err)
		}
	}
}
