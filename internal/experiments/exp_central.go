package experiments

import (
	"math"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/centralized"
	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// e5 calibrates the centralized baseline: the collision tester's measured
// minimal q follows sqrt(n)/eps^2 [Paninski 2008], and the plug-in
// learner-based tester needs ~n/eps^2 — the gap that motivates sublinear
// property testing.
func e5() Experiment {
	return Experiment{
		ID:         "E5",
		Title:      "Centralized baselines: collision vs plug-in",
		Reproduces: "Paninski'08 Theta(sqrt(n)/eps^2) baseline",
		Run: func(cfg Config) (*Table, error) {
			table := NewTable(
				"E5: centralized minimal sample counts",
				"tester", "n", "eps", "measured q*", "q*/(sqrt(n)/eps^2)", "q*/(n/eps^2)",
			)
			trials := cfg.trials(150)
			grid := []struct {
				n   int
				ell int
				eps float64
			}{
				{n: 1 << 10, ell: 9, eps: 0.5},
				{n: 1 << 12, ell: 11, eps: 0.5},
				{n: 1 << 14, ell: 13, eps: 0.5},
				{n: 1 << 12, ell: 11, eps: 0.25},
			}
			for _, g := range grid {
				h, err := dist.NewHardInstance(g.ell, g.eps)
				if err != nil {
					return nil, err
				}
				qStar, err := minimalCentralizedQ(func(q int) (centralized.Tester, error) {
					return centralized.NewCollisionTester(g.n, q, g.eps)
				}, g.n, h, trials, cfg.Seed+5)
				if err != nil {
					return nil, err
				}
				table.MustAddRow(
					"collision",
					FmtInt(g.n), FmtF(g.eps), FmtInt(qStar),
					FmtRatio(float64(qStar)/(math.Sqrt(float64(g.n))/(g.eps*g.eps))),
					FmtRatio(float64(qStar)/(float64(g.n)/(g.eps*g.eps))),
				)
			}
			// Plug-in tester on the smallest domain only — it is the
			// expensive baseline the sublinear testers beat.
			{
				const (
					n   = 1 << 10
					ell = 9
					eps = 0.5
				)
				h, err := dist.NewHardInstance(ell, eps)
				if err != nil {
					return nil, err
				}
				uniform, err := dist.Uniform(n)
				if err != nil {
					return nil, err
				}
				qStar, err := minimalCentralizedQ(func(q int) (centralized.Tester, error) {
					return centralized.NewPluginTester(uniform, q, eps)
				}, n, h, trials, cfg.Seed+6)
				if err != nil {
					return nil, err
				}
				table.MustAddRow(
					"plug-in",
					FmtInt(n), FmtF(eps), FmtInt(qStar),
					FmtRatio(float64(qStar)/(math.Sqrt(float64(n))/(eps*eps))),
					FmtRatio(float64(qStar)/(float64(n)/(eps*eps))),
				)
			}
			table.Notes = "Shape check: the collision column q*/(sqrt(n)/eps^2) is flat across n and eps; the plug-in tester tracks n/eps^2 instead."
			return table, nil
		},
	}
}

// minimalCentralizedQ measures the minimal q at which a centralized tester
// accepts uniform and rejects the averaged hard family, each w.p. >= 2/3.
func minimalCentralizedQ(build func(q int) (centralized.Tester, error), n int,
	h dist.HardInstance, trials int, seed uint64) (int, error) {
	uniform, err := dist.Uniform(n)
	if err != nil {
		return 0, err
	}
	uniSampler, err := dist.NewAliasSampler(uniform)
	if err != nil {
		return 0, err
	}
	pred := func(q int) (bool, error) {
		tester, err := build(q)
		if err != nil {
			return false, err
		}
		opts := stats.EstimateOptions{Seed: seed ^ uint64(q)*0x9e3779b97f4a7c15}
		var first errOnce
		estU, err := stats.EstimateSuccess(trials, func(rng *rand.Rand) bool {
			samples := dist.SampleN(uniSampler, q, rng)
			ok, terr := tester.Test(samples)
			if terr != nil {
				first.record(terr)
			}
			return ok
		}, opts)
		if err != nil {
			return false, err
		}
		if err := first.get(); err != nil {
			return false, err
		}
		if estU.P < successTarget {
			return false, nil
		}
		optsF := opts
		optsF.Seed ^= 0x2545f4914f6cdd1d
		estF, err := stats.EstimateSuccess(trials, func(rng *rand.Rand) bool {
			nu, _, herr := h.RandomPerturbed(rng)
			if herr != nil {
				first.record(herr)
				return false
			}
			sampler, herr := dist.NewAliasSampler(nu)
			if herr != nil {
				first.record(herr)
				return false
			}
			samples := dist.SampleN(sampler, q, rng)
			ok, terr := tester.Test(samples)
			if terr != nil {
				first.record(terr)
			}
			return ok
		}, optsF)
		if err != nil {
			return false, err
		}
		if err := first.get(); err != nil {
			return false, err
		}
		return 1-estF.P >= successTarget, nil
	}
	return stats.GrowThenShrink(2, 1<<22, pred)
}

// e4 measures the distributed learning tradeoff of Theorem 1.4: the player
// count needed for a delta-approximation as a function of the per-player
// sample count q, compared against the n^2/q^2 lower-bound curve.
func e4() Experiment {
	return Experiment{
		ID:         "E4",
		Title:      "Distributed learning: minimal k vs q",
		Reproduces: "Theorem 1.4 (learning lower bound k = Omega(n^2/q^2))",
		Run: func(cfg Config) (*Table, error) {
			const (
				n     = 16
				delta = 0.25
			)
			truth, err := dist.Zipf(n, 1)
			if err != nil {
				return nil, err
			}
			table := NewTable(
				"E4: minimal players k* for a delta=0.25 approximation (n=16, group-indicator learner)",
				"q", "measured k*", "k* x q", "lower bound n^2/q^2", "upper curve n^2/(q delta^2)",
			)
			trials := cfg.trials(40)
			for _, q := range []int{1, 2, 4, 8} {
				q := q
				pred := func(kGroups int) (bool, error) {
					k := kGroups * n
					learner, err := core.NewGroupLearner(n, k, q)
					if err != nil {
						return false, err
					}
					meanErr, err := learner.EstimateL1Error(truth, trials, cfg.Seed+uint64(4*q*kGroups))
					if err != nil {
						return false, err
					}
					return meanErr <= delta, nil
				}
				groupsStar, err := stats.GrowThenShrink(1, 1<<16, pred)
				if err != nil {
					return nil, err
				}
				kStar := groupsStar * n
				table.MustAddRow(
					FmtInt(q),
					FmtInt(kStar),
					FmtInt(kStar*q),
					FmtF(float64(n)*float64(n)/float64(q*q)),
					FmtF(float64(n)*float64(n)/(float64(q)*delta*delta)),
				)
			}
			table.Notes = "Shape check: the measured k* falls with q; it stays above the n^2/q^2 lower bound (Theorem 1.4) and tracks the n^2/(q delta^2) behavior of this protocol (the k* x q column is roughly flat)."
			return table, nil
		},
	}
}
