package experiments

import (
	"math"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/lowerbound"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// Shared workload for the tester experiments: n = 2^12, the paper's eps-far
// hard family as the alternative.
const (
	testerEll = 11
	testerN   = 1 << (testerEll + 1)
	testerEps = 0.5
)

func testerHard() (dist.HardInstance, error) {
	return dist.NewHardInstance(testerEll, testerEps)
}

// e1 measures the per-player sample complexity of the sample-optimal
// threshold tester as k grows — the regime of Theorem 1.1/6.1: measured q*
// should track sqrt(n/k)/eps^2, and q* * sqrt(k) should stay flat.
func e1() Experiment {
	return Experiment{
		ID:         "E1",
		Title:      "Arbitrary-rule tester: minimal q vs k",
		Reproduces: "Theorem 1.1 / 6.1 (tightness of the FMO threshold tester)",
		Run: func(cfg Config) (*Table, error) {
			h, err := testerHard()
			if err != nil {
				return nil, err
			}
			table := NewTable(
				"E1: minimal per-player samples q* for the threshold tester (n=4096, eps=0.5)",
				"k", "measured q*", "q* x sqrt(k)", "lower bound (Thm 6.1, C=1)", "upper formula c*sqrt(n/k)/eps^2",
			)
			trials := cfg.trials(120)
			opts := stats.EstimateOptions{Seed: cfg.Seed + 1, Parallelism: cfg.Parallelism}
			for _, k := range []int{1, 4, 16, 64, 256} {
				k := k
				build := func(q int) (core.Protocol, error) {
					return core.NewThresholdTester(core.ThresholdTesterConfig{
						N: testerN, K: k, Q: q, Eps: testerEps,
					})
				}
				qStar, err := MinimalQ(build, testerN, h, 2, 1<<17, trials, opts)
				if err != nil {
					return nil, err
				}
				lb, err := lowerbound.Theorem61Q(testerN, k, testerEps, 1)
				if err != nil {
					return nil, err
				}
				table.MustAddRow(
					FmtInt(k),
					FmtInt(qStar),
					FmtF(float64(qStar)*math.Sqrt(float64(k))),
					FmtF(lb),
					FmtInt(core.RecommendedThresholdSamples(testerN, k, testerEps)),
				)
			}
			table.Notes = "Shape check: q* x sqrt(k) flattens once k >= 16 => q* ~ sqrt(n/k)/eps^2, matching Theorem 1.1's " +
				"lower bound. (At k <= 4 the referee threshold T = k/2 is a small constant, so that regime behaves like E3's " +
				"small-T rows instead.)"
			return table, nil
		},
	}
}

// e2 measures the AND-rule tester's minimal q over the same k sweep —
// Theorem 1.2/6.5's phenomenon: the fully local rule barely improves with
// k, staying near the centralized sqrt(n)/eps^2.
func e2() Experiment {
	return Experiment{
		ID:         "E2",
		Title:      "AND-rule tester: minimal q vs k",
		Reproduces: "Theorem 1.2 / 6.5 (locality is expensive)",
		Run: func(cfg Config) (*Table, error) {
			h, err := testerHard()
			if err != nil {
				return nil, err
			}
			table := NewTable(
				"E2: minimal per-player samples q* for the AND-rule tester (n=4096, eps=0.5)",
				"k", "measured q* (AND)", "q*(AND)/q*(k=1)", "lower bound (Thm 6.5, C=1/4)", "threshold-rule formula c*sqrt(n/k)/eps^2",
			)
			trials := cfg.trials(120)
			opts := stats.EstimateOptions{Seed: cfg.Seed + 2, Parallelism: cfg.Parallelism}
			var qCentral int
			for _, k := range []int{1, 4, 16, 64, 256} {
				k := k
				build := func(q int) (core.Protocol, error) {
					return core.NewANDTester(testerN, k, q, testerEps)
				}
				qStar, err := MinimalQ(build, testerN, h, 2, 1<<17, trials, opts)
				if err != nil {
					return nil, err
				}
				if k == 1 {
					qCentral = qStar
				}
				var lbCell string
				if k >= 2 {
					lb, err := lowerbound.Theorem65Q(testerN, k, testerEps, 0.25)
					if err != nil {
						return nil, err
					}
					lbCell = FmtF(lb)
				} else {
					lbCell = "-"
				}
				table.MustAddRow(
					FmtInt(k),
					FmtInt(qStar),
					FmtRatio(float64(qStar)/float64(qCentral)),
					lbCell,
					FmtInt(core.RecommendedThresholdSamples(testerN, k, testerEps)),
				)
			}
			table.Notes = "Shape check: q*(AND) stays near the centralized cost for every k in range — the gain is at most polylogarithmic, exactly Theorem 1.2's phenomenon — while the threshold-rule cost (last column; measured in E1) drops like 1/sqrt(k)."
			return table, nil
		},
	}
}

// e3 measures the cost of small referee thresholds T — Theorem 1.3: q*
// should scale like sqrt(n)/(T eps^2) until T reaches ~1/eps^2-scale
// territory.
func e3() Experiment {
	return Experiment{
		ID:         "E3",
		Title:      "T-threshold rule: minimal q vs T",
		Reproduces: "Theorem 1.3 (small thresholds are expensive)",
		Run: func(cfg Config) (*Table, error) {
			h, err := testerHard()
			if err != nil {
				return nil, err
			}
			const k = 64
			table := NewTable(
				"E3: minimal per-player samples q* vs referee threshold T (n=4096, k=64, eps=0.5)",
				"T", "measured q*", "measured gain q*(1)/q*(T)", "max gain allowed by Thm 1.3 (T)", "lower bound (Thm 1.3, C=1/4)",
			)
			trials := cfg.trials(120)
			opts := stats.EstimateOptions{Seed: cfg.Seed + 3, Parallelism: cfg.Parallelism}
			var qAtOne int
			for _, t := range []int{1, 2, 4, 8, 16, 32} {
				t := t
				build := func(q int) (core.Protocol, error) {
					return core.NewThresholdTester(core.ThresholdTesterConfig{
						N: testerN, K: k, Q: q, Eps: testerEps, T: t,
					})
				}
				qStar, err := MinimalQ(build, testerN, h, 2, 1<<17, trials, opts)
				if err != nil {
					return nil, err
				}
				if t == 1 {
					qAtOne = qStar
				}
				lb, err := lowerbound.Theorem13Q(testerN, k, t, testerEps, 0.25)
				if err != nil {
					return nil, err
				}
				table.MustAddRow(
					FmtInt(t),
					FmtInt(qStar),
					FmtRatio(float64(qAtOne)/float64(qStar)),
					FmtInt(t),
					FmtF(lb),
				)
			}
			table.Notes = "Shape check: raising T cheapens the tester, but the measured gain saturates near T ~ 1/eps^4 " +
				"(the FMO threshold) and stays far below the factor-T ceiling the Theorem 1.3 lower bound would permit — " +
				"consistent with the paper's remark that a quadratic gap (T = Theta(1/eps^4) vs 1/eps^2) remains open."
			return table, nil
		},
	}
}

// e11 measures the single-sample l-bit hashing tester's minimal player
// count vs the message length — Theorem 6.4's 2^{-Theta(l)} decay, with
// the [ACT18] upper-bound shape n/(2^{l/2} eps^2).
func e11() Experiment {
	return Experiment{
		ID:         "E11",
		Title:      "Single-sample l-bit tester: minimal k vs l",
		Reproduces: "Theorem 6.4 + [ACT18] upper bound",
		Run: func(cfg Config) (*Table, error) {
			const (
				ell = 9
				n   = 1 << (ell + 1) // 1024
				eps = 0.5
			)
			h, err := dist.NewHardInstance(ell, eps)
			if err != nil {
				return nil, err
			}
			table := NewTable(
				"E11: minimal players k* for the single-sample hashing tester (n=1024, eps=0.5)",
				"message bits l", "measured k*", "k* x 2^{l/2}", "upper formula 8n/(2^{l/2} eps^2)", "lower bound (Thm 6.4, C=1)",
			)
			trials := cfg.trials(100)
			opts := stats.EstimateOptions{Seed: cfg.Seed + 11, Parallelism: cfg.Parallelism}
			for _, l := range []int{4, 6, 8, 10} {
				l := l
				build := func(k int) (core.Protocol, error) {
					return core.NewACTTester(n, k, l, eps)
				}
				kStar, err := MinimalK(build, n, h, 2, 1<<21, trials, opts)
				if err != nil {
					return nil, err
				}
				// Thm 6.4 lower-bounds q given k; invert on the q=1 line by
				// finding the k at which the bound crosses 1.
				lbK := theorem64KAtQ1(n, l, eps)
				table.MustAddRow(
					FmtInt(l),
					FmtInt(kStar),
					FmtF(float64(kStar)*math.Pow(2, float64(l)/2)),
					FmtInt(core.RecommendedACTPlayers(n, l, eps)),
					FmtF(lbK),
				)
			}
			table.Notes = "Shape check: k* x 2^{l/2} stays roughly flat — longer messages buy players at the " +
				"2^{-l/2} rate of [ACT18], consistent with Theorem 6.4's decay. Coarser partitions (l <= 2) are " +
				"excluded: with B = 2^l buckets the random partition preserves the eps-far distance only up to " +
				"Theta(sqrt(1/B)) relative variance, and at B = 4 the far-rejection probability plateaus below the " +
				"2/3 target for every k — a measured finding consistent with [ACT18] needing l >= 1 plus " +
				"concentration, documented in EXPERIMENTS.md."
			return table, nil
		},
	}
}

// theorem64KAtQ1 returns the k at which the Theorem 6.4 bound permits
// q = 1: below it, one sample per player cannot suffice.
func theorem64KAtQ1(n, r int, eps float64) float64 {
	// q >= (1/eps^2) min(sqrt(n/(2^r k)), n/(2^r k)) = 1 with the n/k
	// branch active in the single-sample regime: k = n/(2^r eps^2).
	return float64(n) / (math.Pow(2, float64(r)) * eps * eps)
}

// e12 measures the asymmetric-cost model of Section 6.2: heterogeneous
// sampling rates T_i, common deadline tau. The invariant is tau* ~
// sqrt(n)/(eps^2 ||T||_2), so tau* x ||T||_2 should be flat across
// profiles.
func e12() Experiment {
	return Experiment{
		ID:         "E12",
		Title:      "Asymmetric rates: minimal deadline tau vs rate profile",
		Reproduces: "Section 6.2 (matching the FMO asymmetric upper bound)",
		Run: func(cfg Config) (*Table, error) {
			h, err := testerHard()
			if err != nil {
				return nil, err
			}
			profiles := []struct {
				name  string
				rates []float64
				t     int
			}{
				{name: "uniform x16", rates: repeatRate(1, 16), t: 0},
				{name: "two-tier 4x4 + 12x1", rates: append(repeatRate(4, 4), repeatRate(1, 12)...), t: 4},
				{name: "one fast 1x8 + 15x1", rates: append(repeatRate(8, 1), repeatRate(1, 15)...), t: 1},
			}
			table := NewTable(
				"E12: minimal deadline tau* under heterogeneous sampling rates (n=4096, eps=0.5)",
				"profile", "||T||_2", "measured tau*", "tau* x ||T||_2 x eps^2/sqrt(n)", "lower bound tau (C=1)",
			)
			trials := cfg.trials(120)
			opts := stats.EstimateOptions{Seed: cfg.Seed + 12, Parallelism: cfg.Parallelism}
			for _, prof := range profiles {
				prof := prof
				build := func(tau int) (core.Protocol, error) {
					qs := make([]int, len(prof.rates))
					for i, r := range prof.rates {
						qs[i] = int(math.Ceil(r * float64(tau)))
					}
					return core.NewAsymmetricThresholdTester(testerN, qs, testerEps, prof.t)
				}
				tauStar, err := MinimalQ(build, testerN, h, 2, 1<<17, trials, opts)
				if err != nil {
					return nil, err
				}
				var norm2 float64
				for _, r := range prof.rates {
					norm2 += r * r
				}
				norm := math.Sqrt(norm2)
				lb, err := lowerbound.AsymmetricTau(testerN, prof.rates, testerEps, 1)
				if err != nil {
					return nil, err
				}
				table.MustAddRow(
					prof.name,
					FmtF(norm),
					FmtInt(tauStar),
					FmtRatio(float64(tauStar)*norm*testerEps*testerEps/math.Sqrt(float64(testerN))),
					FmtF(lb),
				)
			}
			table.Notes = "Shape check: the normalized column is flat — only ||T||_2 matters, matching the Section 6.2 bound tau = Theta(sqrt(n)/(eps^2 ||T||_2))."
			return table, nil
		},
	}
}

func repeatRate(rate float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = rate
	}
	return out
}

// e13 demonstrates the Section 6.3 remark: with starved players (one
// collision-free sample batch each), the AND rule cannot test uniformity
// no matter how many players join — the acceptance gap stays ~0.
func e13() Experiment {
	return Experiment{
		ID:         "E13",
		Title:      "AND rule with starved players: blind for every k",
		Reproduces: "Section 6.3 remark (q=1 AND-rule impossibility)",
		Run: func(cfg Config) (*Table, error) {
			const (
				ell = 9
				n   = 1 << (ell + 1)
				eps = 0.75
				q   = 2 // minimal legal batch; collision mass 1/n ~ 0
			)
			h, err := dist.NewHardInstance(ell, eps)
			if err != nil {
				return nil, err
			}
			table := NewTable(
				"E13: starved AND tester acceptance gap (n=1024, eps=0.75, q=2)",
				"k", "accept(uniform)", "accept(hard family)", "gap",
			)
			trials := cfg.trials(400)
			for _, k := range []int{16, 256, 4096} {
				p, err := core.NewANDTester(n, k, q, eps)
				if err != nil {
					return nil, err
				}
				opts := stats.EstimateOptions{Seed: cfg.Seed + uint64(13*k), Parallelism: cfg.Parallelism}
				pu, err := acceptUniform(p, n, trials, opts)
				if err != nil {
					return nil, err
				}
				farOpts := opts
				farOpts.Seed ^= 0xabcdef
				pf, err := acceptHardFamily(p, h, trials, farOpts)
				if err != nil {
					return nil, err
				}
				table.MustAddRow(FmtInt(k), FmtProb(pu), FmtProb(pf), FmtProb(pu-pf))
			}
			table.Notes = "Shape check: the acceptance gap stays far below the 1/3 separation the model requires, for " +
				"every k. (The paper's exact impossibility statement is for q = 1, where a player's view carries no " +
				"collision information at all; q = 2 — the smallest batch our collision rule accepts — leaks a " +
				"Theta(eps^2/n) per-player signal, visible as the small but non-growing gap at large k.)"
			return table, nil
		},
	}
}
