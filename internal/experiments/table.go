package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells.
type Table struct {
	Title   string
	Notes   string
	Columns []string
	Rows    [][]string
}

// NewTable creates an empty table with the given columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; the cell count must match the columns.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("experiments: row with %d cells for %d columns", len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustAddRow appends a row and panics on arity mismatch; experiment code
// builds rows with static arity, so a mismatch is a programming error.
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		b.WriteString("\n" + t.Notes + "\n")
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quoting cells that need it).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(strconv.Quote(c))
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Cell formatting helpers shared by the experiments.

// FmtInt renders an integer cell.
func FmtInt(v int) string { return strconv.Itoa(v) }

// FmtF renders a float with 4 significant digits.
func FmtF(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

// FmtSci renders a float in scientific notation with 2 digits.
func FmtSci(v float64) string { return strconv.FormatFloat(v, 'e', 2, 64) }

// FmtRatio renders a ratio with 3 decimals.
func FmtRatio(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// FmtProb renders a probability with 3 decimals.
func FmtProb(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
