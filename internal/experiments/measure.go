package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// successTarget is the paper's correctness requirement.
const successTarget = 2.0 / 3

// errOnce keeps the first error recorded across trial goroutines, for
// experiments still driving stats.EstimateSuccess directly.
type errOnce struct {
	mu  sync.Mutex
	err error
}

func (e *errOnce) record(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errOnce) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// engineOptions maps the legacy estimation options onto the engine's.
func engineOptions(opts stats.EstimateOptions) engine.Options {
	return engine.Options{
		Workers:    opts.Parallelism,
		Confidence: opts.Confidence,
		Seed:       opts.Seed,
	}
}

// acceptUniform estimates Pr[protocol accepts] under U_n via the engine's
// trial driver.
func acceptUniform(p core.Protocol, n, trials int, opts stats.EstimateOptions) (float64, error) {
	u, err := dist.Uniform(n)
	if err != nil {
		return 0, err
	}
	b, err := core.BackendFor(p)
	if err != nil {
		return 0, err
	}
	src, err := engine.FromDist(u)
	if err != nil {
		return 0, err
	}
	res, err := engine.Estimate(context.Background(), b, src, trials, engineOptions(opts))
	if err != nil {
		return 0, err
	}
	return res.Estimate.P, nil
}

// acceptHardFamily estimates E_z Pr[protocol accepts nu_z]: every trial
// draws a fresh perturbation from its per-trial stream, matching the
// lower bound's averaged adversary. Trials run on the engine's worker
// pool and abort as soon as any perturbation or run errors. The
// adversary's per-trial alias sampler is a dist.BatchSampler, so the
// backend's scratch path drains each player's q samples in one batched
// SampleInto; only the perturbed distribution itself is built per trial.
func acceptHardFamily(p core.Protocol, h dist.HardInstance, trials int, opts stats.EstimateOptions) (float64, error) {
	b, err := core.BackendFor(p)
	if err != nil {
		return 0, err
	}
	src := func(_ int, rng *rand.Rand) (dist.Sampler, error) {
		nu, _, err := h.RandomPerturbed(rng)
		if err != nil {
			return nil, err
		}
		return dist.NewAliasSampler(nu)
	}
	res, err := engine.Estimate(context.Background(), b, src, trials, engineOptions(opts))
	if err != nil {
		return 0, err
	}
	return res.Estimate.P, nil
}

// worksAt reports whether the protocol meets the paper's guarantee at its
// current configuration: accepts uniform and rejects the averaged hard
// family, each with probability >= 2/3. The search predicates keep the
// point-estimate semantics (a CI-based decision would turn borderline
// configurations into search failures rather than boundary noise).
func worksAt(p core.Protocol, n int, h dist.HardInstance, trials int, opts stats.EstimateOptions) (bool, error) {
	pu, err := acceptUniform(p, n, trials, opts)
	if err != nil {
		return false, err
	}
	if pu < successTarget {
		return false, nil
	}
	farOpts := opts
	farOpts.Seed ^= 0x94d049bb133111eb
	pf, err := acceptHardFamily(p, h, trials, farOpts)
	if err != nil {
		return false, err
	}
	return 1-pf >= successTarget, nil
}

// MinimalQ measures the empirical minimal per-player sample count at which
// build(q) meets the guarantee, searching [startQ, maxQ].
func MinimalQ(build func(q int) (core.Protocol, error), n int, h dist.HardInstance,
	startQ, maxQ, trials int, opts stats.EstimateOptions) (int, error) {
	if build == nil {
		return 0, fmt.Errorf("experiments: nil protocol builder")
	}
	pred := func(q int) (bool, error) {
		p, err := build(q)
		if err != nil {
			return false, err
		}
		qOpts := opts
		qOpts.Seed ^= uint64(q) * 0x9e3779b97f4a7c15
		return worksAt(p, n, h, trials, qOpts)
	}
	return stats.GrowThenShrink(startQ, maxQ, pred)
}

// MinimalK measures the empirical minimal player count at which build(k)
// meets the guarantee.
func MinimalK(build func(k int) (core.Protocol, error), n int, h dist.HardInstance,
	startK, maxK, trials int, opts stats.EstimateOptions) (int, error) {
	if build == nil {
		return 0, fmt.Errorf("experiments: nil protocol builder")
	}
	pred := func(k int) (bool, error) {
		p, err := build(k)
		if err != nil {
			return false, err
		}
		kOpts := opts
		kOpts.Seed ^= uint64(k) * 0xbf58476d1ce4e5b9
		return worksAt(p, n, h, trials, kOpts)
	}
	return stats.GrowThenShrink(startK, maxK, pred)
}
