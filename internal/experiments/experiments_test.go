package experiments

import (
	"strconv"
	"strings"
	"testing"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// smokeCfg keeps the exact (lemma/identity) experiment tests fast; their
// results do not depend on trial counts.
var smokeCfg = Config{Scale: 0.05, Seed: 7}

// searchCfg is used by the Monte-Carlo minimal-q/minimal-k experiments,
// whose assertions need enough trials to damp boundary noise.
var searchCfg = Config{Scale: 0.3, Seed: 7}

// runExperimentCfg executes one experiment and returns the table.
func runExperimentCfg(t *testing.T, id string, cfg Config) *Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	table, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	if len(table.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return table
}

// runExperiment executes at smoke scale.
func runExperiment(t *testing.T, id string) *Table {
	t.Helper()
	return runExperimentCfg(t, id, smokeCfg)
}

// cell parses a table cell as float64.
func cell(t *testing.T, table *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(table.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, table.Rows[row][col], err)
	}
	return v
}

func TestE6LemmaRatiosBelowOne(t *testing.T) {
	table := runExperiment(t, "E6")
	for i := range table.Rows {
		if r := cell(t, table, i, 6); r > 1+1e-9 {
			t.Errorf("row %d: Lemma 5.1 ratio %v > 1", i, r)
		}
		if r := cell(t, table, i, 9); r > 1+1e-9 {
			t.Errorf("row %d: Lemma 4.2 ratio %v > 1", i, r)
		}
	}
}

func TestE7BiasedRatiosBelowOne(t *testing.T) {
	table := runExperiment(t, "E7")
	for i := range table.Rows {
		if r := cell(t, table, i, 5); r > 1+1e-9 {
			t.Errorf("row %d: Lemma 4.3 ratio %v > 1", i, r)
		}
	}
}

func TestE8NeededConstantBelowOne(t *testing.T) {
	table := runExperiment(t, "E8")
	for i := range table.Rows {
		if c := cell(t, table, i, 6); c > 1 {
			t.Errorf("row %d: Lemma 4.4 needs C=%v > 1", i, c)
		}
	}
}

func TestE9CombinatoricsRatios(t *testing.T) {
	table := runExperiment(t, "E9")
	for i := range table.Rows {
		if r := cell(t, table, i, 5); r > 1+1e-9 {
			t.Errorf("row %d: |X_S| ratio %v > 1", i, r)
		}
	}
	if !strings.Contains(table.Notes, "E9b") {
		t.Error("moments sub-table missing from notes")
	}
}

func TestE10ResidualsAtFloatNoise(t *testing.T) {
	table := runExperiment(t, "E10")
	for i := range table.Rows {
		for col := 3; col <= 5; col++ {
			if r := cell(t, table, i, col); r > 1e-12 {
				t.Errorf("row %d col %d: residual %v above float noise", i, col, r)
			}
		}
	}
}

func TestE13GapNearZero(t *testing.T) {
	table := runExperimentCfg(t, "E13", searchCfg)
	for i := range table.Rows {
		if gap := cell(t, table, i, 3); gap > 0.25 {
			t.Errorf("row %d: starved AND gap %v, want ~0", i, gap)
		}
	}
}

func TestE14Fact63RatiosBelowOne(t *testing.T) {
	table := runExperiment(t, "E14")
	for i := range table.Rows {
		if r := cell(t, table, i, 4); r > 1+1e-9 {
			t.Errorf("row %d: Fact 6.3 ratio %v > 1", i, r)
		}
	}
}

func TestE15KKLRatiosBelowOne(t *testing.T) {
	table := runExperiment(t, "E15")
	for i := range table.Rows {
		if r := cell(t, table, i, 6); r > 1+1e-9 {
			t.Errorf("row %d: KKL ratio %v > 1", i, r)
		}
	}
}

func TestE4LearningAboveLowerBound(t *testing.T) {
	table := runExperimentCfg(t, "E4", searchCfg)
	for i := range table.Rows {
		kStar := cell(t, table, i, 1)
		lb := cell(t, table, i, 3)
		if kStar < lb {
			t.Errorf("row %d: measured k* %v below the Theorem 1.4 lower bound %v", i, kStar, lb)
		}
	}
}

func TestE5CollisionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("minimal-q search in -short mode")
	}
	table := runExperimentCfg(t, "E5", searchCfg)
	for i := range table.Rows {
		if table.Rows[i][0] != "collision" {
			continue
		}
		ratio := cell(t, table, i, 4)
		if ratio < 0.5 || ratio > 8 {
			t.Errorf("row %d: q*/(sqrt(n)/eps^2) = %v, want O(1)", i, ratio)
		}
	}
}

func TestE1ThresholdShape(t *testing.T) {
	if testing.Short() {
		t.Skip("minimal-q search in -short mode")
	}
	table := runExperimentCfg(t, "E1", searchCfg)
	// q* must not increase with k, and must respect the lower bound.
	prev := cell(t, table, 0, 1)
	for i := range table.Rows {
		q := cell(t, table, i, 1)
		if q > prev*1.3 {
			t.Errorf("row %d: q* grew with k: %v -> %v", i, prev, q)
		}
		prev = q
		if lb := cell(t, table, i, 3); q < lb {
			t.Errorf("row %d: measured q* %v below the Theorem 6.1 bound %v", i, q, lb)
		}
	}
	first := cell(t, table, 0, 1)
	last := cell(t, table, len(table.Rows)-1, 1)
	if last > first/2 {
		t.Errorf("no parallel gain: q*(k=1)=%v, q*(k=256)=%v", first, last)
	}
}

func TestE2ANDStaysNearCentralized(t *testing.T) {
	if testing.Short() {
		t.Skip("minimal-q search in -short mode")
	}
	table := runExperimentCfg(t, "E2", searchCfg)
	first := cell(t, table, 0, 1)
	for i := range table.Rows {
		q := cell(t, table, i, 1)
		// The AND rule's gain is the slow k^Theta(eps^2) one: far below the
		// sqrt(k) = 16x of E1's threshold tester at k=256. Allow generous
		// Monte-Carlo slack around the ~3-5x measured gain.
		if q < first/10 {
			t.Errorf("row %d: AND-rule q* dropped to %v from %v — that is sqrt(k)-scale parallelism, which locality should forfeit", i, q, first)
		}
	}
}

func TestE11HashingTesterShape(t *testing.T) {
	if testing.Short() {
		t.Skip("minimal-k search in -short mode")
	}
	table := runExperimentCfg(t, "E11", searchCfg)
	prev := cell(t, table, 0, 1)
	for i := 1; i < len(table.Rows); i++ {
		k := cell(t, table, i, 1)
		if k > prev {
			t.Errorf("row %d: k* grew with message length: %v -> %v", i, prev, k)
		}
		prev = k
	}
}

func TestE3AndE12Run(t *testing.T) {
	if testing.Short() {
		t.Skip("minimal-q search in -short mode")
	}
	e3Table := runExperimentCfg(t, "E3", searchCfg)
	if len(e3Table.Rows) != 6 {
		t.Errorf("E3 rows = %d", len(e3Table.Rows))
	}
	e12Table := runExperimentCfg(t, "E12", searchCfg)
	if len(e12Table.Rows) != 3 {
		t.Errorf("E12 rows = %d", len(e12Table.Rows))
	}
	// The E12 invariant: normalized tau in the same ballpark across
	// profiles.
	lo, hi := 1e18, 0.0
	for i := range e12Table.Rows {
		v := cell(t, e12Table, i, 3)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 4*lo {
		t.Errorf("E12 normalized tau spread too wide: [%v, %v]", lo, hi)
	}
}

func TestMinimalQValidation(t *testing.T) {
	h, err := dist.NewHardInstance(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MinimalQ(nil, 16, h, 1, 10, 20, stats.EstimateOptions{}); err == nil {
		t.Error("nil builder accepted")
	}
	if _, err := MinimalK(nil, 16, h, 1, 10, 20, stats.EstimateOptions{}); err == nil {
		t.Error("nil builder accepted")
	}
}

func TestMinimalQFindsWorkingPoint(t *testing.T) {
	// Sanity: the returned q actually works, q-1 was judged insufficient
	// during the search (implicitly), and builders see the exact q.
	h, err := dist.NewHardInstance(7, 0.5) // n=256
	if err != nil {
		t.Fatal(err)
	}
	var lastQ int
	build := func(q int) (core.Protocol, error) {
		lastQ = q
		return core.NewThresholdTester(core.ThresholdTesterConfig{N: 256, K: 8, Q: q, Eps: 0.5})
	}
	qStar, err := MinimalQ(build, 256, h, 2, 1<<14, 60, stats.EstimateOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if qStar < 2 || qStar > 1<<14 {
		t.Fatalf("q* = %d out of range", qStar)
	}
	if lastQ == 0 {
		t.Fatal("builder never invoked")
	}
}

func TestE16MultiBitGrowthWithinEnvelope(t *testing.T) {
	table := runExperiment(t, "E16")
	if len(table.Rows) != 3 {
		t.Fatalf("E16 rows = %d", len(table.Rows))
	}
	prev := 0.0
	for i := range table.Rows {
		kl := cell(t, table, i, 1)
		if kl+1e-15 < prev {
			t.Errorf("row %d: quantized KL %v dropped below previous %v", i, kl, prev)
		}
		prev = kl
		growth := cell(t, table, i, 3)
		envelope := cell(t, table, i, 4)
		if growth > envelope {
			t.Errorf("row %d: growth %v outside the 2^r envelope %v", i, growth, envelope)
		}
	}
}

func TestE17AblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("minimal-q search in -short mode")
	}
	table := runExperimentCfg(t, "E17", searchCfg)
	if len(table.Rows) != 4 {
		t.Fatalf("E17 rows = %d", len(table.Rows))
	}
	for i := range table.Rows {
		ratio := cell(t, table, i, 3)
		if ratio < 0.5 || ratio > 8 {
			t.Errorf("row %d: normalized q* %v escaped the sqrt(n)/eps^2 band", i, ratio)
		}
	}
}

func TestE18CONGESTEquivalence(t *testing.T) {
	table := runExperimentCfg(t, "E18", searchCfg)
	if len(table.Rows) != 5 {
		t.Fatalf("E18 rows = %d", len(table.Rows))
	}
	for i := range table.Rows {
		diameter := cell(t, table, i, 1)
		rounds := cell(t, table, i, 2)
		if rounds < diameter {
			t.Errorf("row %d: %v rounds below diameter %v", i, rounds, diameter)
		}
		if rounds > 4*diameter+10 {
			t.Errorf("row %d: %v rounds not O(diameter %v)", i, rounds, diameter)
		}
		if bits := cell(t, table, i, 4); bits > 64 {
			t.Errorf("row %d: message width %v over the CONGEST cap", i, bits)
		}
		pu := cell(t, table, i, 5)
		pf := cell(t, table, i, 6)
		if pu < 2.0/3 {
			t.Errorf("row %d: accept(U) = %v below 2/3", i, pu)
		}
		if pf > 1.0/3 {
			t.Errorf("row %d: accept(far) = %v above 1/3", i, pf)
		}
	}
}

func TestE19TransferAboveFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("minimal-q search in -short mode")
	}
	table := runExperimentCfg(t, "E19", searchCfg)
	for i := range table.Rows {
		total := cell(t, table, i, 2)
		floor := cell(t, table, i, 3)
		if total < floor {
			t.Errorf("row %d: closeness total samples %v below the uniformity floor %v", i, total, floor)
		}
	}
	if !strings.Contains(table.Notes, "E19b") {
		t.Error("independence sub-table missing")
	}
}

func TestE20GapBelowCeiling(t *testing.T) {
	table := runExperiment(t, "E20")
	if len(table.Rows) != 7 {
		t.Fatalf("E20 rows = %d", len(table.Rows))
	}
	for i := range table.Rows {
		gap := cell(t, table, i, 4)
		ceiling := cell(t, table, i, 5)
		if gap > ceiling+1e-9 {
			t.Errorf("row %d: gap %v exceeds divergence ceiling %v", i, gap, ceiling)
		}
	}
}
