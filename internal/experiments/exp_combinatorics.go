package experiments

import (
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/lowerbound"
)

// e9 verifies the evenly-covered combinatorics: the exact |X_S| counts
// against the Proposition 5.2 double-factorial bound, and the exact
// moments of a_r(x) against the Lemma 5.5 bound (with a Monte-Carlo
// cross-check of the exact enumeration).
func e9() Experiment {
	return Experiment{
		ID:         "E9",
		Title:      "Evenly-covered combinatorics: Proposition 5.2 and Lemma 5.5",
		Reproduces: "Proposition 5.2, Lemma 5.5",
		Run: func(cfg Config) (*Table, error) {
			table := NewTable(
				"E9a: exact |X_S| vs the Proposition 5.2 bound",
				"ell", "q", "|S|", "exact |X_S|", "P5.2 bound", "ratio",
			)
			for _, g := range []struct{ ell, q int }{{1, 4}, {2, 4}, {2, 6}, {3, 4}} {
				for size := 0; size <= g.q; size++ {
					set := uint64(1)<<uint(size) - 1
					exact, err := lowerbound.CountEvenlyCovered(g.ell, g.q, set)
					if err != nil {
						return nil, err
					}
					bound, err := lowerbound.XSBound(g.ell, g.q, size)
					if err != nil {
						return nil, err
					}
					table.MustAddRow(
						FmtInt(g.ell), FmtInt(g.q), FmtInt(size),
						FmtInt(int(exact)), FmtF(bound), FmtRatio(ratioOrZero(float64(exact), bound)),
					)
				}
			}

			moments := NewTable(
				"E9b: exact E_x[a_r(x)^m] vs the Lemma 5.5 bound (with Monte-Carlo cross-check)",
				"ell", "q", "r", "m", "exact moment", "Monte Carlo", "L5.5 bound", "ratio",
			)
			rng := rand.New(rand.NewPCG(cfg.Seed+9, 1))
			mcTrials := cfg.trials(50000)
			for _, g := range []struct{ ell, q, r, m int }{
				{1, 4, 1, 1}, {1, 4, 1, 2}, {2, 4, 1, 2}, {2, 4, 2, 2}, {2, 6, 1, 3}, {3, 4, 1, 2},
			} {
				exact, err := lowerbound.ARMomentExact(g.ell, g.q, g.r, g.m)
				if err != nil {
					return nil, err
				}
				mc, err := lowerbound.ARMomentMonteCarlo(g.ell, g.q, g.r, g.m, mcTrials, rng)
				if err != nil {
					return nil, err
				}
				bound, err := lowerbound.ARMomentBound(g.ell, g.q, g.r, g.m)
				if err != nil {
					return nil, err
				}
				moments.MustAddRow(
					FmtInt(g.ell), FmtInt(g.q), FmtInt(g.r), FmtInt(g.m),
					FmtSci(exact), FmtSci(mc), FmtSci(bound), FmtSci(ratioOrZero(exact, bound)),
				)
			}

			// Concatenate the two sub-tables: E9 reports both halves.
			combined := NewTable(table.Title, table.Columns...)
			combined.Rows = table.Rows
			combined.Notes = "Paper check: all ratios <= 1.\n\n" + moments.Markdown()
			return combined, nil
		},
	}
}
