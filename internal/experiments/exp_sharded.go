package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
	"github.com/distributed-uniformity/dut/internal/lowerbound"
	"github.com/distributed-uniformity/dut/internal/network"
)

// e22 is the scale workload of the sharded referee tree: the quantized
// collision tester run as a real networked deployment — player nodes,
// L1 aggregators, root referee over in-memory pipes — with the player
// count swept across Theorem 1.4's learning floor k = Omega(n^2/q^2).
// The point is the testing/learning separation at scale: with q = 4
// samples per player (far below the sqrt(n) a lone tester needs), the
// distributed tester's U-far gap opens as k grows, long before and then
// far past the k = n^2/q^2 players a distribution LEARNER would need at
// this q. Every row runs twice, once on the flat star and once on the
// aggregation tree, and the sweep aborts if any verdict differs — the
// tree is a wire-level optimization with a bit-identical contract.
func e22() Experiment {
	return Experiment{
		ID:         "E22",
		Title:      "Sharded referee tree at scale: k swept across the Thm 1.4 learning floor",
		Reproduces: "Theorem 1.4's k = Omega(n^2/q^2) learning floor, contrasted with distributed testing on the aggregation tree",
		Run: func(cfg Config) (*Table, error) {
			const (
				n    = 64
				ell  = 5 // n = 2^(ell+1)
				q    = 4
				bits = 3 // C(q,2) = 6 < 2^3 - 1: the quantized sum is exact
				s    = 4 // L1 aggregators
				eps  = 0.5
			)
			ks := []int{32, 64, 128, 256, 512, 1024}
			h, err := dist.NewHardInstance(ell, eps)
			if err != nil {
				return nil, err
			}
			u, err := dist.Uniform(n)
			if err != nil {
				return nil, err
			}
			uniform, err := engine.FromDist(u)
			if err != nil {
				return nil, err
			}
			far := func(_ int, rng *rand.Rand) (dist.Sampler, error) {
				nu, _, err := h.RandomPerturbed(rng)
				if err != nil {
					return nil, err
				}
				return dist.NewAliasSampler(nu)
			}
			trials := cfg.trials(60)
			// Each worker owns a full k-node session; cap the fleet so the
			// k = 1024 rows do not multiply into tens of thousands of
			// goroutines.
			workers := cfg.Parallelism
			if workers == 0 || workers > 4 {
				workers = 4
			}
			verdicts := func(b engine.Backend, src engine.Source, seed uint64) ([]bool, float64, error) {
				results, err := engine.Run(context.Background(), b, src, trials, engine.Options{
					Seed: seed, Workers: workers, Batch: 64, Window: 2,
				})
				if err != nil {
					return nil, 0, err
				}
				out := make([]bool, len(results))
				accepts := 0
				for i, r := range results {
					out[i] = r.Verdict
					if r.Verdict {
						accepts++
					}
				}
				return out, float64(accepts) / float64(len(results)), nil
			}
			floor, err := lowerbound.Theorem14K(n, q, 1)
			if err != nil {
				return nil, err
			}
			table := NewTable(
				fmt.Sprintf("E22: quantized tester on the sharded referee tree (n=%d, q=%d, r=%d, %d aggregators, %d trials per cell; Thm 1.4 learning floor k = n^2/q^2 = %s)",
					n, q, bits, s, trials, FmtF(floor)),
				"k", "T", "accept(U)", "accept(far)", "U-far gap", "k / learner floor",
			)
			for _, k := range ks {
				rule, err := core.NewQuantizedCollisionRule(n, q, bits)
				if err != nil {
					return nil, err
				}
				cluster, err := network.NewCluster(network.ClusterConfig{
					K: k, Q: q,
					Rule:    rule,
					Referee: core.SumThresholdReferee{Bits: bits, T: core.QuantizedSumThreshold(n, k, q)},
					Timeout: 30 * time.Second,
				})
				if err != nil {
					return nil, err
				}
				flat, err := network.NewBackend(cluster)
				if err != nil {
					return nil, err
				}
				tree, err := network.NewBackend(cluster, network.WithShards(s))
				if err != nil {
					return nil, err
				}
				seedU := cfg.Seed + 220
				seedF := seedU ^ 0x5851f42d4c957f2d
				var pu, pf float64
				for _, src := range []struct {
					source engine.Source
					seed   uint64
					p      *float64
				}{{uniform, seedU, &pu}, {far, seedF, &pf}} {
					flatV, p, err := verdicts(flat, src.source, src.seed)
					if err != nil {
						return nil, err
					}
					treeV, _, err := verdicts(tree, src.source, src.seed)
					if err != nil {
						return nil, err
					}
					for i := range flatV {
						if flatV[i] != treeV[i] {
							return nil, fmt.Errorf("experiments: E22 tree verdict diverged from flat at k=%d trial %d; the sharded referee broke its bit-identical contract", k, i)
						}
					}
					*src.p = p
				}
				table.MustAddRow(
					FmtInt(k), FmtInt(core.QuantizedSumThreshold(n, k, q)),
					FmtProb(pu), FmtProb(pf), FmtProb(pu-pf),
					FmtF(float64(k)/floor),
				)
			}
			table.Notes = "Paper check: Theorem 1.4 prices LEARNING the input to constant accuracy at k = Omega(n^2/q^2) " +
				"players of q queries each — at q = " + FmtInt(q) + " and n = " + FmtInt(n) + " that floor is " +
				FmtF(floor) + " players. Uniformity TESTING is cheaper: the quantized collision tester's U-far gap " +
				"opens as k grows and is decisive around the floor itself, even though each player holds " +
				"far fewer than the sqrt(n) samples a centralized tester needs, and each message is just r = " +
				FmtInt(bits) + " bits. Every cell ran as a real networked deployment on the two-tier referee tree (" +
				FmtInt(s) + " L1 aggregators reducing VOTE batches to AGG_SUM counter planes) and again on the flat " +
				"star, with bit-identical verdicts trial by trial — the sweep aborts on the first divergence."
			return table, nil
		},
	}
}
