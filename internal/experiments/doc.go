// Package experiments implements the reproduction harness: one registered
// experiment per theorem/lemma of the paper (see DESIGN.md section 3 for
// the index). Each experiment generates the rows reported in
// EXPERIMENTS.md: lemma-verification experiments evaluate both sides of
// the proven inequalities (exactly on small instances), and
// sample-complexity experiments measure the empirical minimal resources of
// the matching upper-bound protocols and compare their scaling shape
// against the lower-bound formulas.
//
// Experiments accept a Config whose Scale knob shrinks or grows the grids
// and trial counts, so the same code serves quick smoke runs (bench
// harness, go test) and the full tables (cmd/dut-bench).
package experiments
