package engine_test

// Benchmarks comparing trial throughput across the three backends under
// the same engine driver. `make bench` runs these and distills them into
// BENCH_engine.json (trials/sec per backend).

import (
	"context"
	"os"
	"strconv"
	"testing"
	"time"

	"github.com/distributed-uniformity/dut/internal/congest"
	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
	"github.com/distributed-uniformity/dut/internal/network"
)

// Batch geometry of the benchmarks, overridable via BENCH_BATCH /
// BENCH_WINDOW (0 disables batching). The defaults are the headline
// configuration BENCH_engine.json records.
const (
	benchDefaultBatch  = 256
	benchDefaultWindow = 4
)

func benchEnvInt(b *testing.B, name string, def int) int {
	b.Helper()
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		b.Fatalf("%s=%q: want a non-negative integer", name, v)
	}
	return n
}

func benchSource(b *testing.B) engine.Source {
	b.Helper()
	u, err := dist.Uniform(xbDomain)
	if err != nil {
		b.Fatal(err)
	}
	src, err := engine.FromDist(u)
	if err != nil {
		b.Fatal(err)
	}
	return src
}

func benchRun(b *testing.B, backend engine.Backend) {
	b.Helper()
	benchRunWorkers(b, backend, 0)
}

func benchRunWorkers(b *testing.B, backend engine.Backend, workers int) {
	b.Helper()
	src := benchSource(b)
	opts := engine.Options{
		Seed:    xbSeed,
		Workers: workers,
		Batch:   benchEnvInt(b, "BENCH_BATCH", benchDefaultBatch),
		Window:  benchEnvInt(b, "BENCH_WINDOW", benchDefaultWindow),
	}
	b.ResetTimer()
	if _, err := engine.Run(context.Background(), backend, src, b.N, opts); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEngineSMP(b *testing.B) {
	p, err := core.NewSMP(xbPlayers, xbSamples, xbRule(), core.BitReferee{Rule: core.ThresholdRule{T: 2}})
	if err != nil {
		b.Fatal(err)
	}
	backend, err := core.BackendFor(p)
	if err != nil {
		b.Fatal(err)
	}
	benchRun(b, backend)
}

func BenchmarkEngineCluster(b *testing.B) {
	c, err := network.NewCluster(network.ClusterConfig{
		K: xbPlayers, Q: xbSamples,
		Rule:      xbRule(),
		Referee:   core.BitReferee{Rule: core.ThresholdRule{T: 2}},
		Transport: network.NewMemTransport(),
		Timeout:   10 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	backend, err := network.NewBackend(c)
	if err != nil {
		b.Fatal(err)
	}
	benchRun(b, backend)
}

// BenchmarkEngineClusterSharded is the committed large-k row: the same
// driver pushed through the two-tier referee tree at 10,000 players and
// 16 L1 aggregators — the regime the flat accept loop cannot reach with
// one aggregation point. Each engine worker owns a full 10k-node
// session, so the worker count is pinned: it bounds the goroutine count
// on wide hosts, and it keeps allocs/op (the CI-gated metric, dominated
// here by per-session setup amortized over the fixed trial budget)
// host-independent.
func BenchmarkEngineClusterSharded(b *testing.B) {
	const (
		shardedK    = 10000
		shardedAggs = 16
	)
	c, err := network.NewCluster(network.ClusterConfig{
		K: shardedK, Q: xbSamples,
		Rule:      xbRule(),
		Referee:   core.BitReferee{Rule: core.ThresholdRule{T: 2 * shardedK / 5}},
		Transport: network.NewMemTransport(),
		Timeout:   60 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	backend, err := network.NewBackend(c, network.WithShards(shardedAggs))
	if err != nil {
		b.Fatal(err)
	}
	benchRunWorkers(b, backend, 2)
}

// BenchmarkEngineClusterSharded100k is the broadcast-wall row: 100,000
// players behind 32 L1 aggregators. At this width the root's verdict
// fan-out is the line the tree either breaks or holds — with the
// AGG_VERDICT relay the root writes 32 frames per batch (one per
// aggregator, encoded once) while the aggregators re-expand them to the
// 100k per-player VERDICT_BATCHes in parallel. A single pinned worker
// owns the whole 100k-node session: the session's goroutine count
// already saturates the host, and pinning keeps allocs/op — the
// CI-gated metric, archived per commit in results/bench/<sha>.json —
// host-independent.
func BenchmarkEngineClusterSharded100k(b *testing.B) {
	const (
		shardedK    = 100_000
		shardedAggs = 32
	)
	c, err := network.NewCluster(network.ClusterConfig{
		K: shardedK, Q: xbSamples,
		Rule:      xbRule(),
		Referee:   core.BitReferee{Rule: core.ThresholdRule{T: 2 * shardedK / 5}},
		Transport: network.NewMemTransport(),
		Timeout:   120 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	backend, err := network.NewBackend(c, network.WithShards(shardedAggs))
	if err != nil {
		b.Fatal(err)
	}
	benchRunWorkers(b, backend, 1)
}

func BenchmarkEngineCONGEST(b *testing.B) {
	graph, err := congest.Complete(xbPlayers)
	if err != nil {
		b.Fatal(err)
	}
	tester, err := congest.NewTester(congest.TesterConfig{
		Graph: graph, Root: 0, Q: xbSamples, Rule: xbRule(), T: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	backend, err := congest.NewBackend(tester)
	if err != nil {
		b.Fatal(err)
	}
	benchRun(b, backend)
}
