package engine_test

// Cross-backend determinism at r > 1: the engine's seed contract is not
// a single-bit artifact. An r-bit message derived from (seed, trial,
// player) must be the same uint64 whether it rides an in-process slate,
// a VOTE/VOTE_BATCH_R frame, or a CONGEST convergecast — and the
// verdict sequence must survive every batch/window shape the cluster
// backend offers. These tests sweep r over {1, 2, 4, 8} with both a
// twitchy private-coin rule and the Theorem 6.4 quantized collision
// rule, demanding bit-identical verdicts everywhere.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"github.com/distributed-uniformity/dut/internal/congest"
	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/engine"
	"github.com/distributed-uniformity/dut/internal/network"
)

// rbitWidths are the message widths every r-bit determinism test sweeps.
var rbitWidths = []int{1, 2, 4, 8}

// rbitTestRule is the r-bit analogue of xbRule: it folds the samples,
// the shared seed and a private coin into an r-bit value, so any
// divergence in any stream — or any dropped or permuted message bit in
// transit — moves the referee's sum and flips verdicts.
type rbitTestRule struct {
	bits int
}

func (r rbitTestRule) Message(player int, samples []int, shared uint64, private *rand.Rand) (core.Message, error) {
	h := shared ^ uint64(player)*0x9e3779b97f4a7c15
	for _, s := range samples {
		h = h*1099511628211 + uint64(s)
	}
	h ^= private.Uint64()
	return core.Message(h & (1<<r.bits - 1)), nil
}

func (r rbitTestRule) Bits() int { return r.bits }

// rbitT centers the rejection threshold on the expected sum of k
// uniform r-bit values, so verdicts flip trial to trial instead of
// collapsing to a constant sequence.
func rbitT(r int) int {
	t := xbPlayers * ((1 << r) - 1) / 2
	if t < 1 {
		t = 1
	}
	return t
}

// rbitVerdicts runs xbTrials through a backend with the shared seed and
// an explicit batch/window shape (0,0 keeps the one-trial-per-round
// path).
func rbitVerdicts(t *testing.T, b engine.Backend, batch, window int) []bool {
	t.Helper()
	results, err := engine.Run(context.Background(), b, xbSource(t), xbTrials,
		engine.Options{Seed: xbSeed, Workers: xbWorkers, Batch: batch, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := make([]bool, len(results))
	for i, r := range results {
		verdicts[i] = r.Verdict
	}
	return verdicts
}

func rbitSMPVerdicts(t *testing.T, rule core.LocalRule, referee core.Referee) []bool {
	t.Helper()
	p, err := core.NewSMP(xbPlayers, xbSamples, rule, referee)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.BackendFor(p)
	if err != nil {
		t.Fatal(err)
	}
	return rbitVerdicts(t, b, 0, 0)
}

func rbitClusterBackend(t *testing.T, rule core.LocalRule, referee core.Referee) engine.Backend {
	t.Helper()
	c, err := network.NewCluster(network.ClusterConfig{
		K: xbPlayers, Q: xbSamples,
		Rule:      rule,
		Referee:   referee,
		Transport: network.NewMemTransport(),
		Timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := network.NewBackend(c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// rbitCongestVerdicts runs the same protocol on a CONGEST graph in sum
// mode: each node's convergecast score is its raw r-bit message value
// and the root rejects iff the total reaches T — the graph twin of
// core.SumThresholdReferee. Sum is set explicitly because at r = 1 the
// classic mode would count rejection indicators (opposite polarity).
func rbitCongestVerdicts(t *testing.T, build func(int) (*congest.Graph, error), rule core.LocalRule, threshold int) []bool {
	t.Helper()
	graph, err := build(xbPlayers)
	if err != nil {
		t.Fatal(err)
	}
	tester, err := congest.NewTester(congest.TesterConfig{
		Graph: graph, Root: 0, Q: xbSamples, Rule: rule, T: threshold, Sum: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := congest.NewBackend(tester)
	if err != nil {
		t.Fatal(err)
	}
	return rbitVerdicts(t, b, 0, 0)
}

func TestRBitBackendsAgree(t *testing.T) {
	graphs := []struct {
		name  string
		build func(int) (*congest.Graph, error)
	}{
		{"complete", congest.Complete},
		{"path", congest.Path},
		{"star", congest.Star},
	}
	for _, r := range rbitWidths {
		t.Run(fmt.Sprintf("r=%d", r), func(t *testing.T) {
			t.Parallel()
			rule := rbitTestRule{bits: r}
			referee := core.SumThresholdReferee{Bits: r, T: rbitT(r)}
			want := rbitSMPVerdicts(t, rule, referee)
			got := rbitVerdicts(t, rbitClusterBackend(t, rule, referee), 0, 0)
			assertSameVerdicts(t, "cluster", want, got)
			for _, g := range graphs {
				assertSameVerdicts(t, "congest/"+g.name, want,
					rbitCongestVerdicts(t, g.build, rule, rbitT(r)))
			}
		})
	}
}

func TestRBitClusterBatchShapesAgree(t *testing.T) {
	// Batch and window reshape the wire traffic (classic VOTE_BATCH at
	// r = 1, VOTE_BATCH_R planes above), never the verdicts. Shapes
	// cover a degenerate one-trial batch, uneven chunking of the 12
	// trials, the default window, and a batch larger than the whole run.
	shapes := []struct{ batch, window int }{
		{1, 1}, {3, 2}, {5, 0}, {64, 3},
	}
	for _, r := range rbitWidths {
		t.Run(fmt.Sprintf("r=%d", r), func(t *testing.T) {
			t.Parallel()
			rule := rbitTestRule{bits: r}
			referee := core.SumThresholdReferee{Bits: r, T: rbitT(r)}
			want := rbitSMPVerdicts(t, rule, referee)
			for _, s := range shapes {
				got := rbitVerdicts(t, rbitClusterBackend(t, rule, referee), s.batch, s.window)
				assertSameVerdicts(t, fmt.Sprintf("batch=%d/window=%d", s.batch, s.window), want, got)
			}
		})
	}
}

func TestRBitQuantizedTesterAgreesEverywhere(t *testing.T) {
	// The Theorem 6.4 rule is the production user of the r-bit path:
	// deterministic given the shared samples, so every backend must
	// reproduce the exact saturated collision counts.
	threshold := core.QuantizedSumThreshold(xbDomain, xbPlayers, xbSamples)
	for _, r := range rbitWidths {
		t.Run(fmt.Sprintf("r=%d", r), func(t *testing.T) {
			t.Parallel()
			rule, err := core.NewQuantizedCollisionRule(xbDomain, xbSamples, r)
			if err != nil {
				t.Fatal(err)
			}
			referee := core.SumThresholdReferee{Bits: r, T: threshold}
			want := rbitSMPVerdicts(t, rule, referee)
			got := rbitVerdicts(t, rbitClusterBackend(t, rule, referee), 4, 2)
			assertSameVerdicts(t, "cluster-batched", want, got)
			assertSameVerdicts(t, "congest", want,
				rbitCongestVerdicts(t, congest.Complete, rule, threshold))
		})
	}
}
