// Package engine is the unified execution engine behind every way this
// repository runs the paper's referee-model protocol: the in-process SMP
// simulator, the networked cluster (memory or TCP transport), and the
// CONGEST-over-graph deployment. The paper's results (Theorems 1.1-1.4,
// 6.4) are statements about one protocol executed under different rules
// and budgets; the engine makes the code match that framing by putting a
// single trial driver behind every backend.
//
// # The Backend interface
//
// A Backend executes one protocol round:
//
//	RunRound(ctx, RoundSpec) (RoundResult, error)
//
// RoundSpec names the trial index, the engine's base seed and the sampler
// for the unknown distribution; RoundResult is the uniform per-round
// accounting (verdict, votes, stragglers, retries, samples drawn, wall
// time, and — for message-passing backends — message and communication
// round counts). It is a superset of the networked cluster's RoundStats,
// so in-process runs get the same accounting a deployment has.
//
// Adapters live next to the types they wrap, keeping this package a leaf:
//
//   - core.BackendFor adapts any core.Protocol; *core.SMP gets the
//     deterministic per-player treatment below.
//   - network.NewBackend adapts a *network.Cluster (one networked round
//     with fresh connections per trial).
//   - congest.NewBackend adapts a *congest.Tester (one synchronous-round
//     graph simulation per trial).
//
// # RNG stream derivation
//
// Reproducibility across backends and worker counts comes from deriving
// every generator from (seed, trial, player) and nothing else:
//
//	shared  = SharedSeed(seed, trial)       // the round's public coin
//	private = NodeRNG(shared, player)       // player's sampling + coins
//	source  = TrialRNG(seed, trial)         // per-trial Source randomness
//
// SharedSeed and NodeRNG are splitmix64-mixed PCG streams. A player's
// private stream is a function of the round's public coin and its own id,
// so a networked node can rebuild it from the ROUND frame alone — no
// extra wire state — and an SMP round, a cluster round and a CONGEST
// round with the same rule, player count and sample budget produce
// bit-identical votes and verdicts. The contract holds for any message
// width the rule declares (LocalRule.Bits), not just single-bit votes:
// an r-bit message is the same uint64 on every backend, whether it
// rides a VOTE frame, the VOTE_BATCH_R planes, or a CONGEST
// convergecast. The driver assigns whole trials to workers, so verdict
// sequences are also independent of Options.Workers.
//
// # The trial driver
//
// Run executes trials over a worker pool with context cancellation and
// early abort on the first error; Estimate adds Wilson-interval success
// estimation; Separates gives the 2/3-vs-1/3 verdict using the interval
// bounds (three-valued: separated, not separated, or inconclusive when
// the intervals straddle the target); Amplify majority-votes an odd
// number of rounds. The Engine type bundles a Backend with Options for
// the facade (dut.NewEngine).
//
// # Deprecation path
//
// The pre-engine entry points survive as thin wrappers and keep their
// seed-test semantics: core.EstimateAcceptance, core.Separates and
// core.Amplify delegate here via core.BackendFor, and
// network.Cluster.RunMany/RunManyStats drive their multi-round session
// through this driver with a single worker. New code should construct a
// Backend and call the engine (or dut.NewEngine) directly.
package engine
