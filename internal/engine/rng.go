package engine

import "math/rand/v2"

// splitmix64 is the finalizer of the SplitMix64 generator (Steele, Lea,
// Flood 2014): a bijective avalanche mix used to derive independent
// PCG streams from structured (seed, trial, player) coordinates.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SharedSeed derives the public-coin seed of one trial from the engine's
// base seed. Every player of the trial observes this value (it rides in
// the networked ROUND frame), and all per-player streams derive from it.
func SharedSeed(seed uint64, trial int) uint64 {
	return splitmix64(seed ^ splitmix64(uint64(trial)))
}

// nodeSeeds is the PCG seed pair of a player's private stream for a round
// with the given public-coin seed; NodeRNG and ReusableRNG.SeedNode share
// it so the reseeding path reproduces the allocating one bit for bit.
func nodeSeeds(shared uint64, player int) (uint64, uint64) {
	a := splitmix64(shared ^ (uint64(player)+1)*0x9e3779b97f4a7c15)
	b := splitmix64(a ^ 0xd6e8feb86659fd93)
	return a, b
}

// trialSeeds is the PCG seed pair of the per-trial stream; TrialRNG and
// ReusableRNG.SeedTrial share it.
func trialSeeds(seed uint64, trial int) (uint64, uint64) {
	s := SharedSeed(seed, trial)
	a := splitmix64(s ^ 0xa0761d6478bd642f)
	b := splitmix64(a ^ 0xe7037ed1a0b428db)
	return a, b
}

// farSeedSalt decorrelates the far-side estimate stream from the null
// side; the value matches the pre-engine core.Separates derivation, so
// existing recorded results replay unchanged.
const farSeedSalt = 0x517cc1b727220a95

// FarSeed derives the base seed of a far-source estimate from the null
// side's base seed, keeping both sides of a Separates run on disjoint
// stream families. This is the only sanctioned seed-vs-seed derivation
// outside the splitmix64 helpers above.
func FarSeed(seed uint64) uint64 {
	return seed ^ farSeedSalt
}

// NodeRNG derives a player's private generator for a round with the given
// public-coin seed. The stream is a pure function of (shared, player), so
// an in-process simulator and a remote node reconstruct identical streams
// from the round seed alone. The player draws its samples and any private
// coins from this generator, in that order.
func NodeRNG(shared uint64, player int) *rand.Rand {
	a, b := nodeSeeds(shared, player)
	return rand.New(rand.NewPCG(a, b))
}

// PlayerRNG is the composed derivation NodeRNG(SharedSeed(seed, trial),
// player): the canonical per-(seed, trial, player) stream of the engine.
func PlayerRNG(seed uint64, trial, player int) *rand.Rand {
	return NodeRNG(SharedSeed(seed, trial), player)
}

// TrialRNG derives the per-trial generator handed to a Source, used for
// randomness above the protocol (e.g. drawing a fresh perturbed
// distribution for the averaged adversary). Its lane is disjoint from
// every player stream of the same trial.
func TrialRNG(seed uint64, trial int) *rand.Rand {
	a, b := trialSeeds(seed, trial)
	return rand.New(rand.NewPCG(a, b))
}

// ReusableRNG is an allocation-free stand-in for NodeRNG/TrialRNG on hot
// paths: one PCG and one rand.Rand are allocated at construction and
// reseeded in place per (trial) or per (round, player). Each Seed* call
// returns the same *rand.Rand positioned at the start of exactly the
// stream the allocating derivation would produce, so batch paths that
// reuse one ReusableRNG stay bit-identical to per-call NodeRNG/TrialRNG
// users. Not safe for concurrent use; give each worker its own.
type ReusableRNG struct {
	pcg  *rand.PCG
	rand *rand.Rand
}

// NewReusableRNG allocates the generator pair once.
func NewReusableRNG() *ReusableRNG {
	pcg := rand.NewPCG(0, 0)
	return &ReusableRNG{pcg: pcg, rand: rand.New(pcg)}
}

// SeedNode repositions the generator at the start of NodeRNG(shared,
// player)'s stream and returns it.
func (r *ReusableRNG) SeedNode(shared uint64, player int) *rand.Rand {
	r.pcg.Seed(nodeSeeds(shared, player))
	return r.rand
}

// SeedTrial repositions the generator at the start of TrialRNG(seed,
// trial)'s stream and returns it.
func (r *ReusableRNG) SeedTrial(seed uint64, trial int) *rand.Rand {
	r.pcg.Seed(trialSeeds(seed, trial))
	return r.rand
}
