package engine_test

// Allocation guards for the batched sampling pipeline: the SMP hot path
// must stay within the budget BENCH_engine.json records (the ISSUE-3
// acceptance bar is <= 5 allocs per trial, down from 15), and the
// scratch round itself must be allocation-free in steady state. The
// assertions are skipped under the race detector, whose instrumentation
// allocates on its own account.

import (
	"context"
	"testing"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// maxSMPTrialAllocs is the acceptance bar for the full driver path:
// per-trial allocations of engine.Run over the SMP scratch backend.
const maxSMPTrialAllocs = 5.0

func smpAllocBackend(t *testing.T) engine.Backend {
	t.Helper()
	p, err := core.NewSMP(xbPlayers, xbSamples, xbRule(), core.BitReferee{Rule: core.ThresholdRule{T: 2}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.BackendFor(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEngineSMPTrialAllocs measures the amortized per-trial allocation
// count of the whole driver (worker pool, source, scratch round) and
// holds it to the acceptance bar.
func TestEngineSMPTrialAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	b := smpAllocBackend(t)
	u := xbSource(t)
	const trials = 2000
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := engine.Run(context.Background(), b, u, trials,
			engine.Options{Seed: xbSeed, Workers: 1}); err != nil {
			t.Fatal(err)
		}
	})
	perTrial := allocs / trials
	t.Logf("engine.Run over SMP: %.3f allocs/trial (%.0f total for %d trials)", perTrial, allocs, trials)
	if perTrial > maxSMPTrialAllocs {
		t.Fatalf("SMP hot path allocates %.3f per trial, budget %.0f", perTrial, maxSMPTrialAllocs)
	}
}

// TestSMPScratchRoundAllocs holds the steady-state scratch round itself
// to zero allocations: buffers, votes and generators all come from the
// per-worker scratch.
func TestSMPScratchRoundAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	sb, ok := smpAllocBackend(t).(engine.ScratchBackend)
	if !ok {
		t.Fatal("SMP backend does not implement engine.ScratchBackend")
	}
	src := xbSource(t)
	sampler, err := src(0, engine.TrialRNG(xbSeed, 0))
	if err != nil {
		t.Fatal(err)
	}
	scratch := sb.NewScratch()
	ctx := context.Background()
	trial := 0
	allocs := testing.AllocsPerRun(200, func() {
		spec := engine.RoundSpec{Trial: trial, Seed: xbSeed, Sampler: sampler}
		trial++
		if _, err := sb.RunRoundScratch(ctx, spec, scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("scratch round allocates %.2f per round, want 0", allocs)
	}
}
