package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/distributed-uniformity/dut/internal/dist"
)

// fakeBackend decides each round from the canonical player streams, so
// its verdicts are a pure function of (seed, trial) and any scheduling
// nondeterminism in the driver would show up as verdict flips.
type fakeBackend struct {
	players  int
	failAt   int // trial index that errors; -1 disables
	ran      atomic.Int64
	maxConc  atomic.Int64
	curConc  atomic.Int64
	limit    int // MaxWorkers when > 0
	mu       sync.Mutex
	sequence []int // order trials were started in
}

func (b *fakeBackend) Players() int { return b.players }

func (b *fakeBackend) MaxWorkers() int { return b.limit }

func (b *fakeBackend) RunRound(ctx context.Context, spec RoundSpec) (RoundResult, error) {
	cur := b.curConc.Add(1)
	defer b.curConc.Add(-1)
	for {
		old := b.maxConc.Load()
		if cur <= old || b.maxConc.CompareAndSwap(old, cur) {
			break
		}
	}
	b.mu.Lock()
	b.sequence = append(b.sequence, spec.Trial)
	b.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return RoundResult{}, err
	}
	if spec.Trial == b.failAt {
		return RoundResult{}, fmt.Errorf("injected failure at trial %d", spec.Trial)
	}
	b.ran.Add(1)
	accept := PlayerRNG(spec.Seed, spec.Trial, 0).Uint64()&1 == 0
	return RoundResult{Verdict: accept, Votes: b.players, Samples: b.players}, nil
}

func uniformSource(t *testing.T, n int) Source {
	t.Helper()
	u, err := dist.Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	src, err := FromDist(u)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func verdictsOf(results []RoundResult) []bool {
	out := make([]bool, len(results))
	for i, r := range results {
		out[i] = r.Verdict
	}
	return out
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	src := uniformSource(t, 8)
	const trials = 64
	var want []bool
	for _, workers := range []int{1, 2, 4, 9} {
		b := &fakeBackend{players: 3, failAt: -1}
		results, err := Run(context.Background(), b, src, trials, Options{Workers: workers, Seed: 7})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := verdictsOf(results)
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: verdict %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunFillsTrialIndices(t *testing.T) {
	b := &fakeBackend{players: 2, failAt: -1}
	results, err := Run(context.Background(), b, uniformSource(t, 4), 10, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Trial != i {
			t.Fatalf("results[%d].Trial = %d", i, r.Trial)
		}
	}
}

func TestRunAbortsOnFirstError(t *testing.T) {
	const trials = 2000
	b := &fakeBackend{players: 2, failAt: 3}
	_, err := Run(context.Background(), b, uniformSource(t, 4), trials, Options{Workers: 4, Seed: 1})
	if err == nil {
		t.Fatal("expected an error")
	}
	if want := "injected failure at trial 3"; !errorContains(err, want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
	// The abort must actually skip work: with trial 3 failing almost
	// immediately, nowhere near all trials may run.
	if ran := b.ran.Load(); ran >= trials-4 {
		t.Fatalf("%d of %d trials ran despite the abort", ran, trials)
	}
}

func TestRunReportsLowestIndexedError(t *testing.T) {
	// Every trial fails; the reported error must be a genuine source
	// failure, not a cancellation casualty of a later trial.
	failing := func(int, *rand.Rand) (dist.Sampler, error) { return nil, errors.New("boom") }
	_, err := Run(context.Background(), &fakeBackend{players: 1, failAt: -1}, failing, 50, Options{Workers: 8})
	if err == nil {
		t.Fatal("expected an error")
	}
	if want := "source"; !errorContains(err, want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation masked the root cause: %v", err)
	}
}

func TestRunRespectsWorkerLimiter(t *testing.T) {
	b := &fakeBackend{players: 1, failAt: -1, limit: 1}
	results, err := Run(context.Background(), b, uniformSource(t, 4), 20, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.maxConc.Load(); got != 1 {
		t.Fatalf("observed concurrency %d with MaxWorkers()=1", got)
	}
	// A single worker consumes the jobs channel in feed order.
	for i, trial := range b.sequence {
		if trial != i {
			t.Fatalf("serialized run started trial %d at position %d", trial, i)
		}
	}
	if len(results) != 20 {
		t.Fatalf("got %d results", len(results))
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, &fakeBackend{players: 1, failAt: -1}, uniformSource(t, 4), 5, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunValidation(t *testing.T) {
	src := uniformSource(t, 4)
	b := &fakeBackend{players: 1, failAt: -1}
	if _, err := Run(context.Background(), nil, src, 1, Options{}); err == nil {
		t.Error("nil backend accepted")
	}
	if _, err := Run(context.Background(), b, nil, 1, Options{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := Run(context.Background(), b, src, 0, Options{}); err == nil {
		t.Error("zero trials accepted")
	}
	nilSampler := func(int, *rand.Rand) (dist.Sampler, error) { return nil, nil }
	if _, err := Run(context.Background(), b, nilSampler, 1, Options{}); err == nil {
		t.Error("nil sampler from source accepted")
	}
}

func TestEstimateAggregates(t *testing.T) {
	b := &fakeBackend{players: 3, failAt: -1}
	res, err := Estimate(context.Background(), b, uniformSource(t, 4), 40, Options{Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Trials != 40 || len(res.Rounds) != 40 {
		t.Fatalf("trials = %d, rounds = %d", res.Estimate.Trials, len(res.Rounds))
	}
	accepts := 0
	for _, r := range res.Rounds {
		if r.Verdict {
			accepts++
		}
	}
	if res.Totals.Accepts != accepts || res.Estimate.Successes != accepts {
		t.Fatalf("accept accounting: totals %d, estimate %d, recount %d",
			res.Totals.Accepts, res.Estimate.Successes, accepts)
	}
	if res.Totals.Votes != 3*40 || res.Totals.Samples != 3*40 {
		t.Fatalf("totals = %+v", res.Totals)
	}
	if res.Estimate.CI.Low > res.Estimate.P || res.Estimate.CI.High < res.Estimate.P {
		t.Fatalf("interval [%v, %v] excludes the point estimate %v",
			res.Estimate.CI.Low, res.Estimate.CI.High, res.Estimate.P)
	}
}

// acceptBackend accepts or rejects every trial unconditionally.
type acceptBackend struct{ accept bool }

func (b *acceptBackend) Players() int { return 1 }

func (b *acceptBackend) RunRound(_ context.Context, _ RoundSpec) (RoundResult, error) {
	return RoundResult{Verdict: b.accept, Votes: 1}, nil
}

func TestSeparatesOutcomes(t *testing.T) {
	src := uniformSource(t, 4)
	ctx := context.Background()
	const trials = 200

	// A perfect separator: always accept null, always reject far.
	sep, err := Separates(ctx, &acceptBackend{accept: true}, src, src, 2.0/3, trials, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = sep // the backend ignores the source, so both estimates are 1.0
	if sep.Outcome != NotSeparated {
		// accept=1 on both sides: null passes, far fails decisively.
		t.Fatalf("always-accept backend: outcome %v, want NotSeparated", sep.Outcome)
	}
	if sep.Null.Estimate.P != 1 || sep.Far.Estimate.P != 1 {
		t.Fatalf("estimates %v / %v", sep.Null.Estimate.P, sep.Far.Estimate.P)
	}

	if _, err := Separates(ctx, &acceptBackend{accept: true}, src, src, 0, trials, Options{}); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := Separates(ctx, &acceptBackend{accept: true}, src, src, 1, trials, Options{}); err == nil {
		t.Error("target 1 accepted")
	}
}

func TestSeparatesInconclusiveNearTarget(t *testing.T) {
	// With few trials the Wilson interval around even a perfect score
	// still straddles nothing, but a coin-flip backend near the target
	// must come out Inconclusive, not flap between verdicts.
	b := &fakeBackend{players: 1, failAt: -1}
	src := uniformSource(t, 4)
	sep, err := Separates(context.Background(), b, src, src, 0.5, 30, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if sep.Outcome == Separated {
		t.Fatalf("coin-flip backend separated at target 0.5 with 30 trials (null %v, far %v)",
			sep.Null.Estimate.P, sep.Far.Estimate.P)
	}
}

func TestAmplify(t *testing.T) {
	src := uniformSource(t, 4)
	ctx := context.Background()
	accept, rounds, err := Amplify(ctx, &acceptBackend{accept: true}, src, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !accept || len(rounds) != 5 {
		t.Fatalf("accept=%v rounds=%d", accept, len(rounds))
	}
	accept, _, err = Amplify(ctx, &acceptBackend{accept: false}, src, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if accept {
		t.Fatal("always-reject backend amplified to accept")
	}
	if _, _, err := Amplify(ctx, &acceptBackend{accept: true}, src, 4, Options{}); err == nil {
		t.Error("even round count accepted")
	}
	if _, _, err := Amplify(ctx, &acceptBackend{accept: true}, src, 0, Options{}); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{
		Separated:    "separated",
		NotSeparated: "not separated",
		Inconclusive: "inconclusive",
		Outcome(42):  "Outcome(42)",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(o), got, want)
		}
	}
}

func TestEngineHandle(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil backend accepted")
	}
	b := &fakeBackend{players: 2, failAt: -1}
	e, err := New(b, Options{Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.Backend() != b {
		t.Error("Backend() does not round-trip")
	}
	src := uniformSource(t, 4)
	res, err := e.Estimate(context.Background(), src, 16)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Estimate(context.Background(), b, src, 16, Options{Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.P != direct.Estimate.P {
		t.Fatalf("handle estimate %v != direct %v", res.Estimate.P, direct.Estimate.P)
	}
}

func TestRNGStreamsAreDecorrelated(t *testing.T) {
	// Distinct (seed, trial, player) coordinates must give distinct
	// streams; equal coordinates identical ones.
	a := PlayerRNG(1, 2, 3)
	b := PlayerRNG(1, 2, 3)
	for i := 0; i < 8; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal coordinates, different streams")
		}
	}
	seen := map[uint64]string{}
	record := func(name string, v uint64) {
		if prev, dup := seen[v]; dup {
			t.Fatalf("first draw collision between %s and %s", prev, name)
		}
		seen[v] = name
	}
	for trial := 0; trial < 4; trial++ {
		for player := 0; player < 4; player++ {
			record(fmt.Sprintf("player(0,%d,%d)", trial, player), PlayerRNG(0, trial, player).Uint64())
		}
		record(fmt.Sprintf("trial(0,%d)", trial), TrialRNG(0, trial).Uint64())
	}
}

func errorContains(err error, substr string) bool {
	return err != nil && contains(err.Error(), substr)
}

func contains(s, substr string) bool {
	for i := 0; i+len(substr) <= len(s); i++ {
		if s[i:i+len(substr)] == substr {
			return true
		}
	}
	return false
}
