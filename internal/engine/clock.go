package engine

import "time"

// Stopwatch is the single sanctioned wall-clock primitive of the
// deterministic packages. Verdicts must be pure functions of the engine
// seed, but RoundResult.Wall and the benchmark reports still need real
// elapsed time; concentrating every time.Now behind this type keeps the
// dut/nondeterminism analyzer's exemption surface to one file and makes
// any other wall-clock read in internal/... a lint finding.
//
// The zero Stopwatch is not started; use StartStopwatch.
type Stopwatch struct {
	start time.Time
}

// StartStopwatch begins timing now.
func StartStopwatch() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Elapsed returns the wall time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}
