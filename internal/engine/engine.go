package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"
	"sync"
	"time"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// RoundSpec names one trial for a Backend: the trial index, the engine's
// base seed (backends derive the round's public coin via SharedSeed and
// per-player streams via NodeRNG), and the sampler for the unknown
// distribution. Backends whose samplers are fixed at construction time
// (e.g. a running cluster session) may ignore Sampler.
type RoundSpec struct {
	// Trial is the 0-based trial index within the driver run.
	Trial int
	// Seed is the engine's base seed; never the round seed itself.
	Seed uint64
	// Sampler draws from the unknown distribution for this trial.
	Sampler dist.Sampler
}

// RoundResult is the uniform per-round accounting every backend reports —
// a superset of the networked cluster's RoundStats, so in-process and
// CONGEST runs carry the same bookkeeping a deployment has.
type RoundResult struct {
	// Trial is the 0-based trial index (filled by the driver).
	Trial int
	// Verdict is the referee's decision: true means accept.
	Verdict bool
	// Votes is the number of votes that entered the decision.
	Votes int
	// Stragglers is the number of players whose vote never arrived
	// (always 0 for in-process backends).
	Stragglers int
	// Retries is the number of node-side connect retries (networked
	// backends only).
	Retries int
	// Samples is the total number of samples drawn across players.
	Samples int
	// Messages is the number of protocol messages carried (CONGEST
	// edge-messages, or votes for message-counting backends; 0 when the
	// backend does not track it).
	Messages int
	// CommRounds is the number of synchronous communication rounds
	// (CONGEST backends; 0 elsewhere).
	CommRounds int
	// Wall is the wall-clock duration of the round.
	Wall time.Duration
}

// Backend executes protocol rounds. Implementations must take all
// randomness from the RoundSpec-derived streams (SharedSeed / NodeRNG /
// TrialRNG), so that equal seeds give equal verdicts regardless of which
// backend runs the round or how many workers drive it. RunRound must be
// safe for concurrent use unless the backend also implements
// WorkerLimiter.
type Backend interface {
	// RunRound executes one round and reports its accounting.
	RunRound(ctx context.Context, spec RoundSpec) (RoundResult, error)
	// Players returns the protocol's player count k.
	Players() int
}

// WorkerLimiter is an optional Backend interface bounding driver
// concurrency. A backend serialized over shared state (e.g. one open
// multi-round network session) returns 1 and receives trials in order.
type WorkerLimiter interface {
	// MaxWorkers returns the largest worker count the backend tolerates.
	MaxWorkers() int
}

// ScratchBackend is the optional zero-allocation extension of Backend:
// the driver calls NewScratch once per worker and threads the returned
// value through every RunRoundScratch on that worker, so a backend can
// reuse sample buffers, vote slices and reseedable generators across
// trials instead of allocating per round. The scratch value is owned by
// exactly one worker at a time — implementations need no locking inside
// it — and results must be bit-identical to RunRound's for the same
// RoundSpec (the batch path is an optimization, never a semantic fork).
// A scratch that also implements io.Closer is closed when its worker
// retires, so a scratch may hold live resources (the cluster batch
// scratch keeps an open multi-round session).
type ScratchBackend interface {
	Backend
	// NewScratch allocates one worker's reusable round state.
	NewScratch() any
	// RunRoundScratch is RunRound with the worker's scratch.
	RunRoundScratch(ctx context.Context, spec RoundSpec, scratch any) (RoundResult, error)
}

// BatchBackend is the optional multi-trial extension of ScratchBackend,
// engaged when Options.Batch is at least 1: the driver hands each
// worker a contiguous chunk of Batch*Window trials and the backend
// executes them in one call. batch is the wire granularity — pipelined
// backends split specs into ceil(len(specs)/batch) sub-batches and keep
// them concurrently in flight (the window), in-process backends simply
// loop their scratch path. out has len(specs) entries, one per spec in
// order; the driver fills the Trial fields afterwards. The determinism
// contract is unchanged: the verdict for (seed, trial, player) must be
// bit-identical to the unbatched path for any batch size and window.
type BatchBackend interface {
	ScratchBackend
	// RunRoundsScratch executes len(specs) consecutive trials with the
	// worker's scratch, writing one RoundResult per spec into out.
	RunRoundsScratch(ctx context.Context, scratch any, specs []RoundSpec, batch int, out []RoundResult) error
}

// Source yields the sampler for one trial. rng is the trial's TrialRNG
// stream, so sources that draw a fresh distribution per trial (the lower
// bound's averaged adversary) stay deterministic in (seed, trial). The
// rng is only valid for the duration of the call: the driver reseeds one
// per-worker generator between trials, so a Source must not retain it.
type Source func(trial int, rng *rand.Rand) (dist.Sampler, error)

// Fixed returns a Source that serves the same sampler on every trial.
func Fixed(s dist.Sampler) Source {
	return func(int, *rand.Rand) (dist.Sampler, error) { return s, nil }
}

// FromDist builds the default (alias-method) sampler for d once and
// serves it on every trial.
func FromDist(d dist.Dist) (Source, error) {
	s, err := dist.NewAliasSampler(d)
	if err != nil {
		return nil, err
	}
	return Fixed(s), nil
}

// Options configures the trial driver. The zero value requests
// GOMAXPROCS workers, 95% confidence and seed 0.
type Options struct {
	// Workers is the worker pool size; 0 or negative means GOMAXPROCS.
	// Results never depend on it: trials, not ranges, are the unit of
	// scheduling and every trial's randomness derives from (Seed, Trial).
	Workers int
	// Confidence is the Wilson interval level for Estimate; 0 means 0.95.
	Confidence float64
	// Seed is the base seed all per-trial streams derive from.
	Seed uint64
	// Batch is the number of trials carried per batch frame when the
	// backend implements BatchBackend; 0 (or a non-batch backend) keeps
	// the one-trial-per-round path. Batch never changes verdicts — every
	// trial's randomness still derives from (Seed, Trial) alone.
	Batch int
	// Window is the number of batches a pipelined backend keeps in
	// flight per worker (the sliding window); 0 or 1 means no
	// pipelining. Ignored unless Batch engages the batch path.
	Window int
}

// Totals aggregates RoundResult accounting over a run.
type Totals struct {
	// Trials is the number of rounds executed.
	Trials int
	// Accepts is the number of accepting verdicts.
	Accepts int
	// Votes, Stragglers, Retries, Samples and Messages sum the per-round
	// fields of the same names.
	Votes, Stragglers, Retries, Samples, Messages int
	// Wall sums per-round wall time (total backend compute, not elapsed
	// driver time: rounds overlap across workers).
	Wall time.Duration
}

// Result is Estimate's output: the Wilson success estimate plus the
// per-round results and their aggregate accounting.
type Result struct {
	// Estimate is the acceptance-probability estimate.
	Estimate stats.SuccessEstimate
	// Rounds holds one RoundResult per trial, in trial order.
	Rounds []RoundResult
	// Totals aggregates Rounds.
	Totals Totals
}

// SpreadWall distributes one measured elapsed duration over a batch of
// results: every trial gets the even share and the first trial absorbs
// the division remainder, so the batch's summed Wall always equals the
// elapsed time handed in (integer division alone would silently drop up
// to len(out)-1 nanoseconds per batch).
func SpreadWall(out []RoundResult, elapsed time.Duration) {
	if len(out) == 0 {
		return
	}
	share := elapsed / time.Duration(len(out))
	for i := range out {
		out[i].Wall = share
	}
	out[0].Wall = elapsed - share*time.Duration(len(out)-1)
}

// workerErrs is one worker's error slot, padded so neighboring workers'
// slots never share a cache line (the previous shared errs slice made
// every failing or cancelled trial a cross-core invalidation). Each
// worker keeps only its lowest-trial genuine error and lowest-trial
// cancellation casualty, which is all the post-run merge ever reads.
type workerErrs struct {
	genuine      error
	genuineTrial int
	cancel       error
	cancelTrial  int
	_            [80]byte // pad the 48 bytes above to two 64-byte lines
}

// record files err under trial t, classifying cancellation casualties
// apart from genuine failures so the merge can prefer the latter.
func (w *workerErrs) record(t int, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if w.cancel == nil || t < w.cancelTrial {
			w.cancel, w.cancelTrial = err, t
		}
		return
	}
	if w.genuine == nil || t < w.genuineTrial {
		w.genuine, w.genuineTrial = err, t
	}
}

// Run executes the given number of trials against the backend over a
// worker pool and returns one RoundResult per trial, in trial order. The
// first error aborts the run: the shared context is cancelled, queued
// trials are skipped, and the error of the lowest-indexed failing trial
// is returned (cancellation casualties of later trials never mask it).
func Run(ctx context.Context, b Backend, src Source, trials int, opts Options) ([]RoundResult, error) {
	if b == nil {
		return nil, fmt.Errorf("engine: nil backend")
	}
	if src == nil {
		return nil, fmt.Errorf("engine: nil source")
	}
	if trials <= 0 {
		return nil, fmt.Errorf("engine: running %d trials", trials)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sb, hasScratch := b.(ScratchBackend)
	bb, hasBatch := b.(BatchBackend)
	// chunk is the scheduling unit: 1 trial on the classic path, a full
	// window of batches when the backend takes batched rounds.
	chunk := 1
	batch := opts.Batch
	if hasBatch && batch >= 1 {
		window := opts.Window
		if window < 1 {
			window = 1
		}
		chunk = batch * window
	} else {
		batch = 0
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if nChunks := (trials + chunk - 1) / chunk; workers > nChunks {
		workers = nChunks
	}
	if lim, ok := b.(WorkerLimiter); ok {
		if m := lim.MaxWorkers(); m >= 1 && workers > m {
			workers = m
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]RoundResult, trials)
	errs := make([]workerErrs, workers)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(werr *workerErrs) {
			defer wg.Done()
			// Per-worker trial state, allocated once and recycled across
			// trials: the source's generator (reseeded per trial) and the
			// backend's scratch (sample buffers, vote slices, node RNGs).
			trialRNG := NewReusableRNG()
			var scratch any
			if hasScratch {
				scratch = sb.NewScratch()
				defer closeScratch(scratch)
			}
			specs := make([]RoundSpec, 0, chunk)
			for start := range jobs {
				end := start + chunk
				if end > trials {
					end = trials
				}
				if err := runCtx.Err(); err != nil {
					werr.record(start, err)
					continue
				}
				// Build the chunk's specs with the exact per-trial source
				// derivation of the classic path, so batching can never
				// change which sampler a trial sees.
				specs = specs[:0]
				bad := false
				for t := start; t < end; t++ {
					sampler, err := src(t, trialRNG.SeedTrial(opts.Seed, t))
					if err != nil {
						werr.record(t, fmt.Errorf("engine: trial %d source: %w", t, err))
						cancel()
						bad = true
						break
					}
					if sampler == nil {
						werr.record(t, fmt.Errorf("engine: trial %d source returned a nil sampler", t))
						cancel()
						bad = true
						break
					}
					specs = append(specs, RoundSpec{Trial: t, Seed: opts.Seed, Sampler: sampler})
				}
				if bad {
					continue
				}
				var err error
				if batch >= 1 {
					err = bb.RunRoundsScratch(runCtx, scratch, specs, batch, results[start:end])
					if err != nil {
						err = fmt.Errorf("engine: trials %d..%d: %w", start, end-1, err)
					}
				} else {
					var res RoundResult
					if hasScratch {
						res, err = sb.RunRoundScratch(runCtx, specs[0], scratch)
					} else {
						res, err = b.RunRound(runCtx, specs[0])
					}
					if err != nil {
						err = fmt.Errorf("engine: trial %d: %w", start, err)
					} else {
						results[start] = res
					}
				}
				if err != nil {
					werr.record(start, err)
					cancel()
					continue
				}
				for t := start; t < end; t++ {
					results[t].Trial = t
				}
			}
		}(&errs[w])
	}
feed:
	for start := 0; start < trials; start += chunk {
		select {
		case jobs <- start:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	// Surface the lowest-indexed genuine failure; trials that merely died
	// of the abort's cancellation are symptoms, not causes.
	var genuine, cancelled error
	genuineTrial, cancelTrial := 0, 0
	for i := range errs {
		w := &errs[i]
		if w.genuine != nil && (genuine == nil || w.genuineTrial < genuineTrial) {
			genuine, genuineTrial = w.genuine, w.genuineTrial
		}
		if w.cancel != nil && (cancelled == nil || w.cancelTrial < cancelTrial) {
			cancelled, cancelTrial = w.cancel, w.cancelTrial
		}
	}
	if genuine != nil {
		return nil, genuine
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cancelled != nil {
		return nil, cancelled
	}
	return results, nil
}

// closeScratch releases a worker's scratch when it holds live resources
// (io.Closer — e.g. the cluster batch scratch's open session). Teardown
// runs after every result of the worker has been validated, so a close
// failure is not a round failure and is dropped.
func closeScratch(scratch any) {
	if c, ok := scratch.(io.Closer); ok {
		_ = c.Close()
	}
}

// Estimate measures Pr[backend accepts] over the source by Monte Carlo
// with a Wilson confidence interval, returning the per-round accounting
// alongside.
func Estimate(ctx context.Context, b Backend, src Source, trials int, opts Options) (Result, error) {
	rounds, err := Run(ctx, b, src, trials, opts)
	if err != nil {
		return Result{}, err
	}
	confidence := opts.Confidence
	if confidence == 0 {
		confidence = 0.95
	}
	var totals Totals
	for _, r := range rounds {
		totals.Trials++
		if r.Verdict {
			totals.Accepts++
		}
		totals.Votes += r.Votes
		totals.Stragglers += r.Stragglers
		totals.Retries += r.Retries
		totals.Samples += r.Samples
		totals.Messages += r.Messages
		totals.Wall += r.Wall
	}
	ci, err := stats.WilsonInterval(totals.Accepts, trials, confidence)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Estimate: stats.SuccessEstimate{
			Successes: totals.Accepts,
			Trials:    trials,
			P:         float64(totals.Accepts) / float64(trials),
			CI:        ci,
		},
		Rounds: rounds,
		Totals: totals,
	}, nil
}

// Outcome is the three-valued verdict of Separates.
type Outcome int

// The three outcomes: the interval evidence confirms the separation,
// refutes it, or straddles the target so the trial budget cannot tell.
const (
	// Inconclusive: at least one Wilson interval straddles the target.
	Inconclusive Outcome = iota
	// Separated: both guarantees hold at the interval bounds.
	Separated
	// NotSeparated: at least one guarantee fails at the interval bounds.
	NotSeparated
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Separated:
		return "separated"
	case NotSeparated:
		return "not separated"
	case Inconclusive:
		return "inconclusive"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Separation is Separates's report: the outcome plus both estimates.
type Separation struct {
	// Outcome is the three-valued decision.
	Outcome Outcome
	// Null is the acceptance estimate under the null source.
	Null Result
	// Far is the acceptance estimate under the far source.
	Far Result
}

// Separates checks the paper's two-sided guarantee — accept null and
// reject far, each with probability at least target — using the Wilson
// interval bounds rather than the raw point estimates: Separated needs
// the null interval's lower bound and the far rejection's lower bound to
// clear the target, NotSeparated needs an upper bound to miss it, and
// anything in between is Inconclusive instead of flapping with the seed.
func Separates(ctx context.Context, b Backend, null, far Source, target float64, trials int, opts Options) (Separation, error) {
	if target <= 0 || target >= 1 {
		return Separation{}, fmt.Errorf("engine: separation target %v outside (0,1)", target)
	}
	en, err := Estimate(ctx, b, null, trials, opts)
	if err != nil {
		return Separation{}, err
	}
	farOpts := opts
	farOpts.Seed = FarSeed(opts.Seed)
	ef, err := Estimate(ctx, b, far, trials, farOpts)
	if err != nil {
		return Separation{}, err
	}
	sep := Separation{Null: en, Far: ef}
	acceptLow, acceptHigh := en.Estimate.CI.Low, en.Estimate.CI.High
	rejectLow, rejectHigh := 1-ef.Estimate.CI.High, 1-ef.Estimate.CI.Low
	switch {
	case acceptLow >= target && rejectLow >= target:
		sep.Outcome = Separated
	case acceptHigh < target || rejectHigh < target:
		sep.Outcome = NotSeparated
	default:
		sep.Outcome = Inconclusive
	}
	return sep, nil
}

// Amplify runs an odd number of rounds and returns the majority verdict
// with the per-round results — the driver-side counterpart of
// core.Amplify's protocol-side majority vote.
func Amplify(ctx context.Context, b Backend, src Source, rounds int, opts Options) (bool, []RoundResult, error) {
	if rounds < 1 || rounds%2 == 0 {
		return false, nil, fmt.Errorf("engine: amplification needs an odd positive round count, got %d", rounds)
	}
	results, err := Run(ctx, b, src, rounds, opts)
	if err != nil {
		return false, nil, err
	}
	accepts := 0
	for _, r := range results {
		if r.Verdict {
			accepts++
		}
	}
	return 2*accepts > rounds, results, nil
}

// Engine bundles a Backend with Options — the facade's handle
// (dut.NewEngine) for running estimates, separations and amplified
// sessions over one deployment.
type Engine struct {
	backend Backend
	opts    Options
}

// New builds an Engine over the backend.
func New(b Backend, opts Options) (*Engine, error) {
	if b == nil {
		return nil, fmt.Errorf("engine: nil backend")
	}
	return &Engine{backend: b, opts: opts}, nil
}

// Backend returns the engine's backend.
func (e *Engine) Backend() Backend { return e.backend }

// Run executes trials; see the package-level Run.
func (e *Engine) Run(ctx context.Context, src Source, trials int) ([]RoundResult, error) {
	return Run(ctx, e.backend, src, trials, e.opts)
}

// Estimate measures the acceptance probability; see the package-level
// Estimate.
func (e *Engine) Estimate(ctx context.Context, src Source, trials int) (Result, error) {
	return Estimate(ctx, e.backend, src, trials, e.opts)
}

// Separates checks the two-sided guarantee; see the package-level
// Separates.
func (e *Engine) Separates(ctx context.Context, null, far Source, target float64, trials int) (Separation, error) {
	return Separates(ctx, e.backend, null, far, target, trials, e.opts)
}

// Amplify majority-votes an odd number of rounds; see the package-level
// Amplify.
func (e *Engine) Amplify(ctx context.Context, src Source, rounds int) (bool, []RoundResult, error) {
	return Amplify(ctx, e.backend, src, rounds, e.opts)
}
