package engine_test

// Cross-topology determinism: the sharded referee tree is a wire-level
// optimization, never a semantic one. For the same engine seed, the
// cluster backend must produce bit-identical verdicts whether the
// players dial the root directly (flat star) or dial L1 aggregators
// that reduce their shard's votes (tree). This is the engine-facing
// twin of the matrix in internal/network: it runs through the public
// backend API exactly as an experiment would.

import (
	"fmt"
	"testing"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/network"
)

const xtopPlayers = 12

func xtopCluster(t *testing.T, rule core.LocalRule, referee core.Referee) *network.Cluster {
	t.Helper()
	c, err := network.NewCluster(network.ClusterConfig{
		K: xtopPlayers, Q: xbSamples,
		Rule:      rule,
		Referee:   referee,
		Transport: network.NewMemTransport(),
		Timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func xtopVerdicts(t *testing.T, c *network.Cluster, batch, window int, opts ...network.BackendOption) []bool {
	t.Helper()
	b, err := network.NewBackend(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rbitVerdicts(t, b, batch, window)
}

func TestCrossTopologyBackendsAgree(t *testing.T) {
	for _, r := range rbitWidths {
		t.Run(fmt.Sprintf("r=%d", r), func(t *testing.T) {
			t.Parallel()
			rule := rbitTestRule{bits: r}
			// Center the threshold on the expected sum of 12 uniform
			// r-bit values so verdicts flip trial to trial.
			referee := core.SumThresholdReferee{Bits: r, T: xtopPlayers * ((1 << r) - 1) / 2}
			c := xtopCluster(t, rule, referee)
			want := xtopVerdicts(t, c, 0, 0)
			for _, s := range []int{2, 3, 6} {
				got := xtopVerdicts(t, c, 4, 2, network.WithShards(s))
				assertSameVerdicts(t, fmt.Sprintf("shards=%d", s), want, got)
			}
		})
	}
}

func TestCrossTopologyQuantizedRuleAgrees(t *testing.T) {
	// The Theorem 6.4 quantized collision rule on the tree: the
	// production r-bit path must survive aggregation too.
	threshold := core.QuantizedSumThreshold(xbDomain, xtopPlayers, xbSamples)
	rule, err := core.NewQuantizedCollisionRule(xbDomain, xbSamples, 3)
	if err != nil {
		t.Fatal(err)
	}
	referee := core.SumThresholdReferee{Bits: 3, T: threshold}
	c := xtopCluster(t, rule, referee)
	want := xtopVerdicts(t, c, 0, 0)
	assertSameVerdicts(t, "sharded", want, xtopVerdicts(t, c, 3, 2, network.WithShards(4)))
	assertSameVerdicts(t, "sharded-shuffled", want,
		xtopVerdicts(t, c, 3, 2, network.WithShards(4), network.WithShardSeed(0xfeed)))
}
