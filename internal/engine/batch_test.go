package engine_test

// Batch determinism: Options.Batch/Window change only how trials are
// scheduled and carried on the wire, never what any trial computes. For
// every backend and every batch/window combination — including batch
// sizes that leave partial final batches and windows larger than the
// trial count — the verdict sequence must be bit-identical to the
// unbatched run with the same seed.

import (
	"context"
	"testing"
	"time"

	"github.com/distributed-uniformity/dut/internal/congest"
	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/engine"
	"github.com/distributed-uniformity/dut/internal/network"
)

var batchGrid = []struct {
	batch, window int
}{
	{1, 1}, {1, 4}, {7, 1}, {7, 4}, {256, 1}, {256, 4},
}

func runBatchVerdicts(t *testing.T, b engine.Backend, batch, window int) []bool {
	t.Helper()
	results, err := engine.Run(context.Background(), b, xbSource(t), xbTrials,
		engine.Options{Seed: xbSeed, Workers: xbWorkers, Batch: batch, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := make([]bool, len(results))
	for i, r := range results {
		verdicts[i] = r.Verdict
	}
	return verdicts
}

func batchCluster(t *testing.T, referee core.Referee, minVotes int) engine.Backend {
	t.Helper()
	c, err := network.NewCluster(network.ClusterConfig{
		K: xbPlayers, Q: xbSamples,
		Rule:      xbRule(),
		Referee:   referee,
		Transport: network.NewMemTransport(),
		Timeout:   10 * time.Second,
		MinVotes:  minVotes,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := network.NewBackend(c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestClusterBatchMatchesUnbatched(t *testing.T) {
	rules := []struct {
		name string
		rule core.DecisionRule
	}{
		{"AND", core.ANDRule{}},
		{"Majority", core.MajorityRule{}},
	}
	for _, tc := range rules {
		referee := core.BitReferee{Rule: tc.rule}
		want := clusterVerdicts(t, referee, 0, core.AbsenteeDefault)
		for _, g := range batchGrid {
			g := g
			t.Run(tc.name, func(t *testing.T) {
				t.Parallel()
				got := runBatchVerdicts(t, batchCluster(t, referee, 0), g.batch, g.window)
				assertSameVerdicts(t, tc.name, want, got)
			})
		}
	}
}

func TestClusterBatchOpaqueRefereeMatchesUnbatched(t *testing.T) {
	// A FuncRule has no threshold shape, forcing the referee's per-trial
	// fallback evaluation; its batched verdicts must still match the
	// unbatched run of the same referee.
	referee := core.BitReferee{Rule: core.FuncRule{
		Label: "inverted-majority",
		F: func(bits []bool) bool {
			return core.CountRejections(bits) >= (len(bits)+1)/2
		},
	}}
	want := clusterVerdicts(t, referee, 0, core.AbsenteeDefault)
	for _, g := range batchGrid {
		g := g
		t.Run("grid", func(t *testing.T) {
			t.Parallel()
			got := runBatchVerdicts(t, batchCluster(t, referee, 0), g.batch, g.window)
			assertSameVerdicts(t, "opaque", want, got)
		})
	}
}

func TestQuorumClusterBatchMatchesUnbatched(t *testing.T) {
	// Quorum mode without faults still receives all k votes, so the
	// batched pipeline must reproduce the strict verdicts bit for bit.
	referee := core.BitReferee{Rule: core.ThresholdRule{T: 2}}
	want := smpVerdicts(t, referee)
	for _, g := range batchGrid {
		g := g
		t.Run("grid", func(t *testing.T) {
			t.Parallel()
			got := runBatchVerdicts(t, batchCluster(t, referee, xbPlayers-1), g.batch, g.window)
			assertSameVerdicts(t, "quorum", want, got)
		})
	}
}

func TestSMPBatchMatchesUnbatched(t *testing.T) {
	referee := core.BitReferee{Rule: core.MajorityRule{}}
	want := smpVerdicts(t, referee)
	for _, g := range batchGrid {
		g := g
		t.Run("grid", func(t *testing.T) {
			t.Parallel()
			p, err := core.NewSMP(xbPlayers, xbSamples, xbRule(), referee)
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.BackendFor(p)
			if err != nil {
				t.Fatal(err)
			}
			assertSameVerdicts(t, "smp", want, runBatchVerdicts(t, b, g.batch, g.window))
		})
	}
}

func TestCONGESTBatchMatchesUnbatched(t *testing.T) {
	const threshold = 2
	referee := core.BitReferee{Rule: core.ThresholdRule{T: threshold}}
	want := smpVerdicts(t, referee)
	for _, g := range batchGrid {
		g := g
		t.Run("grid", func(t *testing.T) {
			t.Parallel()
			graph, err := congest.Complete(xbPlayers)
			if err != nil {
				t.Fatal(err)
			}
			tester, err := congest.NewTester(congest.TesterConfig{
				Graph: graph, Root: 0, Q: xbSamples, Rule: xbRule(), T: threshold,
			})
			if err != nil {
				t.Fatal(err)
			}
			b, err := congest.NewBackend(tester)
			if err != nil {
				t.Fatal(err)
			}
			assertSameVerdicts(t, "congest", want, runBatchVerdicts(t, b, g.batch, g.window))
		})
	}
}

func TestClusterBatchMultiChunk(t *testing.T) {
	// More trials than one chunk holds: several workers each run several
	// chunks through their persistent sessions, with partial batches at
	// the tail. Verdicts must match the unbatched run trial for trial.
	const trials = 100
	referee := core.BitReferee{Rule: core.MajorityRule{}}
	run := func(t *testing.T, batch, window int) []bool {
		t.Helper()
		results, err := engine.Run(context.Background(), batchCluster(t, referee, 0), xbSource(t), trials,
			engine.Options{Seed: xbSeed, Workers: xbWorkers, Batch: batch, Window: window})
		if err != nil {
			t.Fatal(err)
		}
		verdicts := make([]bool, len(results))
		for i, r := range results {
			verdicts[i] = r.Verdict
		}
		return verdicts
	}
	want := run(t, 0, 0) // unbatched
	assertSameVerdicts(t, "multichunk", want, run(t, 7, 2))
	assertSameVerdicts(t, "multichunk", want, run(t, 16, 3))
}
