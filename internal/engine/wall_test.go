package engine_test

import (
	"testing"
	"time"

	"github.com/distributed-uniformity/dut/internal/engine"
)

// TestSpreadWallSumsToElapsed pins the remainder accounting: splitting a
// batch's elapsed time over its trials must conserve every nanosecond
// (plain integer division drops up to len(out)-1 of them), with the
// remainder landing on the first trial and every other trial getting the
// even share.
func TestSpreadWallSumsToElapsed(t *testing.T) {
	for _, tc := range []struct {
		n       int
		elapsed time.Duration
	}{
		{n: 1, elapsed: 7},
		{n: 3, elapsed: 10},
		{n: 4, elapsed: 1000},
		{n: 7, elapsed: 999999937}, // prime: maximal remainder pressure
		{n: 64, elapsed: 12345},
		{n: 5, elapsed: 0},
		{n: 3, elapsed: 2}, // fewer ns than trials
	} {
		out := make([]engine.RoundResult, tc.n)
		engine.SpreadWall(out, tc.elapsed)
		share := tc.elapsed / time.Duration(tc.n)
		var sum time.Duration
		for i, r := range out {
			sum += r.Wall
			if i > 0 && r.Wall != share {
				t.Errorf("n=%d elapsed=%d: trial %d wall = %d, want even share %d", tc.n, tc.elapsed, i, r.Wall, share)
			}
		}
		if sum != tc.elapsed {
			t.Errorf("n=%d: summed wall = %d, want elapsed %d", tc.n, sum, tc.elapsed)
		}
		if out[0].Wall < share {
			t.Errorf("n=%d elapsed=%d: first trial wall = %d, below the even share %d", tc.n, tc.elapsed, out[0].Wall, share)
		}
	}
	engine.SpreadWall(nil, 5) // empty batch: must be a no-op, not a panic
}
