package engine

import (
	"math/rand/v2"
	"testing"
)

// TestReusableRNGMatchesNodeRNG pins the reseeding contract: a single
// ReusableRNG stepped through (shared, player) coordinates must emit
// exactly the streams fresh NodeRNG allocations would.
func TestReusableRNGMatchesNodeRNG(t *testing.T) {
	r := NewReusableRNG()
	for _, shared := range []uint64{0, 1, 0xfeedface, ^uint64(0)} {
		for player := 0; player < 6; player++ {
			got := r.SeedNode(shared, player)
			want := NodeRNG(shared, player)
			for i := 0; i < 16; i++ {
				if g, w := got.Uint64(), want.Uint64(); g != w {
					t.Fatalf("shared %#x player %d draw %d: %d, want %d", shared, player, i, g, w)
				}
			}
		}
	}
}

// TestReusableRNGMatchesTrialRNG is the same contract for the per-trial
// lane.
func TestReusableRNGMatchesTrialRNG(t *testing.T) {
	r := NewReusableRNG()
	for _, seed := range []uint64{0, 42, 0x9e3779b97f4a7c15} {
		for trial := 0; trial < 6; trial++ {
			got := r.SeedTrial(seed, trial)
			want := TrialRNG(seed, trial)
			for i := 0; i < 16; i++ {
				if g, w := got.Uint64(), want.Uint64(); g != w {
					t.Fatalf("seed %#x trial %d draw %d: %d, want %d", seed, trial, i, g, w)
				}
			}
		}
	}
}

// TestReusableRNGReseedsCleanly checks that a partially-drained stream
// leaves no state behind after the next reseed.
func TestReusableRNGReseedsCleanly(t *testing.T) {
	r := NewReusableRNG()
	r.SeedNode(7, 3).Uint64() // drain one draw
	got := r.SeedNode(9, 1)
	want := NodeRNG(9, 1)
	if g, w := got.Uint64(), want.Uint64(); g != w {
		t.Fatalf("post-reseed draw %d, want %d", g, w)
	}
}

// TestReusableRNGSeedsAllocateOnce guards the whole point of the type:
// reseeding is allocation-free.
func TestReusableRNGSeedsAllocateOnce(t *testing.T) {
	r := NewReusableRNG()
	var sink *rand.Rand
	allocs := testing.AllocsPerRun(100, func() {
		sink = r.SeedNode(5, 2)
		sink = r.SeedTrial(5, 2)
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("reseed allocates %.1f per call pair, want 0", allocs)
	}
}
