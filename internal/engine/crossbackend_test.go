package engine_test

// Cross-backend determinism: the tentpole guarantee of the unified
// execution engine is that one seed fixes the full verdict sequence —
// independently of which backend runs the rounds (in-process SMP
// simulator, networked cluster, CONGEST graph) and of how many workers
// drive them. These tests run the same protocol on multiple backends
// with the same seed and demand bit-identical verdict sequences.

import (
	"context"
	"math/rand/v2"
	"testing"
	"time"

	"github.com/distributed-uniformity/dut/internal/congest"
	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
	"github.com/distributed-uniformity/dut/internal/network"
)

const (
	xbPlayers = 5
	xbSamples = 3
	xbDomain  = 16
	xbTrials  = 12
	xbSeed    = 0xfeedface
	xbWorkers = 4
)

// xbRule is a deliberately twitchy single-bit rule: it folds the
// samples, the shared seed and a private coin into the vote, so any
// divergence in any of the three streams flips verdicts immediately.
func xbRule() core.LocalRule {
	return core.RuleFunc(func(player int, samples []int, shared uint64, private *rand.Rand) (core.Message, error) {
		h := shared ^ uint64(player)*0x9e3779b97f4a7c15
		for _, s := range samples {
			h = h*1099511628211 + uint64(s)
		}
		h ^= private.Uint64()
		if h&1 == 0 {
			return core.Accept, nil
		}
		return core.Reject, nil
	})
}

func xbSource(t *testing.T) engine.Source {
	t.Helper()
	u, err := dist.Uniform(xbDomain)
	if err != nil {
		t.Fatal(err)
	}
	src, err := engine.FromDist(u)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func runVerdicts(t *testing.T, b engine.Backend) []bool {
	t.Helper()
	results, err := engine.Run(context.Background(), b, xbSource(t), xbTrials,
		engine.Options{Seed: xbSeed, Workers: xbWorkers})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := make([]bool, len(results))
	for i, r := range results {
		verdicts[i] = r.Verdict
	}
	return verdicts
}

func smpVerdicts(t *testing.T, referee core.Referee) []bool {
	t.Helper()
	p, err := core.NewSMP(xbPlayers, xbSamples, xbRule(), referee)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.BackendFor(p)
	if err != nil {
		t.Fatal(err)
	}
	return runVerdicts(t, b)
}

func clusterVerdicts(t *testing.T, referee core.Referee, minVotes int, absentees core.AbsenteePolicy) []bool {
	t.Helper()
	c, err := network.NewCluster(network.ClusterConfig{
		K: xbPlayers, Q: xbSamples,
		Rule:      xbRule(),
		Referee:   referee,
		Transport: network.NewMemTransport(),
		Timeout:   10 * time.Second,
		MinVotes:  minVotes,
		Absentees: absentees,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := network.NewBackend(c)
	if err != nil {
		t.Fatal(err)
	}
	return runVerdicts(t, b)
}

func assertSameVerdicts(t *testing.T, name string, want, got []bool) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d verdicts, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: trial %d verdict %v, want %v (full: got %v want %v)",
				name, i, got[i], want[i], got, want)
		}
	}
}

func TestSMPAndClusterBackendsAgree(t *testing.T) {
	rules := []struct {
		name string
		rule core.DecisionRule
	}{
		{"AND", core.ANDRule{}},
		{"OR", core.ORRule{}},
		{"Threshold", core.ThresholdRule{T: 2}},
		{"Majority", core.MajorityRule{}},
	}
	for _, tc := range rules {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			referee := core.BitReferee{Rule: tc.rule}
			want := smpVerdicts(t, referee)
			got := clusterVerdicts(t, referee, 0, core.AbsenteeDefault)
			assertSameVerdicts(t, tc.name, want, got)
		})
	}
}

func TestQuorumClusterAgreesWithoutFaults(t *testing.T) {
	// A quorum-tolerant deployment with no faults injected receives all
	// k votes, so its verdict sequence must still match the strict
	// in-process run bit for bit.
	referee := core.BitReferee{Rule: core.ThresholdRule{T: 2}}
	want := smpVerdicts(t, referee)
	got := clusterVerdicts(t, referee, xbPlayers-1, core.AbsenteeReject)
	assertSameVerdicts(t, "quorum", want, got)
}

func TestCONGESTBackendAgreesWithSMP(t *testing.T) {
	// The CONGEST tester hard-wires threshold aggregation at the root;
	// the SMP twin is the same rule under a T-threshold referee. The
	// graph topology must not matter — only the votes do.
	const threshold = 2
	referee := core.BitReferee{Rule: core.ThresholdRule{T: threshold}}
	want := smpVerdicts(t, referee)
	graphs := []struct {
		name  string
		build func(int) (*congest.Graph, error)
	}{
		{"complete", congest.Complete},
		{"path", congest.Path},
		{"star", congest.Star},
	}
	for _, g := range graphs {
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			graph, err := g.build(xbPlayers)
			if err != nil {
				t.Fatal(err)
			}
			tester, err := congest.NewTester(congest.TesterConfig{
				Graph: graph, Root: 0, Q: xbSamples, Rule: xbRule(), T: threshold,
			})
			if err != nil {
				t.Fatal(err)
			}
			b, err := congest.NewBackend(tester)
			if err != nil {
				t.Fatal(err)
			}
			assertSameVerdicts(t, g.name, want, runVerdicts(t, b))
		})
	}
}

func TestSessionAgreesWithSingleRounds(t *testing.T) {
	// A multi-round session (one set of connections, rounds stepped by
	// the engine's session backend) must produce the same verdicts as
	// driving the cluster backend trial by trial with the same seed.
	referee := core.BitReferee{Rule: core.MajorityRule{}}
	c, err := network.NewCluster(network.ClusterConfig{
		K: xbPlayers, Q: xbSamples,
		Rule:      xbRule(),
		Referee:   referee,
		Transport: network.NewMemTransport(),
		Timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := dist.Uniform(xbDomain)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := dist.NewAliasSampler(u)
	if err != nil {
		t.Fatal(err)
	}
	// The session draws its base seed as rng.Uint64(); hand the per-trial
	// path the same base seed explicitly.
	rng := rand.New(rand.NewPCG(1, 2))
	baseSeed := rand.New(rand.NewPCG(1, 2)).Uint64()
	verdicts, stats, err := c.RunManyStats(context.Background(), sampler, rng, xbTrials)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != xbTrials {
		t.Fatalf("%d stats, want %d", len(stats), xbTrials)
	}
	b, err := network.NewBackend(c)
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.Run(context.Background(), b, engine.Fixed(sampler), xbTrials,
		engine.Options{Seed: baseSeed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]bool, len(results))
	for i, r := range results {
		want[i] = r.Verdict
	}
	assertSameVerdicts(t, "session", want, verdicts)
}

func TestSMPSeededMatchesEngineStreams(t *testing.T) {
	// RunSeeded at SharedSeed(seed, trial) must reproduce exactly what
	// the engine produced for that trial.
	referee := core.BitReferee{Rule: core.ThresholdRule{T: 2}}
	p, err := core.NewSMP(xbPlayers, xbSamples, xbRule(), referee)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.BackendFor(p)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := runVerdicts(t, b)
	u, err := dist.Uniform(xbDomain)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := dist.NewAliasSampler(u)
	if err != nil {
		t.Fatal(err)
	}
	for trial, want := range verdicts {
		got, err := p.RunSeeded(sampler, engine.SharedSeed(xbSeed, trial))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: RunSeeded %v, engine %v", trial, got, want)
		}
	}
}
