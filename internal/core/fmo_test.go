package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

func TestLocalAlphaForThreshold(t *testing.T) {
	// AND regime: alpha = T/(4k).
	if got := LocalAlphaForThreshold(100, 1); math.Abs(got-1.0/400) > 1e-12 {
		t.Errorf("alpha(k=100,T=1) = %v", got)
	}
	// Balanced regime: alpha approaches 1/2 from below as T -> k/2.
	got := LocalAlphaForThreshold(1000, 500)
	if got <= 0.4 || got >= 0.5 {
		t.Errorf("alpha(k=1000,T=500) = %v, want in (0.4, 0.5)", got)
	}
	// Never exceeds 1/2 and never collapses to zero.
	for _, k := range []int{1, 2, 10, 1000000} {
		for _, T := range []int{1, 2, k/2 + 1, k} {
			if T < 1 {
				continue
			}
			a := LocalAlphaForThreshold(k, T)
			if a <= 0 || a > 0.5 {
				t.Errorf("alpha(k=%d,T=%d) = %v out of range", k, T, a)
			}
		}
	}
}

func TestCollisionVoteRuleFalseAlarmRate(t *testing.T) {
	// Under uniform, the randomized boundary makes the per-player rejection
	// probability track alpha closely.
	const n = 256
	const q = 60 // lambda = 60*59/2/256 ≈ 6.9
	for _, alpha := range []float64{0.05, 0.2, 0.45} {
		rule, err := newCollisionVoteRule(n, q, alpha)
		if err != nil {
			t.Fatal(err)
		}
		u, _ := dist.Uniform(n)
		sampler, _ := dist.NewAliasSampler(u)
		est, err := stats.EstimateSuccess(30000, func(rng *rand.Rand) bool {
			samples := dist.SampleN(sampler, q, rng)
			m, err := rule.Message(0, samples, 0, rng)
			if err != nil {
				t.Error(err)
			}
			return !m.Bit() // count rejections
		}, stats.EstimateOptions{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		// The collision count is only approximately Poisson, so allow a
		// modest relative error.
		if math.Abs(est.P-alpha) > 0.25*alpha+0.01 {
			t.Errorf("alpha=%v: measured rejection rate %v", alpha, est.P)
		}
	}
}

func TestCollisionVoteRuleValidation(t *testing.T) {
	if _, err := newCollisionVoteRule(0, 5, 0.1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := newCollisionVoteRule(4, -1, 0.1); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := newCollisionVoteRule(4, 5, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := newCollisionVoteRule(4, 5, 1); err == nil {
		t.Error("alpha=1 accepted")
	}
	rule, err := newCollisionVoteRule(4, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if rule.Bits() != 1 {
		t.Errorf("bits = %d", rule.Bits())
	}
	if _, err := rule.Message(0, []int{7}, 0, testRand(0)); err == nil {
		t.Error("out-of-domain sample accepted")
	}
}

func TestNewThresholdTesterValidation(t *testing.T) {
	base := ThresholdTesterConfig{N: 64, K: 8, Q: 10, Eps: 0.5}
	bad := []ThresholdTesterConfig{
		{N: 0, K: 8, Q: 10, Eps: 0.5},
		{N: 64, K: 0, Q: 10, Eps: 0.5},
		{N: 64, K: 8, Q: 1, Eps: 0.5},
		{N: 64, K: 8, Q: 10, Eps: 0},
		{N: 64, K: 8, Q: 10, Eps: 0.5, T: 9},
		{N: 64, K: 8, Q: 10, Eps: 0.5, T: -1},
	}
	for i, cfg := range bad {
		if _, err := NewThresholdTester(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	p, err := NewThresholdTester(base)
	if err != nil {
		t.Fatal(err)
	}
	if p.Players() != 8 || p.MaxSamplesPerPlayer() != 10 {
		t.Errorf("accessors: %d %d", p.Players(), p.MaxSamplesPerPlayer())
	}
}

func TestThresholdTesterSeparatesAtRecommendedQ(t *testing.T) {
	const (
		n   = 1024
		k   = 16
		eps = 0.5
	)
	q := RecommendedThresholdSamples(n, k, eps)
	p, err := NewThresholdTester(ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	uniform, _ := dist.Uniform(n)
	h, err := dist.NewHardInstance(9, eps) // n = 1024
	if err != nil {
		t.Fatal(err)
	}
	far, _, err := h.RandomPerturbed(testRand(31))
	if err != nil {
		t.Fatal(err)
	}
	ok, pNull, pFar, err := Separates(p, uniform, far, 2.0/3, 300, stats.EstimateOptions{Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("threshold tester fails at recommended q=%d: accept(U)=%v accept(far)=%v", q, pNull, pFar)
	}
}

func TestThresholdTesterParallelGain(t *testing.T) {
	// With k=64 players the recommended per-player q is about 1/8 of the
	// k=1 cost; check the k=64 protocol still separates at that reduced q.
	const (
		n   = 4096
		eps = 0.5
	)
	k := 64
	q := RecommendedThresholdSamples(n, k, eps)
	if q64, q1 := q, RecommendedThresholdSamples(n, 1, eps); float64(q64) > float64(q1)/6 {
		t.Fatalf("recommended q did not drop with k: %d vs %d", q64, q1)
	}
	p, err := NewThresholdTester(ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	uniform, _ := dist.Uniform(n)
	h, _ := dist.NewHardInstance(11, eps) // n = 4096
	far, _, err := h.RandomPerturbed(testRand(41))
	if err != nil {
		t.Fatal(err)
	}
	ok, pNull, pFar, err := Separates(p, uniform, far, 2.0/3, 300, stats.EstimateOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("k=64 tester fails at q=%d: accept(U)=%v accept(far)=%v", q, pNull, pFar)
	}
}

func TestANDTesterWorksAtCentralizedScale(t *testing.T) {
	// With q at the centralized scale sqrt(n)/eps^2 the AND tester
	// separates; the quantitative comparison against the threshold rule
	// (Theorem 1.2's locality gap) is measured by experiment E2.
	const (
		n   = 1024
		k   = 16
		eps = 0.5
	)
	uniform, _ := dist.Uniform(n)
	h, _ := dist.NewHardInstance(9, eps)
	far, _, err := h.RandomPerturbed(testRand(51))
	if err != nil {
		t.Fatal(err)
	}
	qBig := 5 * int(math.Sqrt(n)/(eps*eps)) // centralized scale with margin
	big, err := NewANDTester(n, k, qBig, eps)
	if err != nil {
		t.Fatal(err)
	}
	ok, pNull, pFar, err := Separates(big, uniform, far, 2.0/3, 300, stats.EstimateOptions{Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("AND tester fails even at centralized q=%d: accept(U)=%v accept(far)=%v", qBig, pNull, pFar)
	}
}

func TestANDTesterStarvedNeverRejects(t *testing.T) {
	// A single sample per player carries zero collision mass, so under the
	// AND rule the network accepts everything — the Section 6.3 remark
	// that q = 1 makes AND-rule uniformity testing impossible. (Our local
	// rule family needs q >= 2; q = 2 with a large domain is equally
	// starved: lambda = 1/n.)
	const (
		n   = 4096
		eps = 0.5
	)
	uniform, _ := dist.Uniform(n)
	for _, k := range []int{4, 64, 512} {
		p, err := NewANDTester(n, k, 2, eps)
		if err != nil {
			t.Fatal(err)
		}
		h, _ := dist.NewHardInstance(11, eps)
		far, _, err := h.RandomPerturbed(testRand(uint64(k)))
		if err != nil {
			t.Fatal(err)
		}
		estU, err := EstimateAcceptance(p, uniform, 400, stats.EstimateOptions{Seed: uint64(54 + k)})
		if err != nil {
			t.Fatal(err)
		}
		estF, err := EstimateAcceptance(p, far, 400, stats.EstimateOptions{Seed: uint64(55 + k)})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(estU.P-estF.P) > 0.12 {
			t.Errorf("k=%d: starved AND tester separates (accept U=%v, far=%v); it should be blind", k, estU.P, estF.P)
		}
	}
}

func TestAsymmetricThresholdTester(t *testing.T) {
	// Heterogeneous rates: a few fast players and many slow ones. The
	// protocol must still separate when the fast players carry enough
	// collision mass.
	const (
		n   = 1024
		eps = 0.5
	)
	// Four fast sensors carry most of the collision mass; twelve slow ones
	// contribute weak votes. The referee threshold T = 4 is reachable by
	// the fast minority, unlike the default T = k/2.
	qs := make([]int, 16)
	for i := range qs {
		if i < 4 {
			qs[i] = 600 // fast sensors
		} else {
			qs[i] = 50 // slow sensors
		}
	}
	p, err := NewAsymmetricThresholdTester(n, qs, eps, 4)
	if err != nil {
		t.Fatal(err)
	}
	uniform, _ := dist.Uniform(n)
	h, _ := dist.NewHardInstance(9, eps)
	far, _, err := h.RandomPerturbed(testRand(61))
	if err != nil {
		t.Fatal(err)
	}
	ok, pNull, pFar, err := Separates(p, uniform, far, 2.0/3, 300, stats.EstimateOptions{Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("asymmetric tester fails: accept(U)=%v accept(far)=%v", pNull, pFar)
	}
}

func TestAsymmetricThresholdTesterValidation(t *testing.T) {
	if _, err := NewAsymmetricThresholdTester(0, []int{2}, 0.5, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewAsymmetricThresholdTester(16, nil, 0.5, 1); err == nil {
		t.Error("zero players accepted")
	}
	if _, err := NewAsymmetricThresholdTester(16, []int{2}, 0, 1); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewAsymmetricThresholdTester(16, []int{2, -1}, 0.5, 1); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := NewAsymmetricThresholdTester(16, []int{2, 2}, 0.5, 3); err == nil {
		t.Error("T > k accepted")
	}
}

func TestRecommendedThresholdSamplesScaling(t *testing.T) {
	// q ~ sqrt(n/k)/eps^2.
	base := RecommendedThresholdSamples(4096, 4, 0.5)
	quadK := RecommendedThresholdSamples(4096, 16, 0.5)
	if ratio := float64(base) / float64(quadK); ratio < 1.8 || ratio > 2.2 {
		t.Errorf("4x players gave q ratio %v, want ~2", ratio)
	}
	halfEps := RecommendedThresholdSamples(4096, 4, 0.25)
	if ratio := float64(halfEps) / float64(base); ratio < 3.6 || ratio > 4.4 {
		t.Errorf("eps/2 gave q ratio %v, want ~4", ratio)
	}
}

func TestDefaultThresholdT(t *testing.T) {
	if DefaultThresholdT(1) != 1 || DefaultThresholdT(2) != 1 || DefaultThresholdT(100) != 50 {
		t.Error("default T wrong")
	}
}
