package core

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/centralized"
)

// Slate is the packed r-bit message slate the referee decides over: k
// players times r bits, stored as r bit-planes of ceil(k/64) words each.
// Bit i of plane b is bit b of player i's message, so plane 0 alone is
// exactly the packed vote bitset of the 1-bit protocol and an r-bit rule
// reads a player's value by gathering its lane across planes. The layout
// is shared with the VOTE_BATCH_R wire frame (DESIGN.md section 10),
// which packs the same planes with trials in place of players.
type Slate struct {
	k     int
	bits  int
	words int
	// planes holds the r planes back to back: plane b occupies words
	// [b*words, (b+1)*words).
	planes []uint64
}

// NewSlate allocates a zeroed slate for k players of `bits`-bit messages.
func NewSlate(k, bits int) (*Slate, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: slate for %d players", k)
	}
	if bits < 1 || bits > 64 {
		return nil, fmt.Errorf("core: slate with %d-bit messages outside [1,64]", bits)
	}
	words := (k + 63) / 64
	return &Slate{k: k, bits: bits, words: words, planes: make([]uint64, bits*words)}, nil
}

// Players returns k.
func (s *Slate) Players() int { return s.k }

// Bits returns the message width r.
func (s *Slate) Bits() int { return s.bits }

// Reset clears every plane.
func (s *Slate) Reset() {
	for i := range s.planes {
		s.planes[i] = 0
	}
}

// Plane returns plane b (bit b of every player's message), aliasing the
// slate's storage; the caller must not grow it.
func (s *Slate) Plane(b int) []uint64 {
	return s.planes[b*s.words : (b+1)*s.words]
}

// Set stores player i's message, overwriting any previous value. Message
// bits at or above Bits() are ignored.
func (s *Slate) Set(player int, m Message) {
	w, mask := player/64, uint64(1)<<(player%64)
	for b := 0; b < s.bits; b++ {
		if m>>b&1 == 1 {
			s.planes[b*s.words+w] |= mask
		} else {
			s.planes[b*s.words+w] &^= mask
		}
	}
}

// Get reads player i's message back out of the planes.
func (s *Slate) Get(player int) Message {
	w, mask := player/64, uint64(1)<<(player%64)
	var m Message
	for b := 0; b < s.bits; b++ {
		if s.planes[b*s.words+w]&mask != 0 {
			m |= 1 << b
		}
	}
	return m
}

// SetMessages packs a full k-message round into the slate. It rejects a
// wrong-length slice or a message wider than Bits(), so a rule whose
// Bits() understates its output cannot silently lose high bits.
func (s *Slate) SetMessages(msgs []Message) error {
	if len(msgs) != s.k {
		return fmt.Errorf("core: slate for %d players packed with %d messages", s.k, len(msgs))
	}
	for i, m := range msgs {
		if s.bits < 64 && m >= 1<<s.bits {
			return fmt.Errorf("core: player %d message %#x wider than the slate's %d bits", i, uint64(m), s.bits)
		}
		s.Set(i, m)
	}
	return nil
}

// SlateDecider is the allocation-free r-bit referee path: referees that
// can decide straight off the packed planes implement it, and the SMP
// scratch runner (and the batch evaluators downstream) prefer it over
// expanding every message. It is the r-bit analogue of the private
// bitsDecider fast path the 1-bit threshold family uses.
type SlateDecider interface {
	// DecideSlate returns the verdict for one full round; the slate's
	// width must match the referee's expected message width.
	DecideSlate(s *Slate) (bool, error)
}

// SumThresholdReferee is the canonical r-bit referee: each player reports
// an r-bit magnitude (larger = more evidence against uniformity, e.g. a
// saturating collision count) and the referee rejects iff the values sum
// to at least T. For r = 1 it degenerates to counting raised flags —
// note the polarity is opposite to the 1-bit ThresholdRule convention,
// where bit 1 means accept. Decide sums lanes; DecideSlate sums planes
// word-parallel (popcount of plane b contributes 2^b per set lane).
type SumThresholdReferee struct {
	// Bits is the message width r in [1,64] every player must honor.
	Bits int
	// T is the rejection threshold on the value sum; must be at least 1.
	// T larger than k*(2^Bits-1) is legal and accepts every slate.
	T int
}

var (
	_ Referee         = SumThresholdReferee{}
	_ SlateDecider    = SumThresholdReferee{}
	_ AbsenteeAdvisor = SumThresholdReferee{}
)

func (r SumThresholdReferee) validate() error {
	if r.Bits < 1 || r.Bits > 64 {
		return fmt.Errorf("core: sum referee over %d-bit messages outside [1,64]", r.Bits)
	}
	if r.T < 1 {
		return fmt.Errorf("core: sum referee with threshold %d", r.T)
	}
	return nil
}

// Decide implements Referee: reject iff the message values sum to at
// least T. Messages wider than Bits are an error, matching the width
// check the networked referee applies to arriving votes.
func (r SumThresholdReferee) Decide(msgs []Message) (bool, error) {
	if err := r.validate(); err != nil {
		return false, err
	}
	if len(msgs) == 0 {
		return false, fmt.Errorf("core: sum referee over zero messages")
	}
	var sum uint64
	for i, m := range msgs {
		if r.Bits < 64 && m >= 1<<r.Bits {
			return false, fmt.Errorf("core: player %d message %#x wider than the referee's %d bits", i, uint64(m), r.Bits)
		}
		next := sum + uint64(m)
		if next < sum {
			return false, fmt.Errorf("core: sum referee value overflow at player %d", i)
		}
		sum = next
	}
	return sum < uint64(r.T), nil
}

// DecideSlate implements SlateDecider via weighted plane popcounts.
func (r SumThresholdReferee) DecideSlate(s *Slate) (bool, error) {
	if err := r.validate(); err != nil {
		return false, err
	}
	if s == nil || s.k == 0 {
		return false, fmt.Errorf("core: sum referee over an empty slate")
	}
	if s.bits != r.Bits {
		return false, fmt.Errorf("core: %d-bit slate decided by a %d-bit sum referee", s.bits, r.Bits)
	}
	var sum uint64
	for b := 0; b < s.bits; b++ {
		var pop uint64
		for _, w := range s.Plane(b) {
			pop += uint64(bits.OnesCount64(w))
		}
		if pop != 0 && bits.Len64(pop)+b > 64 {
			return false, fmt.Errorf("core: sum referee plane overflow at bit %d", b)
		}
		next := sum + pop<<b
		if next < sum {
			return false, fmt.Errorf("core: sum referee value overflow at bit %d", b)
		}
		sum = next
	}
	return sum < uint64(r.T), nil
}

// Absentee implements AbsenteeAdvisor: a missing player contributes
// nothing to a value sum, and substituting the 1-bit Accept constant
// would inject a spurious unit of evidence, so the referee decides over
// the received values only.
func (r SumThresholdReferee) Absentee() AbsenteePolicy { return AbsenteeOmit }

// SumShape classifies a referee as a T-sum-threshold rule over k r-bit
// messages — the r-bit counterpart of ThresholdShape. When ok, the
// referee's Decide over any full k-message slate equals "reject iff the
// values sum to at least t", which lets the networked referee evaluate a
// whole batch word-parallel over the packed value planes. Opaque
// referees return ok = false and fall back to per-trial decoding.
func SumShape(r Referee, k int) (t, msgBits int, ok bool) {
	if k < 1 {
		return 0, 0, false
	}
	sr, isSum := r.(SumThresholdReferee)
	if !isSum || sr.validate() != nil {
		return 0, 0, false
	}
	return sr.T, sr.Bits, true
}

// QuantizedCollisionRule is the Theorem 6.4 local rule: report the
// player's collision count, saturated into r bits as min(count, 2^r-1).
// It consumes no private randomness, so with a fixed shared seed the
// message is a deterministic, pointwise monotone function of r — the
// property experiment E21 uses to exhibit the 2^-Theta(r) information
// decay as a monotone acceptance gap.
type QuantizedCollisionRule struct {
	stat centralized.Statistic
	bits int
	cap  int64
}

var _ LocalRule = (*QuantizedCollisionRule)(nil)

// NewQuantizedCollisionRule builds the rule for domain size n, q samples
// per player, and message width `bits` in [1,60].
func NewQuantizedCollisionRule(n, q, bits int) (*QuantizedCollisionRule, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: quantized rule over domain %d", n)
	}
	if q < 0 {
		return nil, fmt.Errorf("core: quantized rule with %d samples", q)
	}
	if bits < 1 || bits > 60 {
		return nil, fmt.Errorf("core: quantized rule with %d message bits outside [1,60]", bits)
	}
	return &QuantizedCollisionRule{
		stat: centralized.CollisionStatistic(n),
		bits: bits,
		cap:  int64(1)<<bits - 1,
	}, nil
}

// Message implements LocalRule.
func (r *QuantizedCollisionRule) Message(_ int, samples []int, _ uint64, _ *rand.Rand) (Message, error) {
	v, err := r.stat(samples)
	if err != nil {
		return Reject, err
	}
	count := int64(v)
	if count > r.cap {
		count = r.cap
	}
	return Message(count), nil
}

// Bits implements LocalRule.
func (r *QuantizedCollisionRule) Bits() int { return r.bits }

// QuantizedSumThreshold returns the referee threshold the r-bit tester
// pairs with QuantizedCollisionRule: two standard deviations above the
// expected total collision count under uniform, ceil(k*lambda +
// 2*sqrt(k*lambda)) + 1 with lambda = C(q,2)/n, approximating the null
// total as Poisson(k*lambda). Under uniform the sum stays below T with
// probability about 0.97; an eps-far distribution inflates every
// player's expected count by a (1+eps^2) factor.
func QuantizedSumThreshold(n, k, q int) int {
	lambda := float64(q) * float64(q-1) / 2 / float64(n)
	mean := float64(k) * lambda
	t := int(math.Ceil(mean+2*math.Sqrt(mean))) + 1
	if t < 1 {
		t = 1
	}
	return t
}

// NewQuantizedSumTester builds the Theorem 6.4 r-bit-message tester: k
// players each report their collision count saturated into `bits` bits,
// and a SumThresholdReferee rejects when the reported total crosses the
// QuantizedSumThreshold. At small r the saturation destroys most of the
// count's information and the tester goes blind — the 2^-Theta(r) regime
// the theorem bounds.
func NewQuantizedSumTester(n, k, q, bits int) (*SMP, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: quantized tester with %d players", k)
	}
	if q < 2 {
		return nil, fmt.Errorf("core: quantized tester needs q >= 2 per player, got %d", q)
	}
	local, err := NewQuantizedCollisionRule(n, q, bits)
	if err != nil {
		return nil, err
	}
	referee := SumThresholdReferee{Bits: bits, T: QuantizedSumThreshold(n, k, q)}
	return NewSMP(k, q, local, referee)
}
