package core

import (
	"fmt"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/centralized"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// collisionVoteRule is the local decision of the threshold-family testers:
// count collisions among the player's q samples and reject when the count
// is high. The rejection boundary is randomized so that, under the Poisson
// approximation of the null collision count (rate lambda = C(q,2)/n), the
// rejection probability equals alpha exactly:
//
//	count >= cut            -> reject,
//	count == cut-1          -> reject with probability gamma,
//	count <  cut-1          -> accept.
//
// Without the randomized boundary, Poisson discreteness would leave the
// realized false-alarm rate anywhere below alpha, and at small lambda that
// quantization gap eats the Theta(1/sqrt(k)) signal margins the
// sample-optimal threshold tester depends on.
type collisionVoteRule struct {
	stat  centralized.Statistic
	cut   int
	gamma float64
}

var _ LocalRule = (*collisionVoteRule)(nil)

// newCollisionVoteRule builds the rule for domain size n, per-player sample
// count q and target local false-alarm probability alpha.
func newCollisionVoteRule(n, q int, alpha float64) (*collisionVoteRule, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: vote rule over domain %d", n)
	}
	if q < 0 {
		return nil, fmt.Errorf("core: vote rule with %d samples", q)
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("core: vote rule false-alarm rate %v outside (0,1)", alpha)
	}
	lambda := float64(q) * float64(q-1) / 2 / float64(n)
	cut, err := stats.PoissonUpperTailThreshold(lambda, alpha)
	if err != nil {
		return nil, err
	}
	gamma := 0.0
	if cut > 0 {
		tailAtCut, err := stats.PoissonUpperTail(cut, lambda)
		if err != nil {
			return nil, err
		}
		pmfBelow, err := stats.PoissonPMF(cut-1, lambda)
		if err != nil {
			return nil, err
		}
		if pmfBelow > 0 {
			gamma = (alpha - tailAtCut) / pmfBelow
		}
		if gamma < 0 {
			gamma = 0
		}
		if gamma > 1 {
			gamma = 1
		}
	}
	return &collisionVoteRule{
		stat:  centralized.CollisionStatistic(n),
		cut:   cut,
		gamma: gamma,
	}, nil
}

// Message implements LocalRule.
func (r *collisionVoteRule) Message(_ int, samples []int, _ uint64, private *rand.Rand) (Message, error) {
	v, err := r.stat(samples)
	if err != nil {
		return Reject, err
	}
	count := int(v)
	switch {
	case count >= r.cut:
		return Reject, nil
	case count == r.cut-1 && r.gamma > 0:
		if private.Float64() < r.gamma {
			return Reject, nil
		}
		return Accept, nil
	default:
		return Accept, nil
	}
}

// Bits implements LocalRule.
func (r *collisionVoteRule) Bits() int { return 1 }
