package core

import (
	"testing"

	"github.com/distributed-uniformity/dut/internal/dist"
)

func TestNewGroupLearnerValidation(t *testing.T) {
	if _, err := NewGroupLearner(0, 10, 1); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewGroupLearner(8, 4, 1); err == nil {
		t.Error("k < n accepted")
	}
	if _, err := NewGroupLearner(8, 16, 0); err == nil {
		t.Error("q=0 accepted")
	}
	g, err := NewGroupLearner(8, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Players() != 16 || g.SamplesPerPlayer() != 2 {
		t.Errorf("accessors: %d %d", g.Players(), g.SamplesPerPlayer())
	}
}

func TestGroupLearnerRecoversDistribution(t *testing.T) {
	// Plenty of players: the estimate should land close to the truth.
	const (
		n = 8
		k = 8 * 2000
		q = 4
	)
	g, err := NewGroupLearner(n, k, q)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := dist.Zipf(n, 1)
	sampler, _ := dist.NewAliasSampler(truth)
	est, err := g.Learn(sampler, testRand(81))
	if err != nil {
		t.Fatal(err)
	}
	l1, err := dist.L1(est, truth)
	if err != nil {
		t.Fatal(err)
	}
	if l1 > 0.1 {
		t.Errorf("learned distribution is %v away in L1", l1)
	}
}

func TestGroupLearnerErrorShrinksWithPlayers(t *testing.T) {
	const n = 8
	truth, _ := dist.TwoBump(n, 0.5)
	small, err := NewGroupLearner(n, n*40, 2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewGroupLearner(n, n*4000, 2)
	if err != nil {
		t.Fatal(err)
	}
	errSmall, err := small.EstimateL1Error(truth, 30, 82)
	if err != nil {
		t.Fatal(err)
	}
	errBig, err := big.EstimateL1Error(truth, 30, 83)
	if err != nil {
		t.Fatal(err)
	}
	// 100x the players should cut the L1 error by about 10x; insist on 3x
	// to keep the test robust.
	if errBig > errSmall/3 {
		t.Errorf("error did not shrink with players: %v -> %v", errSmall, errBig)
	}
}

func TestGroupLearnerMoreSamplesHelp(t *testing.T) {
	const n = 8
	truth, _ := dist.Zipf(n, 0.8)
	k := n * 100
	q1, err := NewGroupLearner(n, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	q8, err := NewGroupLearner(n, k, 8)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := q1.EstimateL1Error(truth, 40, 84)
	if err != nil {
		t.Fatal(err)
	}
	e8, err := q8.EstimateL1Error(truth, 40, 85)
	if err != nil {
		t.Fatal(err)
	}
	if e8 > e1 {
		t.Errorf("more samples per player hurt: q=1 err %v, q=8 err %v", e1, e8)
	}
}

func TestGroupLearnerEstimateValidation(t *testing.T) {
	g, _ := NewGroupLearner(8, 16, 1)
	other, _ := dist.Uniform(4)
	if _, err := g.EstimateL1Error(other, 10, 0); err == nil {
		t.Error("domain mismatch accepted")
	}
	truth, _ := dist.Uniform(8)
	if _, err := g.EstimateL1Error(truth, 0, 0); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestGroupLearnerDegenerateRun(t *testing.T) {
	// One player per element with one sample: the estimate may be coarse
	// but must be a valid distribution.
	g, err := NewGroupLearner(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := dist.Uniform(4)
	sampler, _ := dist.NewAliasSampler(truth)
	for i := 0; i < 20; i++ {
		est, err := g.Learn(sampler, testRand(uint64(90+i)))
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for e := 0; e < est.N(); e++ {
			if est.Prob(e) < 0 {
				t.Fatalf("negative probability %v", est.Prob(e))
			}
			sum += est.Prob(e)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}
