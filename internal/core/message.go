package core

import (
	"fmt"
	"math/rand/v2"
)

// Message is a player's report to the referee: up to 64 bits, of which a
// LocalRule uses the low Bits(). For single-bit rules, bit 0 follows the
// paper's convention: 1 = accept, 0 = reject.
type Message uint64

// Accept and Reject are the two single-bit messages.
const (
	Reject Message = 0
	Accept Message = 1
)

// Bit reports the single-bit reading of the message.
func (m Message) Bit() bool { return m&1 == 1 }

// LocalRule is a player's strategy: the (possibly randomized) map from its
// sample batch to a message — the Boolean function G of the paper's
// Section 4, generalized to multi-bit outputs.
//
// player is the player's index in [0, k); protocols whose strategies differ
// per player (e.g. the learning protocol) dispatch on it. shared is the
// public-coin seed for the current run: every player of the run receives
// the same value and may derive identical randomness from it. private is
// the player's own generator.
type LocalRule interface {
	// Message computes the player's report.
	Message(player int, samples []int, shared uint64, private *rand.Rand) (Message, error)
	// Bits returns the number of message bits the rule uses (1..64).
	Bits() int
}

// Referee decides from the k messages; implementations define the decision
// function f of the model.
type Referee interface {
	// Decide returns true to accept.
	Decide(msgs []Message) (bool, error)
}

// StatRule is a LocalRule sending a single bit: accept iff a real-valued
// statistic of the samples is at most a threshold. It is the shape every
// collision-style local decision in the paper's cited testers takes.
type StatRule struct {
	// Stat maps a sample batch to the test statistic.
	Stat func(samples []int) (float64, error)
	// Threshold is the local acceptance cutoff.
	Threshold float64
}

var _ LocalRule = (*StatRule)(nil)

// Message accepts iff the statistic is at most the threshold.
func (r *StatRule) Message(_ int, samples []int, _ uint64, _ *rand.Rand) (Message, error) {
	if r.Stat == nil {
		return Reject, fmt.Errorf("core: StatRule with nil statistic")
	}
	v, err := r.Stat(samples)
	if err != nil {
		return Reject, err
	}
	if v <= r.Threshold {
		return Accept, nil
	}
	return Reject, nil
}

// Bits returns 1.
func (r *StatRule) Bits() int { return 1 }

// RuleFunc adapts a plain function to a single-bit LocalRule.
type RuleFunc func(player int, samples []int, shared uint64, private *rand.Rand) (Message, error)

// Message invokes the function.
func (f RuleFunc) Message(player int, samples []int, shared uint64, private *rand.Rand) (Message, error) {
	return f(player, samples, shared, private)
}

// Bits returns 1.
func (f RuleFunc) Bits() int { return 1 }
