package core

import (
	"strings"
	"testing"
)

func TestAbsenteePolicyStringAndValid(t *testing.T) {
	for p, want := range map[AbsenteePolicy]string{
		AbsenteeDefault: "default",
		AbsenteeReject:  "reject",
		AbsenteeAccept:  "accept",
		AbsenteeOmit:    "omit",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
		if !p.Valid() {
			t.Errorf("%v reported invalid", p)
		}
	}
	bad := AbsenteePolicy(99)
	if bad.Valid() {
		t.Error("policy 99 reported valid")
	}
	if !strings.Contains(bad.String(), "99") {
		t.Errorf("invalid policy String() = %q", bad.String())
	}
}

func TestRuleAbsenteeAdvice(t *testing.T) {
	// Each rule advises the policy under which a straggler cannot flip the
	// verdict against the live votes' direction.
	for _, tt := range []struct {
		name string
		adv  AbsenteeAdvisor
		want AbsenteePolicy
	}{
		{name: "and", adv: ANDRule{}, want: AbsenteeAccept},
		{name: "or", adv: ORRule{}, want: AbsenteeReject},
		{name: "threshold", adv: ThresholdRule{T: 3}, want: AbsenteeAccept},
		{name: "majority", adv: MajorityRule{}, want: AbsenteeOmit},
	} {
		if got := tt.adv.Absentee(); got != tt.want {
			t.Errorf("%s advice = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestBitRefereeForwardsAdvice(t *testing.T) {
	if got := (BitReferee{Rule: MajorityRule{}}).Absentee(); got != AbsenteeOmit {
		t.Errorf("BitReferee{Majority} advice = %v, want omit", got)
	}
	// A rule without advice (and a nil rule) yields the default.
	if got := (BitReferee{Rule: FuncRule{F: func(bits []bool) bool { return true }, Label: "x"}}).Absentee(); got != AbsenteeDefault {
		t.Errorf("adviceless rule advice = %v, want default", got)
	}
	if got := (BitReferee{}).Absentee(); got != AbsenteeDefault {
		t.Errorf("nil rule advice = %v, want default", got)
	}
}

func TestResolveAbsentee(t *testing.T) {
	ref := BitReferee{Rule: MajorityRule{}}
	// An explicit policy wins over the rule's advice.
	if got := ResolveAbsentee(AbsenteeAccept, ref); got != AbsenteeAccept {
		t.Errorf("explicit policy resolved to %v", got)
	}
	// Default defers to the rule's advice.
	if got := ResolveAbsentee(AbsenteeDefault, ref); got != AbsenteeOmit {
		t.Errorf("deferred policy resolved to %v, want omit", got)
	}
	// No advice anywhere falls back to the conservative reject.
	noAdvice := BitReferee{Rule: FuncRule{F: func(bits []bool) bool { return true }, Label: "x"}}
	if got := ResolveAbsentee(AbsenteeDefault, noAdvice); got != AbsenteeReject {
		t.Errorf("fallback policy resolved to %v, want reject", got)
	}
}
