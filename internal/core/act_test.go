package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

func TestFeistelPermuteIsBijective(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5, 8, 10} {
		for _, seed := range []uint64{0, 1, 0xdeadbeef} {
			n := 1 << m
			seen := make([]bool, n)
			for x := 0; x < n; x++ {
				y := feistelPermute(uint64(x), m, seed)
				if y >= uint64(n) {
					t.Fatalf("m=%d seed=%d: image %d out of range", m, seed, y)
				}
				if seen[y] {
					t.Fatalf("m=%d seed=%d: collision at image %d", m, seed, y)
				}
				seen[y] = true
			}
		}
	}
}

func TestFeistelPermuteVariesWithSeed(t *testing.T) {
	const m = 10
	same := 0
	for x := 0; x < 1<<m; x++ {
		if feistelPermute(uint64(x), m, 1) == feistelPermute(uint64(x), m, 2) {
			same++
		}
	}
	// Two random permutations of 1024 elements agree on ~1 point.
	if same > 20 {
		t.Errorf("permutations under different seeds agree on %d/1024 points", same)
	}
}

func TestQuickFeistelBijective(t *testing.T) {
	prop := func(seed uint64, a, b uint16) bool {
		const m = 12
		x := uint64(a) % (1 << m)
		y := uint64(b) % (1 << m)
		if x == y {
			return true
		}
		return feistelPermute(x, m, seed) != feistelPermute(y, m, seed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewHashRuleValidation(t *testing.T) {
	if _, err := NewHashRule(100, 2); err == nil {
		t.Error("non-power-of-two domain accepted")
	}
	if _, err := NewHashRule(16, 0); err == nil {
		t.Error("l=0 accepted")
	}
	if _, err := NewHashRule(16, 5); err == nil {
		t.Error("l > log2(n) accepted")
	}
	r, err := NewHashRule(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bits() != 3 || r.Buckets() != 8 {
		t.Errorf("bits=%d buckets=%d", r.Bits(), r.Buckets())
	}
	if _, err := r.Message(0, nil, 1, testRand(0)); err == nil {
		t.Error("no samples accepted")
	}
	if _, err := r.Message(0, []int{16}, 1, testRand(0)); err == nil {
		t.Error("out-of-domain sample accepted")
	}
}

func TestHashRuleBucketsAreBalanced(t *testing.T) {
	const (
		n = 1024
		l = 4
	)
	r, err := NewHashRule(n, l)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 7, 99} {
		counts := make([]int, r.Buckets())
		for x := 0; x < n; x++ {
			m, err := r.Message(0, []int{x}, seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			counts[m]++
		}
		want := n / r.Buckets()
		for b, c := range counts {
			if c != want {
				t.Fatalf("seed %d: bucket %d has %d elements, want %d", seed, b, c, want)
			}
		}
	}
}

func TestHashRuleSharedSeedDeterminism(t *testing.T) {
	r, _ := NewHashRule(256, 4)
	for x := 0; x < 256; x += 17 {
		a, err := r.Message(0, []int{x}, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Message(3, []int{x}, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("players disagree on bucket of %d under the same seed", x)
		}
	}
}

func TestNewCollisionRefereeValidation(t *testing.T) {
	if _, err := NewCollisionReferee(64, 0, 10, 0.5); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := NewCollisionReferee(64, 8, 1, 0.5); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewCollisionReferee(64, 8, 10, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	r, err := NewCollisionReferee(64, 8, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Decide([]Message{9}); err == nil {
		t.Error("out-of-range bucket accepted")
	}
	if r.Threshold() <= 0 {
		t.Error("threshold not positive")
	}
}

func TestCollisionRefereeCounts(t *testing.T) {
	r, err := NewCollisionReferee(64, 4, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold = C(4,2) * (1/4 + eps^2/128) ≈ 1.51: two collisions reject.
	ok, err := r.Decide([]Message{0, 1, 2, 3})
	if err != nil || !ok {
		t.Errorf("distinct buckets: %v %v", ok, err)
	}
	ok, err = r.Decide([]Message{0, 0, 1, 1})
	if err != nil || ok {
		t.Errorf("two collisions: %v %v", ok, err)
	}
}

func TestACTTesterSeparatesAtRecommendedK(t *testing.T) {
	const (
		n   = 1024
		l   = 6
		eps = 0.5
	)
	k := RecommendedACTPlayers(n, l, eps)
	p, err := NewACTTester(n, k, l, eps)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxSamplesPerPlayer() != 1 {
		t.Fatalf("per-player samples = %d, want 1", p.MaxSamplesPerPlayer())
	}
	uniform, _ := dist.Uniform(n)
	h, _ := dist.NewHardInstance(9, eps)
	far, _, err := h.RandomPerturbed(testRand(71))
	if err != nil {
		t.Fatal(err)
	}
	ok, pNull, pFar, err := Separates(p, uniform, far, 2.0/3, 200, stats.EstimateOptions{Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("ACT tester fails at k=%d: accept(U)=%v accept(far)=%v", k, pNull, pFar)
	}
}

func TestACTTesterStarvedFails(t *testing.T) {
	// An order of magnitude fewer players than recommended must leave the
	// two cases indistinguishable.
	const (
		n   = 4096
		l   = 4
		eps = 0.25
	)
	k := RecommendedACTPlayers(n, l, eps) / 40
	p, err := NewACTTester(n, k, l, eps)
	if err != nil {
		t.Fatal(err)
	}
	uniform, _ := dist.Uniform(n)
	h, _ := dist.NewHardInstance(11, eps)
	far, _, err := h.RandomPerturbed(testRand(73))
	if err != nil {
		t.Fatal(err)
	}
	estU, err := EstimateAcceptance(p, uniform, 300, stats.EstimateOptions{Seed: 74})
	if err != nil {
		t.Fatal(err)
	}
	estF, err := EstimateAcceptance(p, far, 300, stats.EstimateOptions{Seed: 75})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(estU.P-estF.P) > 0.15 {
		t.Errorf("starved ACT tester separates: U=%v far=%v", estU.P, estF.P)
	}
}

func TestRecommendedACTPlayersScaling(t *testing.T) {
	// k ~ n / (2^{l/2} eps^2): doubling l divides k by 2; doubling n
	// doubles k.
	k1 := RecommendedACTPlayers(4096, 4, 0.5)
	k2 := RecommendedACTPlayers(4096, 6, 0.5)
	if ratio := float64(k1) / float64(k2); ratio < 1.8 || ratio > 2.2 {
		t.Errorf("l+2 gave k ratio %v, want ~2", ratio)
	}
	k3 := RecommendedACTPlayers(8192, 4, 0.5)
	if ratio := float64(k3) / float64(k1); ratio < 1.8 || ratio > 2.2 {
		t.Errorf("2x n gave k ratio %v, want ~2", ratio)
	}
}

func TestNewACTTesterValidation(t *testing.T) {
	if _, err := NewACTTester(100, 10, 2, 0.5); err == nil {
		t.Error("non-power-of-two domain accepted")
	}
	if _, err := NewACTTester(64, 1, 2, 0.5); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewACTTester(64, 10, 2, 0); err == nil {
		t.Error("eps=0 accepted")
	}
}
