package core

import (
	"math/rand/v2"
	"testing"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// coinProtocol accepts with a fixed probability, independent of samples.
type coinProtocol struct{ p float64 }

func (c coinProtocol) Run(_ dist.Sampler, rng *rand.Rand) (bool, error) {
	return rng.Float64() < c.p, nil
}
func (c coinProtocol) Players() int             { return 1 }
func (c coinProtocol) MaxSamplesPerPlayer() int { return 1 }

func TestAmplifyValidation(t *testing.T) {
	if _, err := Amplify(nil, 3); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := Amplify(coinProtocol{p: 0.7}, 0); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := Amplify(coinProtocol{p: 0.7}, 4); err == nil {
		t.Error("even rounds accepted")
	}
	a, err := Amplify(coinProtocol{p: 0.7}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Players() != 1 || a.MaxSamplesPerPlayer() != 5 || a.Rounds() != 5 {
		t.Error("accessors wrong")
	}
}

func TestAmplifyDrivesErrorDown(t *testing.T) {
	// Inner protocol accepts with p = 0.7 (should accept): single-round
	// error 0.3; 15 rounds of majority push it below ~3%.
	u, _ := dist.Uniform(4)
	single, err := EstimateAcceptance(coinProtocol{p: 0.7}, u, 4000, stats.EstimateOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	amp, err := Amplify(coinProtocol{p: 0.7}, 15)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := EstimateAcceptance(amp, u, 4000, stats.EstimateOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if single.P > 0.75 {
		t.Fatalf("single-round baseline off: %v", single.P)
	}
	if boosted.P < 0.94 {
		t.Errorf("amplified acceptance %v, want > 0.94", boosted.P)
	}
	// Symmetric on the reject side.
	ampReject, err := Amplify(coinProtocol{p: 0.3}, 15)
	if err != nil {
		t.Fatal(err)
	}
	rejected, err := EstimateAcceptance(ampReject, u, 4000, stats.EstimateOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rejected.P > 0.06 {
		t.Errorf("amplified rejection leaks %v acceptance", rejected.P)
	}
}

func TestRoundsForFailure(t *testing.T) {
	r, err := RoundsForFailure(1.0 / 3)
	if err != nil {
		t.Fatal(err)
	}
	if r%2 == 0 || r < 1 {
		t.Errorf("rounds = %d", r)
	}
	r2, err := RoundsForFailure(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if r2 <= r {
		t.Errorf("smaller delta gave fewer rounds: %d vs %d", r2, r)
	}
	if _, err := RoundsForFailure(0); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := RoundsForFailure(1); err == nil {
		t.Error("delta=1 accepted")
	}
}

func TestAmplifyEndToEnd(t *testing.T) {
	// Amplify the real threshold tester and watch the uniform-side
	// acceptance climb.
	const (
		n   = 256
		k   = 8
		eps = 0.5
	)
	q := RecommendedThresholdSamples(n, k, eps)
	inner, err := NewThresholdTester(ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	amp, err := Amplify(inner, 9)
	if err != nil {
		t.Fatal(err)
	}
	uniform, _ := dist.Uniform(n)
	base, err := EstimateAcceptance(inner, uniform, 300, stats.EstimateOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := EstimateAcceptance(amp, uniform, 300, stats.EstimateOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if boosted.P < base.P {
		t.Errorf("amplification hurt: %v -> %v", base.P, boosted.P)
	}
	if boosted.P < 0.95 {
		t.Errorf("amplified acceptance %v", boosted.P)
	}
	far, _ := dist.PairedBump(n, eps)
	farAccept, err := EstimateAcceptance(amp, far, 300, stats.EstimateOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if farAccept.P > 0.05 {
		t.Errorf("amplified far acceptance %v", farAccept.P)
	}
}
