package core

import (
	"context"
	"fmt"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// BackendFor adapts a Protocol to the engine's Backend interface. A
// *SMP gets the fully deterministic treatment — per-player streams
// derived from the round's public coin, so its verdicts are
// bit-reproducible against the networked and CONGEST backends — while
// any other Protocol runs against the per-trial stream (deterministic in
// (seed, trial), but with no cross-backend vote identity).
func BackendFor(p Protocol) (engine.Backend, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil protocol")
	}
	if smp, ok := p.(*SMP); ok {
		return &smpBackend{p: smp, totalSamples: smp.TotalSamples()}, nil
	}
	return &protocolBackend{p: p}, nil
}

// smpBackend is the in-process SMP execution backend: one RunRound is one
// referee-model round with canonical engine RNG streams. It implements
// engine.ScratchBackend, so driver workers run the zero-allocation batch
// vote path with per-worker reusable buffers.
type smpBackend struct {
	p *SMP
	// totalSamples is precomputed so the hot path reports accounting
	// without re-summing per round.
	totalSamples int
}

var (
	_ engine.ScratchBackend = (*smpBackend)(nil)
	_ engine.BatchBackend   = (*smpBackend)(nil)
)

// smpRoundScratch is one worker's reusable round state: the protocol
// Scratch (sample buffer, bit buffer, reseedable RNG) plus the message
// slice the referee decides over.
type smpRoundScratch struct {
	sc   *Scratch
	msgs []Message
}

// Players implements engine.Backend.
func (b *smpBackend) Players() int { return b.p.Players() }

// NewScratch implements engine.ScratchBackend.
func (b *smpBackend) NewScratch() any {
	return &smpRoundScratch{sc: b.p.NewScratch(), msgs: make([]Message, b.p.Players())}
}

// RunRound implements engine.Backend.
func (b *smpBackend) RunRound(ctx context.Context, spec engine.RoundSpec) (engine.RoundResult, error) {
	return b.RunRoundScratch(ctx, spec, b.NewScratch())
}

// RunRoundScratch implements engine.ScratchBackend: one referee-model
// round, allocation-free in steady state.
//
//dut:hotpath
func (b *smpBackend) RunRoundScratch(ctx context.Context, spec engine.RoundSpec, scratch any) (engine.RoundResult, error) {
	if err := ctx.Err(); err != nil {
		return engine.RoundResult{}, err
	}
	rs, ok := scratch.(*smpRoundScratch)
	if !ok {
		return engine.RoundResult{}, fmt.Errorf("core: foreign scratch %T", scratch)
	}
	sw := engine.StartStopwatch()
	shared := engine.SharedSeed(spec.Seed, spec.Trial)
	accept, err := b.p.runSeededScratch(spec.Sampler, shared, rs.msgs, rs.sc)
	if err != nil {
		return engine.RoundResult{}, err
	}
	return engine.RoundResult{
		Verdict:  accept,
		Votes:    b.p.Players(),
		Messages: b.p.Players(),
		Samples:  b.totalSamples,
		Wall:     sw.Elapsed(),
	}, nil
}

// RunRoundsScratch implements engine.BatchBackend. In-process rounds
// have no per-round synchronization to amortize, so the batch is the
// scratch path looped — same buffers, same per-trial derivations,
// bit-identical verdicts — with the per-trial overheads (context check,
// clock reads) hoisted to one per chunk; the chunk's elapsed time is
// spread over its trials remainder-exactly by engine.SpreadWall.
//
//dut:hotpath
func (b *smpBackend) RunRoundsScratch(ctx context.Context, scratch any, specs []engine.RoundSpec, _ int, out []engine.RoundResult) error {
	if len(out) != len(specs) {
		return fmt.Errorf("core: %d results for %d specs", len(out), len(specs))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	rs, ok := scratch.(*smpRoundScratch)
	if !ok {
		return fmt.Errorf("core: foreign scratch %T", scratch)
	}
	k := b.p.Players()
	sw := engine.StartStopwatch()
	for i, spec := range specs {
		shared := engine.SharedSeed(spec.Seed, spec.Trial)
		accept, err := b.p.runSeededScratch(spec.Sampler, shared, rs.msgs, rs.sc)
		if err != nil {
			return err
		}
		out[i] = engine.RoundResult{
			Verdict:  accept,
			Votes:    k,
			Messages: k,
			Samples:  b.totalSamples,
		}
	}
	engine.SpreadWall(out, sw.Elapsed())
	return nil
}

// contextProtocol is the optional context-aware run surface a Protocol
// may expose (network.Cluster does); the generic backend prefers it so
// driver cancellation reaches mid-round waits.
type contextProtocol interface {
	RunContext(ctx context.Context, sampler dist.Sampler, rng *rand.Rand) (bool, error)
}

// protocolBackend runs any Protocol against the engine's per-trial
// stream.
type protocolBackend struct {
	p Protocol
}

// Players implements engine.Backend.
func (b *protocolBackend) Players() int { return b.p.Players() }

// RunRound implements engine.Backend.
func (b *protocolBackend) RunRound(ctx context.Context, spec engine.RoundSpec) (engine.RoundResult, error) {
	if err := ctx.Err(); err != nil {
		return engine.RoundResult{}, err
	}
	sw := engine.StartStopwatch()
	rng := engine.TrialRNG(spec.Seed, spec.Trial)
	var (
		accept bool
		err    error
	)
	if cp, ok := b.p.(contextProtocol); ok {
		accept, err = cp.RunContext(ctx, spec.Sampler, rng)
	} else {
		accept, err = b.p.Run(spec.Sampler, rng)
	}
	if err != nil {
		return engine.RoundResult{}, err
	}
	samples := b.p.Players() * b.p.MaxSamplesPerPlayer()
	if ts, ok := b.p.(interface{ TotalSamples() int }); ok {
		samples = ts.TotalSamples()
	}
	return engine.RoundResult{
		Verdict: accept,
		Votes:   b.p.Players(),
		Samples: samples,
		Wall:    sw.Elapsed(),
	}, nil
}
