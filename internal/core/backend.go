package core

import (
	"context"
	"fmt"
	"math/rand/v2"
	"time"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// BackendFor adapts a Protocol to the engine's Backend interface. A
// *SMP gets the fully deterministic treatment — per-player streams
// derived from the round's public coin, so its verdicts are
// bit-reproducible against the networked and CONGEST backends — while
// any other Protocol runs against the per-trial stream (deterministic in
// (seed, trial), but with no cross-backend vote identity).
func BackendFor(p Protocol) (engine.Backend, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil protocol")
	}
	if smp, ok := p.(*SMP); ok {
		return &smpBackend{p: smp}, nil
	}
	return &protocolBackend{p: p}, nil
}

// smpBackend is the in-process SMP execution backend: one RunRound is one
// referee-model round with canonical engine RNG streams.
type smpBackend struct {
	p *SMP
}

// Players implements engine.Backend.
func (b *smpBackend) Players() int { return b.p.Players() }

// RunRound implements engine.Backend.
func (b *smpBackend) RunRound(ctx context.Context, spec engine.RoundSpec) (engine.RoundResult, error) {
	if err := ctx.Err(); err != nil {
		return engine.RoundResult{}, err
	}
	start := time.Now()
	shared := engine.SharedSeed(spec.Seed, spec.Trial)
	accept, err := b.p.RunSeeded(spec.Sampler, shared)
	if err != nil {
		return engine.RoundResult{}, err
	}
	return engine.RoundResult{
		Verdict:  accept,
		Votes:    b.p.Players(),
		Messages: b.p.Players(),
		Samples:  b.p.TotalSamples(),
		Wall:     time.Since(start),
	}, nil
}

// contextProtocol is the optional context-aware run surface a Protocol
// may expose (network.Cluster does); the generic backend prefers it so
// driver cancellation reaches mid-round waits.
type contextProtocol interface {
	RunContext(ctx context.Context, sampler dist.Sampler, rng *rand.Rand) (bool, error)
}

// protocolBackend runs any Protocol against the engine's per-trial
// stream.
type protocolBackend struct {
	p Protocol
}

// Players implements engine.Backend.
func (b *protocolBackend) Players() int { return b.p.Players() }

// RunRound implements engine.Backend.
func (b *protocolBackend) RunRound(ctx context.Context, spec engine.RoundSpec) (engine.RoundResult, error) {
	if err := ctx.Err(); err != nil {
		return engine.RoundResult{}, err
	}
	start := time.Now()
	rng := engine.TrialRNG(spec.Seed, spec.Trial)
	var (
		accept bool
		err    error
	)
	if cp, ok := b.p.(contextProtocol); ok {
		accept, err = cp.RunContext(ctx, spec.Sampler, rng)
	} else {
		accept, err = b.p.Run(spec.Sampler, rng)
	}
	if err != nil {
		return engine.RoundResult{}, err
	}
	samples := b.p.Players() * b.p.MaxSamplesPerPlayer()
	if ts, ok := b.p.(interface{ TotalSamples() int }); ok {
		samples = ts.TotalSamples()
	}
	return engine.RoundResult{
		Verdict: accept,
		Votes:   b.p.Players(),
		Samples: samples,
		Wall:    time.Since(start),
	}, nil
}
