package core

import (
	"fmt"
)

// DecisionRule is a Boolean decision function f: {0,1}^k -> {0,1} applied
// by the referee to single-bit messages. Implementations must be pure
// functions of the bit vector.
type DecisionRule interface {
	// Decide returns the referee's output; bits[i] is player i's bit with
	// true = accept.
	Decide(bits []bool) (bool, error)
	// Name identifies the rule in experiment tables.
	Name() string
}

// Verify interface compliance.
var (
	_ DecisionRule = ANDRule{}
	_ DecisionRule = ORRule{}
	_ DecisionRule = ThresholdRule{}
	_ DecisionRule = MajorityRule{}
	_ DecisionRule = FuncRule{}
)

// ANDRule accepts iff every player accepts — the fully local decision rule
// of Theorem 1.2: any single rejecting player vetoes.
type ANDRule struct{}

// Decide implements DecisionRule.
func (ANDRule) Decide(bits []bool) (bool, error) {
	if len(bits) == 0 {
		return false, fmt.Errorf("core: AND of zero bits")
	}
	for _, b := range bits {
		if !b {
			return false, nil
		}
	}
	return true, nil
}

// Name implements DecisionRule.
func (ANDRule) Name() string { return "and" }

// ORRule accepts iff at least one player accepts.
type ORRule struct{}

// Decide implements DecisionRule.
func (ORRule) Decide(bits []bool) (bool, error) {
	if len(bits) == 0 {
		return false, fmt.Errorf("core: OR of zero bits")
	}
	for _, b := range bits {
		if b {
			return true, nil
		}
	}
	return false, nil
}

// Name implements DecisionRule.
func (ORRule) Name() string { return "or" }

// ThresholdRule rejects iff at least T players reject — the T-threshold
// rule of Theorem 1.3 (in the paper's indexing, f(x) = 1 exactly when
// sum x_i >= k - T + 1 for rejection threshold T). T = 1 recovers ANDRule.
type ThresholdRule struct {
	// T is the number of rejecting players that triggers rejection; must
	// be at least 1.
	T int
}

// Decide implements DecisionRule.
func (r ThresholdRule) Decide(bits []bool) (bool, error) {
	if len(bits) == 0 {
		return false, fmt.Errorf("core: threshold rule over zero bits")
	}
	if r.T < 1 {
		return false, fmt.Errorf("core: threshold rule with T=%d", r.T)
	}
	rejections := 0
	for _, b := range bits {
		if !b {
			rejections++
		}
	}
	return rejections < r.T, nil
}

// Name implements DecisionRule.
func (r ThresholdRule) Name() string { return fmt.Sprintf("threshold(T=%d)", r.T) }

// MajorityRule rejects iff a strict majority of players reject.
type MajorityRule struct{}

// Decide implements DecisionRule.
func (MajorityRule) Decide(bits []bool) (bool, error) {
	if len(bits) == 0 {
		return false, fmt.Errorf("core: majority of zero bits")
	}
	return ThresholdRule{T: len(bits)/2 + 1}.Decide(bits)
}

// Name implements DecisionRule.
func (MajorityRule) Name() string { return "majority" }

// FuncRule wraps an arbitrary decision function — the "any decision rule"
// regime of Theorem 1.1.
type FuncRule struct {
	F     func(bits []bool) bool
	Label string
}

// Decide implements DecisionRule.
func (r FuncRule) Decide(bits []bool) (bool, error) {
	if r.F == nil {
		return false, fmt.Errorf("core: FuncRule with nil function")
	}
	if len(bits) == 0 {
		return false, fmt.Errorf("core: decision over zero bits")
	}
	return r.F(bits), nil
}

// Name implements DecisionRule.
func (r FuncRule) Name() string {
	if r.Label == "" {
		return "func"
	}
	return r.Label
}

// BitReferee lifts a DecisionRule to the Referee interface, reading bit 0
// of every message.
type BitReferee struct {
	Rule DecisionRule
}

var (
	_ Referee     = BitReferee{}
	_ bitsDecider = BitReferee{}
)

// bitsDecider is the allocation-free referee path the SMP scratch runner
// probes for: decide into a caller-owned bit buffer instead of a fresh
// slice per round.
type bitsDecider interface {
	decideBits(msgs []Message, bits []bool) (bool, error)
}

// Decide implements Referee.
func (r BitReferee) Decide(msgs []Message) (bool, error) {
	return r.decideBits(msgs, make([]bool, len(msgs)))
}

// decideBits implements bitsDecider; bits must hold len(msgs) entries.
func (r BitReferee) decideBits(msgs []Message, bits []bool) (bool, error) {
	if r.Rule == nil {
		return false, fmt.Errorf("core: BitReferee with nil rule")
	}
	bits = bits[:len(msgs)]
	for i, m := range msgs {
		bits[i] = m.Bit()
	}
	return r.Rule.Decide(bits)
}

// ThresholdShape classifies a referee as a T-rejection-threshold rule
// over k single-bit votes: when ok, the referee's Decide over any full
// k-vote slate equals "reject iff at least T players reject". All four
// named rules reduce to this shape (AND is T=1, OR is T=k, Majority is
// T=k/2+1), which is what lets the networked referee evaluate a whole
// batch of verdicts word-parallel over packed vote bitsets instead of
// expanding every trial to a []bool. FuncRule and non-BitReferee
// referees are opaque and return ok=false.
func ThresholdShape(r Referee, k int) (t int, ok bool) {
	if k < 1 {
		return 0, false
	}
	br, isBits := r.(BitReferee)
	if !isBits {
		return 0, false
	}
	switch rule := br.Rule.(type) {
	case ANDRule:
		return 1, true
	case ORRule:
		return k, true
	case MajorityRule:
		return k/2 + 1, true
	case ThresholdRule:
		if rule.T < 1 {
			return 0, false
		}
		return rule.T, true
	default:
		return 0, false
	}
}

// CountRejections returns the number of false entries, the referee-side
// statistic of the threshold rule.
func CountRejections(bits []bool) int {
	rejections := 0
	for _, b := range bits {
		if !b {
			rejections++
		}
	}
	return rejections
}
