package core

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// ThresholdTesterConfig configures the Fischer-Meir-Oshman-style
// collision/threshold tester (PODC 2018): every player runs a local
// collision test on its q samples and votes, and the referee rejects iff at
// least T players voted reject.
type ThresholdTesterConfig struct {
	// N is the domain size.
	N int
	// K is the number of players.
	K int
	// Q is the per-player sample count.
	Q int
	// Eps is the proximity parameter.
	Eps float64
	// T is the referee's rejection threshold; T = 1 is the AND rule.
	// Zero selects DefaultThresholdT(K).
	T int
}

// DefaultThresholdT returns the referee threshold that makes the tester
// sample-optimal: roughly k/2, so the local votes may be nearly balanced
// and each player only needs a Theta(1/sqrt(k))-standard-deviation signal.
// This is how the protocol reaches q = O(sqrt(n/k)/eps^2), the rate that
// Theorem 1.1 proves optimal.
func DefaultThresholdT(k int) int {
	t := k / 2
	if t < 1 {
		t = 1
	}
	return t
}

// LocalAlphaForThreshold returns the per-player false-alarm probability
// alpha used by the local rule so that, under the uniform distribution, the
// number of rejecting players stays below the referee threshold T whp,
// while leaving only a fluctuation-sized margin: alpha = t0/k with
// t0 = max(T/4, T - 1.5 sqrt(T)). The sqrt(T) margin is the point of the
// construction — a constant-fraction margin would force each player to
// carry a constant-sigma signal and forfeit the sqrt(k) parallel gain,
// whereas a ~2-sigma margin (the rejection count under uniform is a
// Binomial(k, alpha) with standard deviation about sqrt(T/2)) lets
// per-player signals be as weak as Theta(1/sqrt(k)) sigmas when T ~ k/2.
// For T = 1 it degrades gracefully to alpha = 1/(4k), the Markov-style AND
// regime in which no player may ever cry wolf.
func LocalAlphaForThreshold(k, t int) float64 {
	tf := float64(t)
	t0 := math.Max(tf/4, tf-1.5*math.Sqrt(tf))
	alpha := t0 / float64(k)
	if alpha < 1e-9 {
		alpha = 1e-9
	}
	if alpha > 0.5 {
		alpha = 0.5
	}
	return alpha
}

// NewThresholdTester builds the tester. The local rule is a collision count
// with a Poisson-tail threshold at the LocalAlphaForThreshold quantile of
// the uniform null; the referee is ThresholdRule{T}.
func NewThresholdTester(cfg ThresholdTesterConfig) (*SMP, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("core: threshold tester over domain %d", cfg.N)
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("core: threshold tester with %d players", cfg.K)
	}
	if cfg.Q < 2 {
		return nil, fmt.Errorf("core: threshold tester needs q >= 2 per player, got %d", cfg.Q)
	}
	if cfg.Eps <= 0 || cfg.Eps > 2 {
		return nil, fmt.Errorf("core: threshold tester eps %v outside (0,2]", cfg.Eps)
	}
	t := cfg.T
	if t == 0 {
		t = DefaultThresholdT(cfg.K)
	}
	if t < 1 || t > cfg.K {
		return nil, fmt.Errorf("core: referee threshold %d outside [1,%d]", t, cfg.K)
	}
	alpha := LocalAlphaForThreshold(cfg.K, t)
	local, err := newCollisionVoteRule(cfg.N, cfg.Q, alpha)
	if err != nil {
		return nil, err
	}
	return NewSMP(cfg.K, cfg.Q, local, BitReferee{Rule: ThresholdRule{T: t}})
}

// NewANDTester builds the fully local variant: referee threshold T = 1, so
// a single rejecting player rejects the whole network. Theorem 1.2 proves
// this rule costs q = Omega(sqrt(n)/(log^2(k) eps^2)) — almost no saving
// over centralized unless k is exponential in 1/eps.
func NewANDTester(n, k, q int, eps float64) (*SMP, error) {
	return NewThresholdTester(ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps, T: 1})
}

// RecommendedThresholdSamples returns the per-player sample count at which
// the default threshold tester separates with probability 2/3:
// c sqrt(n/k)/eps^2, the rate matched by the Theorem 1.1 lower bound. The
// constant is validated by experiment E1.
func RecommendedThresholdSamples(n, k int, eps float64) int {
	q := int(math.Ceil(10*math.Sqrt(float64(n)/float64(k))/(eps*eps))) + 2
	return q
}

// NewAsymmetricThresholdTester builds the Section 6.2 variant in which
// player i draws qs[i] samples (rate T_i times a common deadline tau). The
// local collision rule thresholds each player's count against the Poisson
// tail of its own expected collision mass.
func NewAsymmetricThresholdTester(n int, qs []int, eps float64, t int) (*SMP, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: asymmetric tester over domain %d", n)
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("core: asymmetric tester with zero players")
	}
	if eps <= 0 || eps > 2 {
		return nil, fmt.Errorf("core: asymmetric tester eps %v outside (0,2]", eps)
	}
	k := len(qs)
	if t == 0 {
		t = DefaultThresholdT(k)
	}
	if t < 1 || t > k {
		return nil, fmt.Errorf("core: referee threshold %d outside [1,%d]", t, k)
	}
	alpha := LocalAlphaForThreshold(k, t)
	// Precompute one vote rule per player, since lambda depends on q_i.
	rules := make([]*collisionVoteRule, k)
	for i, q := range qs {
		if q < 0 {
			return nil, fmt.Errorf("core: player %d with %d samples", i, q)
		}
		rule, err := newCollisionVoteRule(n, q, alpha)
		if err != nil {
			return nil, err
		}
		rules[i] = rule
	}
	local := RuleFunc(func(player int, samples []int, shared uint64, private *rand.Rand) (Message, error) {
		return rules[player].Message(player, samples, shared, private)
	})
	return NewAsymmetricSMP(qs, local, BitReferee{Rule: ThresholdRule{T: t}})
}
