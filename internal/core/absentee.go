package core

import "fmt"

// AbsenteePolicy says how a fault-tolerant referee treats players whose
// vote never arrived (crashed node, dropped connection, timed-out
// straggler). The paper's referee model assumes all k players report;
// the threshold-family rules degrade gracefully when a few do not, and
// the policy pins down the exact semantics of that degradation.
type AbsenteePolicy int

// The absentee policies, from "defer to the rule" to the three concrete
// treatments.
const (
	// AbsenteeDefault defers to the decision rule's own advice (see
	// AbsenteeAdvisor); rules without advice fall back to AbsenteeReject,
	// the conservative alarm-biased choice.
	AbsenteeDefault AbsenteePolicy = iota
	// AbsenteeReject counts a missing vote as a rejection.
	AbsenteeReject
	// AbsenteeAccept counts a missing vote as an acceptance: a crashed
	// sensor cannot raise the alarm.
	AbsenteeAccept
	// AbsenteeOmit decides over the received votes only, shrinking the
	// effective k for the round.
	AbsenteeOmit
)

// String implements fmt.Stringer for experiment tables and logs.
func (p AbsenteePolicy) String() string {
	switch p {
	case AbsenteeDefault:
		return "default"
	case AbsenteeReject:
		return "reject"
	case AbsenteeAccept:
		return "accept"
	case AbsenteeOmit:
		return "omit"
	default:
		return fmt.Sprintf("AbsenteePolicy(%d)", int(p))
	}
}

// Valid reports whether p is one of the defined policies.
func (p AbsenteePolicy) Valid() bool {
	return p >= AbsenteeDefault && p <= AbsenteeOmit
}

// AbsenteeAdvisor is an optional DecisionRule / Referee extension: rules
// that know their fault-tolerant default implement it, and a referee
// configured with AbsenteeDefault consults it before falling back to
// AbsenteeReject.
type AbsenteeAdvisor interface {
	// Absentee returns the rule's advised treatment of missing votes.
	Absentee() AbsenteePolicy
}

// Absentee implements AbsenteeAdvisor: the AND rule is the T=1 threshold
// rule, where only an explicit rejection vetoes, so a missing vote counts
// as an acceptance.
func (ANDRule) Absentee() AbsenteePolicy { return AbsenteeAccept }

// Absentee implements AbsenteeAdvisor: under OR only an explicit
// acceptance saves the round, so a missing vote counts as a rejection.
func (ORRule) Absentee() AbsenteePolicy { return AbsenteeReject }

// Absentee implements AbsenteeAdvisor: the T-threshold rule rejects when
// at least T players explicitly reject, so a straggler cannot push the
// count over the threshold — missing votes count as acceptances. This is
// exactly the slack that makes Theorem 1.3's rule deployable: up to f < T
// crashed players cannot flip a uniform input to a spurious alarm.
func (ThresholdRule) Absentee() AbsenteePolicy { return AbsenteeAccept }

// Absentee implements AbsenteeAdvisor: majority is naturally a relative
// rule, so it decides over the votes actually received.
func (MajorityRule) Absentee() AbsenteePolicy { return AbsenteeOmit }

// Absentee implements AbsenteeAdvisor by forwarding the wrapped rule's
// advice; rules without advice yield AbsenteeDefault.
func (r BitReferee) Absentee() AbsenteePolicy {
	if a, ok := r.Rule.(AbsenteeAdvisor); ok {
		return a.Absentee()
	}
	return AbsenteeDefault
}

// ResolveAbsentee returns the effective policy: an explicit policy wins,
// AbsenteeDefault consults the referee's advice, and anything unresolved
// falls back to AbsenteeReject.
func ResolveAbsentee(p AbsenteePolicy, ref Referee) AbsenteePolicy {
	if p != AbsenteeDefault {
		return p
	}
	if a, ok := ref.(AbsenteeAdvisor); ok {
		if q := a.Absentee(); q != AbsenteeDefault {
			return q
		}
	}
	return AbsenteeReject
}
