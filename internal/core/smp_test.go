package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

func testRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xabcdef))
}

func constRule(m Message) LocalRule {
	return RuleFunc(func(int, []int, uint64, *rand.Rand) (Message, error) {
		return m, nil
	})
}

func uniformSampler(t *testing.T, n int) dist.Sampler {
	t.Helper()
	u, err := dist.Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dist.NewAliasSampler(u)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSMPValidation(t *testing.T) {
	rule := constRule(Accept)
	ref := BitReferee{Rule: ANDRule{}}
	if _, err := NewSMP(0, 1, rule, ref); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewSMP(2, -1, rule, ref); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := NewSMP(2, 1, nil, ref); err == nil {
		t.Error("nil rule accepted")
	}
	if _, err := NewSMP(2, 1, rule, nil); err == nil {
		t.Error("nil referee accepted")
	}
	if _, err := NewAsymmetricSMP(nil, rule, ref); err == nil {
		t.Error("zero players accepted")
	}
	if _, err := NewAsymmetricSMP([]int{1, -2}, rule, ref); err == nil {
		t.Error("negative per-player q accepted")
	}
}

func TestSMPAccessors(t *testing.T) {
	p, err := NewAsymmetricSMP([]int{3, 5, 2}, constRule(Accept), BitReferee{Rule: ANDRule{}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Players() != 3 || p.MaxSamplesPerPlayer() != 5 || p.TotalSamples() != 10 {
		t.Errorf("accessors: %d %d %d", p.Players(), p.MaxSamplesPerPlayer(), p.TotalSamples())
	}
	if p.Local() == nil {
		t.Error("Local returned nil")
	}
}

func TestSMPDoesNotAliasQs(t *testing.T) {
	qs := []int{1, 2}
	p, err := NewAsymmetricSMP(qs, constRule(Accept), BitReferee{Rule: ANDRule{}})
	if err != nil {
		t.Fatal(err)
	}
	qs[0] = 99
	if p.MaxSamplesPerPlayer() != 2 {
		t.Error("SMP aliased the qs slice")
	}
}

func TestSMPRunsRuleAndReferee(t *testing.T) {
	// Players 0 and 2 accept, player 1 rejects; AND must reject, OR accept,
	// threshold T=2 accept.
	rule := RuleFunc(func(player int, _ []int, _ uint64, _ *rand.Rand) (Message, error) {
		if player == 1 {
			return Reject, nil
		}
		return Accept, nil
	})
	s := uniformSampler(t, 4)
	for _, tt := range []struct {
		rule DecisionRule
		want bool
	}{
		{rule: ANDRule{}, want: false},
		{rule: ORRule{}, want: true},
		{rule: ThresholdRule{T: 2}, want: true},
	} {
		p, err := NewSMP(3, 2, rule, BitReferee{Rule: tt.rule})
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Run(s, testRand(1))
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("%s: got %v, want %v", tt.rule.Name(), got, tt.want)
		}
	}
}

func TestSMPSampleCountsPerPlayer(t *testing.T) {
	var seen []int
	rule := RuleFunc(func(_ int, samples []int, _ uint64, _ *rand.Rand) (Message, error) {
		seen = append(seen, len(samples))
		return Accept, nil
	})
	p, err := NewAsymmetricSMP([]int{4, 0, 7}, rule, BitReferee{Rule: ANDRule{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(uniformSampler(t, 8), testRand(2)); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 4 || seen[1] != 0 || seen[2] != 7 {
		t.Errorf("per-player sample counts: %v", seen)
	}
}

func TestSMPSharedSeedConsistentWithinRun(t *testing.T) {
	var seeds []uint64
	rule := RuleFunc(func(_ int, _ []int, shared uint64, _ *rand.Rand) (Message, error) {
		seeds = append(seeds, shared)
		return Accept, nil
	})
	p, err := NewSMP(5, 1, rule, BitReferee{Rule: ANDRule{}})
	if err != nil {
		t.Fatal(err)
	}
	rng := testRand(3)
	if _, err := p.Run(uniformSampler(t, 4), rng); err != nil {
		t.Fatal(err)
	}
	first := seeds
	seeds = nil
	if _, err := p.Run(uniformSampler(t, 4), rng); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(first); i++ {
		if first[i] != first[0] {
			t.Fatalf("players saw different shared seeds within a run: %v", first)
		}
	}
	if len(seeds) == 0 || seeds[0] == first[0] {
		t.Error("shared seed did not refresh across runs")
	}
}

func TestSMPRunValidation(t *testing.T) {
	p, err := NewSMP(1, 1, constRule(Accept), BitReferee{Rule: ANDRule{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(nil, testRand(1)); err == nil {
		t.Error("nil sampler accepted")
	}
	if _, err := p.Run(uniformSampler(t, 2), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestSMPDeterministicGivenRng(t *testing.T) {
	p, err := NewSMP(4, 3, RuleFunc(func(_ int, samples []int, _ uint64, _ *rand.Rand) (Message, error) {
		if samples[0]%2 == 0 {
			return Accept, nil
		}
		return Reject, nil
	}), BitReferee{Rule: MajorityRule{}})
	if err != nil {
		t.Fatal(err)
	}
	s := uniformSampler(t, 16)
	var a, b []bool
	rng := testRand(5)
	for i := 0; i < 20; i++ {
		v, err := p.Run(s, rng)
		if err != nil {
			t.Fatal(err)
		}
		a = append(a, v)
	}
	rng = testRand(5)
	for i := 0; i < 20; i++ {
		v, err := p.Run(s, rng)
		if err != nil {
			t.Fatal(err)
		}
		b = append(b, v)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d", i)
		}
	}
}

func TestEstimateAcceptance(t *testing.T) {
	// A rule accepting iff its single sample is even: over uniform [4],
	// each player accepts w.p. 1/2; with one player and the AND rule the
	// protocol accepts w.p. 1/2.
	rule := RuleFunc(func(_ int, samples []int, _ uint64, _ *rand.Rand) (Message, error) {
		if samples[0]%2 == 0 {
			return Accept, nil
		}
		return Reject, nil
	})
	p, err := NewSMP(1, 1, rule, BitReferee{Rule: ANDRule{}})
	if err != nil {
		t.Fatal(err)
	}
	u, _ := dist.Uniform(4)
	est, err := EstimateAcceptance(p, u, 20000, stats.EstimateOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.P-0.5) > 0.02 {
		t.Errorf("acceptance %v, want ~0.5", est.P)
	}
	if _, err := EstimateAcceptance(nil, u, 10, stats.EstimateOptions{}); err == nil {
		t.Error("nil protocol accepted")
	}
}

func TestEstimateAcceptanceSurfacesRunErrors(t *testing.T) {
	bad := RuleFunc(func(int, []int, uint64, *rand.Rand) (Message, error) {
		return Reject, errBoom
	})
	p, err := NewSMP(1, 1, bad, BitReferee{Rule: ANDRule{}})
	if err != nil {
		t.Fatal(err)
	}
	u, _ := dist.Uniform(2)
	if _, err := EstimateAcceptance(p, u, 100, stats.EstimateOptions{}); err == nil {
		t.Error("run error swallowed")
	}
}

var errBoom = errString("boom")

type errString string

func (e errString) Error() string { return string(e) }

func TestSeparates(t *testing.T) {
	// Accept iff sample < n/2: distinguishes uniform-on-lower-half from
	// uniform-on-upper-half perfectly.
	rule := RuleFunc(func(_ int, samples []int, _ uint64, _ *rand.Rand) (Message, error) {
		if samples[0] < 8 {
			return Accept, nil
		}
		return Reject, nil
	})
	p, err := NewSMP(1, 1, rule, BitReferee{Rule: ANDRule{}})
	if err != nil {
		t.Fatal(err)
	}
	lower, _ := dist.SparseSupport(16, 8)
	upperProbs := make([]float64, 16)
	for i := 8; i < 16; i++ {
		upperProbs[i] = 0.125
	}
	upper, _ := dist.FromProbs(upperProbs)
	ok, pNull, pFar, err := Separates(p, lower, upper, 0.99, 500, stats.EstimateOptions{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || pNull < 0.99 || pFar > 0.01 {
		t.Errorf("separation failed: %v %v %v", ok, pNull, pFar)
	}
	// And the reverse orientation must fail.
	ok, _, _, err = Separates(p, upper, lower, 0.99, 500, stats.EstimateOptions{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("inverted separation reported success")
	}
}
