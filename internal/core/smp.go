package core

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// Protocol is a complete distributed tester: one Run draws fresh samples
// for every player and returns the referee's verdict.
type Protocol interface {
	// Run executes the protocol once against the unknown distribution
	// represented by the sampler; true means accept.
	Run(sampler dist.Sampler, rng *rand.Rand) (bool, error)
	// Players returns k.
	Players() int
	// MaxSamplesPerPlayer returns the largest per-player sample count.
	MaxSamplesPerPlayer() int
}

// SMP is the simultaneous-message protocol runner: k players with
// (possibly heterogeneous) sample counts, one LocalRule, one Referee, and a
// fresh public-coin seed per run.
type SMP struct {
	qs      []int
	local   LocalRule
	referee Referee
}

var _ Protocol = (*SMP)(nil)

// NewSMP builds a protocol with k players of q samples each.
func NewSMP(k, q int, local LocalRule, referee Referee) (*SMP, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: protocol with %d players", k)
	}
	if q < 0 {
		return nil, fmt.Errorf("core: protocol with %d samples per player", q)
	}
	qs := make([]int, k)
	for i := range qs {
		qs[i] = q
	}
	return NewAsymmetricSMP(qs, local, referee)
}

// NewAsymmetricSMP builds a protocol where player i draws qs[i] samples —
// the asymmetric-cost model of the paper's Section 6.2.
func NewAsymmetricSMP(qs []int, local LocalRule, referee Referee) (*SMP, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("core: protocol with zero players")
	}
	for i, q := range qs {
		if q < 0 {
			return nil, fmt.Errorf("core: player %d with %d samples", i, q)
		}
	}
	if local == nil {
		return nil, fmt.Errorf("core: nil local rule")
	}
	if referee == nil {
		return nil, fmt.Errorf("core: nil referee")
	}
	cp := make([]int, len(qs))
	copy(cp, qs)
	return &SMP{qs: cp, local: local, referee: referee}, nil
}

// Players returns k.
func (p *SMP) Players() int { return len(p.qs) }

// MaxSamplesPerPlayer returns max_i q_i.
func (p *SMP) MaxSamplesPerPlayer() int {
	m := 0
	for _, q := range p.qs {
		if q > m {
			m = q
		}
	}
	return m
}

// TotalSamples returns sum_i q_i.
func (p *SMP) TotalSamples() int {
	total := 0
	for _, q := range p.qs {
		total += q
	}
	return total
}

// Local returns the protocol's local rule.
func (p *SMP) Local() LocalRule { return p.local }

// RunMessages executes one round and returns the raw messages, for
// referees that need more than a verdict (e.g. learning).
func (p *SMP) RunMessages(sampler dist.Sampler, rng *rand.Rand) ([]Message, error) {
	if sampler == nil {
		return nil, fmt.Errorf("core: nil sampler")
	}
	if rng == nil {
		return nil, fmt.Errorf("core: nil rng")
	}
	shared := rng.Uint64()
	msgs := make([]Message, len(p.qs))
	buf := make([]int, p.MaxSamplesPerPlayer())
	for i, q := range p.qs {
		samples := buf[:q]
		dist.SampleInto(sampler, samples, rng)
		m, err := p.local.Message(i, samples, shared, rng)
		if err != nil {
			return nil, fmt.Errorf("core: player %d: %w", i, err)
		}
		msgs[i] = m
	}
	return msgs, nil
}

// Run executes one round end to end.
func (p *SMP) Run(sampler dist.Sampler, rng *rand.Rand) (bool, error) {
	msgs, err := p.RunMessages(sampler, rng)
	if err != nil {
		return false, err
	}
	return p.referee.Decide(msgs)
}

// EstimateAcceptance measures Pr[protocol accepts] against the given
// distribution by Monte Carlo, with a Wilson confidence interval.
func EstimateAcceptance(p Protocol, d dist.Dist, trials int, opts stats.EstimateOptions) (stats.SuccessEstimate, error) {
	if p == nil {
		return stats.SuccessEstimate{}, fmt.Errorf("core: nil protocol")
	}
	sampler, err := dist.NewAliasSampler(d)
	if err != nil {
		return stats.SuccessEstimate{}, err
	}
	// Trials run on several goroutines; collect the first error safely.
	var (
		mu       sync.Mutex
		firstErr error
	)
	est, err := stats.EstimateSuccess(trials, func(rng *rand.Rand) bool {
		ok, runErr := p.Run(sampler, rng)
		if runErr != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = runErr
			}
			mu.Unlock()
		}
		return ok
	}, opts)
	if err != nil {
		return stats.SuccessEstimate{}, err
	}
	if firstErr != nil {
		return stats.SuccessEstimate{}, firstErr
	}
	return est, nil
}

// Separates reports whether the protocol both accepts `null` and rejects
// `far` with probability at least target (e.g. 2/3), with the measured
// acceptance probabilities.
func Separates(p Protocol, null, far dist.Dist, target float64, trials int, opts stats.EstimateOptions) (ok bool, acceptNull, acceptFar float64, err error) {
	en, err := EstimateAcceptance(p, null, trials, opts)
	if err != nil {
		return false, 0, 0, err
	}
	optsFar := opts
	optsFar.Seed ^= 0x517cc1b727220a95
	ef, err := EstimateAcceptance(p, far, trials, optsFar)
	if err != nil {
		return false, 0, 0, err
	}
	return en.P >= target && 1-ef.P >= target, en.P, ef.P, nil
}
