package core

import (
	"context"
	"fmt"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// Protocol is a complete distributed tester: one Run draws fresh samples
// for every player and returns the referee's verdict.
type Protocol interface {
	// Run executes the protocol once against the unknown distribution
	// represented by the sampler; true means accept.
	Run(sampler dist.Sampler, rng *rand.Rand) (bool, error)
	// Players returns k.
	Players() int
	// MaxSamplesPerPlayer returns the largest per-player sample count.
	MaxSamplesPerPlayer() int
}

// SMP is the simultaneous-message protocol runner: k players with
// (possibly heterogeneous) sample counts, one LocalRule, one Referee, and a
// fresh public-coin seed per run.
type SMP struct {
	qs      []int
	local   LocalRule
	referee Referee
}

var _ Protocol = (*SMP)(nil)

// NewSMP builds a protocol with k players of q samples each.
func NewSMP(k, q int, local LocalRule, referee Referee) (*SMP, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: protocol with %d players", k)
	}
	if q < 0 {
		return nil, fmt.Errorf("core: protocol with %d samples per player", q)
	}
	qs := make([]int, k)
	for i := range qs {
		qs[i] = q
	}
	return NewAsymmetricSMP(qs, local, referee)
}

// NewAsymmetricSMP builds a protocol where player i draws qs[i] samples —
// the asymmetric-cost model of the paper's Section 6.2.
func NewAsymmetricSMP(qs []int, local LocalRule, referee Referee) (*SMP, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("core: protocol with zero players")
	}
	for i, q := range qs {
		if q < 0 {
			return nil, fmt.Errorf("core: player %d with %d samples", i, q)
		}
	}
	if local == nil {
		return nil, fmt.Errorf("core: nil local rule")
	}
	if referee == nil {
		return nil, fmt.Errorf("core: nil referee")
	}
	cp := make([]int, len(qs))
	copy(cp, qs)
	return &SMP{qs: cp, local: local, referee: referee}, nil
}

// Players returns k.
func (p *SMP) Players() int { return len(p.qs) }

// MaxSamplesPerPlayer returns max_i q_i.
func (p *SMP) MaxSamplesPerPlayer() int {
	m := 0
	for _, q := range p.qs {
		if q > m {
			m = q
		}
	}
	return m
}

// TotalSamples returns sum_i q_i.
func (p *SMP) TotalSamples() int {
	total := 0
	for _, q := range p.qs {
		total += q
	}
	return total
}

// Local returns the protocol's local rule.
func (p *SMP) Local() LocalRule { return p.local }

// RefereeFunc returns the protocol's referee.
func (p *SMP) RefereeFunc() Referee { return p.referee }

// RunMessages executes one round and returns the raw messages, for
// referees that need more than a verdict (e.g. learning). The public-coin
// seed is drawn from rng; everything else derives from that seed via
// RunMessagesSeeded.
func (p *SMP) RunMessages(sampler dist.Sampler, rng *rand.Rand) ([]Message, error) {
	if rng == nil {
		return nil, fmt.Errorf("core: nil rng")
	}
	return p.RunMessagesSeeded(sampler, rng.Uint64())
}

// RunMessagesSeeded executes one round with an explicit public-coin seed.
// Player i draws its samples and private coins from engine.NodeRNG(shared,
// i) — the same derivation a networked node applies to the ROUND frame
// and a CONGEST node to the broadcast seed — so rounds with equal shared
// seeds produce identical messages on every backend.
func (p *SMP) RunMessagesSeeded(sampler dist.Sampler, shared uint64) ([]Message, error) {
	msgs := make([]Message, len(p.qs))
	if err := p.runMessagesScratch(sampler, shared, msgs, p.NewScratch()); err != nil {
		return nil, err
	}
	return msgs, nil
}

// Scratch is one worker's reusable per-round state for the batch vote
// path: the sample buffer every player's batch lands in and the
// reseedable per-player generator. One Scratch serves any number of
// sequential rounds; it must not be shared across goroutines.
type Scratch struct {
	buf   []int
	bits  []bool
	slate *Slate
	rng   *engine.ReusableRNG
}

// NewScratch sizes a Scratch for this protocol. When the referee decides
// over packed r-bit slates (SlateDecider), the scratch owns the slate so
// multi-bit rounds stay allocation-free like single-bit ones.
func (p *SMP) NewScratch() *Scratch {
	sc := &Scratch{
		buf:  make([]int, p.MaxSamplesPerPlayer()),
		bits: make([]bool, len(p.qs)),
		rng:  engine.NewReusableRNG(),
	}
	if _, ok := p.referee.(SlateDecider); ok {
		// An invalid width surfaces as an error on the allocating
		// fallback path instead of a panic here.
		sc.slate, _ = NewSlate(len(p.qs), p.local.Bits())
	}
	return sc
}

// runMessagesScratch is the batch vote path behind RunMessagesSeeded:
// every player's samples are drawn in one dist.SampleInto batch into the
// scratch buffer, and the per-player stream comes from the scratch's
// reseeded generator — the exact stream engine.NodeRNG would allocate,
// so scratch rounds are bit-identical to allocating ones.
func (p *SMP) runMessagesScratch(sampler dist.Sampler, shared uint64, msgs []Message, sc *Scratch) error {
	if sampler == nil {
		return fmt.Errorf("core: nil sampler")
	}
	for i, q := range p.qs {
		rng := sc.rng.SeedNode(shared, i)
		samples := sc.buf[:q]
		dist.SampleInto(sampler, samples, rng)
		m, err := p.local.Message(i, samples, shared, rng)
		if err != nil {
			return fmt.Errorf("core: player %d: %w", i, err)
		}
		msgs[i] = m
	}
	return nil
}

// runSeededScratch is RunSeeded over a reusable Scratch and message
// slice: zero allocations per round for bit-voting referees.
func (p *SMP) runSeededScratch(sampler dist.Sampler, shared uint64, msgs []Message, sc *Scratch) (bool, error) {
	if err := p.runMessagesScratch(sampler, shared, msgs, sc); err != nil {
		return false, err
	}
	if bd, ok := p.referee.(bitsDecider); ok {
		return bd.decideBits(msgs, sc.bits)
	}
	if sd, ok := p.referee.(SlateDecider); ok && sc.slate != nil {
		if err := sc.slate.SetMessages(msgs); err != nil {
			return false, err
		}
		return sd.DecideSlate(sc.slate)
	}
	return p.referee.Decide(msgs)
}

// Run executes one round end to end.
func (p *SMP) Run(sampler dist.Sampler, rng *rand.Rand) (bool, error) {
	msgs, err := p.RunMessages(sampler, rng)
	if err != nil {
		return false, err
	}
	return p.referee.Decide(msgs)
}

// RunSeeded executes one round end to end with an explicit public-coin
// seed; see RunMessagesSeeded for the derivation contract.
func (p *SMP) RunSeeded(sampler dist.Sampler, shared uint64) (bool, error) {
	msgs, err := p.RunMessagesSeeded(sampler, shared)
	if err != nil {
		return false, err
	}
	return p.referee.Decide(msgs)
}

// engineOptions maps the legacy estimation options onto the engine's.
func engineOptions(opts stats.EstimateOptions) engine.Options {
	return engine.Options{
		Workers:    opts.Parallelism,
		Confidence: opts.Confidence,
		Seed:       opts.Seed,
	}
}

// EstimateAcceptance measures Pr[protocol accepts] against the given
// distribution by Monte Carlo, with a Wilson confidence interval.
//
// This is a compatibility wrapper over the unified trial driver
// (internal/engine): trials run on the engine's worker pool, abort as
// soon as any trial errors, and take their randomness from the engine's
// (seed, trial, player) streams, so results no longer depend on
// Parallelism. New code should build a backend with BackendFor and call
// engine.Estimate (or dut.NewEngine) directly.
func EstimateAcceptance(p Protocol, d dist.Dist, trials int, opts stats.EstimateOptions) (stats.SuccessEstimate, error) {
	b, err := BackendFor(p)
	if err != nil {
		return stats.SuccessEstimate{}, err
	}
	src, err := engine.FromDist(d)
	if err != nil {
		return stats.SuccessEstimate{}, err
	}
	res, err := engine.Estimate(context.Background(), b, src, trials, engineOptions(opts))
	if err != nil {
		return stats.SuccessEstimate{}, err
	}
	return res.Estimate, nil
}

// Separates reports whether the protocol both accepts `null` and rejects
// `far` with probability at least target (e.g. 2/3), with the measured
// acceptance probabilities. The decision uses the Wilson interval bounds
// rather than the raw point estimates, so a borderline configuration
// whose intervals straddle the target reports ok=false (inconclusive)
// instead of flapping with the seed; engine.Separates exposes the full
// three-valued outcome.
//
// This is a compatibility wrapper over the unified trial driver; new
// code should use engine.Separates via BackendFor (or dut.NewEngine).
func Separates(p Protocol, null, far dist.Dist, target float64, trials int, opts stats.EstimateOptions) (ok bool, acceptNull, acceptFar float64, err error) {
	b, err := BackendFor(p)
	if err != nil {
		return false, 0, 0, err
	}
	nullSrc, err := engine.FromDist(null)
	if err != nil {
		return false, 0, 0, err
	}
	farSrc, err := engine.FromDist(far)
	if err != nil {
		return false, 0, 0, err
	}
	sep, err := engine.Separates(context.Background(), b, nullSrc, farSrc, target, trials, engineOptions(opts))
	if err != nil {
		return false, 0, 0, err
	}
	return sep.Outcome == engine.Separated, sep.Null.Estimate.P, sep.Far.Estimate.P, nil
}
