package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// GroupLearner is a distributed learning protocol for the task of the
// paper's Theorem 1.4: k players with q samples each send one bit, and the
// referee reconstructs an estimate of the unknown distribution.
//
// The players are partitioned into n groups; every player in group e sends
// the indicator "element e appeared among my q samples", an event of
// probability 1 - (1 - mu(e))^q. The referee inverts the per-group
// empirical frequency to an estimate of mu(e) and normalizes. With g
// players per group the per-element standard error is about
// sqrt(q mu(e)) / (q sqrt(g)), giving L1 error ~ n / sqrt(q k) overall —
// an upper bound of k = O(n^2/(q delta^2)) players for delta accuracy,
// to be compared against the Theorem 1.4 lower bound k = Omega(n^2/q^2).
type GroupLearner struct {
	n int
	k int
	q int
}

// NewGroupLearner validates the configuration; k should be a multiple of n
// (the remainder players join the first groups and only sharpen them).
func NewGroupLearner(n, k, q int) (*GroupLearner, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: learner over domain %d", n)
	}
	if k < n {
		return nil, fmt.Errorf("core: learner needs at least one player per element, got k=%d < n=%d", k, n)
	}
	if q < 1 {
		return nil, fmt.Errorf("core: learner with %d samples per player", q)
	}
	return &GroupLearner{n: n, k: k, q: q}, nil
}

// Players returns k.
func (g *GroupLearner) Players() int { return g.k }

// SamplesPerPlayer returns q.
func (g *GroupLearner) SamplesPerPlayer() int { return g.q }

// rule returns the indicator local rule.
func (g *GroupLearner) rule() LocalRule {
	return RuleFunc(func(player int, samples []int, _ uint64, _ *rand.Rand) (Message, error) {
		e := player % g.n
		for _, s := range samples {
			if s == e {
				return 1, nil
			}
		}
		return 0, nil
	})
}

// Learn runs the protocol once and returns the referee's estimate.
func (g *GroupLearner) Learn(sampler dist.Sampler, rng *rand.Rand) (dist.Dist, error) {
	smp, err := NewSMP(g.k, g.q, g.rule(), refereeNop{})
	if err != nil {
		return dist.Dist{}, err
	}
	msgs, err := smp.RunMessages(sampler, rng)
	if err != nil {
		return dist.Dist{}, err
	}
	ones := make([]int, g.n)
	sizes := make([]int, g.n)
	for player, m := range msgs {
		e := player % g.n
		sizes[e]++
		if m&1 == 1 {
			ones[e]++
		}
	}
	w := make([]float64, g.n)
	var total float64
	for e := 0; e < g.n; e++ {
		pHat := float64(ones[e]) / float64(sizes[e])
		// Invert p = 1 - (1 - mu)^q; clamp p away from 1 so the estimate
		// stays finite when every player in a group saw the element.
		if pHat > 1-1e-12 {
			pHat = 1 - 1e-12
		}
		mu := 1 - math.Pow(1-pHat, 1/float64(g.q))
		w[e] = mu
		total += mu
	}
	if total <= 0 {
		// Degenerate run (tiny q*k): fall back to the uniform prior rather
		// than failing, mirroring what a deployed learner would report
		// with no evidence.
		return dist.Uniform(g.n)
	}
	return dist.FromWeights(w)
}

// EstimateL1Error measures the expected L1 error of the learner against a
// known truth by Monte-Carlo.
func (g *GroupLearner) EstimateL1Error(truth dist.Dist, trials int, seed uint64) (float64, error) {
	if truth.N() != g.n {
		return 0, fmt.Errorf("core: truth domain %d, learner domain %d", truth.N(), g.n)
	}
	if trials <= 0 {
		return 0, fmt.Errorf("core: estimating with %d trials", trials)
	}
	sampler, err := dist.NewAliasSampler(truth)
	if err != nil {
		return 0, err
	}
	rng := engine.TrialRNG(seed, 0)
	var acc float64
	for i := 0; i < trials; i++ {
		est, err := g.Learn(sampler, rng)
		if err != nil {
			return 0, err
		}
		l1, err := dist.L1(est, truth)
		if err != nil {
			return 0, err
		}
		acc += l1
	}
	return acc / float64(trials), nil
}

// refereeNop satisfies Referee for message-collection runs that never
// decide.
type refereeNop struct{}

func (refereeNop) Decide([]Message) (bool, error) { return true, nil }
