package core

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// AmplifiedProtocol runs an inner 2/3-correct protocol an odd number of
// times and outputs the majority verdict, driving the error probability
// down exponentially (Chernoff): rounds = O(log(1/delta)) reaches failure
// probability delta. This is the standard amplification the paper's
// inequality (10) prices in its log(1/delta) term — and the referee-side
// counterpart of what the sensors example does by hand.
type AmplifiedProtocol struct {
	inner  Protocol
	rounds int
}

var _ Protocol = (*AmplifiedProtocol)(nil)

// Amplify wraps a protocol with majority voting over an odd number of
// rounds.
func Amplify(inner Protocol, rounds int) (*AmplifiedProtocol, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: amplifying a nil protocol")
	}
	if rounds < 1 || rounds%2 == 0 {
		return nil, fmt.Errorf("core: amplification needs an odd positive round count, got %d", rounds)
	}
	return &AmplifiedProtocol{inner: inner, rounds: rounds}, nil
}

// RoundsForFailure returns the odd round count sufficient for a
// 2/3-correct protocol to reach failure probability delta under majority
// voting, via the Chernoff bound exp(-rounds/18) on a mean-2/3 Binomial
// dipping below 1/2.
func RoundsForFailure(delta float64) (int, error) {
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("core: target failure probability %v outside (0,1)", delta)
	}
	rounds := int(math.Ceil(18 * math.Log(1/delta)))
	if rounds%2 == 0 {
		rounds++
	}
	if rounds < 1 {
		rounds = 1
	}
	return rounds, nil
}

// Players implements Protocol.
func (a *AmplifiedProtocol) Players() int { return a.inner.Players() }

// MaxSamplesPerPlayer implements Protocol: per-player cost scales with the
// round count (fresh samples each round).
func (a *AmplifiedProtocol) MaxSamplesPerPlayer() int {
	return a.inner.MaxSamplesPerPlayer() * a.rounds
}

// Rounds returns the amplification factor.
func (a *AmplifiedProtocol) Rounds() int { return a.rounds }

// Run implements Protocol by majority vote over the inner rounds. The
// rounds execute on the engine's trial driver (one engine trial per
// amplification round), deriving their seeds from one draw of rng and
// aborting on the first error.
func (a *AmplifiedProtocol) Run(sampler dist.Sampler, rng *rand.Rand) (bool, error) {
	if rng == nil {
		return false, fmt.Errorf("core: nil rng")
	}
	return a.RunContext(context.Background(), sampler, rng)
}

// RunContext is Run with cancellation: a cancelled context aborts the
// remaining amplification rounds.
func (a *AmplifiedProtocol) RunContext(ctx context.Context, sampler dist.Sampler, rng *rand.Rand) (bool, error) {
	if rng == nil {
		return false, fmt.Errorf("core: nil rng")
	}
	b, err := BackendFor(a.inner)
	if err != nil {
		return false, err
	}
	accept, _, err := engine.Amplify(ctx, b, engine.Fixed(sampler), a.rounds, engine.Options{Seed: rng.Uint64()})
	if err != nil {
		return false, err
	}
	return accept, nil
}
