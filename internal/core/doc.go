// Package core implements the paper's distributed distribution-testing
// model and the upper-bound protocols it is benchmarked against.
//
// # The model (Section 2 of the paper)
//
// k players each receive q iid samples from an unknown distribution mu over
// a universe of size n. Each player sends a short message (one bit in the
// basic model, up to 64 bits here) to a referee, who applies a decision
// function to the k messages and outputs accept ("mu satisfies the
// property") or reject ("mu is eps-far"). A protocol solves eps-uniformity
// testing if it accepts U_n with probability at least 2/3 and rejects every
// mu with ||mu - U_n||_1 >= eps with probability at least 2/3.
//
// The building blocks are:
//
//   - LocalRule: the per-player map from samples to a message (the Boolean
//     function G of the paper's Section 4).
//   - Referee: the decision function. Boolean single-bit decision rules —
//     AND, OR, T-threshold, majority, arbitrary — implement DecisionRule
//     and are lifted by BitReferee.
//   - SMP: the simultaneous-message protocol runner, supporting
//     heterogeneous per-player sample counts (the asymmetric-cost model of
//     Section 6.2) and shared randomness (a per-run public seed).
//
// # Protocols
//
//   - NewThresholdTester: the threshold-rule collision tester of
//     Fischer-Meir-Oshman (PODC 2018), sample-optimal per Theorem 1.1 with
//     q = O(sqrt(n/k)/eps^2).
//   - NewANDTester: the AND-rule (fully local) tester of the same paper,
//     whose per-player cost barely improves on centralized unless k is
//     exponential in 1/eps — the phenomenon quantified by Theorem 1.2.
//   - NewACTTester: the single-sample, l-bit public-coin tester in the
//     spirit of Acharya-Canonne-Tyagi (2018): players send a shared-
//     randomness bucket of their one sample, the referee collision-tests
//     the buckets; k = Theta(n/(2^{l/2} eps^2)) players suffice.
//   - NewGroupLearner: a distributed learner for the Theorem 1.4 task.
package core
