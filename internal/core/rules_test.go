package core

import (
	"testing"
	"testing/quick"
)

func TestANDRule(t *testing.T) {
	tests := []struct {
		name string
		bits []bool
		want bool
	}{
		{name: "all accept", bits: []bool{true, true, true}, want: true},
		{name: "one reject", bits: []bool{true, false, true}, want: false},
		{name: "all reject", bits: []bool{false, false}, want: false},
		{name: "single accept", bits: []bool{true}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ANDRule{}.Decide(tt.bits)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("AND(%v) = %v", tt.bits, got)
			}
		})
	}
	if _, err := (ANDRule{}).Decide(nil); err == nil {
		t.Error("AND of zero bits accepted")
	}
}

func TestORRule(t *testing.T) {
	got, err := ORRule{}.Decide([]bool{false, false, true})
	if err != nil || !got {
		t.Errorf("OR = %v, %v", got, err)
	}
	got, err = ORRule{}.Decide([]bool{false, false})
	if err != nil || got {
		t.Errorf("OR all-false = %v, %v", got, err)
	}
	if _, err := (ORRule{}).Decide(nil); err == nil {
		t.Error("OR of zero bits accepted")
	}
}

func TestThresholdRule(t *testing.T) {
	bits := []bool{false, false, true, true, true} // 2 rejections
	tests := []struct {
		T    int
		want bool
	}{
		{T: 1, want: false}, // >= 1 rejection -> reject
		{T: 2, want: false},
		{T: 3, want: true}, // only 2 rejections < 3
		{T: 5, want: true},
	}
	for _, tt := range tests {
		got, err := ThresholdRule{T: tt.T}.Decide(bits)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("T=%d: got %v, want %v", tt.T, got, tt.want)
		}
	}
	if _, err := (ThresholdRule{T: 0}).Decide(bits); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := (ThresholdRule{T: 1}).Decide(nil); err == nil {
		t.Error("zero bits accepted")
	}
}

func TestThresholdRuleT1EqualsAND(t *testing.T) {
	prop := func(raw uint8, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = raw&(1<<uint(i)) != 0
		}
		a, errA := ANDRule{}.Decide(bits)
		b, errB := ThresholdRule{T: 1}.Decide(bits)
		return errA == nil && errB == nil && a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMajorityRule(t *testing.T) {
	got, err := MajorityRule{}.Decide([]bool{true, true, false})
	if err != nil || !got {
		t.Errorf("majority accept case = %v, %v", got, err)
	}
	got, err = MajorityRule{}.Decide([]bool{true, false, false})
	if err != nil || got {
		t.Errorf("majority reject case = %v, %v", got, err)
	}
	// Even split: 2 rejections out of 4, threshold is 3 -> accept.
	got, err = MajorityRule{}.Decide([]bool{true, true, false, false})
	if err != nil || !got {
		t.Errorf("tie case = %v, %v", got, err)
	}
	if _, err := (MajorityRule{}).Decide(nil); err == nil {
		t.Error("zero bits accepted")
	}
}

func TestFuncRule(t *testing.T) {
	xor := FuncRule{F: func(bits []bool) bool {
		v := false
		for _, b := range bits {
			v = v != b
		}
		return v
	}, Label: "xor"}
	got, err := xor.Decide([]bool{true, false, true})
	if err != nil || got {
		t.Errorf("xor = %v, %v", got, err)
	}
	if xor.Name() != "xor" {
		t.Errorf("name = %q", xor.Name())
	}
	if (FuncRule{F: func([]bool) bool { return true }}).Name() != "func" {
		t.Error("default name wrong")
	}
	if _, err := (FuncRule{}).Decide([]bool{true}); err == nil {
		t.Error("nil function accepted")
	}
	if _, err := xor.Decide(nil); err == nil {
		t.Error("zero bits accepted")
	}
}

func TestRuleNames(t *testing.T) {
	if (ANDRule{}).Name() != "and" || (ORRule{}).Name() != "or" || (MajorityRule{}).Name() != "majority" {
		t.Error("rule names wrong")
	}
	if (ThresholdRule{T: 7}).Name() != "threshold(T=7)" {
		t.Errorf("threshold name = %q", (ThresholdRule{T: 7}).Name())
	}
}

func TestCountRejections(t *testing.T) {
	if CountRejections([]bool{true, false, false, true, false}) != 3 {
		t.Error("count wrong")
	}
	if CountRejections(nil) != 0 {
		t.Error("empty count wrong")
	}
}

func TestBitReferee(t *testing.T) {
	ref := BitReferee{Rule: ANDRule{}}
	got, err := ref.Decide([]Message{1, 1, 3}) // bit 0 set on all
	if err != nil || !got {
		t.Errorf("referee = %v, %v", got, err)
	}
	got, err = ref.Decide([]Message{1, 2}) // 2 has bit 0 clear
	if err != nil || got {
		t.Errorf("referee with reject = %v, %v", got, err)
	}
	if _, err := (BitReferee{}).Decide([]Message{1}); err == nil {
		t.Error("nil rule accepted")
	}
}

func TestMessageBit(t *testing.T) {
	if !Accept.Bit() || Reject.Bit() {
		t.Error("accept/reject bit conventions broken")
	}
	if !Message(0xFF).Bit() || Message(0xFE).Bit() {
		t.Error("bit reads more than bit 0")
	}
}
