package core

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
)

// HashRule is the public-coin local rule of the single-sample tester in the
// spirit of Acharya-Canonne-Tyagi (2018): every player holds one sample
// from a power-of-two domain [n] and sends the index of its bucket under a
// shared random balanced partition of [n] into B = 2^l buckets.
//
// The partition applies a pseudorandom permutation of [n] — a four-round
// Feistel network keyed by the shared seed, cycle-walked down to [n] —
// and then keeps the top l bits, yielding exactly n/B elements per bucket.
// All players of a run agree on the permutation. Because the partition is
// balanced, the bucket distribution is exactly uniform on [B] when the
// input is uniform on [n]; when the input is eps-far, a random partition
// retains an expected collision excess of about eps^2/n over 1/B. (A
// weaker structured hash, such as an affine map, provably fails here:
// paired +/- perturbations land in the same bucket and cancel.)
type HashRule struct {
	n       int
	bitsOut int
}

var _ LocalRule = (*HashRule)(nil)

// NewHashRule builds the rule for a power-of-two domain n and message
// length l with 1 <= l <= log2(n).
func NewHashRule(n, l int) (*HashRule, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("core: hash rule needs a power-of-two domain, got %d", n)
	}
	logN := bits.Len(uint(n)) - 1
	if l < 1 || l > logN {
		return nil, fmt.Errorf("core: hash rule message length %d outside [1,%d]", l, logN)
	}
	return &HashRule{n: n, bitsOut: l}, nil
}

// Bits implements LocalRule.
func (h *HashRule) Bits() int { return h.bitsOut }

// Buckets returns B = 2^l.
func (h *HashRule) Buckets() int { return 1 << h.bitsOut }

// Message implements LocalRule: it hashes the player's first sample. The
// rule is built for the single-sample regime; extra samples are ignored,
// matching the model of [ACT18] where each node holds exactly one draw.
func (h *HashRule) Message(_ int, samples []int, shared uint64, _ *rand.Rand) (Message, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("core: hash rule with no samples")
	}
	x := samples[0]
	if x < 0 || x >= h.n {
		return 0, fmt.Errorf("core: sample %d outside domain of size %d", x, h.n)
	}
	return Message(h.bucket(uint64(x), shared)), nil
}

// bucket applies the shared pseudorandom permutation and keeps the top l
// bits.
func (h *HashRule) bucket(x, shared uint64) uint64 {
	logN := bits.Len(uint(h.n)) - 1
	y := feistelPermute(x, logN, shared)
	return y >> uint(logN-h.bitsOut)
}

// feistelPermute is a keyed bijection of [0, 2^m): a four-round balanced
// Feistel network on 2*ceil(m/2) bits, cycle-walked back into the domain
// (at most one extra bit, so the expected walk length is under two).
func feistelPermute(x uint64, m int, seed uint64) uint64 {
	if m <= 0 {
		return x
	}
	half := (m + 1) / 2
	mask := (uint64(1) << half) - 1
	domain := uint64(1) << m
	y := x
	for {
		l := y >> half
		r := y & mask
		for round := 0; round < 4; round++ {
			//lint:ignore dut/seedpurity Feistel round keying, not stream derivation: the permutation must mix the seed into every round function
			l, r = r, l^(mix64(r^seed^uint64(round)*0x9e3779b97f4a7c15)&mask)
		}
		y = l<<half | r
		if y < domain {
			return y
		}
	}
}

// mix64 is the splitmix64 finalizer, a fast full-avalanche 64-bit mixer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CollisionReferee accepts iff the number of colliding message pairs is at
// most its threshold — a uniformity collision test over the bucket domain,
// applied to the k hashed single samples.
type CollisionReferee struct {
	buckets   int
	threshold float64
}

var _ Referee = (*CollisionReferee)(nil)

// NewCollisionReferee builds the referee for B buckets and k players with
// proximity eps over the original domain n. Under the uniform input the
// bucket histogram is exactly uniform, with expected collisions C(k,2)/B;
// under an eps-far input the expected excess collision probability is
// about eps^2/n, so the threshold splits the difference at
// C(k,2) (1/B + eps^2/(2n)).
func NewCollisionReferee(n, buckets, k int, eps float64) (*CollisionReferee, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("core: referee over %d buckets", buckets)
	}
	if k < 2 {
		return nil, fmt.Errorf("core: collision referee needs k >= 2, got %d", k)
	}
	if eps <= 0 || eps > 2 {
		return nil, fmt.Errorf("core: collision referee eps %v outside (0,2]", eps)
	}
	pairs := float64(k) * float64(k-1) / 2
	threshold := pairs * (1/float64(buckets) + eps*eps/(2*float64(n)))
	return &CollisionReferee{buckets: buckets, threshold: threshold}, nil
}

// Threshold returns the acceptance threshold on the collision count.
func (r *CollisionReferee) Threshold() float64 { return r.threshold }

// Decide implements Referee.
func (r *CollisionReferee) Decide(msgs []Message) (bool, error) {
	counts := make([]int64, r.buckets)
	for _, m := range msgs {
		b := uint64(m)
		if b >= uint64(r.buckets) {
			return false, fmt.Errorf("core: bucket message %d out of range %d", b, r.buckets)
		}
		counts[b]++
	}
	var coll int64
	for _, c := range counts {
		coll += c * (c - 1) / 2
	}
	return float64(coll) <= r.threshold, nil
}

// NewACTTester assembles the single-sample l-bit protocol: k players with
// one sample each, the shared-partition HashRule, and the collision
// referee. RecommendedACTPlayers gives the player count at which it
// separates, k = Theta(n / (2^{l/2} eps^2)).
func NewACTTester(n, k, l int, eps float64) (*SMP, error) {
	rule, err := NewHashRule(n, l)
	if err != nil {
		return nil, err
	}
	referee, err := NewCollisionReferee(n, rule.Buckets(), k, eps)
	if err != nil {
		return nil, err
	}
	return NewSMP(k, 1, rule, referee)
}

// RecommendedACTPlayers returns the player count at which the single-sample
// l-bit tester separates with probability 2/3; the constant is validated by
// experiment E11.
func RecommendedACTPlayers(n, l int, eps float64) int {
	return int(math.Ceil(8*float64(n)/(math.Pow(2, float64(l)/2)*eps*eps))) + 2
}
