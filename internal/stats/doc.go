// Package stats supplies the statistical machinery the reproduction needs
// and which the Go standard library lacks: streaming moment accumulators,
// confidence intervals for Bernoulli estimates, special functions
// (regularized incomplete gamma, chi-square and normal tails), combinatorial
// helpers (double factorials, log-binomials), Monte-Carlo success-probability
// estimation with parallel trials, and monotone threshold search used to
// measure empirical sample complexities.
//
// Everything is implemented from scratch against published formulas
// (Numerical Recipes-style series/continued-fraction evaluation for the
// incomplete gamma; Wilson score intervals; Welford accumulation) and tested
// against known values.
package stats
