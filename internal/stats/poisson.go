package stats

import (
	"fmt"
	"math"
)

// PoissonPMF returns the Poisson(lambda) probability mass at k, computed in
// log space for stability.
func PoissonPMF(k int, lambda float64) (float64, error) {
	if lambda < 0 {
		return 0, fmt.Errorf("stats: Poisson rate %v", lambda)
	}
	if k < 0 {
		return 0, nil
	}
	//lint:ignore dut/floateq degenerate-rate branch: lambda is exactly 0 only when the caller passes it
	if lambda == 0 {
		if k == 0 {
			return 1, nil
		}
		return 0, nil
	}
	lf, err := LogFactorial(k)
	if err != nil {
		return 0, err
	}
	return math.Exp(float64(k)*math.Log(lambda) - lambda - lf), nil
}

// PoissonUpperTail returns Pr[Poisson(lambda) >= k].
func PoissonUpperTail(k int, lambda float64) (float64, error) {
	if lambda < 0 {
		return 0, fmt.Errorf("stats: Poisson rate %v", lambda)
	}
	if k <= 0 {
		return 1, nil
	}
	// Pr[Poisson(lambda) >= k] = P(k, lambda), the regularized lower
	// incomplete gamma function (a gamma-Poisson duality).
	//lint:ignore dut/floateq degenerate-rate branch: lambda is exactly 0 only when the caller passes it
	if lambda == 0 {
		return 0, nil
	}
	return RegularizedGammaP(float64(k), lambda)
}

// PoissonUpperTailThreshold returns the smallest integer t such that
// Pr[Poisson(lambda) >= t] <= alpha. Collision counts under the uniform
// distribution are approximately Poisson, so this sets local rejection
// thresholds with per-player false-alarm rate alpha without Monte-Carlo
// calibration (the ablation alternative in DESIGN.md).
func PoissonUpperTailThreshold(lambda, alpha float64) (int, error) {
	if lambda < 0 {
		return 0, fmt.Errorf("stats: Poisson rate %v", lambda)
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("stats: tail mass %v outside (0,1)", alpha)
	}
	// Bracket with the normal approximation, then fix up exactly; the
	// upper tail function is monotone in t.
	z, err := NormalQuantile(1 - alpha)
	if err != nil {
		return 0, err
	}
	guess := int(lambda + z*math.Sqrt(lambda))
	if guess < 0 {
		guess = 0
	}
	t := guess
	for {
		tail, err := PoissonUpperTail(t, lambda)
		if err != nil {
			return 0, err
		}
		if tail <= alpha {
			break
		}
		t++
		if t > guess+10_000_000 {
			return 0, fmt.Errorf("stats: Poisson threshold search diverged at lambda=%v alpha=%v", lambda, alpha)
		}
	}
	for t > 0 {
		tail, err := PoissonUpperTail(t-1, lambda)
		if err != nil {
			return 0, err
		}
		if tail > alpha {
			break
		}
		t--
	}
	return t, nil
}
