package stats

import (
	"math"
	"testing"
)

func TestRegularizedGammaKnownValues(t *testing.T) {
	// Reference values: P(a,x) for integer a has the closed form
	// 1 - exp(-x) * sum_{k<a} x^k/k!.
	closedForm := func(a int, x float64) float64 {
		sum := 0.0
		term := 1.0
		for k := 0; k < a; k++ {
			if k > 0 {
				term *= x / float64(k)
			}
			sum += term
		}
		return 1 - math.Exp(-x)*sum
	}
	for _, a := range []int{1, 2, 3, 5, 10, 20} {
		for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10, 30, 100} {
			got, err := RegularizedGammaP(float64(a), x)
			if err != nil {
				t.Fatal(err)
			}
			want := closedForm(a, x)
			if !almostEqual(got, want, 1e-10) {
				t.Errorf("P(%d, %v) = %v, want %v", a, x, got, want)
			}
			q, err := RegularizedGammaQ(float64(a), x)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got+q, 1, 1e-10) {
				t.Errorf("P+Q at (%d, %v) = %v", a, x, got+q)
			}
		}
	}
}

func TestRegularizedGammaEdgeCases(t *testing.T) {
	if _, err := RegularizedGammaP(0, 1); err == nil {
		t.Error("a=0 accepted")
	}
	if _, err := RegularizedGammaP(1, -1); err == nil {
		t.Error("x<0 accepted")
	}
	p, err := RegularizedGammaP(3, 0)
	if err != nil || p != 0 {
		t.Errorf("P(3,0) = %v, %v", p, err)
	}
	q, err := RegularizedGammaQ(3, 0)
	if err != nil || q != 1 {
		t.Errorf("Q(3,0) = %v, %v", q, err)
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// chi-square with 2 dof is Exp(1/2): CDF(x) = 1 - exp(-x/2).
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		got, err := ChiSquareCDF(x, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-x/2)
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("ChiSquareCDF(%v, 2) = %v, want %v", x, got, want)
		}
	}
	// chi-square with 1 dof: CDF(x) = 2*Phi(sqrt(x)) - 1.
	for _, x := range []float64{0.1, 1, 4, 9} {
		got, err := ChiSquareCDF(x, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := 2*NormalCDF(math.Sqrt(x)) - 1
		if !almostEqual(got, want, 1e-9) {
			t.Errorf("ChiSquareCDF(%v, 1) = %v, want %v", x, got, want)
		}
	}
	if got, _ := ChiSquareCDF(-1, 3); got != 0 {
		t.Errorf("CDF at negative x = %v", got)
	}
	if got, _ := ChiSquareSurvival(-1, 3); got != 1 {
		t.Errorf("survival at negative x = %v", got)
	}
	if _, err := ChiSquareCDF(1, 0); err == nil {
		t.Error("zero dof accepted")
	}
	if _, err := ChiSquareSurvival(1, -2); err == nil {
		t.Error("negative dof accepted")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{3, 0.9986501019683699},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-8, 1e-4, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 1 - 1e-6} {
		x, err := NormalQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if back := NormalCDF(x); !almostEqual(back, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
	if _, err := NormalQuantile(0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := NormalQuantile(1); err == nil {
		t.Error("p=1 accepted")
	}
}

func TestDoubleFactorial(t *testing.T) {
	tests := []struct {
		n    int
		want float64
	}{
		{-1, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 3}, {4, 8}, {5, 15}, {6, 48}, {7, 105}, {9, 945},
	}
	for _, tt := range tests {
		got, err := DoubleFactorial(tt.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("%d!! = %v, want %v", tt.n, got, tt.want)
		}
	}
	if _, err := DoubleFactorial(-2); err == nil {
		t.Error("(-2)!! accepted")
	}
}

func TestLogFactorialAndBinomial(t *testing.T) {
	lf, err := LogFactorial(10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(lf, math.Log(3628800), 1e-9) {
		t.Errorf("ln(10!) = %v", lf)
	}
	if _, err := LogFactorial(-1); err == nil {
		t.Error("negative factorial accepted")
	}
	b, err := Binomial(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(b, 120, 1e-9) {
		t.Errorf("C(10,3) = %v", b)
	}
	lb, err := LogBinomial(10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(lb, -1) {
		t.Errorf("C(10,11) log = %v", lb)
	}
	if _, err := LogBinomial(-1, 0); err == nil {
		t.Error("negative n accepted")
	}
}

func TestBernoulliKL(t *testing.T) {
	kl, err := BernoulliKL(0.5, 0.5)
	if err != nil || kl != 0 {
		t.Errorf("D(B(1/2)||B(1/2)) = %v, %v", kl, err)
	}
	kl, err = BernoulliKL(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(kl, 1, tol) {
		t.Errorf("D(B(1)||B(1/2)) = %v, want 1 bit", kl)
	}
	kl, err = BernoulliKL(0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(kl, 1) {
		t.Errorf("unsupported KL = %v", kl)
	}
	if _, err := BernoulliKL(1.5, 0.5); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

func TestFact63BoundDominatesKL(t *testing.T) {
	// Fact 6.3: D(B(alpha) || B(beta)) <= (alpha-beta)^2/(var(B(beta)) ln 2).
	for _, alpha := range []float64{0.01, 0.2, 0.5, 0.8, 0.99} {
		for _, beta := range []float64{0.05, 0.3, 0.5, 0.7, 0.95} {
			kl, err := BernoulliKL(alpha, beta)
			if err != nil {
				t.Fatal(err)
			}
			bound, err := BernoulliKLChiBound(alpha, beta)
			if err != nil {
				t.Fatal(err)
			}
			if kl > bound+1e-12 {
				t.Errorf("alpha=%v beta=%v: KL %v exceeds Fact 6.3 bound %v", alpha, beta, kl, bound)
			}
		}
	}
	if _, err := BernoulliKLChiBound(0, 0.5); err == nil {
		t.Error("boundary alpha accepted")
	}
}
