package stats

import (
	"fmt"
	"math"
)

// RegularizedGammaP computes P(a, x) = gamma(a, x) / Gamma(a), the
// regularized lower incomplete gamma function, via the series expansion for
// x < a+1 and the continued fraction for x >= a+1 (the standard gammp/gammq
// split).
func RegularizedGammaP(a, x float64) (float64, error) {
	if a <= 0 {
		return 0, fmt.Errorf("stats: incomplete gamma with a=%v <= 0", a)
	}
	if x < 0 {
		return 0, fmt.Errorf("stats: incomplete gamma with x=%v < 0", x)
	}
	//lint:ignore dut/floateq exact boundary of the integral: P(a,0) is identically 0
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		return gammaSeries(a, x), nil
	}
	return 1 - gammaContinuedFraction(a, x), nil
}

// RegularizedGammaQ computes Q(a, x) = 1 - P(a, x).
func RegularizedGammaQ(a, x float64) (float64, error) {
	p, err := RegularizedGammaP(a, x)
	if err != nil {
		return 0, err
	}
	if x >= a+1 {
		return gammaContinuedFraction(a, x), nil
	}
	return 1 - p, nil
}

const (
	gammaMaxIter = 500
	gammaEps     = 1e-14
	gammaFPMin   = 1e-300
)

// gammaSeries evaluates P(a,x) by its power series.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a,x) by modified Lentz continued
// fraction.
func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / gammaFPMin
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < gammaFPMin {
			d = gammaFPMin
		}
		c = b + an/c
		if math.Abs(c) < gammaFPMin {
			c = gammaFPMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns the CDF of the chi-square distribution with k degrees
// of freedom at x.
func ChiSquareCDF(x float64, k float64) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("stats: chi-square with %v degrees of freedom", k)
	}
	if x <= 0 {
		return 0, nil
	}
	return RegularizedGammaP(k/2, x/2)
}

// ChiSquareSurvival returns 1 - CDF, the upper tail.
func ChiSquareSurvival(x float64, k float64) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("stats: chi-square with %v degrees of freedom", k)
	}
	if x <= 0 {
		return 1, nil
	}
	return RegularizedGammaQ(k/2, x/2)
}

// NormalCDF returns the standard normal CDF at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the standard normal quantile (inverse CDF) at
// p in (0,1), using Acklam's rational approximation refined by one Halley
// step against NormalCDF; absolute error is far below 1e-9.
func NormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: normal quantile at p=%v", p)
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x, nil
}

// DoubleFactorial returns n!! = n (n-2) (n-4) ... as a float64; by
// convention (-1)!! = 0!! = 1. Used by the Proposition 5.2 bound on |X_S|.
func DoubleFactorial(n int) (float64, error) {
	if n < -1 {
		return 0, fmt.Errorf("stats: double factorial of %d", n)
	}
	out := 1.0
	for k := n; k > 1; k -= 2 {
		out *= float64(k)
	}
	return out, nil
}

// LogFactorial returns ln(n!).
func LogFactorial(n int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("stats: factorial of %d", n)
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg, nil
}

// LogBinomial returns ln(C(n, k)); C(n,k) = 0 yields -Inf.
func LogBinomial(n, k int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("stats: binomial with n=%d", n)
	}
	if k < 0 || k > n {
		return math.Inf(-1), nil
	}
	ln, err := LogFactorial(n)
	if err != nil {
		return 0, err
	}
	lk, _ := LogFactorial(k)
	lnk, _ := LogFactorial(n - k)
	return ln - lk - lnk, nil
}

// Binomial returns C(n, k) as a float64 (possibly +Inf for huge inputs).
func Binomial(n, k int) (float64, error) {
	lb, err := LogBinomial(n, k)
	if err != nil {
		return 0, err
	}
	return math.Exp(lb), nil
}

// BernoulliKL returns the KL divergence D(B(alpha) || B(beta)) in bits; it
// is +Inf when alpha puts mass where beta does not.
func BernoulliKL(alpha, beta float64) (float64, error) {
	if alpha < 0 || alpha > 1 || beta < 0 || beta > 1 {
		return 0, fmt.Errorf("stats: Bernoulli KL with parameters %v, %v", alpha, beta)
	}
	term := func(p, q float64) float64 {
		//lint:ignore dut/floateq KL convention 0*log(0/q)=0 needs the exact zero
		if p == 0 {
			return 0
		}
		//lint:ignore dut/floateq KL divergence is +inf exactly when q has zero mass and p does not
		if q == 0 {
			return math.Inf(1)
		}
		return p * math.Log2(p/q)
	}
	kl := term(alpha, beta) + term(1-alpha, 1-beta)
	return math.Max(kl, 0), nil
}

// BernoulliKLChiBound returns the right-hand side of Fact 6.3:
// (alpha-beta)^2 / (var(B(beta)) ln 2), an upper bound on the Bernoulli KL
// divergence in bits for alpha, beta in (0,1).
func BernoulliKLChiBound(alpha, beta float64) (float64, error) {
	if alpha <= 0 || alpha >= 1 || beta <= 0 || beta >= 1 {
		return 0, fmt.Errorf("stats: Fact 6.3 bound needs parameters in (0,1), got %v, %v", alpha, beta)
	}
	diff := alpha - beta
	return diff * diff / (beta * (1 - beta) * math.Ln2), nil
}
