package stats

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestWilsonIntervalBasics(t *testing.T) {
	iv, err := WilsonInterval(50, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(0.5) {
		t.Errorf("interval %v does not contain the point estimate", iv)
	}
	if iv.Low < 0 || iv.High > 1 {
		t.Errorf("interval %v outside [0,1]", iv)
	}
	if iv.Width() <= 0 || iv.Width() > 0.25 {
		t.Errorf("implausible width %v", iv.Width())
	}
	// Extremes stay in range.
	iv0, err := WilsonInterval(0, 20, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if iv0.Low != 0 || iv0.High <= 0 {
		t.Errorf("zero-success interval %v", iv0)
	}
	ivAll, err := WilsonInterval(20, 20, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if ivAll.High != 1 || ivAll.Low >= 1 {
		t.Errorf("all-success interval %v", ivAll)
	}
}

func TestWilsonIntervalValidation(t *testing.T) {
	cases := []struct {
		name              string
		successes, trials int
		confidence        float64
	}{
		{"zero trials", 0, 0, 0.95},
		{"negative successes", -1, 10, 0.95},
		{"successes above trials", 11, 10, 0.95},
		{"confidence zero", 5, 10, 0},
		{"confidence one", 5, 10, 1},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := WilsonInterval(tt.successes, tt.trials, tt.confidence); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestWilsonIntervalShrinksWithTrials(t *testing.T) {
	prev := 1.0
	for _, trials := range []int{10, 100, 1000, 10000} {
		iv, err := WilsonInterval(trials/2, trials, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Width() >= prev {
			t.Errorf("width did not shrink at %d trials: %v", trials, iv.Width())
		}
		prev = iv.Width()
	}
}

func TestHoeffding(t *testing.T) {
	r, err := HoeffdingRadius(1000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	n, err := HoeffdingTrials(r, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Errorf("round trip gave %d trials", n)
	}
	if _, err := HoeffdingRadius(0, 0.95); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := HoeffdingTrials(0, 0.95); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := HoeffdingTrials(0.1, 1); err == nil {
		t.Error("confidence 1 accepted")
	}
}

func TestEstimateSuccessUnbiased(t *testing.T) {
	est, err := EstimateSuccess(40000, func(rng *rand.Rand) bool {
		return rng.Float64() < 0.3
	}, EstimateOptions{Seed: 42, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !est.CI.Contains(0.3) && (est.P < 0.28 || est.P > 0.32) {
		t.Errorf("estimate %v with CI %v far from 0.3", est.P, est.CI)
	}
	if est.Trials != 40000 {
		t.Errorf("trials = %d", est.Trials)
	}
}

func TestEstimateSuccessDeterministic(t *testing.T) {
	f := func(rng *rand.Rand) bool { return rng.Float64() < 0.5 }
	opts := EstimateOptions{Seed: 7, Parallelism: 3}
	a, err := EstimateSuccess(9999, f, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateSuccess(9999, f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Successes != b.Successes {
		t.Errorf("same seed produced %d and %d successes", a.Successes, b.Successes)
	}
}

func TestEstimateSuccessValidation(t *testing.T) {
	if _, err := EstimateSuccess(0, func(*rand.Rand) bool { return true }, EstimateOptions{}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := EstimateSuccess(10, nil, EstimateOptions{}); err == nil {
		t.Error("nil trial accepted")
	}
}

func TestEstimateSuccessMoreWorkersThanTrials(t *testing.T) {
	est, err := EstimateSuccess(3, func(*rand.Rand) bool { return true }, EstimateOptions{Parallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	if est.Successes != 3 {
		t.Errorf("successes = %d", est.Successes)
	}
}

func TestEstimateMean(t *testing.T) {
	acc, err := EstimateMean(50000, func(rng *rand.Rand) float64 {
		return rng.NormFloat64()*2 + 5
	}, EstimateOptions{Seed: 11, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Count() != 50000 {
		t.Fatalf("count = %d", acc.Count())
	}
	if acc.Mean() < 4.9 || acc.Mean() > 5.1 {
		t.Errorf("mean = %v", acc.Mean())
	}
	if acc.StdDev() < 1.9 || acc.StdDev() > 2.1 {
		t.Errorf("stddev = %v", acc.StdDev())
	}
	if _, err := EstimateMean(0, func(*rand.Rand) float64 { return 0 }, EstimateOptions{}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := EstimateMean(5, nil, EstimateOptions{}); err == nil {
		t.Error("nil trial accepted")
	}
}

func TestMinimalSufficient(t *testing.T) {
	pred := func(v int) (bool, error) { return v >= 37, nil }
	got, err := MinimalSufficient(0, 100, pred)
	if err != nil {
		t.Fatal(err)
	}
	if got != 37 {
		t.Errorf("minimal = %d, want 37", got)
	}
	if _, err := MinimalSufficient(0, 10, pred); err == nil {
		t.Error("insufficient range accepted")
	}
	if _, err := MinimalSufficient(5, 2, pred); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := MinimalSufficient(0, 10, nil); err == nil {
		t.Error("nil predicate accepted")
	}
}

func TestMinimalSufficientError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := MinimalSufficient(0, 10, func(int) (bool, error) { return false, sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestGrowThenShrink(t *testing.T) {
	calls := 0
	pred := func(v int) (bool, error) { calls++; return v >= 1234, nil }
	got, err := GrowThenShrink(1, 1<<20, pred)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1234 {
		t.Errorf("minimal = %d, want 1234", got)
	}
	if calls > 40 {
		t.Errorf("used %d evaluations, want logarithmic", calls)
	}
	// Start already sufficient.
	got, err = GrowThenShrink(5000, 1<<20, pred)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5000 {
		t.Errorf("start-sufficient returned %d", got)
	}
	if _, err := GrowThenShrink(0, 10, pred); err == nil {
		t.Error("zero start accepted")
	}
	if _, err := GrowThenShrink(4, 2, pred); err == nil {
		t.Error("cap below start accepted")
	}
	if _, err := GrowThenShrink(1, 100, func(int) (bool, error) { return false, nil }); err == nil {
		t.Error("unreachable target accepted")
	}
	if _, err := GrowThenShrink(1, 10, nil); err == nil {
		t.Error("nil predicate accepted")
	}
}

func TestQuickMinimalSufficientFindsBoundary(t *testing.T) {
	prop := func(boundaryRaw uint16) bool {
		boundary := int(boundaryRaw%5000) + 1
		pred := func(v int) (bool, error) { return v >= boundary, nil }
		got, err := GrowThenShrink(1, 1<<16, pred)
		return err == nil && got == boundary
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSuccessAtLeastPredicate(t *testing.T) {
	// Trial succeeds iff a coin with bias v/100 lands heads; target 0.5
	// should be reached near v = 50.
	run := func(v int) TrialFunc {
		p := float64(v) / 100
		return func(rng *rand.Rand) bool { return rng.Float64() < p }
	}
	pred := SuccessAtLeast(0.5, 20000, run, EstimateOptions{Seed: 3})
	got, err := GrowThenShrink(1, 100, pred)
	if err != nil {
		t.Fatal(err)
	}
	if got < 47 || got > 53 {
		t.Errorf("boundary found at %d, want ~50", got)
	}
	badPred := SuccessAtLeast(0.5, 100, nil, EstimateOptions{})
	if _, err := badPred(1); err == nil {
		t.Error("nil factory accepted")
	}
}
