package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

const tol = 1e-10

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func testRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed*2654435761+1))
}

func TestAccumulatorZeroValue(t *testing.T) {
	var a Accumulator
	if a.Count() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("zero-value accumulator not neutral")
	}
}

func TestAccumulatorKnownValues(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if a.Count() != 8 {
		t.Fatalf("count = %d", a.Count())
	}
	if !almostEqual(a.Mean(), 5, tol) {
		t.Errorf("mean = %v", a.Mean())
	}
	if !almostEqual(a.Variance(), 4, tol) {
		t.Errorf("variance = %v", a.Variance())
	}
	if !almostEqual(a.SampleVariance(), 32.0/7, tol) {
		t.Errorf("sample variance = %v", a.SampleVariance())
	}
	if !almostEqual(a.StdDev(), 2, tol) {
		t.Errorf("stddev = %v", a.StdDev())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorSingleObservation(t *testing.T) {
	var a Accumulator
	a.Add(3)
	if a.SampleVariance() != 0 {
		t.Errorf("sample variance of one observation = %v", a.SampleVariance())
	}
	if a.Min() != 3 || a.Max() != 3 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorMergeMatchesSequential(t *testing.T) {
	rng := testRand(1)
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
	}
	var whole Accumulator
	whole.AddAll(xs)
	for _, split := range []int{0, 1, 500, 1000, 1001} {
		var a, b Accumulator
		a.AddAll(xs[:split])
		b.AddAll(xs[split:])
		a.Merge(&b)
		if a.Count() != whole.Count() {
			t.Fatalf("split %d: count %d", split, a.Count())
		}
		if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
			t.Errorf("split %d: mean %v vs %v", split, a.Mean(), whole.Mean())
		}
		if !almostEqual(a.Variance(), whole.Variance(), 1e-9) {
			t.Errorf("split %d: variance %v vs %v", split, a.Variance(), whole.Variance())
		}
		if a.Min() != whole.Min() || a.Max() != whole.Max() {
			t.Errorf("split %d: min/max %v/%v", split, a.Min(), a.Max())
		}
	}
}

func TestKahanSumBeatsNaive(t *testing.T) {
	// Summing many tiny values onto a large one: Kahan keeps the tiny mass.
	var k KahanSum
	k.Add(1e16)
	for i := 0; i < 10000; i++ {
		k.Add(1)
	}
	if k.Sum() != 1e16+10000 {
		t.Errorf("Kahan sum = %v, want %v", k.Sum(), 1e16+10000)
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m, 2.5, tol) {
		t.Errorf("mean = %v", m)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("mean of empty slice succeeded")
	}
}

func TestLogSumExp(t *testing.T) {
	got, err := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, math.Log(6), tol) {
		t.Errorf("logsumexp = %v, want %v", got, math.Log(6))
	}
	// Stability for large inputs.
	got, err = LogSumExp([]float64{1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1000+math.Ln2, 1e-9) {
		t.Errorf("logsumexp large = %v", got)
	}
	got, err = LogSumExp([]float64{math.Inf(-1), math.Inf(-1)})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, -1) {
		t.Errorf("logsumexp of -Infs = %v", got)
	}
	if _, err := LogSumExp(nil); err == nil {
		t.Error("logsumexp of empty slice succeeded")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	q, err := Quantile(vals, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 3 {
		t.Errorf("median = %v", q)
	}
	if q, _ := Quantile(vals, 0); q != 1 {
		t.Errorf("min = %v", q)
	}
	if q, _ := Quantile(vals, 1); q != 5 {
		t.Errorf("max = %v", q)
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Error("Quantile sorted its input in place")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Quantile(vals, 1.5); err == nil {
		t.Error("p > 1 accepted")
	}
	if _, err := Quantile(vals, -0.1); err == nil {
		t.Error("p < 0 accepted")
	}
}
