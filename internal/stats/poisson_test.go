package stats

import (
	"math"
	"testing"
)

func TestPoissonPMFKnownValues(t *testing.T) {
	p, err := PoissonPMF(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p, math.Exp(-2), 1e-12) {
		t.Errorf("pmf(0;2) = %v", p)
	}
	p, _ = PoissonPMF(3, 2)
	if !almostEqual(p, math.Exp(-2)*8.0/6, 1e-12) {
		t.Errorf("pmf(3;2) = %v", p)
	}
	if p, _ := PoissonPMF(-1, 2); p != 0 {
		t.Errorf("pmf(-1) = %v", p)
	}
	if p, _ := PoissonPMF(0, 0); p != 1 {
		t.Errorf("pmf(0;0) = %v", p)
	}
	if p, _ := PoissonPMF(2, 0); p != 0 {
		t.Errorf("pmf(2;0) = %v", p)
	}
	if _, err := PoissonPMF(1, -1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 20, 100} {
		var sum float64
		for k := 0; k < int(lambda)+200; k++ {
			p, err := PoissonPMF(k, lambda)
			if err != nil {
				t.Fatal(err)
			}
			sum += p
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("lambda=%v: pmf sums to %v", lambda, sum)
		}
	}
}

func TestPoissonUpperTailMatchesSummation(t *testing.T) {
	for _, lambda := range []float64{0.5, 2, 10, 50} {
		for _, k := range []int{0, 1, 2, 5, 10, 60} {
			got, err := PoissonUpperTail(k, lambda)
			if err != nil {
				t.Fatal(err)
			}
			var want float64
			for j := 0; j < k; j++ {
				p, _ := PoissonPMF(j, lambda)
				want += p
			}
			want = 1 - want
			if !almostEqual(got, want, 1e-9) {
				t.Errorf("tail(%d; %v) = %v, want %v", k, lambda, got, want)
			}
		}
	}
	if tail, _ := PoissonUpperTail(5, 0); tail != 0 {
		t.Errorf("tail(5;0) = %v", tail)
	}
	if tail, _ := PoissonUpperTail(0, 3); tail != 1 {
		t.Errorf("tail(0;3) = %v", tail)
	}
}

func TestPoissonUpperTailThreshold(t *testing.T) {
	for _, lambda := range []float64{0.1, 1, 10, 200, 5000} {
		for _, alpha := range []float64{0.3, 0.05, 1e-3, 1e-6} {
			th, err := PoissonUpperTailThreshold(lambda, alpha)
			if err != nil {
				t.Fatal(err)
			}
			at, err := PoissonUpperTail(th, lambda)
			if err != nil {
				t.Fatal(err)
			}
			if at > alpha {
				t.Errorf("lambda=%v alpha=%v: tail at threshold %d is %v", lambda, alpha, th, at)
			}
			if th > 0 {
				below, err := PoissonUpperTail(th-1, lambda)
				if err != nil {
					t.Fatal(err)
				}
				if below <= alpha {
					t.Errorf("lambda=%v alpha=%v: threshold %d not minimal (tail below is %v)", lambda, alpha, th, below)
				}
			}
		}
	}
	if _, err := PoissonUpperTailThreshold(-1, 0.1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := PoissonUpperTailThreshold(1, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := PoissonUpperTailThreshold(1, 1); err == nil {
		t.Error("alpha=1 accepted")
	}
}
