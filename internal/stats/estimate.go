package stats

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
)

// TrialFunc runs one randomized trial and reports success. Implementations
// must take all randomness from the supplied generator so that estimation is
// reproducible given a seed.
type TrialFunc func(rng *rand.Rand) bool

// SuccessEstimate is the result of a Monte-Carlo success-probability
// estimation.
type SuccessEstimate struct {
	Successes int
	Trials    int
	P         float64  // point estimate Successes/Trials
	CI        Interval // Wilson interval at the requested confidence
}

// EstimateOptions configures EstimateSuccess. The zero value requests
// sequential execution, 95% confidence, and seed 0.
type EstimateOptions struct {
	// Parallelism is the number of worker goroutines; 0 or negative means
	// GOMAXPROCS.
	Parallelism int
	// Confidence is the Wilson interval confidence level; 0 means 0.95.
	Confidence float64
	// Seed derives the per-worker generators; runs with equal seeds and
	// parallelism produce identical counts.
	Seed uint64
}

// EstimateSuccess runs the trial function the requested number of times and
// returns the empirical success probability with a Wilson confidence
// interval. Trials are distributed over worker goroutines, each with an
// independent seeded generator, so results are deterministic for a fixed
// (Seed, Parallelism) pair.
func EstimateSuccess(trials int, f TrialFunc, opts EstimateOptions) (SuccessEstimate, error) {
	if trials <= 0 {
		return SuccessEstimate{}, fmt.Errorf("stats: estimating with %d trials", trials)
	}
	if f == nil {
		return SuccessEstimate{}, fmt.Errorf("stats: nil trial function")
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	confidence := opts.Confidence
	//lint:ignore dut/floateq exact zero-value Options sentinel, never a computed float
	if confidence == 0 {
		confidence = 0.95
	}

	counts := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := trials * w / workers
		hi := trials * (w + 1) / workers
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(opts.Seed, uint64(w)*0x9e3779b97f4a7c15+1))
			succ := 0
			for i := 0; i < n; i++ {
				if f(rng) {
					succ++
				}
			}
			counts[w] = succ
		}(w, hi-lo)
	}
	wg.Wait()

	total := 0
	for _, c := range counts {
		total += c
	}
	ci, err := WilsonInterval(total, trials, confidence)
	if err != nil {
		return SuccessEstimate{}, err
	}
	return SuccessEstimate{
		Successes: total,
		Trials:    trials,
		P:         float64(total) / float64(trials),
		CI:        ci,
	}, nil
}

// EstimateMean runs a real-valued trial the requested number of times in
// parallel and returns a merged accumulator.
func EstimateMean(trials int, f func(rng *rand.Rand) float64, opts EstimateOptions) (*Accumulator, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("stats: estimating with %d trials", trials)
	}
	if f == nil {
		return nil, fmt.Errorf("stats: nil trial function")
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	accs := make([]Accumulator, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := trials * w / workers
		hi := trials * (w + 1) / workers
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(opts.Seed, uint64(w)*0x9e3779b97f4a7c15+1))
			for i := 0; i < n; i++ {
				accs[w].Add(f(rng))
			}
		}(w, hi-lo)
	}
	wg.Wait()
	var out Accumulator
	for w := range accs {
		out.Merge(&accs[w])
	}
	return &out, nil
}
