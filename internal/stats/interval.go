package stats

import (
	"fmt"
	"math"
)

// Interval is a closed confidence interval.
type Interval struct {
	Low  float64
	High float64
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return iv.Low <= x && x <= iv.High }

// Width returns the interval length.
func (iv Interval) Width() float64 { return iv.High - iv.Low }

// WilsonInterval returns the Wilson score confidence interval for a
// Bernoulli parameter after observing successes out of trials, at the given
// confidence level (e.g. 0.95).
func WilsonInterval(successes, trials int, confidence float64) (Interval, error) {
	if trials <= 0 {
		return Interval{}, fmt.Errorf("stats: Wilson interval with %d trials", trials)
	}
	if successes < 0 || successes > trials {
		return Interval{}, fmt.Errorf("stats: %d successes out of %d trials", successes, trials)
	}
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	z, err := NormalQuantile(1 - (1-confidence)/2)
	if err != nil {
		return Interval{}, err
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	return Interval{Low: math.Max(0, center-half), High: math.Min(1, center+half)}, nil
}

// HoeffdingRadius returns the deviation t such that the mean of `trials`
// bounded-[0,1] observations is within t of its expectation with probability
// at least `confidence`, by Hoeffding's inequality:
// t = sqrt(ln(2/delta) / (2 trials)).
func HoeffdingRadius(trials int, confidence float64) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("stats: Hoeffding radius with %d trials", trials)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	delta := 1 - confidence
	return math.Sqrt(math.Log(2/delta) / (2 * float64(trials))), nil
}

// HoeffdingTrials inverts HoeffdingRadius: the number of [0,1]-bounded
// trials needed to pin the mean within radius t at the given confidence.
func HoeffdingTrials(radius, confidence float64) (int, error) {
	if radius <= 0 {
		return 0, fmt.Errorf("stats: Hoeffding trials with radius %v", radius)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	delta := 1 - confidence
	return int(math.Ceil(math.Log(2/delta) / (2 * radius * radius))), nil
}
