package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming mean and variance with Welford's algorithm.
// The zero value is ready to use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll folds a batch of observations.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// Count returns the number of observations.
func (a *Accumulator) Count() int64 { return a.n }

// Mean returns the sample mean (0 with no observations).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the population variance (dividing by n).
func (a *Accumulator) Variance() float64 {
	if a.n == 0 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// SampleVariance returns the unbiased sample variance (dividing by n-1),
// or 0 with fewer than two observations.
func (a *Accumulator) SampleVariance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the population standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean, using the sample variance.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return math.Sqrt(a.SampleVariance() / float64(a.n))
}

// Min returns the smallest observation (0 with no observations).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 with no observations).
func (a *Accumulator) Max() float64 { return a.max }

// Merge folds another accumulator into this one (Chan et al. parallel
// variance combination), so per-worker accumulators can be reduced.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.mean += delta * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// KahanSum accumulates a compensated sum; the zero value is ready to use.
type KahanSum struct {
	sum float64
	c   float64
}

// Add folds x into the sum with Kahan compensation.
func (k *KahanSum) Add(x float64) {
	y := x - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum }

// Mean returns the arithmetic mean of a slice (error on empty input).
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: mean of empty slice")
	}
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum() / float64(len(xs)), nil
}

// LogSumExp returns log(sum_i exp(xs_i)) stably.
func LogSumExp(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: logsumexp of empty slice")
	}
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return math.Inf(-1), nil
	}
	var acc float64
	for _, x := range xs {
		acc += math.Exp(x - m)
	}
	return m + math.Log(acc), nil
}

// Quantile returns the empirical p-quantile of the values (p in [0,1]),
// using the nearest-rank definition on a sorted copy. It errors on empty
// input.
func Quantile(values []float64, p float64) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty slice")
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: quantile level %v outside [0,1]", p)
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx], nil
}
