package stats

import (
	"fmt"
)

// Predicate evaluates an integer parameter (e.g. a per-player sample count
// q) and reports whether it is "sufficient". For empirical
// sample-complexity search it must be monotone in expectation: if q works,
// q' > q works too.
type Predicate func(v int) (bool, error)

// MinimalSufficient finds the smallest v in [lo, hi] with pred(v) true,
// assuming monotonicity, by binary search. It returns an error when even hi
// is insufficient.
func MinimalSufficient(lo, hi int, pred Predicate) (int, error) {
	if lo < 0 || hi < lo {
		return 0, fmt.Errorf("stats: search over invalid range [%d, %d]", lo, hi)
	}
	if pred == nil {
		return 0, fmt.Errorf("stats: nil predicate")
	}
	okHi, err := pred(hi)
	if err != nil {
		return 0, err
	}
	if !okHi {
		return 0, fmt.Errorf("stats: no sufficient value in [%d, %d]", lo, hi)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		ok, err := pred(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// GrowThenShrink finds a minimal sufficient value with no a-priori upper
// bound: it doubles from start until the predicate holds (capped at max),
// then binary-searches the bracketed range. This is the workhorse of the
// empirical sample-complexity measurements, where q* is unknown.
func GrowThenShrink(start, max int, pred Predicate) (int, error) {
	if start <= 0 {
		return 0, fmt.Errorf("stats: growth search from %d", start)
	}
	if max < start {
		return 0, fmt.Errorf("stats: growth cap %d below start %d", max, start)
	}
	if pred == nil {
		return 0, fmt.Errorf("stats: nil predicate")
	}
	lo := start
	hi := start
	for {
		ok, err := pred(hi)
		if err != nil {
			return 0, err
		}
		if ok {
			break
		}
		if hi == max {
			return 0, fmt.Errorf("stats: no sufficient value up to cap %d", max)
		}
		lo = hi + 1
		hi *= 2
		if hi > max {
			hi = max
		}
	}
	if hi == start {
		return start, nil
	}
	return MinimalSufficient(lo, hi, pred)
}

// SuccessAtLeast builds a Predicate from a parameterized randomized trial:
// pred(v) runs `trials` Monte-Carlo trials of run(v) and reports whether the
// empirical success probability is at least target. Choose `trials` large
// enough that the Bernoulli noise at the decision boundary is acceptable;
// the returned minimal value is itself a random variable.
func SuccessAtLeast(target float64, trials int, run func(v int) TrialFunc, opts EstimateOptions) Predicate {
	return func(v int) (bool, error) {
		if run == nil {
			return false, fmt.Errorf("stats: nil trial factory")
		}
		est, err := EstimateSuccess(trials, run(v), opts)
		if err != nil {
			return false, err
		}
		return est.P >= target, nil
	}
}
