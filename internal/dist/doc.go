// Package dist implements discrete probability distributions over a finite
// domain {0, ..., n-1}, the distances between them, efficient samplers, the
// Paninski-style hard family {nu_z} of Section 3 of Meir-Minzer-Oshman
// (PODC 2019), and Goldreich's reduction from identity testing to uniformity
// testing.
//
// # Domain conventions for the hard family
//
// The paper views the universe of size n = 2^(ell+1) as two copies of the
// Boolean cube {-1,1}^ell: elements are pairs (x, s) with x in {-1,1}^ell
// and a sign s in {-1,+1} matching each "left" vertex to its "right" twin.
// This package encodes the pair as the integer
//
//	id = (xIndex << 1) | sBit
//
// where bit j of xIndex is 1 exactly when x_j = -1, and sBit = 1 exactly
// when s = -1 (the same sign convention as package boolfn). The perturbed
// distribution is
//
//	nu_z(x, s) = (1 + s * z(x) * eps) / n,
//
// which is exactly eps-far from uniform in L1 for every perturbation z, and
// whose uniform mixture over z is exactly the uniform distribution.
package dist
