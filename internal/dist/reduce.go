package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// IdentityReduction implements Goldreich's reduction from testing identity
// to a fixed known distribution D to testing uniformity [Goldreich, ECCC
// 2016], which is why the paper calls uniformity testing "complete" for
// identity testing. Samples from an unknown P over [n] are filtered into
// samples over an output domain [m] such that:
//
//   - if P = D, the output distribution is within YesSlack() of uniform in
//     L1 (the slack is only the granularity rounding, at most n/m);
//   - if ||P - D||_1 >= eps, the output is at least FarGuarantee() far from
//     uniform in L1.
//
// The filter first mixes the sample with uniform noise (weight alpha =
// eps/4), guaranteeing every element has mass at least alpha/n, then maps
// element i to a uniformly random bucket among c_i buckets, where the
// bucket counts c_i are proportional to the mixed target masses. Bucketing
// preserves the L1 distance between any two filtered distributions exactly,
// so the far-side gap only pays the mixing factor (1 - alpha).
type IdentityReduction struct {
	target Dist
	eps    float64
	alpha  float64
	m      int
	counts []int
	start  []int
}

// NewIdentityReduction builds the filter for the given known target and
// proximity parameter.
func NewIdentityReduction(target Dist, eps float64) (*IdentityReduction, error) {
	if target.N() == 0 {
		return nil, fmt.Errorf("dist: identity reduction with empty target")
	}
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("dist: identity reduction eps %v outside (0,1]", eps)
	}
	n := target.N()
	alpha := eps / 4
	m := int(math.Ceil(8 * float64(n) / eps))
	uniform, err := Uniform(n)
	if err != nil {
		return nil, err
	}
	mixed, err := target.Mix(uniform, 1-alpha) // (1-alpha)*target + alpha*uniform
	if err != nil {
		return nil, err
	}
	counts, err := apportion(mixed, m)
	if err != nil {
		return nil, err
	}
	start := make([]int, n+1)
	for i, c := range counts {
		if c < 1 {
			return nil, fmt.Errorf("dist: element %d received %d buckets; granularity too coarse", i, c)
		}
		start[i+1] = start[i] + c
	}
	return &IdentityReduction{
		target: target,
		eps:    eps,
		alpha:  alpha,
		m:      m,
		counts: counts,
		start:  start,
	}, nil
}

// apportion assigns integer bucket counts summing exactly to m,
// proportional to d, using the largest-remainder method.
func apportion(d Dist, m int) ([]int, error) {
	n := d.N()
	if m < n {
		return nil, fmt.Errorf("dist: cannot apportion %d buckets among %d elements", m, n)
	}
	counts := make([]int, n)
	type frac struct {
		i int
		r float64
	}
	fracs := make([]frac, n)
	total := 0
	for i := 0; i < n; i++ {
		exact := d.Prob(i) * float64(m)
		counts[i] = int(math.Floor(exact))
		fracs[i] = frac{i: i, r: exact - math.Floor(exact)}
		total += counts[i]
	}
	remaining := m - total
	if remaining < 0 {
		return nil, fmt.Errorf("dist: apportionment overflow (%d > %d)", total, m)
	}
	sort.Slice(fracs, func(a, b int) bool { return fracs[a].r > fracs[b].r })
	for j := 0; j < remaining; j++ {
		counts[fracs[j%n].i]++
	}
	return counts, nil
}

// InputDomain returns the size n of the target's domain.
func (r *IdentityReduction) InputDomain() int { return r.target.N() }

// OutputDomain returns the size m of the reduced uniformity instance.
func (r *IdentityReduction) OutputDomain() int { return r.m }

// YesSlack bounds the L1 distance of the output from uniform when P = D:
// at most n/m from granularity rounding.
func (r *IdentityReduction) YesSlack() float64 {
	return float64(r.target.N()) / float64(r.m)
}

// FarGuarantee lower-bounds the L1 distance of the output from uniform when
// ||P - D||_1 >= eps: the mixing contracts by (1-alpha) and rounding costs
// at most YesSlack.
func (r *IdentityReduction) FarGuarantee() float64 {
	return (1-r.alpha)*r.eps - r.YesSlack()
}

// Map filters a single sample from the unknown distribution into the output
// domain.
func (r *IdentityReduction) Map(sample int, rng *rand.Rand) (int, error) {
	n := r.target.N()
	if sample < 0 || sample >= n {
		return 0, fmt.Errorf("dist: sample %d outside domain of size %d", sample, n)
	}
	if rng.Float64() < r.alpha {
		sample = rng.IntN(n)
	}
	return r.start[sample] + rng.IntN(r.counts[sample]), nil
}

// MapAll filters a batch of samples.
func (r *IdentityReduction) MapAll(samples []int, rng *rand.Rand) ([]int, error) {
	out := make([]int, len(samples))
	for i, s := range samples {
		mapped, err := r.Map(s, rng)
		if err != nil {
			return nil, err
		}
		out[i] = mapped
	}
	return out, nil
}

// Pushforward computes exactly the output distribution over [m] induced by
// feeding iid samples of p through the filter. Exposing this exactly lets
// callers calibrate a uniformity tester against the true yes-case output
// rather than assuming it is perfectly uniform.
func (r *IdentityReduction) Pushforward(p Dist) (Dist, error) {
	n := r.target.N()
	if p.N() != n {
		return Dist{}, fmt.Errorf("dist: pushforward of domain %d through a reduction for domain %d", p.N(), n)
	}
	out := make([]float64, r.m)
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		mixed := (1-r.alpha)*p.Prob(i) + r.alpha*invN
		per := mixed / float64(r.counts[i])
		for b := r.start[i]; b < r.start[i+1]; b++ {
			out[b] = per
		}
	}
	return FromProbs(out)
}
