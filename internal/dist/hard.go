package dist

import (
	"fmt"
	"math/rand/v2"
)

// MaxHardEll caps the cube dimension of a hard instance. Perturbation
// vectors have 2^ell entries and exhaustive enumeration walks 2^(2^ell)
// vectors, so anything beyond 20 is a bug, not a workload.
const MaxHardEll = 20

// Perturbation is the vector z: {-1,1}^ell -> {-1,1} from Section 3 of the
// paper, deciding whether each left-cube vertex gains or loses eps/n mass.
// Entry x (indexed by the xIndex encoding of the doc comment) holds z(x) as
// +1 or -1.
type Perturbation []int8

// NewPerturbationFromBits expands a bitmask into a perturbation on
// {-1,1}^ell: bit x of bits set means z(x) = -1, matching the package-wide
// "set bit = -1" sign convention. Only the low 2^ell bits are consulted, so
// it requires ell <= 6.
func NewPerturbationFromBits(ell int, bits uint64) (Perturbation, error) {
	if ell < 0 || ell > 6 {
		return nil, fmt.Errorf("dist: bitmask perturbation needs 0 <= ell <= 6, got %d", ell)
	}
	z := make(Perturbation, 1<<ell)
	for x := range z {
		if bits&(1<<uint(x)) != 0 {
			z[x] = -1
		} else {
			z[x] = 1
		}
	}
	return z, nil
}

// RandomPerturbation draws z uniformly: each coordinate is an independent
// fair ±1 coin, exactly the distribution over which the paper's lower
// bounds take expectations.
func RandomPerturbation(ell int, rng *rand.Rand) (Perturbation, error) {
	if ell < 0 || ell > MaxHardEll {
		return nil, fmt.Errorf("dist: perturbation dimension %d outside [0,%d]", ell, MaxHardEll)
	}
	z := make(Perturbation, 1<<ell)
	for x := range z {
		if rng.Uint64()&1 == 0 {
			z[x] = 1
		} else {
			z[x] = -1
		}
	}
	return z, nil
}

// Validate checks that every entry is ±1.
func (z Perturbation) Validate() error {
	if len(z) == 0 {
		return fmt.Errorf("dist: empty perturbation")
	}
	for x, v := range z {
		if v != 1 && v != -1 {
			return fmt.Errorf("dist: perturbation entry %d at %d, want ±1", v, x)
		}
	}
	return nil
}

// HardInstance bundles the parameters of the Section 3 hard family: the
// cube dimension ell (universe size n = 2^(ell+1)) and the proximity
// parameter eps.
type HardInstance struct {
	Ell int
	Eps float64
}

// NewHardInstance validates the parameters.
func NewHardInstance(ell int, eps float64) (HardInstance, error) {
	if ell < 0 || ell > MaxHardEll {
		return HardInstance{}, fmt.Errorf("dist: hard instance dimension %d outside [0,%d]", ell, MaxHardEll)
	}
	if eps <= 0 || eps > 1 {
		return HardInstance{}, fmt.Errorf("dist: hard instance eps %v outside (0,1]", eps)
	}
	return HardInstance{Ell: ell, Eps: eps}, nil
}

// N returns the universe size 2^(ell+1).
func (h HardInstance) N() int { return 1 << (h.Ell + 1) }

// CubeSize returns the left-cube size 2^ell.
func (h HardInstance) CubeSize() int { return 1 << h.Ell }

// ElementID encodes (x, s) with s in {-1, +1} as (x << 1) | sBit where
// sBit = 1 iff s = -1.
func (h HardInstance) ElementID(x int, s int) (int, error) {
	if x < 0 || x >= h.CubeSize() {
		return 0, fmt.Errorf("dist: cube vertex %d outside [0,%d)", x, h.CubeSize())
	}
	switch s {
	case 1:
		return x << 1, nil
	case -1:
		return x<<1 | 1, nil
	default:
		return 0, fmt.Errorf("dist: sign %d, want ±1", s)
	}
}

// SplitID decodes an element id into (x, s).
func (h HardInstance) SplitID(id int) (x int, s int, err error) {
	if id < 0 || id >= h.N() {
		return 0, 0, fmt.Errorf("dist: element %d outside universe of size %d", id, h.N())
	}
	x = id >> 1
	if id&1 == 0 {
		return x, 1, nil
	}
	return x, -1, nil
}

// Perturbed returns the distribution nu_z(x, s) = (1 + s*z(x)*eps)/n.
func (h HardInstance) Perturbed(z Perturbation) (Dist, error) {
	if len(z) != h.CubeSize() {
		return Dist{}, fmt.Errorf("dist: perturbation length %d, want %d", len(z), h.CubeSize())
	}
	if err := z.Validate(); err != nil {
		return Dist{}, err
	}
	n := h.N()
	p := make([]float64, n)
	inv := 1 / float64(n)
	for x := 0; x < h.CubeSize(); x++ {
		delta := h.Eps * float64(z[x]) * inv
		p[x<<1] = inv + delta   // s = +1
		p[x<<1|1] = inv - delta // s = -1
	}
	return Dist{p: p}, nil
}

// EnumeratePerturbations calls visit for each of the 2^(2^ell) perturbation
// vectors, in ascending bitmask order. It requires ell <= 4 (65536 vectors)
// to keep exhaustive expectations tractable; the visit callback may return
// an error to stop early.
func EnumeratePerturbations(ell int, visit func(z Perturbation) error) error {
	if ell < 0 || ell > 4 {
		return fmt.Errorf("dist: exhaustive enumeration needs 0 <= ell <= 4, got %d", ell)
	}
	total := uint64(1) << (1 << ell)
	for bits := uint64(0); bits < total; bits++ {
		z, err := NewPerturbationFromBits(ell, bits)
		if err != nil {
			return err
		}
		if err := visit(z); err != nil {
			return err
		}
	}
	return nil
}

// PerturbedMixture returns the exact uniform mixture E_z[nu_z] by exhaustive
// enumeration; by the paper's Section 3 observation it equals U_n, which the
// tests verify.
func (h HardInstance) PerturbedMixture() (Dist, error) {
	if h.Ell > 4 {
		return Dist{}, fmt.Errorf("dist: exact mixture needs ell <= 4, got %d", h.Ell)
	}
	var ds []Dist
	err := EnumeratePerturbations(h.Ell, func(z Perturbation) error {
		d, err := h.Perturbed(z)
		if err != nil {
			return err
		}
		ds = append(ds, d)
		return nil
	})
	if err != nil {
		return Dist{}, err
	}
	return Average(ds)
}

// RandomPerturbed draws a random z and returns nu_z together with z.
func (h HardInstance) RandomPerturbed(rng *rand.Rand) (Dist, Perturbation, error) {
	z, err := RandomPerturbation(h.Ell, rng)
	if err != nil {
		return Dist{}, nil, err
	}
	d, err := h.Perturbed(z)
	if err != nil {
		return Dist{}, nil, err
	}
	return d, z, nil
}
