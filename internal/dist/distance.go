package dist

import (
	"fmt"
	"math"
)

// L1 returns the L1 distance sum_i |d(i) - e(i)|; total variation distance
// is half of this. The paper's eps-far condition is in L1.
func L1(d, e Dist) (float64, error) {
	if d.N() != e.N() {
		return 0, domainErr("L1", d, e)
	}
	var acc float64
	for i := range d.p {
		acc += math.Abs(d.p[i] - e.p[i])
	}
	return acc, nil
}

// TV returns the total variation distance, L1/2.
func TV(d, e Dist) (float64, error) {
	l1, err := L1(d, e)
	return l1 / 2, err
}

// L2 returns the Euclidean distance between the probability vectors.
func L2(d, e Dist) (float64, error) {
	if d.N() != e.N() {
		return 0, domainErr("L2", d, e)
	}
	var acc float64
	for i := range d.p {
		diff := d.p[i] - e.p[i]
		acc += diff * diff
	}
	return math.Sqrt(acc), nil
}

// LInf returns the maximum pointwise probability gap.
func LInf(d, e Dist) (float64, error) {
	if d.N() != e.N() {
		return 0, domainErr("LInf", d, e)
	}
	var m float64
	for i := range d.p {
		if diff := math.Abs(d.p[i] - e.p[i]); diff > m {
			m = diff
		}
	}
	return m, nil
}

// KL returns the Kullback-Leibler divergence D(d || e) in bits. It is +Inf
// when d puts mass where e does not.
func KL(d, e Dist) (float64, error) {
	if d.N() != e.N() {
		return 0, domainErr("KL", d, e)
	}
	var acc float64
	for i := range d.p {
		if d.p[i] == 0 {
			continue
		}
		if e.p[i] == 0 {
			return math.Inf(1), nil
		}
		acc += d.p[i] * math.Log2(d.p[i]/e.p[i])
	}
	// Rounding can drive the divergence of near-identical distributions a
	// hair below zero.
	return math.Max(acc, 0), nil
}

// ChiSquared returns the chi-squared divergence
// sum_i (d(i)-e(i))^2 / e(i), infinite when d charges a zero of e.
func ChiSquared(d, e Dist) (float64, error) {
	if d.N() != e.N() {
		return 0, domainErr("ChiSquared", d, e)
	}
	var acc float64
	for i := range d.p {
		diff := d.p[i] - e.p[i]
		if e.p[i] == 0 {
			if diff != 0 {
				return math.Inf(1), nil
			}
			continue
		}
		acc += diff * diff / e.p[i]
	}
	return acc, nil
}

// Hellinger returns the Hellinger distance
// sqrt( (1/2) sum_i (sqrt d(i) - sqrt e(i))^2 ), a metric in [0,1].
func Hellinger(d, e Dist) (float64, error) {
	if d.N() != e.N() {
		return 0, domainErr("Hellinger", d, e)
	}
	var acc float64
	for i := range d.p {
		diff := math.Sqrt(d.p[i]) - math.Sqrt(e.p[i])
		acc += diff * diff
	}
	return math.Sqrt(acc / 2), nil
}

// DistanceFromUniform returns the L1 distance of d from the uniform
// distribution over its own domain.
func DistanceFromUniform(d Dist) float64 {
	inv := 1 / float64(d.N())
	var acc float64
	for _, v := range d.p {
		acc += math.Abs(v - inv)
	}
	return acc
}

// IsEpsFarFromUniform reports whether ||d - U_n||_1 >= eps.
func IsEpsFarFromUniform(d Dist, eps float64) bool {
	return DistanceFromUniform(d) >= eps
}

// CollisionProb returns sum_i d(i)^2, the probability two iid samples
// collide. For U_n it is exactly 1/n; an L2 gap from uniform shows up as an
// excess here, which is what the Paninski collision tester measures.
func CollisionProb(d Dist) float64 {
	var acc float64
	for _, v := range d.p {
		acc += v * v
	}
	return acc
}

func domainErr(op string, d, e Dist) error {
	return fmt.Errorf("dist: %s across domains of size %d and %d", op, d.N(), e.N())
}
