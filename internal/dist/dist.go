package dist

import (
	"fmt"
	"math"
)

// ProbTolerance is the slack allowed when validating that probabilities sum
// to one.
const ProbTolerance = 1e-9

// Dist is an immutable discrete distribution over {0, ..., n-1}.
type Dist struct {
	p []float64
}

// Uniform returns the uniform distribution U_n.
func Uniform(n int) (Dist, error) {
	if n <= 0 {
		return Dist{}, fmt.Errorf("dist: uniform over %d elements", n)
	}
	p := make([]float64, n)
	inv := 1 / float64(n)
	for i := range p {
		p[i] = inv
	}
	return Dist{p: p}, nil
}

// PointMass returns the distribution concentrated on element i of a domain
// of size n.
func PointMass(n, i int) (Dist, error) {
	if n <= 0 || i < 0 || i >= n {
		return Dist{}, fmt.Errorf("dist: point mass at %d over %d elements", i, n)
	}
	p := make([]float64, n)
	p[i] = 1
	return Dist{p: p}, nil
}

// FromProbs builds a distribution from an explicit probability vector, which
// must be non-negative and sum to 1 within ProbTolerance. The slice is
// copied.
func FromProbs(p []float64) (Dist, error) {
	if len(p) == 0 {
		return Dist{}, fmt.Errorf("dist: empty probability vector")
	}
	var sum float64
	for i, v := range p {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return Dist{}, fmt.Errorf("dist: probability %v at index %d", v, i)
		}
		sum += v
	}
	if math.Abs(sum-1) > ProbTolerance {
		return Dist{}, fmt.Errorf("dist: probabilities sum to %v, want 1", sum)
	}
	cp := make([]float64, len(p))
	copy(cp, p)
	// Renormalize the tolerated drift so downstream exact computations see
	// a true distribution.
	for i := range cp {
		cp[i] /= sum
	}
	return Dist{p: cp}, nil
}

// FromWeights builds a distribution proportional to the given non-negative
// weights.
func FromWeights(w []float64) (Dist, error) {
	if len(w) == 0 {
		return Dist{}, fmt.Errorf("dist: empty weight vector")
	}
	var sum float64
	for i, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return Dist{}, fmt.Errorf("dist: weight %v at index %d", v, i)
		}
		sum += v
	}
	if sum <= 0 {
		return Dist{}, fmt.Errorf("dist: weights sum to %v", sum)
	}
	p := make([]float64, len(w))
	for i, v := range w {
		p[i] = v / sum
	}
	return Dist{p: p}, nil
}

// N returns the domain size.
func (d Dist) N() int { return len(d.p) }

// Prob returns the probability of element i.
func (d Dist) Prob(i int) float64 { return d.p[i] }

// Probs returns a copy of the probability vector.
func (d Dist) Probs() []float64 {
	cp := make([]float64, len(d.p))
	copy(cp, d.p)
	return cp
}

// Support returns the number of elements with strictly positive probability.
func (d Dist) Support() int {
	n := 0
	for _, v := range d.p {
		if v > 0 {
			n++
		}
	}
	return n
}

// Entropy returns the Shannon entropy in bits.
func (d Dist) Entropy() float64 {
	var h float64
	for _, v := range d.p {
		if v > 0 {
			h -= v * math.Log2(v)
		}
	}
	return h
}

// MaxProb returns the largest single-element probability.
func (d Dist) MaxProb() float64 {
	var m float64
	for _, v := range d.p {
		if v > m {
			m = v
		}
	}
	return m
}

// Mix returns the mixture alpha*d + (1-alpha)*e; the two distributions must
// share a domain.
func (d Dist) Mix(e Dist, alpha float64) (Dist, error) {
	if d.N() != e.N() {
		return Dist{}, fmt.Errorf("dist: mixing domains of size %d and %d", d.N(), e.N())
	}
	if alpha < 0 || alpha > 1 {
		return Dist{}, fmt.Errorf("dist: mixture weight %v outside [0,1]", alpha)
	}
	p := make([]float64, d.N())
	for i := range p {
		p[i] = alpha*d.p[i] + (1-alpha)*e.p[i]
	}
	return Dist{p: p}, nil
}

// Average returns the uniform mixture (1/k) * sum of the given
// distributions, the E_z[nu_z] operation from the paper's notation section.
func Average(ds []Dist) (Dist, error) {
	if len(ds) == 0 {
		return Dist{}, fmt.Errorf("dist: averaging zero distributions")
	}
	n := ds[0].N()
	p := make([]float64, n)
	for _, d := range ds {
		if d.N() != n {
			return Dist{}, fmt.Errorf("dist: averaging domains of size %d and %d", n, d.N())
		}
		for i, v := range d.p {
			p[i] += v
		}
	}
	inv := 1 / float64(len(ds))
	for i := range p {
		p[i] *= inv
	}
	return Dist{p: p}, nil
}

// Conditioned returns d conditioned on the element set keep (indices with
// keep[i] true).
func (d Dist) Conditioned(keep []bool) (Dist, error) {
	if len(keep) != d.N() {
		return Dist{}, fmt.Errorf("dist: condition mask of length %d for domain %d", len(keep), d.N())
	}
	p := make([]float64, d.N())
	var sum float64
	for i, k := range keep {
		if k {
			p[i] = d.p[i]
			sum += d.p[i]
		}
	}
	if sum <= 0 {
		return Dist{}, fmt.Errorf("dist: conditioning on a null event")
	}
	for i := range p {
		p[i] /= sum
	}
	return Dist{p: p}, nil
}

// TupleProb returns the probability of observing the exact ordered sample
// tuple under iid draws from d — the product distribution d^q evaluated at
// one point.
func (d Dist) TupleProb(samples []int) (float64, error) {
	prob := 1.0
	for _, s := range samples {
		if s < 0 || s >= d.N() {
			return 0, fmt.Errorf("dist: sample %d outside domain of size %d", s, d.N())
		}
		prob *= d.p[s]
	}
	return prob, nil
}
