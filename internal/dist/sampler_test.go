package dist

import (
	"math"
	"testing"
)

func TestAliasSamplerMatchesDistribution(t *testing.T) {
	rng := testRand(10)
	d, err := FromProbs([]float64{0.5, 0.3, 0.15, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewAliasSampler(d)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 200000
	counts := make([]int, d.N())
	for i := 0; i < trials; i++ {
		counts[s.Sample(rng)]++
	}
	for i := 0; i < d.N(); i++ {
		got := float64(counts[i]) / trials
		// 6-sigma tolerance for a Bernoulli mean estimate.
		sigma := math.Sqrt(d.Prob(i) * (1 - d.Prob(i)) / trials)
		if math.Abs(got-d.Prob(i)) > 6*sigma+1e-9 {
			t.Errorf("element %d: frequency %v, want %v (±%v)", i, got, d.Prob(i), 6*sigma)
		}
	}
}

func TestCDFSamplerMatchesDistribution(t *testing.T) {
	rng := testRand(11)
	d, err := FromProbs([]float64{0.05, 0.05, 0.4, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCDFSampler(d)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 200000
	counts := make([]int, d.N())
	for i := 0; i < trials; i++ {
		counts[s.Sample(rng)]++
	}
	for i := 0; i < d.N(); i++ {
		got := float64(counts[i]) / trials
		sigma := math.Sqrt(d.Prob(i) * (1 - d.Prob(i)) / trials)
		if math.Abs(got-d.Prob(i)) > 6*sigma+1e-9 {
			t.Errorf("element %d: frequency %v, want %v", i, got, d.Prob(i))
		}
	}
}

func TestSamplersAgreeOnSkewedDistributions(t *testing.T) {
	rng := testRand(12)
	zipf, err := Zipf(64, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	alias, err := NewAliasSampler(zipf)
	if err != nil {
		t.Fatal(err)
	}
	cdf, err := NewCDFSampler(zipf)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 100000
	ha := make([]float64, 64)
	hc := make([]float64, 64)
	for i := 0; i < trials; i++ {
		ha[alias.Sample(rng)]++
		hc[cdf.Sample(rng)]++
	}
	var l1 float64
	for i := range ha {
		l1 += math.Abs(ha[i]-hc[i]) / trials
	}
	if l1 > 0.03 {
		t.Errorf("alias and CDF samplers disagree, empirical L1 %v", l1)
	}
}

func TestSamplerNeverSamplesZeroMass(t *testing.T) {
	rng := testRand(13)
	d, err := FromProbs([]float64{0.5, 0, 0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	alias, _ := NewAliasSampler(d)
	cdf, _ := NewCDFSampler(d)
	for i := 0; i < 10000; i++ {
		if s := alias.Sample(rng); s == 1 || s == 3 {
			t.Fatalf("alias sampler produced zero-mass element %d", s)
		}
		if s := cdf.Sample(rng); s == 1 || s == 3 {
			t.Fatalf("CDF sampler produced zero-mass element %d", s)
		}
	}
}

func TestSamplerPointMass(t *testing.T) {
	rng := testRand(14)
	d, _ := PointMass(7, 4)
	alias, _ := NewAliasSampler(d)
	cdf, _ := NewCDFSampler(d)
	for i := 0; i < 1000; i++ {
		if s := alias.Sample(rng); s != 4 {
			t.Fatalf("alias sampled %d from a point mass", s)
		}
		if s := cdf.Sample(rng); s != 4 {
			t.Fatalf("CDF sampled %d from a point mass", s)
		}
	}
}

func TestSampleNAndInto(t *testing.T) {
	rng := testRand(15)
	u := mustUniform(t, 5)
	s, _ := NewAliasSampler(u)
	out := SampleN(s, 100, rng)
	if len(out) != 100 {
		t.Fatalf("SampleN returned %d samples", len(out))
	}
	buf := make([]int, 50)
	SampleInto(s, buf, rng)
	for _, v := range append(out, buf...) {
		if v < 0 || v >= 5 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestHistogramAndEmpirical(t *testing.T) {
	h, err := Histogram([]int{0, 1, 1, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 1 || h[1] != 2 || h[2] != 0 || h[3] != 1 {
		t.Errorf("histogram = %v", h)
	}
	if _, err := Histogram([]int{4}, 4); err == nil {
		t.Error("out-of-range sample accepted")
	}
	e, err := Empirical([]int{0, 1, 1, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Prob(1), 0.5, tol) {
		t.Errorf("empirical = %v", e.Probs())
	}
	if _, err := Empirical(nil, 4); err == nil {
		t.Error("empty sample set accepted")
	}
}

func TestEmptyDomainSamplers(t *testing.T) {
	if _, err := NewAliasSampler(Dist{}); err == nil {
		t.Error("alias over empty domain accepted")
	}
	if _, err := NewCDFSampler(Dist{}); err == nil {
		t.Error("CDF over empty domain accepted")
	}
}

func TestFamilies(t *testing.T) {
	t.Run("zipf", func(t *testing.T) {
		z, err := Zipf(10, 1)
		if err != nil {
			t.Fatal(err)
		}
		if z.Prob(0) < z.Prob(9) {
			t.Error("zipf not decreasing")
		}
		z0, err := Zipf(10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if DistanceFromUniform(z0) > tol {
			t.Error("zipf with s=0 not uniform")
		}
		if _, err := Zipf(0, 1); err == nil {
			t.Error("empty zipf accepted")
		}
		if _, err := Zipf(10, -1); err == nil {
			t.Error("negative exponent accepted")
		}
	})
	t.Run("paired bump", func(t *testing.T) {
		d, err := PairedBump(8, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(DistanceFromUniform(d), 0.3, tol) {
			t.Errorf("distance = %v", DistanceFromUniform(d))
		}
		if _, err := PairedBump(7, 0.3); err == nil {
			t.Error("odd domain accepted")
		}
	})
	t.Run("sparse support", func(t *testing.T) {
		d, err := SparseSupport(10, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(DistanceFromUniform(d), 1, tol) { // 2*(1 - 5/10)
			t.Errorf("distance = %v", DistanceFromUniform(d))
		}
		if d.Support() != 5 {
			t.Errorf("support = %d", d.Support())
		}
		if _, err := SparseSupport(10, 11); err == nil {
			t.Error("oversized support accepted")
		}
	})
	t.Run("heavy hitter", func(t *testing.T) {
		d, err := HeavyHitter(10, 3, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(DistanceFromUniform(d), 0.1, tol) {
			t.Errorf("distance = %v", DistanceFromUniform(d))
		}
		if !almostEqual(d.Prob(3), 0.15, tol) {
			t.Errorf("hot mass = %v", d.Prob(3))
		}
		if _, err := HeavyHitter(10, 3, 0.95); err == nil {
			t.Error("infeasible delta accepted")
		}
		if _, err := HeavyHitter(10, 3, -0.1); err == nil {
			t.Error("negative delta accepted")
		}
	})
}
