package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func testRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x6a09e667f3bcc909))
}

func mustUniform(t *testing.T, n int) Dist {
	t.Helper()
	u, err := Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUniform(t *testing.T) {
	u := mustUniform(t, 8)
	if u.N() != 8 {
		t.Fatalf("N = %d", u.N())
	}
	for i := 0; i < 8; i++ {
		if !almostEqual(u.Prob(i), 0.125, tol) {
			t.Fatalf("P(%d) = %v", i, u.Prob(i))
		}
	}
	if u.Support() != 8 {
		t.Errorf("support = %d", u.Support())
	}
	if !almostEqual(u.Entropy(), 3, tol) {
		t.Errorf("entropy = %v, want 3 bits", u.Entropy())
	}
	if _, err := Uniform(0); err == nil {
		t.Error("Uniform(0) succeeded")
	}
}

func TestPointMass(t *testing.T) {
	d, err := PointMass(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Prob(2) != 1 || d.Support() != 1 || d.Entropy() != 0 {
		t.Errorf("point mass wrong: P(2)=%v support=%d H=%v", d.Prob(2), d.Support(), d.Entropy())
	}
	if _, err := PointMass(5, 5); err == nil {
		t.Error("out-of-range point mass succeeded")
	}
}

func TestFromProbsValidation(t *testing.T) {
	tests := []struct {
		name string
		p    []float64
	}{
		{name: "empty", p: nil},
		{name: "negative", p: []float64{-0.5, 1.5}},
		{name: "sum below one", p: []float64{0.3, 0.3}},
		{name: "sum above one", p: []float64{0.8, 0.8}},
		{name: "nan", p: []float64{math.NaN(), 1}},
		{name: "inf", p: []float64{math.Inf(1), 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FromProbs(tt.p); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestFromProbsCopiesAndRenormalizes(t *testing.T) {
	p := []float64{0.25, 0.75}
	d, err := FromProbs(p)
	if err != nil {
		t.Fatal(err)
	}
	p[0] = 9
	if d.Prob(0) != 0.25 {
		t.Error("FromProbs aliased its input")
	}
	probs := d.Probs()
	probs[0] = 7
	if d.Prob(0) != 0.25 {
		t.Error("Probs aliased the internal slice")
	}
}

func TestFromWeights(t *testing.T) {
	d, err := FromWeights([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d.Prob(0), 0.25, tol) || !almostEqual(d.Prob(1), 0.75, tol) {
		t.Errorf("probs = %v", d.Probs())
	}
	if _, err := FromWeights([]float64{0, 0}); err == nil {
		t.Error("all-zero weights succeeded")
	}
	if _, err := FromWeights([]float64{-1, 2}); err == nil {
		t.Error("negative weight succeeded")
	}
}

func TestMix(t *testing.T) {
	u := mustUniform(t, 4)
	p, err := PointMass(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Mix(u, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Prob(0), 0.5+0.125, tol) {
		t.Errorf("mixed P(0) = %v", m.Prob(0))
	}
	if _, err := p.Mix(mustUniform(t, 5), 0.5); err == nil {
		t.Error("cross-domain mix succeeded")
	}
	if _, err := p.Mix(u, 1.5); err == nil {
		t.Error("mix weight above 1 succeeded")
	}
}

func TestAverage(t *testing.T) {
	a, _ := PointMass(2, 0)
	b, _ := PointMass(2, 1)
	avg, err := Average([]Dist{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(avg.Prob(0), 0.5, tol) {
		t.Errorf("average = %v", avg.Probs())
	}
	if _, err := Average(nil); err == nil {
		t.Error("empty average succeeded")
	}
	if _, err := Average([]Dist{a, mustUniform(t, 3)}); err == nil {
		t.Error("cross-domain average succeeded")
	}
}

func TestConditioned(t *testing.T) {
	d, _ := FromProbs([]float64{0.1, 0.2, 0.3, 0.4})
	c, err := d.Conditioned([]bool{false, true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c.Prob(1), 0.4, tol) || !almostEqual(c.Prob(2), 0.6, tol) || c.Prob(0) != 0 {
		t.Errorf("conditioned = %v", c.Probs())
	}
	if _, err := d.Conditioned([]bool{false, false, false, false}); err == nil {
		t.Error("conditioning on null event succeeded")
	}
	if _, err := d.Conditioned([]bool{true}); err == nil {
		t.Error("wrong-length mask succeeded")
	}
}

func TestTupleProb(t *testing.T) {
	d, _ := FromProbs([]float64{0.5, 0.25, 0.25})
	got, err := d.TupleProb([]int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.0625, tol) {
		t.Errorf("tuple prob = %v", got)
	}
	if p, err := d.TupleProb(nil); err != nil || p != 1 {
		t.Errorf("empty tuple = %v, %v", p, err)
	}
	if _, err := d.TupleProb([]int{3}); err == nil {
		t.Error("out-of-range sample succeeded")
	}
}

func TestDistances(t *testing.T) {
	u := mustUniform(t, 4)
	d, _ := FromProbs([]float64{0.5, 0.5, 0, 0})

	l1, err := L1(d, u)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l1, 1, tol) {
		t.Errorf("L1 = %v, want 1", l1)
	}
	tv, _ := TV(d, u)
	if !almostEqual(tv, 0.5, tol) {
		t.Errorf("TV = %v, want 0.5", tv)
	}
	l2, _ := L2(d, u)
	if !almostEqual(l2, 0.5, tol) {
		t.Errorf("L2 = %v, want 0.5", l2)
	}
	linf, _ := LInf(d, u)
	if !almostEqual(linf, 0.25, tol) {
		t.Errorf("LInf = %v, want 0.25", linf)
	}
	kl, _ := KL(d, u)
	if !almostEqual(kl, 1, tol) { // log2(0.5/0.25) = 1 bit
		t.Errorf("KL = %v, want 1", kl)
	}
	chi, _ := ChiSquared(d, u)
	if !almostEqual(chi, 0.25*4, tol) {
		t.Errorf("chi2 = %v, want 1", chi)
	}
	h, _ := Hellinger(d, u)
	want := math.Sqrt((2*math.Pow(math.Sqrt(0.5)-math.Sqrt(0.25), 2) + 2*0.25) / 2)
	if !almostEqual(h, want, tol) {
		t.Errorf("Hellinger = %v, want %v", h, want)
	}
}

func TestKLInfiniteWhenUnsupported(t *testing.T) {
	a, _ := FromProbs([]float64{1, 0})
	b, _ := FromProbs([]float64{0, 1})
	kl, err := KL(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(kl, 1) {
		t.Errorf("KL = %v, want +Inf", kl)
	}
	chi, _ := ChiSquared(a, b)
	if !math.IsInf(chi, 1) {
		t.Errorf("chi2 = %v, want +Inf", chi)
	}
}

func TestDistanceDomainMismatch(t *testing.T) {
	a := mustUniform(t, 2)
	b := mustUniform(t, 3)
	if _, err := L1(a, b); err == nil {
		t.Error("L1 across domains succeeded")
	}
	if _, err := KL(a, b); err == nil {
		t.Error("KL across domains succeeded")
	}
	if _, err := Hellinger(a, b); err == nil {
		t.Error("Hellinger across domains succeeded")
	}
	if _, err := ChiSquared(a, b); err == nil {
		t.Error("chi2 across domains succeeded")
	}
	if _, err := LInf(a, b); err == nil {
		t.Error("LInf across domains succeeded")
	}
	if _, err := L2(a, b); err == nil {
		t.Error("L2 across domains succeeded")
	}
}

func TestDistanceIdentities(t *testing.T) {
	rng := testRand(1)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.IntN(30)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64()
		}
		d, err := FromWeights(w)
		if err != nil {
			t.Fatal(err)
		}
		if l1, _ := L1(d, d); l1 != 0 {
			t.Errorf("L1(d,d) = %v", l1)
		}
		if kl, _ := KL(d, d); kl != 0 {
			t.Errorf("KL(d,d) = %v", kl)
		}
		u := mustUniform(t, n)
		l1, _ := L1(d, u)
		if !almostEqual(l1, DistanceFromUniform(d), tol) {
			t.Errorf("DistanceFromUniform disagrees with L1: %v vs %v", DistanceFromUniform(d), l1)
		}
		tv, _ := TV(d, u)
		h, _ := Hellinger(d, u)
		// Standard sandwich: h^2 <= TV <= h*sqrt(2).
		if h*h > tv+tol || tv > h*math.Sqrt2+tol {
			t.Errorf("Hellinger/TV sandwich violated: h=%v tv=%v", h, tv)
		}
		// Pinsker: TV <= sqrt(KL_nats/2).
		kl, _ := KL(d, u)
		if tv > math.Sqrt(kl*math.Ln2/2)+tol {
			t.Errorf("Pinsker violated: tv=%v kl(bits)=%v", tv, kl)
		}
	}
}

func TestCollisionProb(t *testing.T) {
	u := mustUniform(t, 10)
	if !almostEqual(CollisionProb(u), 0.1, tol) {
		t.Errorf("uniform collision prob = %v", CollisionProb(u))
	}
	d, _ := PointMass(10, 3)
	if !almostEqual(CollisionProb(d), 1, tol) {
		t.Errorf("point mass collision prob = %v", CollisionProb(d))
	}
	// Collision probability of any d over [n] is at least 1/n with equality
	// iff uniform (used implicitly by the collision tester).
	rng := testRand(2)
	for trial := 0; trial < 10; trial++ {
		w := make([]float64, 16)
		for i := range w {
			w[i] = rng.Float64()
		}
		d, _ := FromWeights(w)
		if CollisionProb(d) < 1.0/16-tol {
			t.Errorf("collision prob %v below 1/n", CollisionProb(d))
		}
	}
}

func TestIsEpsFarFromUniform(t *testing.T) {
	d, err := TwoBump(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(DistanceFromUniform(d), 0.5, tol) {
		t.Errorf("two-bump distance = %v, want 0.5", DistanceFromUniform(d))
	}
	if !IsEpsFarFromUniform(d, 0.5) || IsEpsFarFromUniform(d, 0.51) {
		t.Error("eps-far classification wrong")
	}
}

func TestQuickDistanceMetricProperties(t *testing.T) {
	gen := func(seed uint64, n int) Dist {
		rng := testRand(seed)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64() + 1e-6
		}
		d, err := FromWeights(w)
		if err != nil {
			panic(err)
		}
		return d
	}
	prop := func(seedA, seedB, seedC uint64, nRaw uint8) bool {
		n := 2 + int(nRaw%30)
		a, b, c := gen(seedA, n), gen(seedB, n), gen(seedC, n)
		tvAB, _ := TV(a, b)
		tvBA, _ := TV(b, a)
		if math.Abs(tvAB-tvBA) > tol {
			return false // symmetry
		}
		tvAC, _ := TV(a, c)
		tvCB, _ := TV(c, b)
		if tvAB > tvAC+tvCB+tol {
			return false // triangle inequality
		}
		if tvAB < 0 || tvAB > 1+tol {
			return false // range
		}
		hAB, _ := Hellinger(a, b)
		hBA, _ := Hellinger(b, a)
		if math.Abs(hAB-hBA) > tol {
			return false
		}
		hAC, _ := Hellinger(a, c)
		hCB, _ := Hellinger(c, b)
		return hAB <= hAC+hCB+tol // Hellinger is a metric
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickKLNonNegativeAndMixtureContraction(t *testing.T) {
	prop := func(seedA, seedB uint64, nRaw, alphaRaw uint8) bool {
		n := 2 + int(nRaw%20)
		rngA, rngB := testRand(seedA), testRand(seedB)
		wa := make([]float64, n)
		wb := make([]float64, n)
		for i := range wa {
			wa[i] = rngA.Float64() + 1e-6
			wb[i] = rngB.Float64() + 1e-6
		}
		a, _ := FromWeights(wa)
		b, _ := FromWeights(wb)
		kl, err := KL(a, b)
		if err != nil || kl < 0 {
			return false
		}
		// Mixing a toward b contracts every distance to b.
		alpha := float64(alphaRaw%100) / 100
		mixed, err := a.Mix(b, alpha) // alpha*a + (1-alpha)*b
		if err != nil {
			return false
		}
		l1Orig, _ := L1(a, b)
		l1Mixed, _ := L1(mixed, b)
		return l1Mixed <= l1Orig+tol
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
