package dist

import (
	"errors"
	"testing"
)

func mustHard(t *testing.T, ell int, eps float64) HardInstance {
	t.Helper()
	h, err := NewHardInstance(ell, eps)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHardInstanceValidation(t *testing.T) {
	tests := []struct {
		name string
		ell  int
		eps  float64
	}{
		{name: "negative ell", ell: -1, eps: 0.5},
		{name: "huge ell", ell: MaxHardEll + 1, eps: 0.5},
		{name: "zero eps", ell: 2, eps: 0},
		{name: "eps above one", ell: 2, eps: 1.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewHardInstance(tt.ell, tt.eps); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestHardInstanceSizes(t *testing.T) {
	h := mustHard(t, 3, 0.5)
	if h.N() != 16 || h.CubeSize() != 8 {
		t.Fatalf("N=%d cube=%d", h.N(), h.CubeSize())
	}
}

func TestElementIDRoundTrip(t *testing.T) {
	h := mustHard(t, 2, 0.5)
	for x := 0; x < h.CubeSize(); x++ {
		for _, s := range []int{1, -1} {
			id, err := h.ElementID(x, s)
			if err != nil {
				t.Fatal(err)
			}
			gx, gs, err := h.SplitID(id)
			if err != nil {
				t.Fatal(err)
			}
			if gx != x || gs != s {
				t.Fatalf("(%d,%d) -> %d -> (%d,%d)", x, s, id, gx, gs)
			}
		}
	}
	if _, err := h.ElementID(4, 1); err == nil {
		t.Error("out-of-range x accepted")
	}
	if _, err := h.ElementID(0, 0); err == nil {
		t.Error("zero sign accepted")
	}
	if _, _, err := h.SplitID(-1); err == nil {
		t.Error("negative id accepted")
	}
	if _, _, err := h.SplitID(h.N()); err == nil {
		t.Error("too-large id accepted")
	}
}

func TestPerturbationFromBits(t *testing.T) {
	z, err := NewPerturbationFromBits(2, 0b0101)
	if err != nil {
		t.Fatal(err)
	}
	want := Perturbation{-1, 1, -1, 1}
	for i := range want {
		if z[i] != want[i] {
			t.Fatalf("z = %v, want %v", z, want)
		}
	}
	if _, err := NewPerturbationFromBits(7, 0); err == nil {
		t.Error("ell=7 bitmask accepted")
	}
}

func TestPerturbationValidate(t *testing.T) {
	if err := (Perturbation{1, -1}).Validate(); err != nil {
		t.Errorf("valid perturbation rejected: %v", err)
	}
	if err := (Perturbation{1, 0}).Validate(); err == nil {
		t.Error("zero entry accepted")
	}
	if err := (Perturbation{}).Validate(); err == nil {
		t.Error("empty perturbation accepted")
	}
}

func TestPerturbedIsDistribution(t *testing.T) {
	h := mustHard(t, 3, 0.7)
	rng := testRand(3)
	for trial := 0; trial < 10; trial++ {
		d, z, err := h.RandomPerturbed(rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(z) != h.CubeSize() {
			t.Fatalf("perturbation length %d", len(z))
		}
		var sum float64
		for i := 0; i < d.N(); i++ {
			if d.Prob(i) < 0 {
				t.Fatalf("negative probability %v", d.Prob(i))
			}
			sum += d.Prob(i)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestPerturbedExactlyEpsFar(t *testing.T) {
	// || nu_z - U ||_1 = eps for every z (each element moves by eps/n).
	for _, eps := range []float64{0.1, 0.5, 1} {
		h := mustHard(t, 2, eps)
		err := EnumeratePerturbations(2, func(z Perturbation) error {
			d, err := h.Perturbed(z)
			if err != nil {
				return err
			}
			if got := DistanceFromUniform(d); !almostEqual(got, eps, 1e-9) {
				t.Errorf("eps=%v z=%v: distance %v", eps, z, got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPerturbedPairing(t *testing.T) {
	// Matched pairs (x,+1),(x,-1) always carry total mass 2/n: the
	// perturbation moves mass only within a pair.
	h := mustHard(t, 3, 0.9)
	rng := testRand(4)
	d, _, err := h.RandomPerturbed(rng)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / float64(h.N())
	for x := 0; x < h.CubeSize(); x++ {
		plus, _ := h.ElementID(x, 1)
		minus, _ := h.ElementID(x, -1)
		if !almostEqual(d.Prob(plus)+d.Prob(minus), want, tol) {
			t.Fatalf("pair %d has mass %v", x, d.Prob(plus)+d.Prob(minus))
		}
	}
}

func TestPerturbedSignConvention(t *testing.T) {
	// With z(x) = +1, the (x, +1) element is heavier.
	h := mustHard(t, 1, 0.5)
	z := Perturbation{1, -1}
	d, err := h.Perturbed(z)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(h.N())
	id00, _ := h.ElementID(0, 1)
	id01, _ := h.ElementID(0, -1)
	id10, _ := h.ElementID(1, 1)
	id11, _ := h.ElementID(1, -1)
	if !almostEqual(d.Prob(id00), 1.5/n, tol) || !almostEqual(d.Prob(id01), 0.5/n, tol) {
		t.Errorf("z=+1 vertex mis-weighted: %v, %v", d.Prob(id00), d.Prob(id01))
	}
	if !almostEqual(d.Prob(id10), 0.5/n, tol) || !almostEqual(d.Prob(id11), 1.5/n, tol) {
		t.Errorf("z=-1 vertex mis-weighted: %v, %v", d.Prob(id10), d.Prob(id11))
	}
}

func TestPerturbedWrongLength(t *testing.T) {
	h := mustHard(t, 2, 0.5)
	if _, err := h.Perturbed(Perturbation{1, -1}); err == nil {
		t.Error("short perturbation accepted")
	}
	if _, err := h.Perturbed(Perturbation{1, 1, 1, 2}); err == nil {
		t.Error("invalid entry accepted")
	}
}

func TestMixtureIsExactlyUniform(t *testing.T) {
	// E_z[nu_z] = U_n — the Section 3 observation that makes the family
	// hard.
	for ell := 0; ell <= 3; ell++ {
		h := mustHard(t, ell, 0.8)
		mix, err := h.PerturbedMixture()
		if err != nil {
			t.Fatal(err)
		}
		u := mustUniform(t, h.N())
		l1, err := L1(mix, u)
		if err != nil {
			t.Fatal(err)
		}
		if l1 > 1e-9 {
			t.Errorf("ell=%d: mixture is %v from uniform", ell, l1)
		}
	}
}

func TestEnumeratePerturbationsCountAndOrder(t *testing.T) {
	var seen []uint64
	err := EnumeratePerturbations(2, func(z Perturbation) error {
		var bits uint64
		for i, v := range z {
			if v == -1 {
				bits |= 1 << uint(i)
			}
		}
		seen = append(seen, bits)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 16 {
		t.Fatalf("enumerated %d perturbations, want 16", len(seen))
	}
	for i, b := range seen {
		if b != uint64(i) {
			t.Fatalf("order broken at %d: %d", i, b)
		}
	}
}

func TestEnumeratePerturbationsEarlyStop(t *testing.T) {
	sentinel := errors.New("stop")
	count := 0
	err := EnumeratePerturbations(2, func(Perturbation) error {
		count++
		if count == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if count != 3 {
		t.Fatalf("visited %d", count)
	}
}

func TestEnumeratePerturbationsTooLarge(t *testing.T) {
	if err := EnumeratePerturbations(5, func(Perturbation) error { return nil }); err == nil {
		t.Error("ell=5 enumeration accepted")
	}
}

func TestPerturbedCollisionExcess(t *testing.T) {
	// sum nu_z(i)^2 = (1 + eps^2)/n for every z: the constant collision
	// excess that powers the collision tester against this family.
	h := mustHard(t, 3, 0.6)
	rng := testRand(5)
	want := (1 + 0.36) / float64(h.N())
	for trial := 0; trial < 5; trial++ {
		d, _, err := h.RandomPerturbed(rng)
		if err != nil {
			t.Fatal(err)
		}
		if got := CollisionProb(d); !almostEqual(got, want, 1e-12) {
			t.Errorf("collision prob %v, want %v", got, want)
		}
	}
}

func TestHardFamilyMarginals(t *testing.T) {
	// The marginal over x (ignoring s) is uniform on the cube for every z.
	h := mustHard(t, 3, 0.9)
	rng := testRand(6)
	d, _, err := h.RandomPerturbed(rng)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / float64(h.CubeSize())
	for x := 0; x < h.CubeSize(); x++ {
		plus, _ := h.ElementID(x, 1)
		minus, _ := h.ElementID(x, -1)
		if got := d.Prob(plus) + d.Prob(minus); !almostEqual(got, want, tol) {
			t.Fatalf("marginal at %d = %v, want %v", x, got, want)
		}
	}
}
