package dist

import (
	"fmt"
	"math"
)

// The families below are workload generators for the examples and
// experiments: distributions whose distance from uniform is easy to dial in.

// Zipf returns the Zipf distribution with exponent s over n elements:
// p(i) proportional to 1/(i+1)^s.
func Zipf(n int, s float64) (Dist, error) {
	if n <= 0 {
		return Dist{}, fmt.Errorf("dist: zipf over %d elements", n)
	}
	if s < 0 {
		return Dist{}, fmt.Errorf("dist: zipf exponent %v < 0", s)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
	}
	return FromWeights(w)
}

// TwoBump splits the domain in half and tilts mass by eps: the first half
// gets (1+eps)/n per element and the second half (1-eps)/n. Its L1 distance
// from uniform is exactly eps (for even n).
func TwoBump(n int, eps float64) (Dist, error) {
	if n <= 0 || n%2 != 0 {
		return Dist{}, fmt.Errorf("dist: two-bump needs a positive even domain, got %d", n)
	}
	if eps < 0 || eps > 1 {
		return Dist{}, fmt.Errorf("dist: two-bump eps %v outside [0,1]", eps)
	}
	p := make([]float64, n)
	inv := 1 / float64(n)
	for i := 0; i < n/2; i++ {
		p[i] = inv * (1 + eps)
		p[i+n/2] = inv * (1 - eps)
	}
	return Dist{p: p}, nil
}

// PairedBump is the canonical eps-far instance matching the paper's hard
// family with the all-plus perturbation: even elements get (1+eps)/n, odd
// elements (1-eps)/n.
func PairedBump(n int, eps float64) (Dist, error) {
	if n <= 0 || n%2 != 0 {
		return Dist{}, fmt.Errorf("dist: paired-bump needs a positive even domain, got %d", n)
	}
	if eps < 0 || eps > 1 {
		return Dist{}, fmt.Errorf("dist: paired-bump eps %v outside [0,1]", eps)
	}
	p := make([]float64, n)
	inv := 1 / float64(n)
	for i := 0; i < n; i += 2 {
		p[i] = inv * (1 + eps)
		p[i+1] = inv * (1 - eps)
	}
	return Dist{p: p}, nil
}

// SparseSupport spreads all mass uniformly over the first k elements of a
// domain of size n. Its L1 distance from uniform is 2(1 - k/n).
func SparseSupport(n, k int) (Dist, error) {
	if n <= 0 || k <= 0 || k > n {
		return Dist{}, fmt.Errorf("dist: sparse support k=%d over n=%d", k, n)
	}
	p := make([]float64, n)
	inv := 1 / float64(k)
	for i := 0; i < k; i++ {
		p[i] = inv
	}
	return Dist{p: p}, nil
}

// HeavyHitter gives one element extra mass delta on top of uniform,
// removing it evenly from the others. L1 distance from uniform is 2*delta.
func HeavyHitter(n int, hot int, delta float64) (Dist, error) {
	if n <= 1 || hot < 0 || hot >= n {
		return Dist{}, fmt.Errorf("dist: heavy hitter %d over %d elements", hot, n)
	}
	inv := 1 / float64(n)
	if delta < 0 || inv+delta > 1 || delta/float64(n-1) > inv {
		return Dist{}, fmt.Errorf("dist: heavy hitter mass delta %v infeasible for n=%d", delta, n)
	}
	p := make([]float64, n)
	for i := range p {
		p[i] = inv - delta/float64(n-1)
	}
	p[hot] = inv + delta
	return Dist{p: p}, nil
}
