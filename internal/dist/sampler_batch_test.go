package dist

import (
	"math/rand/v2"
	"testing"
)

// batchSamplers builds one instance of every BatchSampler in the package
// over a common skewed distribution (uniform for the samplers that fix
// their own distribution).
func batchSamplers(t *testing.T, n int) map[string]BatchSampler {
	t.Helper()
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(i%7 + 1)
	}
	d, err := FromWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	alias, err := NewAliasSampler(d)
	if err != nil {
		t.Fatal(err)
	}
	cdf, err := NewCDFSampler(d)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := NewUniformSampler(n)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]BatchSampler{
		"alias":   alias,
		"cdf":     cdf,
		"uniform": uni,
		"nop":     NopSampler{},
	}
}

// TestSampleIntoMatchesSample is the stream-compatibility property test:
// for every BatchSampler, every seed, and every batch-size split,
// SampleInto must consume the same RNG draws — and yield the same
// elements — as repeated Sample.
func TestSampleIntoMatchesSample(t *testing.T) {
	const n, total = 23, 257
	for name, s := range batchSamplers(t, n) {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(0); seed < 8; seed++ {
				seqRNG := rand.New(rand.NewPCG(seed, seed^0xabcdef))
				want := make([]int, total)
				for i := range want {
					want[i] = s.Sample(seqRNG)
				}
				// Fill the same total through batches of varying sizes,
				// exercising empty, single-element, and large batches.
				for _, chunk := range []int{1, 3, 16, total} {
					batchRNG := rand.New(rand.NewPCG(seed, seed^0xabcdef))
					got := make([]int, total)
					for lo := 0; lo < total; lo += chunk {
						hi := lo + chunk
						if hi > total {
							hi = total
						}
						s.SampleInto(got[lo:hi], batchRNG)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("seed %d chunk %d: element %d is %d via SampleInto, %d via Sample",
								seed, chunk, i, got[i], want[i])
						}
					}
					// Both paths must leave the RNG in the same state.
					if a, b := seqRNG.Uint64(), batchRNG.Uint64(); a != b {
						t.Fatalf("seed %d chunk %d: RNG states diverge after batch (%d vs %d)", seed, chunk, a, b)
					}
					seqRNG = rand.New(rand.NewPCG(seed, seed^0xabcdef))
					for i := 0; i < total; i++ {
						s.Sample(seqRNG)
					}
				}
			}
		})
	}
}

// TestPackageSampleIntoDispatchesBatch checks the package-level helper
// routes through the batch path and stays stream-compatible with the
// per-element fallback.
func TestPackageSampleIntoDispatchesBatch(t *testing.T) {
	const n, q = 17, 100
	for name, s := range batchSamplers(t, n) {
		t.Run(name, func(t *testing.T) {
			rngA := rand.New(rand.NewPCG(5, 11))
			rngB := rand.New(rand.NewPCG(5, 11))
			buf := make([]int, q)
			SampleInto(s, buf, rngA)
			for i := range buf {
				if want := s.Sample(rngB); buf[i] != want {
					t.Fatalf("element %d: %d, want %d", i, buf[i], want)
				}
			}
		})
	}
}

// TestUniformSamplerBounds checks range and rough uniformity of the fast
// path.
func TestUniformSamplerBounds(t *testing.T) {
	const n, total = 8, 16000
	u, err := NewUniformSampler(n)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != n {
		t.Fatalf("N() = %d, want %d", u.N(), n)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	buf := make([]int, total)
	u.SampleInto(buf, rng)
	counts := make([]int, n)
	for _, s := range buf {
		if s < 0 || s >= n {
			t.Fatalf("sample %d outside [0,%d)", s, n)
		}
		counts[s]++
	}
	want := float64(total) / n
	for i, c := range counts {
		if float64(c) < 0.8*want || float64(c) > 1.2*want {
			t.Fatalf("element %d drawn %d times, want ~%.0f", i, c, want)
		}
	}
	if _, err := NewUniformSampler(0); err == nil {
		t.Fatal("NewUniformSampler(0) succeeded")
	}
}

// TestNopSampler pins the no-op sampler's contract: domain size 1, always
// element 0, zero randomness consumed.
func TestNopSampler(t *testing.T) {
	s := NopSampler{}
	if s.N() != 1 {
		t.Fatalf("N() = %d, want 1", s.N())
	}
	rng := rand.New(rand.NewPCG(3, 4))
	probe := rand.New(rand.NewPCG(3, 4))
	buf := []int{9, 9, 9}
	s.SampleInto(buf, rng)
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("element %d = %d, want 0", i, v)
		}
	}
	if s.Sample(rng) != 0 {
		t.Fatal("Sample != 0")
	}
	if rng.Uint64() != probe.Uint64() {
		t.Fatal("NopSampler consumed randomness")
	}
}

// TestSampleIntoNoAllocs guards the zero-allocation contract of the
// batch path for every sampler kind.
func TestSampleIntoNoAllocs(t *testing.T) {
	for name, s := range batchSamplers(t, 64) {
		rng := rand.New(rand.NewPCG(7, 9))
		buf := make([]int, 128)
		s := s
		allocs := testing.AllocsPerRun(100, func() {
			SampleInto(s, buf, rng)
		})
		if allocs != 0 {
			t.Errorf("%s: SampleInto allocates %.1f per batch, want 0", name, allocs)
		}
	}
}

func BenchmarkAliasSamplePerElement(b *testing.B) {
	d, err := Uniform(1024)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewAliasSampler(d)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	buf := make([]int, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range buf {
			buf[j] = s.Sample(rng)
		}
	}
}

func BenchmarkAliasSampleInto(b *testing.B) {
	d, err := Uniform(1024)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewAliasSampler(d)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	buf := make([]int, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleInto(buf, rng)
	}
}

func BenchmarkUniformSampleInto(b *testing.B) {
	s, err := NewUniformSampler(1024)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	buf := make([]int, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleInto(buf, rng)
	}
}
