package dist

import (
	"math"
	"testing"
)

func TestIdentityReductionValidation(t *testing.T) {
	u := mustUniform(t, 4)
	if _, err := NewIdentityReduction(Dist{}, 0.5); err == nil {
		t.Error("empty target accepted")
	}
	if _, err := NewIdentityReduction(u, 0); err == nil {
		t.Error("zero eps accepted")
	}
	if _, err := NewIdentityReduction(u, 1.5); err == nil {
		t.Error("eps above one accepted")
	}
}

func TestReductionYesCaseNearUniform(t *testing.T) {
	// Feeding the target itself through the filter must land within
	// YesSlack of uniform — exactly computable via Pushforward.
	targets := map[string]func() (Dist, error){
		"uniform":  func() (Dist, error) { return Uniform(16) },
		"zipf":     func() (Dist, error) { return Zipf(16, 1) },
		"two bump": func() (Dist, error) { return TwoBump(16, 0.6) },
		"sparse":   func() (Dist, error) { return SparseSupport(16, 3) },
	}
	for name, mk := range targets {
		t.Run(name, func(t *testing.T) {
			target, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewIdentityReduction(target, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			out, err := r.Pushforward(target)
			if err != nil {
				t.Fatal(err)
			}
			if got := DistanceFromUniform(out); got > r.YesSlack()+1e-9 {
				t.Errorf("yes-case distance %v exceeds slack %v", got, r.YesSlack())
			}
		})
	}
}

func TestReductionFarCaseStaysFar(t *testing.T) {
	target, err := Zipf(16, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.3
	r, err := NewIdentityReduction(target, eps)
	if err != nil {
		t.Fatal(err)
	}
	// Build several P with ||P - target||_1 >= eps and check the filtered
	// output keeps the guaranteed distance from uniform.
	fars := []func() (Dist, error){
		func() (Dist, error) { return SparseSupport(16, 2) },
		func() (Dist, error) { return PointMass(16, 7) },
		func() (Dist, error) { return TwoBump(16, 0.9) },
	}
	for i, mk := range fars {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		l1, err := L1(p, target)
		if err != nil {
			t.Fatal(err)
		}
		if l1 < eps {
			t.Fatalf("test case %d is only %v far from target", i, l1)
		}
		out, err := r.Pushforward(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := DistanceFromUniform(out); got < r.FarGuarantee()-1e-9 {
			t.Errorf("case %d: output distance %v below guarantee %v", i, got, r.FarGuarantee())
		}
	}
}

func TestReductionPreservesFilteredL1(t *testing.T) {
	// Bucketing preserves L1 between any two *filtered* distributions
	// exactly; only the mixing contracts. So the output gap must be exactly
	// (1 - alpha) * ||P - D||_1 whenever the pair shares the same filter.
	target, _ := Zipf(8, 1)
	eps := 0.5
	r, err := NewIdentityReduction(target, eps)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := SparseSupport(8, 3)
	outP, err := r.Pushforward(p)
	if err != nil {
		t.Fatal(err)
	}
	outD, err := r.Pushforward(target)
	if err != nil {
		t.Fatal(err)
	}
	gapIn, _ := L1(p, target)
	gapOut, _ := L1(outP, outD)
	if !almostEqual(gapOut, (1-eps/4)*gapIn, 1e-9) {
		t.Errorf("filtered gap %v, want %v", gapOut, (1-eps/4)*gapIn)
	}
}

func TestReductionMapMatchesPushforward(t *testing.T) {
	rng := testRand(20)
	target, _ := Zipf(8, 1)
	r, err := NewIdentityReduction(target, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := TwoBump(8, 0.4)
	want, err := r.Pushforward(p)
	if err != nil {
		t.Fatal(err)
	}
	sampler, _ := NewAliasSampler(p)
	const trials = 300000
	counts := make([]float64, r.OutputDomain())
	for i := 0; i < trials; i++ {
		mapped, err := r.Map(sampler.Sample(rng), rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[mapped]++
	}
	var l1 float64
	for b := range counts {
		l1 += math.Abs(counts[b]/trials - want.Prob(b))
	}
	// Expected empirical L1 error is about sqrt(m/trials).
	budget := 4 * math.Sqrt(float64(r.OutputDomain())/trials)
	if l1 > budget {
		t.Errorf("empirical pushforward L1 error %v exceeds %v", l1, budget)
	}
}

func TestReductionMapRange(t *testing.T) {
	rng := testRand(21)
	target, _ := Uniform(6)
	r, err := NewIdentityReduction(target, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		b, err := r.Map(rng.IntN(6), rng)
		if err != nil {
			t.Fatal(err)
		}
		if b < 0 || b >= r.OutputDomain() {
			t.Fatalf("mapped bucket %d out of range", b)
		}
	}
	if _, err := r.Map(6, rng); err == nil {
		t.Error("out-of-range sample accepted")
	}
	if _, err := r.Pushforward(mustUniform(t, 7)); err == nil {
		t.Error("cross-domain pushforward accepted")
	}
}

func TestReductionGuaranteesPositive(t *testing.T) {
	for _, eps := range []float64{0.05, 0.1, 0.5, 1} {
		target, _ := Zipf(32, 1.5)
		r, err := NewIdentityReduction(target, eps)
		if err != nil {
			t.Fatal(err)
		}
		if r.FarGuarantee() < eps/2 {
			t.Errorf("eps=%v: far guarantee %v below eps/2", eps, r.FarGuarantee())
		}
		if r.YesSlack() > eps/8+1e-12 {
			t.Errorf("eps=%v: yes slack %v above eps/8", eps, r.YesSlack())
		}
	}
}

func TestApportionSumsExactly(t *testing.T) {
	rng := testRand(22)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.IntN(40)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64() + 1e-3
		}
		d, err := FromWeights(w)
		if err != nil {
			t.Fatal(err)
		}
		m := n + rng.IntN(1000)
		counts, err := apportion(d, m)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i, c := range counts {
			if c < 0 {
				t.Fatalf("negative count at %d", i)
			}
			// Largest remainder never strays more than 1 from proportional.
			exact := d.Prob(i) * float64(m)
			if math.Abs(float64(c)-exact) > 1+1e-9 {
				t.Fatalf("count %d strays from %v", c, exact)
			}
			total += c
		}
		if total != m {
			t.Fatalf("counts sum to %d, want %d", total, m)
		}
	}
}
