package dist

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Sampler draws iid samples from a fixed distribution. Implementations are
// safe for concurrent use as long as each goroutine supplies its own
// *rand.Rand.
type Sampler interface {
	// Sample draws one element.
	Sample(rng *rand.Rand) int
	// N returns the domain size.
	N() int
}

// Verify interface compliance.
var (
	_ Sampler = (*AliasSampler)(nil)
	_ Sampler = (*CDFSampler)(nil)
)

// AliasSampler draws samples in O(1) time using Vose's alias method, after
// O(n) preprocessing. It is the default sampler throughout the repository.
type AliasSampler struct {
	prob  []float64
	alias []int
}

// NewAliasSampler preprocesses d with Vose's algorithm.
func NewAliasSampler(d Dist) (*AliasSampler, error) {
	n := d.N()
	if n == 0 {
		return nil, fmt.Errorf("dist: alias sampler over empty domain")
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, v := range d.p {
		scaled[i] = v * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	prob := make([]float64, n)
	alias := make([]int, n)
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range small {
		// Only reachable through floating-point drift; the cell is full.
		prob[i] = 1
		alias[i] = i
	}
	return &AliasSampler{prob: prob, alias: alias}, nil
}

// N returns the domain size.
func (a *AliasSampler) N() int { return len(a.prob) }

// Sample draws one element in O(1).
func (a *AliasSampler) Sample(rng *rand.Rand) int {
	i := rng.IntN(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// CDFSampler draws samples by binary search over the cumulative distribution
// in O(log n) time. It serves as the correctness oracle for AliasSampler and
// as the ablation comparison point in the benchmarks.
type CDFSampler struct {
	cdf []float64
}

// NewCDFSampler precomputes the cumulative distribution of d.
func NewCDFSampler(d Dist) (*CDFSampler, error) {
	n := d.N()
	if n == 0 {
		return nil, fmt.Errorf("dist: CDF sampler over empty domain")
	}
	cdf := make([]float64, n)
	var acc float64
	for i, v := range d.p {
		acc += v
		cdf[i] = acc
	}
	cdf[n-1] = 1 // absorb rounding drift so search never falls off the end
	return &CDFSampler{cdf: cdf}, nil
}

// N returns the domain size.
func (c *CDFSampler) N() int { return len(c.cdf) }

// Sample draws one element in O(log n).
func (c *CDFSampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(c.cdf, u)
}

// SampleN draws q iid samples from s into a fresh slice.
func SampleN(s Sampler, q int, rng *rand.Rand) []int {
	out := make([]int, q)
	for i := range out {
		out[i] = s.Sample(rng)
	}
	return out
}

// SampleInto fills buf with iid samples, avoiding allocation in hot loops.
func SampleInto(s Sampler, buf []int, rng *rand.Rand) {
	for i := range buf {
		buf[i] = s.Sample(rng)
	}
}

// Histogram counts occurrences of each element among the samples over a
// domain of size n.
func Histogram(samples []int, n int) ([]int64, error) {
	h := make([]int64, n)
	for _, s := range samples {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("dist: sample %d outside domain of size %d", s, n)
		}
		h[s]++
	}
	return h, nil
}

// Empirical returns the empirical distribution of the samples over a domain
// of size n. It errors on an empty sample set.
func Empirical(samples []int, n int) (Dist, error) {
	if len(samples) == 0 {
		return Dist{}, fmt.Errorf("dist: empirical distribution of zero samples")
	}
	h, err := Histogram(samples, n)
	if err != nil {
		return Dist{}, err
	}
	p := make([]float64, n)
	inv := 1 / float64(len(samples))
	for i, c := range h {
		p[i] = float64(c) * inv
	}
	return Dist{p: p}, nil
}
