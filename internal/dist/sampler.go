package dist

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Sampler draws iid samples from a fixed distribution. Implementations are
// safe for concurrent use as long as each goroutine supplies its own
// *rand.Rand.
type Sampler interface {
	// Sample draws one element.
	Sample(rng *rand.Rand) int
	// N returns the domain size.
	N() int
}

// BatchSampler is the batched extension of Sampler used on every hot
// path: one SampleInto fills a caller-owned buffer without allocating,
// amortizing the interface dispatch over the whole batch.
//
// Stream compatibility contract: for any RNG state, SampleInto(dst, rng)
// must consume exactly the same draws from rng — and therefore produce
// exactly the same elements — as len(dst) successive Sample(rng) calls.
// The property tests in sampler_batch_test.go enforce this for every
// implementation in the package, and the engine's cross-backend
// bit-identical verdict tests depend on it.
type BatchSampler interface {
	Sampler
	// SampleInto fills dst with iid samples.
	SampleInto(dst []int, rng *rand.Rand)
}

// Verify interface compliance.
var (
	_ BatchSampler = (*AliasSampler)(nil)
	_ BatchSampler = (*CDFSampler)(nil)
	_ BatchSampler = (*UniformSampler)(nil)
	_ BatchSampler = NopSampler{}
)

// AliasSampler draws samples in O(1) time using Vose's alias method, after
// O(n) preprocessing. It is the default sampler throughout the repository.
type AliasSampler struct {
	prob  []float64
	alias []int
}

// NewAliasSampler preprocesses d with Vose's algorithm.
func NewAliasSampler(d Dist) (*AliasSampler, error) {
	n := d.N()
	if n == 0 {
		return nil, fmt.Errorf("dist: alias sampler over empty domain")
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, v := range d.p {
		scaled[i] = v * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	prob := make([]float64, n)
	alias := make([]int, n)
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range small {
		// Only reachable through floating-point drift; the cell is full.
		prob[i] = 1
		alias[i] = i
	}
	return &AliasSampler{prob: prob, alias: alias}, nil
}

// N returns the domain size.
func (a *AliasSampler) N() int { return len(a.prob) }

// Sample draws one element in O(1).
func (a *AliasSampler) Sample(rng *rand.Rand) int {
	i := rng.IntN(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// SampleInto implements BatchSampler. The loop body is Sample's, inlined
// over the batch so the hot path pays no per-element interface dispatch.
func (a *AliasSampler) SampleInto(dst []int, rng *rand.Rand) {
	prob, alias := a.prob, a.alias
	n := len(prob)
	for j := range dst {
		i := rng.IntN(n)
		if rng.Float64() < prob[i] {
			dst[j] = i
		} else {
			dst[j] = alias[i]
		}
	}
}

// CDFSampler draws samples by binary search over the cumulative distribution
// in O(log n) time. It serves as the correctness oracle for AliasSampler and
// as the ablation comparison point in the benchmarks.
type CDFSampler struct {
	cdf []float64
}

// NewCDFSampler precomputes the cumulative distribution of d.
func NewCDFSampler(d Dist) (*CDFSampler, error) {
	n := d.N()
	if n == 0 {
		return nil, fmt.Errorf("dist: CDF sampler over empty domain")
	}
	cdf := make([]float64, n)
	var acc float64
	for i, v := range d.p {
		acc += v
		cdf[i] = acc
	}
	cdf[n-1] = 1 // absorb rounding drift so search never falls off the end
	return &CDFSampler{cdf: cdf}, nil
}

// N returns the domain size.
func (c *CDFSampler) N() int { return len(c.cdf) }

// Sample draws one element in O(log n).
func (c *CDFSampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(c.cdf, u)
}

// SampleInto implements BatchSampler.
func (c *CDFSampler) SampleInto(dst []int, rng *rand.Rand) {
	for j := range dst {
		dst[j] = sort.SearchFloat64s(c.cdf, rng.Float64())
	}
}

// UniformSampler is the dedicated fast path for U_n: one IntN per element
// and no table lookups, roughly halving the RNG draws of an alias-method
// sampler over the uniform distribution. Note the stream it consumes from
// an RNG differs from AliasSampler's over U_n (one draw per element
// instead of two), so swapping sampler kinds under a fixed seed changes
// downstream verdicts; within the kind, SampleInto ≡ repeated Sample as
// for every BatchSampler.
type UniformSampler struct {
	n int
}

// NewUniformSampler returns the fast uniform sampler over {0..n-1}.
func NewUniformSampler(n int) (*UniformSampler, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: uniform sampler over %d elements", n)
	}
	return &UniformSampler{n: n}, nil
}

// N returns the domain size.
func (u *UniformSampler) N() int { return u.n }

// Sample draws one element in O(1).
func (u *UniformSampler) Sample(rng *rand.Rand) int { return rng.IntN(u.n) }

// SampleInto implements BatchSampler.
func (u *UniformSampler) SampleInto(dst []int, rng *rand.Rand) {
	n := u.n
	for j := range dst {
		dst[j] = rng.IntN(n)
	}
}

// NopSampler is the shared no-op sampler for backends whose players draw
// their samples elsewhere (e.g. a networked session, where each node owns
// its real sampler): it satisfies the engine's non-nil sampler contract,
// consumes no randomness, and always yields element 0 of a size-1 domain.
type NopSampler struct{}

// Sample implements Sampler.
func (NopSampler) Sample(*rand.Rand) int { return 0 }

// SampleInto implements BatchSampler.
func (NopSampler) SampleInto(dst []int, _ *rand.Rand) {
	for j := range dst {
		dst[j] = 0
	}
}

// N implements Sampler.
func (NopSampler) N() int { return 1 }

// SampleN draws q iid samples from s into a fresh slice.
func SampleN(s Sampler, q int, rng *rand.Rand) []int {
	out := make([]int, q)
	SampleInto(s, out, rng)
	return out
}

// SampleInto fills buf with iid samples, avoiding allocation in hot
// loops. Samplers implementing BatchSampler take their batched path;
// stream compatibility (see BatchSampler) guarantees the dispatch is
// invisible to callers holding a seeded RNG.
func SampleInto(s Sampler, buf []int, rng *rand.Rand) {
	if bs, ok := s.(BatchSampler); ok {
		bs.SampleInto(buf, rng)
		return
	}
	for i := range buf {
		buf[i] = s.Sample(rng)
	}
}

// Histogram counts occurrences of each element among the samples over a
// domain of size n.
func Histogram(samples []int, n int) ([]int64, error) {
	h := make([]int64, n)
	for _, s := range samples {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("dist: sample %d outside domain of size %d", s, n)
		}
		h[s]++
	}
	return h, nil
}

// Empirical returns the empirical distribution of the samples over a domain
// of size n. It errors on an empty sample set.
func Empirical(samples []int, n int) (Dist, error) {
	if len(samples) == 0 {
		return Dist{}, fmt.Errorf("dist: empirical distribution of zero samples")
	}
	h, err := Histogram(samples, n)
	if err != nil {
		return Dist{}, err
	}
	p := make([]float64, n)
	inv := 1 / float64(len(samples))
	for i, c := range h {
		p[i] = float64(c) * inv
	}
	return Dist{p: p}, nil
}
