package centralized

import (
	"fmt"

	"github.com/distributed-uniformity/dut/internal/dist"
)

// PluginTester is the naive "learn then compare" baseline: it builds the
// empirical distribution of the samples and accepts iff its L1 distance to
// the target is below threshold. It needs Theta(n/eps^2) samples — far more
// than the collision tester — and exists as the sanity baseline the sublinear
// testers must beat (experiment E5 reports both).
type PluginTester struct {
	target    dist.Dist
	q         int
	eps       float64
	threshold float64
}

var _ Tester = (*PluginTester)(nil)

// NewPluginTester builds the tester; by default the threshold is eps/2,
// splitting the yes-case concentration (empirical L1 error ~ sqrt(n/q))
// from the eps-far alternative.
func NewPluginTester(target dist.Dist, q int, eps float64) (*PluginTester, error) {
	if target.N() == 0 {
		return nil, fmt.Errorf("centralized: plug-in tester with empty target")
	}
	if q < 1 {
		return nil, fmt.Errorf("centralized: plug-in tester with q=%d", q)
	}
	if eps <= 0 || eps > 2 {
		return nil, fmt.Errorf("centralized: plug-in tester eps %v outside (0,2]", eps)
	}
	return &PluginTester{target: target, q: q, eps: eps, threshold: eps / 2}, nil
}

// NewPluginTesterWithThreshold uses an explicitly calibrated threshold.
func NewPluginTesterWithThreshold(target dist.Dist, q int, eps, threshold float64) (*PluginTester, error) {
	t, err := NewPluginTester(target, q, eps)
	if err != nil {
		return nil, err
	}
	if threshold < 0 {
		return nil, fmt.Errorf("centralized: negative plug-in threshold %v", threshold)
	}
	t.threshold = threshold
	return t, nil
}

// SampleSize returns the sample count the tester was built for.
func (t *PluginTester) SampleSize() int { return t.q }

// Threshold returns the acceptance threshold on the empirical L1 distance.
func (t *PluginTester) Threshold() float64 { return t.threshold }

// Test accepts iff the empirical L1 distance to the target is at most the
// threshold.
func (t *PluginTester) Test(samples []int) (bool, error) {
	if len(samples) == 0 {
		return false, fmt.Errorf("centralized: plug-in test with no samples")
	}
	emp, err := dist.Empirical(samples, t.target.N())
	if err != nil {
		return false, err
	}
	l1, err := dist.L1(emp, t.target)
	if err != nil {
		return false, err
	}
	return l1 <= t.threshold, nil
}

// EmpiricalL1Statistic adapts the plug-in distance to the Statistic type.
func EmpiricalL1Statistic(target dist.Dist) Statistic {
	return func(samples []int) (float64, error) {
		if len(samples) == 0 {
			return 0, fmt.Errorf("centralized: empirical L1 of no samples")
		}
		emp, err := dist.Empirical(samples, target.N())
		if err != nil {
			return 0, err
		}
		return dist.L1(emp, target)
	}
}
