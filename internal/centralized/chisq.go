package centralized

import (
	"fmt"
	"math"

	"github.com/distributed-uniformity/dut/internal/dist"
)

// ChiSquaredStatistic computes the identity-testing statistic of
// Diakonikolas-Kane / Valiant-Valiant against a known target p:
//
//	Z = sum_i ((N_i - q p_i)^2 - N_i) / (q p_i)
//
// over the histogram counts N_i, skipping zero-mass target elements (a
// sample landing on one is an immediate, infinite rejection signal and
// yields +Inf). Subtracting N_i de-biases the statistic: under p exactly,
// E[Z] = 0, while under a distribution with chi-squared divergence D from
// p, E[Z] = q*D.
func ChiSquaredStatistic(samples []int, target dist.Dist) (float64, error) {
	n := target.N()
	if err := checkSamples(samples, n); err != nil {
		return 0, err
	}
	h, err := dist.Histogram(samples, n)
	if err != nil {
		return 0, err
	}
	q := float64(len(samples))
	var z float64
	for i, c := range h {
		pi := target.Prob(i)
		//lint:ignore dut/floateq zero-mass target cell: any sample there is an exact impossibility
		if pi == 0 {
			if c > 0 {
				return math.Inf(1), nil
			}
			continue
		}
		expect := q * pi
		diff := float64(c) - expect
		z += (diff*diff - float64(c)) / expect
	}
	return z, nil
}

// ChiSquaredUniformityStatistic specializes the statistic to the uniform
// target over [n].
func ChiSquaredUniformityStatistic(n int) Statistic {
	return func(samples []int) (float64, error) {
		u, err := dist.Uniform(n)
		if err != nil {
			return 0, err
		}
		return ChiSquaredStatistic(samples, u)
	}
}

// ChiSquaredTester tests identity to a fixed known distribution with the
// de-biased chi-squared statistic. For the uniform target it is an
// alternative engine to CollisionTester with the same
// Theta(sqrt(n)/eps^2) sample complexity and better constants at small eps.
type ChiSquaredTester struct {
	target    dist.Dist
	q         int
	eps       float64
	threshold float64
}

var _ Tester = (*ChiSquaredTester)(nil)

// NewChiSquaredTester builds the tester with a closed-form threshold: a
// distribution eps-far in L1 from the target has chi-squared divergence at
// least eps^2/4 (by Cauchy-Schwarz through total variation), so E[Z] >=
// q eps^2/4 there while E[Z] = 0 under the target. The threshold sits at
// q eps^2/4 — the far-side mean — because Z's null fluctuation
// (~sqrt(2n)) needs the larger share of the gap once q =
// Theta(sqrt(n)/eps^2); the far side retains its margin through its
// larger mean growth.
func NewChiSquaredTester(target dist.Dist, q int, eps float64) (*ChiSquaredTester, error) {
	if target.N() == 0 {
		return nil, fmt.Errorf("centralized: chi-squared tester with empty target")
	}
	if q < 1 {
		return nil, fmt.Errorf("centralized: chi-squared tester with q=%d", q)
	}
	if eps <= 0 || eps > 2 {
		return nil, fmt.Errorf("centralized: chi-squared tester eps %v outside (0,2]", eps)
	}
	return &ChiSquaredTester{
		target:    target,
		q:         q,
		eps:       eps,
		threshold: float64(q) * eps * eps / 4,
	}, nil
}

// NewChiSquaredTesterWithThreshold uses an explicitly calibrated threshold.
func NewChiSquaredTesterWithThreshold(target dist.Dist, q int, eps, threshold float64) (*ChiSquaredTester, error) {
	t, err := NewChiSquaredTester(target, q, eps)
	if err != nil {
		return nil, err
	}
	t.threshold = threshold
	return t, nil
}

// SampleSize returns the sample count the tester was built for.
func (t *ChiSquaredTester) SampleSize() int { return t.q }

// Threshold returns the acceptance threshold.
func (t *ChiSquaredTester) Threshold() float64 { return t.threshold }

// Test accepts iff the statistic is at most the threshold.
func (t *ChiSquaredTester) Test(samples []int) (bool, error) {
	z, err := ChiSquaredStatistic(samples, t.target)
	if err != nil {
		return false, err
	}
	return z <= t.threshold, nil
}
