package centralized

import (
	"fmt"
	"math"

	"github.com/distributed-uniformity/dut/internal/dist"
)

// Learner estimates an unknown distribution from samples. It is the
// centralized comparison point for the distributed learning task of the
// paper's Theorem 1.4 (after [ACT18]).
type Learner struct {
	n      int
	smooth float64
}

// NewLearner builds a learner over a domain of size n with add-lambda
// (Laplace) smoothing; lambda = 0 gives the plain empirical distribution.
func NewLearner(n int, lambda float64) (*Learner, error) {
	if n <= 0 {
		return nil, fmt.Errorf("centralized: learner over domain %d", n)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("centralized: negative smoothing %v", lambda)
	}
	return &Learner{n: n, smooth: lambda}, nil
}

// Learn returns the (smoothed) empirical distribution of the samples.
func (l *Learner) Learn(samples []int) (dist.Dist, error) {
	//lint:ignore dut/floateq exact zero-value smoothing sentinel, never a computed float
	if len(samples) == 0 && l.smooth == 0 {
		return dist.Dist{}, fmt.Errorf("centralized: learning from no samples without smoothing")
	}
	h, err := dist.Histogram(samples, l.n)
	if err != nil {
		return dist.Dist{}, err
	}
	w := make([]float64, l.n)
	for i, c := range h {
		w[i] = float64(c) + l.smooth
	}
	return dist.FromWeights(w)
}

// SamplesForAccuracy returns the number of iid samples sufficient for the
// empirical distribution over [n] to be within delta of the truth in L1
// with probability at least 2/3: the standard O(n/delta^2) bound (the
// expected L1 error of the empirical distribution is at most
// sqrt(n/q)).
func SamplesForAccuracy(n int, delta float64) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("centralized: accuracy bound over domain %d", n)
	}
	if delta <= 0 || delta > 2 {
		return 0, fmt.Errorf("centralized: accuracy %v outside (0,2]", delta)
	}
	return int(math.Ceil(9*float64(n)/(delta*delta))) + 1, nil
}
