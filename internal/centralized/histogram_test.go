package centralized

import (
	"math"
	"testing"

	"github.com/distributed-uniformity/dut/internal/dist"
)

func TestValidateHistogram(t *testing.T) {
	if _, err := ValidateHistogram(nil); err == nil {
		t.Error("empty histogram accepted")
	}
	if _, err := ValidateHistogram([]int64{1, -1}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := ValidateHistogram([]int64{0, 0}); err == nil {
		t.Error("zero-sample histogram accepted")
	}
	total, err := ValidateHistogram([]int64{3, 0, 2})
	if err != nil || total != 5 {
		t.Errorf("total = %d, %v", total, err)
	}
}

func TestCollisionCountFromHistogramMatchesSamples(t *testing.T) {
	rng := testRand(101)
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.IntN(30)
		q := 2 + rng.IntN(100)
		samples := make([]int, q)
		for i := range samples {
			samples[i] = rng.IntN(n)
		}
		h, err := dist.Histogram(samples, n)
		if err != nil {
			t.Fatal(err)
		}
		fromSamples, err := CollisionCount(samples, n)
		if err != nil {
			t.Fatal(err)
		}
		fromHist, err := CollisionCountFromHistogram(h)
		if err != nil {
			t.Fatal(err)
		}
		if fromSamples != fromHist {
			t.Fatalf("sample path %d vs histogram path %d", fromSamples, fromHist)
		}
	}
}

func TestCollisionTesterHistogramPathAgrees(t *testing.T) {
	// At the configured q, the histogram verdict must equal the sample
	// verdict on identical data.
	const (
		n   = 128
		eps = 0.5
	)
	q := RecommendedSamples(n, eps)
	tester, err := NewCollisionTester(n, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	far, _ := dist.PairedBump(n, eps)
	uniform, _ := dist.Uniform(n)
	rng := testRand(102)
	for _, d := range []dist.Dist{uniform, far} {
		s, _ := dist.NewAliasSampler(d)
		for trial := 0; trial < 30; trial++ {
			samples := dist.SampleN(s, q, rng)
			h, _ := dist.Histogram(samples, n)
			fromSamples, err := tester.Test(samples)
			if err != nil {
				t.Fatal(err)
			}
			fromHist, err := tester.TestHistogram(h)
			if err != nil {
				t.Fatal(err)
			}
			if fromSamples != fromHist {
				t.Fatalf("verdicts disagree: samples %v, histogram %v", fromSamples, fromHist)
			}
		}
	}
}

func TestCollisionTesterHistogramRescalesThreshold(t *testing.T) {
	// Feeding a 2x-sized histogram still separates: the threshold scales
	// with the pair count.
	const (
		n   = 128
		eps = 0.5
	)
	q := RecommendedSamples(n, eps)
	tester, err := NewCollisionTester(n, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	uniform, _ := dist.Uniform(n)
	su, _ := dist.NewAliasSampler(uniform)
	far, _ := dist.PairedBump(n, eps)
	sf, _ := dist.NewAliasSampler(far)
	rng := testRand(103)
	okU, okF := 0, 0
	const trials = 40
	for i := 0; i < trials; i++ {
		hu, _ := dist.Histogram(dist.SampleN(su, 2*q, rng), n)
		v, err := tester.TestHistogram(hu)
		if err != nil {
			t.Fatal(err)
		}
		if v {
			okU++
		}
		hf, _ := dist.Histogram(dist.SampleN(sf, 2*q, rng), n)
		v, err = tester.TestHistogram(hf)
		if err != nil {
			t.Fatal(err)
		}
		if !v {
			okF++
		}
	}
	if okU < trials*3/4 {
		t.Errorf("2x histogram accepted uniform only %d/%d", okU, trials)
	}
	if okF < trials*3/4 {
		t.Errorf("2x histogram rejected far only %d/%d", okF, trials)
	}
}

func TestCollisionTesterHistogramValidation(t *testing.T) {
	tester, _ := NewCollisionTester(4, 10, 0.5)
	if _, err := tester.TestHistogram([]int64{1, 2, 3}); err == nil {
		t.Error("wrong-length histogram accepted")
	}
	if _, err := tester.TestHistogram([]int64{1, 0, 0, 0}); err == nil {
		t.Error("single-sample histogram accepted")
	}
	if _, err := tester.TestHistogram([]int64{-1, 3, 0, 0}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestStatisticFromHistogramMatchesSamples(t *testing.T) {
	target, _ := dist.Zipf(16, 1)
	rng := testRand(104)
	for trial := 0; trial < 20; trial++ {
		s, _ := dist.NewAliasSampler(target)
		samples := dist.SampleN(s, 200, rng)
		h, _ := dist.Histogram(samples, 16)
		fromSamples, err := ChiSquaredStatistic(samples, target)
		if err != nil {
			t.Fatal(err)
		}
		fromHist, err := StatisticFromHistogram(h, target)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fromSamples-fromHist) > 1e-9 {
			t.Fatalf("statistics disagree: %v vs %v", fromSamples, fromHist)
		}
	}
	if _, err := StatisticFromHistogram([]int64{1}, target); err == nil {
		t.Error("wrong-length histogram accepted")
	}
	zeroTarget, _ := dist.FromProbs([]float64{1, 0})
	z, err := StatisticFromHistogram([]int64{1, 1}, zeroTarget)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(z, 1) {
		t.Errorf("unsupported count gave %v", z)
	}
}

func TestChiSquaredTesterHistogramPath(t *testing.T) {
	const (
		n   = 128
		eps = 0.5
	)
	q := RecommendedSamples(n, eps)
	uniform, _ := dist.Uniform(n)
	tester, err := NewChiSquaredTester(uniform, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	su, _ := dist.NewAliasSampler(uniform)
	rng := testRand(105)
	agree := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		samples := dist.SampleN(su, q, rng)
		h, _ := dist.Histogram(samples, n)
		a, err := tester.Test(samples)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tester.TestHistogram(h)
		if err != nil {
			t.Fatal(err)
		}
		if a == b {
			agree++
		}
	}
	if agree != trials {
		t.Errorf("verdicts agreed only %d/%d", agree, trials)
	}
}
