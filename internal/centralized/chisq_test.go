package centralized

import (
	"math"
	"testing"

	"github.com/distributed-uniformity/dut/internal/dist"
)

func TestChiSquaredStatisticKnownValues(t *testing.T) {
	u, _ := dist.Uniform(2)
	// Two samples, both 0: N = (2, 0), q p_i = 1.
	// Z = ((2-1)^2 - 2)/1 + ((0-1)^2 - 0)/1 = -1 + 1 = 0.
	z, err := ChiSquaredStatistic([]int{0, 0}, u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z) > 1e-12 {
		t.Errorf("Z = %v, want 0", z)
	}
	// One sample each: N = (1,1). Z = ((1-1)^2-1)/1 * 2 = -2.
	z, err = ChiSquaredStatistic([]int{0, 1}, u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z+2) > 1e-12 {
		t.Errorf("Z = %v, want -2", z)
	}
}

func TestChiSquaredStatisticZeroMassTarget(t *testing.T) {
	target, _ := dist.FromProbs([]float64{1, 0})
	z, err := ChiSquaredStatistic([]int{1}, target)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(z, 1) {
		t.Errorf("Z = %v, want +Inf on unsupported sample", z)
	}
	z, err = ChiSquaredStatistic([]int{0, 0}, target)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(z, 0) {
		t.Errorf("Z = %v, want finite on supported samples", z)
	}
}

func TestChiSquaredStatisticRejectsBadSamples(t *testing.T) {
	u, _ := dist.Uniform(4)
	if _, err := ChiSquaredStatistic([]int{4}, u); err == nil {
		t.Error("out-of-range sample accepted")
	}
	if _, err := ChiSquaredStatistic([]int{-1}, u); err == nil {
		t.Error("negative sample accepted")
	}
}

func TestChiSquaredStatisticNearZeroMeanUnderNull(t *testing.T) {
	// Under the target itself, E[Z] = 0; average over many runs should be
	// close to zero relative to its standard deviation.
	target, _ := dist.Zipf(32, 0.7)
	sampler, _ := dist.NewAliasSampler(target)
	rng := testRand(21)
	const trials = 2000
	const q = 300
	var sum float64
	buf := make([]int, q)
	for i := 0; i < trials; i++ {
		dist.SampleInto(sampler, buf, rng)
		z, err := ChiSquaredStatistic(buf, target)
		if err != nil {
			t.Fatal(err)
		}
		sum += z
	}
	mean := sum / trials
	if math.Abs(mean) > 1.5 {
		t.Errorf("mean statistic under null = %v, want ~0", mean)
	}
}

func TestChiSquaredTesterValidation(t *testing.T) {
	u, _ := dist.Uniform(8)
	if _, err := NewChiSquaredTester(dist.Dist{}, 10, 0.5); err == nil {
		t.Error("empty target accepted")
	}
	if _, err := NewChiSquaredTester(u, 0, 0.5); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := NewChiSquaredTester(u, 10, -1); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestChiSquaredTesterSeparatesUniformity(t *testing.T) {
	const n = 256
	const eps = 0.5
	q := RecommendedSamples(n, eps)
	uniform, _ := dist.Uniform(n)
	tester, err := NewChiSquaredTester(uniform, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	far, _ := dist.PairedBump(n, eps)
	if p := acceptRate(t, tester, uniform, q, 300, 22); p < 0.75 {
		t.Errorf("accepts uniform with probability %v", p)
	}
	if p := acceptRate(t, tester, far, q, 300, 23); p > 0.25 {
		t.Errorf("accepts eps-far with probability %v", p)
	}
}

func TestChiSquaredTesterNonUniformTarget(t *testing.T) {
	// Identity testing against a Zipf target with a calibrated threshold.
	const q = 2000
	target, _ := dist.Zipf(64, 1)
	stat := func(samples []int) (float64, error) { return ChiSquaredStatistic(samples, target) }
	threshold, err := CalibrateThreshold(stat, target, q, 1500, 0.2, 31)
	if err != nil {
		t.Fatal(err)
	}
	tester, err := NewChiSquaredTesterWithThreshold(target, q, 0.5, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if p := acceptRate(t, tester, target, q, 300, 32); p < 0.7 {
		t.Errorf("accepts its own target with probability %v", p)
	}
	far, _ := dist.SparseSupport(64, 16)
	if l1, _ := dist.L1(far, target); l1 < 0.5 {
		t.Fatalf("test case not far enough: %v", l1)
	}
	if p := acceptRate(t, tester, far, q, 300, 33); p > 0.1 {
		t.Errorf("accepts far distribution with probability %v", p)
	}
}

func TestChiSquaredUniformityStatisticAgreesWithGeneric(t *testing.T) {
	u, _ := dist.Uniform(16)
	stat := ChiSquaredUniformityStatistic(16)
	rng := testRand(34)
	for trial := 0; trial < 10; trial++ {
		samples := make([]int, 50)
		for i := range samples {
			samples[i] = rng.IntN(16)
		}
		a, err := stat(samples)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ChiSquaredStatistic(samples, u)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("specialized %v vs generic %v", a, b)
		}
	}
}
