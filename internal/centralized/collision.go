package centralized

import (
	"fmt"
	"math"

	"github.com/distributed-uniformity/dut/internal/dist"
)

// CollisionCount returns the number of colliding sample pairs,
// sum_i C(c_i, 2) over the histogram counts c_i, computed in O(q + n) time.
func CollisionCount(samples []int, n int) (int64, error) {
	h, err := dist.Histogram(samples, n)
	if err != nil {
		return 0, fmt.Errorf("centralized: %w", err)
	}
	var coll int64
	for _, c := range h {
		coll += c * (c - 1) / 2
	}
	return coll, nil
}

// CollisionStatistic adapts CollisionCount to the Statistic type for a
// fixed domain size.
func CollisionStatistic(n int) Statistic {
	return func(samples []int) (float64, error) {
		c, err := CollisionCount(samples, n)
		return float64(c), err
	}
}

// CollisionTester is the Goldreich-Ron collision-based uniformity tester:
// accept iff the number of colliding pairs among q samples is at most a
// threshold. Under U_n the expected count is C(q,2)/n; under any
// distribution eps-far from uniform in L1 it is at least C(q,2)(1+eps^2)/n,
// because ||mu||_2^2 >= (1 + eps^2)/n by Cauchy-Schwarz. With
// q = Theta(sqrt(n)/eps^2) samples the two cases separate with constant
// probability [Paninski 2008].
type CollisionTester struct {
	n         int
	q         int
	eps       float64
	threshold float64
}

var _ Tester = (*CollisionTester)(nil)

// NewCollisionTester builds the tester with its closed-form threshold,
// halfway between the uniform and eps-far expected collision counts.
func NewCollisionTester(n, q int, eps float64) (*CollisionTester, error) {
	if n <= 0 {
		return nil, fmt.Errorf("centralized: collision tester over domain %d", n)
	}
	if q < 2 {
		return nil, fmt.Errorf("centralized: collision tester needs q >= 2, got %d", q)
	}
	if eps <= 0 || eps > 2 {
		return nil, fmt.Errorf("centralized: collision tester eps %v outside (0,2]", eps)
	}
	pairs := float64(q) * float64(q-1) / 2
	threshold := pairs / float64(n) * (1 + eps*eps/2)
	return &CollisionTester{n: n, q: q, eps: eps, threshold: threshold}, nil
}

// NewCollisionTesterWithThreshold builds the tester with an explicitly
// calibrated threshold (see CalibrateThreshold).
func NewCollisionTesterWithThreshold(n, q int, eps, threshold float64) (*CollisionTester, error) {
	t, err := NewCollisionTester(n, q, eps)
	if err != nil {
		return nil, err
	}
	if threshold < 0 {
		return nil, fmt.Errorf("centralized: negative collision threshold %v", threshold)
	}
	t.threshold = threshold
	return t, nil
}

// RecommendedSamples returns the sample size at which the collision tester
// separates uniform from eps-far with probability at least 2/3:
// c * sqrt(n)/eps^2 with a constant validated by the E5 experiment.
func RecommendedSamples(n int, eps float64) int {
	return int(6*math.Sqrt(float64(n))/(eps*eps)) + 2
}

// N returns the domain size.
func (t *CollisionTester) N() int { return t.n }

// SampleSize returns the sample count q the tester was built for.
func (t *CollisionTester) SampleSize() int { return t.q }

// Eps returns the proximity parameter.
func (t *CollisionTester) Eps() float64 { return t.eps }

// Threshold returns the acceptance threshold on the collision count.
func (t *CollisionTester) Threshold() float64 { return t.threshold }

// Test accepts iff the collision count is at most the threshold.
func (t *CollisionTester) Test(samples []int) (bool, error) {
	c, err := CollisionCount(samples, t.n)
	if err != nil {
		return false, err
	}
	return float64(c) <= t.threshold, nil
}
