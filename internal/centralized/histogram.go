package centralized

import (
	"fmt"
	"math"

	"github.com/distributed-uniformity/dut/internal/dist"
)

// Histogram-based entry points: deployed testers often receive
// pre-aggregated counts (from a metrics pipeline or a mergeable sketch)
// rather than raw sample streams. These paths are exactly equivalent to
// the sample-based ones — tested against them — and run in O(n) regardless
// of the stream length.

// ValidateHistogram checks counts for use as a sample histogram and
// returns the total sample count.
func ValidateHistogram(counts []int64) (int64, error) {
	if len(counts) == 0 {
		return 0, fmt.Errorf("centralized: empty histogram")
	}
	var total int64
	for i, c := range counts {
		if c < 0 {
			return 0, fmt.Errorf("centralized: negative count %d at element %d", c, i)
		}
		total += c
	}
	if total == 0 {
		return 0, fmt.Errorf("centralized: histogram with zero samples")
	}
	return total, nil
}

// CollisionCountFromHistogram returns sum_i C(c_i, 2).
func CollisionCountFromHistogram(counts []int64) (int64, error) {
	if _, err := ValidateHistogram(counts); err != nil {
		return 0, err
	}
	var coll int64
	for _, c := range counts {
		coll += c * (c - 1) / 2
	}
	return coll, nil
}

// TestHistogram runs the collision test on pre-aggregated counts. The
// histogram length must equal the tester's domain size; the threshold is
// rescaled from the tester's configured q to the histogram's actual total,
// preserving the (1 + eps^2/2)/n collision-rate cutoff.
func (t *CollisionTester) TestHistogram(counts []int64) (bool, error) {
	if len(counts) != t.n {
		return false, fmt.Errorf("centralized: histogram over %d elements, domain is %d", len(counts), t.n)
	}
	total, err := ValidateHistogram(counts)
	if err != nil {
		return false, err
	}
	if total < 2 {
		return false, fmt.Errorf("centralized: histogram has %d samples, need >= 2", total)
	}
	coll, err := CollisionCountFromHistogram(counts)
	if err != nil {
		return false, err
	}
	pairs := float64(total) * float64(total-1) / 2
	threshold := t.threshold * pairs / (float64(t.q) * float64(t.q-1) / 2)
	return float64(coll) <= threshold, nil
}

// StatisticFromHistogram computes the de-biased chi-squared statistic from
// counts against a target distribution.
func StatisticFromHistogram(counts []int64, target dist.Dist) (float64, error) {
	if len(counts) != target.N() {
		return 0, fmt.Errorf("centralized: histogram over %d elements, target domain is %d", len(counts), target.N())
	}
	total, err := ValidateHistogram(counts)
	if err != nil {
		return 0, err
	}
	q := float64(total)
	var z float64
	for i, c := range counts {
		pi := target.Prob(i)
		//lint:ignore dut/floateq zero-mass target cell: any sample there is an exact impossibility
		if pi == 0 {
			if c > 0 {
				return math.Inf(1), nil
			}
			continue
		}
		expect := q * pi
		diff := float64(c) - expect
		z += (diff*diff - float64(c)) / expect
	}
	return z, nil
}

// TestHistogram runs the chi-squared test on pre-aggregated counts, with
// the threshold rescaled from the configured q to the histogram's total.
func (t *ChiSquaredTester) TestHistogram(counts []int64) (bool, error) {
	total, err := ValidateHistogram(counts)
	if err != nil {
		return false, err
	}
	z, err := StatisticFromHistogram(counts, t.target)
	if err != nil {
		return false, err
	}
	threshold := t.threshold * float64(total) / float64(t.q)
	return z <= threshold, nil
}
