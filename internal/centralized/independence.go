package centralized

import (
	"fmt"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// IndependenceTester is Pearson's chi-squared test of independence on an
// [a] x [b] contingency table: the classical tester for the other problem
// the paper names as inheriting uniformity lower bounds. Samples are pairs
// encoded as x*b + y.
//
// The statistic X^2 = q * sum_{ij} (p_ij - p_i q_j)^2 / (p_i q_j) is
// asymptotically chi-squared with (a-1)(b-1) degrees of freedom under
// independence; the tester accepts iff the upper-tail p-value is at least
// alpha. The chi-square tail comes from this repository's own incomplete
// gamma implementation.
type IndependenceTester struct {
	a, b  int
	alpha float64
}

// NewIndependenceTester builds a tester for pairs over [a] x [b] at
// significance level alpha (e.g. 1/3 for the paper's conventions).
func NewIndependenceTester(a, b int, alpha float64) (*IndependenceTester, error) {
	if a < 2 || b < 2 {
		return nil, fmt.Errorf("centralized: independence over %dx%d needs both sides >= 2", a, b)
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("centralized: significance %v outside (0,1)", alpha)
	}
	return &IndependenceTester{a: a, b: b, alpha: alpha}, nil
}

// Encode packs a pair into the sample encoding the tester expects.
func (t *IndependenceTester) Encode(x, y int) (int, error) {
	if x < 0 || x >= t.a || y < 0 || y >= t.b {
		return 0, fmt.Errorf("centralized: pair (%d,%d) outside %dx%d", x, y, t.a, t.b)
	}
	return x*t.b + y, nil
}

// Statistic computes Pearson's X^2 and its degrees of freedom. Rows or
// columns with zero marginal mass are dropped from both the statistic and
// the degrees of freedom (the standard treatment of empty categories).
func (t *IndependenceTester) Statistic(samples []int) (x2 float64, dof int, err error) {
	if len(samples) == 0 {
		return 0, 0, fmt.Errorf("centralized: independence test with no samples")
	}
	counts, err := dist.Histogram(samples, t.a*t.b)
	if err != nil {
		return 0, 0, err
	}
	rows := make([]float64, t.a)
	cols := make([]float64, t.b)
	for i := 0; i < t.a; i++ {
		for j := 0; j < t.b; j++ {
			c := float64(counts[i*t.b+j])
			rows[i] += c
			cols[j] += c
		}
	}
	q := float64(len(samples))
	liveRows, liveCols := 0, 0
	for _, r := range rows {
		if r > 0 {
			liveRows++
		}
	}
	for _, c := range cols {
		if c > 0 {
			liveCols++
		}
	}
	if liveRows < 2 || liveCols < 2 {
		// Degenerate table: everything on one row or column is trivially
		// consistent with independence.
		return 0, 1, nil
	}
	for i := 0; i < t.a; i++ {
		//lint:ignore dut/floateq integer-valued count stored as float; zero marginal means an empty row
		if rows[i] == 0 {
			continue
		}
		for j := 0; j < t.b; j++ {
			//lint:ignore dut/floateq integer-valued count stored as float; zero marginal means an empty column
			if cols[j] == 0 {
				continue
			}
			expected := rows[i] * cols[j] / q
			diff := float64(counts[i*t.b+j]) - expected
			x2 += diff * diff / expected
		}
	}
	return x2, (liveRows - 1) * (liveCols - 1), nil
}

// Test accepts ("independent") iff the chi-squared upper-tail p-value is
// at least alpha.
func (t *IndependenceTester) Test(samples []int) (bool, error) {
	x2, dof, err := t.Statistic(samples)
	if err != nil {
		return false, err
	}
	p, err := stats.ChiSquareSurvival(x2, float64(dof))
	if err != nil {
		return false, err
	}
	return p >= t.alpha, nil
}

// ProductDist builds the product distribution pX (x) pY over the pair
// encoding, for generating independent workloads in tests and experiments.
func ProductDist(pX, pY dist.Dist) (dist.Dist, error) {
	a, b := pX.N(), pY.N()
	if a == 0 || b == 0 {
		return dist.Dist{}, fmt.Errorf("centralized: product of empty distributions")
	}
	probs := make([]float64, a*b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			probs[i*b+j] = pX.Prob(i) * pY.Prob(j)
		}
	}
	return dist.FromProbs(probs)
}

// CorrelatedPair builds the distribution over [m] x [m] that puts mass
// (1-rho)/m^2 + rho/m on the diagonal pairs and (1-rho)/m^2 elsewhere —
// uniform marginals, correlation knob rho in [0,1]. Its L1 distance from
// the product of its marginals is 2 rho (1 - 1/m).
func CorrelatedPair(m int, rho float64) (dist.Dist, error) {
	if m < 2 {
		return dist.Dist{}, fmt.Errorf("centralized: correlated pair over %dx%d", m, m)
	}
	if rho < 0 || rho > 1 {
		return dist.Dist{}, fmt.Errorf("centralized: correlation %v outside [0,1]", rho)
	}
	probs := make([]float64, m*m)
	off := (1 - rho) / float64(m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			probs[i*m+j] = off
			if i == j {
				probs[i*m+j] += rho / float64(m)
			}
		}
	}
	return dist.FromProbs(probs)
}
