package centralized

import (
	"testing"

	"github.com/distributed-uniformity/dut/internal/dist"
)

func TestPluginTesterValidation(t *testing.T) {
	u, _ := dist.Uniform(8)
	if _, err := NewPluginTester(dist.Dist{}, 10, 0.5); err == nil {
		t.Error("empty target accepted")
	}
	if _, err := NewPluginTester(u, 0, 0.5); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := NewPluginTester(u, 10, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewPluginTesterWithThreshold(u, 10, 0.5, -0.1); err == nil {
		t.Error("negative threshold accepted")
	}
	pt, err := NewPluginTester(u, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Test(nil); err == nil {
		t.Error("empty sample batch accepted")
	}
	if pt.SampleSize() != 10 || pt.Threshold() != 0.25 {
		t.Errorf("accessors: %d %v", pt.SampleSize(), pt.Threshold())
	}
}

func TestPluginTesterSeparatesWithManySamples(t *testing.T) {
	const n = 64
	const eps = 0.5
	q := 4 * n * 4 // ~ n/eps^2
	target, _ := dist.Uniform(n)
	tester, err := NewPluginTester(target, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	far, _ := dist.PairedBump(n, eps)
	if p := acceptRate(t, tester, target, q, 200, 41); p < 0.85 {
		t.Errorf("accepts target with probability %v", p)
	}
	if p := acceptRate(t, tester, far, q, 200, 42); p > 0.15 {
		t.Errorf("accepts far with probability %v", p)
	}
}

func TestPluginNeedsMoreSamplesThanCollision(t *testing.T) {
	// At the collision tester's recommended q, the plug-in tester cannot
	// accept uniform reliably on a large domain: the empirical L1 error
	// of sqrt(n/q) exceeds its eps/2 threshold. This is the reason
	// sublinear testers exist.
	const n = 4096
	const eps = 0.5
	q := RecommendedSamples(n, eps) // ~ sqrt(n)/eps^2 << n/eps^2
	target, _ := dist.Uniform(n)
	plugin, err := NewPluginTester(target, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if p := acceptRate(t, plugin, target, q, 100, 43); p > 0.1 {
		t.Errorf("plug-in accepts uniform at collision-scale q with probability %v; expected starvation", p)
	}
	collision, err := NewCollisionTester(n, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if p := acceptRate(t, collision, target, q, 100, 44); p < 0.75 {
		t.Errorf("collision tester should be fine at its own q, got %v", p)
	}
}

func TestEmpiricalL1Statistic(t *testing.T) {
	target, _ := dist.Uniform(4)
	stat := EmpiricalL1Statistic(target)
	v, err := stat([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("exactly-uniform empirical distance = %v", v)
	}
	v, err = stat([]int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1.5 {
		t.Errorf("point-mass empirical distance = %v, want 1.5", v)
	}
	if _, err := stat(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestIdentityTesterValidation(t *testing.T) {
	target, _ := dist.Zipf(16, 1)
	if _, err := NewIdentityTester(target, 1, 0.5, 0); err == nil {
		t.Error("q=1 accepted")
	}
	if _, err := NewIdentityTester(target, 100, 0, 0); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestIdentityTesterSeparates(t *testing.T) {
	const eps = 0.5
	target, _ := dist.Zipf(16, 1)
	// The reduced domain has m ≈ 8n/eps = 256 buckets; collision testing
	// there at eps' ≈ eps/2 needs roughly 6*16/(0.25)^2 samples.
	q := RecommendedSamples(256, eps/2)
	tester, err := NewIdentityTester(target, q, eps, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tester.OutputDomain() < 16 {
		t.Fatalf("output domain %d", tester.OutputDomain())
	}
	if p := acceptRate(t, tester, target, q, 200, 51); p < 0.7 {
		t.Errorf("accepts its own target with probability %v", p)
	}
	far, _ := dist.SparseSupport(16, 4)
	if l1, _ := dist.L1(far, target); l1 < eps {
		t.Fatalf("far case only %v away", l1)
	}
	if p := acceptRate(t, tester, far, q, 200, 52); p > 0.3 {
		t.Errorf("accepts far distribution with probability %v", p)
	}
}

func TestIdentityTesterUniformTargetMatchesUniformityTest(t *testing.T) {
	// With a uniform target the machinery must still work end to end.
	const eps = 0.6
	target, _ := dist.Uniform(8)
	q := RecommendedSamples(128, eps/2)
	tester, err := NewIdentityTester(target, q, eps, 9)
	if err != nil {
		t.Fatal(err)
	}
	if p := acceptRate(t, tester, target, q, 200, 53); p < 0.7 {
		t.Errorf("accepts uniform with probability %v", p)
	}
	far, _ := dist.SparseSupport(8, 2)
	if p := acceptRate(t, tester, far, q, 200, 54); p > 0.3 {
		t.Errorf("accepts far with probability %v", p)
	}
}

func TestLearnerValidation(t *testing.T) {
	if _, err := NewLearner(0, 0); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewLearner(4, -1); err == nil {
		t.Error("negative smoothing accepted")
	}
	l, err := NewLearner(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Learn(nil); err == nil {
		t.Error("unsmoothed learner accepted empty input")
	}
	if _, err := l.Learn([]int{9}); err == nil {
		t.Error("out-of-range sample accepted")
	}
}

func TestLearnerEmpirical(t *testing.T) {
	l, _ := NewLearner(4, 0)
	d, err := l.Learn([]int{0, 0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.25, 0, 0.25}
	for i, w := range want {
		if d.Prob(i) != w {
			t.Errorf("P(%d) = %v, want %v", i, d.Prob(i), w)
		}
	}
}

func TestLearnerSmoothingCoversDomain(t *testing.T) {
	l, _ := NewLearner(4, 1)
	d, err := l.Learn([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if d.Prob(i) <= 0 {
			t.Errorf("smoothed P(%d) = %v", i, d.Prob(i))
		}
	}
	if d.Prob(0) != 0.4 { // (1+1)/(1+4)
		t.Errorf("P(0) = %v, want 0.4", d.Prob(0))
	}
	// Smoothed learner accepts an empty batch: pure prior.
	d, err = l.Learn(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Prob(2) != 0.25 {
		t.Errorf("prior P(2) = %v", d.Prob(2))
	}
}

func TestLearnerAccuracyScaling(t *testing.T) {
	// At SamplesForAccuracy(n, delta), the empirical distribution is within
	// delta of the truth in the vast majority of runs.
	const n = 32
	const delta = 0.25
	q, err := SamplesForAccuracy(n, delta)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := dist.Zipf(n, 1)
	sampler, _ := dist.NewAliasSampler(truth)
	learner, _ := NewLearner(n, 0)
	rng := testRand(61)
	good := 0
	const trials = 100
	buf := make([]int, q)
	for i := 0; i < trials; i++ {
		dist.SampleInto(sampler, buf, rng)
		est, err := learner.Learn(buf)
		if err != nil {
			t.Fatal(err)
		}
		l1, err := dist.L1(est, truth)
		if err != nil {
			t.Fatal(err)
		}
		if l1 <= delta {
			good++
		}
	}
	if good < trials*9/10 {
		t.Errorf("only %d/%d runs within delta", good, trials)
	}
	if _, err := SamplesForAccuracy(0, 0.1); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := SamplesForAccuracy(10, 0); err == nil {
		t.Error("delta=0 accepted")
	}
}
