package centralized

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

func TestL2DistanceEstimateKnownValues(t *testing.T) {
	// X = {0,0}, Y = {1,1}: ||P-Q||_2^2 estimate = 2*1/2 + 2*1/2 - 0 = 2.
	got, err := L2DistanceEstimate([]int{0, 0}, []int{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("estimate = %v, want 2", got)
	}
	// Identical batches: estimate = 2*1/2 + 2*1/2 - 2*4/4... compute:
	// X = Y = {0,1}: collX = collY = 0, cross = 2 -> -2*2/4 = -1.
	got, err = L2DistanceEstimate([]int{0, 1}, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got+1) > 1e-12 {
		t.Errorf("estimate = %v, want -1", got)
	}
	if _, err := L2DistanceEstimate([]int{0}, []int{0, 1}, 2); err == nil {
		t.Error("single-sample batch accepted")
	}
	if _, err := L2DistanceEstimate([]int{0, 5}, []int{0, 1}, 2); err == nil {
		t.Error("out-of-range sample accepted")
	}
}

func TestL2DistanceEstimateUnbiased(t *testing.T) {
	// Average the estimator over many batches and compare with the exact
	// ||P - Q||_2^2.
	p, _ := dist.Zipf(16, 1)
	q, _ := dist.Uniform(16)
	exact := 0.0
	for i := 0; i < 16; i++ {
		diff := p.Prob(i) - q.Prob(i)
		exact += diff * diff
	}
	sp, _ := dist.NewAliasSampler(p)
	sq, _ := dist.NewAliasSampler(q)
	rng := rand.New(rand.NewPCG(81, 82))
	var acc stats.Accumulator
	for trial := 0; trial < 4000; trial++ {
		x := dist.SampleN(sp, 40, rng)
		y := dist.SampleN(sq, 40, rng)
		est, err := L2DistanceEstimate(x, y, 16)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(est)
	}
	if math.Abs(acc.Mean()-exact) > 4*acc.StdErr()+1e-4 {
		t.Errorf("estimator mean %v vs exact %v (stderr %v)", acc.Mean(), exact, acc.StdErr())
	}
}

func TestClosenessTesterValidation(t *testing.T) {
	if _, err := NewClosenessTester(0, 10, 0.5); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewClosenessTester(8, 1, 0.5); err == nil {
		t.Error("q=1 accepted")
	}
	if _, err := NewClosenessTester(8, 10, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	ct, err := NewClosenessTester(8, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ct.SampleSize() != 10 || ct.Threshold() <= 0 {
		t.Error("accessors wrong")
	}
}

func closenessAcceptRate(t *testing.T, tester *ClosenessTester, p, q dist.Dist, trials int, seed uint64) float64 {
	t.Helper()
	sp, err := dist.NewAliasSampler(p)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := dist.NewAliasSampler(q)
	if err != nil {
		t.Fatal(err)
	}
	est, err := stats.EstimateSuccess(trials, func(rng *rand.Rand) bool {
		x := dist.SampleN(sp, tester.SampleSize(), rng)
		y := dist.SampleN(sq, tester.SampleSize(), rng)
		ok, terr := tester.Test(x, y)
		if terr != nil {
			t.Error(terr)
		}
		return ok
	}, stats.EstimateOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return est.P
}

func TestClosenessTesterSeparates(t *testing.T) {
	const (
		n   = 256
		eps = 0.5
	)
	q := RecommendedClosenessSamples(n, eps)
	tester, err := NewClosenessTester(n, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	uniform, _ := dist.Uniform(n)
	far, _ := dist.PairedBump(n, eps)
	if p := closenessAcceptRate(t, tester, uniform, uniform, 200, 91); p < 0.75 {
		t.Errorf("accepts equal pair with probability %v", p)
	}
	if p := closenessAcceptRate(t, tester, far, far, 200, 92); p < 0.75 {
		t.Errorf("accepts equal non-uniform pair with probability %v", p)
	}
	if p := closenessAcceptRate(t, tester, uniform, far, 200, 93); p > 0.25 {
		t.Errorf("accepts eps-far pair with probability %v", p)
	}
}

func TestUniformityViaClosenessInheritsHardness(t *testing.T) {
	// The paper's remark, constructively: a closeness tester with a
	// uniform reference batch IS a uniformity tester, so it must both work
	// on the hard family at sufficient q and inherit the task's hardness.
	const (
		n   = 256
		ell = 7
		eps = 0.5
	)
	q := RecommendedClosenessSamples(n, eps)
	red, err := NewUniformityViaCloseness(n, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	h, err := dist.NewHardInstance(ell, eps)
	if err != nil {
		t.Fatal(err)
	}
	uniform, _ := dist.Uniform(n)
	su, _ := dist.NewAliasSampler(uniform)
	rng := rand.New(rand.NewPCG(94, 95))
	acceptU, rejectFar := 0, 0
	const trials = 150
	for i := 0; i < trials; i++ {
		ref := dist.SampleN(su, q, rng)
		unknown := dist.SampleN(su, q, rng)
		ok, err := red.Test(unknown, ref)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			acceptU++
		}
		nu, _, err := h.RandomPerturbed(rng)
		if err != nil {
			t.Fatal(err)
		}
		snu, _ := dist.NewAliasSampler(nu)
		farBatch := dist.SampleN(snu, q, rng)
		ref2 := dist.SampleN(su, q, rng)
		ok, err = red.Test(farBatch, ref2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			rejectFar++
		}
	}
	if acceptU < trials*2/3 {
		t.Errorf("accepted uniform only %d/%d", acceptU, trials)
	}
	if rejectFar < trials*2/3 {
		t.Errorf("rejected hard family only %d/%d", rejectFar, trials)
	}
	if red.SampleSize() != q {
		t.Error("accessor wrong")
	}
}

func TestIndependenceTesterValidation(t *testing.T) {
	if _, err := NewIndependenceTester(1, 4, 0.1); err == nil {
		t.Error("1-row table accepted")
	}
	if _, err := NewIndependenceTester(4, 4, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	it, err := NewIndependenceTester(3, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Encode(3, 0); err == nil {
		t.Error("out-of-range row accepted")
	}
	enc, err := it.Encode(2, 3)
	if err != nil || enc != 11 {
		t.Errorf("Encode(2,3) = %d, %v", enc, err)
	}
	if _, err := it.Test(nil); err == nil {
		t.Error("empty sample set accepted")
	}
}

func TestIndependenceTesterCalibration(t *testing.T) {
	// Under a genuinely independent (non-uniform) product, the rejection
	// rate should approximate alpha.
	const m = 8
	it, err := NewIndependenceTester(m, m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	px, _ := dist.Zipf(m, 0.7)
	py, _ := dist.Zipf(m, 1.1)
	prod, err := ProductDist(px, py)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := dist.NewAliasSampler(prod)
	est, err := stats.EstimateSuccess(2000, func(rng *rand.Rand) bool {
		samples := dist.SampleN(s, 2000, rng)
		ok, terr := it.Test(samples)
		if terr != nil {
			t.Error(terr)
		}
		return ok
	}, stats.EstimateOptions{Seed: 96})
	if err != nil {
		t.Fatal(err)
	}
	if est.P < 0.72 || est.P > 0.88 {
		t.Errorf("acceptance under independence %v, want ~0.8", est.P)
	}
}

func TestIndependenceTesterDetectsCorrelation(t *testing.T) {
	const m = 8
	it, err := NewIndependenceTester(m, m, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := CorrelatedPair(m, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := dist.NewAliasSampler(corr)
	est, err := stats.EstimateSuccess(300, func(rng *rand.Rand) bool {
		samples := dist.SampleN(s, 1500, rng)
		ok, terr := it.Test(samples)
		if terr != nil {
			t.Error(terr)
		}
		return ok
	}, stats.EstimateOptions{Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	if est.P > 0.1 {
		t.Errorf("accepted a rho=0.3 correlated pair with probability %v", est.P)
	}
}

func TestCorrelatedPairProperties(t *testing.T) {
	const m = 6
	for _, rho := range []float64{0, 0.25, 1} {
		d, err := CorrelatedPair(m, rho)
		if err != nil {
			t.Fatal(err)
		}
		// Uniform marginals.
		for i := 0; i < m; i++ {
			var row, col float64
			for j := 0; j < m; j++ {
				row += d.Prob(i*m + j)
				col += d.Prob(j*m + i)
			}
			if math.Abs(row-1.0/m) > 1e-12 || math.Abs(col-1.0/m) > 1e-12 {
				t.Fatalf("rho=%v: marginals not uniform (row %v col %v)", rho, row, col)
			}
		}
		// Distance from the product of marginals (= uniform on the grid).
		prod, _ := dist.Uniform(m * m)
		l1, _ := dist.L1(d, prod)
		want := 2 * rho * (1 - 1.0/m)
		if math.Abs(l1-want) > 1e-12 {
			t.Errorf("rho=%v: distance %v, want %v", rho, l1, want)
		}
	}
	if _, err := CorrelatedPair(1, 0.5); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := CorrelatedPair(4, 1.5); err == nil {
		t.Error("rho>1 accepted")
	}
}

func TestProductDistValidation(t *testing.T) {
	px, _ := dist.Uniform(3)
	if _, err := ProductDist(dist.Dist{}, px); err == nil {
		t.Error("empty factor accepted")
	}
	prod, err := ProductDist(px, px)
	if err != nil {
		t.Fatal(err)
	}
	if prod.N() != 9 {
		t.Errorf("product domain %d", prod.N())
	}
	if math.Abs(dist.CollisionProb(prod)-1.0/9) > 1e-12 {
		t.Error("uniform product not uniform")
	}
}

func TestIndependenceDegenerateTable(t *testing.T) {
	// All mass on one row: trivially independent.
	it, _ := NewIndependenceTester(4, 4, 0.1)
	samples := []int{0, 1, 2, 3, 0, 1} // all row 0
	ok, err := it.Test(samples)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("degenerate one-row table rejected")
	}
}
