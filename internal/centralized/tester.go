package centralized

import (
	"fmt"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// Tester is a centralized distribution tester: it inspects a batch of iid
// samples and accepts or rejects the null hypothesis it was built for.
type Tester interface {
	// Test returns true to accept. It errors on malformed samples (out of
	// domain) rather than guessing.
	Test(samples []int) (bool, error)
	// SampleSize returns the number of samples the tester expects; Test
	// accepts any count but its guarantees are stated at this size.
	SampleSize() int
}

// Statistic maps a sample batch to a real test statistic. Statistics are
// shared with the distributed local rules in internal/core.
type Statistic func(samples []int) (float64, error)

// CalibrateThreshold estimates the (1 - alpha) quantile of a statistic
// under iid sampling from the given null distribution: the returned
// threshold is exceeded by the null with probability about alpha. Use
// alpha <= 1/3 to build a tester with the paper's 2/3 acceptance guarantee.
func CalibrateThreshold(stat Statistic, null dist.Dist, q, trials int, alpha float64, seed uint64) (float64, error) {
	if stat == nil {
		return 0, fmt.Errorf("centralized: nil statistic")
	}
	if q <= 0 {
		return 0, fmt.Errorf("centralized: calibrating with q=%d samples", q)
	}
	if trials <= 0 {
		return 0, fmt.Errorf("centralized: calibrating with %d trials", trials)
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("centralized: calibration tail mass %v outside (0,1)", alpha)
	}
	sampler, err := dist.NewAliasSampler(null)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xa5a5a5a5a5a5a5a5))
	vals := make([]float64, trials)
	buf := make([]int, q)
	for t := range vals {
		dist.SampleInto(sampler, buf, rng)
		v, err := stat(buf)
		if err != nil {
			return 0, err
		}
		vals[t] = v
	}
	return stats.Quantile(vals, 1-alpha)
}

func checkSamples(samples []int, n int) error {
	for _, s := range samples {
		if s < 0 || s >= n {
			return fmt.Errorf("centralized: sample %d outside domain of size %d", s, n)
		}
	}
	return nil
}
