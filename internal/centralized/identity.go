package centralized

import (
	"fmt"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/dist"
)

// IdentityTester tests identity to an arbitrary fixed known distribution by
// Goldreich's reduction: samples are filtered into a larger domain on which
// the question becomes uniformity testing, then judged by a collision
// tester. This is the "uniformity testing is complete" construction that
// makes the paper's lower bounds meaningful beyond the uniform case.
//
// The collision threshold is computed from the reduction's *exact* yes-case
// pushforward (available in closed form), not from an idealized uniform
// yes case, so the granularity slack of the reduction is absorbed
// automatically.
type IdentityTester struct {
	reduction *dist.IdentityReduction
	q         int
	eps       float64
	threshold float64
	rng       *rand.Rand
}

var _ Tester = (*IdentityTester)(nil)

// NewIdentityTester builds the tester. The seed drives the filter's
// internal randomness (bucket choices and mixing).
func NewIdentityTester(target dist.Dist, q int, eps float64, seed uint64) (*IdentityTester, error) {
	if q < 2 {
		return nil, fmt.Errorf("centralized: identity tester needs q >= 2, got %d", q)
	}
	r, err := dist.NewIdentityReduction(target, eps)
	if err != nil {
		return nil, err
	}
	yes, err := r.Pushforward(target)
	if err != nil {
		return nil, err
	}
	m := float64(r.OutputDomain())
	yesColl := dist.CollisionProb(yes)
	farG := r.FarGuarantee()
	farColl := (1 + farG*farG) / m
	if farColl <= yesColl {
		return nil, fmt.Errorf("centralized: reduction gap collapsed (yes %v >= far %v); eps too small for this target", yesColl, farColl)
	}
	pairs := float64(q) * float64(q-1) / 2
	threshold := pairs * (yesColl + farColl) / 2
	return &IdentityTester{
		reduction: r,
		q:         q,
		eps:       eps,
		threshold: threshold,
		rng:       rand.New(rand.NewPCG(seed, seed^0x5bd1e995)),
	}, nil
}

// SampleSize returns the sample count the tester was built for.
func (t *IdentityTester) SampleSize() int { return t.q }

// OutputDomain returns the reduced uniformity domain size m.
func (t *IdentityTester) OutputDomain() int { return t.reduction.OutputDomain() }

// Threshold returns the collision-count acceptance threshold on the reduced
// domain.
func (t *IdentityTester) Threshold() float64 { return t.threshold }

// Test filters the samples through the reduction and accepts iff the
// collision count on the reduced domain is at most the threshold.
func (t *IdentityTester) Test(samples []int) (bool, error) {
	mapped, err := t.reduction.MapAll(samples, t.rng)
	if err != nil {
		return false, err
	}
	c, err := CollisionCount(mapped, t.reduction.OutputDomain())
	if err != nil {
		return false, err
	}
	return float64(c) <= t.threshold, nil
}
