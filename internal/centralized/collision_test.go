package centralized

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

func testRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed+0x1234))
}

// acceptRate estimates how often tester accepts q iid samples from d.
func acceptRate(t *testing.T, tester Tester, d dist.Dist, q, trials int, seed uint64) float64 {
	t.Helper()
	sampler, err := dist.NewAliasSampler(d)
	if err != nil {
		t.Fatal(err)
	}
	est, err := stats.EstimateSuccess(trials, func(rng *rand.Rand) bool {
		buf := make([]int, q)
		dist.SampleInto(sampler, buf, rng)
		ok, err := tester.Test(buf)
		if err != nil {
			t.Error(err)
			return false
		}
		return ok
	}, stats.EstimateOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return est.P
}

func TestCollisionCountKnownValues(t *testing.T) {
	tests := []struct {
		name    string
		samples []int
		n       int
		want    int64
	}{
		{name: "no samples", samples: nil, n: 4, want: 0},
		{name: "distinct", samples: []int{0, 1, 2, 3}, n: 4, want: 0},
		{name: "one pair", samples: []int{0, 1, 0}, n: 4, want: 1},
		{name: "triple", samples: []int{2, 2, 2}, n: 4, want: 3},
		{name: "two pairs", samples: []int{0, 0, 1, 1}, n: 4, want: 2},
		{name: "all same", samples: []int{1, 1, 1, 1}, n: 4, want: 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := CollisionCount(tt.samples, tt.n)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("collisions = %d, want %d", got, tt.want)
			}
		})
	}
	if _, err := CollisionCount([]int{5}, 4); err == nil {
		t.Error("out-of-range sample accepted")
	}
}

func TestCollisionCountMatchesQuadratic(t *testing.T) {
	rng := testRand(1)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.IntN(20)
		q := rng.IntN(50)
		samples := make([]int, q)
		for i := range samples {
			samples[i] = rng.IntN(n)
		}
		want := int64(0)
		for i := 0; i < q; i++ {
			for j := i + 1; j < q; j++ {
				if samples[i] == samples[j] {
					want++
				}
			}
		}
		got, err := CollisionCount(samples, n)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("histogram count %d, quadratic count %d", got, want)
		}
	}
}

func TestNewCollisionTesterValidation(t *testing.T) {
	if _, err := NewCollisionTester(0, 10, 0.5); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewCollisionTester(16, 1, 0.5); err == nil {
		t.Error("q=1 accepted")
	}
	if _, err := NewCollisionTester(16, 10, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewCollisionTester(16, 10, 3); err == nil {
		t.Error("eps=3 accepted")
	}
	if _, err := NewCollisionTesterWithThreshold(16, 10, 0.5, -1); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestCollisionTesterSeparates(t *testing.T) {
	const (
		n   = 256
		eps = 0.5
	)
	q := RecommendedSamples(n, eps)
	tester, err := NewCollisionTester(n, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := dist.Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	far, err := dist.PairedBump(n, eps)
	if err != nil {
		t.Fatal(err)
	}
	if p := acceptRate(t, tester, uniform, q, 300, 10); p < 0.75 {
		t.Errorf("accepts uniform with probability %v, want >= 0.75", p)
	}
	if p := acceptRate(t, tester, far, q, 300, 11); p > 0.25 {
		t.Errorf("accepts eps-far with probability %v, want <= 0.25", p)
	}
}

func TestCollisionTesterAgainstHardFamily(t *testing.T) {
	// The paper's own hard family must also be rejected at the recommended
	// sample size (the family is hard in the constant, not asymptotically).
	h, err := dist.NewHardInstance(7, 0.5) // n = 256
	if err != nil {
		t.Fatal(err)
	}
	q := RecommendedSamples(h.N(), 0.5)
	tester, err := NewCollisionTester(h.N(), q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := testRand(12)
	nu, _, err := h.RandomPerturbed(rng)
	if err != nil {
		t.Fatal(err)
	}
	if p := acceptRate(t, tester, nu, q, 300, 13); p > 0.25 {
		t.Errorf("accepts nu_z with probability %v, want <= 0.25", p)
	}
}

func TestCollisionTesterFailsWithFewSamples(t *testing.T) {
	// With q far below sqrt(n)/eps^2 the two cases are indistinguishable:
	// acceptance probabilities nearly coincide.
	const n = 4096
	const eps = 0.25
	q := 20 // << 6*64/0.0625 ≈ 6144
	tester, err := NewCollisionTester(n, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	uniform, _ := dist.Uniform(n)
	far, _ := dist.PairedBump(n, eps)
	pu := acceptRate(t, tester, uniform, q, 400, 14)
	pf := acceptRate(t, tester, far, q, 400, 15)
	if math.Abs(pu-pf) > 0.15 {
		t.Errorf("starved tester still separates: uniform %v vs far %v", pu, pf)
	}
}

func TestCollisionTesterAccessors(t *testing.T) {
	tester, err := NewCollisionTester(64, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tester.N() != 64 || tester.SampleSize() != 100 || tester.Eps() != 0.5 {
		t.Errorf("accessors: %d %d %v", tester.N(), tester.SampleSize(), tester.Eps())
	}
	wantThreshold := 100 * 99 / 2.0 / 64 * (1 + 0.125)
	if math.Abs(tester.Threshold()-wantThreshold) > 1e-9 {
		t.Errorf("threshold = %v, want %v", tester.Threshold(), wantThreshold)
	}
}

func TestRecommendedSamplesScaling(t *testing.T) {
	// Doubling n multiplies q by ~sqrt(2); halving eps quadruples it.
	q1 := RecommendedSamples(1024, 0.5)
	q2 := RecommendedSamples(4096, 0.5)
	if ratio := float64(q2) / float64(q1); ratio < 1.8 || ratio > 2.2 {
		t.Errorf("4x n gave q ratio %v, want ~2", ratio)
	}
	q3 := RecommendedSamples(1024, 0.25)
	if ratio := float64(q3) / float64(q1); ratio < 3.6 || ratio > 4.4 {
		t.Errorf("eps/2 gave q ratio %v, want ~4", ratio)
	}
}

func TestCalibrateThreshold(t *testing.T) {
	const n = 64
	uniform, _ := dist.Uniform(n)
	stat := CollisionStatistic(n)
	threshold, err := CalibrateThreshold(stat, uniform, 200, 2000, 0.2, 99)
	if err != nil {
		t.Fatal(err)
	}
	// A threshold at the 80th percentile must be rejected by uniform about
	// 20% of the time.
	tester, err := NewCollisionTesterWithThreshold(n, 200, 0.5, threshold)
	if err != nil {
		t.Fatal(err)
	}
	p := acceptRate(t, tester, uniform, 200, 2000, 100)
	if p < 0.72 || p > 0.88 {
		t.Errorf("calibrated acceptance %v, want ~0.8", p)
	}
}

func TestCalibrateThresholdValidation(t *testing.T) {
	u, _ := dist.Uniform(4)
	stat := CollisionStatistic(4)
	if _, err := CalibrateThreshold(nil, u, 10, 10, 0.1, 0); err == nil {
		t.Error("nil statistic accepted")
	}
	if _, err := CalibrateThreshold(stat, u, 0, 10, 0.1, 0); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := CalibrateThreshold(stat, u, 10, 0, 0.1, 0); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := CalibrateThreshold(stat, u, 10, 10, 0, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := CalibrateThreshold(stat, u, 10, 10, 1, 0); err == nil {
		t.Error("alpha=1 accepted")
	}
}
