// Package centralized implements the single-machine distribution testers
// that the paper's distributed model is measured against: the
// collision-based uniformity tester (Goldreich-Ron; Paninski showed
// Theta(sqrt(n)/eps^2) samples are necessary and sufficient), a chi-squared
// identity tester, a plug-in (empirical-L1) tester, identity testing via
// Goldreich's reduction to uniformity, and an empirical learner.
//
// Every tester follows the paper's acceptance convention: Test returns true
// ("accept") when the samples look consistent with the null hypothesis
// (uniformity / identity), and false ("reject") otherwise. A tester built
// for proximity eps must accept U_n with probability at least 2/3 and
// reject any distribution eps-far in L1 with probability at least 2/3, once
// given its stated sample complexity.
//
// Thresholds come in two flavors, mirroring the ablation in DESIGN.md:
// closed-form (from the exact collision-probability gap (1+eps^2)/n versus
// 1/n and Chebyshev) and Monte-Carlo calibration (package function
// CalibrateThreshold), which the experiments use to squeeze constants.
package centralized
