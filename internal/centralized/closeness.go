package centralized

import (
	"fmt"
	"math"

	"github.com/distributed-uniformity/dut/internal/dist"
)

// The paper's introduction notes that uniformity testing is a special case
// of closeness testing (two unknown distributions) and independence
// testing, so its lower bounds transfer to both. This file implements the
// closeness side; experiment E19 demonstrates the transfer.

// L2DistanceEstimate returns the standard unbiased estimator of
// ||P - Q||_2^2 from two iid sample batches:
//
//	2 coll(X)/ (|X|(|X|-1)) + 2 coll(Y)/(|Y|(|Y|-1)) - 2 cross(X,Y)/(|X||Y|),
//
// where coll counts equal pairs within a batch and cross counts equal
// pairs across batches. Each term is an unbiased estimate of ||P||_2^2,
// ||Q||_2^2 and <P,Q> respectively.
func L2DistanceEstimate(x, y []int, n int) (float64, error) {
	if len(x) < 2 || len(y) < 2 {
		return 0, fmt.Errorf("centralized: L2 estimate needs >= 2 samples per batch, got %d and %d", len(x), len(y))
	}
	hx, err := dist.Histogram(x, n)
	if err != nil {
		return 0, err
	}
	hy, err := dist.Histogram(y, n)
	if err != nil {
		return 0, err
	}
	var collX, collY, cross int64
	for i := 0; i < n; i++ {
		collX += hx[i] * (hx[i] - 1) / 2
		collY += hy[i] * (hy[i] - 1) / 2
		cross += hx[i] * hy[i]
	}
	qx, qy := float64(len(x)), float64(len(y))
	return 2*float64(collX)/(qx*(qx-1)) +
		2*float64(collY)/(qy*(qy-1)) -
		2*float64(cross)/(qx*qy), nil
}

// ClosenessTester tests whether two unknown distributions over [n] are
// equal or eps-far in L1, by thresholding the unbiased ||P - Q||_2^2
// estimator: equality gives mean 0, while ||P-Q||_1 >= eps forces
// ||P-Q||_2^2 >= eps^2/n by Cauchy-Schwarz. This is the L2-flavored tester
// (optimal for flat distributions, which includes the uniformity-testing
// special case Q = U_n that inherits the paper's lower bounds); heavy
// distributions may need the n^{2/3}-type testers of [CDVV14], which are
// out of scope.
type ClosenessTester struct {
	n         int
	q         int
	eps       float64
	threshold float64
}

// NewClosenessTester builds the tester for per-batch sample count q; the
// threshold sits at half the guaranteed far-side mean eps^2/n.
func NewClosenessTester(n, q int, eps float64) (*ClosenessTester, error) {
	if n <= 0 {
		return nil, fmt.Errorf("centralized: closeness tester over domain %d", n)
	}
	if q < 2 {
		return nil, fmt.Errorf("centralized: closeness tester needs q >= 2 per batch, got %d", q)
	}
	if eps <= 0 || eps > 2 {
		return nil, fmt.Errorf("centralized: closeness tester eps %v outside (0,2]", eps)
	}
	return &ClosenessTester{
		n:         n,
		q:         q,
		eps:       eps,
		threshold: eps * eps / (2 * float64(n)),
	}, nil
}

// SampleSize returns the per-batch sample count.
func (t *ClosenessTester) SampleSize() int { return t.q }

// Threshold returns the acceptance threshold on the L2^2 estimate.
func (t *ClosenessTester) Threshold() float64 { return t.threshold }

// Test accepts ("same distribution") iff the L2^2 estimate is at most the
// threshold.
func (t *ClosenessTester) Test(x, y []int) (bool, error) {
	est, err := L2DistanceEstimate(x, y, t.n)
	if err != nil {
		return false, err
	}
	return est <= t.threshold, nil
}

// RecommendedClosenessSamples returns the per-batch sample size at which
// the tester separates equal from eps-far flat distributions with
// probability 2/3: c sqrt(n)/eps^2, validated by experiment E19.
func RecommendedClosenessSamples(n int, eps float64) int {
	return int(12*math.Sqrt(float64(n))/(eps*eps)) + 2
}

// UniformityViaCloseness reduces uniformity testing to closeness testing:
// the second batch is drawn from an explicit uniform sampler. It exists to
// demonstrate (and test) the paper's remark that closeness testing
// inherits every uniformity lower bound — any closeness tester run this
// way *is* a uniformity tester.
type UniformityViaCloseness struct {
	inner *ClosenessTester
}

// NewUniformityViaCloseness builds the reduction.
func NewUniformityViaCloseness(n, q int, eps float64) (*UniformityViaCloseness, error) {
	inner, err := NewClosenessTester(n, q, eps)
	if err != nil {
		return nil, err
	}
	return &UniformityViaCloseness{inner: inner}, nil
}

// SampleSize returns the per-batch sample count.
func (t *UniformityViaCloseness) SampleSize() int { return t.inner.SampleSize() }

// Test accepts iff the unknown batch is close to the reference uniform
// batch.
func (t *UniformityViaCloseness) Test(unknown, uniformRef []int) (bool, error) {
	return t.inner.Test(unknown, uniformRef)
}
