package lint

import (
	"bytes"
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive comment.
const ignorePrefix = "lint:ignore"

// ignoreDirective is one parsed //lint:ignore comment. A directive with
// Err != "" is malformed and reported instead of applied.
type ignoreDirective struct {
	// File and Line locate the directive comment itself.
	File string
	Line int
	Col  int
	// Target is the line whose diagnostics the directive suppresses: the
	// directive's own line for trailing comments, otherwise the first
	// following line that is not itself a whole-line directive (so stacked
	// directives all reach the same statement).
	Target int
	// Rule is the analyzer name being suppressed.
	Rule string
	// Reason is the mandatory justification.
	Reason string
	// Err describes a parse problem, reported under dut/ignore.
	Err string
}

// parseIgnores extracts every //lint:ignore directive of one file. src is
// the file's source bytes (used to distinguish trailing directives from
// whole-line ones); known is the accepted rule-name set.
func parseIgnores(fset *token.FileSet, f *ast.File, src []byte, known map[string]bool) []ignoreDirective {
	var lines [][]byte
	if src != nil {
		lines = bytes.Split(src, []byte("\n"))
	}
	var out []ignoreDirective
	wholeLine := map[int]bool{} // lines that consist solely of a directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := directiveText(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			d := ignoreDirective{File: pos.Filename, Line: pos.Line, Col: pos.Column}
			d.Rule, d.Reason, d.Err = splitDirective(text, known)
			trailing := false
			if lines != nil && pos.Line-1 < len(lines) {
				before := lines[pos.Line-1]
				if pos.Column-1 <= len(before) {
					trailing = len(bytes.TrimSpace(before[:pos.Column-1])) > 0
				}
			}
			if trailing {
				d.Target = pos.Line
			} else {
				wholeLine[pos.Line] = true
				d.Target = pos.Line + 1
			}
			out = append(out, d)
		}
	}
	// Resolve stacking: a whole-line directive whose next line is another
	// whole-line directive suppresses the first non-directive line below.
	// Resolution is adjacent-line-only: a directive separated from its
	// statement by a blank line is malformed, not silently inert — the
	// old parser accepted that shape while suppressing nothing, which
	// read as an applied suppression in review.
	for i := range out {
		if out[i].Target == out[i].Line { // trailing
			continue
		}
		for wholeLine[out[i].Target] {
			out[i].Target++
		}
		if out[i].Err != "" || lines == nil {
			continue
		}
		if out[i].Target > len(lines) {
			out[i].Err = "//lint:ignore directive at end of file annotates nothing"
		} else if len(bytes.TrimSpace(lines[out[i].Target-1])) == 0 {
			out[i].Err = "//lint:ignore directive is separated from its statement by a blank line; it must be adjacent"
		}
	}
	return out
}

// directiveText returns the directive body ("dut/rule reason...") when
// the comment is a //lint:ignore directive.
func directiveText(comment string) (string, bool) {
	text, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false // /* */ comments are not directives
	}
	// Directive comments, like //go:build, admit no space after the
	// slashes: "// lint:ignore" is prose.
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. lint:ignoreXYZ
	}
	return strings.TrimSpace(rest), true
}

// splitDirective validates the directive body: a known rule name followed
// by a non-empty reason.
func splitDirective(body string, known map[string]bool) (rule, reason, problem string) {
	if body == "" {
		return "", "", "malformed //lint:ignore directive: want \"//lint:ignore dut/<rule> reason\""
	}
	rule, reason, _ = strings.Cut(body, " ")
	reason = strings.TrimSpace(reason)
	if !known[rule] {
		return rule, reason, "//lint:ignore names unknown rule " + quoteRule(rule)
	}
	if reason == "" {
		return rule, "", "//lint:ignore " + rule + " is missing the mandatory reason"
	}
	return rule, reason, ""
}

// quoteRule quotes a possibly-empty rule name for an error message.
func quoteRule(s string) string {
	if s == "" {
		return `""`
	}
	return `"` + s + `"`
}
