package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
)

// AnalyzerAtomicDiscipline enforces the two memory-layout contracts of
// the driver's shared state. First, mixed access: a variable or field
// whose address is ever handed to a sync/atomic operation anywhere in
// the program must never be read or written plainly elsewhere — a plain
// access next to atomics is a data race the race detector only catches
// when a test happens to interleave it. The touch set is collected
// program-wide through the shared call-graph layer, so an atomic store
// in one package poisons plain loads in another. Second, padding: a
// struct that carries a blank padding field (the workerErrs pattern —
// "_ [N]byte" sized to push each element onto its own cache lines) must
// stay a multiple of the 64-byte line, so growing it cannot silently
// re-introduce the false sharing the pad was added to kill.
var AnalyzerAtomicDiscipline = &Analyzer{
	Name: "dut/atomicdiscipline",
	Doc:  "plain access to an atomically-accessed field, or a padded struct off cache-line size",
	Run:  runAtomicDiscipline,
}

func runAtomicDiscipline(p *Pass) error {
	p.checkMixedAtomicAccess()
	p.checkPaddedStructs()
	return nil
}

// checkMixedAtomicAccess flags plain uses of program-wide atomically
// touched objects.
func (p *Pass) checkMixedAtomicAccess() {
	touched := p.Prog.atomicTouched()
	if len(touched) == 0 {
		return
	}
	for _, f := range p.Files {
		// Idents consumed by a sync/atomic call's address argument are the
		// blessed accesses; collect them before flagging the rest.
		blessed := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			switch x := ast.Unparen(unary.X).(type) {
			case *ast.Ident:
				blessed[x] = true
			case *ast.SelectorExpr:
				blessed[x.Sel] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || blessed[id] {
				return true
			}
			obj := p.Info.Uses[id] // uses only: the declaration itself is fine
			if obj == nil {
				return true
			}
			if at, hit := touched[obj]; hit {
				p.Reportf(id.Pos(), "%s is accessed via sync/atomic (e.g. %s:%d) but read/written plainly here; mixed access races", id.Name, at.Filename, at.Line)
			}
			return true
		})
	}
}

// checkPaddedStructs verifies every struct with a blank byte-array pad
// field still sizes to a whole number of 64-byte cache lines.
func (p *Pass) checkPaddedStructs() {
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || !hasPadField(p.Info, st) {
				return true
			}
			t := p.Info.TypeOf(ts.Type)
			if t == nil {
				return true
			}
			size := sizes.Sizeof(t)
			if size%64 != 0 {
				p.Reportf(ts.Pos(), "padded struct %s is %d bytes, not a multiple of the 64-byte cache line; its elements share lines again — resize the pad", ts.Name.Name, size)
			}
			return true
		})
	}
}

// hasPadField reports whether the struct declares a blank byte-array
// padding field.
func hasPadField(info *types.Info, st *ast.StructType) bool {
	for _, field := range st.Fields.List {
		blank := false
		for _, name := range field.Names {
			if name.Name == "_" {
				blank = true
			}
		}
		if !blank {
			continue
		}
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if arr, ok := t.Underlying().(*types.Array); ok {
			if b, ok := arr.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
				return true
			}
		}
	}
	return false
}
