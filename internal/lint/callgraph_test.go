package lint

import "testing"

// TestProgramCacheInvalidation pins the per-package granularity of the
// call-graph cache: invalidating one package rebuilds only that
// package's fragment, while untouched fragments keep pointer identity —
// so an incremental caller never re-pays whole-program construction.
func TestProgramCacheInvalidation(t *testing.T) {
	hot := loadFixture(t, "hotalloc", "example.com/internal/network/fixture")
	goro := loadFixture(t, "goroleak", "example.com/internal/engine/fixture")
	prog := NewProgram(hot, goro)

	hotFrag := prog.fragment(hot)
	goroFrag := prog.fragment(goro)
	if len(hotFrag.nodes) == 0 || len(goroFrag.nodes) == 0 {
		t.Fatalf("fragments empty: hot=%d goro=%d", len(hotFrag.nodes), len(goroFrag.nodes))
	}
	if len(prog.hotReachable()) == 0 {
		t.Fatal("no hot-reachable functions despite a //dut:hotpath root")
	}

	prog.Invalidate(goro.Path)
	if got := prog.fragment(hot); got != hotFrag {
		t.Error("invalidating one package rebuilt another package's fragment")
	}
	if got := prog.fragment(goro); got == goroFrag {
		t.Error("invalidated fragment was served from cache")
	}
	// Derived cross-package caches must drop on any invalidation.
	if prog.hotFrom != nil {
		t.Error("hotFrom cache survived Invalidate")
	}
	if len(prog.hotReachable()) == 0 {
		t.Error("hot reachability lost after rebuild")
	}
}

// TestColdpathBoundary pins the marker semantics: reachability descends
// through unmarked callees but stops at a //dut:coldpath function.
func TestColdpathBoundary(t *testing.T) {
	hot := loadFixture(t, "hotalloc", "example.com/internal/network/fixture")
	prog := NewProgram(hot)
	reach := prog.hotReachable()
	var keys []string
	for k := range reach {
		keys = append(keys, k)
	}
	has := func(sub string) bool {
		for _, k := range keys {
			if k == sub || len(k) > len(sub) && k[len(k)-len(sub)-1:] == "."+sub {
				return true
			}
		}
		return false
	}
	if !has("fill") {
		t.Errorf("fill not hot-reachable; reach=%v", keys)
	}
	if has("newWorker") {
		t.Errorf("//dut:coldpath newWorker is hot-reachable; reach=%v", keys)
	}
	if has("orphan") {
		t.Errorf("unreachable orphan is hot-reachable; reach=%v", keys)
	}
}
