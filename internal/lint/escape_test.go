package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseEscapeLine(t *testing.T) {
	tests := []struct {
		name string
		line string
		root string
		ok   bool
		file string
		ln   int
		text string
	}{
		{
			name: "relative path resolves against root",
			line: "internal/network/wire.go:432:13: make([]byte, 8) escapes to heap",
			root: "/repo",
			ok:   true,
			file: "/repo/internal/network/wire.go",
			ln:   432,
			text: "make([]byte, 8) escapes to heap",
		},
		{
			name: "absolute path kept as is",
			line: "/abs/wire.go:10:2: x escapes to heap",
			root: "/repo",
			ok:   true,
			file: "/abs/wire.go",
			ln:   10,
			text: "x escapes to heap",
		},
		{
			name: "non-go file rejected",
			line: "notes.txt:10:2: escapes to heap",
			ok:   false,
		},
		{
			name: "prose line rejected",
			line: "# github.com/distributed-uniformity/dut/internal/network",
			ok:   false,
		},
		{
			name: "non-numeric position rejected",
			line: "wire.go:x:y: escapes to heap",
			ok:   false,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			pos, text, ok := parseEscapeLine(tc.line, tc.root)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if !ok {
				return
			}
			if pos.Filename != tc.file || pos.Line != tc.ln || text != tc.text {
				t.Errorf("got %s:%d %q, want %s:%d %q", pos.Filename, pos.Line, text, tc.file, tc.ln, tc.text)
			}
		})
	}
}

// parseBody extracts the first function body of a snippet.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "grow.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in snippet")
	return nil
}

func TestAmortizedGrowRanges(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want int
	}{
		{
			name: "cap guard with make is amortized",
			src: `package p
func f(x []uint64, need int) []uint64 {
	if cap(x) < need {
		x = make([]uint64, need)
	}
	return x[:need]
}`,
			want: 1,
		},
		{
			name: "nil guard lazy init is amortized",
			src: `package p
func f(m map[int]int) map[int]int {
	if m == nil {
		m = make(map[int]int)
	}
	return m
}`,
			want: 1,
		},
		{
			name: "len guard is amortized",
			src: `package p
func f(x []bool, n int) []bool {
	if len(x) != n {
		x = make([]bool, n)
	}
	return x
}`,
			want: 1,
		},
		{
			name: "unguarded make is not amortized",
			src: `package p
func f(flag bool) []uint64 {
	if flag {
		return make([]uint64, 8)
	}
	return nil
}`,
			want: 0,
		},
		{
			name: "guard without make is not a grow block",
			src: `package p
func f(x []uint64) int {
	if cap(x) == 0 {
		return -1
	}
	return cap(x)
}`,
			want: 0,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := amortizedGrowRanges(parseBody(t, tc.src))
			if len(got) != tc.want {
				t.Errorf("got %d amortized ranges, want %d", len(got), tc.want)
			}
		})
	}
}

// TestEscapeAudit drives the compiler-diff over the hotalloc fixture
// with synthetic -m=2 output: escapes in covered hot functions, behind
// coldpath boundaries, and in unreachable functions are accounted for;
// an escape in an uncovered hot function is the one miss.
func TestEscapeAudit(t *testing.T) {
	pkg := loadFixture(t, "hotalloc", "example.com/internal/network/fixture")
	prog := NewProgram(pkg)
	diags, err := RunPackageAll(prog, pkg, []*Analyzer{AnalyzerHotAlloc})
	if err != nil {
		t.Fatal(err)
	}
	const file = "testdata/hotalloc/hotalloc.go"
	buildOutput := strings.Join([]string{
		// sink (line 65) is hot-reachable but carries no diagnostic or
		// directive: the only legitimate miss. Repeated to pin dedup.
		file + ":65:15: v escapes to heap:",
		file + ":65:15: v escapes to heap:",
		// RunScratch carries diagnostics, so the whole function counts as
		// reviewed.
		file + ":26:10: map[string]int{...} escapes to heap:",
		// newWorker is behind a //dut:coldpath boundary.
		file + ":75:12: map[string]int{...} escapes to heap:",
		// orphan is unreachable from any root.
		file + ":82:7: map[int]int{...} escapes to heap:",
		// Not an allocation note.
		file + ":56:11: xs does not escape",
		"# example.com/internal/network/fixture",
	}, "\n")
	misses := EscapeAudit(prog, diags, buildOutput, "")
	if len(misses) != 1 {
		t.Fatalf("got %d misses %v, want exactly 1", len(misses), misses)
	}
	m := misses[0]
	if m.Fn != "sink" || m.Pos.Line != 65 {
		t.Errorf("miss = %v, want the line-65 escape in sink", m)
	}
}
