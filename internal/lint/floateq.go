package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// AnalyzerFloatEq flags == and != between floating-point operands in the
// numeric packages (internal/stats, internal/lowerbound,
// internal/centralized). Exact float equality is almost always a rounding
// hazard; comparisons belong in tolerance helpers. The rare mathematically
// exact checks (zero-mass guards, degenerate-rate branches, zero-value
// option sentinels) carry a //lint:ignore with the reason, making every
// exact comparison a documented decision.
var AnalyzerFloatEq = &Analyzer{
	Name: "dut/floateq",
	Doc:  "==/!= on float operands in the numeric packages outside tolerance helpers",
	Run:  runFloatEq,
}

// toleranceHelper reports whether a function name marks an approved
// comparison helper, where exact float operations are the point.
func toleranceHelper(name string) bool {
	lower := strings.ToLower(name)
	for _, marker := range []string{"approx", "almost", "close", "tol", "within"} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

func runFloatEq(p *Pass) error {
	if !p.InScope(floatScope...) {
		return nil
	}
	for _, f := range p.Files {
		for _, fd := range funcDecls(f) {
			if toleranceHelper(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				tx, ty := p.Info.TypeOf(be.X), p.Info.TypeOf(be.Y)
				if (tx != nil && isFloat(tx)) || (ty != nil && isFloat(ty)) {
					p.Reportf(be.OpPos,
						"%s on float operands; use a tolerance helper, or //lint:ignore with the reason the comparison is exact", be.Op)
				}
				return true
			})
		}
	}
	return nil
}
