package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseSrc runs parseIgnores over a synthetic file.
func parseSrc(t *testing.T, src string) []ignoreDirective {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	known := map[string]bool{"dut/floateq": true, "dut/nondeterminism": true}
	return parseIgnores(fset, f, []byte(src), known)
}

func TestParseIgnores(t *testing.T) {
	type exp struct {
		rule   string
		target int
		errSub string // "" means well-formed
	}
	tests := []struct {
		name string
		src  string
		want []exp
	}{
		{
			name: "whole line targets next line",
			src: `package p

//lint:ignore dut/floateq the comparison is exact
var x = 1.0
`,
			want: []exp{{rule: "dut/floateq", target: 4}},
		},
		{
			name: "trailing targets own line",
			src: `package p

var x = 1.0 //lint:ignore dut/floateq the comparison is exact
`,
			want: []exp{{rule: "dut/floateq", target: 3}},
		},
		{
			name: "stacked directives reach the same statement",
			src: `package p

//lint:ignore dut/floateq first reason
//lint:ignore dut/nondeterminism second reason
var x = 1.0
`,
			want: []exp{
				{rule: "dut/floateq", target: 5},
				{rule: "dut/nondeterminism", target: 5},
			},
		},
		{
			name: "wrong rule name",
			src: `package p

//lint:ignore dut/bogus some reason
var x = 1.0
`,
			want: []exp{{rule: "dut/bogus", target: 4, errSub: `unknown rule "dut/bogus"`}},
		},
		{
			name: "missing reason",
			src: `package p

//lint:ignore dut/floateq
var x = 1.0
`,
			want: []exp{{rule: "dut/floateq", target: 4, errSub: "missing the mandatory reason"}},
		},
		{
			name: "bare directive",
			src: `package p

//lint:ignore
var x = 1.0
`,
			want: []exp{{target: 4, errSub: "malformed //lint:ignore directive"}},
		},
		{
			// Regression: the old parser resolved a blank-separated
			// directive to the blank line itself — well-formed, targeting
			// nothing — so the suppression read as applied but never was.
			name: "blank line between directive and statement is malformed",
			src: `package p

//lint:ignore dut/floateq a reasoned but detached suppression

var x = 1.0
`,
			want: []exp{{rule: "dut/floateq", target: 4, errSub: "separated from its statement by a blank line"}},
		},
		{
			name: "stacked directives may not skip a blank line either",
			src: `package p

//lint:ignore dut/floateq first reason
//lint:ignore dut/nondeterminism second reason

var x = 1.0
`,
			want: []exp{
				{rule: "dut/floateq", target: 5, errSub: "separated from its statement by a blank line"},
				{rule: "dut/nondeterminism", target: 5, errSub: "separated from its statement by a blank line"},
			},
		},
		{
			name: "directive at end of file annotates nothing",
			src: `package p

var x = 1.0

//lint:ignore dut/floateq dangling`,
			want: []exp{{rule: "dut/floateq", target: 6, errSub: "annotates nothing"}},
		},
		{
			name: "unrelated comments are not directives",
			src: `package p

// lint:ignore is described in the README; this mention is prose.
//lint:ignoreXYZ not a directive either
var x = 1.0
`,
			want: nil,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := parseSrc(t, tc.src)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d directives %+v, want %d", len(got), got, len(tc.want))
			}
			for i, w := range tc.want {
				d := got[i]
				if d.Rule != w.rule {
					t.Errorf("directive %d rule = %q, want %q", i, d.Rule, w.rule)
				}
				if d.Target != w.target {
					t.Errorf("directive %d target = %d, want %d", i, d.Target, w.target)
				}
				if w.errSub == "" && d.Err != "" {
					t.Errorf("directive %d unexpectedly malformed: %s", i, d.Err)
				}
				if w.errSub != "" && !strings.Contains(d.Err, w.errSub) {
					t.Errorf("directive %d err = %q, want substring %q", i, d.Err, w.errSub)
				}
			}
		})
	}
}

// TestMalformedDirectiveSurfacesAsFinding checks the end-to-end behavior:
// a malformed directive becomes a dut/ignore diagnostic that no directive
// can suppress.
func TestMalformedDirectiveSurfacesAsFinding(t *testing.T) {
	fset := token.NewFileSet()
	src := `package fixture

//lint:ignore dut/floateq
func f(x float64) bool { return x == 0 }
`
	f, err := parser.ParseFile(fset, "bad.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := newInfo()
	tpkg, err := (&types.Config{}).Check("example.com/internal/stats/fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	syn := &Package{
		Path:  "example.com/internal/stats/fixture",
		Fset:  fset,
		Files: []*ast.File{f},
		Srcs:  map[string][]byte{"bad.go": []byte(src)},
		Types: tpkg,
		Info:  info,
	}
	diags, err := RunPackage(syn, []*Analyzer{AnalyzerFloatEq})
	if err != nil {
		t.Fatal(err)
	}
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	// The float comparison is NOT suppressed (the directive is malformed)
	// and the directive itself is reported.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics (%v), want 2", len(diags), diags)
	}
	if rules[0] != "dut/ignore" || rules[1] != "dut/floateq" {
		t.Errorf("rules = %v, want [dut/ignore dut/floateq]", rules)
	}
}
