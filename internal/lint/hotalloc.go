package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerHotAlloc proves alloc-freedom on the declared hot paths: the
// call graph is seeded at every function carrying a //dut:hotpath
// marker (scratch runners, the reduce/decide kernels, slot writers) and
// every statically-detectable allocation reachable from a root is
// flagged — append whose result is not assigned back to the slice it
// grows, map literals and make(map), interface boxing at call sites
// (including fmt/errors argument boxing), function literals that
// capture variables and escape, and string<->[]byte conversions.
//
// Two shapes are exempt by design. Grow-to-cap scratch (make of a
// slice) is the repo's blessed reuse idiom, so plain make([]T, n) is
// never flagged. And allocations inside an early-return branch — a
// block, other than the function body itself, whose last statement is a
// return — sit on the failure/edge path: the steady state falls
// through, and AllocsPerRun guards measure the steady state. Everything
// else needs a fix or a reasoned //lint:ignore.
var AnalyzerHotAlloc = &Analyzer{
	Name: "dut/hotalloc",
	Doc:  "statically-detectable allocation reachable from a //dut:hotpath root",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) error {
	pkg, ok := p.Prog.pkgs[p.PkgPath]
	if !ok {
		return nil
	}
	reach := p.Prog.hotReachable()
	if len(reach) == 0 {
		return nil
	}
	g := p.Prog.fragment(pkg)
	for key, node := range g.nodes {
		if root, hot := reach[key]; hot {
			p.checkHotFunc(node, root)
		}
	}
	return nil
}

// checkHotFunc flags the statically-detectable allocations of one
// hot-reachable function body. root names the //dut:hotpath root the
// function is reachable from, for the diagnostic.
func (p *Pass) checkHotFunc(node *funcNode, root string) {
	body := node.decl.Body

	// First pass: appends whose result feeds back into the slice they
	// grow (x = append(x, ...), including x = append(x[:0], ...)) reuse
	// the backing array and are the blessed idiom.
	okAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) || !isBuiltinAppend(p.Info, call) || len(call.Args) == 0 {
				continue
			}
			dst := sliceBaseObj(p.Info, as.Lhs[i])
			src := sliceBaseObj(p.Info, call.Args[0])
			if dst != nil && dst == src {
				okAppend[call] = true
			}
		}
		return true
	})

	cold := newColdBlocks(body)
	walkWithParents(body, func(n ast.Node, parents []ast.Node) {
		if cold.in(n) {
			return
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			p.checkHotCall(node, okAppend, root)
		case *ast.CompositeLit:
			if t := p.Info.TypeOf(node); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					p.Reportf(node.Pos(), "map literal allocates on the hot path (reachable from %s)", root)
				}
			}
		case *ast.FuncLit:
			p.checkHotFuncLit(node, parents, root)
		}
	})
}

// checkHotCall flags allocation at one call site of a hot function:
// non-reused appends, make(map), interface-boxing arguments, and
// string<->[]byte conversions.
func (p *Pass) checkHotCall(call *ast.CallExpr, okAppend map[*ast.CallExpr]bool, root string) {
	// Conversions: T(x) where the callee is a type, not a function.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, p.Info.TypeOf(call.Args[0])
		if isStringBytesConv(to, from) {
			p.Reportf(call.Pos(), "string<->[]byte conversion copies its operand on the hot path (reachable from %s)", root)
		}
		return
	}
	if isBuiltinAppend(p.Info, call) {
		if !okAppend[call] {
			p.Reportf(call.Pos(), "append result is not assigned back to the slice it grows; a reallocation forks the buffer on the hot path (reachable from %s)", root)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" && p.Info.Uses[id] == types.Universe.Lookup("make") {
		if t := p.Info.TypeOf(call); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				p.Reportf(call.Pos(), "make(map) allocates on the hot path (reachable from %s)", root)
			}
		}
		return
	}

	// Interface boxing at ordinary call sites: a concrete non-pointer
	// argument passed to an interface parameter is heap-boxed.
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	stdFmt := fn.Pkg() != nil && (fn.Pkg().Path() == "fmt" || fn.Pkg().Path() == "errors")
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil {
			continue
		}
		// A type parameter's underlying type is its constraint interface,
		// but generic instantiation is static dispatch, not boxing.
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil || !boxes(at) {
			continue
		}
		if stdFmt {
			p.Reportf(arg.Pos(), "%s.%s boxes a %s argument on the hot path (reachable from %s)", fn.Pkg().Name(), fn.Name(), types.TypeString(at, types.RelativeTo(p.Pkg)), root)
		} else {
			p.Reportf(arg.Pos(), "%s argument boxes into an interface parameter of %s on the hot path (reachable from %s)", types.TypeString(at, types.RelativeTo(p.Pkg)), fn.Name(), root)
		}
	}
}

// checkHotFuncLit flags a capturing function literal in an escaping
// position: a closure handed to a go statement, returned, sent, stored
// beyond a local, or passed as an argument must be heap-allocated along
// with its by-reference captures. Immediately-invoked and deferred
// literals stay on the stack and pass.
func (p *Pass) checkHotFuncLit(lit *ast.FuncLit, parents []ast.Node, root string) {
	if !escapingLit(lit, parents) || !capturesOuter(p.Info, lit) {
		return
	}
	p.Reportf(lit.Pos(), "escaping closure captures outer variables, heap-allocating them on the hot path (reachable from %s)", root)
}

// escapingLit reports whether the literal's syntactic position makes it
// escape. parents runs from the root to the literal's parent.
func escapingLit(lit *ast.FuncLit, parents []ast.Node) bool {
	if len(parents) == 0 {
		return true
	}
	parent := parents[len(parents)-1]
	switch pn := parent.(type) {
	case *ast.CallExpr:
		if ast.Unparen(pn.Fun) == lit {
			// Immediately invoked (or via go/defer). go func(){}() escapes
			// with the goroutine; defer and plain invocation do not.
			if len(parents) >= 2 {
				if _, isGo := parents[len(parents)-2].(*ast.GoStmt); isGo {
					return true
				}
			}
			return false
		}
		return true // passed as an argument
	case *ast.AssignStmt:
		for i, rhs := range pn.Rhs {
			if ast.Unparen(rhs) != lit || i >= len(pn.Lhs) {
				continue
			}
			if _, isIdent := ast.Unparen(pn.Lhs[i]).(*ast.Ident); isIdent {
				return false // a local binding; later escape is out of static reach
			}
		}
		return true
	case *ast.ValueSpec:
		return false
	}
	return true
}

// capturesOuter reports whether the literal references variables
// declared outside itself (the captures that force heap allocation).
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
		}
		return true
	})
	return found
}

// coldBlocks records the early-return branches of one function body:
// every block or case clause, other than the top-level body, whose last
// statement is a return. Allocations there are failure/edge-path work.
type coldBlocks struct {
	ranges [][2]token.Pos
}

func newColdBlocks(body *ast.BlockStmt) *coldBlocks {
	// A function literal's own body is a top-level body, not a branch:
	// collect them first so "go func() { ...; return }" does not turn a
	// whole goroutine cold.
	topLevel := map[*ast.BlockStmt]bool{body: true}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			topLevel[lit.Body] = true
		}
		return true
	})
	c := &coldBlocks{}
	ast.Inspect(body, func(n ast.Node) bool {
		var stmts []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			if topLevel[b] {
				return true
			}
			stmts = b.List
		case *ast.CaseClause:
			stmts = b.Body
		case *ast.CommClause:
			stmts = b.Body
		default:
			return true
		}
		if len(stmts) > 0 && terminatesCold(stmts[len(stmts)-1]) {
			c.ranges = append(c.ranges, [2]token.Pos{n.Pos(), n.End()})
		}
		return true
	})
	return c
}

// terminatesCold reports whether stmt ends its branch off the steady
// state: a return or a panic call.
func terminatesCold(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// in reports whether the node lies inside a cold range.
func (c *coldBlocks) in(n ast.Node) bool {
	for _, r := range c.ranges {
		if n.Pos() >= r[0] && n.End() <= r[1] {
			return true
		}
	}
	return false
}

// walkWithParents visits every node with its ancestor chain (root
// first, immediate parent last).
func walkWithParents(root ast.Node, visit func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

// isBuiltinAppend reports whether the call invokes the universe append.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append" && info.Uses[id] == types.Universe.Lookup("append")
}

// sliceBaseObj resolves the variable or field underlying a slice
// expression, unwrapping reslices: buf, bs.buf, buf[:0], bs.buf[a:b]
// all resolve to the same object.
func sliceBaseObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		default:
			return exprObj(info, e)
		}
	}
}

// paramType returns the type of parameter i, unrolling variadics.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if s, ok := last.Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// boxes reports whether storing a value of type t into an interface
// heap-allocates: concrete, non-pointer-shaped types do.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return false
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly in the iface word
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	default:
		return true
	}
}

// isStringBytesConv reports a string([]byte) or []byte(string)
// conversion, both of which copy.
func isStringBytesConv(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isStringT(to) && isByteSlice(from)) || (isByteSlice(to) && isStringT(from))
}

func isStringT(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
