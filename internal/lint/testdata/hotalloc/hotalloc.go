// Package fixture exercises dut/hotalloc: statically-detectable
// allocations reachable from a //dut:hotpath root are flagged, while
// the blessed shapes — reused appends, grow-to-cap make, cold branches,
// generic calls, coldpath boundaries — pass.
package fixture

import "fmt"

type worker struct {
	buf []byte
	out []byte
}

// RunScratch is the declared hot root; everything it reaches is checked.
//
//dut:hotpath
func (w *worker) RunScratch(vals []uint32) error {
	if len(vals) == 0 {
		return fmt.Errorf("empty batch of %d values", len(vals)) // exempt: early-return branch is cold
	}
	w.buf = append(w.buf[:0], 1, 2, 3)   // exempt: append feeds its own slice back
	scratch := make([]uint32, len(vals)) // exempt: grow-to-cap make of a slice
	copy(scratch, vals)
	forked := append(w.buf, 4) // want "append result is not assigned back to the slice it grows"
	_ = forked
	meta := map[string]int{"k": 1} // want "map literal allocates on the hot path"
	_ = meta
	idx := make(map[uint32]int, len(vals)) // want "make(map) allocates on the hot path"
	_ = idx
	name := string(w.buf) // want "string<->[]byte conversion copies its operand"
	_ = name
	_ = fmt.Sprintf("batch %d", len(vals)) // want "fmt.Sprintf boxes a int argument"
	sink(vals[0])                          // want "uint32 argument boxes into an interface parameter of sink"
	_ = keep(vals[0])                      // exempt: a type parameter is static dispatch, not boxing
	total := fill(scratch)
	lim := func() int { return total } // exempt: bound to a local, stays on the stack
	_ = lim()
	defer func() { total = 0 }() // exempt: deferred literals do not escape
	go func() {                  // want "escaping closure captures outer variables"
		total++
	}()
	if total < 0 {
		panic(fmt.Sprintf("negative total %d", total)) // exempt: panic branch is cold
	}
	//lint:ignore dut/hotalloc whole-line form: the index is rebuilt deliberately here
	rebuilt := make(map[int]int)
	_ = rebuilt
	spare := map[int]int{} //lint:ignore dut/hotalloc trailing form: scratch map for the fixture only
	_ = spare
	_ = newWorker()
	return nil
}

// fill is reached transitively from the root, so its allocations are hot
// too and carry the root's name.
func fill(xs []uint32) int {
	seen := make(map[uint32]bool, len(xs)) // want "make(map) allocates on the hot path (reachable from RunScratch)"
	for _, x := range xs {
		seen[x] = true
	}
	return len(seen)
}

// sink's interface parameter boxes concrete arguments at the call site.
func sink(v any) { _ = v }

// keep is generic: instantiation is static dispatch, never boxing.
func keep[T any](x T) T { return x }

// newWorker is construction; the coldpath boundary keeps its allocations
// out of hot reach.
//
//dut:coldpath once-per-session construction, amortized across the run
func newWorker() *worker {
	labels := map[string]int{"fresh": 1} // exempt: behind the coldpath boundary
	_ = labels
	return &worker{buf: make([]byte, 0, 64)}
}

// orphan is reachable from no root, so its allocations are not hot.
func orphan() map[int]int {
	m := map[int]int{1: 1} // exempt: unreachable from any //dut:hotpath root
	return m
}
