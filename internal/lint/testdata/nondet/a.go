// Package fixture exercises dut/nondeterminism under a deterministic
// package path.
package fixture

import (
	"math/rand/v2"
	"time"
)

func bad(m map[int]int) {
	_ = time.Now()                   // want "wall-clock read (time.Now)"
	_ = time.Since(time.Time{})      // want "wall-clock read (time.Since)"
	_ = rand.Uint64()                // want "global math/rand generator (rand.Uint64)"
	r := rand.New(rand.NewPCG(1, 2)) // want "ad-hoc rand generator (rand.New)" "ad-hoc rand generator (rand.NewPCG)"
	_ = r.Uint64()
	for k := range m { // want "map iteration order is nondeterministic"
		_ = k
	}
}

func good(m map[int]int, r *rand.Rand) []int {
	_ = r.Uint64() // drawing from an injected generator is fine
	keys := make([]int, 0, len(m))
	for k := range m { // key collection feeding a sort: clean
		keys = append(keys, k)
	}
	return keys
}
