// Package fixture exercises dut/goroleak: every go statement must carry
// a provable join — a WaitGroup.Done, a channel send or close, or a
// ctx-done select — and spawns the analyzer cannot resolve are flagged
// for an explicit justification.
package fixture

import (
	"context"
	"sync"
	"time"
)

type server struct {
	wg sync.WaitGroup
}

func (s *server) spawnAll(ctx context.Context, done chan struct{}, out chan int) {
	s.wg.Add(1)
	go func() { // joined: WaitGroup.Done
		defer s.wg.Done()
		work()
	}()
	go func() { // joined: close signals completion
		defer close(done)
		work()
	}()
	go func() { // joined: channel send
		out <- 1
	}()
	go func() { // joined: blocks on ctx-done select
		select {
		case <-ctx.Done():
		case v := <-out:
			_ = v
		}
	}()
	go s.drain(out) // joined: the named body closes its channel
	go work()       // want "goroutine work has no provable join"
	go func() {     // want "goroutine body has no provable join"
		work()
	}()
	go time.Sleep(0) // want "whose body is outside the analyzed program"
}

// spawnValue launches a function value; the analyzer cannot see its body.
func spawnValue(fn func()) {
	go fn() // want "function value the analyzer cannot resolve"
}

// drain is a named spawn target whose body proves its own join.
func (s *server) drain(out chan int) {
	for range out {
	}
	close(out)
}

func work() {}
