// Package fixture exercises dut/scratchalias.
package fixture

type sampler struct{}

type rng struct{}

// SampleInto is the fixture stand-in for dist.SampleInto; its dst
// parameter is scratch from the start of the body.
func SampleInto(s sampler, dst []int, r *rng) {
	_ = append(dst, 0) // want "append on scratch buffer dst"
}

type owner struct {
	buf  []int
	keep []int
}

func (o *owner) bad(s sampler, r *rng) []int {
	SampleInto(s, o.buf, r)
	o.keep = o.buf       // want "storing scratch buffer buf into a field"
	_ = append(o.buf, 1) // want "append on scratch buffer buf"
	return o.buf         // want "returning scratch buffer buf"
}

func goodLocal(s sampler, r *rng) []int {
	out := make([]int, 8)
	SampleInto(s, out, r)
	return out // locally allocated, owned by this function: clean
}

func goodUse(s sampler, buf []int, r *rng) int {
	SampleInto(s, buf, r)
	total := 0
	for _, v := range buf { // reading the lent buffer is fine
		total += v
	}
	return total
}
