package fixture

import "time"

func StartStopwatch() time.Time {
	return time.Now() // clock.go is the blessed wall-clock file: clean
}
