// Package fixture exercises the engine blessing rules of
// dut/nondeterminism: blessed constructor names may build generators,
// anything else in the same file may not.
package fixture

import "math/rand/v2"

func NodeRNG(shared uint64, player int) *rand.Rand {
	return rand.New(rand.NewPCG(shared, uint64(player))) // blessed constructor: clean
}

func helper(shared uint64) *rand.Rand {
	return rand.New(rand.NewPCG(shared, 1)) // want "ad-hoc rand generator (rand.New)" "ad-hoc rand generator (rand.NewPCG)"
}
