// Package fixture exercises dut/floateq.
package fixture

func bad(x, y float64) bool {
	if x != y { // want "!= on float operands"
		return false
	}
	return x == 0 // want "== on float operands"
}

func almostEqual(x, y float64) bool {
	return x == y // tolerance helper by name: clean
}

func goodInt(a, b int) bool {
	return a == b // integer comparison: clean
}

func sentinel(x float64) bool {
	//lint:ignore dut/floateq fixture-documented exact comparison
	return x == 0 // suppressed end to end: clean
}
