// The fuzz corpus is read syntactically (test files sit outside the
// type-checked load): Write*/Append* calls inside a Fuzz function are
// round-trip seeds, raw f.Add byte literals are malformed seeds keyed
// by the type byte at header offset 3. FrameFinish deliberately has no
// round-trip seed and FrameBogus no malformed seed.
package fixture

import "testing"

func FuzzFrame(f *testing.F) {
	var buf []byte
	buf = WriteHello(buf)
	buf = WriteRound(buf) // syntactic only: the encoder itself is missing from the package
	buf = WriteVote(buf)
	buf = WriteVerdict(buf)
	buf = WriteBogus(buf)
	buf = WriteSpare(buf)
	f.Add(buf)
	f.Add([]byte{0xD0, 0x7A, 1, 1, 0, 0, 0, 0})
	f.Add([]byte{0xD0, 0x7A, 1, 2, 0, 0, 0, 0})
	f.Add([]byte{0xD0, 0x7A, 1, 3, 0, 0, 0, 0})
	f.Add([]byte{0xD0, 0x7A, 1, 4, 0, 0, 0, 0})
	f.Add([]byte{0xD0, 0x7A, 1, 5, 0, 0, 0, 0})
	f.Add([]byte{0xD0, 0x7A, 1, 7, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) { _ = data })
}
