// Package fixture exercises dut/wireexhaustive: every FrameType
// constant needs an encoder, a validating ReadFrame decoder case, fuzz
// round-trip and malformed-input seeds, and a dut/framediscipline
// writer-set entry. FrameHello is fully covered; each other frame is
// missing exactly one piece.
package fixture

// FrameType tags a wire frame.
type FrameType uint8

const (
	FrameHello   FrameType = 1
	FrameRound   FrameType = 2 // want "has no encoder"
	FrameVote    FrameType = 3 // want "has no ReadFrame decoder case"
	FrameVerdict FrameType = 4 // want "decoder case performs no validation"
	FrameFinish  FrameType = 5 // want "no FuzzFrame round-trip seed"
	FrameBogus   FrameType = 6 // want "missing from the dut/framediscipline writer set" "no malformed-input fuzz seed"
	FrameSpare   FrameType = 7 //lint:ignore dut/wireexhaustive fixture: the spare frame is decoder-only by design
)

func WriteHello(buf []byte) []byte   { return append(buf, byte(FrameHello)) }
func WriteVote(buf []byte) []byte    { return append(buf, byte(FrameVote)) }
func WriteVerdict(buf []byte) []byte { return append(buf, byte(FrameVerdict)) }
func WriteFinish(buf []byte) []byte  { return append(buf, byte(FrameFinish)) }
func WriteBogus(buf []byte) []byte   { return append(buf, byte(FrameBogus)) }

// ReadFrame decodes one frame; every covered case must validate.
func ReadFrame(t FrameType, payload []byte) error {
	switch t {
	case FrameHello:
		return checkHello(payload)
	case FrameRound:
		return checkRound(payload)
	case FrameVerdict:
		return nil // no validation: flagged at the constant
	case FrameFinish:
		return checkFinish(payload)
	case FrameBogus:
		return checkBogus(payload)
	case FrameSpare:
		return checkSpare(payload)
	}
	return nil
}

func checkHello(p []byte) error  { _ = p; return nil }
func checkRound(p []byte) error  { _ = p; return nil }
func checkFinish(p []byte) error { _ = p; return nil }
func checkBogus(p []byte) error  { _ = p; return nil }
func checkSpare(p []byte) error  { _ = p; return nil }
