// Package fixture exercises the rng.go exemption of dut/seedpurity: the
// derivation home may do seed arithmetic.
package fixture

func FarSeed(seed uint64) uint64 {
	return seed ^ 0x517cc1b727220a95 // derivation home: clean
}
