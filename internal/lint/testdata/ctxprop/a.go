// Package fixture exercises dut/ctxprop.
package fixture

import "context"

func bad(ctx context.Context, ch chan int) {
	go func() { // want "goroutine ignores the trial context"
		ch <- 1
	}()
	for { // want "unconditional loop ignores the trial context"
		if len(ch) > 0 {
			return
		}
	}
}

func good(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case ch <- 1:
		}
	}()
	for {
		if ctx.Err() != nil { // consults the context: clean
			return
		}
	}
}

func goodCancel(ctx context.Context, ch chan int) {
	_, cancel := context.WithCancel(ctx)
	go func() { // references the CancelFunc: clean
		defer cancel()
		ch <- 1
	}()
}

func noCtx(ch chan int) {
	go func() { ch <- 1 }() // no context parameter to propagate: clean
}
