// Package fixture exercises dut/seedpurity.
package fixture

func bad(seed uint64, trial int) uint64 {
	mixed := seed ^ 0x9e3779b97f4a7c15 // want "ad-hoc seed arithmetic (^)"
	seed += uint64(trial)              // want "ad-hoc seed arithmetic (+=)"
	return mixed
}

func good(seed uint64, trial int) uint64 {
	return derive(seed, uint64(trial)) // routing through a helper: clean
}

func derive(a, b uint64) uint64 {
	return a ^ b // operands carry no seed name: clean
}
