// Package fixture exercises suppression interplay across the v2 rules:
// trailing directives bind to their own line, stacked whole-line
// directives for different rules reach the same statement, malformed
// directives escalate to dut/ignore instead of silently suppressing,
// and a blank line between directive and statement is an error.
package fixture

import "sync"

type pool struct {
	wg sync.WaitGroup
}

//dut:hotpath
func (p *pool) Run(n int) {
	go p.work() //lint:ignore dut/goroleak trailing form: the pool is torn down with the process in this fixture

	//lint:ignore dut/goroleak stacked form: reaches past the next directive to the go statement
	//lint:ignore dut/hotalloc stacked form: the capture is deliberate, one closure per run
	go func() { p.consume(n) }()
}

// work has no join signal; the trailing directive above covers its spawn.
func (p *pool) work() {}

func (p *pool) consume(n int) { _ = n }

//lint:ignore dut/nosuchrule bogus // want "names unknown rule"
func unknownRuleTarget() {}

//lint:ignore dut/goroleak separated on purpose // want "separated from its statement by a blank line"

func separatedTarget() {}
