// Package fixture exercises dut/framediscipline.
package fixture

import (
	"encoding/binary"
	"io"
	"net"
	"time"
)

type frame struct{}

func setDeadline(c net.Conn, d time.Duration)          {}
func setWriteDeadline(c net.Conn, d time.Duration)     {}
func ReadFrame(c net.Conn) (frame, error)              { return frame{}, nil }
func WriteVote(c net.Conn, v uint64) error             { return nil }
func WriteVoteBatch(c net.Conn, bits []uint64) error   { return nil }
func WriteAggSum(c net.Conn, sums []uint64) error      { return nil }
func WriteAggHello(c net.Conn, members []uint32) error { return nil }
func SampleInto(buf []int)                             {}

func badRaw(c net.Conn, w io.Writer, p []byte) {
	_, _ = c.Write(p)                                // want "raw conn.Write bypasses the validated frame encoder"
	_, _ = c.Read(p)                                 // want "raw conn.Read bypasses the validated frame encoder"
	_ = binary.Write(w, binary.BigEndian, uint64(0)) // want "binary.Write writes an unframed stream"
}

func badRead(c net.Conn) {
	_, _ = ReadFrame(c) // want "frame read without a deadline"
}

func badStale(c net.Conn, buf []int) {
	setDeadline(c, time.Second)
	SampleInto(buf)
	_ = WriteVote(c, 1) // want "frame write under a deadline already consumed"
}

func badStaleBatch(c net.Conn, buf []int, bits []uint64) {
	setWriteDeadline(c, time.Second)
	SampleInto(buf)
	_ = WriteVoteBatch(c, bits) // want "frame write under a deadline already consumed"
}

func badStaleAgg(c net.Conn, buf []int, sums []uint64) {
	setWriteDeadline(c, time.Second)
	SampleInto(buf)
	_ = WriteAggSum(c, sums) // want "frame write under a deadline already consumed"
}

func goodAgg(c net.Conn, members []uint32, sums []uint64) error {
	setWriteDeadline(c, time.Second)
	if err := WriteAggHello(c, members); err != nil {
		return err
	}
	setWriteDeadline(c, time.Second) // fresh budget per frame: clean
	return WriteAggSum(c, sums)
}

func goodBatch(c net.Conn, buf []int, bits []uint64) error {
	SampleInto(buf)
	setWriteDeadline(c, time.Second) // fresh write budget after sampling: clean
	return WriteVoteBatch(c, bits)
}

func good(c net.Conn, buf []int) error {
	setDeadline(c, time.Second)
	if _, err := ReadFrame(c); err != nil {
		return err
	}
	SampleInto(buf)
	setDeadline(c, time.Second) // refreshed after sampling: clean
	return WriteVote(c, 1)
}

type wrapConn struct{ net.Conn }

func (w *wrapConn) Write(p []byte) (int, error) {
	return w.Conn.Write(p) // Write wrapper method: clean
}
