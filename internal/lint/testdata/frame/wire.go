package fixture

import "net"

func writeFrame(c net.Conn, p []byte) error {
	_, err := c.Write(p) // the encoder file owns the raw write: clean
	return err
}
