// Package fixture exercises dut/atomicdiscipline: a field touched via
// sync/atomic anywhere must never be accessed plainly, and a struct
// carrying a blank padding field must stay a whole number of 64-byte
// cache lines.
package fixture

import "sync/atomic"

type counter struct {
	n uint64
}

func (c *counter) bump() {
	atomic.AddUint64(&c.n, 1) // blessed: the touch that poisons plain access
}

func (c *counter) load() uint64 {
	return atomic.LoadUint64(&c.n) // blessed: atomic read
}

func (c *counter) racyRead() uint64 {
	return c.n // want "n is accessed via sync/atomic"
}

func (c *counter) racyWrite() {
	c.n = 0 // want "n is accessed via sync/atomic"
}

func (c *counter) auditedRead() uint64 {
	return c.n //lint:ignore dut/atomicdiscipline fixture: reader runs strictly after the joining Wait, no concurrent writer
}

// padSlot is the workerErrs pattern: the pad pushes each slot onto its
// own cache lines, 16 bytes of error interface + 48 pad = 64.
type padSlot struct {
	err error
	_   [48]byte
}

// skewSlot's pad no longer reaches a line boundary: 8 + 40 = 48 bytes.
type skewSlot struct { // want "not a multiple of the 64-byte cache line"
	val uint64
	_   [40]byte
}

var _ = padSlot{}
var _ = skewSlot{}
