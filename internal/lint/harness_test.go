package lint

// The fixture harness is an analysistest in miniature: each directory
// under testdata/ is a package compiled against real stdlib export data,
// annotated with `// want "substring"` comments on the lines where an
// analyzer must report. The harness runs one analyzer per fixture via
// RunPackage (so //lint:ignore directives in fixtures are honored end to
// end) and fails on both missed wants and unexpected diagnostics.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// fixtureImports are the stdlib packages fixtures may import; their
// export data (plus transitive deps) is materialized once per test run.
var fixtureImports = []string{
	"context", "encoding/binary", "fmt", "io", "math/rand/v2", "net",
	"sync", "sync/atomic", "time",
}

var (
	stdOnce sync.Once
	stdFset *token.FileSet
	stdImp  types.Importer
	stdErr  error
)

// stdImporter returns a shared FileSet and a gc-export importer able to
// resolve the fixture imports.
func stdImporter(t *testing.T) (*token.FileSet, types.Importer) {
	t.Helper()
	stdOnce.Do(func() {
		pkgs, err := goList(".", fixtureImports)
		if err != nil {
			stdErr = err
			return
		}
		stdFset = token.NewFileSet()
		stdImp = importer.ForCompiler(stdFset, "gc", exportLookup(pkgs))
	})
	if stdErr != nil {
		t.Fatalf("materializing stdlib export data: %v", stdErr)
	}
	return stdFset, stdImp
}

// loadFixture parses and type-checks testdata/<dir> as a package whose
// import path is pkgPath (fixtures use fake paths to steer analyzer
// scoping).
func loadFixture(t *testing.T, dir, pkgPath string) *Package {
	t.Helper()
	fset, imp := stdImporter(t)
	full := filepath.Join("testdata", dir)
	names, err := filepath.Glob(filepath.Join(full, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("fixture %s: %v (files %v)", dir, err, names)
	}
	sort.Strings(names)
	var files []*ast.File
	srcs := map[string][]byte{}
	for _, name := range names {
		// Like the real loader, test files stay outside the type-checked
		// package; dut/wireexhaustive reads them syntactically from Dir.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", name, err)
		}
		files = append(files, f)
		srcs[name] = src
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return &Package{
		Path:  pkgPath,
		Dir:   full,
		Fset:  fset,
		Files: files,
		Srcs:  srcs,
		Types: tpkg,
		Info:  info,
	}
}

// wantRe extracts the quoted substrings of a `// want "a" "b"` comment.
var wantRe = regexp.MustCompile(`"([^"]*)"`)

// fixtureWants collects the expected-diagnostic annotations, keyed by
// file:line.
func fixtureWants(pkg *Package) map[string][]string {
	wants := map[string][]string{}
	for name, src := range pkg.Srcs {
		for i, line := range strings.Split(string(src), "\n") {
			_, after, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			key := fmt.Sprintf("%s:%d", name, i+1)
			for _, m := range wantRe.FindAllStringSubmatch(after, -1) {
				wants[key] = append(wants[key], m[1])
			}
		}
	}
	return wants
}

// checkFixture runs the analyzers over the fixture and matches the
// diagnostics against the want annotations.
func checkFixture(t *testing.T, pkg *Package, analyzers ...*Analyzer) {
	t.Helper()
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][]string{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		got[key] = append(got[key], d.Message)
	}
	wants := fixtureWants(pkg)
	for key, subs := range wants {
		msgs := append([]string(nil), got[key]...)
		// Match longest wants first so "(rand.New)" cannot steal the
		// diagnostic meant for "(rand.NewPCG)".
		sort.Slice(subs, func(i, j int) bool { return len(subs[i]) > len(subs[j]) })
		for _, sub := range subs {
			found := -1
			for i, msg := range msgs {
				if strings.Contains(msg, sub) {
					found = i
					break
				}
			}
			if found < 0 {
				t.Errorf("%s: missing diagnostic containing %q (got %v)", key, sub, got[key])
				continue
			}
			msgs = append(msgs[:found], msgs[found+1:]...)
		}
		for _, msg := range msgs {
			t.Errorf("%s: unexpected extra diagnostic %q", key, msg)
		}
	}
	for key, msgs := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostic %q", key, msgs)
		}
	}
}

func TestAnalyzersOnFixtures(t *testing.T) {
	tests := []struct {
		name     string
		dir      string
		pkgPath  string
		analyzer *Analyzer
	}{
		{"nondeterminism", "nondet", "example.com/internal/core/fixture", AnalyzerNondeterminism},
		{"nondeterminism-engine-blessing", "nondet_engine", "example.com/internal/engine", AnalyzerNondeterminism},
		{"scratchalias", "scratch", "example.com/internal/dist/fixture", AnalyzerScratchAlias},
		{"floateq", "floateq", "example.com/internal/stats/fixture", AnalyzerFloatEq},
		{"framediscipline", "frame", "example.com/internal/network/fixture", AnalyzerFrameDiscipline},
		{"ctxprop", "ctxprop", "example.com/internal/engine/fixture", AnalyzerCtxProp},
		{"seedpurity", "seed", "example.com/internal/core/fixture", AnalyzerSeedPurity},
		{"seedpurity-engine-exemption", "seed_engine", "example.com/internal/engine", AnalyzerSeedPurity},
		{"hotalloc", "hotalloc", "example.com/internal/network/fixture", AnalyzerHotAlloc},
		{"goroleak", "goroleak", "example.com/internal/network/fixture", AnalyzerGoroLeak},
		{"atomicdiscipline", "atomicdiscipline", "example.com/internal/core/fixture", AnalyzerAtomicDiscipline},
		{"wireexhaustive", "wireexhaustive", "example.com/internal/network/fixture", AnalyzerWireExhaustive},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			checkFixture(t, loadFixture(t, tc.dir, tc.pkgPath), tc.analyzer)
		})
	}
}

// TestAnalyzerScoping verifies that a package outside an analyzer's scope
// produces no findings even when the code would violate the rule.
func TestAnalyzerScoping(t *testing.T) {
	tests := []struct {
		name     string
		dir      string
		analyzer *Analyzer
	}{
		{"floateq", "floateq", AnalyzerFloatEq},
		{"goroleak", "goroleak", AnalyzerGoroLeak},
		{"wireexhaustive", "wireexhaustive", AnalyzerWireExhaustive},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadFixture(t, tc.dir, "example.com/cmd/tool")
			diags, err := RunPackage(pkg, []*Analyzer{tc.analyzer})
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) != 0 {
				t.Errorf("out-of-scope package produced %d findings: %v", len(diags), diags)
			}
		})
	}
}

// TestSuppressionInterplay runs two rules together over one fixture:
// trailing and stacked //lint:ignore forms suppress their targets, while
// malformed directives (unknown rule, blank-line separation) escalate to
// dut/ignore instead of suppressing anything.
func TestSuppressionInterplay(t *testing.T) {
	pkg := loadFixture(t, "interplay", "example.com/internal/network/fixture")
	checkFixture(t, pkg, AnalyzerHotAlloc, AnalyzerGoroLeak)

	// The same run, unfiltered: the suppressed findings must still exist,
	// marked, for structured output.
	all, err := RunPackageAll(NewProgram(pkg), pkg, []*Analyzer{AnalyzerHotAlloc, AnalyzerGoroLeak})
	if err != nil {
		t.Fatal(err)
	}
	suppressedByRule := map[string]int{}
	for _, d := range all {
		if d.Suppressed {
			suppressedByRule[d.Rule]++
		}
	}
	if suppressedByRule["dut/goroleak"] != 2 || suppressedByRule["dut/hotalloc"] != 1 {
		t.Errorf("suppressed counts = %v, want dut/goroleak:2 dut/hotalloc:1", suppressedByRule)
	}
}
