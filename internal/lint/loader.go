package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked target package.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in GoFiles order.
	Files []*ast.File
	// Srcs maps each file's absolute path to its source bytes (used by
	// the suppression parser to detect trailing directives).
	Srcs map[string][]byte
	// Types and Info are the type-checker's output.
	Types *types.Package
	Info  *types.Info

	// GoFiles, TestGoFiles and IgnoredGoFiles echo `go list`'s file
	// classification (basenames): IgnoredGoFiles holds sources excluded
	// by build constraints, so callers can verify tag handling.
	GoFiles        []string
	TestGoFiles    []string
	IgnoredGoFiles []string
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath     string
	Dir            string
	Export         string
	GoFiles        []string
	TestGoFiles    []string
	XTestGoFiles   []string
	IgnoredGoFiles []string
	Standard       bool
	DepOnly        bool
	Incomplete     bool
	Error          *struct{ Err string }
}

// goList runs `go list -export -json -deps` for the patterns in dir and
// decodes the package stream. -export makes the go tool materialize
// export data for every listed package in the build cache, which the
// stdlib gc importer can read back — type-checking without any
// golang.org/x/tools dependency.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ModuleRoot locates the enclosing module's directory for dir ("" means
// the current directory).
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: go list -m: %w", err)
	}
	root := strings.TrimSpace(string(out))
	if root == "" {
		return "", fmt.Errorf("lint: no module found from %q", dir)
	}
	return root, nil
}

// exportLookup builds the import-path → export-data resolver used by the
// gc importer.
func exportLookup(pkgs []listPackage) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// Load discovers the packages matching the patterns from dir (module
// root; "" means the current directory), parses their non-test sources,
// and type-checks them against the export data of their dependencies.
// Only packages named by the patterns are returned; dependencies are
// used for importing alone.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	lookup := exportLookup(listed)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// typeCheck parses and checks one listed package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, lp listPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	srcs := make(map[string][]byte, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		full := filepath.Join(lp.Dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", full, err)
		}
		files = append(files, f)
		srcs[full] = src
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:           lp.ImportPath,
		Dir:            lp.Dir,
		Fset:           fset,
		Files:          files,
		Srcs:           srcs,
		Types:          tpkg,
		Info:           info,
		GoFiles:        lp.GoFiles,
		TestGoFiles:    append(append([]string(nil), lp.TestGoFiles...), lp.XTestGoFiles...),
		IgnoredGoFiles: lp.IgnoredGoFiles,
	}, nil
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
