package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotpathMarker introduces a hot-path root declaration. Like //go:build
// and //lint:ignore, the marker admits no space after the slashes; an
// optional trailing description is allowed ("//dut:hotpath L1 reduce").
const hotpathMarker = "dut:hotpath"

// coldpathMarker declares the opposite boundary: a function whose body
// is once-per-session setup or failure teardown, amortized across every
// operation the session serves. Hot-path reachability stops at a
// coldpath function — it is neither checked nor descended into — so the
// marker must carry a written justification, reviewed like a
// //lint:ignore reason.
const coldpathMarker = "dut:coldpath"

// funcNode is one function in the program call graph. Function literals
// have no node of their own: their calls are attributed to the enclosing
// declaration, so reachability follows closures and goroutine bodies.
type funcNode struct {
	// fn is the canonical object; its FullName is the node key.
	fn *types.Func
	// decl/file/pkg locate the body for analyzers walking hot functions.
	decl *ast.FuncDecl
	file *ast.File
	pkg  *Package
	// hot marks a declared //dut:hotpath root.
	hot bool
	// cold marks a declared //dut:coldpath boundary: reachability does
	// not enter the function, so nothing below it is hot-checked.
	cold bool
	// callees holds the FullName keys of every statically-resolved call
	// in the body, deduplicated, in stable order.
	callees []string
}

// pkgGraph is the cached call-graph fragment of one package.
type pkgGraph struct {
	// nodes is keyed by types.Func.FullName.
	nodes map[string]*funcNode
}

// Program is the shared analysis state of one dutlint run: every loaded
// package plus lazily-built, per-package-cached call-graph fragments and
// the derived cross-package reachability. One Program is built per run
// and handed to every analyzer through the Pass, so the graph is
// constructed once, not once per rule.
type Program struct {
	pkgs  map[string]*Package
	order []string // registration order, for deterministic iteration

	frags map[string]*pkgGraph

	// Derived caches, dropped whenever any fragment is invalidated.
	hotFrom map[string]string // node key -> sample hot root short name
	atomics map[types.Object]token.Position
}

// NewProgram registers the packages of one run. Fragments are built on
// first use and cached per package.
func NewProgram(pkgs ...*Package) *Program {
	p := &Program{
		pkgs:  make(map[string]*Package, len(pkgs)),
		frags: make(map[string]*pkgGraph, len(pkgs)),
	}
	for _, pkg := range pkgs {
		p.AddPackage(pkg)
	}
	return p
}

// AddPackage registers (or replaces) one package, invalidating any
// cached fragment for its path.
func (p *Program) AddPackage(pkg *Package) {
	if _, ok := p.pkgs[pkg.Path]; !ok {
		p.order = append(p.order, pkg.Path)
	}
	p.pkgs[pkg.Path] = pkg
	p.Invalidate(pkg.Path)
}

// Invalidate drops the cached fragment of one package path (and every
// derived cross-package cache) without touching other fragments, so an
// incremental caller re-pays graph construction only for the package
// that changed.
func (p *Program) Invalidate(path string) {
	delete(p.frags, path)
	p.hotFrom = nil
	p.atomics = nil
}

// fragment returns the package's call-graph fragment, building it on
// first use.
func (p *Program) fragment(pkg *Package) *pkgGraph {
	if g, ok := p.frags[pkg.Path]; ok {
		return g
	}
	g := &pkgGraph{nodes: map[string]*funcNode{}}
	for _, f := range pkg.Files {
		for _, fd := range funcDecls(f) {
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &funcNode{
				fn:   fn,
				decl: fd,
				file: f,
				pkg:  pkg,
				hot:  hasDocMarker(fd, hotpathMarker),
				cold: hasDocMarker(fd, coldpathMarker),
			}
			seen := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(pkg.Info, call); callee != nil {
					if key := callee.FullName(); !seen[key] {
						seen[key] = true
						node.callees = append(node.callees, key)
					}
				}
				return true
			})
			sort.Strings(node.callees)
			g.nodes[fn.FullName()] = node
		}
	}
	p.frags[pkg.Path] = g
	return g
}

// node resolves a FullName key to its funcNode across every registered
// package (nil when the function has no source here, e.g. stdlib).
func (p *Program) node(key string) *funcNode {
	for _, path := range p.order {
		if n, ok := p.fragment(p.pkgs[path]).nodes[key]; ok {
			return n
		}
	}
	return nil
}

// hotReachable returns the set of functions reachable from //dut:hotpath
// roots, mapping each node key to the short name of one root it is
// reachable from (for diagnostics). The result is cached until a
// fragment is invalidated.
func (p *Program) hotReachable() map[string]string {
	if p.hotFrom != nil {
		return p.hotFrom
	}
	reach := map[string]string{}
	var queue []string
	for _, path := range p.order {
		g := p.fragment(p.pkgs[path])
		keys := make([]string, 0, len(g.nodes))
		for key := range g.nodes {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if n := g.nodes[key]; n.hot {
				reach[key] = n.fn.Name()
				queue = append(queue, key)
			}
		}
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		n := p.node(key)
		if n == nil {
			continue
		}
		for _, callee := range n.callees {
			if _, ok := reach[callee]; ok {
				continue
			}
			cn := p.node(callee)
			if cn == nil {
				continue // no source: boxing/alloc checks happen at the call site
			}
			if cn.cold {
				continue // declared //dut:coldpath boundary: setup/teardown, amortized
			}
			reach[callee] = reach[key]
			queue = append(queue, callee)
		}
	}
	p.hotFrom = reach
	return reach
}

// hasDocMarker reports whether the declaration's doc comment carries the
// given //dut:* marker line.
func hasDocMarker(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text, ok := strings.CutPrefix(c.Text, "//")
		if !ok {
			continue
		}
		rest, ok := strings.CutPrefix(text, marker)
		if !ok {
			continue
		}
		if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
			return true
		}
	}
	return false
}

// atomicTouched returns every variable or field whose address is passed
// to a sync/atomic operation anywhere in the program, keyed by object
// with the position of one such touch. Cached until invalidation.
func (p *Program) atomicTouched() map[types.Object]token.Position {
	if p.atomics != nil {
		return p.atomics
	}
	touched := map[types.Object]token.Position{}
	for _, path := range p.order {
		pkg := p.pkgs[path]
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					return true
				}
				if obj := exprObj(pkg.Info, unary.X); obj != nil {
					if _, dup := touched[obj]; !dup {
						touched[obj] = pkg.Fset.Position(call.Pos())
					}
				}
				return true
			})
		}
	}
	p.atomics = touched
	return touched
}
