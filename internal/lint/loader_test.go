package lint

import (
	"slices"
	"strings"
	"testing"
)

// TestLoadBuildTagClassification verifies the go list -json loader on a
// package with a build-tagged file pair: internal/engine ships
// race_disabled_test.go (//go:build !race) and race_enabled_test.go
// (//go:build race). The loader shells out to `go list` without -race,
// so the classification is deterministic: the !race file is an active
// test file, the race file is constraint-ignored.
func TestLoadBuildTagClassification(t *testing.T) {
	root, err := ModuleRoot("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if !strings.HasSuffix(pkg.Path, "internal/engine") {
		t.Errorf("path = %q, want suffix internal/engine", pkg.Path)
	}
	if !slices.Contains(pkg.TestGoFiles, "race_disabled_test.go") {
		t.Errorf("TestGoFiles = %v, want race_disabled_test.go present", pkg.TestGoFiles)
	}
	if !slices.Contains(pkg.IgnoredGoFiles, "race_enabled_test.go") {
		t.Errorf("IgnoredGoFiles = %v, want race_enabled_test.go present", pkg.IgnoredGoFiles)
	}
	if slices.Contains(pkg.GoFiles, "race_disabled_test.go") || slices.Contains(pkg.GoFiles, "race_enabled_test.go") {
		t.Errorf("GoFiles = %v, must not contain test files", pkg.GoFiles)
	}
	if len(pkg.Files) != len(pkg.GoFiles) {
		t.Errorf("parsed %d files for %d GoFiles", len(pkg.Files), len(pkg.GoFiles))
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("SharedSeed") == nil {
		t.Error("type-checked package is missing engine.SharedSeed")
	}
}

// TestEngineStaysLintClean runs every analyzer over the real
// internal/engine package — a canary that the tree keeps its own
// contracts (the full sweep is `make lint`).
func TestEngineStaysLintClean(t *testing.T) {
	root, err := ModuleRoot("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}
