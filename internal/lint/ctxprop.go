package lint

import (
	"go/ast"
)

// AnalyzerCtxProp enforces context propagation in the driver paths
// (internal/engine, internal/network): inside a function that receives a
// context.Context, any goroutine spawned and any unconditional blocking
// loop must reference the context (or a CancelFunc derived from it).
// A goroutine that ignores the trial context outlives cancelled trials,
// leaks across --timeout aborts, and can publish results into a trial
// that already moved on.
var AnalyzerCtxProp = &Analyzer{
	Name: "dut/ctxprop",
	Doc:  "goroutines and unconditional loops that ignore the trial context in driver paths",
	Run:  runCtxProp,
}

func runCtxProp(p *Pass) error {
	if !p.InScope(ctxScope...) {
		return nil
	}
	for _, f := range p.Files {
		for _, fd := range funcDecls(f) {
			if !p.hasContextParam(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.GoStmt:
					if !p.referencesContext(node) {
						p.Reportf(node.Pos(),
							"goroutine ignores the trial context; plumb ctx (or its CancelFunc) so cancellation stops it")
					}
				case *ast.ForStmt:
					// An unconditional for {} that never consults the context
					// cannot be cancelled.
					if node.Cond == nil && !p.referencesContext(node) {
						p.Reportf(node.Pos(),
							"unconditional loop ignores the trial context; select on ctx.Done() or check ctx.Err()")
					}
				}
				return true
			})
		}
	}
	return nil
}

// hasContextParam reports whether fd takes a context.Context parameter.
func (p *Pass) hasContextParam(fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(p.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// referencesContext reports whether any identifier in the subtree is of
// type context.Context or context.CancelFunc.
func (p *Pass) referencesContext(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if obj != nil && isContextType(obj.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}
