package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerNondeterminism enforces the seeded-stream contract: inside the
// deterministic packages every verdict-affecting computation must be a
// pure function of the engine seed. It flags wall-clock reads (time.Now /
// time.Since outside engine's clock.go), the global math/rand generators,
// ad-hoc rand generator construction outside the blessed engine
// derivations, and map iteration (whose order is randomized per run).
var AnalyzerNondeterminism = &Analyzer{
	Name: "dut/nondeterminism",
	Doc:  "wall-clock, global/ad-hoc rand, and map-order dependence in deterministic packages",
	Run:  runNondeterminism,
}

// blessedRNGConstructors are the engine functions allowed to call
// rand.New / rand.NewPCG: the canonical (seed, trial, player) stream
// derivations of internal/engine/rng.go.
var blessedRNGConstructors = map[string]bool{
	"NodeRNG":        true,
	"TrialRNG":       true,
	"PlayerRNG":      true,
	"NewReusableRNG": true,
}

// randConstructors are the math/rand(/v2) package functions that build
// generator state rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewSource":  true,
	"NewZipf":    true,
}

// blessedClockFiles may read the wall clock: engine's Stopwatch helper,
// the single sanctioned timing primitive for RoundResult.Wall accounting.
var blessedClockFiles = map[string]bool{"clock.go": true}

func runNondeterminism(p *Pass) error {
	if !p.InScope(deterministicScope...) {
		return nil
	}
	engine := pathIn(p.PkgPath, "internal/engine")
	for _, f := range p.Files {
		for _, fd := range funcDecls(f) {
			blessed := engine && fd.Recv == nil && blessedRNGConstructors[fd.Name.Name]
			ast.Inspect(fd, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.CallExpr:
					p.checkNondetCall(node, blessed)
				case *ast.RangeStmt:
					p.checkMapRange(node)
				}
				return true
			})
		}
	}
	return nil
}

// checkNondetCall flags time.Now/Since and math/rand usage.
func (p *Pass) checkNondetCall(call *ast.CallExpr, inBlessedConstructor bool) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch pkg {
	case "time":
		if (name == "Now" || name == "Since") && !blessedClockFiles[p.fileBase(call.Pos())] {
			p.Reportf(call.Pos(),
				"wall-clock read (time.%s) in a deterministic package; route timing through engine.Stopwatch or suppress with a reason", name)
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods on rand types (e.g. PCG.Seed) are fine
		}
		if randConstructors[name] {
			if !inBlessedConstructor {
				p.Reportf(call.Pos(),
					"ad-hoc rand generator (rand.%s) outside the blessed engine derivations; use engine.NodeRNG/TrialRNG/ReusableRNG", name)
			}
			return
		}
		p.Reportf(call.Pos(),
			"global math/rand generator (rand.%s) is not seed-derived; draw from an engine stream instead", name)
	}
}

// checkMapRange flags ranging over a map value, except for the
// key-collection idiom that feeds a sort.
func (p *Pass) checkMapRange(r *ast.RangeStmt) {
	t := p.Info.TypeOf(r.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if isKeyCollection(r) {
		return
	}
	p.Reportf(r.Pos(),
		"map iteration order is nondeterministic; iterate a sorted or structurally ordered key set")
}

// isKeyCollection recognizes the order-insensitive canonical fix for map
// iteration: a key-only range whose body is exactly `keys = append(keys,
// k)`, collecting the keys for a subsequent sort.
func isKeyCollection(r *ast.RangeStmt) bool {
	if r.Value != nil || len(r.Body.List) != 1 {
		return false
	}
	assign, ok := r.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}
