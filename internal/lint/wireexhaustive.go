package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/parser"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// AnalyzerWireExhaustive verifies closure of the wire-frame registry: for
// every FrameType constant the package declares, there must be an
// encoder (Write<Name> or Append<Name>), a ReadFrame decoder case with
// validation errors, a FuzzFrame round-trip seed (the fuzz harness
// encodes a valid frame of the type), a malformed-input seed (a raw
// f.Add byte literal carrying the frame's type byte), and a
// dut/framediscipline writer entry — so the next AGG_*-style frame
// family cannot ship half-covered. Test files are not part of the
// type-checked load, so the fuzz seeds are checked syntactically from
// the package directory's *_test.go sources.
var AnalyzerWireExhaustive = &Analyzer{
	Name: "dut/wireexhaustive",
	Doc:  "FrameType without encoder, validating decoder case, fuzz seeds, or framediscipline entry",
	Run:  runWireExhaustive,
}

func runWireExhaustive(p *Pass) error {
	if !p.InScope(frameScope...) {
		return nil
	}
	frames := frameConsts(p.Pkg)
	if len(frames) == 0 {
		return nil
	}

	readFrame := p.findFuncDecl("ReadFrame")
	caseFor, validated := decoderCases(p, readFrame)
	roundTrip, malformed, err := fuzzSeeds(p)
	if err != nil {
		return err
	}

	for _, fr := range frames {
		encoder := ""
		for _, prefix := range []string{"Write", "Append"} {
			if obj := p.Pkg.Scope().Lookup(prefix + fr.base); obj != nil {
				if _, ok := obj.(*types.Func); ok {
					encoder = prefix + fr.base
					break
				}
			}
		}
		if encoder == "" {
			p.Reportf(fr.obj.Pos(), "%s has no encoder: want Write%s or Append%s", fr.name, fr.base, fr.base)
		} else if !frameWriteCalls[encoder] && !frameWriteCalls["Write"+fr.base] {
			p.Reportf(fr.obj.Pos(), "%s encoder %s is missing from the dut/framediscipline writer set (frameWriteCalls)", fr.name, encoder)
		}
		if readFrame != nil {
			if !caseFor[fr.obj] {
				p.Reportf(fr.obj.Pos(), "%s has no ReadFrame decoder case", fr.name)
			} else if !validated[fr.obj] {
				p.Reportf(fr.obj.Pos(), "%s decoder case performs no validation (no error construction or check* call)", fr.name)
			}
		} else {
			p.Reportf(fr.obj.Pos(), "%s is declared but the package has no ReadFrame decoder", fr.name)
		}
		if !roundTrip[fr.base] {
			p.Reportf(fr.obj.Pos(), "%s has no FuzzFrame round-trip seed (no Write%s/Append%s call in a Fuzz function)", fr.name, fr.base, fr.base)
		}
		if !malformed[fr.value] {
			p.Reportf(fr.obj.Pos(), "%s has no malformed-input fuzz seed (no raw f.Add byte literal with type byte %d)", fr.name, fr.value)
		}
	}
	return nil
}

// wireFrame is one FrameType constant of the registry.
type wireFrame struct {
	obj   types.Object
	name  string // constant name, e.g. FrameAggSum
	base  string // encoder suffix, e.g. AggSum
	value uint64 // wire type byte
}

// frameConsts collects the package's FrameType constants in value order.
func frameConsts(pkg *types.Package) []wireFrame {
	var out []wireFrame
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Name() != "FrameType" || named.Obj().Pkg() != pkg {
			continue
		}
		v, ok := constant.Uint64Val(c.Val())
		if !ok {
			continue
		}
		out = append(out, wireFrame{
			obj:   c,
			name:  name,
			base:  strings.TrimPrefix(name, "Frame"),
			value: v,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

// findFuncDecl locates a package-level function declaration by name.
func (p *Pass) findFuncDecl(name string) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, fd := range funcDecls(f) {
			if fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// decoderCases maps each frame constant to whether ReadFrame has a case
// for it and whether that case validates (constructs an error or calls
// a check* helper).
func decoderCases(p *Pass, readFrame *ast.FuncDecl) (caseFor, validated map[types.Object]bool) {
	caseFor = map[types.Object]bool{}
	validated = map[types.Object]bool{}
	if readFrame == nil {
		return caseFor, validated
	}
	ast.Inspect(readFrame.Body, func(n ast.Node) bool {
		clause, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		hasValidation := false
		for _, stmt := range clause.Body {
			ast.Inspect(stmt, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || hasValidation {
					return !hasValidation
				}
				name := calleeName(call)
				if strings.HasPrefix(name, "check") || name == "Errorf" || name == "New" {
					hasValidation = true
				}
				return true
			})
		}
		for _, e := range clause.List {
			obj := exprObj(p.Info, e)
			if obj == nil {
				continue
			}
			caseFor[obj] = true
			if hasValidation {
				validated[obj] = true
			}
		}
		return true
	})
	return caseFor, validated
}

// fuzzSeeds scans the package directory's *_test.go sources (parse-only:
// test files are outside the type-checked load) for the fuzz corpus.
// roundTrip records encoder suffixes called inside Fuzz* functions;
// malformed records the type byte of every raw []byte seed handed to
// f.Add (byte 3 of the frame header).
func fuzzSeeds(p *Pass) (roundTrip map[string]bool, malformed map[uint64]bool, err error) {
	roundTrip = map[string]bool{}
	malformed = map[uint64]bool{}
	pkg, ok := p.Prog.pkgs[p.PkgPath]
	if !ok || pkg.Dir == "" {
		return roundTrip, malformed, nil
	}
	names, err := filepath.Glob(filepath.Join(pkg.Dir, "*_test.go"))
	if err != nil {
		return nil, nil, fmt.Errorf("lint: globbing test files of %s: %w", p.PkgPath, err)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(p.Fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		for _, fd := range funcDecls(f) {
			if !strings.HasPrefix(fd.Name.Name, "Fuzz") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				cn := calleeName(call)
				if rest, ok := strings.CutPrefix(cn, "Write"); ok {
					roundTrip[rest] = true
				} else if rest, ok := strings.CutPrefix(cn, "Append"); ok {
					roundTrip[rest] = true
				}
				if cn == "Add" && len(call.Args) == 1 {
					if b, ok := rawSeedTypeByte(call.Args[0]); ok {
						malformed[b] = true
					}
				}
				return true
			})
		}
	}
	return roundTrip, malformed, nil
}

// rawSeedTypeByte extracts byte 3 — the frame type — of a raw []byte
// composite-literal seed.
func rawSeedTypeByte(e ast.Expr) (uint64, bool) {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok || len(lit.Elts) < 4 {
		return 0, false
	}
	arr, ok := lit.Type.(*ast.ArrayType)
	if !ok {
		return 0, false
	}
	if id, ok := arr.Elt.(*ast.Ident); !ok || id.Name != "byte" {
		return 0, false
	}
	bl, ok := lit.Elts[3].(*ast.BasicLit)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseUint(bl.Value, 0, 8)
	if err != nil {
		return 0, false
	}
	return v, true
}
