package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// EscapeAudit closes the gap between dut/hotalloc's static model and the
// compiler's escape analysis: it parses `go build -gcflags=-m=2` output
// and reports every compiler-detected heap allocation inside a
// hot-reachable function that the analyzer neither flagged nor a
// documented //lint:ignore covers. The analyzer proves the shapes it
// models; the compiler diff proves nothing slipped between them.

// EscapeMiss is one compiler-detected heap escape unaccounted for by the
// analyzer.
type EscapeMiss struct {
	// Pos locates the escape in the analyzed source.
	Pos token.Position
	// Fn names the hot function containing it.
	Fn string
	// Text is the compiler's diagnostic.
	Text string
}

func (m EscapeMiss) String() string {
	return fmt.Sprintf("%s:%d:%d escape in hot %s: %s", m.Pos.Filename, m.Pos.Line, m.Pos.Column, m.Fn, m.Text)
}

// hotRegion is the line extent of one hot-reachable function, with its
// cold (early-return/panic) subranges carved out.
type hotRegion struct {
	file       string
	start, end int
	fn         string
	cold       [][2]int
	// covered marks the function as carrying at least one dut/hotalloc
	// diagnostic or suppression: its allocation profile has been reviewed.
	covered bool
}

// HotPackages returns the import paths of every package containing a
// hot-reachable function, sorted — the package set `go build -gcflags`
// must be pointed at.
func (p *Program) HotPackages() []string {
	reach := p.hotReachable()
	seen := map[string]bool{}
	for _, path := range p.order {
		g := p.fragment(p.pkgs[path])
		for key := range g.nodes {
			if _, hot := reach[key]; hot {
				seen[path] = true
				break
			}
		}
	}
	out := make([]string, 0, len(seen))
	for path := range seen {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// hotRegions computes the hot-function line map. diags are the full
// (suppressed included) diagnostics of a run; directives mark reviewed
// lines the analyzer itself produced nothing for.
func hotRegions(p *Program, diags []Diagnostic) []hotRegion {
	reach := p.hotReachable()
	var regions []hotRegion
	for _, path := range p.order {
		pkg := p.pkgs[path]
		g := p.fragment(pkg)
		known := knownRules(Analyzers())
		// Lines covered by a dut/hotalloc suppression directive in this
		// package, keyed file:line.
		directiveLines := map[string]bool{}
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			for _, d := range parseIgnores(pkg.Fset, f, pkg.Srcs[name], known) {
				if d.Err == "" && d.Rule == AnalyzerHotAlloc.Name {
					directiveLines[fmt.Sprintf("%s:%d", d.File, d.Target)] = true
				}
			}
		}
		diagLines := map[string]bool{}
		for _, d := range diags {
			if d.Rule == AnalyzerHotAlloc.Name {
				diagLines[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)] = true
			}
		}
		for key, node := range g.nodes {
			if _, hot := reach[key]; !hot {
				continue
			}
			start := pkg.Fset.Position(node.decl.Pos())
			end := pkg.Fset.Position(node.decl.End())
			r := hotRegion{file: start.Filename, start: start.Line, end: end.Line, fn: node.fn.Name()}
			for _, cr := range newColdBlocks(node.decl.Body).ranges {
				r.cold = append(r.cold, [2]int{
					pkg.Fset.Position(cr[0]).Line, pkg.Fset.Position(cr[1]).Line,
				})
			}
			for _, gr := range amortizedGrowRanges(node.decl.Body) {
				r.cold = append(r.cold, [2]int{
					pkg.Fset.Position(gr[0]).Line, pkg.Fset.Position(gr[1]).Line,
				})
			}
			for line := r.start; line <= r.end; line++ {
				lk := fmt.Sprintf("%s:%d", r.file, line)
				if diagLines[lk] || directiveLines[lk] {
					r.covered = true
					break
				}
			}
			regions = append(regions, r)
		}
	}
	return regions
}

// amortizedGrowRanges collects the extents of guarded grow blocks: an
// if statement whose condition tests cap, len, or nil and whose body
// assigns a make result. That is the repo's blessed grow-to-cap /
// lazy-init idiom — the allocation runs once (or on capacity growth)
// and the steady state reuses the buffer — so a compiler escape inside
// one is amortized, not a per-call allocation. The carve-out mirrors
// dut/hotalloc's own make([]T, n) exemption.
func amortizedGrowRanges(body *ast.BlockStmt) [][2]token.Pos {
	var ranges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !isGrowGuard(ifs.Cond) {
			return true
		}
		assignsMake := false
		ast.Inspect(ifs.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, rhs := range as.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" {
						assignsMake = true
					}
				}
			}
			return true
		})
		if assignsMake {
			ranges = append(ranges, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return ranges
}

// isGrowGuard reports whether cond is a capacity or initialization
// test: any expression mentioning cap(...) or len(...), or a
// comparison against nil.
func isGrowGuard(cond ast.Expr) bool {
	guard := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				guard = true
			}
		case *ast.Ident:
			if e.Name == "nil" {
				guard = true
			}
		}
		return true
	})
	return guard
}

// escapeMarkers are the -m=2 messages that mean "a heap allocation
// happens here". Leaking-param notes attribute the allocation to the
// caller and does-not-escape notes are the good case; both are skipped.
var escapeMarkers = []string{"escapes to heap", "moved to heap"}

// EscapeAudit diffs compiler escape output against the analyzer's view.
// buildOutput is the combined output of `go build -gcflags=-m=2` over
// the hot packages, run from root (relative diagnostic paths are
// resolved against it). diags must be a full RunPackageAll result so
// suppressed findings count as reviewed.
func EscapeAudit(p *Program, diags []Diagnostic, buildOutput, root string) []EscapeMiss {
	regions := hotRegions(p, diags)
	var misses []EscapeMiss
	seen := map[string]bool{} // -m=2 repeats diagnostics per inline context
	for _, line := range strings.Split(buildOutput, "\n") {
		pos, text, ok := parseEscapeLine(line, root)
		if !ok {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
		if seen[key] {
			continue
		}
		seen[key] = true
		marked := false
		for _, m := range escapeMarkers {
			if strings.Contains(text, m) {
				marked = true
				break
			}
		}
		if !marked {
			continue
		}
		for i := range regions {
			r := &regions[i]
			if pos.Filename != r.file || pos.Line < r.start || pos.Line > r.end {
				continue
			}
			cold := false
			for _, cr := range r.cold {
				if pos.Line >= cr[0] && pos.Line <= cr[1] {
					cold = true
					break
				}
			}
			if cold || r.covered {
				break
			}
			misses = append(misses, EscapeMiss{Pos: pos, Fn: r.fn, Text: text})
			break
		}
	}
	sort.Slice(misses, func(i, j int) bool {
		a, b := misses[i], misses[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return misses
}

// parseEscapeLine splits one "path:line:col: message" compiler line,
// resolving relative paths against root.
func parseEscapeLine(line, root string) (token.Position, string, bool) {
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
		return token.Position{}, "", false
	}
	ln, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return token.Position{}, "", false
	}
	name := parts[0]
	if !filepath.IsAbs(name) {
		name = filepath.Join(root, name)
	}
	return token.Position{Filename: name, Line: ln, Column: col}, strings.TrimSpace(parts[3]), true
}
