package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named rule: Run inspects a type-checked package via the
// Pass and reports findings. Analyzers are stateless; the same value is
// reused across packages.
type Analyzer struct {
	// Name is the diagnostic prefix, e.g. "dut/floateq".
	Name string
	// Doc is a one-line description shown by `dutlint -list`.
	Doc string
	// Run inspects one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned for "file:line:col rule: message"
// output.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Rule is the analyzer name that produced it.
	Rule string
	// Message describes the violation.
	Message string
	// Suppressed marks a finding covered by a well-formed //lint:ignore
	// directive. RunPackage drops suppressed findings; RunPackageAll
	// keeps them for structured (-json) output.
	Suppressed bool
}

// String formats the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Pass hands one type-checked package to an analyzer. PkgPath (not
// Pkg.Path(), which tests override) decides rule scoping.
type Pass struct {
	// Analyzer is the rule being run.
	Analyzer *Analyzer
	// Fset positions every node of Files.
	Fset *token.FileSet
	// Files are the package's parsed sources (comments included).
	Files []*ast.File
	// PkgPath is the import path used for scope decisions.
	PkgPath string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's object resolution.
	Info *types.Info
	// Prog is the shared program state (call graph, hot-path
	// reachability) built once per run across every loaded package.
	Prog *Program

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// InScope reports whether the pass's package path lies under one of the
// given path segments (segment-boundary match, e.g. "internal/core").
func (p *Pass) InScope(segments ...string) bool {
	return pathIn(p.PkgPath, segments...)
}

// pathIn matches pkgPath against directory segments at path-component
// boundaries, so "internal/core" never matches "internal/centralized".
func pathIn(pkgPath string, segments ...string) bool {
	padded := "/" + pkgPath + "/"
	for _, s := range segments {
		if strings.Contains(padded, "/"+s+"/") {
			return true
		}
	}
	return false
}

// fileBase returns the basename of the file containing pos.
func (p *Pass) fileBase(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

// Scope sets shared by the analyzers. Paths are matched per pathIn.
var (
	// deterministicScope holds the packages whose behavior must be a pure
	// function of the engine seed.
	deterministicScope = []string{
		"internal/core", "internal/dist", "internal/engine",
		"internal/congest", "internal/network",
	}
	// floatScope holds the numeric packages checked for float equality.
	floatScope = []string{"internal/stats", "internal/lowerbound", "internal/centralized"}
	// frameScope holds the packages that must speak the frame encoder.
	frameScope = []string{"internal/network", "internal/congest"}
	// ctxScope holds the driver packages checked for context propagation.
	ctxScope = []string{"internal/engine", "internal/network"}
)

// Analyzers returns every analyzer in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerNondeterminism,
		AnalyzerScratchAlias,
		AnalyzerFloatEq,
		AnalyzerFrameDiscipline,
		AnalyzerCtxProp,
		AnalyzerSeedPurity,
		AnalyzerHotAlloc,
		AnalyzerAtomicDiscipline,
		AnalyzerGoroLeak,
		AnalyzerWireExhaustive,
	}
}

// knownRules returns the rule-name set accepted by //lint:ignore.
func knownRules(analyzers []*Analyzer) map[string]bool {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

// RunPackage runs the analyzers over one loaded package, applies
// //lint:ignore suppression, and returns the surviving diagnostics
// sorted by position. Malformed directives are reported under the
// pseudo-rule dut/ignore, which cannot itself be suppressed. The
// package is analyzed as a program of its own; use RunPackageAll with a
// shared Program for cross-package reachability.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	all, err := RunPackageAll(NewProgram(pkg), pkg, analyzers)
	if err != nil {
		return nil, err
	}
	kept := all[:0]
	for _, d := range all {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// RunPackageAll runs the analyzers over one package of the given shared
// Program and returns every diagnostic — suppressed findings are kept
// and marked rather than dropped, so structured output can report them.
// Malformed //lint:ignore directives surface under the unsuppressable
// pseudo-rule dut/ignore.
func RunPackageAll(prog *Program, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			PkgPath:  pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Prog:     prog,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
		diags = append(diags, pass.diags...)
	}

	known := knownRules(analyzers)
	var directives []ignoreDirective
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		directives = append(directives, parseIgnores(pkg.Fset, f, pkg.Srcs[name], known)...)
	}
	for i := range diags {
		diags[i].Suppressed = suppressed(diags[i], directives)
	}
	for _, dir := range directives {
		if dir.Err != "" {
			diags = append(diags, Diagnostic{
				Pos:     token.Position{Filename: dir.File, Line: dir.Line, Column: dir.Col},
				Rule:    "dut/ignore",
				Message: dir.Err,
			})
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// suppressed reports whether some well-formed directive covers d.
func suppressed(d Diagnostic, directives []ignoreDirective) bool {
	for _, dir := range directives {
		if dir.Err == "" && dir.Rule == d.Rule && dir.File == d.Pos.Filename && dir.Target == d.Pos.Line {
			return true
		}
	}
	return false
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// ---- shared AST/type helpers used by the analyzers ----

// calleeFunc resolves a call expression to the function or method object
// it statically invokes (nil for indirect calls through values).
// Generic instantiations (f[T](...)) resolve to the generic origin.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch fn := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(fn.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(fn.X)
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// calleeName returns the bare name a call is spelled with ("SampleInto"
// for both dist.SampleInto and s.SampleInto), or "".
func calleeName(call *ast.CallExpr) string {
	fun := ast.Unparen(call.Fun)
	switch fn := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(fn.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(fn.X)
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// isPkgFunc reports whether f is the package-level function pkgPath.name.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil || f.Name() != name || f.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// exprObj resolves an identifier or field selector to its object, so
// analyzers can track a variable across uses. Returns nil for anything
// more complex (index expressions, calls, ...).
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		return info.ObjectOf(x.Sel)
	}
	return nil
}

// isFloat reports whether t's underlying type is a floating-point kind
// (including untyped float constants).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isContextType reports whether t is context.Context or context.CancelFunc.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return false
	}
	return obj.Name() == "Context" || obj.Name() == "CancelFunc"
}

// funcDecls yields every function declaration in the file, so analyzers
// can reason per enclosing function.
func funcDecls(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}
