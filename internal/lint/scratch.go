package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerScratchAlias enforces the scratch-buffer ownership contract
// behind the zero-allocation pipeline: a slice handed to SampleInto (the
// dist helper, a BatchSampler method, or a fixture spelled the same way)
// is lent to the callee for the duration of the call only. Within the
// enclosing function, a caller-visible buffer (parameter or struct field)
// that was passed as a scratch buffer must not be returned, stored into a
// field, or grown with append — append may reallocate, silently forking
// the buffer the rest of the pipeline reuses and breaking both the
// zero-alloc guarantee and bit-identical replay. The same holds for the
// dst parameter inside SampleInto implementations.
var AnalyzerScratchAlias = &Analyzer{
	Name: "dut/scratchalias",
	Doc:  "scratch buffers handed to SampleInto/RunRoundScratch retained, returned, or append-grown",
	Run:  runScratchAlias,
}

func runScratchAlias(p *Pass) error {
	if !p.InScope(deterministicScope...) {
		return nil
	}
	for _, f := range p.Files {
		for _, fd := range funcDecls(f) {
			p.checkScratchFunc(fd)
		}
	}
	return nil
}

// scratchBuffer is one tracked buffer object: caller-visible storage that
// was lent out as scratch at since.
type scratchBuffer struct {
	obj   types.Object
	since token.Pos
}

// checkScratchFunc analyzes one function for scratch-buffer escapes.
func (p *Pass) checkScratchFunc(fd *ast.FuncDecl) {
	params := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}

	var tracked []scratchBuffer
	track := func(obj types.Object, pos token.Pos) {
		if obj == nil {
			return
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		// Only caller-visible storage: a parameter or a struct field. A
		// locally-allocated slice is owned by this function, so returning
		// or growing it is legal (e.g. dist.SampleN).
		if !params[obj] && !v.IsField() {
			return
		}
		tracked = append(tracked, scratchBuffer{obj: obj, since: pos})
	}

	// The dst parameter of a SampleInto implementation is scratch from the
	// start of the body.
	if fd.Name.Name == "SampleInto" && fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if !isIntSlice(p.Info.TypeOf(field.Type)) {
				continue
			}
			for _, name := range field.Names {
				track(p.Info.Defs[name], fd.Body.Pos())
			}
			break
		}
	}

	// First pass: collect buffers lent to SampleInto calls.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || calleeName(call) != "SampleInto" {
			return true
		}
		if arg := scratchArg(p.Info, call); arg != nil {
			track(exprObj(p.Info, arg), call.End())
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}
	retained := func(e ast.Expr, after token.Pos) *scratchBuffer {
		obj := exprObj(p.Info, e)
		if obj == nil {
			return nil
		}
		for i := range tracked {
			if tracked[i].obj == obj && (after == token.NoPos || e.Pos() >= tracked[i].since) {
				return &tracked[i]
			}
		}
		return nil
	}

	// Second pass: flag escapes.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			// append(buf, ...) may reallocate the scratch backing array,
			// regardless of where it appears relative to the lend.
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "append" && len(node.Args) > 0 {
				if p.Info.Uses[id] == types.Universe.Lookup("append") {
					if b := retained(node.Args[0], token.NoPos); b != nil {
						p.Reportf(node.Pos(),
							"append on scratch buffer %s may reallocate and break the zero-alloc reuse contract", objName(b.obj))
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if b := retained(res, node.Pos()); b != nil {
					p.Reportf(node.Pos(),
						"returning scratch buffer %s lent to SampleInto; the callee's samples alias the shared scratch", objName(b.obj))
				}
			}
		case *ast.AssignStmt:
			// Storing the buffer into a field retains it beyond the call.
			for i, rhs := range node.Rhs {
				b := retained(rhs, node.Pos())
				if b == nil || i >= len(node.Lhs) {
					continue
				}
				if _, ok := ast.Unparen(node.Lhs[i]).(*ast.SelectorExpr); ok {
					p.Reportf(node.Pos(),
						"storing scratch buffer %s into a field retains it beyond the SampleInto call", objName(b.obj))
				}
			}
		}
		return true
	})
}

// scratchArg picks the buffer argument of a SampleInto call: the first
// []int argument (arg 1 of dist.SampleInto(s, buf, rng), arg 0 of the
// method form SampleInto(dst, rng)).
func scratchArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	for _, arg := range call.Args {
		if isIntSlice(info.TypeOf(arg)) {
			return arg
		}
	}
	return nil
}

// isIntSlice reports whether t is []int.
func isIntSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

// objName names an object for a diagnostic.
func objName(obj types.Object) string {
	if obj == nil {
		return "buffer"
	}
	return obj.Name()
}
