package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AnalyzerFrameDiscipline enforces the wire-protocol contract in
// internal/network and internal/congest: every byte on a connection goes
// through the validated frame encoder (wire.go), every frame read happens
// under a freshly-set deadline, and a frame write must not ride a
// deadline that sampling or rule evaluation has already consumed. It
// flags raw conn.Write/conn.Read calls outside the encoder and outside
// Write/Read wrapper methods, binary.Write/binary.Read anywhere in scope,
// frame reads (ReadFrame/expectFrame) with no earlier deadline call in
// the same function, and frame writes after a SampleInto or rule Message
// call since the last deadline refresh.
var AnalyzerFrameDiscipline = &Analyzer{
	Name: "dut/framediscipline",
	Doc:  "raw conn writes, binary.Write/Read, and deadline-less or stale-deadline frame IO",
	Run:  runFrameDiscipline,
}

// encoderFiles hold the blessed frame encoder, exempt from the raw-IO
// rules (the encoder is where the raw write lives by design).
var encoderFiles = map[string]bool{"wire.go": true}

var (
	deadlineCalls = map[string]bool{
		"setDeadline": true, "SetDeadline": true,
		"SetReadDeadline": true, "SetWriteDeadline": true,
		// The batch session splits the budget between its reader and
		// writer goroutines through these wrappers.
		"setReadDeadline": true, "setWriteDeadline": true,
	}
	frameReadCalls = map[string]bool{
		"ReadFrame": true, "readFrame": true, "expectFrame": true,
	}
	frameWriteCalls = map[string]bool{
		"WriteHello": true, "WriteRound": true, "WriteVote": true,
		"WriteVerdict": true, "WriteFinish": true, "writeFrame": true,
		"WriteRoundBatch": true, "WriteVoteBatch": true, "WriteVerdictBatch": true,
		"WriteVoteBatchR": true,
		// The referee tree's aggregator frames: handshake, reduced sums,
		// and forwarded planes.
		"WriteAggHello": true, "WriteAggSum": true, "WriteAggPlanes": true,
		"WriteAggVerdict": true,
		// The batch session's coalesced flush: a run of frames encoded by
		// the wire.go Append* helpers, written in one call.
		"writeCoalesced": true,
	}
	// consumingCalls can eat an arbitrary slice of the current deadline
	// budget: batch sampling and user-provided rule evaluation.
	consumingCalls = map[string]bool{"SampleInto": true, "Message": true}
)

// frameEvent is one ordered IO-relevant call inside a function body.
type frameEvent struct {
	pos  token.Pos
	kind int
}

const (
	evDeadline = iota
	evConsume
	evRead
	evWrite
)

func runFrameDiscipline(p *Pass) error {
	if !p.InScope(frameScope...) {
		return nil
	}
	connIface := netConnInterface(p.Pkg)
	for _, f := range p.Files {
		if encoderFiles[p.fileBase(f.Pos())] {
			continue
		}
		for _, fd := range funcDecls(f) {
			wrapper := fd.Recv != nil && (fd.Name.Name == "Write" || fd.Name.Name == "Read")
			p.checkFrameFunc(fd.Body, connIface, wrapper)
		}
	}
	return nil
}

// checkFrameFunc analyzes one function body; nested function literals
// recurse with their own deadline state (a goroutine or callback manages
// its own IO budget).
func (p *Pass) checkFrameFunc(body *ast.BlockStmt, connIface *types.Interface, wrapper bool) {
	var events []frameEvent
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			p.checkFrameFunc(fl.Body, connIface, false)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		p.checkRawIO(call, connIface, wrapper)
		p.checkBinaryIO(call)
		switch name := calleeName(call); {
		case deadlineCalls[name]:
			events = append(events, frameEvent{call.Pos(), evDeadline})
		case consumingCalls[name]:
			events = append(events, frameEvent{call.Pos(), evConsume})
		case frameReadCalls[name]:
			events = append(events, frameEvent{call.Pos(), evRead})
		case frameWriteCalls[name]:
			events = append(events, frameEvent{call.Pos(), evWrite})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	deadlineSeen, consumedSince := false, false
	for _, ev := range events {
		switch ev.kind {
		case evDeadline:
			deadlineSeen, consumedSince = true, false
		case evConsume:
			consumedSince = true
		case evRead:
			if !deadlineSeen {
				p.Reportf(ev.pos,
					"frame read without a deadline set in this function; a dead peer blocks the round forever")
			}
		case evWrite:
			if deadlineSeen && consumedSince {
				p.Reportf(ev.pos,
					"frame write under a deadline already consumed by sampling or rule evaluation; refresh the deadline first")
			}
		}
	}
}

// checkRawIO flags direct Write/Read method calls on a net.Conn.
func (p *Pass) checkRawIO(call *ast.CallExpr, connIface *types.Interface, wrapper bool) {
	if wrapper || connIface == nil {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Write" && sel.Sel.Name != "Read") {
		return
	}
	t := p.Info.TypeOf(sel.X)
	if t == nil {
		return
	}
	// A basic type never satisfies net.Conn; this also rejects the
	// Invalid type of package identifiers (pkg.Write calls), for which
	// types.Implements is unspecified.
	if _, basic := t.Underlying().(*types.Basic); basic {
		return
	}
	if !implementsConn(t, connIface) {
		return
	}
	p.Reportf(call.Pos(),
		"raw conn.%s bypasses the validated frame encoder; use the wire.go Write*/ReadFrame helpers", sel.Sel.Name)
}

// checkBinaryIO flags encoding/binary stream IO, which would bypass the
// frame header/length validation.
func (p *Pass) checkBinaryIO(call *ast.CallExpr) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return
	}
	if fn.Name() == "Write" || fn.Name() == "Read" {
		p.Reportf(call.Pos(),
			"binary.%s writes an unframed stream; encode through the validated frame encoder instead", fn.Name())
	}
}

// netConnInterface finds the net.Conn interface among the package's
// imports (nil when the package does not import net).
func netConnInterface(pkg *types.Package) *types.Interface {
	for _, imp := range allImports(pkg, map[*types.Package]bool{}) {
		if imp.Path() != "net" {
			continue
		}
		obj := imp.Scope().Lookup("Conn")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}

// allImports walks the transitive import graph (net may arrive
// indirectly, e.g. via a helper package).
func allImports(pkg *types.Package, seen map[*types.Package]bool) []*types.Package {
	var out []*types.Package
	for _, imp := range pkg.Imports() {
		if seen[imp] {
			continue
		}
		seen[imp] = true
		out = append(out, imp)
		out = append(out, allImports(imp, seen)...)
	}
	return out
}

// implementsConn reports whether t (or *t) satisfies net.Conn.
func implementsConn(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}
