// Package lint is the repository's custom static-analysis pass: a
// stdlib-only driver (go/parser + go/types, package discovery via
// `go list -export -json`) running repo-aware analyzers that enforce the
// engine's determinism and scratch contracts at compile time instead of
// only via cross-backend tests.
//
// The six analyzers and the contract each guards:
//
//   - dut/nondeterminism — deterministic packages (internal/core, dist,
//     engine, congest, network) must not read wall-clock time, use the
//     global math/rand generators, construct ad-hoc rand.Rand values, or
//     iterate maps (iteration order leaks into behavior). Randomness
//     routes through engine.NodeRNG / TrialRNG / ReusableRNG; timing
//     through engine.Stopwatch.
//   - dut/scratchalias — a slice handed to SampleInto (or a scratch
//     buffer of RunRoundScratch) is owned by the callee only for the
//     call: retaining it in a field, returning it, or append-ing to it
//     can reallocate and break the zero-alloc + bit-identical contracts.
//   - dut/floateq — ==/!= on float operands in the numeric packages
//     (internal/stats, lowerbound, centralized) outside tolerance
//     helpers; exact comparisons that are mathematically intended carry
//     a //lint:ignore with the reason.
//   - dut/framediscipline — internal/network and internal/congest must
//     speak the validated frame encoder (wire.go): no raw conn.Write /
//     binary.Write, no frame read before a deadline was set in the same
//     function, and no frame write under a deadline that sampling or
//     rule evaluation may have consumed.
//   - dut/ctxprop — goroutines and unconditional loops inside
//     context-bearing engine/cluster driver functions must observe the
//     trial context (or a CancelFunc), so driver cancellation reaches
//     every spawned worker.
//   - dut/seedpurity — arithmetic on seed values belongs in the engine's
//     derivation module (internal/engine/rng.go: SharedSeed, NodeRNG,
//     TrialRNG, FarSeed); ad-hoc seed mixing elsewhere forks the
//     (seed, trial, player) stream space.
//
// False positives are suppressed in place:
//
//	//lint:ignore dut/<rule> <reason>
//
// on the line before (or the end of) the flagged line; stacked
// directives each suppress their own rule for the first following
// non-directive line. A directive with an unknown rule name or a missing
// reason is itself reported (dut/ignore).
//
// cmd/dutlint is the command-line driver; `make lint` runs it over ./...
package lint
