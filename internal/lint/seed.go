package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// AnalyzerSeedPurity enforces the seed-derivation contract: all RNG
// stream separation flows through the splitmix64-based helpers in
// internal/engine/rng.go (SharedSeed, NodeRNG, TrialRNG, FarSeed, ...).
// Ad-hoc arithmetic on a seed value — xor with a magic constant,
// seed+trial offsets, seed*player mixing — creates correlated streams
// (splitmix64 exists precisely because adjacent seeds are not
// independent) and scatters the derivation scheme across packages where
// replay tooling cannot see it. The analyzer flags binary arithmetic and
// compound assignment on identifiers that carry seed values inside the
// deterministic packages, except in the derivation home rng.go itself.
var AnalyzerSeedPurity = &Analyzer{
	Name: "dut/seedpurity",
	Doc:  "ad-hoc arithmetic on seed values outside the engine derivation helpers",
	Run:  runSeedPurity,
}

// seedDerivationFiles are the homes of the blessed derivation helpers,
// where seed arithmetic is the point.
var seedDerivationFiles = map[string]bool{"rng.go": true}

// seedArithOps are the operators that mix or offset a seed.
var seedArithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true,
	token.XOR: true, token.AND: true, token.OR: true,
	token.SHL: true, token.SHR: true, token.AND_NOT: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.XOR_ASSIGN: true, token.AND_ASSIGN: true, token.OR_ASSIGN: true,
	token.SHL_ASSIGN: true, token.SHR_ASSIGN: true, token.AND_NOT_ASSIGN: true,
}

// isSeedExpr reports whether e names a seed-carrying variable or field:
// an identifier or selector whose terminal name mentions "seed".
func isSeedExpr(e ast.Expr) bool {
	var name string
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "seed")
}

func runSeedPurity(p *Pass) error {
	if !p.InScope(deterministicScope...) {
		return nil
	}
	for _, f := range p.Files {
		if pathIn(p.PkgPath, "internal/engine") && seedDerivationFiles[p.fileBase(f.Pos())] {
			continue
		}
		for _, fd := range funcDecls(f) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.BinaryExpr:
					if seedArithOps[node.Op] && (isSeedExpr(node.X) || isSeedExpr(node.Y)) {
						p.Reportf(node.OpPos,
							"ad-hoc seed arithmetic (%s); derive streams via the engine helpers (SharedSeed/NodeRNG/TrialRNG/FarSeed)", node.Op)
					}
				case *ast.AssignStmt:
					if seedArithOps[node.Tok] && len(node.Lhs) == 1 && isSeedExpr(node.Lhs[0]) {
						p.Reportf(node.TokPos,
							"ad-hoc seed arithmetic (%s); derive streams via the engine helpers (SharedSeed/NodeRNG/TrialRNG/FarSeed)", node.Tok)
					}
				}
				return true
			})
		}
	}
	return nil
}
