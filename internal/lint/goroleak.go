package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroScope holds the concurrency-heavy packages whose goroutines must
// provably rejoin the session that spawned them.
var goroScope = []string{"internal/network", "internal/engine"}

// AnalyzerGoroLeak requires every go statement in the driver packages to
// carry a provable join: the spawned body must signal completion through
// a sync.WaitGroup.Done, a channel send or close, or block on a
// ctx-done select, so teardown can wait for it. Fire-and-forget
// goroutines — the pattern behind the all-slots-die teardown bug the
// chaos suite once caught at runtime — are flagged at compile time. A
// go statement invoking a named same-package function is checked
// through that function's body via the shared call graph; spawns the
// analyzer cannot resolve (interface methods, function values) are
// flagged for an explicit //lint:ignore justification.
var AnalyzerGoroLeak = &Analyzer{
	Name: "dut/goroleak",
	Doc:  "go statement without a provable join (WaitGroup, channel signal, or ctx-done select)",
	Run:  runGoroLeak,
}

func runGoroLeak(p *Pass) error {
	if !p.InScope(goroScope...) {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			p.checkGoStmt(gs)
			return true
		})
	}
	return nil
}

// checkGoStmt resolves the spawned body and verifies a join signal.
func (p *Pass) checkGoStmt(gs *ast.GoStmt) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if !p.joinProof(lit.Body) {
			p.Reportf(gs.Pos(), "goroutine body has no provable join: no WaitGroup.Done, channel send/close, or ctx-done select")
		}
		return
	}
	fn := calleeFunc(p.Info, gs.Call)
	if fn == nil {
		p.Reportf(gs.Pos(), "go statement spawns a function value the analyzer cannot resolve; joins are unprovable")
		return
	}
	node := p.Prog.node(fn.FullName())
	if node == nil {
		p.Reportf(gs.Pos(), "go statement spawns %s, whose body is outside the analyzed program; joins are unprovable", fn.Name())
		return
	}
	if !p.joinProof(node.decl.Body) {
		p.Reportf(gs.Pos(), "goroutine %s has no provable join: no WaitGroup.Done, channel send/close, or ctx-done select in its body", fn.Name())
	}
}

// joinProof reports whether the spawned body contains a completion
// signal a joiner can wait on.
func (p *Pass) joinProof(body *ast.BlockStmt) bool {
	proven := false
	ast.Inspect(body, func(n ast.Node) bool {
		if proven {
			return false
		}
		switch node := n.(type) {
		case *ast.SendStmt:
			proven = true
		case *ast.UnaryExpr:
			// <-ctx.Done() — directly or as a select case — blocks the
			// goroutine on cancellation, bounding its lifetime.
			if node.Op == token.ARROW && p.isCtxDoneCall(node.X) {
				proven = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "close" &&
				p.Info.Uses[id] == types.Universe.Lookup("close") {
				proven = true
				return false
			}
			if fn := calleeFunc(p.Info, node); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
				proven = true
			}
		}
		return !proven
	})
	return proven
}

// isCtxDoneCall matches a context.Context Done() call.
func (p *Pass) isCtxDoneCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(p.Info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" && fn.Name() == "Done"
}
