package boolfn

import (
	"fmt"
	"math"
)

// MaxVars is the largest number of variables a dense Func may have. A table
// with 26 variables occupies 512 MiB of float64s, which is past what the
// exhaustive lower-bound computations need; the cap exists to turn accidental
// exponential blowups into errors instead of OOM kills.
const MaxVars = 26

// Func is a real-valued function on the Boolean cube {-1,1}^m, stored as a
// dense truth table of length 2^m. The zero value is the empty function on
// zero variables; use the constructors for anything else.
//
// Func values are immutable by convention: all operations return new
// functions and accessors never expose the backing array for writing.
type Func struct {
	m    int
	vals []float64
}

// New returns the identically-zero function on m variables.
func New(m int) (Func, error) {
	if err := checkVars(m); err != nil {
		return Func{}, err
	}
	return Func{m: m, vals: make([]float64, 1<<m)}, nil
}

// FromValues builds a function on m variables from a truth table of length
// 2^m. The slice is copied.
func FromValues(m int, vals []float64) (Func, error) {
	if err := checkVars(m); err != nil {
		return Func{}, err
	}
	if len(vals) != 1<<m {
		return Func{}, fmt.Errorf("boolfn: truth table has %d entries, want %d", len(vals), 1<<m)
	}
	cp := make([]float64, len(vals))
	copy(cp, vals)
	return Func{m: m, vals: cp}, nil
}

// FromOracle builds a function on m variables by evaluating oracle at every
// point of the cube. The oracle receives the point encoded as an index
// (bit j set <=> x_j = -1).
func FromOracle(m int, oracle func(x uint64) float64) (Func, error) {
	if err := checkVars(m); err != nil {
		return Func{}, err
	}
	vals := make([]float64, 1<<m)
	for i := range vals {
		vals[i] = oracle(uint64(i))
	}
	return Func{m: m, vals: vals}, nil
}

// FromIndicator builds a {0,1}-valued function from a predicate, the natural
// encoding for a player's decision function G.
func FromIndicator(m int, pred func(x uint64) bool) (Func, error) {
	return FromOracle(m, func(x uint64) float64 {
		if pred(x) {
			return 1
		}
		return 0
	})
}

func checkVars(m int) error {
	if m < 0 {
		return fmt.Errorf("boolfn: negative variable count %d", m)
	}
	if m > MaxVars {
		return fmt.Errorf("boolfn: %d variables exceeds MaxVars=%d", m, MaxVars)
	}
	return nil
}

// Vars returns the number of variables m.
func (f Func) Vars() int { return f.m }

// Len returns the size of the truth table, 2^m.
func (f Func) Len() int { return len(f.vals) }

// At returns f at the point encoded by index x (bit set <=> coordinate -1).
func (f Func) At(x uint64) float64 { return f.vals[x] }

// Values returns a copy of the truth table.
func (f Func) Values() []float64 {
	cp := make([]float64, len(f.vals))
	copy(cp, f.vals)
	return cp
}

// Mean returns E[f] over the uniform distribution on the cube; the paper
// writes this mu(f).
func (f Func) Mean() float64 {
	if len(f.vals) == 0 {
		return 0
	}
	// Pairwise summation keeps the error of the 2^m-term sum small without
	// the constant-factor cost of full Kahan compensation.
	return pairwiseSum(f.vals) / float64(len(f.vals))
}

// Variance returns Var[f] = E[f^2] - E[f]^2 over the uniform distribution.
func (f Func) Variance() float64 {
	if len(f.vals) == 0 {
		return 0
	}
	mean := f.Mean()
	var acc float64
	for _, v := range f.vals {
		d := v - mean
		acc += d * d
	}
	return acc / float64(len(f.vals))
}

// SquaredNorm returns ||f||_2^2 = E[f^2].
func (f Func) SquaredNorm() float64 {
	var acc float64
	for _, v := range f.vals {
		acc += v * v
	}
	if len(f.vals) == 0 {
		return 0
	}
	return acc / float64(len(f.vals))
}

// InnerProduct returns <f,g> = E[f*g]. The functions must have the same
// number of variables.
func (f Func) InnerProduct(g Func) (float64, error) {
	if f.m != g.m {
		return 0, fmt.Errorf("boolfn: inner product of functions on %d and %d variables", f.m, g.m)
	}
	var acc float64
	for i, v := range f.vals {
		acc += v * g.vals[i]
	}
	if len(f.vals) == 0 {
		return 0, nil
	}
	return acc / float64(len(f.vals)), nil
}

// Add returns f+g pointwise.
func (f Func) Add(g Func) (Func, error) {
	if f.m != g.m {
		return Func{}, fmt.Errorf("boolfn: adding functions on %d and %d variables", f.m, g.m)
	}
	out := make([]float64, len(f.vals))
	for i, v := range f.vals {
		out[i] = v + g.vals[i]
	}
	return Func{m: f.m, vals: out}, nil
}

// Sub returns f-g pointwise.
func (f Func) Sub(g Func) (Func, error) {
	if f.m != g.m {
		return Func{}, fmt.Errorf("boolfn: subtracting functions on %d and %d variables", f.m, g.m)
	}
	out := make([]float64, len(f.vals))
	for i, v := range f.vals {
		out[i] = v - g.vals[i]
	}
	return Func{m: f.m, vals: out}, nil
}

// Scale returns c*f pointwise.
func (f Func) Scale(c float64) Func {
	out := make([]float64, len(f.vals))
	for i, v := range f.vals {
		out[i] = c * v
	}
	return Func{m: f.m, vals: out}
}

// Complement returns 1-f pointwise; for a {0,1}-valued decision function
// this is the negated decision, used when reducing to the mu(G) <= 1/2 case
// in the proof of Lemma 4.3.
func (f Func) Complement() Func {
	out := make([]float64, len(f.vals))
	for i, v := range f.vals {
		out[i] = 1 - v
	}
	return Func{m: f.m, vals: out}
}

// IsBoolean reports whether every value of f is 0 or 1 (up to tol).
func (f Func) IsBoolean(tol float64) bool {
	for _, v := range f.vals {
		if math.Abs(v) > tol && math.Abs(v-1) > tol {
			return false
		}
	}
	return true
}

// pairwiseSum sums a slice with pairwise (cascade) summation for improved
// numerical accuracy on long vectors.
func pairwiseSum(v []float64) float64 {
	const base = 64
	if len(v) <= base {
		var s float64
		for _, x := range v {
			s += x
		}
		return s
	}
	half := len(v) / 2
	return pairwiseSum(v[:half]) + pairwiseSum(v[half:])
}
