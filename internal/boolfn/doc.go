// Package boolfn implements analysis of Boolean functions on the hypercube
// {-1,1}^m, as used throughout the lower-bound machinery of Meir, Minzer and
// Oshman, "Can Distributed Uniformity Testing Be Local?" (PODC 2019).
//
// A function is stored as a dense truth table indexed by an m-bit integer.
// The package follows the sign convention
//
//	bit j of the index is 0  <=>  x_j = +1
//	bit j of the index is 1  <=>  x_j = -1
//
// so that the character chi_S(x) = prod_{j in S} x_j evaluates to
// (-1)^popcount(index & S), which is exactly the kernel of the Walsh-Hadamard
// transform. All expectations are with respect to the uniform distribution on
// the cube, matching the paper's Section 2.
//
// The central objects are:
//
//   - Func: a real-valued function on the cube (players' decision functions
//     G are {0,1}-valued instances).
//   - Spectrum: the Fourier transform of a Func; coefficient hat f(S) is
//     indexed by the subset bitmask S.
//   - Restrictions: Func.Restrict fixes a subset of coordinates, which is how
//     the paper passes from G(x, s) to the per-x slice G_x(s) in Section 4.
//   - Level inequalities: KKLLevelBound implements the bound of Lemma 5.4
//     (after Kahn-Kalai-Linial), used against biased local decision bits.
package boolfn
