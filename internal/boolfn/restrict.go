package boolfn

import (
	"fmt"
	"math/bits"
)

// Restrict fixes the variables selected by fixedMask to the values given by
// fixedBits (only bits inside fixedMask are consulted) and returns the
// restricted function on the remaining variables. Free variables keep their
// relative order: the lowest free variable of f becomes variable 0 of the
// restriction, and so on.
//
// This is the operation the paper uses in Section 4 to pass from a player's
// decision function G(x, s) to the slice G_x(s) with the sample names x
// fixed and only the sign bits s free.
func (f Func) Restrict(fixedMask, fixedBits uint64) (Func, error) {
	if f.m > 0 && fixedMask >= uint64(1)<<f.m {
		return Func{}, fmt.Errorf("boolfn: restriction mask %#x out of range for %d variables", fixedMask, f.m)
	}
	if f.m == 0 && fixedMask != 0 {
		return Func{}, fmt.Errorf("boolfn: restriction mask %#x on 0 variables", fixedMask)
	}
	fixedBits &= fixedMask
	freeCount := f.m - bits.OnesCount64(fixedMask)
	out := make([]float64, 1<<freeCount)
	freePos := freePositions(f.m, fixedMask)
	for j := range out {
		out[j] = f.vals[fixedBits|scatterBits(uint64(j), freePos)]
	}
	return Func{m: freeCount, vals: out}, nil
}

// freePositions lists the bit positions not covered by fixedMask, ascending.
func freePositions(m int, fixedMask uint64) []int {
	pos := make([]int, 0, m)
	for j := 0; j < m; j++ {
		if fixedMask&(1<<j) == 0 {
			pos = append(pos, j)
		}
	}
	return pos
}

// scatterBits places bit i of compact at position pos[i].
func scatterBits(compact uint64, pos []int) uint64 {
	var out uint64
	for i, p := range pos {
		if compact&(1<<i) != 0 {
			out |= 1 << p
		}
	}
	return out
}

// Slices enumerates all restrictions of f over the variables in fixedMask:
// it calls visit once per assignment a to the fixed variables, with the
// restricted function on the free variables. Enumeration order is the
// natural ascending order of the compact assignment index.
//
// The restricted Func passed to visit is freshly allocated each call and may
// be retained.
func (f Func) Slices(fixedMask uint64, visit func(assignment uint64, slice Func) error) error {
	if f.m > 0 && fixedMask >= uint64(1)<<f.m {
		return fmt.Errorf("boolfn: slice mask %#x out of range for %d variables", fixedMask, f.m)
	}
	fixedPos := make([]int, 0, f.m)
	for j := 0; j < f.m; j++ {
		if fixedMask&(1<<j) != 0 {
			fixedPos = append(fixedPos, j)
		}
	}
	for a := uint64(0); a < 1<<len(fixedPos); a++ {
		fixedBits := scatterBits(a, fixedPos)
		slice, err := f.Restrict(fixedMask, fixedBits)
		if err != nil {
			return err
		}
		if err := visit(fixedBits, slice); err != nil {
			return err
		}
	}
	return nil
}

// Extend is the inverse-direction helper of Restrict: it builds a function
// on m variables whose value depends only on the variables in mask,
// according to g on the compacted variables. Every variable outside mask is
// ignored (a "junta" extension).
func Extend(m int, mask uint64, g Func) (Func, error) {
	if err := checkVars(m); err != nil {
		return Func{}, err
	}
	if m > 0 && mask >= uint64(1)<<m {
		return Func{}, fmt.Errorf("boolfn: junta mask %#x out of range for %d variables", mask, m)
	}
	if got := bits.OnesCount64(mask); got != g.m {
		return Func{}, fmt.Errorf("boolfn: junta mask selects %d variables, inner function has %d", got, g.m)
	}
	maskPos := make([]int, 0, g.m)
	for j := 0; j < m; j++ {
		if mask&(1<<j) != 0 {
			maskPos = append(maskPos, j)
		}
	}
	vals := make([]float64, 1<<m)
	for x := uint64(0); x < uint64(len(vals)); x++ {
		var compact uint64
		for i, p := range maskPos {
			if x&(1<<p) != 0 {
				compact |= 1 << i
			}
		}
		vals[x] = g.vals[compact]
	}
	return Func{m: m, vals: vals}, nil
}
