package boolfn

import (
	"math"
	"math/rand/v2"
	"testing"
)

const tol = 1e-12

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func testRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

func TestNewRejectsBadVarCounts(t *testing.T) {
	tests := []struct {
		name string
		m    int
	}{
		{name: "negative", m: -1},
		{name: "too large", m: MaxVars + 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.m); err == nil {
				t.Fatalf("New(%d) succeeded, want error", tt.m)
			}
		})
	}
}

func TestNewZeroFunction(t *testing.T) {
	f, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Vars() != 3 || f.Len() != 8 {
		t.Fatalf("got vars=%d len=%d, want 3, 8", f.Vars(), f.Len())
	}
	if f.Mean() != 0 || f.Variance() != 0 {
		t.Fatalf("zero function has mean=%v var=%v", f.Mean(), f.Variance())
	}
}

func TestFromValuesCopies(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	f, err := FromValues(2, vals)
	if err != nil {
		t.Fatal(err)
	}
	vals[0] = 99
	if f.At(0) != 1 {
		t.Fatalf("FromValues aliased its input: f(0)=%v", f.At(0))
	}
	got := f.Values()
	got[1] = -7
	if f.At(1) != 2 {
		t.Fatalf("Values aliased the table: f(1)=%v", f.At(1))
	}
}

func TestFromValuesLengthMismatch(t *testing.T) {
	if _, err := FromValues(3, []float64{1, 2}); err == nil {
		t.Fatal("FromValues accepted a short table")
	}
}

func TestMeanAndVarianceKnown(t *testing.T) {
	tests := []struct {
		name     string
		vals     []float64
		m        int
		mean     float64
		variance float64
	}{
		{name: "constant one", m: 2, vals: []float64{1, 1, 1, 1}, mean: 1, variance: 0},
		{name: "single point", m: 2, vals: []float64{1, 0, 0, 0}, mean: 0.25, variance: 0.1875},
		{name: "balanced", m: 1, vals: []float64{0, 1}, mean: 0.5, variance: 0.25},
		{name: "pm one parity", m: 2, vals: []float64{1, -1, -1, 1}, mean: 0, variance: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f, err := FromValues(tt.m, tt.vals)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(f.Mean(), tt.mean, tol) {
				t.Errorf("mean = %v, want %v", f.Mean(), tt.mean)
			}
			if !almostEqual(f.Variance(), tt.variance, tol) {
				t.Errorf("variance = %v, want %v", f.Variance(), tt.variance)
			}
		})
	}
}

func TestInnerProductAndNorm(t *testing.T) {
	f, err := FromValues(2, []float64{1, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromValues(2, []float64{1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := f.InnerProduct(g)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ip, 0.25, tol) {
		t.Errorf("<f,g> = %v, want 0.25", ip)
	}
	if !almostEqual(f.SquaredNorm(), 0.5, tol) {
		t.Errorf("||f||^2 = %v, want 0.5", f.SquaredNorm())
	}
}

func TestInnerProductDimensionMismatch(t *testing.T) {
	f, _ := New(2)
	g, _ := New(3)
	if _, err := f.InnerProduct(g); err == nil {
		t.Fatal("inner product across dimensions succeeded")
	}
	if _, err := f.Add(g); err == nil {
		t.Fatal("Add across dimensions succeeded")
	}
	if _, err := f.Sub(g); err == nil {
		t.Fatal("Sub across dimensions succeeded")
	}
}

func TestArithmetic(t *testing.T) {
	f, _ := FromValues(1, []float64{1, 2})
	g, _ := FromValues(1, []float64{10, 20})
	sum, err := f.Add(g)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(0) != 11 || sum.At(1) != 22 {
		t.Errorf("Add = %v", sum.Values())
	}
	diff, err := g.Sub(f)
	if err != nil {
		t.Fatal(err)
	}
	if diff.At(0) != 9 || diff.At(1) != 18 {
		t.Errorf("Sub = %v", diff.Values())
	}
	sc := f.Scale(3)
	if sc.At(0) != 3 || sc.At(1) != 6 {
		t.Errorf("Scale = %v", sc.Values())
	}
}

func TestComplement(t *testing.T) {
	f, _ := FromValues(1, []float64{0, 1})
	c := f.Complement()
	if c.At(0) != 1 || c.At(1) != 0 {
		t.Errorf("Complement = %v", c.Values())
	}
	// Complement preserves non-empty Fourier weight levels.
	sf, sc := Transform(f), Transform(c)
	if !almostEqual(sf.Variance(), sc.Variance(), tol) {
		t.Errorf("variance changed under complement: %v vs %v", sf.Variance(), sc.Variance())
	}
}

func TestIsBoolean(t *testing.T) {
	b, _ := FromValues(1, []float64{0, 1})
	if !b.IsBoolean(tol) {
		t.Error("indicator not recognized as Boolean")
	}
	r, _ := FromValues(1, []float64{0.5, 1})
	if r.IsBoolean(tol) {
		t.Error("real-valued function recognized as Boolean")
	}
}

func TestFromIndicatorMatchesOracle(t *testing.T) {
	pred := func(x uint64) bool { return x%3 == 0 }
	f, err := FromIndicator(4, pred)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 16; x++ {
		want := 0.0
		if pred(x) {
			want = 1.0
		}
		if f.At(x) != want {
			t.Fatalf("f(%d) = %v, want %v", x, f.At(x), want)
		}
	}
}

func TestPairwiseSumMatchesNaive(t *testing.T) {
	rng := testRand(7)
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		v := make([]float64, n)
		var naive float64
		for i := range v {
			v[i] = rng.Float64() - 0.5
			naive += v[i]
		}
		if got := pairwiseSum(v); !almostEqual(got, naive, 1e-9) {
			t.Errorf("pairwiseSum len %d = %v, naive %v", n, got, naive)
		}
	}
}

func TestMeanVarianceAgainstSpectrum(t *testing.T) {
	rng := testRand(11)
	for m := 0; m <= 8; m++ {
		f, err := RandomReal(m, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := Transform(f)
		if !almostEqual(f.Mean(), s.Mean(), 1e-9) {
			t.Errorf("m=%d: mean %v vs spectral %v", m, f.Mean(), s.Mean())
		}
		if !almostEqual(f.Variance(), s.Variance(), 1e-9) {
			t.Errorf("m=%d: var %v vs spectral %v", m, f.Variance(), s.Variance())
		}
	}
}
