package boolfn

import (
	"fmt"
	"math/bits"
)

// Spectrum holds the Fourier transform of a function on m variables. The
// coefficient hat f(S) is stored at index S, where S is the bitmask of the
// character's variable set.
type Spectrum struct {
	m     int
	coeff []float64
}

// Transform computes the Fourier transform of f with the fast Walsh-Hadamard
// transform in O(m 2^m) time. By orthonormality of the characters,
// hat f(S) = <f, chi_S> = 2^-m * sum_x f(x) chi_S(x).
func Transform(f Func) Spectrum {
	coeff := make([]float64, len(f.vals))
	copy(coeff, f.vals)
	wht(coeff)
	inv := 1.0
	if len(coeff) > 0 {
		inv = 1 / float64(len(coeff))
	}
	for i := range coeff {
		coeff[i] *= inv
	}
	return Spectrum{m: f.m, coeff: coeff}
}

// Synthesize inverts the transform: f(x) = sum_S hat f(S) chi_S(x). Because
// the WHT kernel is its own inverse up to scaling, this is a single
// unnormalized WHT of the coefficient table.
func Synthesize(s Spectrum) Func {
	vals := make([]float64, len(s.coeff))
	copy(vals, s.coeff)
	wht(vals)
	return Func{m: s.m, vals: vals}
}

// wht applies the in-place unnormalized Walsh-Hadamard butterfly.
func wht(a []float64) {
	n := len(a)
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := a[j], a[j+h]
				a[j], a[j+h] = x+y, x-y
			}
		}
	}
}

// Vars returns the number of variables of the underlying function.
func (s Spectrum) Vars() int { return s.m }

// Len returns the number of coefficients, 2^m.
func (s Spectrum) Len() int { return len(s.coeff) }

// Coeff returns hat f(S) for the character bitmask S.
func (s Spectrum) Coeff(set uint64) float64 { return s.coeff[set] }

// Coeffs returns a copy of all coefficients indexed by subset mask.
func (s Spectrum) Coeffs() []float64 {
	cp := make([]float64, len(s.coeff))
	copy(cp, s.coeff)
	return cp
}

// Mean returns hat f(empty) = E[f] (Fact 2.2).
func (s Spectrum) Mean() float64 {
	if len(s.coeff) == 0 {
		return 0
	}
	return s.coeff[0]
}

// Variance returns sum_{S != empty} hat f(S)^2 (Fact 2.2).
func (s Spectrum) Variance() float64 {
	var acc float64
	for i := 1; i < len(s.coeff); i++ {
		acc += s.coeff[i] * s.coeff[i]
	}
	return acc
}

// SquaredNorm returns sum_S hat f(S)^2, which equals E[f^2] by Parseval
// (Fact 2.1).
func (s Spectrum) SquaredNorm() float64 {
	var acc float64
	for _, c := range s.coeff {
		acc += c * c
	}
	return acc
}

// LevelWeight returns W^{=r}[f] = sum_{|S| = r} hat f(S)^2.
func (s Spectrum) LevelWeight(r int) float64 {
	var acc float64
	for i, c := range s.coeff {
		if bits.OnesCount64(uint64(i)) == r {
			acc += c * c
		}
	}
	return acc
}

// LowLevelWeight returns W^{<=r}[f] = sum_{1 <= |S| <= r} hat f(S)^2 when
// includeEmpty is false, or sum_{|S| <= r} when it is true.
func (s Spectrum) LowLevelWeight(r int, includeEmpty bool) float64 {
	var acc float64
	for i, c := range s.coeff {
		pc := bits.OnesCount64(uint64(i))
		if pc > r {
			continue
		}
		if pc == 0 && !includeEmpty {
			continue
		}
		acc += c * c
	}
	return acc
}

// LevelProfile returns the full weight profile W^{=0..m}[f] as a slice of
// length m+1.
func (s Spectrum) LevelProfile() []float64 {
	prof := make([]float64, s.m+1)
	for i, c := range s.coeff {
		prof[bits.OnesCount64(uint64(i))] += c * c
	}
	return prof
}

// Degree returns the Fourier degree of f: the largest |S| with a coefficient
// of magnitude above tol, or 0 for the zero/constant function.
func (s Spectrum) Degree(tol float64) int {
	deg := 0
	for i, c := range s.coeff {
		if c > tol || c < -tol {
			if pc := bits.OnesCount64(uint64(i)); pc > deg {
				deg = pc
			}
		}
	}
	return deg
}

// CoeffNaive computes hat f(S) directly from the definition in O(2^m) time.
// It is the test oracle for Transform.
func CoeffNaive(f Func, set uint64) (float64, error) {
	if set >= uint64(len(f.vals)) && len(f.vals) > 0 {
		return 0, fmt.Errorf("boolfn: character mask %#x out of range for %d variables", set, f.m)
	}
	var acc float64
	for x := uint64(0); x < uint64(len(f.vals)); x++ {
		acc += f.vals[x] * Character(set, x)
	}
	if len(f.vals) == 0 {
		return 0, nil
	}
	return acc / float64(len(f.vals)), nil
}

// Character evaluates chi_S(x) = prod_{j in S} x_j under the package's sign
// convention (index bit set <=> coordinate value -1).
func Character(set, x uint64) float64 {
	if bits.OnesCount64(set&x)%2 == 1 {
		return -1
	}
	return 1
}
