package boolfn

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// genFunc derives a deterministic random function on m variables from a
// seed, for use inside testing/quick properties.
func genFunc(m int, seed uint64) Func {
	rng := rand.New(rand.NewPCG(seed, ^seed))
	f, err := RandomReal(m, rng)
	if err != nil {
		panic(err)
	}
	return f
}

func quickCfg(n int) *quick.Config {
	return &quick.Config{MaxCount: n}
}

func TestQuickParseval(t *testing.T) {
	prop := func(seed uint64, mRaw uint8) bool {
		m := int(mRaw % 9)
		f := genFunc(m, seed)
		s := Transform(f)
		return math.Abs(f.SquaredNorm()-s.SquaredNorm()) < 1e-9
	}
	if err := quick.Check(prop, quickCfg(60)); err != nil {
		t.Error(err)
	}
}

func TestQuickTransformLinear(t *testing.T) {
	prop := func(seed uint64, mRaw uint8, aRaw, bRaw int16) bool {
		m := int(mRaw % 8)
		a := float64(aRaw) / 256
		b := float64(bRaw) / 256
		f := genFunc(m, seed)
		g := genFunc(m, seed^0xdeadbeef)
		combo, err := f.Scale(a).Add(g.Scale(b))
		if err != nil {
			return false
		}
		sc := Transform(combo)
		sf, sg := Transform(f), Transform(g)
		for i := 0; i < sc.Len(); i++ {
			want := a*sf.Coeff(uint64(i)) + b*sg.Coeff(uint64(i))
			if math.Abs(sc.Coeff(uint64(i))-want) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(40)); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(seed uint64, mRaw uint8) bool {
		m := int(mRaw % 10)
		f := genFunc(m, seed)
		back := Synthesize(Transform(f))
		for x := uint64(0); x < uint64(f.Len()); x++ {
			if math.Abs(f.At(x)-back.At(x)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(50)); err != nil {
		t.Error(err)
	}
}

func TestQuickVarianceNonNegative(t *testing.T) {
	prop := func(seed uint64, mRaw uint8) bool {
		m := int(mRaw % 10)
		f := genFunc(m, seed)
		return f.Variance() >= -1e-12
	}
	if err := quick.Check(prop, quickCfg(50)); err != nil {
		t.Error(err)
	}
}

func TestQuickBooleanMeanVarianceIdentity(t *testing.T) {
	// For {0,1}-valued f: var(f) = mu(1-mu).
	prop := func(seed uint64, mRaw, pRaw uint8) bool {
		m := int(mRaw % 9)
		p := float64(pRaw) / 255
		rng := rand.New(rand.NewPCG(seed, seed+1))
		f, err := RandomBiased(m, p, rng)
		if err != nil {
			return false
		}
		mu := f.Mean()
		return math.Abs(f.Variance()-mu*(1-mu)) < 1e-9
	}
	if err := quick.Check(prop, quickCfg(60)); err != nil {
		t.Error(err)
	}
}

func TestQuickRestrictionPreservesRange(t *testing.T) {
	prop := func(seed uint64, maskRaw uint16) bool {
		const m = 8
		rng := rand.New(rand.NewPCG(seed, seed*3))
		f, err := RandomBoolean(m, rng)
		if err != nil {
			return false
		}
		mask := uint64(maskRaw) % (1 << m)
		ok := true
		err = f.Slices(mask, func(_ uint64, slice Func) error {
			if !slice.IsBoolean(1e-12) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(prop, quickCfg(40)); err != nil {
		t.Error(err)
	}
}

func TestQuickKKLRandomBiased(t *testing.T) {
	// The Lemma 5.4 level inequality holds for random biased functions over
	// the whole (r, delta) test grid.
	prop := func(seed uint64, pRaw uint8, rRaw uint8, dRaw uint8) bool {
		p := 0.01 + 0.98*float64(pRaw)/255
		r := 1 + int(rRaw%3)
		delta := 0.1 + 0.9*float64(dRaw)/255
		rng := rand.New(rand.NewPCG(seed, seed<<1|1))
		f, err := RandomBiased(7, p, rng)
		if err != nil {
			return false
		}
		rep, err := CheckKKL(f, r, delta)
		return err == nil && rep.Satisfied
	}
	if err := quick.Check(prop, quickCfg(60)); err != nil {
		t.Error(err)
	}
}

func TestQuickCharacterOrthonormality(t *testing.T) {
	prop := func(aRaw, bRaw uint8) bool {
		const m = 6
		a := uint64(aRaw) % (1 << m)
		b := uint64(bRaw) % (1 << m)
		fa, err := Parity(m, a)
		if err != nil {
			return false
		}
		fb, err := Parity(m, b)
		if err != nil {
			return false
		}
		ip, err := fa.InnerProduct(fb)
		if err != nil {
			return false
		}
		want := 0.0
		if a == b {
			want = 1.0
		}
		return math.Abs(ip-want) < 1e-12
	}
	if err := quick.Check(prop, quickCfg(100)); err != nil {
		t.Error(err)
	}
}

func TestQuickExtendPreservesSpectrumInsideMask(t *testing.T) {
	prop := func(seed uint64, maskRaw uint8) bool {
		const m = 7
		mask := uint64(maskRaw) % (1 << m)
		inner := genFunc(popcount(mask), seed)
		f, err := Extend(m, mask, inner)
		if err != nil {
			return false
		}
		spec := Transform(f)
		for s := uint64(0); s < uint64(spec.Len()); s++ {
			if s&^mask != 0 && math.Abs(spec.Coeff(s)) > 1e-9 {
				return false
			}
		}
		return math.Abs(f.Mean()-inner.Mean()) < 1e-9
	}
	if err := quick.Check(prop, quickCfg(40)); err != nil {
		t.Error(err)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
