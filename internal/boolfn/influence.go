package boolfn

import (
	"fmt"
	"math"
	"math/bits"
)

// Influence returns the Fourier-analytic influence of variable j on f:
// Inf_j[f] = sum_{S ∋ j} hat f(S)^2. For Boolean-valued f this is the
// probability that flipping coordinate j changes the value.
func (s Spectrum) Influence(j int) (float64, error) {
	if j < 0 || j >= s.m {
		return 0, fmt.Errorf("boolfn: influence of variable %d on a %d-variable function", j, s.m)
	}
	var acc float64
	bit := uint64(1) << j
	for i, c := range s.coeff {
		if uint64(i)&bit != 0 {
			acc += c * c
		}
	}
	return acc, nil
}

// TotalInfluence returns I[f] = sum_S |S| hat f(S)^2.
func (s Spectrum) TotalInfluence() float64 {
	var acc float64
	for i, c := range s.coeff {
		acc += float64(bits.OnesCount64(uint64(i))) * c * c
	}
	return acc
}

// NoiseStability returns Stab_rho[f] = sum_S rho^{|S|} hat f(S)^2, the
// correlation of f under rho-correlated inputs.
func (s Spectrum) NoiseStability(rho float64) float64 {
	var acc float64
	for i, c := range s.coeff {
		acc += math.Pow(rho, float64(bits.OnesCount64(uint64(i)))) * c * c
	}
	return acc
}

// NoiseOperator returns T_rho f, the function with spectrum
// rho^{|S|} hat f(S). It smooths f toward its mean.
func (s Spectrum) NoiseOperator(rho float64) Spectrum {
	out := make([]float64, len(s.coeff))
	for i, c := range s.coeff {
		out[i] = math.Pow(rho, float64(bits.OnesCount64(uint64(i)))) * c
	}
	return Spectrum{m: s.m, coeff: out}
}

// InfluenceNaive computes Inf_j[f] directly as the second moment of the
// discrete derivative, E[((f(x) - f(x + e_j))/2)^2], which equals the
// spectral influence sum_{S ∋ j} hat f(S)^2 for any real-valued f. It is
// the test oracle for Spectrum.Influence.
func InfluenceNaive(f Func, j int) (float64, error) {
	if j < 0 || j >= f.m {
		return 0, fmt.Errorf("boolfn: influence of variable %d on a %d-variable function", j, f.m)
	}
	bit := uint64(1) << j
	var acc float64
	for x := uint64(0); x < uint64(len(f.vals)); x++ {
		d := f.vals[x] - f.vals[x^bit]
		acc += d * d
	}
	if len(f.vals) == 0 {
		return 0, nil
	}
	// E[ ((f(x) - f(x^j))/2)^2 ] equals the spectral influence.
	return acc / (4 * float64(len(f.vals))), nil
}
