package boolfn

import (
	"math"
	"testing"
)

func TestKKLLevelBoundArguments(t *testing.T) {
	tests := []struct {
		name  string
		mu    float64
		r     int
		delta float64
	}{
		{name: "negative mean", mu: -0.1, r: 1, delta: 0.5},
		{name: "mean above one", mu: 1.1, r: 1, delta: 0.5},
		{name: "zero delta", mu: 0.5, r: 1, delta: 0},
		{name: "delta above one", mu: 0.5, r: 1, delta: 1.5},
		{name: "negative level", mu: 0.5, r: -1, delta: 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := KKLLevelBound(tt.mu, tt.r, tt.delta); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestKKLLevelBoundValues(t *testing.T) {
	got, err := KKLLevelBound(0.25, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.5, -2) * math.Pow(0.25, 2/1.5)
	if !almostEqual(got, want, tol) {
		t.Errorf("bound = %v, want %v", got, want)
	}
}

func TestCheckKKLOnRandomBiasedFunctions(t *testing.T) {
	rng := testRand(31)
	for _, p := range []float64{0.01, 0.05, 0.1, 0.3, 0.5, 0.9} {
		for trial := 0; trial < 5; trial++ {
			f, err := RandomBiased(8, p, rng)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range []int{1, 2, 3} {
				for _, delta := range []float64{0.2, 0.5, 1} {
					rep, err := CheckKKL(f, r, delta)
					if err != nil {
						t.Fatal(err)
					}
					if !rep.Satisfied {
						t.Errorf("p=%v r=%d delta=%v: level inequality violated, weight %v > bound %v",
							p, r, delta, rep.Weight, rep.Bound)
					}
				}
			}
		}
	}
}

func TestCheckKKLOnStructuredFunctions(t *testing.T) {
	mks := map[string]func() (Func, error){
		"dictator":   func() (Func, error) { return Dictator(6, 0, true) },
		"majority":   func() (Func, error) { return Majority(7) },
		"threshold5": func() (Func, error) { return ThresholdCount(7, 5) },
		"and":        func() (Func, error) { return ThresholdCount(6, 6) },
	}
	for name, mk := range mks {
		f, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []int{1, 2} {
			for _, delta := range []float64{0.3, 1} {
				rep, err := CheckKKL(f, r, delta)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Satisfied {
					t.Errorf("%s r=%d delta=%v: weight %v > bound %v", name, r, delta, rep.Weight, rep.Bound)
				}
			}
		}
	}
}

func TestCheckKKLHandlesHighMeanViaComplement(t *testing.T) {
	// A function with mean 0.9: the check must use the complement, whose
	// mean is 0.1, and still bound the (identical) non-empty level weights.
	rng := testRand(32)
	f, err := RandomBiased(8, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckKKL(f, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mean > 0.5 {
		t.Errorf("reported mean %v, want complemented mean <= 0.5", rep.Mean)
	}
	if !rep.Satisfied {
		t.Errorf("inequality violated: weight %v > bound %v", rep.Weight, rep.Bound)
	}
}

func TestCheckKKLRejectsNonBoolean(t *testing.T) {
	f, _ := FromValues(2, []float64{0.5, 0, 1, 0})
	if _, err := CheckKKL(f, 1, 0.5); err == nil {
		t.Fatal("CheckKKL accepted a non-Boolean function")
	}
}

func TestVarianceLowerBoundFromMean(t *testing.T) {
	// For mu <= 1/2: var = mu(1-mu) >= mu/2.
	for _, mu := range []float64{0, 0.1, 0.25, 0.5} {
		variance := mu * (1 - mu)
		if lb := VarianceLowerBoundFromMean(mu); variance < lb-tol {
			t.Errorf("mu=%v: var %v below claimed bound %v", mu, variance, lb)
		}
	}
}

func TestInfluenceMatchesNaive(t *testing.T) {
	rng := testRand(33)
	for trial := 0; trial < 5; trial++ {
		f, _ := RandomReal(6, rng)
		spec := Transform(f)
		for j := 0; j < 6; j++ {
			spectral, err := spec.Influence(j)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := InfluenceNaive(f, j)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(spectral, naive, 1e-9) {
				t.Errorf("var %d: spectral %v, naive %v", j, spectral, naive)
			}
		}
	}
}

func TestTotalInfluenceIsSumOfInfluences(t *testing.T) {
	rng := testRand(34)
	f, _ := RandomReal(7, rng)
	spec := Transform(f)
	var sum float64
	for j := 0; j < 7; j++ {
		inf, err := spec.Influence(j)
		if err != nil {
			t.Fatal(err)
		}
		sum += inf
	}
	if !almostEqual(sum, spec.TotalInfluence(), 1e-9) {
		t.Errorf("sum of influences %v, total influence %v", sum, spec.TotalInfluence())
	}
}

func TestInfluenceRangeCheck(t *testing.T) {
	f, _ := New(3)
	spec := Transform(f)
	if _, err := spec.Influence(3); err == nil {
		t.Fatal("Influence accepted out-of-range variable")
	}
	if _, err := InfluenceNaive(f, -1); err == nil {
		t.Fatal("InfluenceNaive accepted negative variable")
	}
}

func TestParityInfluence(t *testing.T) {
	p, _ := Parity(5, 0b10110)
	spec := Transform(p)
	for j := 0; j < 5; j++ {
		inf, err := spec.Influence(j)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		if 0b10110&(1<<j) != 0 {
			want = 1.0
		}
		if !almostEqual(inf, want, tol) {
			t.Errorf("parity influence of %d = %v, want %v", j, inf, want)
		}
	}
}
