package boolfn

import (
	"fmt"
	"math"
)

// KKLLevelBound evaluates the right-hand side of the level inequality the
// paper states as Lemma 5.4 (after Kahn, Kalai and Linial): for a
// {0,1}-valued f with mean mu <= 1/2, the Fourier weight up to level r is at
// most delta^{-r} * mu^{2/(1+delta)} for every delta in (0,1].
func KKLLevelBound(mu float64, r int, delta float64) (float64, error) {
	if mu < 0 || mu > 1 {
		return 0, fmt.Errorf("boolfn: KKL bound with mean %v outside [0,1]", mu)
	}
	if delta <= 0 || delta > 1 {
		return 0, fmt.Errorf("boolfn: KKL bound with delta %v outside (0,1]", delta)
	}
	if r < 0 {
		return 0, fmt.Errorf("boolfn: KKL bound with negative level %d", r)
	}
	return math.Pow(delta, -float64(r)) * math.Pow(mu, 2/(1+delta)), nil
}

// KKLReport is the outcome of checking the Lemma 5.4 level inequality on a
// concrete function.
type KKLReport struct {
	Mean      float64 // mean of the checked function (or its complement)
	Level     int     // level r checked
	Delta     float64 // delta used
	Weight    float64 // measured W^{<=r} excluding the empty set
	Bound     float64 // delta^{-r} mu^{2/(1+delta)}
	Ratio     float64 // Weight / Bound (<= 1 when the inequality holds)
	Satisfied bool
}

// CheckKKL verifies the Lemma 5.4 level inequality for a {0,1}-valued
// function f at level r with parameter delta. As in the paper's proof of
// Lemma 4.3, when mu(f) > 1/2 the check is applied to 1-f, which has the
// same Fourier weight on every non-empty level.
func CheckKKL(f Func, r int, delta float64) (KKLReport, error) {
	if !f.IsBoolean(1e-12) {
		return KKLReport{}, fmt.Errorf("boolfn: CheckKKL requires a {0,1}-valued function")
	}
	g := f
	if f.Mean() > 0.5 {
		g = f.Complement()
	}
	spec := Transform(g)
	mu := spec.Mean()
	weight := spec.LowLevelWeight(r, false)
	bound, err := KKLLevelBound(mu, r, delta)
	if err != nil {
		return KKLReport{}, err
	}
	ratio := 0.0
	if bound > 0 {
		ratio = weight / bound
	} else if weight > 0 {
		ratio = math.Inf(1)
	}
	return KKLReport{
		Mean:      mu,
		Level:     r,
		Delta:     delta,
		Weight:    weight,
		Bound:     bound,
		Ratio:     ratio,
		Satisfied: weight <= bound*(1+1e-9),
	}, nil
}

// VarianceLowerBoundFromMean returns the bound var(g) >= mu/2 used in the
// proof of Lemma 4.3 for a {0,1}-valued g with mu(g) <= 1/2: there
// var(g) = mu(1-mu) >= mu/2.
func VarianceLowerBoundFromMean(mu float64) float64 {
	return mu / 2
}
