package boolfn

import (
	"math/bits"
	"testing"
)

func TestRestrictPointwise(t *testing.T) {
	// f(x0,x1,x2) identified by index; fix x1 = -1 (bit 1 set).
	f, err := FromOracle(3, func(x uint64) float64 { return float64(x) })
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Restrict(1<<1, 1<<1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Vars() != 2 {
		t.Fatalf("restricted vars = %d, want 2", r.Vars())
	}
	// Free variables are x0 (new bit 0) and x2 (new bit 1).
	wants := map[uint64]float64{
		0b00: 0b010, // x0=+1, x2=+1
		0b01: 0b011, // x0=-1
		0b10: 0b110, // x2=-1
		0b11: 0b111,
	}
	for in, want := range wants {
		if got := r.At(in); got != want {
			t.Errorf("r(%02b) = %v, want %v", in, got, want)
		}
	}
}

func TestRestrictIgnoresBitsOutsideMask(t *testing.T) {
	f, _ := FromOracle(3, func(x uint64) float64 { return float64(x * x) })
	a, err := f.Restrict(0b010, 0b010)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Restrict(0b010, 0b111) // stray bits outside the mask
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < uint64(a.Len()); x++ {
		if a.At(x) != b.At(x) {
			t.Fatalf("stray fixedBits changed the restriction at %d", x)
		}
	}
}

func TestRestrictMaskOutOfRange(t *testing.T) {
	f, _ := New(2)
	if _, err := f.Restrict(0b100, 0); err == nil {
		t.Fatal("Restrict accepted out-of-range mask")
	}
}

func TestRestrictAllAndNone(t *testing.T) {
	f, _ := FromOracle(2, func(x uint64) float64 { return float64(3 * x) })
	full, err := f.Restrict(0b11, 0b10)
	if err != nil {
		t.Fatal(err)
	}
	if full.Vars() != 0 || full.At(0) != 6 {
		t.Errorf("full restriction = %v on %d vars", full.At(0), full.Vars())
	}
	none, err := f.Restrict(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < uint64(f.Len()); x++ {
		if none.At(x) != f.At(x) {
			t.Fatalf("empty restriction changed value at %d", x)
		}
	}
}

func TestRestrictMeanDecomposition(t *testing.T) {
	// E[f] equals the average over assignments of the restricted means —
	// the tower property the paper uses (Jensen step in Proposition 5.3).
	rng := testRand(21)
	f, _ := RandomReal(6, rng)
	mask := uint64(0b101010)
	var acc float64
	count := 0
	err := f.Slices(mask, func(_ uint64, slice Func) error {
		acc += slice.Mean()
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("visited %d slices, want 8", count)
	}
	if !almostEqual(acc/float64(count), f.Mean(), 1e-9) {
		t.Errorf("slice mean average %v, global mean %v", acc/float64(count), f.Mean())
	}
}

func TestSliceVarianceJensen(t *testing.T) {
	// E_x[var(f_x)] <= var(f): the inequality from Proposition 5.3.
	rng := testRand(22)
	for trial := 0; trial < 10; trial++ {
		f, _ := RandomBoolean(8, rng)
		mask := uint64(rng.Uint64N(1 << 8))
		var acc float64
		n := 0
		if err := f.Slices(mask, func(_ uint64, slice Func) error {
			acc += slice.Variance()
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if avg := acc / float64(n); avg > f.Variance()+1e-9 {
			t.Errorf("trial %d mask %#x: E[var(f_x)] = %v > var(f) = %v", trial, mask, avg, f.Variance())
		}
	}
}

func TestRestrictSpectrumConsistency(t *testing.T) {
	// Restricting to x_j = b and transforming matches collapsing the full
	// spectrum: hat{f|_{x_j=b}}(S) = hat f(S) + x_j(b) * hat f(S + j).
	rng := testRand(23)
	f, _ := RandomReal(5, rng)
	spec := Transform(f)
	j := 3
	for _, bitVal := range []uint64{0, 1} {
		r, err := f.Restrict(1<<j, bitVal<<j)
		if err != nil {
			t.Fatal(err)
		}
		rs := Transform(r)
		sign := 1.0
		if bitVal == 1 {
			sign = -1.0
		}
		for s := uint64(0); s < uint64(rs.Len()); s++ {
			// Map the restricted mask back to the original variables:
			// bits below j stay, bits at or above j shift up by one.
			low := s & ((1 << j) - 1)
			high := (s >> j) << (j + 1)
			orig := low | high
			want := spec.Coeff(orig) + sign*spec.Coeff(orig|1<<j)
			if !almostEqual(rs.Coeff(s), want, 1e-9) {
				t.Fatalf("bit=%d S=%#x: got %v want %v", bitVal, s, rs.Coeff(s), want)
			}
		}
	}
}

func TestExtendJunta(t *testing.T) {
	g, _ := FromValues(2, []float64{10, 20, 30, 40})
	f, err := Extend(4, 0b1010, g)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 16; x++ {
		var compact uint64
		if x&(1<<1) != 0 {
			compact |= 1
		}
		if x&(1<<3) != 0 {
			compact |= 2
		}
		if f.At(x) != g.At(compact) {
			t.Fatalf("junta value at %04b = %v, want %v", x, f.At(x), g.At(compact))
		}
	}
	// The junta's spectrum is supported inside the mask.
	spec := Transform(f)
	for s := uint64(0); s < 16; s++ {
		if s&^uint64(0b1010) != 0 && !almostEqual(spec.Coeff(s), 0, tol) {
			t.Errorf("junta has weight %v outside its mask at %#x", spec.Coeff(s), s)
		}
	}
}

func TestExtendErrors(t *testing.T) {
	g, _ := New(2)
	if _, err := Extend(3, 0b111, g); err == nil {
		t.Fatal("Extend accepted mask/vars mismatch")
	}
	if _, err := Extend(2, 0b100, g); err == nil {
		t.Fatal("Extend accepted out-of-range mask")
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	pos := []int{1, 3, 4}
	for compact := uint64(0); compact < 8; compact++ {
		scattered := scatterBits(compact, pos)
		if bits.OnesCount64(scattered) != bits.OnesCount64(compact) {
			t.Fatalf("popcount changed: %b -> %b", compact, scattered)
		}
		var back uint64
		for i, p := range pos {
			if scattered&(1<<p) != 0 {
				back |= 1 << i
			}
		}
		if back != compact {
			t.Fatalf("round trip %b -> %b -> %b", compact, scattered, back)
		}
	}
}
