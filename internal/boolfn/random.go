package boolfn

import (
	"fmt"
	"math/rand/v2"
)

// RandomBoolean returns a uniformly random {0,1}-valued function on m
// variables: each truth-table entry is an independent fair coin from rng.
func RandomBoolean(m int, rng *rand.Rand) (Func, error) {
	return RandomBiased(m, 0.5, rng)
}

// RandomBiased returns a random {0,1}-valued function whose entries are
// independent Bernoulli(p) coins. Small p produces the highly-biased
// decision bits that Lemma 4.3 targets.
func RandomBiased(m int, p float64, rng *rand.Rand) (Func, error) {
	if p < 0 || p > 1 {
		return Func{}, fmt.Errorf("boolfn: bias %v outside [0,1]", p)
	}
	return FromIndicator(m, func(uint64) bool { return rng.Float64() < p })
}

// RandomReal returns a random real-valued function with entries uniform in
// [-1, 1], useful for exercising the transform on non-Boolean tables.
func RandomReal(m int, rng *rand.Rand) (Func, error) {
	return FromOracle(m, func(uint64) float64 { return 2*rng.Float64() - 1 })
}

// Dictator returns the function x_j (as a {0,1}-valued indicator of
// x_j = -1 when indicator is true, or the ±1-valued coordinate itself when
// indicator is false).
func Dictator(m, j int, indicator bool) (Func, error) {
	if j < 0 || j >= m {
		return Func{}, fmt.Errorf("boolfn: dictator on variable %d of %d", j, m)
	}
	bit := uint64(1) << j
	return FromOracle(m, func(x uint64) float64 {
		neg := x&bit != 0
		if indicator {
			if neg {
				return 1
			}
			return 0
		}
		if neg {
			return -1
		}
		return 1
	})
}

// Parity returns chi_S as a Func (±1-valued).
func Parity(m int, set uint64) (Func, error) {
	if m > 0 && set >= uint64(1)<<m {
		return Func{}, fmt.Errorf("boolfn: parity mask %#x out of range for %d variables", set, m)
	}
	return FromOracle(m, func(x uint64) float64 { return Character(set, x) })
}

// Majority returns the {0,1}-valued majority indicator on m variables
// (value 1 when strictly more coordinates are -1 than +1; ties, possible
// only for even m, resolve to 0).
func Majority(m int) (Func, error) {
	return FromIndicator(m, func(x uint64) bool {
		neg := 0
		for j := 0; j < m; j++ {
			if x&(1<<j) != 0 {
				neg++
			}
		}
		return 2*neg > m
	})
}

// ThresholdCount returns the {0,1}-valued indicator of "at least t
// coordinates equal -1", a symmetric slice family used in tests.
func ThresholdCount(m, t int) (Func, error) {
	if t < 0 {
		return Func{}, fmt.Errorf("boolfn: negative threshold %d", t)
	}
	return FromIndicator(m, func(x uint64) bool {
		neg := 0
		for j := 0; j < m; j++ {
			if x&(1<<j) != 0 {
				neg++
			}
		}
		return neg >= t
	})
}
