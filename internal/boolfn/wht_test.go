package boolfn

import (
	"math"
	"math/bits"
	"testing"
)

func TestTransformMatchesNaive(t *testing.T) {
	rng := testRand(1)
	for m := 0; m <= 8; m++ {
		f, err := RandomReal(m, rng)
		if err != nil {
			t.Fatal(err)
		}
		spec := Transform(f)
		for set := uint64(0); set < uint64(f.Len()); set++ {
			want, err := CoeffNaive(f, set)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(spec.Coeff(set), want, 1e-10) {
				t.Fatalf("m=%d S=%#x: WHT %v, naive %v", m, set, spec.Coeff(set), want)
			}
		}
	}
}

func TestSynthesizeInvertsTransform(t *testing.T) {
	rng := testRand(2)
	for m := 0; m <= 10; m++ {
		f, err := RandomReal(m, rng)
		if err != nil {
			t.Fatal(err)
		}
		back := Synthesize(Transform(f))
		for x := uint64(0); x < uint64(f.Len()); x++ {
			if !almostEqual(f.At(x), back.At(x), 1e-9) {
				t.Fatalf("m=%d x=%d: round trip %v, want %v", m, x, back.At(x), f.At(x))
			}
		}
	}
}

func TestParityHasSingleCoefficient(t *testing.T) {
	for m := 1; m <= 6; m++ {
		for set := uint64(0); set < 1<<m; set++ {
			p, err := Parity(m, set)
			if err != nil {
				t.Fatal(err)
			}
			spec := Transform(p)
			for s2 := uint64(0); s2 < uint64(p.Len()); s2++ {
				want := 0.0
				if s2 == set {
					want = 1.0
				}
				if !almostEqual(spec.Coeff(s2), want, tol) {
					t.Fatalf("m=%d parity %#x coeff at %#x = %v, want %v", m, set, s2, spec.Coeff(s2), want)
				}
			}
		}
	}
}

func TestDictatorSpectrum(t *testing.T) {
	// Indicator of x_1 = -1 on 3 variables: hat f = 1/2 on empty set,
	// -1/2 on {1} under the convention chi_{1}(x) = x_1.
	f, err := Dictator(3, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	spec := Transform(f)
	if !almostEqual(spec.Coeff(0), 0.5, tol) {
		t.Errorf("empty coeff %v, want 0.5", spec.Coeff(0))
	}
	if !almostEqual(spec.Coeff(1<<1), -0.5, tol) {
		t.Errorf("coeff({1}) = %v, want -0.5", spec.Coeff(1<<1))
	}
	if !almostEqual(spec.Variance(), 0.25, tol) {
		t.Errorf("variance %v, want 0.25", spec.Variance())
	}
}

func TestParsevalRandomFunctions(t *testing.T) {
	rng := testRand(3)
	for m := 0; m <= 10; m++ {
		f, err := RandomReal(m, rng)
		if err != nil {
			t.Fatal(err)
		}
		spec := Transform(f)
		if !almostEqual(f.SquaredNorm(), spec.SquaredNorm(), 1e-9) {
			t.Errorf("m=%d: E[f^2]=%v, sum coeff^2=%v", m, f.SquaredNorm(), spec.SquaredNorm())
		}
	}
}

func TestPlancherelRandomPairs(t *testing.T) {
	rng := testRand(4)
	for m := 1; m <= 8; m++ {
		f, _ := RandomReal(m, rng)
		g, _ := RandomReal(m, rng)
		ip, err := f.InnerProduct(g)
		if err != nil {
			t.Fatal(err)
		}
		sf, sg := Transform(f), Transform(g)
		var spectral float64
		for i := 0; i < sf.Len(); i++ {
			spectral += sf.Coeff(uint64(i)) * sg.Coeff(uint64(i))
		}
		if !almostEqual(ip, spectral, 1e-9) {
			t.Errorf("m=%d: <f,g>=%v, spectral=%v", m, ip, spectral)
		}
	}
}

func TestLevelWeightsSumToNorm(t *testing.T) {
	rng := testRand(5)
	for m := 0; m <= 8; m++ {
		f, _ := RandomReal(m, rng)
		spec := Transform(f)
		prof := spec.LevelProfile()
		if len(prof) != m+1 {
			t.Fatalf("m=%d: profile length %d", m, len(prof))
		}
		var total float64
		for r, w := range prof {
			total += w
			if !almostEqual(w, spec.LevelWeight(r), tol) {
				t.Errorf("m=%d level %d: profile %v vs LevelWeight %v", m, r, w, spec.LevelWeight(r))
			}
		}
		if !almostEqual(total, spec.SquaredNorm(), 1e-9) {
			t.Errorf("m=%d: level weights sum %v, norm %v", m, total, spec.SquaredNorm())
		}
	}
}

func TestLowLevelWeight(t *testing.T) {
	f, _ := Majority(5)
	spec := Transform(f)
	for r := 0; r <= 5; r++ {
		var wantWith, wantWithout float64
		for i := 0; i < spec.Len(); i++ {
			pc := bits.OnesCount64(uint64(i))
			if pc > r {
				continue
			}
			c2 := spec.Coeff(uint64(i)) * spec.Coeff(uint64(i))
			wantWith += c2
			if pc > 0 {
				wantWithout += c2
			}
		}
		if got := spec.LowLevelWeight(r, true); !almostEqual(got, wantWith, tol) {
			t.Errorf("r=%d with empty: %v want %v", r, got, wantWith)
		}
		if got := spec.LowLevelWeight(r, false); !almostEqual(got, wantWithout, tol) {
			t.Errorf("r=%d without empty: %v want %v", r, got, wantWithout)
		}
	}
}

func TestDegree(t *testing.T) {
	tests := []struct {
		name string
		mk   func() (Func, error)
		want int
	}{
		{name: "constant", mk: func() (Func, error) { return FromValues(3, []float64{1, 1, 1, 1, 1, 1, 1, 1}) }, want: 0},
		{name: "dictator", mk: func() (Func, error) { return Dictator(3, 2, false) }, want: 1},
		{name: "full parity", mk: func() (Func, error) { return Parity(4, 0xF) }, want: 4},
		{name: "majority5", mk: func() (Func, error) { return Majority(5) }, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f, err := tt.mk()
			if err != nil {
				t.Fatal(err)
			}
			if got := Transform(f).Degree(1e-9); got != tt.want {
				t.Errorf("degree = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestCharacterMultiplicative(t *testing.T) {
	// chi_S(x XOR y) = chi_S(x) chi_S(y): characters are homomorphisms of
	// the XOR group.
	for set := uint64(0); set < 16; set++ {
		for x := uint64(0); x < 16; x++ {
			for y := uint64(0); y < 16; y++ {
				if Character(set, x^y) != Character(set, x)*Character(set, y) {
					t.Fatalf("character not multiplicative at S=%d x=%d y=%d", set, x, y)
				}
			}
		}
	}
}

func TestCoeffNaiveRangeCheck(t *testing.T) {
	f, _ := New(2)
	if _, err := CoeffNaive(f, 4); err == nil {
		t.Fatal("CoeffNaive accepted an out-of-range mask")
	}
}

func TestMajorityMeanIsHalfOddVars(t *testing.T) {
	for _, m := range []int{1, 3, 5, 7} {
		f, err := Majority(m)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(f.Mean(), 0.5, tol) {
			t.Errorf("majority on %d vars has mean %v", m, f.Mean())
		}
	}
}

func TestNoiseStabilityEndpoints(t *testing.T) {
	rng := testRand(6)
	f, _ := RandomReal(6, rng)
	spec := Transform(f)
	if !almostEqual(spec.NoiseStability(1), spec.SquaredNorm(), 1e-9) {
		t.Errorf("Stab_1 = %v, want E[f^2] = %v", spec.NoiseStability(1), spec.SquaredNorm())
	}
	mean := spec.Mean()
	if !almostEqual(spec.NoiseStability(0), mean*mean, 1e-9) {
		t.Errorf("Stab_0 = %v, want mean^2 = %v", spec.NoiseStability(0), mean*mean)
	}
}

func TestNoiseOperatorContractsVariance(t *testing.T) {
	rng := testRand(8)
	f, _ := RandomReal(7, rng)
	spec := Transform(f)
	prev := spec.Variance()
	for _, rho := range []float64{0.9, 0.5, 0.1} {
		v := spec.NoiseOperator(rho).Variance()
		if v > prev+tol {
			t.Errorf("rho=%v: variance grew from %v to %v", rho, prev, v)
		}
		prev = v
	}
	if !almostEqual(spec.NoiseOperator(0).Variance(), 0, tol) {
		t.Error("T_0 f should be constant")
	}
}

func TestThresholdCountMonotone(t *testing.T) {
	m := 6
	prev := math.Inf(1)
	for th := 0; th <= m+1; th++ {
		f, err := ThresholdCount(m, th)
		if err != nil {
			t.Fatal(err)
		}
		if f.Mean() > prev+tol {
			t.Errorf("threshold %d: mean %v not monotone", th, f.Mean())
		}
		prev = f.Mean()
	}
	f0, _ := ThresholdCount(m, 0)
	if f0.Mean() != 1 {
		t.Errorf("threshold 0 mean %v, want 1", f0.Mean())
	}
	fm, _ := ThresholdCount(m, m+1)
	if fm.Mean() != 0 {
		t.Errorf("threshold m+1 mean %v, want 0", fm.Mean())
	}
}
