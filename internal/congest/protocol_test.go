package congest

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// fixedVoteRule returns a rule voting according to a fixed bit vector,
// ignoring samples — for deterministic aggregation tests.
func fixedVoteRule(accepts []bool) core.LocalRule {
	return core.RuleFunc(func(player int, _ []int, _ uint64, _ *rand.Rand) (core.Message, error) {
		if accepts[player] {
			return core.Accept, nil
		}
		return core.Reject, nil
	})
}

func uniformSampler(t *testing.T, n int) dist.Sampler {
	t.Helper()
	u, err := dist.Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dist.NewAliasSampler(u)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewTesterValidation(t *testing.T) {
	g, _ := Path(4)
	rule := fixedVoteRule(make([]bool, 4))
	bad := []TesterConfig{
		{Graph: nil, Root: 0, Q: 1, Rule: rule},
		{Graph: g, Root: -1, Q: 1, Rule: rule},
		{Graph: g, Root: 4, Q: 1, Rule: rule},
		{Graph: g, Root: 0, Q: -1, Rule: rule},
		{Graph: g, Root: 0, Q: 1, Rule: nil},
		{Graph: g, Root: 0, Q: 1, Rule: rule, T: 5},
	}
	for i, cfg := range bad {
		if _, err := NewTester(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	disc, _ := NewGraph(3, [][2]int{{0, 1}})
	if _, err := NewTester(TesterConfig{Graph: disc, Root: 0, Q: 1, Rule: rule, T: 1}); err == nil {
		t.Error("disconnected graph accepted")
	}
	multi := core.RuleFunc(func(int, []int, uint64, *rand.Rand) (core.Message, error) { return 0, nil })
	_ = multi
}

func TestTreeAggregationCountsExactly(t *testing.T) {
	// For every graph shape and every vote pattern on <= 6 nodes, the root
	// verdict must equal "rejections < T" — exactly the SMP ThresholdRule.
	shapes := map[string]func() (*Graph, error){
		"path":     func() (*Graph, error) { return Path(6) },
		"ring":     func() (*Graph, error) { return Ring(6) },
		"star":     func() (*Graph, error) { return Star(6) },
		"complete": func() (*Graph, error) { return Complete(6) },
		"grid":     func() (*Graph, error) { return Grid(2, 3) },
	}
	for name, mk := range shapes {
		g, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for pattern := 0; pattern < 1<<6; pattern++ {
			accepts := make([]bool, 6)
			rejections := 0
			for i := range accepts {
				accepts[i] = pattern&(1<<i) != 0
				if !accepts[i] {
					rejections++
				}
			}
			for _, T := range []int{1, 3, 6} {
				for _, root := range []int{0, 5} {
					tester, err := NewTester(TesterConfig{
						Graph: g, Root: root, Q: 0, Rule: fixedVoteRule(accepts), T: T,
					})
					if err != nil {
						t.Fatal(err)
					}
					got, err := tester.Run(uniformSampler(t, 4), testRand(1))
					if err != nil {
						t.Fatalf("%s pattern=%06b T=%d root=%d: %v", name, pattern, T, root, err)
					}
					want := rejections < T
					if got != want {
						t.Fatalf("%s pattern=%06b T=%d root=%d: verdict %v, want %v",
							name, pattern, T, root, got, want)
					}
				}
			}
		}
	}
}

func TestAllNodesLearnTheVerdict(t *testing.T) {
	// Wrap programs to record each node's final verdict; every node must
	// agree with the root.
	g, err := Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	accepts := []bool{true, false, true, true, false, true, true, true, false}
	var rootVerdict bool
	n := g.N()
	programs := make([]NodeProgram, n)
	nodes := make([]*uniformityNode, n)
	for u := 0; u < n; u++ {
		var score uint64
		if !accepts[u] {
			score = 1
		}
		nodes[u] = newUniformityNode(g, u, u == 4, 3, score, &rootVerdict)
		programs[u] = nodes[u]
	}
	sim, err := NewSimulator(g, programs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(200); err != nil {
		t.Fatal(err)
	}
	for u, node := range nodes {
		if !node.verdictSeen {
			t.Errorf("node %d never saw the verdict", u)
		}
		if node.verdict != rootVerdict {
			t.Errorf("node %d verdict %v, root %v", u, node.verdict, rootVerdict)
		}
	}
}

func TestRoundsScaleWithDiameter(t *testing.T) {
	// The protocol is O(diameter): a long path takes ~3 passes; a star is
	// constant.
	rule := fixedVoteRule(make([]bool, 64))
	long, _ := Path(64)
	pathTester, err := NewTester(TesterConfig{Graph: long, Root: 0, Q: 0, Rule: fixedVoteRule(make([]bool, 64)), T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pathTester.Run(uniformSampler(t, 4), testRand(2)); err != nil {
		t.Fatal(err)
	}
	star, _ := Star(64)
	starTester, err := NewTester(TesterConfig{Graph: star, Root: 0, Q: 0, Rule: rule, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := starTester.Run(uniformSampler(t, 4), testRand(3)); err != nil {
		t.Fatal(err)
	}
	if pathTester.LastRounds() < 63 {
		t.Errorf("path rounds %d below diameter", pathTester.LastRounds())
	}
	if pathTester.LastRounds() > 4*63+10 {
		t.Errorf("path rounds %d not O(diameter)", pathTester.LastRounds())
	}
	if starTester.LastRounds() > 12 {
		t.Errorf("star rounds %d, want O(1)", starTester.LastRounds())
	}
	if pathTester.LastMaxMessageBits() > MessageBits {
		t.Errorf("message width %d over cap", pathTester.LastMaxMessageBits())
	}
}

func TestMessageCountLinearInEdges(t *testing.T) {
	// Each edge carries O(1) messages over the whole execution.
	g, err := Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	tester, err := NewTester(TesterConfig{Graph: g, Root: 0, Q: 0, Rule: fixedVoteRule(make([]bool, 36)), T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tester.Run(uniformSampler(t, 4), testRand(4)); err != nil {
		t.Fatal(err)
	}
	if tester.LastMessages() > 6*g.Edges() {
		t.Errorf("%d messages on %d edges — not O(1) per edge", tester.LastMessages(), g.Edges())
	}
}

func TestCONGESTMatchesSMPTester(t *testing.T) {
	// The CONGEST tester over any topology realizes exactly the SMP
	// threshold tester: acceptance probabilities agree.
	const (
		n   = 1024
		k   = 16
		eps = 0.5
	)
	q := core.RecommendedThresholdSamples(n, k, eps)
	smp, err := core.NewThresholdTester(core.ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	g, err := RandomTree(k, testRand(5))
	if err != nil {
		t.Fatal(err)
	}
	congest, err := NewTester(TesterConfig{
		Graph: g, Root: 0, Q: q, Rule: smp.Local(), T: core.DefaultThresholdT(k),
	})
	if err != nil {
		t.Fatal(err)
	}
	far, err := dist.PairedBump(n, eps)
	if err != nil {
		t.Fatal(err)
	}
	opts := stats.EstimateOptions{Seed: 6}
	smpEst, err := core.EstimateAcceptance(smp, far, 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	congestEst, err := core.EstimateAcceptance(congest, far, 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(smpEst.P-congestEst.P) > 0.15 {
		t.Errorf("SMP accept %v vs CONGEST accept %v", smpEst.P, congestEst.P)
	}
	uniform, _ := dist.Uniform(n)
	smpU, err := core.EstimateAcceptance(smp, uniform, 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	congestU, err := core.EstimateAcceptance(congest, uniform, 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(smpU.P-congestU.P) > 0.15 {
		t.Errorf("SMP accept(U) %v vs CONGEST accept(U) %v", smpU.P, congestU.P)
	}
}

func TestTesterRunValidation(t *testing.T) {
	g, _ := Path(3)
	tester, err := NewTester(TesterConfig{Graph: g, Root: 0, Q: 1, Rule: fixedVoteRule(make([]bool, 3)), T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tester.Run(nil, testRand(0)); err == nil {
		t.Error("nil sampler accepted")
	}
	if _, err := tester.Run(uniformSampler(t, 4), nil); err == nil {
		t.Error("nil rng accepted")
	}
	if tester.Players() != 3 || tester.MaxSamplesPerPlayer() != 1 {
		t.Error("accessors wrong")
	}
}

func TestTesterOnRandomTopologies(t *testing.T) {
	// Exhaustive vote patterns on random trees: the count must always be
	// exact regardless of topology.
	rng := testRand(7)
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.IntN(12)
		g, err := RandomTree(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		accepts := make([]bool, n)
		rejections := 0
		for i := range accepts {
			accepts[i] = rng.Uint64()&1 == 0
			if !accepts[i] {
				rejections++
			}
		}
		T := 1 + rng.IntN(n)
		root := rng.IntN(n)
		tester, err := NewTester(TesterConfig{Graph: g, Root: root, Q: 0, Rule: fixedVoteRule(accepts), T: T})
		if err != nil {
			t.Fatal(err)
		}
		got, err := tester.Run(uniformSampler(t, 4), testRand(uint64(trial)))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := rejections < T; got != want {
			t.Fatalf("trial %d (n=%d T=%d): verdict %v, want %v", trial, n, T, got, want)
		}
	}
}

func TestSimulatorValidation(t *testing.T) {
	g, _ := Path(2)
	if _, err := NewSimulator(nil, nil); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewSimulator(g, make([]NodeProgram, 1)); err == nil {
		t.Error("program count mismatch accepted")
	}
	if _, err := NewSimulator(g, make([]NodeProgram, 2)); err == nil {
		t.Error("nil programs accepted")
	}
}

// stuckProgram never terminates.
type stuckProgram struct{}

func (stuckProgram) Step(int, Inbox, *Outbox) (bool, error) { return false, nil }

func TestSimulatorDetectsNonTermination(t *testing.T) {
	g, _ := Path(2)
	sim, err := NewSimulator(g, []NodeProgram{stuckProgram{}, stuckProgram{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(10); err == nil {
		t.Error("non-terminating protocol not detected")
	}
	if _, err := NewSimulator(g, []NodeProgram{stuckProgram{}, stuckProgram{}}); err != nil {
		t.Fatal(err)
	}
	sim2, _ := NewSimulator(g, []NodeProgram{stuckProgram{}, stuckProgram{}})
	if err := sim2.Run(0); err == nil {
		t.Error("maxRounds=0 accepted")
	}
}

// chattyProgram violates the model by double-sending.
type chattyProgram struct{ peer int }

func (c chattyProgram) Step(_ int, _ Inbox, out *Outbox) (bool, error) {
	if err := out.Send(c.peer, 1); err != nil {
		return false, err
	}
	if err := out.Send(c.peer, 2); err != nil {
		return false, fmt.Errorf("double send rejected as expected: %w", err)
	}
	return true, nil
}

func TestOutboxEnforcesModel(t *testing.T) {
	g, _ := Path(2)
	sim, err := NewSimulator(g, []NodeProgram{chattyProgram{peer: 1}, chattyProgram{peer: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(5); err == nil {
		t.Error("double-send not surfaced")
	}
	// Send to non-neighbor.
	out := newOutbox(0, []int{1})
	if err := out.Send(0, 1); err == nil {
		t.Error("self-send accepted")
	}
	out3 := newOutbox(0, []int{1})
	if err := out3.Send(2, 1); err == nil {
		t.Error("non-neighbor send accepted")
	}
}

func TestPayloadEncoding(t *testing.T) {
	for _, tag := range []Payload{tagExplore, tagChild, tagNack, tagReport, tagDecide} {
		for _, value := range []uint64{0, 1, 1000, 1 << 40} {
			gotTag, gotValue := decode(encode(tag, value))
			if gotTag != tag || gotValue != value {
				t.Fatalf("encode/decode(%d, %d) = (%d, %d)", tag, value, gotTag, gotValue)
			}
		}
	}
}
