// Package congest implements the CONGEST network model in which
// Fischer-Meir-Oshman (PODC 2018) originally placed distributed uniformity
// testing, and which Meir-Minzer-Oshman's Section 6.2 reduces to the
// simultaneous-message model this repository centers on.
//
// The model: an undirected graph of nodes computing in synchronous rounds;
// in each round every node may send one bounded-size message (O(log n)
// bits — enforced by the simulator) over each incident edge. There is no
// referee; the nodes themselves must reach the verdict.
//
// The package provides:
//
//   - Graph: immutable undirected graphs with standard builders (path,
//     ring, star, complete, grid, random tree) and BFS.
//   - Simulator: a deterministic synchronous-round engine with per-edge
//     message-size accounting; protocols are node state machines.
//   - UniformityProtocol: the tree-aggregation tester — build a BFS tree
//     from a root, have every node vote with the same local collision rule
//     the SMP testers use, convergecast the rejection count, apply the
//     T-threshold rule at the root, and broadcast the verdict. Round
//     complexity O(diameter); every message fits in O(log k) bits.
//
// The equivalence tested in this package — the CONGEST tester accepts
// exactly when the SMP threshold tester's referee would on the same votes —
// is the constructive form of the reduction the paper invokes: lower
// bounds proved for the referee model transfer to CONGEST.
package congest
