package congest

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"
)

// MessageBits is the CONGEST bandwidth cap per edge per round. The classic
// model allows O(log n) bits; 64 accommodates every protocol here while
// still catching accidental flooding (the simulator enforces that payloads
// fit).
const MessageBits = 64

// Payload is one edge-message: a value of at most MessageBits significant
// bits.
type Payload uint64

// fitsBits reports whether p uses at most b significant bits.
func (p Payload) fitsBits(b int) bool {
	return bits.Len64(uint64(p)) <= b
}

// Outbox collects a node's messages for the current round. Slots are
// indexed by the neighbor's position in the node's ascending-sorted
// neighbor list — flat slices instead of a per-round map, so a round of
// sends touches no allocator and no hashing.
type Outbox struct {
	node      int
	neighbors []int // ascending neighbor ids
	msgs      []Payload
	has       []bool
}

// newOutbox builds the outbox for a node with the given ascending-sorted
// neighbor list.
//
//dut:coldpath once-per-node construction during ensureBuffers; rounds reuse the outbox
func newOutbox(node int, neighbors []int) *Outbox {
	return &Outbox{
		node:      node,
		neighbors: neighbors,
		msgs:      make([]Payload, len(neighbors)),
		has:       make([]bool, len(neighbors)),
	}
}

// reset clears the outbox for a fresh round.
func (o *Outbox) reset() {
	clear(o.has)
}

// Send queues a message to a neighbor; sending twice to the same neighbor
// in one round, to a non-neighbor, or over the bandwidth cap is an error
// (the simulator is strict so protocol bugs surface as failures, not as
// silently cheaty behavior).
func (o *Outbox) Send(to int, p Payload) error {
	pos, ok := slices.BinarySearch(o.neighbors, to)
	if !ok {
		return fmt.Errorf("congest: node %d sending to non-neighbor %d", o.node, to)
	}
	if o.has[pos] {
		return fmt.Errorf("congest: node %d sending twice to %d in one round", o.node, to)
	}
	if !p.fitsBits(MessageBits) {
		return fmt.Errorf("congest: message exceeds %d bits", MessageBits)
	}
	o.msgs[pos], o.has[pos] = p, true
	return nil
}

// Queued reports whether a message to the given neighbor is already
// queued this round, letting programs postpone lower-priority traffic
// instead of violating the one-message-per-edge-per-round rule.
func (o *Outbox) Queued(to int) bool {
	pos, ok := slices.BinarySearch(o.neighbors, to)
	return ok && o.has[pos]
}

// Inbox is the set of messages a node received last round, indexed by the
// sender's position in the node's ascending-sorted neighbor list.
type Inbox struct {
	msgs []Payload
	has  []bool
}

// Get returns the message from the neighbor at the given position in the
// node's sorted neighbor list, and whether one arrived this round.
func (in Inbox) Get(pos int) (Payload, bool) {
	if !in.has[pos] {
		return 0, false
	}
	return in.msgs[pos], true
}

// NodeProgram is a synchronous-round state machine. Step is called once
// per round with the messages received at the start of the round; it
// queues this round's messages on the outbox and returns true when the
// node has terminated (a terminated node keeps receiving but no longer
// steps).
type NodeProgram interface {
	Step(round int, in Inbox, out *Outbox) (done bool, err error)
}

// Simulator drives a set of node programs over a graph in synchronous
// rounds. Run's round buffers (inboxes, outboxes, termination flags)
// persist on the struct and are cleared per use, so a Reset-and-rerun
// loop (the engine's batch scratch path) executes allocation-free.
type Simulator struct {
	graph    *Graph
	programs []NodeProgram
	// Stats.
	rounds        int
	messagesSent  int
	maxBitsInAMsg int
	// Reusable round buffers (see ensureBuffers). sortedAdj holds each
	// node's ascending neighbor list (the Graph's own adjacency keeps
	// insertion order, which BFS parents depend on); edgeBack[u][i] is
	// the position of u in sortedAdj[v] for v = sortedAdj[u][i], so
	// delivery is a direct index instead of a map insert. The two inbox
	// generations are swapped every round; an Inbox handed to Step is
	// only valid for that call.
	done      []bool
	sortedAdj [][]int
	edgeBack  [][]int
	inboxes   [2][]Inbox
	outs      []*Outbox
}

// NewSimulator validates that there is exactly one program per node.
//
//dut:coldpath once-per-run construction; Run reuses the simulator's buffers across rounds
func NewSimulator(g *Graph, programs []NodeProgram) (*Simulator, error) {
	if g == nil {
		return nil, fmt.Errorf("congest: nil graph")
	}
	if len(programs) != g.N() {
		return nil, fmt.Errorf("congest: %d programs for %d nodes", len(programs), g.N())
	}
	for i, p := range programs {
		if p == nil {
			return nil, fmt.Errorf("congest: nil program at node %d", i)
		}
	}
	return &Simulator{graph: g, programs: programs}, nil
}

// ensureBuffers allocates the reusable round buffers on first use.
//
//dut:coldpath first-use buffer construction behind a len guard; later rounds return early and reuse
func (s *Simulator) ensureBuffers(n int) {
	if len(s.done) == n {
		return
	}
	s.done = make([]bool, n)
	s.sortedAdj = make([][]int, n)
	s.edgeBack = make([][]int, n)
	s.outs = make([]*Outbox, n)
	for u := 0; u < n; u++ {
		adj := s.graph.Neighbors(u)
		sort.Ints(adj)
		s.sortedAdj[u] = adj
	}
	for u := 0; u < n; u++ {
		adj := s.sortedAdj[u]
		back := make([]int, len(adj))
		for i, v := range adj {
			pos, ok := slices.BinarySearch(s.sortedAdj[v], u)
			if !ok {
				// Graph edges are symmetric by construction; a miss here
				// would be a Graph invariant violation, not a protocol bug.
				panic(fmt.Sprintf("congest: edge %d-%d has no reverse entry", u, v))
			}
			back[i] = pos
		}
		s.edgeBack[u] = back
		s.outs[u] = newOutbox(u, adj)
	}
	for g := range s.inboxes {
		s.inboxes[g] = make([]Inbox, n)
		for u := 0; u < n; u++ {
			deg := len(s.sortedAdj[u])
			s.inboxes[g][u] = Inbox{msgs: make([]Payload, deg), has: make([]bool, deg)}
		}
	}
}

// Reset prepares the simulator for a fresh run over the same graph and
// program set: statistics restart at zero while the round buffers stay
// allocated. The programs themselves must be re-armed by the caller
// (e.g. uniformityNode.reset); Reset-then-Run is bit-identical to a
// newly constructed simulator because every round's buffers are cleared
// before use and all iteration is over sorted adjacency slices.
func (s *Simulator) Reset() {
	s.rounds, s.messagesSent, s.maxBitsInAMsg = 0, 0, 0
}

// Run executes rounds until every node has terminated or maxRounds is
// exhausted (an error: a correct protocol must terminate). The Inbox a
// program receives is reused between rounds — valid only inside Step.
func (s *Simulator) Run(maxRounds int) error {
	if maxRounds <= 0 {
		return fmt.Errorf("congest: maxRounds %d", maxRounds)
	}
	n := s.graph.N()
	s.ensureBuffers(n)
	done := s.done
	for i := range done {
		done[i] = false
	}
	inboxes := s.inboxes[0]
	for i := range inboxes {
		clear(inboxes[i].has)
	}
	nextGen := s.inboxes[1]
	remaining := n
	for round := 0; remaining > 0; round++ {
		if round >= maxRounds {
			return fmt.Errorf("congest: %d nodes still running after %d rounds", remaining, maxRounds)
		}
		s.rounds = round + 1
		next := nextGen
		for i := range next {
			clear(next[i].has)
		}
		for u := 0; u < n; u++ {
			if done[u] {
				continue
			}
			out := s.outs[u]
			out.reset()
			finished, err := s.programs[u].Step(round, inboxes[u], out)
			if err != nil {
				return fmt.Errorf("congest: node %d round %d: %w", u, round, err)
			}
			adj, back := s.sortedAdj[u], s.edgeBack[u]
			for pos, to := range adj {
				if !out.has[pos] {
					continue
				}
				p := out.msgs[pos]
				next[to].msgs[back[pos]] = p
				next[to].has[back[pos]] = true
				s.messagesSent++
				if b := bits.Len64(uint64(p)); b > s.maxBitsInAMsg {
					s.maxBitsInAMsg = b
				}
			}
			if finished {
				done[u] = true
				remaining--
			}
		}
		inboxes, nextGen = next, inboxes
	}
	return nil
}

// Rounds returns the number of rounds executed.
func (s *Simulator) Rounds() int { return s.rounds }

// MessagesSent returns the total number of edge-messages sent.
func (s *Simulator) MessagesSent() int { return s.messagesSent }

// MaxMessageBits returns the largest significant bit-length observed.
func (s *Simulator) MaxMessageBits() int { return s.maxBitsInAMsg }
