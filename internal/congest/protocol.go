package congest

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"sort"
	"sync"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// Message tags (low 3 payload bits); values ride in the upper bits.
const (
	tagExplore Payload = iota + 1 // BFS wave
	tagChild                      // "I adopted you as parent"
	tagNack                       // "I will not be your child"
	tagReport                     // convergecast: subtree score sum
	tagDecide                     // broadcast: the verdict bit
)

const tagBits = 3

func encode(tag Payload, value uint64) Payload { return tag | Payload(value<<tagBits) }

func decode(p Payload) (tag Payload, value uint64) {
	return p & (1<<tagBits - 1), uint64(p >> tagBits)
}

// neighborStatus tracks how an edge resolved during BFS construction.
type neighborStatus uint8

const (
	nbUnknown neighborStatus = iota
	nbParent
	nbChild
	nbNotChild
)

// uniformityNode is the per-node state machine of the tree-aggregation
// tester. All per-neighbor state is indexed by the neighbor's position
// in the ascending-sorted neighbor list — the same indexing the
// simulator's Inbox uses — so a trial's worth of steps allocates
// nothing (the previous map-backed status/oweNack/oweExplore and the
// per-step explorer slice were most of the CONGEST backend's per-trial
// allocations).
type uniformityNode struct {
	id        int
	root      bool
	threshold int    // referee threshold T (used by the root only)
	score     uint64 // this node's convergecast contribution (see Tester)

	neighbors  []int            // ascending neighbor ids
	status     []neighborStatus // by position
	oweNack    []bool           // by position
	oweExplore []bool           // by position
	explorers  []int            // per-step scratch: explorer positions

	parent      int // parent node id (not position); -1 until adopted
	adopted     bool
	waveSent    bool
	oweChild    bool
	childCount  int
	reportsIn   int
	scoreSum    uint64
	reportSent  bool
	verdict     bool
	verdictSeen bool

	// Result hook: the root writes the final verdict here.
	result *bool
}

var _ NodeProgram = (*uniformityNode)(nil)

//dut:coldpath once-per-node construction; scratch runs reuse the node via reset
func newUniformityNode(g *Graph, id int, root bool, threshold int, score uint64, result *bool) *uniformityNode {
	nbrs := g.Neighbors(id)
	sort.Ints(nbrs)
	n := &uniformityNode{
		id:         id,
		root:       root,
		threshold:  threshold,
		neighbors:  nbrs,
		status:     make([]neighborStatus, len(nbrs)),
		oweNack:    make([]bool, len(nbrs)),
		oweExplore: make([]bool, len(nbrs)),
		explorers:  make([]int, 0, len(nbrs)),
	}
	n.reset(score, result)
	return n
}

// reset rebinds the node for a fresh run — the per-trial inputs (local
// score and verdict sink) plus every piece of mutable protocol state —
// restoring exactly the state a newly-constructed node has. It lets a
// worker's scratch reuse the node set (sorted neighbor slices and maps
// included) across trials instead of rebuilding k state machines per
// round.
func (n *uniformityNode) reset(score uint64, result *bool) {
	n.score = score
	n.result = result
	clear(n.status) // nbUnknown is the zero status
	clear(n.oweNack)
	clear(n.oweExplore)
	n.parent = -1
	n.adopted = false
	n.waveSent = false
	n.oweChild = false
	n.childCount = 0
	n.reportsIn = 0
	n.scoreSum = 0
	n.reportSent = false
	n.verdict = false
	n.verdictSeen = false
	if n.root {
		n.adopted = true
		n.parent = n.id
		for pos := range n.oweExplore {
			n.oweExplore[pos] = true
		}
	}
}

// Step implements NodeProgram.
func (n *uniformityNode) Step(_ int, in Inbox, out *Outbox) (bool, error) {
	// 1. Digest the inbox.
	explorers := n.explorers[:0]
	for pos, from := range n.neighbors {
		p, ok := in.Get(pos)
		if !ok {
			continue
		}
		tag, value := decode(p)
		switch tag {
		case tagExplore:
			explorers = append(explorers, pos)
		case tagChild:
			if n.status[pos] == nbChild {
				return false, fmt.Errorf("duplicate CHILD from %d", from)
			}
			n.status[pos] = nbChild
			n.childCount++
			n.oweExplore[pos] = false
		case tagNack:
			n.status[pos] = nbNotChild
			n.oweExplore[pos] = false
		case tagReport:
			if n.status[pos] != nbChild {
				return false, fmt.Errorf("REPORT from non-child %d", from)
			}
			n.reportsIn++
			n.scoreSum += value
		case tagDecide:
			if from != n.parent {
				return false, fmt.Errorf("DECIDE from non-parent %d", from)
			}
			n.verdict = value&1 == 1
			n.verdictSeen = true
		default:
			return false, fmt.Errorf("unknown tag %d from %d", tag, from)
		}
	}
	n.explorers = explorers // keep the grown capacity for the next step

	// 2. Adoption: pick the smallest explorer as parent; everyone else who
	// explored is resolved as not-a-child and owed a NACK. explorers holds
	// positions in ascending order, which is ascending id order — no sort
	// needed.
	for _, pos := range explorers {
		if !n.adopted {
			n.adopted = true
			n.parent = n.neighbors[pos]
			n.status[pos] = nbParent
			n.oweChild = true
			n.oweExplore[pos] = false
			// Schedule the wave to the remaining unknown neighbors.
			for v := range n.neighbors {
				if n.status[v] == nbUnknown {
					n.oweExplore[v] = true
				}
			}
			continue
		}
		if n.status[pos] == nbUnknown || n.status[pos] == nbNotChild {
			// An explorer already has its own parent; it can never be our
			// child.
			n.status[pos] = nbNotChild
			n.oweNack[pos] = true
			n.oweExplore[pos] = false
		}
	}

	// 3. Send: one message per neighbor per round, with NACK/CHILD taking
	// precedence over a now-pointless EXPLORE.
	if n.oweChild {
		if err := out.Send(n.parent, encode(tagChild, 0)); err != nil {
			return false, err
		}
		n.oweChild = false
	}
	for pos, v := range n.neighbors {
		if !n.oweNack[pos] {
			continue
		}
		if err := out.Send(v, encode(tagNack, 0)); err != nil {
			return false, err
		}
		n.oweNack[pos] = false
		n.oweExplore[pos] = false
	}
	if n.adopted {
		for pos, v := range n.neighbors {
			if !n.oweExplore[pos] {
				continue
			}
			if err := out.Send(v, encode(tagExplore, 0)); err != nil {
				return false, err
			}
			n.oweExplore[pos] = false
		}
		n.waveSent = true
	}

	// 4. Convergecast once the subtree is accounted for. If a control
	// message (CHILD) already went to the parent this round, wait one
	// round rather than double-send on the edge.
	if n.adopted && n.waveSent && !n.reportSent && n.allResolved() &&
		n.reportsIn == n.childCount && (n.root || !out.Queued(n.parent)) {
		total := n.scoreSum + n.score
		if n.root {
			accept := total < uint64(n.threshold)
			n.verdict = accept
			n.verdictSeen = true
			*n.result = accept
		} else {
			if err := out.Send(n.parent, encode(tagReport, total)); err != nil {
				return false, err
			}
		}
		n.reportSent = true
	}

	// 5. Broadcast the verdict down the tree and terminate.
	if n.verdictSeen {
		bit := uint64(0)
		if n.verdict {
			bit = 1
		}
		for pos, v := range n.neighbors {
			if n.status[pos] == nbChild {
				if err := out.Send(v, encode(tagDecide, bit)); err != nil {
					return false, err
				}
			}
		}
		return true, nil
	}
	return false, nil
}

// allResolved reports whether every incident edge has been classified.
func (n *uniformityNode) allResolved() bool {
	for _, st := range n.status {
		if st == nbUnknown {
			return false
		}
	}
	return true
}

// Tester runs distributed uniformity testing in the CONGEST model: the
// nodes of a connected graph each draw q samples, vote with a shared
// core.LocalRule, aggregate the votes up a BFS tree rooted at Root, apply
// the threshold rule there, and broadcast the verdict. It implements
// core.Protocol, so the same measurement harness drives it.
//
// The convergecast sums a per-node score. With a single-bit rule (the
// classic mode) the score is the rejection indicator — 1 iff the node
// voted reject — and the root rejects iff at least T nodes rejected,
// matching core.BitReferee{ThresholdRule{T}}. With an r-bit rule the
// score is the raw message value and the root rejects iff the values
// sum to at least T, matching core.SumThresholdReferee{Bits: r, T: T};
// this is how r-bit votes ride the BFS tree without widening any edge
// beyond the value sum's bit length (validated against MessageBits at
// construction).
type Tester struct {
	graph *Graph
	root  int
	q     int
	rule  core.LocalRule
	t     int
	sum   bool

	// Stats from the last run; guarded so concurrent Monte-Carlo
	// estimation over the same Tester stays race-free.
	statsMu      sync.Mutex
	lastRounds   int
	lastMessages int
	lastMaxBits  int
}

var _ core.Protocol = (*Tester)(nil)

// TesterConfig configures NewTester.
type TesterConfig struct {
	// Graph is the communication graph; must be connected.
	Graph *Graph
	// Root is the aggregation root (the "decision" node).
	Root int
	// Q is the per-node sample count.
	Q int
	// Rule is the shared local rule. A single-bit rule aggregates
	// rejection counts (the classic mode); a wider rule implies Sum.
	Rule core.LocalRule
	// T is the threshold applied at the root; 0 selects
	// core.DefaultThresholdT(k) in the classic mode. Sum mode has no
	// sensible default and requires an explicit T (see
	// core.QuantizedSumThreshold for the collision rule's).
	T int
	// Sum selects value-sum aggregation: each node's convergecast score
	// is its raw message value instead of its rejection indicator, and
	// the root rejects iff the sum is at least T. Implied (and required)
	// when Rule.Bits() > 1.
	Sum bool
}

// NewTester validates the configuration.
func NewTester(cfg TesterConfig) (*Tester, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("congest: nil graph")
	}
	if !cfg.Graph.Connected() {
		return nil, fmt.Errorf("congest: graph is not connected")
	}
	if cfg.Root < 0 || cfg.Root >= cfg.Graph.N() {
		return nil, fmt.Errorf("congest: root %d outside %d nodes", cfg.Root, cfg.Graph.N())
	}
	if cfg.Q < 0 {
		return nil, fmt.Errorf("congest: %d samples per node", cfg.Q)
	}
	if cfg.Rule == nil {
		return nil, fmt.Errorf("congest: nil local rule")
	}
	msgBits := cfg.Rule.Bits()
	if msgBits < 1 || msgBits > 64 {
		return nil, fmt.Errorf("congest: rule uses %d message bits, want 1..64", msgBits)
	}
	sum := cfg.Sum || msgBits > 1
	n := cfg.Graph.N()
	t := cfg.T
	var maxTotal uint64
	if sum {
		// Every convergecast value (a subtree's score sum, at most
		// n*(2^r-1)) must fit the edge bandwidth after the tag shift.
		if msgBits+bits.Len(uint(n))+tagBits > MessageBits {
			return nil, fmt.Errorf("congest: score sums over %d nodes of %d-bit values exceed the %d-bit edge bandwidth",
				n, msgBits, MessageBits)
		}
		maxTotal = uint64(n) * (1<<msgBits - 1)
		if t == 0 {
			return nil, fmt.Errorf("congest: sum aggregation needs an explicit threshold T")
		}
		if t < 1 || uint64(t) > maxTotal+1 {
			return nil, fmt.Errorf("congest: sum threshold %d outside [1,%d]", t, maxTotal+1)
		}
	} else {
		if t == 0 {
			t = core.DefaultThresholdT(n)
		}
		if t < 1 || t > n {
			return nil, fmt.Errorf("congest: threshold %d outside [1,%d]", t, n)
		}
	}
	return &Tester{graph: cfg.Graph, root: cfg.Root, q: cfg.Q, rule: cfg.Rule, t: t, sum: sum}, nil
}

// Players implements core.Protocol.
func (t *Tester) Players() int { return t.graph.N() }

// MaxSamplesPerPlayer implements core.Protocol.
func (t *Tester) MaxSamplesPerPlayer() int { return t.q }

// LastRounds returns the round count of the most recent Run.
func (t *Tester) LastRounds() int {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.lastRounds
}

// LastMessages returns the message count of the most recent Run.
func (t *Tester) LastMessages() int {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.lastMessages
}

// LastMaxMessageBits returns the widest message of the most recent Run.
func (t *Tester) LastMaxMessageBits() int {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.lastMaxBits
}

// Run implements core.Protocol: draw samples, vote, aggregate, decide.
// The round's public-coin seed is drawn from rng; everything else derives
// from that seed via RunSeeded.
func (t *Tester) Run(sampler dist.Sampler, rng *rand.Rand) (bool, error) {
	if rng == nil {
		return false, fmt.Errorf("congest: nil rng")
	}
	return t.RunSeeded(sampler, rng.Uint64())
}

// RunSeeded executes one CONGEST round with an explicit public-coin seed.
// Node u draws its samples and private coins from engine.NodeRNG(shared,
// u) — the same derivation the in-process SMP simulator and the networked
// nodes apply — so the votes entering the tree aggregation are
// bit-identical to the other backends' for the same seed.
func (t *Tester) RunSeeded(sampler dist.Sampler, shared uint64) (bool, error) {
	verdict, sim, err := t.runSeeded(sampler, shared)
	if err != nil {
		return false, err
	}
	t.statsMu.Lock()
	t.lastRounds = sim.Rounds()
	t.lastMessages = sim.MessagesSent()
	t.lastMaxBits = sim.MaxMessageBits()
	t.statsMu.Unlock()
	return verdict, nil
}

// runScratch is one worker's reusable per-run state: the sample batch
// buffer, the reseedable per-node generator, the program slice handed
// to the simulator, and — amortized across every run on this worker —
// the per-node state machines and the simulator with its round buffers.
// Nodes are reset (not rebuilt) per run; reset restores exactly the
// fresh-construction state, so scratch runs stay bit-identical to
// allocating ones.
type runScratch struct {
	buf      []int
	rng      *engine.ReusableRNG
	programs []NodeProgram
	nodes    []*uniformityNode
	sim      *Simulator
	// verdict is the root's result sink. It lives on the scratch (not the
	// stack of runSeededScratch) because the nodes retain the pointer
	// across trials — a local would escape to a fresh heap allocation on
	// every run.
	verdict bool
}

// newScratch sizes a runScratch for this tester.
func (t *Tester) newScratch() *runScratch {
	return &runScratch{
		buf:      make([]int, t.q),
		rng:      engine.NewReusableRNG(),
		programs: make([]NodeProgram, t.graph.N()),
	}
}

// runSeeded is the shared-state-free core of RunSeeded: it returns the
// simulator so callers (the engine backend) can read per-run statistics
// without racing on the Tester's last* fields.
func (t *Tester) runSeeded(sampler dist.Sampler, shared uint64) (bool, *Simulator, error) {
	return t.runSeededScratch(sampler, shared, t.newScratch())
}

// runSeededScratch is runSeeded over a caller-owned scratch: node-side
// sampling goes through the batched dist.SampleInto into the reused
// buffer, and each node's stream comes from the scratch's reseeded
// generator — exactly the engine.NodeRNG stream, so scratch runs are
// bit-identical to allocating ones.
func (t *Tester) runSeededScratch(sampler dist.Sampler, shared uint64, sc *runScratch) (bool, *Simulator, error) {
	if sampler == nil {
		return false, nil, fmt.Errorf("congest: nil sampler")
	}
	n := t.graph.N()
	sc.verdict = false
	if sc.nodes == nil {
		sc.nodes = make([]*uniformityNode, n)
		for u := range sc.nodes {
			sc.nodes[u] = newUniformityNode(t.graph, u, u == t.root, t.t, 0, nil)
		}
	}
	msgBits := t.rule.Bits()
	programs := sc.programs
	for u := 0; u < n; u++ {
		rng := sc.rng.SeedNode(shared, u)
		dist.SampleInto(sampler, sc.buf, rng)
		msg, err := t.rule.Message(u, sc.buf, shared, rng)
		if err != nil {
			return false, nil, fmt.Errorf("congest: node %d vote: %w", u, err)
		}
		var score uint64
		if t.sum {
			if msgBits < 64 && msg >= 1<<msgBits {
				return false, nil, fmt.Errorf("congest: node %d message %#x wider than the rule's %d bits", u, uint64(msg), msgBits)
			}
			score = uint64(msg)
		} else if !msg.Bit() {
			score = 1
		}
		node := sc.nodes[u]
		node.reset(score, &sc.verdict)
		programs[u] = node
	}
	if sc.sim == nil {
		sim, err := NewSimulator(t.graph, programs)
		if err != nil {
			return false, nil, err
		}
		sc.sim = sim
	} else {
		sc.sim.Reset()
	}
	// BFS + convergecast + broadcast each take O(diameter) rounds; 8D+16
	// is a generous envelope that still catches deadlocks.
	maxRounds := 8*n + 16
	if err := sc.sim.Run(maxRounds); err != nil {
		return false, nil, err
	}
	return sc.verdict, sc.sim, nil
}
