package congest

import (
	"fmt"
	"math/rand/v2"
)

// Graph is an immutable undirected graph on nodes 0..N-1.
type Graph struct {
	adj [][]int
}

// NewGraph builds a graph from an edge list; self-loops and duplicate
// edges are rejected.
func NewGraph(nodes int, edges [][2]int) (*Graph, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("congest: graph with %d nodes", nodes)
	}
	adj := make([][]int, nodes)
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= nodes || v < 0 || v >= nodes {
			return nil, fmt.Errorf("congest: edge (%d,%d) outside %d nodes", u, v, nodes)
		}
		if u == v {
			return nil, fmt.Errorf("congest: self-loop at %d", u)
		}
		key := [2]int{min(u, v), max(u, v)}
		if seen[key] {
			return nil, fmt.Errorf("congest: duplicate edge (%d,%d)", u, v)
		}
		seen[key] = true
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	return &Graph{adj: adj}, nil
}

// N returns the node count.
func (g *Graph) N() int { return len(g.adj) }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns a copy of u's adjacency list.
func (g *Graph) Neighbors(u int) []int {
	cp := make([]int, len(g.adj[u]))
	copy(cp, g.adj[u])
	return cp
}

// Edges returns the edge count.
func (g *Graph) Edges() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	dist, _ := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// BFS returns distances from root (-1 for unreachable) and BFS-tree
// parents (parent[root] = root; -1 for unreachable).
func (g *Graph) BFS(root int) (dist []int, parent []int) {
	n := g.N()
	dist = make([]int, n)
	parent = make([]int, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	if root < 0 || root >= n {
		return dist, parent
	}
	dist[root] = 0
	parent[root] = root
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return dist, parent
}

// Diameter returns the exact diameter (max eccentricity) of a connected
// graph, or -1 if disconnected. O(N * (N + E)).
func (g *Graph) Diameter() int {
	diam := 0
	for u := 0; u < g.N(); u++ {
		dist, _ := g.BFS(u)
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Builders.

// Path returns the path graph 0-1-...-(n-1).
func Path(n int) (*Graph, error) {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return NewGraph(n, edges)
}

// Ring returns the cycle on n >= 3 nodes.
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("congest: ring needs n >= 3, got %d", n)
	}
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return NewGraph(n, edges)
}

// Star returns the star with center 0.
func Star(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("congest: star needs n >= 2, got %d", n)
	}
	edges := make([][2]int, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return NewGraph(n, edges)
}

// Complete returns K_n.
func Complete(n int) (*Graph, error) {
	edges := make([][2]int, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return NewGraph(n, edges)
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) (*Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("congest: grid %dx%d", rows, cols)
	}
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return NewGraph(rows*cols, edges)
}

// RandomTree returns a uniformly random labelled tree on n nodes (random
// Prüfer sequence).
func RandomTree(n int, rng *rand.Rand) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("congest: tree with %d nodes", n)
	}
	if n == 1 {
		return NewGraph(1, nil)
	}
	if n == 2 {
		return NewGraph(2, [][2]int{{0, 1}})
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.IntN(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	// Standard linear-time decoding: ptr scans for the smallest available
	// leaf; a node freshly reduced to degree 1 below ptr short-circuits the
	// scan. Consumed leaves get degree 0 and are skipped forever.
	var edges [][2]int
	ptr := 0
	leaf := -1
	for _, v := range prufer {
		if leaf < 0 {
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
			ptr++
		}
		edges = append(edges, [2]int{leaf, v})
		degree[leaf] = 0
		degree[v]--
		if degree[v] == 1 && v < ptr {
			leaf = v
		} else {
			leaf = -1
		}
	}
	// Exactly two degree-1 nodes remain; join them.
	last := make([]int, 0, 2)
	for v := 0; v < n; v++ {
		if degree[v] == 1 {
			last = append(last, v)
		}
	}
	if len(last) != 2 {
		return nil, fmt.Errorf("congest: Prüfer decode left %d leaves", len(last))
	}
	edges = append(edges, [2]int{last[0], last[1]})
	return NewGraph(n, edges)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
