//go:build race

package congest

// raceEnabled reports whether the race detector instruments this build;
// allocation-count guards skip themselves when it does.
const raceEnabled = true
