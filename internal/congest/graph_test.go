package congest

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func testRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x123456789))
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(0, nil); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewGraph(2, [][2]int{{0, 2}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := NewGraph(2, [][2]int{{1, 1}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := NewGraph(3, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestGraphBasics(t *testing.T) {
	g, err := NewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.Edges() != 4 {
		t.Errorf("N=%d E=%d", g.N(), g.Edges())
	}
	if g.Degree(0) != 2 {
		t.Errorf("deg(0)=%d", g.Degree(0))
	}
	nbrs := g.Neighbors(0)
	nbrs[0] = 99
	if g.Neighbors(0)[0] == 99 {
		t.Error("Neighbors aliased internal state")
	}
	if !g.Connected() {
		t.Error("ring not connected")
	}
	if g.Diameter() != 2 {
		t.Errorf("C4 diameter = %d", g.Diameter())
	}
}

func TestBFS(t *testing.T) {
	g, err := Path(5)
	if err != nil {
		t.Fatal(err)
	}
	dist, parent := g.BFS(0)
	for i := 0; i < 5; i++ {
		if dist[i] != i {
			t.Errorf("dist[%d]=%d", i, dist[i])
		}
	}
	if parent[0] != 0 || parent[3] != 2 {
		t.Errorf("parents: %v", parent)
	}
	// Disconnected case.
	g2, err := NewGraph(3, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	dist2, parent2 := g2.BFS(0)
	if dist2[2] != -1 || parent2[2] != -1 {
		t.Errorf("unreachable node got dist %d parent %d", dist2[2], parent2[2])
	}
	if g2.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if g2.Diameter() != -1 {
		t.Errorf("disconnected diameter = %d", g2.Diameter())
	}
}

func TestBuilders(t *testing.T) {
	tests := []struct {
		name     string
		mk       func() (*Graph, error)
		nodes    int
		edges    int
		diameter int
	}{
		{"path", func() (*Graph, error) { return Path(6) }, 6, 5, 5},
		{"ring", func() (*Graph, error) { return Ring(6) }, 6, 6, 3},
		{"star", func() (*Graph, error) { return Star(6) }, 6, 5, 2},
		{"complete", func() (*Graph, error) { return Complete(5) }, 5, 10, 1},
		{"grid", func() (*Graph, error) { return Grid(3, 4) }, 12, 17, 5},
		{"single", func() (*Graph, error) { return Path(1) }, 1, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := tt.mk()
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != tt.nodes || g.Edges() != tt.edges {
				t.Errorf("N=%d E=%d, want %d %d", g.N(), g.Edges(), tt.nodes, tt.edges)
			}
			if !g.Connected() {
				t.Error("not connected")
			}
			if d := g.Diameter(); d != tt.diameter {
				t.Errorf("diameter = %d, want %d", d, tt.diameter)
			}
		})
	}
	if _, err := Ring(2); err == nil {
		t.Error("ring(2) accepted")
	}
	if _, err := Star(1); err == nil {
		t.Error("star(1) accepted")
	}
	if _, err := Grid(0, 3); err == nil {
		t.Error("grid(0,3) accepted")
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := testRand(1)
	for _, n := range []int{1, 2, 3, 4, 10, 50, 200} {
		for trial := 0; trial < 5; trial++ {
			g, err := RandomTree(n, rng)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if g.N() != n || g.Edges() != n-1 {
				t.Fatalf("n=%d: N=%d E=%d", n, g.N(), g.Edges())
			}
			if !g.Connected() {
				t.Fatalf("n=%d: random tree disconnected", n)
			}
		}
	}
	if _, err := RandomTree(0, rng); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestQuickRandomTreeProperties(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		g, err := RandomTree(n, testRand(seed))
		if err != nil {
			return false
		}
		return g.N() == n && g.Edges() == n-1 && g.Connected()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRandomTreeCoversAllTreesOnThreeNodes(t *testing.T) {
	// On 3 nodes there are exactly 3 labelled trees (by center). A uniform
	// generator hits each about a third of the time.
	rng := testRand(2)
	counts := map[int]int{}
	const trials = 3000
	for i := 0; i < trials; i++ {
		g, err := RandomTree(3, rng)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 3; v++ {
			if g.Degree(v) == 2 {
				counts[v]++
			}
		}
	}
	for v := 0; v < 3; v++ {
		frac := float64(counts[v]) / trials
		if frac < 0.28 || frac > 0.39 {
			t.Errorf("center %d frequency %v, want ~1/3", v, frac)
		}
	}
}
