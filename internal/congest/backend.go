package congest

import (
	"context"
	"fmt"

	"github.com/distributed-uniformity/dut/internal/engine"
)

// testerBackend runs each engine trial as one CONGEST execution: votes
// derived from engine.NodeRNG(shared, node), then BFS-tree aggregation
// on the simulator. It bypasses the Tester's shared last* statistics
// fields (each trial reads its own simulator), so concurrent trials on
// the engine's worker pool never contend.
type testerBackend struct {
	t *Tester
}

var (
	_ engine.ScratchBackend = (*testerBackend)(nil)
	_ engine.BatchBackend   = (*testerBackend)(nil)
)

// NewBackend adapts a Tester to the engine's Backend interface.
func NewBackend(t *Tester) (engine.Backend, error) {
	if t == nil {
		return nil, fmt.Errorf("congest: nil tester")
	}
	return &testerBackend{t: t}, nil
}

// Players implements engine.Backend.
func (b *testerBackend) Players() int { return b.t.Players() }

// NewScratch implements engine.ScratchBackend: per-worker sample buffer,
// reseedable node generator and program slice.
func (b *testerBackend) NewScratch() any { return b.t.newScratch() }

// RunRound implements engine.Backend.
func (b *testerBackend) RunRound(ctx context.Context, spec engine.RoundSpec) (engine.RoundResult, error) {
	return b.RunRoundScratch(ctx, spec, b.t.newScratch())
}

// RunRoundsScratch implements engine.BatchBackend: the scratch path
// looped, with the per-trial node-program construction and the
// simulator's round buffers amortized across the whole batch (the
// scratch holds reset-able node state machines and a reusable
// simulator), and the per-trial overheads (context check, clock reads)
// hoisted to one per chunk — the chunk's elapsed time is spread over
// its trials remainder-exactly by engine.SpreadWall. Verdicts are
// bit-identical to the unbatched path — the per-trial derivations are
// unchanged, only the allocations moved.
//
//dut:hotpath
func (b *testerBackend) RunRoundsScratch(ctx context.Context, scratch any, specs []engine.RoundSpec, _ int, out []engine.RoundResult) error {
	if len(out) != len(specs) {
		return fmt.Errorf("congest: %d results for %d specs", len(out), len(specs))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	sc, ok := scratch.(*runScratch)
	if !ok {
		return fmt.Errorf("congest: foreign scratch %T", scratch)
	}
	n := b.t.Players()
	sw := engine.StartStopwatch()
	for i, spec := range specs {
		shared := engine.SharedSeed(spec.Seed, spec.Trial)
		accept, sim, err := b.t.runSeededScratch(spec.Sampler, shared, sc)
		if err != nil {
			return err
		}
		out[i] = engine.RoundResult{
			Verdict:    accept,
			Votes:      n,
			Samples:    n * b.t.q,
			Messages:   sim.MessagesSent(),
			CommRounds: sim.Rounds(),
		}
	}
	engine.SpreadWall(out, sw.Elapsed())
	return nil
}

// RunRoundScratch implements engine.ScratchBackend.
//
//dut:hotpath
func (b *testerBackend) RunRoundScratch(ctx context.Context, spec engine.RoundSpec, scratch any) (engine.RoundResult, error) {
	if err := ctx.Err(); err != nil {
		return engine.RoundResult{}, err
	}
	sc, ok := scratch.(*runScratch)
	if !ok {
		return engine.RoundResult{}, fmt.Errorf("congest: foreign scratch %T", scratch)
	}
	sw := engine.StartStopwatch()
	shared := engine.SharedSeed(spec.Seed, spec.Trial)
	accept, sim, err := b.t.runSeededScratch(spec.Sampler, shared, sc)
	if err != nil {
		return engine.RoundResult{}, err
	}
	n := b.t.Players()
	return engine.RoundResult{
		Verdict:    accept,
		Votes:      n,
		Samples:    n * b.t.q,
		Messages:   sim.MessagesSent(),
		CommRounds: sim.Rounds(),
		Wall:       sw.Elapsed(),
	}, nil
}
