package congest

import (
	"context"
	"math/rand/v2"
	"testing"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// Allocation guards for the CONGEST scratch path: a steady-state trial —
// sampling, voting, BFS-tree aggregation on the simulator, verdict
// broadcast — must not touch the allocator at all. Every piece of
// per-trial state (node status slices, outbox/inbox slots, explorer
// scratch, the verdict sink) lives on the worker's reusable scratch.

func allocTester(t *testing.T) *Tester {
	t.Helper()
	g, err := Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	rule := core.RuleFunc(func(player int, samples []int, shared uint64, private *rand.Rand) (core.Message, error) {
		h := shared ^ uint64(player)*0x9e3779b97f4a7c15
		for _, s := range samples {
			h = h*1099511628211 + uint64(s)
		}
		h ^= private.Uint64()
		if h&1 == 0 {
			return core.Accept, nil
		}
		return core.Reject, nil
	})
	tester, err := NewTester(TesterConfig{Graph: g, Root: 0, Q: 3, Rule: rule, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	return tester
}

func allocSampler(t *testing.T) dist.Sampler {
	t.Helper()
	u, err := dist.Uniform(16)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dist.NewAliasSampler(u)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCONGESTScratchRunAllocs holds the steady-state seeded run to zero
// allocations (the pre-position-indexed simulator spent 17 per trial on
// status maps, explorer slices and the escaping verdict).
func TestCONGESTScratchRunAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	tester := allocTester(t)
	sampler := allocSampler(t)
	sc := tester.newScratch()
	shared := uint64(0)
	allocs := testing.AllocsPerRun(200, func() {
		shared++
		if _, _, err := tester.runSeededScratch(sampler, shared, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("CONGEST scratch run allocates %.2f per trial, want 0", allocs)
	}
}

// TestCONGESTBatchChunkAllocs holds the full batched backend chunk to
// zero steady-state allocations per trial.
func TestCONGESTBatchChunkAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	b, err := NewBackend(allocTester(t))
	if err != nil {
		t.Fatal(err)
	}
	bb, ok := b.(engine.BatchBackend)
	if !ok {
		t.Fatal("CONGEST backend does not implement engine.BatchBackend")
	}
	sampler := allocSampler(t)
	const chunk = 16
	specs := make([]engine.RoundSpec, chunk)
	out := make([]engine.RoundResult, chunk)
	for i := range specs {
		specs[i] = engine.RoundSpec{Trial: i, Seed: 0xfeedface, Sampler: sampler}
	}
	scratch := bb.NewScratch()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(50, func() {
		if err := bb.RunRoundsScratch(ctx, scratch, specs, chunk, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("CONGEST batched chunk allocates %.2f per chunk, want 0", allocs)
	}
}
