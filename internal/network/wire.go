package network

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol constants.
const (
	// Magic prefixes every frame, catching cross-protocol connections.
	Magic = uint16(0xD07A)
	// Version is the wire protocol version.
	Version = uint8(1)
	// MaxFrameSize bounds a frame's payload; every legal message is tiny.
	MaxFrameSize = 64
)

// FrameType enumerates the message kinds. Values are wire-stable.
type FrameType uint8

// Frame types, in round order.
const (
	FrameHello FrameType = iota + 1
	FrameRound
	FrameVote
	FrameVerdict
	FrameFinish
)

// String implements fmt.Stringer for diagnostics.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "HELLO"
	case FrameRound:
		return "ROUND"
	case FrameVote:
		return "VOTE"
	case FrameVerdict:
		return "VERDICT"
	case FrameFinish:
		return "FINISH"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// Hello is the player's first frame.
type Hello struct {
	Player uint32
	Bits   uint8 // message bits the player's rule uses
}

// Round carries the public-coin seed for the round.
type Round struct {
	Seed uint64
}

// Vote carries the player's message to the referee.
type Vote struct {
	Player  uint32
	Message uint64
}

// Verdict is the referee's broadcast decision.
type Verdict struct {
	Accept bool
}

// Finish tells a player the session is over (multi-round sessions only).
type Finish struct{}

// frame layout: magic(2) version(1) type(1) length(4) payload(length).
const headerSize = 8

// writeFrame writes one frame.
func writeFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("network: payload of %d bytes exceeds limit %d", len(payload), MaxFrameSize)
	}
	buf := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint16(buf[0:2], Magic)
	buf[2] = Version
	buf[3] = byte(t)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(payload)))
	copy(buf[headerSize:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame, validating magic, version and size.
func readFrame(r io.Reader) (FrameType, []byte, error) {
	var header [headerSize]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return 0, nil, err
	}
	if got := binary.BigEndian.Uint16(header[0:2]); got != Magic {
		return 0, nil, fmt.Errorf("network: bad magic %#x", got)
	}
	if header[2] != Version {
		return 0, nil, fmt.Errorf("network: unsupported protocol version %d", header[2])
	}
	t := FrameType(header[3])
	size := binary.BigEndian.Uint32(header[4:8])
	if size > MaxFrameSize {
		return 0, nil, fmt.Errorf("network: oversized frame of %d bytes", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return t, payload, nil
}

// WriteHello sends a HELLO frame.
func WriteHello(w io.Writer, h Hello) error {
	var p [5]byte
	binary.BigEndian.PutUint32(p[0:4], h.Player)
	p[4] = h.Bits
	return writeFrame(w, FrameHello, p[:])
}

// WriteRound sends a ROUND frame.
func WriteRound(w io.Writer, r Round) error {
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], r.Seed)
	return writeFrame(w, FrameRound, p[:])
}

// WriteVote sends a VOTE frame.
func WriteVote(w io.Writer, v Vote) error {
	var p [12]byte
	binary.BigEndian.PutUint32(p[0:4], v.Player)
	binary.BigEndian.PutUint64(p[4:12], v.Message)
	return writeFrame(w, FrameVote, p[:])
}

// WriteVerdict sends a VERDICT frame.
func WriteVerdict(w io.Writer, v Verdict) error {
	p := []byte{0}
	if v.Accept {
		p[0] = 1
	}
	return writeFrame(w, FrameVerdict, p)
}

// WriteFinish sends a FINISH frame.
func WriteFinish(w io.Writer) error {
	return writeFrame(w, FrameFinish, nil)
}

// ReadFrame reads and decodes the next frame into one of the typed
// structs; the first return carries the type tag.
func ReadFrame(r io.Reader) (FrameType, any, error) {
	t, payload, err := readFrame(r)
	if err != nil {
		return 0, nil, err
	}
	switch t {
	case FrameHello:
		if len(payload) != 5 {
			return 0, nil, fmt.Errorf("network: HELLO payload of %d bytes", len(payload))
		}
		return t, Hello{Player: binary.BigEndian.Uint32(payload[0:4]), Bits: payload[4]}, nil
	case FrameRound:
		if len(payload) != 8 {
			return 0, nil, fmt.Errorf("network: ROUND payload of %d bytes", len(payload))
		}
		return t, Round{Seed: binary.BigEndian.Uint64(payload)}, nil
	case FrameVote:
		if len(payload) != 12 {
			return 0, nil, fmt.Errorf("network: VOTE payload of %d bytes", len(payload))
		}
		return t, Vote{
			Player:  binary.BigEndian.Uint32(payload[0:4]),
			Message: binary.BigEndian.Uint64(payload[4:12]),
		}, nil
	case FrameVerdict:
		if len(payload) != 1 {
			return 0, nil, fmt.Errorf("network: VERDICT payload of %d bytes", len(payload))
		}
		// Strict encoding: only 0 and 1 are legal. Anything else is a
		// corrupted or malicious frame, not a reject vote.
		if payload[0] > 1 {
			return 0, nil, fmt.Errorf("network: malformed VERDICT byte %#x", payload[0])
		}
		return t, Verdict{Accept: payload[0] == 1}, nil
	case FrameFinish:
		if len(payload) != 0 {
			return 0, nil, fmt.Errorf("network: FINISH payload of %d bytes", len(payload))
		}
		return t, Finish{}, nil
	default:
		return 0, nil, fmt.Errorf("network: unknown frame type %d", uint8(t))
	}
}

// expectFrame reads the next frame and requires a specific type.
func expectFrame[T any](r io.Reader, want FrameType) (T, error) {
	var zero T
	t, msg, err := ReadFrame(r)
	if err != nil {
		return zero, err
	}
	if t != want {
		return zero, fmt.Errorf("network: expected %v, got %v", want, t)
	}
	typed, ok := msg.(T)
	if !ok {
		return zero, fmt.Errorf("network: frame %v decoded to unexpected type %T", t, msg)
	}
	return typed, nil
}
