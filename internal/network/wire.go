package network

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

// Protocol constants.
const (
	// Magic prefixes every frame, catching cross-protocol connections.
	Magic = uint16(0xD07A)
	// Version is the wire protocol version.
	Version = uint8(1)
	// MaxFrameSize bounds a single-round frame's payload; every legal
	// single-round message is tiny. Batch frames have their own bound,
	// derived from MaxBatchTrials (see maxPayload).
	MaxFrameSize = 64
	// MaxBatchTrials bounds the trial count of one batch frame. It caps
	// the memory a malicious length prefix can make the decoder allocate
	// while still amortizing the per-frame synchronization well past the
	// point of diminishing returns.
	MaxBatchTrials = 1024
	// MaxShardPlayers bounds one aggregator's shard membership (AGG_HELLO
	// and the presence accounting of the reduced frames). It is the
	// decoder's allocation cap for membership lists, far above any shard a
	// balanced tree would produce.
	MaxShardPlayers = 1 << 17
	// MaxAggPlaneWords bounds the vote-plane words one AGG_PLANES frame
	// may carry (present players x message bits x bitset words). Opaque
	// referees at shard sizes past this cap must shard wider; the bound
	// keeps the decoder's largest allocation at 8 MiB instead of the
	// structural gigabyte worst case.
	MaxAggPlaneWords = 1 << 20
	// MaxAggShards bounds the shard count an AGG_VERDICT's present-count
	// echo vector may cover: the decoder's allocation cap for the vector,
	// far above any tree a root could usefully fan out to (the bench
	// ceiling is 32 aggregators over 100k players).
	MaxAggShards = 1 << 10
)

// FrameType enumerates the message kinds. Values are wire-stable.
type FrameType uint8

// Frame types, in round order. The batch frames (6..8) are the
// multi-trial counterparts of ROUND/VOTE/VERDICT: one frame carries up
// to MaxBatchTrials trials, identified by a batch id the voter echoes.
// VOTE_BATCH_R (9) is the r-bit generalization of VOTE_BATCH: r packed
// bit-planes instead of one. VOTE_BATCH remains the canonical encoding
// for 1-bit rules, so r = 1 sessions are byte-identical to the classic
// protocol.
// The aggregator frames (10..13) carry the two hops of the two-tier
// referee tree: AGG_HELLO announces an aggregator's shard membership,
// AGG_SUM carries a shard's bit-sliced partial rejection / value sums
// for shaped referees, AGG_PLANES forwards the shard's packed vote
// planes verbatim for opaque referees, and AGG_VERDICT is the root ->
// L1 mirror of VERDICT_BATCH: one strictly-validated frame per
// aggregator per batch, carrying the packed verdicts plus the root's
// per-shard present-count accounting for the aggregator to audit
// before it relays the verdicts to its shard.
const (
	FrameHello FrameType = iota + 1
	FrameRound
	FrameVote
	FrameVerdict
	FrameFinish
	FrameRoundBatch
	FrameVoteBatch
	FrameVerdictBatch
	FrameVoteBatchR
	FrameAggHello
	FrameAggSum
	FrameAggPlanes
	FrameAggVerdict
)

// String implements fmt.Stringer for diagnostics.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "HELLO"
	case FrameRound:
		return "ROUND"
	case FrameVote:
		return "VOTE"
	case FrameVerdict:
		return "VERDICT"
	case FrameFinish:
		return "FINISH"
	case FrameRoundBatch:
		return "ROUND_BATCH"
	case FrameVoteBatch:
		return "VOTE_BATCH"
	case FrameVerdictBatch:
		return "VERDICT_BATCH"
	case FrameVoteBatchR:
		return "VOTE_BATCH_R"
	case FrameAggHello:
		return "AGG_HELLO"
	case FrameAggSum:
		return "AGG_SUM"
	case FrameAggPlanes:
		return "AGG_PLANES"
	case FrameAggVerdict:
		return "AGG_VERDICT"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// Hello is the player's first frame.
type Hello struct {
	Player uint32
	Bits   uint8 // message bits the player's rule uses
}

// Round carries the public-coin seed for the round.
type Round struct {
	Seed uint64
}

// Vote carries the player's message to the referee.
type Vote struct {
	Player  uint32
	Message uint64
}

// Verdict is the referee's broadcast decision.
type Verdict struct {
	Accept bool
}

// Finish tells a player the session is over (multi-round sessions only).
type Finish struct{}

// RoundBatch carries the public-coin seeds of len(Seeds) consecutive
// trials, identified by a batch id the player echoes in its VOTE_BATCH.
// Payload layout: batch(4) count(4) seed[0..count)(8 each), big-endian.
type RoundBatch struct {
	Batch uint32
	Seeds []uint64
}

// VoteBatch carries one player's single-bit votes for every trial of a
// batch as a packed bitset: trial j of the batch is bit j%64 (LSB
// first) of word j/64, 1 = accept. Padding bits past Count must be
// zero — the decoder rejects frames that violate it, so a corrupted
// tail byte surfaces as a protocol error, never as silent extra votes.
// Payload layout: player(4) batch(4) count(4) words (8 each).
type VoteBatch struct {
	Player uint32
	Batch  uint32
	Count  uint32
	Bits   []uint64
}

// VerdictBatch carries the referee's verdicts for every trial of a
// batch, packed exactly like VoteBatch.Bits (1 = accept).
// Payload layout: batch(4) count(4) words (8 each).
type VerdictBatch struct {
	Batch uint32
	Count uint32
	Bits  []uint64
}

// VoteBatchR carries one player's r-bit votes for every trial of a
// batch as Bits packed bit-planes: plane b holds bit b of every
// message, with trial j of the batch at bit j%64 (LSB first) of plane
// word j/64 — plane b occupies words [b*W, (b+1)*W) of Planes for
// W = batchWords(Count). Plane 0 of a 1-bit frame is therefore exactly
// a VoteBatch bitset; 1-bit sessions keep sending VOTE_BATCH, and the
// referee only accepts VOTE_BATCH_R from players that announced Bits >
// 1 in HELLO. The stride (plane count times word count) and the zero
// padding above Count in every plane are validated on encode and
// decode, like checkBatchBits. Verdicts stay single-bit, so
// VERDICT_BATCH is unchanged for any r.
// Payload layout: player(4) batch(4) count(4) bits(1) planes (8 each).
type VoteBatchR struct {
	Player uint32
	Batch  uint32
	Count  uint32
	Bits   uint8
	Planes []uint64
}

// AggHello is an L1 aggregator's first frame to the root referee: the
// aggregator id, the negotiated message width (every shard member's
// HELLO must match it), the shard membership the aggregator was
// assigned, and how many of those members actually connected during
// the accept phase (the root sums Present across shards for its quorum
// check — zero is legal, a quorum-mode shard whose players all failed
// still reports). Members must be strictly ascending; the root checks
// them against its own routing table, so a mis-sharded aggregator
// fails the handshake instead of corrupting the accounting.
// Payload layout: agg(4) bits(1) present(4) count(4) ids (4 each).
type AggHello struct {
	Agg     uint32
	Bits    uint8
	Present uint32
	Members []uint32
}

// AggSum carries one shard's reduced votes for every trial of a batch
// when the referee is threshold- or sum-shaped: Planes bit-sliced
// counter planes of batchWords(Count) words each, where plane p holds
// bit p of every trial's partial count with trial j of the batch at
// bit j%64 (LSB first) of plane word j/64 — the same transposed layout
// the flat referee's word-parallel decide path ripple-carries over.
// Present is the shard's per-batch present-member count, carried
// explicitly so the root's quorum/absentee accounting composes
// per-shard instead of guessing from frame arrival. Padding bits above
// Count must be zero in every plane, enforced on encode and decode.
// Payload layout: agg(4) batch(4) count(4) bits(1) planes(1)
// present(4) sums (8 each).
type AggSum struct {
	Agg     uint32
	Batch   uint32
	Count   uint32
	Bits    uint8
	Planes  uint8
	Present uint32
	Sums    []uint64
}

// AggPlanes carries one shard's votes verbatim when the referee is
// opaque and no sound local reduction exists: a presence mask over the
// shard's AGG_HELLO membership list (bit i set = member i of that list
// voted this batch, LSB first) followed by the present members' packed
// vote planes in ascending member order, each laid out exactly like
// VoteBatchR.Planes (Bits planes of batchWords(Count) words). Present
// must equal the mask's popcount, the total plane words are capped at
// MaxAggPlaneWords, and padding above Count in every plane and above
// Members in the mask must be zero — all enforced on encode and
// decode.
// Payload layout: agg(4) batch(4) count(4) bits(1) members(4)
// present(4) mask (8 each) planes (8 each).
type AggPlanes struct {
	Agg     uint32
	Batch   uint32
	Count   uint32
	Bits    uint8
	Members uint32
	Present uint32
	Mask    []uint64
	Planes  []uint64
}

// AggVerdict carries the root's verdicts for one batch down the tree:
// the batch id, trial count and packed verdict bitset (laid out exactly
// like VerdictBatch.Bits, 1 = accept) plus the root's per-shard
// present-count accounting for the batch — Present[a] is the number of
// player votes the root credited to shard a when it decided, zero for
// an absent shard. The vector is indexed by aggregator id and covers
// every shard, so the root encodes one frame per batch and queues the
// same bytes to every aggregator; each aggregator checks its own entry
// against the present count it sent upstream, so a corrupted, replayed
// or mis-accounted verdict surfaces as a protocol error at the tier
// that can still stop it instead of fanning out to the shard.
// Payload layout: batch(4) count(4) shards(4) present (4 each)
// words (8 each).
type AggVerdict struct {
	Batch   uint32
	Count   uint32
	Present []uint32
	Bits    []uint64
}

// batchWords is the number of 64-bit bitset words covering count trials.
func batchWords(count int) int { return (count + 63) / 64 }

// aggMaskWords is the number of 64-bit mask words covering a shard of
// members players.
func aggMaskWords(members int) int { return (members + 63) / 64 }

// checkBatchBits validates a packed bitset against its trial count:
// exact word count and zero padding bits above count.
func checkBatchBits(kind FrameType, count int, bits []uint64) error {
	if count < 1 || count > MaxBatchTrials {
		return fmt.Errorf("network: %v with %d trials, want 1..%d", kind, count, MaxBatchTrials)
	}
	if len(bits) != batchWords(count) {
		return fmt.Errorf("network: %v with %d bitset words for %d trials, want %d",
			kind, len(bits), count, batchWords(count))
	}
	if rem := count % 64; rem != 0 {
		if pad := bits[len(bits)-1] &^ (1<<rem - 1); pad != 0 {
			return fmt.Errorf("network: %v with non-zero padding bits %#x above trial %d", kind, pad, count)
		}
	}
	return nil
}

// checkBatchPlanes validates an r-bit plane set against its trial count
// and message width: exact stride (msgBits planes of batchWords(count)
// words each) and zero padding bits above count in every plane.
func checkBatchPlanes(kind FrameType, count, msgBits int, planes []uint64) error {
	if count < 1 || count > MaxBatchTrials {
		return fmt.Errorf("network: %v with %d trials, want 1..%d", kind, count, MaxBatchTrials)
	}
	if msgBits < 1 || msgBits > 64 {
		return fmt.Errorf("network: %v with %d message bits, want 1..64", kind, msgBits)
	}
	words := batchWords(count)
	if len(planes) != msgBits*words {
		return fmt.Errorf("network: %v with %d plane words for %d trials of %d bits, want %d",
			kind, len(planes), count, msgBits, msgBits*words)
	}
	if rem := count % 64; rem != 0 {
		for b := 0; b < msgBits; b++ {
			if pad := planes[(b+1)*words-1] &^ (1<<rem - 1); pad != 0 {
				return fmt.Errorf("network: %v with non-zero padding bits %#x above trial %d in plane %d",
					kind, pad, count, b)
			}
		}
	}
	return nil
}

// checkAggHello validates an aggregator handshake: message width in
// range, member count within the shard bound, strictly ascending
// member ids (which also rejects duplicates), and a present count that
// cannot exceed the membership.
func checkAggHello(h AggHello) error {
	if h.Bits < 1 || h.Bits > 64 {
		return fmt.Errorf("network: AGG_HELLO with %d message bits, want 1..64", h.Bits)
	}
	if len(h.Members) < 1 || len(h.Members) > MaxShardPlayers {
		return fmt.Errorf("network: AGG_HELLO with %d members, want 1..%d", len(h.Members), MaxShardPlayers)
	}
	for i := 1; i < len(h.Members); i++ {
		if h.Members[i] <= h.Members[i-1] {
			return fmt.Errorf("network: AGG_HELLO members not strictly ascending: player %d after %d",
				h.Members[i], h.Members[i-1])
		}
	}
	if int(h.Present) > len(h.Members) {
		return fmt.Errorf("network: AGG_HELLO with %d present of %d members", h.Present, len(h.Members))
	}
	return nil
}

// checkAggSum validates a reduced sum frame: trial count, message
// width and counter plane count in range, exact counter stride, a
// present count within the shard bound, and zero padding bits above
// Count in every counter plane. Present zero is legal — every member
// of a tolerant shard may be absent for a batch.
func checkAggSum(v AggSum) error {
	if v.Count < 1 || v.Count > MaxBatchTrials {
		return fmt.Errorf("network: AGG_SUM with %d trials, want 1..%d", v.Count, MaxBatchTrials)
	}
	if v.Bits < 1 || v.Bits > 64 {
		return fmt.Errorf("network: AGG_SUM with %d message bits, want 1..64", v.Bits)
	}
	if v.Planes < 1 || v.Planes > 64 {
		return fmt.Errorf("network: AGG_SUM with %d counter planes, want 1..64", v.Planes)
	}
	if v.Present > MaxShardPlayers {
		return fmt.Errorf("network: AGG_SUM with %d present players, want at most %d", v.Present, MaxShardPlayers)
	}
	words := batchWords(int(v.Count))
	if len(v.Sums) != int(v.Planes)*words {
		return fmt.Errorf("network: AGG_SUM with %d sum words for %d trials of %d planes, want %d",
			len(v.Sums), v.Count, v.Planes, int(v.Planes)*words)
	}
	if rem := int(v.Count) % 64; rem != 0 {
		for p := 0; p < int(v.Planes); p++ {
			if pad := v.Sums[(p+1)*words-1] &^ (1<<rem - 1); pad != 0 {
				return fmt.Errorf("network: AGG_SUM with non-zero padding bits %#x above trial %d in plane %d",
					pad, v.Count, p)
			}
		}
	}
	return nil
}

// checkAggPlanes validates a forwarded plane frame: trial count,
// message width and member count in range, exact mask stride with zero
// padding above Members, a present count equal to the mask popcount,
// plane words matching present x bits x batchWords(Count) under the
// MaxAggPlaneWords cap, and zero padding above Count in every plane of
// every present member. Present zero (empty mask, no planes) is legal.
func checkAggPlanes(v AggPlanes) error {
	if v.Count < 1 || v.Count > MaxBatchTrials {
		return fmt.Errorf("network: AGG_PLANES with %d trials, want 1..%d", v.Count, MaxBatchTrials)
	}
	if v.Bits < 1 || v.Bits > 64 {
		return fmt.Errorf("network: AGG_PLANES with %d message bits, want 1..64", v.Bits)
	}
	if v.Members < 1 || v.Members > MaxShardPlayers {
		return fmt.Errorf("network: AGG_PLANES with %d members, want 1..%d", v.Members, MaxShardPlayers)
	}
	maskWords := aggMaskWords(int(v.Members))
	if len(v.Mask) != maskWords {
		return fmt.Errorf("network: AGG_PLANES with %d mask words for %d members, want %d",
			len(v.Mask), v.Members, maskWords)
	}
	if rem := int(v.Members) % 64; rem != 0 {
		if pad := v.Mask[maskWords-1] &^ (1<<rem - 1); pad != 0 {
			return fmt.Errorf("network: AGG_PLANES with non-zero mask padding bits %#x above member %d", pad, v.Members)
		}
	}
	pop := 0
	for _, w := range v.Mask {
		pop += bits.OnesCount64(w)
	}
	if int(v.Present) != pop {
		return fmt.Errorf("network: AGG_PLANES with present count %d but mask popcount %d", v.Present, pop)
	}
	words := batchWords(int(v.Count))
	stride := int(v.Bits) * words
	if pop*stride > MaxAggPlaneWords {
		return fmt.Errorf("network: AGG_PLANES with %d plane words (%d present x %d bits x %d words), want at most %d — shard wider",
			pop*stride, pop, v.Bits, words, MaxAggPlaneWords)
	}
	if len(v.Planes) != pop*stride {
		return fmt.Errorf("network: AGG_PLANES with %d plane words for %d present players of %d bits, want %d",
			len(v.Planes), pop, v.Bits, pop*stride)
	}
	if rem := int(v.Count) % 64; rem != 0 {
		for m := 0; m < pop; m++ {
			for b := 0; b < int(v.Bits); b++ {
				if pad := v.Planes[m*stride+(b+1)*words-1] &^ (1<<rem - 1); pad != 0 {
					return fmt.Errorf("network: AGG_PLANES with non-zero padding bits %#x above trial %d in plane %d of present member %d",
						pad, v.Count, b, m)
				}
			}
		}
	}
	return nil
}

// checkAggVerdict validates a downstream verdict frame: at least one
// shard (a zero-shard tree has nobody to relay to, so an empty vector
// is a malformed frame, not a degenerate legal one) within the shard
// bound, per-shard present counts within the per-shard player bound,
// and the verdict bitset validated exactly like VERDICT_BATCH (exact
// word count, zero padding above Count).
func checkAggVerdict(v AggVerdict) error {
	if len(v.Present) < 1 || len(v.Present) > MaxAggShards {
		return fmt.Errorf("network: AGG_VERDICT with %d shards, want 1..%d", len(v.Present), MaxAggShards)
	}
	for i, p := range v.Present {
		if p > MaxShardPlayers {
			return fmt.Errorf("network: AGG_VERDICT with %d present players in shard %d, want at most %d",
				p, i, MaxShardPlayers)
		}
	}
	return checkBatchBits(FrameAggVerdict, int(v.Count), v.Bits)
}

// frame layout: magic(2) version(1) type(1) length(4) payload(length).
const headerSize = 8

// maxPayload is the per-type payload bound: single-round frames stay
// within MaxFrameSize, batch frames within what MaxBatchTrials implies.
func maxPayload(t FrameType) int {
	switch t {
	case FrameRoundBatch:
		return 8 + 8*MaxBatchTrials
	case FrameVoteBatch:
		return 12 + 8*batchWords(MaxBatchTrials)
	case FrameVerdictBatch:
		return 8 + 8*batchWords(MaxBatchTrials)
	case FrameVoteBatchR:
		return 13 + 8*64*batchWords(MaxBatchTrials)
	case FrameAggHello:
		return 13 + 4*MaxShardPlayers
	case FrameAggSum:
		return 18 + 8*64*batchWords(MaxBatchTrials)
	case FrameAggPlanes:
		return 21 + 8*aggMaskWords(MaxShardPlayers) + 8*MaxAggPlaneWords
	case FrameAggVerdict:
		return 12 + 4*MaxAggShards + 8*batchWords(MaxBatchTrials)
	default:
		return MaxFrameSize
	}
}

// writeFrame writes one frame.
func writeFrame(w io.Writer, t FrameType, payload []byte) error {
	if limit := maxPayload(t); len(payload) > limit {
		return fmt.Errorf("network: %v payload of %d bytes exceeds limit %d", t, len(payload), limit)
	}
	//lint:ignore dut/hotalloc one frame buffer per frame; hot batch paths send one frame per batch, amortized across the batch's trials, and the coalesced writers bypass this helper entirely
	buf := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint16(buf[0:2], Magic)
	buf[2] = Version
	buf[3] = byte(t)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(payload)))
	copy(buf[headerSize:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame, validating magic, version and size.
func readFrame(r io.Reader) (FrameType, []byte, error) {
	//lint:ignore dut/hotalloc the 8-byte header escapes through the io.Reader interface; one read per frame, one frame per batch on the hot gather path
	var header [headerSize]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return 0, nil, err
	}
	if got := binary.BigEndian.Uint16(header[0:2]); got != Magic {
		return 0, nil, fmt.Errorf("network: bad magic %#x", got)
	}
	if header[2] != Version {
		return 0, nil, fmt.Errorf("network: unsupported protocol version %d", header[2])
	}
	t := FrameType(header[3])
	size := binary.BigEndian.Uint32(header[4:8])
	if limit := maxPayload(t); size > uint32(limit) {
		return 0, nil, fmt.Errorf("network: oversized %v frame of %d bytes", t, size)
	}
	//lint:ignore dut/hotalloc one payload buffer per received frame; the batch protocol receives one frame per batch, amortized across the batch's trials
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return t, payload, nil
}

// WriteHello sends a HELLO frame.
func WriteHello(w io.Writer, h Hello) error {
	var p [5]byte
	binary.BigEndian.PutUint32(p[0:4], h.Player)
	p[4] = h.Bits
	return writeFrame(w, FrameHello, p[:])
}

// WriteRound sends a ROUND frame.
func WriteRound(w io.Writer, r Round) error {
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], r.Seed)
	return writeFrame(w, FrameRound, p[:])
}

// WriteVote sends a VOTE frame.
func WriteVote(w io.Writer, v Vote) error {
	var p [12]byte
	binary.BigEndian.PutUint32(p[0:4], v.Player)
	binary.BigEndian.PutUint64(p[4:12], v.Message)
	return writeFrame(w, FrameVote, p[:])
}

// WriteVerdict sends a VERDICT frame.
func WriteVerdict(w io.Writer, v Verdict) error {
	p := []byte{0}
	if v.Accept {
		p[0] = 1
	}
	return writeFrame(w, FrameVerdict, p)
}

// WriteFinish sends a FINISH frame.
func WriteFinish(w io.Writer) error {
	return writeFrame(w, FrameFinish, nil)
}

// appendHeader appends a frame header for a payload of size bytes.
func appendHeader(buf []byte, t FrameType, size int) []byte {
	buf = binary.BigEndian.AppendUint16(buf, Magic)
	buf = append(buf, Version, byte(t))
	return binary.BigEndian.AppendUint32(buf, uint32(size))
}

// AppendRoundBatch appends one encoded ROUND_BATCH frame to buf,
// validated exactly like WriteRoundBatch. The batch session's slot
// writers encode frame runs with the Append* helpers and flush them
// through writeCoalesced, so a full window of frames costs one write
// instead of one per frame.
func AppendRoundBatch(buf []byte, r RoundBatch) ([]byte, error) {
	count := len(r.Seeds)
	if count < 1 || count > MaxBatchTrials {
		return buf, fmt.Errorf("network: ROUND_BATCH with %d trials, want 1..%d", count, MaxBatchTrials)
	}
	buf = appendHeader(buf, FrameRoundBatch, 8+8*count)
	buf = binary.BigEndian.AppendUint32(buf, r.Batch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(count))
	for _, seed := range r.Seeds {
		buf = binary.BigEndian.AppendUint64(buf, seed)
	}
	return buf, nil
}

// AppendVerdictBatch appends one encoded VERDICT_BATCH frame to buf,
// validated exactly like WriteVerdictBatch.
func AppendVerdictBatch(buf []byte, v VerdictBatch) ([]byte, error) {
	if err := checkBatchBits(FrameVerdictBatch, int(v.Count), v.Bits); err != nil {
		return buf, err
	}
	buf = appendHeader(buf, FrameVerdictBatch, 8+8*len(v.Bits))
	buf = binary.BigEndian.AppendUint32(buf, v.Batch)
	buf = binary.BigEndian.AppendUint32(buf, v.Count)
	for _, word := range v.Bits {
		buf = binary.BigEndian.AppendUint64(buf, word)
	}
	return buf, nil
}

// AppendFinish appends one encoded FINISH frame to buf.
func AppendFinish(buf []byte) []byte {
	return appendHeader(buf, FrameFinish, 0)
}

// writeCoalesced flushes a run of frames already encoded by the Append*
// helpers in a single write. Living in the encoder file keeps the raw
// conn write inside the frame-discipline boundary: every byte still
// originates from a validated encoder.
func writeCoalesced(w io.Writer, run []byte) error {
	_, err := w.Write(run)
	return err
}

// WriteRoundBatch sends a ROUND_BATCH frame.
func WriteRoundBatch(w io.Writer, r RoundBatch) error {
	count := len(r.Seeds)
	if count < 1 || count > MaxBatchTrials {
		return fmt.Errorf("network: ROUND_BATCH with %d trials, want 1..%d", count, MaxBatchTrials)
	}
	p := make([]byte, 8+8*count)
	binary.BigEndian.PutUint32(p[0:4], r.Batch)
	binary.BigEndian.PutUint32(p[4:8], uint32(count))
	for i, seed := range r.Seeds {
		binary.BigEndian.PutUint64(p[8+8*i:], seed)
	}
	return writeFrame(w, FrameRoundBatch, p)
}

// WriteVoteBatch sends a VOTE_BATCH frame; the bitset is validated
// against Count (word count and zero padding) before any byte leaves,
// so an invalid batch never reaches the wire.
func WriteVoteBatch(w io.Writer, v VoteBatch) error {
	if err := checkBatchBits(FrameVoteBatch, int(v.Count), v.Bits); err != nil {
		return err
	}
	//lint:ignore dut/hotalloc one encode buffer per VOTE_BATCH frame; a node sends one such frame per batch covering Count trials
	p := make([]byte, 12+8*len(v.Bits))
	binary.BigEndian.PutUint32(p[0:4], v.Player)
	binary.BigEndian.PutUint32(p[4:8], v.Batch)
	binary.BigEndian.PutUint32(p[8:12], v.Count)
	for i, word := range v.Bits {
		binary.BigEndian.PutUint64(p[12+8*i:], word)
	}
	return writeFrame(w, FrameVoteBatch, p)
}

// WriteVoteBatchR sends a VOTE_BATCH_R frame; the plane set is
// validated against Count and Bits (exact stride and zero padding in
// every plane) before any byte leaves, so an invalid batch never
// reaches the wire.
func WriteVoteBatchR(w io.Writer, v VoteBatchR) error {
	if err := checkBatchPlanes(FrameVoteBatchR, int(v.Count), int(v.Bits), v.Planes); err != nil {
		return err
	}
	//lint:ignore dut/hotalloc one encode buffer per VOTE_BATCH_R frame; a node sends one such frame per batch covering Count trials
	p := make([]byte, 13+8*len(v.Planes))
	binary.BigEndian.PutUint32(p[0:4], v.Player)
	binary.BigEndian.PutUint32(p[4:8], v.Batch)
	binary.BigEndian.PutUint32(p[8:12], v.Count)
	p[12] = v.Bits
	for i, word := range v.Planes {
		binary.BigEndian.PutUint64(p[13+8*i:], word)
	}
	return writeFrame(w, FrameVoteBatchR, p)
}

// WriteVerdictBatch sends a VERDICT_BATCH frame, validated like
// WriteVoteBatch.
func WriteVerdictBatch(w io.Writer, v VerdictBatch) error {
	if err := checkBatchBits(FrameVerdictBatch, int(v.Count), v.Bits); err != nil {
		return err
	}
	p := make([]byte, 8+8*len(v.Bits))
	binary.BigEndian.PutUint32(p[0:4], v.Batch)
	binary.BigEndian.PutUint32(p[4:8], v.Count)
	for i, word := range v.Bits {
		binary.BigEndian.PutUint64(p[8+8*i:], word)
	}
	return writeFrame(w, FrameVerdictBatch, p)
}

// WriteAggHello sends an AGG_HELLO frame, validated before any byte
// leaves the aggregator.
func WriteAggHello(w io.Writer, h AggHello) error {
	if err := checkAggHello(h); err != nil {
		return err
	}
	p := make([]byte, 13+4*len(h.Members))
	binary.BigEndian.PutUint32(p[0:4], h.Agg)
	p[4] = h.Bits
	binary.BigEndian.PutUint32(p[5:9], h.Present)
	binary.BigEndian.PutUint32(p[9:13], uint32(len(h.Members)))
	for i, id := range h.Members {
		binary.BigEndian.PutUint32(p[13+4*i:], id)
	}
	return writeFrame(w, FrameAggHello, p)
}

// WriteAggSum sends an AGG_SUM frame, validated like WriteVoteBatchR:
// an invalid reduction never reaches the wire.
func WriteAggSum(w io.Writer, v AggSum) error {
	if err := checkAggSum(v); err != nil {
		return err
	}
	p := make([]byte, 18+8*len(v.Sums))
	binary.BigEndian.PutUint32(p[0:4], v.Agg)
	binary.BigEndian.PutUint32(p[4:8], v.Batch)
	binary.BigEndian.PutUint32(p[8:12], v.Count)
	p[12] = v.Bits
	p[13] = v.Planes
	binary.BigEndian.PutUint32(p[14:18], v.Present)
	for i, word := range v.Sums {
		binary.BigEndian.PutUint64(p[18+8*i:], word)
	}
	return writeFrame(w, FrameAggSum, p)
}

// WriteAggPlanes sends an AGG_PLANES frame, validated like
// WriteAggSum.
func WriteAggPlanes(w io.Writer, v AggPlanes) error {
	if err := checkAggPlanes(v); err != nil {
		return err
	}
	p := make([]byte, 21+8*(len(v.Mask)+len(v.Planes)))
	binary.BigEndian.PutUint32(p[0:4], v.Agg)
	binary.BigEndian.PutUint32(p[4:8], v.Batch)
	binary.BigEndian.PutUint32(p[8:12], v.Count)
	p[12] = v.Bits
	binary.BigEndian.PutUint32(p[13:17], v.Members)
	binary.BigEndian.PutUint32(p[17:21], v.Present)
	off := 21
	for _, word := range v.Mask {
		binary.BigEndian.PutUint64(p[off:], word)
		off += 8
	}
	for _, word := range v.Planes {
		binary.BigEndian.PutUint64(p[off:], word)
		off += 8
	}
	return writeFrame(w, FrameAggPlanes, p)
}

// WriteAggVerdict sends an AGG_VERDICT frame, validated like
// WriteVerdictBatch: an invalid verdict never reaches the wire.
func WriteAggVerdict(w io.Writer, v AggVerdict) error {
	if err := checkAggVerdict(v); err != nil {
		return err
	}
	p := make([]byte, 12+4*len(v.Present)+8*len(v.Bits))
	binary.BigEndian.PutUint32(p[0:4], v.Batch)
	binary.BigEndian.PutUint32(p[4:8], v.Count)
	binary.BigEndian.PutUint32(p[8:12], uint32(len(v.Present)))
	off := 12
	for _, n := range v.Present {
		binary.BigEndian.PutUint32(p[off:], n)
		off += 4
	}
	for _, word := range v.Bits {
		binary.BigEndian.PutUint64(p[off:], word)
		off += 8
	}
	return writeFrame(w, FrameAggVerdict, p)
}

// AppendAggVerdict appends one encoded AGG_VERDICT frame to buf,
// validated exactly like WriteAggVerdict. The root encodes each batch's
// verdict once into reused scratch and queues the same bytes to every
// aggregator slot, so the downstream fan-out costs O(aggregators)
// writes and zero allocations at the root regardless of player count.
func AppendAggVerdict(buf []byte, v AggVerdict) ([]byte, error) {
	if err := checkAggVerdict(v); err != nil {
		return buf, err
	}
	buf = appendHeader(buf, FrameAggVerdict, 12+4*len(v.Present)+8*len(v.Bits))
	buf = binary.BigEndian.AppendUint32(buf, v.Batch)
	buf = binary.BigEndian.AppendUint32(buf, v.Count)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Present)))
	for _, n := range v.Present {
		buf = binary.BigEndian.AppendUint32(buf, n)
	}
	for _, word := range v.Bits {
		buf = binary.BigEndian.AppendUint64(buf, word)
	}
	return buf, nil
}

// AppendAggSum appends one encoded AGG_SUM frame to buf, validated
// exactly like WriteAggSum. The aggregator's reducer encodes its
// upstream frames with the Append* helpers into a reused buffer and
// flushes through writeCoalesced, keeping the hot reduce path
// allocation-free.
func AppendAggSum(buf []byte, v AggSum) ([]byte, error) {
	if err := checkAggSum(v); err != nil {
		return buf, err
	}
	buf = appendHeader(buf, FrameAggSum, 18+8*len(v.Sums))
	buf = binary.BigEndian.AppendUint32(buf, v.Agg)
	buf = binary.BigEndian.AppendUint32(buf, v.Batch)
	buf = binary.BigEndian.AppendUint32(buf, v.Count)
	buf = append(buf, v.Bits, v.Planes)
	buf = binary.BigEndian.AppendUint32(buf, v.Present)
	for _, word := range v.Sums {
		buf = binary.BigEndian.AppendUint64(buf, word)
	}
	return buf, nil
}

// AppendAggPlanes appends one encoded AGG_PLANES frame to buf,
// validated exactly like WriteAggPlanes.
func AppendAggPlanes(buf []byte, v AggPlanes) ([]byte, error) {
	if err := checkAggPlanes(v); err != nil {
		return buf, err
	}
	buf = appendHeader(buf, FrameAggPlanes, 21+8*(len(v.Mask)+len(v.Planes)))
	buf = binary.BigEndian.AppendUint32(buf, v.Agg)
	buf = binary.BigEndian.AppendUint32(buf, v.Batch)
	buf = binary.BigEndian.AppendUint32(buf, v.Count)
	buf = append(buf, v.Bits)
	buf = binary.BigEndian.AppendUint32(buf, v.Members)
	buf = binary.BigEndian.AppendUint32(buf, v.Present)
	for _, word := range v.Mask {
		buf = binary.BigEndian.AppendUint64(buf, word)
	}
	for _, word := range v.Planes {
		buf = binary.BigEndian.AppendUint64(buf, word)
	}
	return buf, nil
}

// ReadFrame reads and decodes the next frame into one of the typed
// structs; the first return carries the type tag.
func ReadFrame(r io.Reader) (FrameType, any, error) {
	t, payload, err := readFrame(r)
	if err != nil {
		return 0, nil, err
	}
	switch t {
	case FrameHello:
		if len(payload) != 5 {
			return 0, nil, fmt.Errorf("network: HELLO payload of %d bytes", len(payload))
		}
		return t, Hello{Player: binary.BigEndian.Uint32(payload[0:4]), Bits: payload[4]}, nil
	case FrameRound:
		if len(payload) != 8 {
			return 0, nil, fmt.Errorf("network: ROUND payload of %d bytes", len(payload))
		}
		return t, Round{Seed: binary.BigEndian.Uint64(payload)}, nil
	case FrameVote:
		if len(payload) != 12 {
			return 0, nil, fmt.Errorf("network: VOTE payload of %d bytes", len(payload))
		}
		return t, Vote{
			Player:  binary.BigEndian.Uint32(payload[0:4]),
			Message: binary.BigEndian.Uint64(payload[4:12]),
		}, nil
	case FrameVerdict:
		if len(payload) != 1 {
			return 0, nil, fmt.Errorf("network: VERDICT payload of %d bytes", len(payload))
		}
		// Strict encoding: only 0 and 1 are legal. Anything else is a
		// corrupted or malicious frame, not a reject vote.
		if payload[0] > 1 {
			return 0, nil, fmt.Errorf("network: malformed VERDICT byte %#x", payload[0])
		}
		return t, Verdict{Accept: payload[0] == 1}, nil
	case FrameFinish:
		if len(payload) != 0 {
			return 0, nil, fmt.Errorf("network: FINISH payload of %d bytes", len(payload))
		}
		return t, Finish{}, nil
	case FrameRoundBatch:
		if len(payload) < 8 {
			return 0, nil, fmt.Errorf("network: ROUND_BATCH payload of %d bytes", len(payload))
		}
		count := int(binary.BigEndian.Uint32(payload[4:8]))
		if count < 1 || count > MaxBatchTrials {
			return 0, nil, fmt.Errorf("network: ROUND_BATCH with %d trials, want 1..%d", count, MaxBatchTrials)
		}
		if len(payload) != 8+8*count {
			return 0, nil, fmt.Errorf("network: ROUND_BATCH payload of %d bytes for %d trials, want %d",
				len(payload), count, 8+8*count)
		}
		seeds := make([]uint64, count)
		for i := range seeds {
			seeds[i] = binary.BigEndian.Uint64(payload[8+8*i:])
		}
		return t, RoundBatch{Batch: binary.BigEndian.Uint32(payload[0:4]), Seeds: seeds}, nil
	case FrameVoteBatch:
		if len(payload) < 12 {
			return 0, nil, fmt.Errorf("network: VOTE_BATCH payload of %d bytes", len(payload))
		}
		count := int(binary.BigEndian.Uint32(payload[8:12]))
		if count < 1 || count > MaxBatchTrials {
			return 0, nil, fmt.Errorf("network: VOTE_BATCH with %d trials, want 1..%d", count, MaxBatchTrials)
		}
		if len(payload) != 12+8*batchWords(count) {
			return 0, nil, fmt.Errorf("network: VOTE_BATCH payload of %d bytes for %d trials, want %d",
				len(payload), count, 12+8*batchWords(count))
		}
		bits := make([]uint64, batchWords(count))
		for i := range bits {
			bits[i] = binary.BigEndian.Uint64(payload[12+8*i:])
		}
		v := VoteBatch{
			Player: binary.BigEndian.Uint32(payload[0:4]),
			Batch:  binary.BigEndian.Uint32(payload[4:8]),
			Count:  uint32(count),
			Bits:   bits,
		}
		if err := checkBatchBits(FrameVoteBatch, count, bits); err != nil {
			return 0, nil, err
		}
		return t, v, nil
	case FrameVerdictBatch:
		if len(payload) < 8 {
			return 0, nil, fmt.Errorf("network: VERDICT_BATCH payload of %d bytes", len(payload))
		}
		count := int(binary.BigEndian.Uint32(payload[4:8]))
		if count < 1 || count > MaxBatchTrials {
			return 0, nil, fmt.Errorf("network: VERDICT_BATCH with %d trials, want 1..%d", count, MaxBatchTrials)
		}
		if len(payload) != 8+8*batchWords(count) {
			return 0, nil, fmt.Errorf("network: VERDICT_BATCH payload of %d bytes for %d trials, want %d",
				len(payload), count, 8+8*batchWords(count))
		}
		bits := make([]uint64, batchWords(count))
		for i := range bits {
			bits[i] = binary.BigEndian.Uint64(payload[8+8*i:])
		}
		if err := checkBatchBits(FrameVerdictBatch, count, bits); err != nil {
			return 0, nil, err
		}
		return t, VerdictBatch{
			Batch: binary.BigEndian.Uint32(payload[0:4]),
			Count: uint32(count),
			Bits:  bits,
		}, nil
	case FrameVoteBatchR:
		if len(payload) < 13 {
			return 0, nil, fmt.Errorf("network: VOTE_BATCH_R payload of %d bytes", len(payload))
		}
		count := int(binary.BigEndian.Uint32(payload[8:12]))
		if count < 1 || count > MaxBatchTrials {
			return 0, nil, fmt.Errorf("network: VOTE_BATCH_R with %d trials, want 1..%d", count, MaxBatchTrials)
		}
		msgBits := int(payload[12])
		if msgBits < 1 || msgBits > 64 {
			return 0, nil, fmt.Errorf("network: VOTE_BATCH_R with %d message bits, want 1..64", msgBits)
		}
		words := msgBits * batchWords(count)
		if len(payload) != 13+8*words {
			return 0, nil, fmt.Errorf("network: VOTE_BATCH_R payload of %d bytes for %d trials of %d bits, want %d",
				len(payload), count, msgBits, 13+8*words)
		}
		planes := make([]uint64, words)
		for i := range planes {
			planes[i] = binary.BigEndian.Uint64(payload[13+8*i:])
		}
		if err := checkBatchPlanes(FrameVoteBatchR, count, msgBits, planes); err != nil {
			return 0, nil, err
		}
		return t, VoteBatchR{
			Player: binary.BigEndian.Uint32(payload[0:4]),
			Batch:  binary.BigEndian.Uint32(payload[4:8]),
			Count:  uint32(count),
			Bits:   uint8(msgBits),
			Planes: planes,
		}, nil
	case FrameAggHello:
		if len(payload) < 13 {
			return 0, nil, fmt.Errorf("network: AGG_HELLO payload of %d bytes", len(payload))
		}
		count := int(binary.BigEndian.Uint32(payload[9:13]))
		if count < 1 || count > MaxShardPlayers {
			return 0, nil, fmt.Errorf("network: AGG_HELLO with %d members, want 1..%d", count, MaxShardPlayers)
		}
		if len(payload) != 13+4*count {
			return 0, nil, fmt.Errorf("network: AGG_HELLO payload of %d bytes for %d members, want %d",
				len(payload), count, 13+4*count)
		}
		members := make([]uint32, count)
		for i := range members {
			members[i] = binary.BigEndian.Uint32(payload[13+4*i:])
		}
		h := AggHello{
			Agg:     binary.BigEndian.Uint32(payload[0:4]),
			Bits:    payload[4],
			Present: binary.BigEndian.Uint32(payload[5:9]),
			Members: members,
		}
		if err := checkAggHello(h); err != nil {
			return 0, nil, err
		}
		return t, h, nil
	case FrameAggSum:
		if len(payload) < 18 {
			return 0, nil, fmt.Errorf("network: AGG_SUM payload of %d bytes", len(payload))
		}
		count := int(binary.BigEndian.Uint32(payload[8:12]))
		if count < 1 || count > MaxBatchTrials {
			return 0, nil, fmt.Errorf("network: AGG_SUM with %d trials, want 1..%d", count, MaxBatchTrials)
		}
		planes := int(payload[13])
		if planes < 1 || planes > 64 {
			return 0, nil, fmt.Errorf("network: AGG_SUM with %d counter planes, want 1..64", planes)
		}
		words := planes * batchWords(count)
		if len(payload) != 18+8*words {
			return 0, nil, fmt.Errorf("network: AGG_SUM payload of %d bytes for %d trials of %d planes, want %d",
				len(payload), count, planes, 18+8*words)
		}
		sums := make([]uint64, words)
		for i := range sums {
			sums[i] = binary.BigEndian.Uint64(payload[18+8*i:])
		}
		v := AggSum{
			Agg:     binary.BigEndian.Uint32(payload[0:4]),
			Batch:   binary.BigEndian.Uint32(payload[4:8]),
			Count:   uint32(count),
			Bits:    payload[12],
			Planes:  uint8(planes),
			Present: binary.BigEndian.Uint32(payload[14:18]),
			Sums:    sums,
		}
		if err := checkAggSum(v); err != nil {
			return 0, nil, err
		}
		return t, v, nil
	case FrameAggPlanes:
		if len(payload) < 21 {
			return 0, nil, fmt.Errorf("network: AGG_PLANES payload of %d bytes", len(payload))
		}
		count := int(binary.BigEndian.Uint32(payload[8:12]))
		if count < 1 || count > MaxBatchTrials {
			return 0, nil, fmt.Errorf("network: AGG_PLANES with %d trials, want 1..%d", count, MaxBatchTrials)
		}
		msgBits := int(payload[12])
		if msgBits < 1 || msgBits > 64 {
			return 0, nil, fmt.Errorf("network: AGG_PLANES with %d message bits, want 1..64", msgBits)
		}
		members := int(binary.BigEndian.Uint32(payload[13:17]))
		if members < 1 || members > MaxShardPlayers {
			return 0, nil, fmt.Errorf("network: AGG_PLANES with %d members, want 1..%d", members, MaxShardPlayers)
		}
		present := int(binary.BigEndian.Uint32(payload[17:21]))
		if present > members {
			return 0, nil, fmt.Errorf("network: AGG_PLANES with %d present of %d members", present, members)
		}
		maskWords := aggMaskWords(members)
		planeWords := present * msgBits * batchWords(count)
		if planeWords > MaxAggPlaneWords {
			return 0, nil, fmt.Errorf("network: AGG_PLANES with %d plane words, want at most %d — shard wider",
				planeWords, MaxAggPlaneWords)
		}
		if len(payload) != 21+8*(maskWords+planeWords) {
			return 0, nil, fmt.Errorf("network: AGG_PLANES payload of %d bytes for %d present members of %d bits over %d trials, want %d",
				len(payload), present, msgBits, count, 21+8*(maskWords+planeWords))
		}
		mask := make([]uint64, maskWords)
		for i := range mask {
			mask[i] = binary.BigEndian.Uint64(payload[21+8*i:])
		}
		planesBuf := make([]uint64, planeWords)
		for i := range planesBuf {
			planesBuf[i] = binary.BigEndian.Uint64(payload[21+8*maskWords+8*i:])
		}
		v := AggPlanes{
			Agg:     binary.BigEndian.Uint32(payload[0:4]),
			Batch:   binary.BigEndian.Uint32(payload[4:8]),
			Count:   uint32(count),
			Bits:    uint8(msgBits),
			Members: uint32(members),
			Present: uint32(present),
			Mask:    mask,
			Planes:  planesBuf,
		}
		if err := checkAggPlanes(v); err != nil {
			return 0, nil, err
		}
		return t, v, nil
	case FrameAggVerdict:
		if len(payload) < 12 {
			return 0, nil, fmt.Errorf("network: AGG_VERDICT payload of %d bytes", len(payload))
		}
		count := int(binary.BigEndian.Uint32(payload[4:8]))
		if count < 1 || count > MaxBatchTrials {
			return 0, nil, fmt.Errorf("network: AGG_VERDICT with %d trials, want 1..%d", count, MaxBatchTrials)
		}
		shards := int(binary.BigEndian.Uint32(payload[8:12]))
		if shards < 1 || shards > MaxAggShards {
			return 0, nil, fmt.Errorf("network: AGG_VERDICT with %d shards, want 1..%d", shards, MaxAggShards)
		}
		words := batchWords(count)
		if len(payload) != 12+4*shards+8*words {
			return 0, nil, fmt.Errorf("network: AGG_VERDICT payload of %d bytes for %d trials over %d shards, want %d",
				len(payload), count, shards, 12+4*shards+8*words)
		}
		present := make([]uint32, shards)
		for i := range present {
			present[i] = binary.BigEndian.Uint32(payload[12+4*i:])
		}
		bits := make([]uint64, words)
		for i := range bits {
			bits[i] = binary.BigEndian.Uint64(payload[12+4*shards+8*i:])
		}
		v := AggVerdict{
			Batch:   binary.BigEndian.Uint32(payload[0:4]),
			Count:   uint32(count),
			Present: present,
			Bits:    bits,
		}
		if err := checkAggVerdict(v); err != nil {
			return 0, nil, err
		}
		return t, v, nil
	default:
		return 0, nil, fmt.Errorf("network: unknown frame type %d", uint8(t))
	}
}

// expectFrame reads the next frame and requires a specific type.
func expectFrame[T any](r io.Reader, want FrameType) (T, error) {
	var zero T
	t, msg, err := ReadFrame(r)
	if err != nil {
		return zero, err
	}
	if t != want {
		return zero, fmt.Errorf("network: expected %v, got %v", want, t)
	}
	typed, ok := msg.(T)
	if !ok {
		return zero, fmt.Errorf("network: frame %v decoded to unexpected type %T", t, msg)
	}
	return typed, nil
}
