package network

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
)

// Cluster runs a full SMP tester as a networked system: a referee server
// plus k player nodes over a Transport. It implements core.Protocol, so a
// networked deployment plugs into the same measurement harness as the
// in-process SMP simulator.
type Cluster struct {
	k       int
	q       int
	rule    core.LocalRule
	referee core.Referee
	tr      Transport
	timeout time.Duration
}

var _ core.Protocol = (*Cluster)(nil)

// ClusterConfig configures NewCluster.
type ClusterConfig struct {
	// K is the number of player nodes.
	K int
	// Q is the per-node sample count.
	Q int
	// Rule is the shared local rule.
	Rule core.LocalRule
	// Referee is the decision function.
	Referee core.Referee
	// Transport carries the frames; nil selects a fresh MemTransport.
	Transport Transport
	// Timeout bounds every per-frame wait; zero means 10 seconds.
	Timeout time.Duration
}

// NewCluster validates the configuration.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("network: cluster with %d players", cfg.K)
	}
	if cfg.Q < 0 {
		return nil, fmt.Errorf("network: cluster with %d samples per player", cfg.Q)
	}
	if cfg.Rule == nil {
		return nil, fmt.Errorf("network: cluster with nil rule")
	}
	if cfg.Referee == nil {
		return nil, fmt.Errorf("network: cluster with nil referee")
	}
	if cfg.Timeout < 0 {
		return nil, fmt.Errorf("network: negative timeout %v", cfg.Timeout)
	}
	tr := cfg.Transport
	if tr == nil {
		tr = NewMemTransport()
	}
	return &Cluster{
		k:       cfg.K,
		q:       cfg.Q,
		rule:    cfg.Rule,
		referee: cfg.Referee,
		tr:      tr,
		timeout: cfg.Timeout,
	}, nil
}

// Players implements core.Protocol.
func (c *Cluster) Players() int { return c.k }

// MaxSamplesPerPlayer implements core.Protocol.
func (c *Cluster) MaxSamplesPerPlayer() int { return c.q }

// Run implements core.Protocol: it executes one networked round against
// the sampler and returns the referee's verdict. Each node derives its own
// private generator from rng, so runs are reproducible for a fixed rng
// state even though nodes execute concurrently.
func (c *Cluster) Run(sampler dist.Sampler, rng *rand.Rand) (bool, error) {
	return c.RunContext(context.Background(), sampler, rng)
}

// RunContext is Run with cancellation.
func (c *Cluster) RunContext(ctx context.Context, sampler dist.Sampler, rng *rand.Rand) (bool, error) {
	if sampler == nil {
		return false, fmt.Errorf("network: nil sampler")
	}
	if rng == nil {
		return false, fmt.Errorf("network: nil rng")
	}
	server, err := NewRefereeServer(c.k, c.referee, c.timeout)
	if err != nil {
		return false, err
	}
	listener, err := c.tr.Listen()
	if err != nil {
		return false, fmt.Errorf("network: listen: %w", err)
	}
	defer func() { _ = listener.Close() }()

	// Close the listener if the context dies so a blocked Accept returns.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			_ = listener.Close()
		case <-watchdogDone:
		}
	}()

	seed := rng.Uint64()

	type result struct {
		accept bool
		err    error
	}
	nodeResults := make(chan result, c.k)
	var wg sync.WaitGroup
	for i := 0; i < c.k; i++ {
		node, err := NewPlayerNode(uint32(i), c.q, c.rule, sampler, c.timeout)
		if err != nil {
			return false, err
		}
		nodeRng := rand.New(rand.NewPCG(rng.Uint64(), rng.Uint64()))
		wg.Add(1)
		go func() {
			defer wg.Done()
			accept, err := node.RunRound(c.tr, listener.Addr(), nodeRng)
			nodeResults <- result{accept: accept, err: err}
		}()
	}

	verdict, refErr := server.RunRound(ctx, listener, seed)

	// Wait for the nodes, but do not block past cancellation: a node stuck
	// inside its own rule cannot be force-aborted, and on ctx death its
	// connection is already closed, so it will unwind as soon as the rule
	// returns.
	nodesDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(nodesDone)
	}()
	select {
	case <-nodesDone:
	case <-ctx.Done():
		if refErr != nil {
			return false, refErr
		}
		return false, ctx.Err()
	}

	close(nodeResults)
	if refErr != nil {
		return false, refErr
	}
	for r := range nodeResults {
		if r.err != nil {
			return false, r.err
		}
		if r.accept != verdict {
			return false, fmt.Errorf("network: node saw verdict %v, referee decided %v", r.accept, verdict)
		}
	}
	return verdict, nil
}
