package network

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
)

// Cluster runs a full SMP tester as a networked system: a referee server
// plus k player nodes over a Transport. It implements core.Protocol, so a
// networked deployment plugs into the same measurement harness as the
// in-process SMP simulator. With MinVotes set it runs in quorum mode:
// stragglers, crashed nodes and protocol violators are tolerated down to
// the quorum and reported in RoundStats instead of failing the round.
type Cluster struct {
	k         int
	q         int
	rule      core.LocalRule
	referee   core.Referee
	tr        Transport
	timeout   time.Duration
	minVotes  int
	absentees core.AbsenteePolicy
	retries   int
	backoff   time.Duration
	topo      Topology
}

var _ core.Protocol = (*Cluster)(nil)

// ClusterConfig configures NewCluster.
type ClusterConfig struct {
	// K is the number of player nodes.
	K int
	// Q is the per-node sample count.
	Q int
	// Rule is the shared local rule.
	Rule core.LocalRule
	// Referee is the decision function.
	Referee core.Referee
	// Transport carries the frames; nil selects a fresh MemTransport.
	Transport Transport
	// Timeout bounds every per-frame wait and, in quorum mode, the accept
	// phase; zero means 10 seconds.
	Timeout time.Duration
	// MinVotes enables straggler tolerance: a round succeeds once at
	// least MinVotes valid votes arrive, absentees entering the decision
	// per Absentees. Zero (or K) keeps the strict all-K-votes semantics.
	MinVotes int
	// Absentees is how missing votes enter the decision in quorum mode;
	// core.AbsenteeDefault defers to the referee rule's advice.
	Absentees core.AbsenteePolicy
	// DialRetries is each node's retry budget for dial+HELLO after the
	// first attempt; zero selects DefaultDialRetries, negative disables
	// retries.
	DialRetries int
	// RetryBackoff is the initial node-side backoff between connect
	// attempts, doubled per retry; zero selects DefaultRetryBackoff.
	RetryBackoff time.Duration
	// Shards is the number of L1 aggregators in the referee tree; 0 and
	// 1 both keep the flat star. Sharding only affects the batched
	// engine paths (RunManyStats and the engine backend); verdicts are
	// bit-identical to the flat referee by contract.
	Shards int
	// AggregatorWeights are relative aggregator capacities for
	// heterogeneous placements; nil means uniform. Must be len Shards
	// when set, each weight >= 1.
	AggregatorWeights []int
	// ShardSeed, when non-zero, deals players to shards in a
	// deterministically shuffled order instead of contiguous ranges.
	ShardSeed uint64
}

// NewCluster validates the configuration.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("network: cluster with %d players", cfg.K)
	}
	if cfg.Q < 0 {
		return nil, fmt.Errorf("network: cluster with %d samples per player", cfg.Q)
	}
	if cfg.Rule == nil {
		return nil, fmt.Errorf("network: cluster with nil rule")
	}
	if cfg.Referee == nil {
		return nil, fmt.Errorf("network: cluster with nil referee")
	}
	if cfg.Timeout < 0 {
		return nil, fmt.Errorf("network: negative timeout %v", cfg.Timeout)
	}
	if cfg.MinVotes < 0 || cfg.MinVotes > cfg.K {
		return nil, fmt.Errorf("network: quorum of %d votes for %d players", cfg.MinVotes, cfg.K)
	}
	if !cfg.Absentees.Valid() {
		return nil, fmt.Errorf("network: unknown absentee policy %d", int(cfg.Absentees))
	}
	if cfg.RetryBackoff < 0 {
		return nil, fmt.Errorf("network: negative retry backoff %v", cfg.RetryBackoff)
	}
	topo := Topology{Shards: cfg.Shards, Weights: cfg.AggregatorWeights, Seed: cfg.ShardSeed}
	if err := topo.validate(cfg.K); err != nil {
		return nil, err
	}
	tr := cfg.Transport
	if tr == nil {
		tr = NewMemTransport()
	}
	minVotes := cfg.MinVotes
	if minVotes == 0 {
		minVotes = cfg.K
	}
	retries := cfg.DialRetries
	if retries == 0 {
		retries = DefaultDialRetries
	} else if retries < 0 {
		retries = 0
	}
	backoff := cfg.RetryBackoff
	if backoff == 0 {
		backoff = DefaultRetryBackoff
	}
	return &Cluster{
		k:         cfg.K,
		q:         cfg.Q,
		rule:      cfg.Rule,
		referee:   cfg.Referee,
		tr:        tr,
		timeout:   cfg.Timeout,
		minVotes:  minVotes,
		absentees: cfg.Absentees,
		retries:   retries,
		backoff:   backoff,
		topo:      topo,
	}, nil
}

// Players implements core.Protocol.
func (c *Cluster) Players() int { return c.k }

// MaxSamplesPerPlayer implements core.Protocol.
func (c *Cluster) MaxSamplesPerPlayer() int { return c.q }

// tolerant reports whether the cluster runs in quorum mode, where node
// failures are tolerated down to MinVotes.
func (c *Cluster) tolerant() bool { return c.minVotes < c.k }

// newServer builds the referee server with the cluster's quorum
// settings; the rule's message width is pinned so a node announcing a
// different width in HELLO fails by name at handshake time.
func (c *Cluster) newServer() (*RefereeServer, error) {
	return NewRefereeServer(c.k, c.referee, c.timeout,
		WithMinVotes(c.minVotes), WithAbsentees(c.absentees),
		WithMessageBits(c.rule.Bits()))
}

// buildNodes constructs all k player nodes before any goroutine is
// spawned: a construction error must not leave already-spawned nodes
// running against a live listener. Nodes carry no generator — each derives
// its randomness per round from the ROUND frame's seed and its id.
func (c *Cluster) buildNodes(sampler dist.Sampler) ([]*PlayerNode, error) {
	nodes := make([]*PlayerNode, c.k)
	for i := 0; i < c.k; i++ {
		node, err := NewPlayerNode(uint32(i), c.q, c.rule, sampler, c.timeout)
		if err != nil {
			return nil, err
		}
		node.SetRetryPolicy(c.retries, c.backoff)
		nodes[i] = node
	}
	return nodes, nil
}

// Run implements core.Protocol: it executes one networked round against
// the sampler and returns the referee's verdict. The round's public-coin
// seed is drawn from rng; every node derives its private stream from that
// seed and its id, so runs are reproducible for a fixed rng state even
// though nodes execute concurrently.
func (c *Cluster) Run(sampler dist.Sampler, rng *rand.Rand) (bool, error) {
	return c.RunContext(context.Background(), sampler, rng)
}

// RunContext is Run with cancellation.
func (c *Cluster) RunContext(ctx context.Context, sampler dist.Sampler, rng *rand.Rand) (bool, error) {
	accept, _, err := c.RunStats(ctx, sampler, rng)
	return accept, err
}

// RunStats is RunContext with the round's statistics: votes received,
// stragglers tolerated, node-side connect retries, and wall time.
func (c *Cluster) RunStats(ctx context.Context, sampler dist.Sampler, rng *rand.Rand) (bool, RoundStats, error) {
	if rng == nil {
		return false, RoundStats{}, fmt.Errorf("network: nil rng")
	}
	return c.RunRoundSeeded(ctx, sampler, rng.Uint64())
}

// RunRoundSeeded executes one networked round with an explicit
// public-coin seed: the seed rides in the ROUND frame and every node's
// samples and private coins derive from (seed, id), making the round's
// verdict bit-identical to the in-process SMP simulator's for the same
// seed. This is the primitive the engine's cluster backend drives.
func (c *Cluster) RunRoundSeeded(ctx context.Context, sampler dist.Sampler, seed uint64) (bool, RoundStats, error) {
	if sampler == nil {
		return false, RoundStats{}, fmt.Errorf("network: nil sampler")
	}
	nodes, err := c.buildNodes(sampler)
	if err != nil {
		return false, RoundStats{}, err
	}
	return c.runRoundSeededNodes(ctx, nodes, seed)
}

// runRoundSeededNodes is RunRoundSeeded over caller-owned nodes, so the
// engine's scratch backend can reuse one node set (sample buffers and
// reseedable generators included) across trials instead of rebuilding k
// nodes per round.
//
//dut:coldpath classic per-trial protocol: one referee session per round by design; the zero-alloc contract covers the batch path
func (c *Cluster) runRoundSeededNodes(ctx context.Context, nodes []*PlayerNode, seed uint64) (bool, RoundStats, error) {
	var stats RoundStats
	server, err := c.newServer()
	if err != nil {
		return false, stats, err
	}
	listener, err := c.tr.Listen()
	if err != nil {
		return false, stats, fmt.Errorf("network: listen: %w", err)
	}
	defer func() { _ = listener.Close() }()

	// In strict mode a failed node dooms the round, so its goroutine
	// cancels runCtx to unblock a referee still waiting in accept.
	runCtx, cancelRound := context.WithCancel(ctx)
	defer cancelRound()

	// Close the listener if the round dies so a blocked Accept returns.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-runCtx.Done():
			_ = listener.Close()
		case <-watchdogDone:
		}
	}()

	type result struct {
		accept  bool
		retries int
		err     error
	}
	nodeResults := make(chan result, c.k)
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(node *PlayerNode) {
			defer wg.Done()
			accept, retries, err := node.RunRoundStats(c.tr, listener.Addr())
			if err != nil && !c.tolerant() {
				cancelRound()
			}
			nodeResults <- result{accept: accept, retries: retries, err: err}
		}(nodes[i])
	}

	verdict, stats, refErr := server.RunRoundStats(runCtx, listener, seed)

	// Wait for the nodes, but do not block past cancellation: a node stuck
	// inside its own rule cannot be force-aborted, and on ctx death its
	// connection is already closed, so it will unwind as soon as the rule
	// returns.
	nodesDone := make(chan struct{})
	//lint:ignore dut/ctxprop wg.Wait has no cancellation hook; the goroutine only closes nodesDone, and the select below honors ctx
	go func() {
		wg.Wait()
		close(nodesDone)
	}()
	select {
	case <-nodesDone:
	case <-ctx.Done():
		if refErr != nil {
			return false, stats, refErr
		}
		return false, stats, ctx.Err()
	}

	close(nodeResults)
	var nodeErr error
	for r := range nodeResults {
		stats.Retries += r.retries
		if r.err != nil {
			if c.tolerant() {
				continue // the referee already accounted for this straggler
			}
			if nodeErr == nil {
				nodeErr = r.err
			}
			continue
		}
		if refErr == nil && r.accept != verdict {
			return false, stats, fmt.Errorf("network: node saw verdict %v, referee decided %v", r.accept, verdict)
		}
	}
	// A strict-mode node failure is the root cause; the referee error it
	// provokes (cancelled accept, closed connections) is only a symptom.
	if nodeErr != nil {
		return false, stats, nodeErr
	}
	if refErr != nil {
		return false, stats, refErr
	}
	return verdict, stats, nil
}
