package network

import (
	"fmt"
	"math/rand/v2"
	"net"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
)

// PlayerNode is one sensor/server in the network: it owns a sampler for
// its local observations and a core.LocalRule for its vote.
type PlayerNode struct {
	id      uint32
	q       int
	rule    core.LocalRule
	sampler dist.Sampler
	timeout time.Duration
}

// NewPlayerNode builds a node. timeout bounds each frame wait; zero means
// 10 seconds.
func NewPlayerNode(id uint32, q int, rule core.LocalRule, sampler dist.Sampler, timeout time.Duration) (*PlayerNode, error) {
	if q < 0 {
		return nil, fmt.Errorf("network: node %d with %d samples", id, q)
	}
	if rule == nil {
		return nil, fmt.Errorf("network: node %d with nil rule", id)
	}
	if sampler == nil {
		return nil, fmt.Errorf("network: node %d with nil sampler", id)
	}
	if timeout < 0 {
		return nil, fmt.Errorf("network: negative timeout %v", timeout)
	}
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	return &PlayerNode{id: id, q: q, rule: rule, sampler: sampler, timeout: timeout}, nil
}

// RunRound participates in one round over the given transport and returns
// the referee's verdict as seen by this node.
func (p *PlayerNode) RunRound(tr Transport, addr net.Addr, rng *rand.Rand) (bool, error) {
	if tr == nil {
		return false, fmt.Errorf("network: nil transport")
	}
	if rng == nil {
		return false, fmt.Errorf("network: nil rng")
	}
	conn, err := tr.Dial(addr)
	if err != nil {
		return false, fmt.Errorf("network: node %d dial: %w", p.id, err)
	}
	defer func() { _ = conn.Close() }()
	setDeadline(conn, p.timeout)

	if err := WriteHello(conn, Hello{Player: p.id, Bits: uint8(p.rule.Bits())}); err != nil {
		return false, fmt.Errorf("network: node %d hello: %w", p.id, err)
	}
	round, err := expectFrame[Round](conn, FrameRound)
	if err != nil {
		return false, fmt.Errorf("network: node %d round: %w", p.id, err)
	}

	samples := dist.SampleN(p.sampler, p.q, rng)
	msg, err := p.rule.Message(int(p.id), samples, round.Seed, rng)
	if err != nil {
		return false, fmt.Errorf("network: node %d rule: %w", p.id, err)
	}
	if err := WriteVote(conn, Vote{Player: p.id, Message: uint64(msg)}); err != nil {
		return false, fmt.Errorf("network: node %d vote: %w", p.id, err)
	}
	verdict, err := expectFrame[Verdict](conn, FrameVerdict)
	if err != nil {
		return false, fmt.Errorf("network: node %d verdict: %w", p.id, err)
	}
	return verdict.Accept, nil
}
