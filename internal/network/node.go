package network

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// Default retry policy for a node's connect (dial + HELLO) phase: enough
// to ride out transient connection drops without masking a dead referee.
const (
	// DefaultDialRetries is the number of retry attempts after the first
	// failed connect.
	DefaultDialRetries = 2
	// DefaultRetryBackoff is the sleep before the first retry; it doubles
	// on every subsequent retry.
	DefaultRetryBackoff = 5 * time.Millisecond
)

// PlayerNode is one sensor/server in the network: it owns a sampler for
// its local observations and a core.LocalRule for its vote. Transient
// dial and HELLO failures are retried with exponential backoff (see
// SetRetryPolicy), so the faults a FaultTransport injects at connect
// time are survivable.
type PlayerNode struct {
	id      uint32
	q       int
	rule    core.LocalRule
	sampler dist.Sampler
	timeout time.Duration
	retries int
	backoff time.Duration

	// Per-round scratch, allocated once at construction: the sample batch
	// buffer dist.SampleInto fills and the reseedable per-round generator.
	// A node participates in one round at a time (rounds of a session are
	// sequential), so the reuse is race-free.
	buf []int
	rng *engine.ReusableRNG

	// voteBits is the reusable packed-vote buffer for ROUND_BATCH replies;
	// like buf it is safe to reuse because a node handles one frame at a
	// time.
	voteBits []uint64

	// staged holds per-batch sampler overrides keyed by batch id, set by
	// the referee-side aggregator before it issues the ROUND_BATCH. The
	// map is the only node state touched from another goroutine (the
	// aggregator stages while the node loop votes), hence the mutex.
	stagedMu sync.Mutex
	staged   map[uint32][]dist.Sampler
}

// NewPlayerNode builds a node. timeout bounds each frame wait; zero means
// 10 seconds. The rule's Bits() must be in [1, 64] — the referee would
// reject the HELLO anyway, and failing here keeps the error local.
func NewPlayerNode(id uint32, q int, rule core.LocalRule, sampler dist.Sampler, timeout time.Duration) (*PlayerNode, error) {
	if q < 0 {
		return nil, fmt.Errorf("network: node %d with %d samples", id, q)
	}
	if rule == nil {
		return nil, fmt.Errorf("network: node %d with nil rule", id)
	}
	if sampler == nil {
		return nil, fmt.Errorf("network: node %d with nil sampler", id)
	}
	if timeout < 0 {
		return nil, fmt.Errorf("network: negative timeout %v", timeout)
	}
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	if b := rule.Bits(); b < 1 || b > 64 {
		return nil, fmt.Errorf("network: node %d rule uses %d message bits, want 1..64", id, b)
	}
	return &PlayerNode{
		id: id, q: q, rule: rule, sampler: sampler, timeout: timeout,
		retries: DefaultDialRetries, backoff: DefaultRetryBackoff,
		buf: make([]int, q), rng: engine.NewReusableRNG(),
	}, nil
}

// setSampler rebinds the node's sampler between rounds; the engine's
// scratch cluster backend uses it to reuse one node set across trials
// whose sources serve varying distributions.
func (p *PlayerNode) setSampler(sampler dist.Sampler) { p.sampler = sampler }

// SetRetryPolicy overrides the connect retry budget: retries is the
// number of attempts after the first (negative clamps to zero, i.e. fail
// fast), backoff the initial sleep between attempts (non-positive selects
// the default), doubled per retry.
func (p *PlayerNode) SetRetryPolicy(retries int, backoff time.Duration) {
	if retries < 0 {
		retries = 0
	}
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	p.retries = retries
	p.backoff = backoff
}

// dialAs uses per-player dialing when the transport supports it, so
// fault-injecting transports can apply per-player plans.
func dialAs(tr Transport, addr net.Addr, player uint32) (net.Conn, error) {
	if pd, ok := tr.(PlayerDialer); ok {
		return pd.DialPlayer(addr, player)
	}
	return tr.Dial(addr)
}

// connect dials the referee and completes the HELLO, retrying transient
// failures with exponential backoff. It returns the ready connection and
// the number of retry attempts spent.
func (p *PlayerNode) connect(tr Transport, addr net.Addr) (net.Conn, int, error) {
	backoff := p.backoff
	var lastErr error
	for attempt := 0; attempt <= p.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		conn, err := dialAs(tr, addr, p.id)
		if err != nil {
			lastErr = fmt.Errorf("network: node %d dial: %w", p.id, err)
			continue
		}
		setDeadline(conn, p.timeout)
		if err := WriteHello(conn, Hello{Player: p.id, Bits: uint8(p.rule.Bits())}); err != nil {
			_ = conn.Close()
			lastErr = fmt.Errorf("network: node %d hello: %w", p.id, err)
			continue
		}
		return conn, attempt, nil
	}
	return nil, p.retries, fmt.Errorf("network: node %d connect failed after %d attempt(s): %w", p.id, p.retries+1, lastErr)
}

// RunRoundStats participates in one round over the given transport and
// returns the referee's verdict as seen by this node, together with the
// number of connect retries spent. The node's sampling and private coins
// derive from the ROUND frame's public-coin seed and its own id
// (engine.NodeRNG), so a networked round reproduces the in-process SMP
// round with the same seed bit for bit.
func (p *PlayerNode) RunRoundStats(tr Transport, addr net.Addr) (bool, int, error) {
	if tr == nil {
		return false, 0, fmt.Errorf("network: nil transport")
	}
	conn, retries, err := p.connect(tr, addr)
	if err != nil {
		return false, retries, err
	}
	defer func() { _ = conn.Close() }()

	// A referee frame can lag a full referee phase behind: in quorum mode
	// the accept phase holds the ROUND back for up to one timeout while
	// the referee waits out stragglers. Budget two timeouts for reads.
	setDeadline(conn, 2*p.timeout)
	round, err := expectFrame[Round](conn, FrameRound)
	if err != nil {
		return false, retries, fmt.Errorf("network: node %d round: %w", p.id, err)
	}
	rng := p.rng.SeedNode(round.Seed, int(p.id))
	dist.SampleInto(p.sampler, p.buf, rng)
	msg, err := p.rule.Message(int(p.id), p.buf, round.Seed, rng)
	if err != nil {
		return false, retries, fmt.Errorf("network: node %d rule: %w", p.id, err)
	}
	// Refresh the deadline: sampling and the rule may have consumed the
	// connect-phase deadline.
	setDeadline(conn, p.timeout)
	if err := WriteVote(conn, Vote{Player: p.id, Message: uint64(msg)}); err != nil {
		return false, retries, fmt.Errorf("network: node %d vote: %w", p.id, err)
	}
	// The verdict waits on the whole vote-gathering phase: slow peers may
	// consume most of a timeout before the referee can decide.
	setDeadline(conn, 2*p.timeout)
	verdict, err := expectFrame[Verdict](conn, FrameVerdict)
	if err != nil {
		return false, retries, fmt.Errorf("network: node %d verdict: %w", p.id, err)
	}
	return verdict.Accept, retries, nil
}

// RunRound is RunRoundStats without the retry count.
func (p *PlayerNode) RunRound(tr Transport, addr net.Addr) (bool, error) {
	accept, _, err := p.RunRoundStats(tr, addr)
	return accept, err
}

// stageBatch registers per-trial sampler overrides for an upcoming
// ROUND_BATCH. The aggregator calls it before issuing the frame; the
// node loop claims the slice (takeStaged) when the frame arrives. A
// batch with no staged samplers falls back to the node's own sampler
// for every trial.
func (p *PlayerNode) stageBatch(batch uint32, samplers []dist.Sampler) {
	p.stagedMu.Lock()
	if p.staged == nil {
		//lint:ignore dut/hotalloc lazy once-per-node map initialization, reused for every later batch
		p.staged = make(map[uint32][]dist.Sampler)
	}
	p.staged[batch] = samplers
	p.stagedMu.Unlock()
}

// takeStaged claims and removes the sampler overrides staged for a
// batch id.
func (p *PlayerNode) takeStaged(batch uint32) ([]dist.Sampler, bool) {
	p.stagedMu.Lock()
	s, ok := p.staged[batch]
	if ok {
		delete(p.staged, batch)
	}
	p.stagedMu.Unlock()
	return s, ok
}

// voteBatch computes one vote per seed of a ROUND_BATCH and replies
// with the packed VOTE_BATCH (single-bit rules) or VOTE_BATCH_R (r-bit
// rules, one bit-plane per message bit). Each trial's derivation is
// exactly the single-round path's — engine.NodeRNG(seed, id) feeding
// SampleInto and the rule — so lane j of the reply equals the VOTE the
// node would have sent for seed j unbatched. Single-bit rules keep the
// classic VOTE_BATCH frame, byte-identical to the pre-r protocol.
//
//dut:hotpath per-batch node sampling and vote encode
func (p *PlayerNode) voteBatch(conn net.Conn, rb RoundBatch) error {
	msgBits := p.rule.Bits()
	count := len(rb.Seeds)
	samplers, staged := p.takeStaged(rb.Batch)
	if staged && len(samplers) != count {
		return fmt.Errorf("network: node %d staged %d samplers for batch %d of %d trials", p.id, len(samplers), rb.Batch, count)
	}
	words := batchWords(count)
	need := msgBits * words
	if cap(p.voteBits) < need {
		p.voteBits = make([]uint64, need)
	}
	voteBits := p.voteBits[:need]
	for i := range voteBits {
		voteBits[i] = 0
	}
	for j, seed := range rb.Seeds {
		sampler := p.sampler
		if staged {
			sampler = samplers[j]
		}
		rng := p.rng.SeedNode(seed, int(p.id))
		dist.SampleInto(sampler, p.buf, rng)
		msg, err := p.rule.Message(int(p.id), p.buf, seed, rng)
		if err != nil {
			return fmt.Errorf("network: node %d rule: %w", p.id, err)
		}
		if msgBits < 64 && msg >= 1<<msgBits {
			return fmt.Errorf("network: node %d message %#x wider than the rule's %d bits", p.id, uint64(msg), msgBits)
		}
		for b := 0; b < msgBits; b++ {
			if msg>>b&1 == 1 {
				voteBits[b*words+j/64] |= 1 << (j % 64)
			}
		}
	}
	// Refresh the deadline: a large batch of sampling may have consumed
	// most of the read-phase budget.
	setDeadline(conn, p.timeout)
	if msgBits == 1 {
		return WriteVoteBatch(conn, VoteBatch{Player: p.id, Batch: rb.Batch, Count: uint32(count), Bits: voteBits})
	}
	return WriteVoteBatchR(conn, VoteBatchR{
		Player: p.id, Batch: rb.Batch, Count: uint32(count), Bits: uint8(msgBits), Planes: voteBits,
	})
}
