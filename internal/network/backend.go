package network

import (
	"context"
	"fmt"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// clusterBackend runs each engine trial as one full networked round:
// listener, node goroutines, HELLO/ROUND/VOTE/VERDICT, teardown. The
// round's public coin is engine.SharedSeed(spec.Seed, spec.Trial), so
// verdicts are bit-identical to the in-process SMP backend's for the
// same engine seed. It implements engine.ScratchBackend: each driver
// worker keeps one prebuilt node set (sample buffers and reseedable
// generators included) and rebinds the trial's sampler instead of
// constructing k nodes per round.
type clusterBackend struct {
	c *Cluster
}

var (
	_ engine.ScratchBackend = (*clusterBackend)(nil)
	_ engine.BatchBackend   = (*clusterBackend)(nil)
)

// NewBackend adapts a Cluster to the engine's Backend interface.
func NewBackend(c *Cluster) (engine.Backend, error) {
	if c == nil {
		return nil, fmt.Errorf("network: nil cluster")
	}
	return &clusterBackend{c: c}, nil
}

// Players implements engine.Backend.
func (b *clusterBackend) Players() int { return b.c.k }

// clusterScratch is one engine worker's reusable cluster state: the
// prebuilt node set of the per-round path, plus — created lazily on the
// first batched chunk — a live pipelined batch session reused across
// every chunk the worker runs. The engine closes it (io.Closer) when
// the worker exits.
type clusterScratch struct {
	nodes []*PlayerNode
	batch *batchSession
}

// Close implements io.Closer: it finishes the worker's batch session,
// if one was started.
func (s *clusterScratch) Close() error {
	if s.batch == nil {
		return nil
	}
	err := s.batch.Close()
	s.batch = nil
	return err
}

// NewScratch implements engine.ScratchBackend: one reusable node set per
// worker. The placeholder sampler is replaced per round.
func (b *clusterBackend) NewScratch() any {
	nodes, err := b.c.buildNodes(dist.NopSampler{})
	if err != nil {
		// Construction can only fail on invalid cluster config, which
		// NewCluster already rejected; fall back to the per-round path.
		return nil
	}
	return &clusterScratch{nodes: nodes}
}

// RunRound implements engine.Backend.
func (b *clusterBackend) RunRound(ctx context.Context, spec engine.RoundSpec) (engine.RoundResult, error) {
	shared := engine.SharedSeed(spec.Seed, spec.Trial)
	accept, rs, err := b.c.RunRoundSeeded(ctx, spec.Sampler, shared)
	if err != nil {
		return engine.RoundResult{}, err
	}
	return b.roundResult(accept, rs), nil
}

// RunRoundScratch implements engine.ScratchBackend.
func (b *clusterBackend) RunRoundScratch(ctx context.Context, spec engine.RoundSpec, scratch any) (engine.RoundResult, error) {
	cs, ok := scratch.(*clusterScratch)
	if !ok || len(cs.nodes) != b.c.k {
		return b.RunRound(ctx, spec)
	}
	if spec.Sampler == nil {
		return engine.RoundResult{}, fmt.Errorf("network: nil sampler")
	}
	for _, n := range cs.nodes {
		n.setSampler(spec.Sampler)
	}
	shared := engine.SharedSeed(spec.Seed, spec.Trial)
	accept, rs, err := b.c.runRoundSeededNodes(ctx, cs.nodes, shared)
	if err != nil {
		return engine.RoundResult{}, err
	}
	return b.roundResult(accept, rs), nil
}

// RunRoundsScratch implements engine.BatchBackend: the worker's chunk
// of trials runs through a persistent pipelined session — ROUND_BATCH
// frames of up to batch seeds, every batch of the chunk in flight at
// once, packed VOTE_BATCH / VOTE_BATCH_R gathering and per-batch
// verdict evaluation for any message width. Foreign scratch (or
// batching disabled) falls back to the per-trial scratch path.
func (b *clusterBackend) RunRoundsScratch(ctx context.Context, scratch any, specs []engine.RoundSpec, batch int, out []engine.RoundResult) error {
	if len(out) != len(specs) {
		return fmt.Errorf("network: %d results for %d specs", len(out), len(specs))
	}
	cs, ok := scratch.(*clusterScratch)
	if !ok || batch < 1 {
		for i, spec := range specs {
			res, err := b.RunRoundScratch(ctx, spec, scratch)
			if err != nil {
				return err
			}
			out[i] = res
		}
		return nil
	}
	if batch > MaxBatchTrials {
		batch = MaxBatchTrials
	}
	if cs.batch == nil {
		sess, err := newBatchSession(ctx, b.c)
		if err != nil {
			return err
		}
		cs.batch = sess
	}
	return cs.batch.runChunk(ctx, specs, batch, out)
}

// roundResult maps a networked round's stats onto the engine's uniform
// accounting.
func (b *clusterBackend) roundResult(accept bool, rs RoundStats) engine.RoundResult {
	return engine.RoundResult{
		Verdict:    accept,
		Votes:      rs.Votes,
		Stragglers: rs.Stragglers,
		Retries:    rs.Retries,
		Messages:   rs.Votes,
		Samples:    rs.Votes * b.c.q,
		Wall:       rs.Wall,
	}
}
