package network

import (
	"context"
	"fmt"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// clusterBackend runs each engine trial as one full networked round:
// listener, node goroutines, HELLO/ROUND/VOTE/VERDICT, teardown. The
// round's public coin is engine.SharedSeed(spec.Seed, spec.Trial), so
// verdicts are bit-identical to the in-process SMP backend's for the
// same engine seed. It implements engine.ScratchBackend: each driver
// worker keeps one prebuilt node set (sample buffers and reseedable
// generators included) and rebinds the trial's sampler instead of
// constructing k nodes per round.
type clusterBackend struct {
	c *Cluster
}

var _ engine.ScratchBackend = (*clusterBackend)(nil)

// NewBackend adapts a Cluster to the engine's Backend interface.
func NewBackend(c *Cluster) (engine.Backend, error) {
	if c == nil {
		return nil, fmt.Errorf("network: nil cluster")
	}
	return &clusterBackend{c: c}, nil
}

// Players implements engine.Backend.
func (b *clusterBackend) Players() int { return b.c.k }

// NewScratch implements engine.ScratchBackend: one reusable node set per
// worker. The placeholder sampler is replaced per round.
func (b *clusterBackend) NewScratch() any {
	nodes, err := b.c.buildNodes(dist.NopSampler{})
	if err != nil {
		// Construction can only fail on invalid cluster config, which
		// NewCluster already rejected; fall back to the per-round path.
		return nil
	}
	return nodes
}

// RunRound implements engine.Backend.
func (b *clusterBackend) RunRound(ctx context.Context, spec engine.RoundSpec) (engine.RoundResult, error) {
	shared := engine.SharedSeed(spec.Seed, spec.Trial)
	accept, rs, err := b.c.RunRoundSeeded(ctx, spec.Sampler, shared)
	if err != nil {
		return engine.RoundResult{}, err
	}
	return b.roundResult(accept, rs), nil
}

// RunRoundScratch implements engine.ScratchBackend.
func (b *clusterBackend) RunRoundScratch(ctx context.Context, spec engine.RoundSpec, scratch any) (engine.RoundResult, error) {
	nodes, ok := scratch.([]*PlayerNode)
	if !ok || len(nodes) != b.c.k {
		return b.RunRound(ctx, spec)
	}
	if spec.Sampler == nil {
		return engine.RoundResult{}, fmt.Errorf("network: nil sampler")
	}
	for _, n := range nodes {
		n.setSampler(spec.Sampler)
	}
	shared := engine.SharedSeed(spec.Seed, spec.Trial)
	accept, rs, err := b.c.runRoundSeededNodes(ctx, nodes, shared)
	if err != nil {
		return engine.RoundResult{}, err
	}
	return b.roundResult(accept, rs), nil
}

// roundResult maps a networked round's stats onto the engine's uniform
// accounting.
func (b *clusterBackend) roundResult(accept bool, rs RoundStats) engine.RoundResult {
	return engine.RoundResult{
		Verdict:    accept,
		Votes:      rs.Votes,
		Stragglers: rs.Stragglers,
		Retries:    rs.Retries,
		Messages:   rs.Votes,
		Samples:    rs.Votes * b.c.q,
		Wall:       rs.Wall,
	}
}
