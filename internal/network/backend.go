package network

import (
	"context"
	"fmt"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// clusterBackend runs each engine trial as one full networked round:
// listener, node goroutines, HELLO/ROUND/VOTE/VERDICT, teardown. The
// round's public coin is engine.SharedSeed(spec.Seed, spec.Trial), so
// verdicts are bit-identical to the in-process SMP backend's for the
// same engine seed. It implements engine.ScratchBackend: each driver
// worker keeps one prebuilt node set (sample buffers and reseedable
// generators included) and rebinds the trial's sampler instead of
// constructing k nodes per round.
type clusterBackend struct {
	c *Cluster
}

var (
	_ engine.ScratchBackend = (*clusterBackend)(nil)
	_ engine.BatchBackend   = (*clusterBackend)(nil)
)

// BackendOption adjusts the cluster topology a backend drives, without
// mutating the caller's Cluster (the backend works on a copy).
type BackendOption func(*Cluster)

// WithShards sets the number of L1 aggregators in the referee tree;
// 0 and 1 both select the flat star.
func WithShards(s int) BackendOption {
	return func(c *Cluster) { c.topo.Shards = s }
}

// WithAggregatorWeights sets relative aggregator capacities for
// heterogeneous placements (must be one weight per shard, each >= 1).
func WithAggregatorWeights(w []int) BackendOption {
	return func(c *Cluster) { c.topo.Weights = w }
}

// WithShardSeed deals players to shards in a deterministically shuffled
// order instead of contiguous ranges.
func WithShardSeed(seed uint64) BackendOption {
	return func(c *Cluster) { c.topo.Seed = seed }
}

// NewBackend adapts a Cluster to the engine's Backend interface.
// Options override the cluster's topology for this backend only: the
// cluster is copied, so the same Cluster can drive a flat and a sharded
// backend side by side.
func NewBackend(c *Cluster, opts ...BackendOption) (engine.Backend, error) {
	if c == nil {
		return nil, fmt.Errorf("network: nil cluster")
	}
	if len(opts) > 0 {
		copied := *c
		for _, o := range opts {
			o(&copied)
		}
		if err := copied.topo.validate(copied.k); err != nil {
			return nil, err
		}
		c = &copied
	}
	return &clusterBackend{c: c}, nil
}

// Players implements engine.Backend.
func (b *clusterBackend) Players() int { return b.c.k }

// clusterScratch is one engine worker's reusable cluster state: the
// prebuilt node set of the per-round path, plus — created lazily on the
// first batched chunk — a live pipelined batch session reused across
// every chunk the worker runs. The engine closes it (io.Closer) when
// the worker exits.
type clusterScratch struct {
	nodes []*PlayerNode
	batch *batchSession
}

// Close implements io.Closer: it finishes the worker's batch session,
// if one was started.
func (s *clusterScratch) Close() error {
	if s.batch == nil {
		return nil
	}
	err := s.batch.Close()
	s.batch = nil
	return err
}

// NewScratch implements engine.ScratchBackend: one reusable node set per
// worker. The placeholder sampler is replaced per round. On a sharded
// topology the batch session owns node construction, so the scratch
// starts empty and the session is created lazily on the first chunk.
func (b *clusterBackend) NewScratch() any {
	if b.c.topo.enabled() {
		return &clusterScratch{}
	}
	nodes, err := b.c.buildNodes(dist.NopSampler{})
	if err != nil {
		// Construction can only fail on invalid cluster config, which
		// NewCluster already rejected; fall back to the per-round path.
		return nil
	}
	return &clusterScratch{nodes: nodes}
}

// RunRound implements engine.Backend.
//
//dut:coldpath foreign-scratch fallback: builds nodes and a referee session per round by design
func (b *clusterBackend) RunRound(ctx context.Context, spec engine.RoundSpec) (engine.RoundResult, error) {
	shared := engine.SharedSeed(spec.Seed, spec.Trial)
	accept, rs, err := b.c.RunRoundSeeded(ctx, spec.Sampler, shared)
	if err != nil {
		return engine.RoundResult{}, err
	}
	return b.roundResult(accept, rs), nil
}

// RunRoundScratch implements engine.ScratchBackend.
//
//dut:hotpath
func (b *clusterBackend) RunRoundScratch(ctx context.Context, spec engine.RoundSpec, scratch any) (engine.RoundResult, error) {
	cs, ok := scratch.(*clusterScratch)
	if ok && b.c.topo.enabled() {
		// Sharded rounds run through the tree's batch session as a batch
		// of one, so the per-trial scratch path exercises the same
		// topology as the batched one.
		specs := [1]engine.RoundSpec{spec}
		var out [1]engine.RoundResult
		if err := b.RunRoundsScratch(ctx, cs, specs[:], 1, out[:]); err != nil {
			return engine.RoundResult{}, err
		}
		return out[0], nil
	}
	if !ok || len(cs.nodes) != b.c.k {
		return b.RunRound(ctx, spec)
	}
	if spec.Sampler == nil {
		return engine.RoundResult{}, fmt.Errorf("network: nil sampler")
	}
	for _, n := range cs.nodes {
		n.setSampler(spec.Sampler)
	}
	shared := engine.SharedSeed(spec.Seed, spec.Trial)
	accept, rs, err := b.c.runRoundSeededNodes(ctx, cs.nodes, shared)
	if err != nil {
		return engine.RoundResult{}, err
	}
	return b.roundResult(accept, rs), nil
}

// RunRoundsScratch implements engine.BatchBackend: the worker's chunk
// of trials runs through a persistent pipelined session — ROUND_BATCH
// frames of up to batch seeds, every batch of the chunk in flight at
// once, packed VOTE_BATCH / VOTE_BATCH_R gathering and per-batch
// verdict evaluation for any message width. Foreign scratch (or
// batching disabled) falls back to the per-trial scratch path.
//
//dut:hotpath
func (b *clusterBackend) RunRoundsScratch(ctx context.Context, scratch any, specs []engine.RoundSpec, batch int, out []engine.RoundResult) error {
	if len(out) != len(specs) {
		return fmt.Errorf("network: %d results for %d specs", len(out), len(specs))
	}
	cs, ok := scratch.(*clusterScratch)
	if !ok || (batch < 1 && !b.c.topo.enabled()) {
		for i, spec := range specs {
			res, err := b.RunRoundScratch(ctx, spec, scratch)
			if err != nil {
				return err
			}
			out[i] = res
		}
		return nil
	}
	if batch < 1 {
		// A sharded topology always routes through the batch session —
		// it is the only path that builds the tree — as batches of one.
		batch = 1
	}
	if batch > MaxBatchTrials {
		batch = MaxBatchTrials
	}
	if cs.batch == nil {
		sess, err := newBatchSession(ctx, b.c)
		if err != nil {
			return err
		}
		cs.batch = sess
	}
	return cs.batch.runChunk(ctx, specs, batch, out)
}

// roundResult maps a networked round's stats onto the engine's uniform
// accounting.
func (b *clusterBackend) roundResult(accept bool, rs RoundStats) engine.RoundResult {
	return engine.RoundResult{
		Verdict:    accept,
		Votes:      rs.Votes,
		Stragglers: rs.Stragglers,
		Retries:    rs.Retries,
		Messages:   rs.Votes,
		Samples:    rs.Votes * b.c.q,
		Wall:       rs.Wall,
	}
}
