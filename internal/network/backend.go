package network

import (
	"context"
	"fmt"

	"github.com/distributed-uniformity/dut/internal/engine"
)

// clusterBackend runs each engine trial as one full networked round:
// listener, node goroutines, HELLO/ROUND/VOTE/VERDICT, teardown. The
// round's public coin is engine.SharedSeed(spec.Seed, spec.Trial), so
// verdicts are bit-identical to the in-process SMP backend's for the
// same engine seed.
type clusterBackend struct {
	c *Cluster
}

// NewBackend adapts a Cluster to the engine's Backend interface.
func NewBackend(c *Cluster) (engine.Backend, error) {
	if c == nil {
		return nil, fmt.Errorf("network: nil cluster")
	}
	return &clusterBackend{c: c}, nil
}

// Players implements engine.Backend.
func (b *clusterBackend) Players() int { return b.c.k }

// RunRound implements engine.Backend.
func (b *clusterBackend) RunRound(ctx context.Context, spec engine.RoundSpec) (engine.RoundResult, error) {
	shared := engine.SharedSeed(spec.Seed, spec.Trial)
	accept, rs, err := b.c.RunRoundSeeded(ctx, spec.Sampler, shared)
	if err != nil {
		return engine.RoundResult{}, err
	}
	return engine.RoundResult{
		Verdict:    accept,
		Votes:      rs.Votes,
		Stragglers: rs.Stragglers,
		Retries:    rs.Retries,
		Messages:   rs.Votes,
		Samples:    rs.Votes * b.c.q,
		Wall:       rs.Wall,
	}, nil
}
