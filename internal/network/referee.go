package network

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
)

// RefereeServer collects one round of votes from k players and broadcasts
// the decision of its core.Referee.
type RefereeServer struct {
	k       int
	decide  core.Referee
	timeout time.Duration
}

// NewRefereeServer builds the server. timeout bounds each connection's
// per-frame wait; zero means 10 seconds.
func NewRefereeServer(k int, decide core.Referee, timeout time.Duration) (*RefereeServer, error) {
	if k <= 0 {
		return nil, fmt.Errorf("network: referee for %d players", k)
	}
	if decide == nil {
		return nil, fmt.Errorf("network: nil decision function")
	}
	if timeout < 0 {
		return nil, fmt.Errorf("network: negative timeout %v", timeout)
	}
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	return &RefereeServer{k: k, decide: decide, timeout: timeout}, nil
}

// RunRound accepts k player connections on the listener, runs the HELLO /
// ROUND / VOTE / VERDICT exchange with the given public-coin seed, and
// returns the verdict. It closes every accepted connection before
// returning; the listener itself stays open for further rounds. ctx
// cancellation aborts the round.
func (s *RefereeServer) RunRound(ctx context.Context, l net.Listener, seed uint64) (bool, error) {
	if l == nil {
		return false, fmt.Errorf("network: nil listener")
	}
	var (
		connMu sync.Mutex
		conns  []net.Conn
	)
	track := func(c net.Conn) {
		connMu.Lock()
		conns = append(conns, c)
		connMu.Unlock()
	}
	closeAll := func() {
		connMu.Lock()
		for _, c := range conns {
			_ = c.Close()
		}
		connMu.Unlock()
	}
	defer closeAll()

	// Context death is checked before each Accept; for a *blocked* Accept
	// the caller closes the listener (Cluster does so on ctx.Done). Reads
	// on already-accepted connections are unblocked by the watchdog below,
	// which force-closes them when the context dies.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			closeAll()
		case <-watchdogDone:
		}
	}()

	type slot struct {
		conn   net.Conn
		player uint32
	}
	slots := make([]slot, 0, s.k)
	for len(slots) < s.k {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		conn, err := l.Accept()
		if err != nil {
			return false, fmt.Errorf("network: accept: %w", err)
		}
		track(conn)
		setDeadline(conn, s.timeout)
		hello, err := expectFrame[Hello](conn, FrameHello)
		if err != nil {
			return false, fmt.Errorf("network: hello: %w", err)
		}
		if hello.Bits < 1 || hello.Bits > 64 {
			return false, fmt.Errorf("network: player %d announced %d message bits", hello.Player, hello.Bits)
		}
		slots = append(slots, slot{conn: conn, player: hello.Player})
	}

	// Broadcast the round seed, then gather votes concurrently.
	votes := make([]core.Message, s.k)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for i, sl := range slots {
		wg.Add(1)
		go func(i int, sl slot) {
			defer wg.Done()
			setDeadline(sl.conn, s.timeout)
			if err := WriteRound(sl.conn, Round{Seed: seed}); err != nil {
				fail(fmt.Errorf("network: round to player %d: %w", sl.player, err))
				return
			}
			vote, err := expectFrame[Vote](sl.conn, FrameVote)
			if err != nil {
				fail(fmt.Errorf("network: vote from player %d: %w", sl.player, err))
				return
			}
			if vote.Player != sl.player {
				fail(fmt.Errorf("network: vote claims player %d on player %d's connection", vote.Player, sl.player))
				return
			}
			votes[i] = core.Message(vote.Message)
		}(i, sl)
	}
	wg.Wait()
	if firstErr != nil {
		return false, firstErr
	}

	accept, err := s.decide.Decide(votes)
	if err != nil {
		return false, fmt.Errorf("network: referee decision: %w", err)
	}
	for _, sl := range slots {
		if err := WriteVerdict(sl.conn, Verdict{Accept: accept}); err != nil {
			return false, fmt.Errorf("network: verdict to player %d: %w", sl.player, err)
		}
	}
	return accept, nil
}

func setDeadline(conn net.Conn, d time.Duration) {
	// net.Pipe supports deadlines; failures here are non-fatal (reads will
	// still error out on close).
	_ = conn.SetDeadline(time.Now().Add(d))
}
