package network

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// RefereeServer collects one round of votes from k players and broadcasts
// the decision of its core.Referee. By default it is strict — all k votes
// are required, exactly the paper's model. WithMinVotes relaxes it to a
// quorum: the referee tolerates stragglers, crashed nodes and protocol
// violators, decides from the votes it has (absentees entering the
// decision per the configured core.AbsenteePolicy), and reports what
// happened in a RoundStats.
type RefereeServer struct {
	k        int
	decide   core.Referee
	timeout  time.Duration
	minVotes int
	policy   core.AbsenteePolicy
	bits     int
}

// RefereeOption customizes NewRefereeServer beyond the required
// arguments.
type RefereeOption func(*RefereeServer)

// WithMinVotes sets the quorum: a round succeeds once at least m valid
// votes arrive, with missing players treated per the absentee policy.
// m = k (the default) is strict mode, where any failure aborts the round.
func WithMinVotes(m int) RefereeOption {
	return func(s *RefereeServer) { s.minVotes = m }
}

// WithAbsentees sets how missing votes enter the decision in quorum mode;
// core.AbsenteeDefault (the default) defers to the decision rule's advice.
func WithAbsentees(p core.AbsenteePolicy) RefereeOption {
	return func(s *RefereeServer) { s.policy = p }
}

// WithMessageBits pins the message width r the referee's rule decides
// over: a HELLO announcing any other width is rejected by name instead
// of being discovered later as a width-violation on some vote. Zero
// (the default) accepts any legal width, preserving the behavior of
// directly constructed servers that never negotiate.
func WithMessageBits(r int) RefereeOption {
	return func(s *RefereeServer) { s.bits = r }
}

// NewRefereeServer builds the server. timeout bounds each connection's
// per-frame wait and, in quorum mode, the whole accept phase; zero means
// 10 seconds.
func NewRefereeServer(k int, decide core.Referee, timeout time.Duration, opts ...RefereeOption) (*RefereeServer, error) {
	if k <= 0 {
		return nil, fmt.Errorf("network: referee for %d players", k)
	}
	if decide == nil {
		return nil, fmt.Errorf("network: nil decision function")
	}
	if timeout < 0 {
		return nil, fmt.Errorf("network: negative timeout %v", timeout)
	}
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	s := &RefereeServer{k: k, decide: decide, timeout: timeout, minVotes: k}
	for _, o := range opts {
		o(s)
	}
	if s.minVotes < 1 || s.minVotes > k {
		return nil, fmt.Errorf("network: quorum of %d votes for %d players", s.minVotes, k)
	}
	if !s.policy.Valid() {
		return nil, fmt.Errorf("network: unknown absentee policy %d", int(s.policy))
	}
	if s.bits < 0 || s.bits > 64 {
		return nil, fmt.Errorf("network: referee expecting %d message bits, want 1..64 (or 0 for any)", s.bits)
	}
	return s, nil
}

// strict reports whether all k votes are required (the seed semantics:
// any failure aborts the round).
func (s *RefereeServer) strict() bool { return s.minVotes >= s.k }

// RoundStats describes one referee round of a (possibly fault-tolerant)
// deployment: how many votes actually arrived, how many players
// straggled, how hard the nodes had to retry, and how long the round
// took. Cluster threads it back to callers of RunStats / RunManyStats.
type RoundStats struct {
	// Round is the 0-based round index within the session.
	Round int
	// Votes is the number of valid votes received.
	Votes int
	// Stragglers is k minus Votes: players absent, crashed, timed out or
	// rejected for protocol violations.
	Stragglers int
	// Retries is the total number of node-side dial/HELLO retry attempts.
	// It is filled in by Cluster (the referee cannot see retries); for
	// multi-round sessions the setup-phase retries are reported on the
	// first round's stats.
	Retries int
	// Wall is the wall-clock duration of the round; for the first round
	// of a session it includes the accept phase.
	Wall time.Duration
	// Verdict is the referee's decision for the round.
	Verdict bool
}

// playerSlot is the referee's per-connection state. A slot that fails
// mid-session in quorum mode is marked dead and skipped (and counted as a
// straggler) in subsequent rounds.
type playerSlot struct {
	conn   net.Conn
	player uint32
	bits   uint8
	dead   bool
}

// connTracker collects accepted connections so that they are all closed
// when the round/session ends and force-closed when the context dies.
type connTracker struct {
	mu    sync.Mutex
	conns []net.Conn
}

func (t *connTracker) track(c net.Conn) {
	t.mu.Lock()
	t.conns = append(t.conns, c)
	t.mu.Unlock()
}

func (t *connTracker) closeAll() {
	t.mu.Lock()
	for _, c := range t.conns {
		_ = c.Close()
	}
	t.mu.Unlock()
}

// watch force-closes all tracked connections when ctx dies; the returned
// stop function must be deferred.
func (t *connTracker) watch(ctx context.Context) (stop func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			t.closeAll()
		case <-done:
		}
	}()
	return func() { close(done) }
}

// validateHello checks one player's announcement against the protocol
// rules: bits in [1,64] and matching the referee's negotiated width
// when one is pinned (WithMessageBits), id in [0,k), no duplicate ids.
func (s *RefereeServer) validateHello(h Hello, seen []bool) error {
	if h.Bits < 1 || h.Bits > 64 {
		return fmt.Errorf("network: player %d announced %d message bits", h.Player, h.Bits)
	}
	if s.bits != 0 && int(h.Bits) != s.bits {
		return fmt.Errorf("network: player %d announced %d-bit messages but the referee's rule decides over %d-bit messages",
			h.Player, h.Bits, s.bits)
	}
	if h.Player >= uint32(s.k) {
		return fmt.Errorf("network: player id %d out of range [0, %d)", h.Player, s.k)
	}
	if seen[h.Player] {
		return fmt.Errorf("network: duplicate player id %d", h.Player)
	}
	return nil
}

// acceptPlayers runs the accept/HELLO phase. In strict mode it blocks
// until all k players have registered (or the listener/context dies). In
// quorum mode the whole phase is bounded by an accept deadline of one
// timeout; once the deadline passes, the phase succeeds with at least
// minVotes players and fails otherwise. Connections with invalid HELLOs
// (bad bits, out-of-range or duplicate ids) abort the round in strict
// mode and are dropped in quorum mode.
func (s *RefereeServer) acceptPlayers(ctx context.Context, l net.Listener, tr *connTracker) ([]*playerSlot, error) {
	if !s.strict() {
		dl, ok := l.(acceptDeadliner)
		if !ok {
			return nil, fmt.Errorf("network: quorum mode needs a listener with accept deadlines (have %T)", l)
		}
		//lint:ignore dut/nondeterminism net deadlines need an absolute instant; bounds the accept wait, never the verdict
		_ = dl.SetDeadline(time.Now().Add(s.timeout))
		defer func() { _ = dl.SetDeadline(time.Time{}) }()
	}
	slots := make([]*playerSlot, 0, s.k)
	seen := make([]bool, s.k)
	for len(slots) < s.k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		conn, err := l.Accept()
		if err != nil {
			if !s.strict() && errors.Is(err, os.ErrDeadlineExceeded) {
				if len(slots) >= s.minVotes {
					return slots, nil
				}
				return nil, fmt.Errorf("network: quorum not met: %d of %d players connected before the accept deadline, need %d",
					len(slots), s.k, s.minVotes)
			}
			return nil, fmt.Errorf("network: accept: %w", err)
		}
		tr.track(conn)
		setDeadline(conn, s.timeout)
		hello, err := expectFrame[Hello](conn, FrameHello)
		if err != nil {
			if s.strict() {
				return nil, fmt.Errorf("network: hello: %w", err)
			}
			_ = conn.Close()
			continue
		}
		if err := s.validateHello(hello, seen); err != nil {
			if s.strict() {
				return nil, err
			}
			_ = conn.Close()
			continue
		}
		seen[hello.Player] = true
		slots = append(slots, &playerSlot{conn: conn, player: hello.Player, bits: hello.Bits})
	}
	return slots, nil
}

// gatherVotes broadcasts ROUND to every live slot and collects votes
// concurrently. Votes are indexed by player id (ids are validated unique
// and in range at HELLO time), with got marking which arrived. A slot
// that fails — write error, timeout, id mismatch, or a message wider
// than its announced bits — aborts the round in strict mode; in quorum
// mode it is closed, marked dead and skipped from then on.
func (s *RefereeServer) gatherVotes(seed uint64, slots []*playerSlot, votes []core.Message, got []bool) error {
	for i := range votes {
		votes[i] = 0
		got[i] = false
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(sl *playerSlot, err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		sl.dead = true
		mu.Unlock()
		_ = sl.conn.Close()
	}
	for _, sl := range slots {
		if sl.dead {
			continue
		}
		wg.Add(1)
		go func(sl *playerSlot) {
			defer wg.Done()
			setDeadline(sl.conn, s.timeout)
			if err := WriteRound(sl.conn, Round{Seed: seed}); err != nil {
				fail(sl, fmt.Errorf("network: round to player %d: %w", sl.player, err))
				return
			}
			vote, err := expectFrame[Vote](sl.conn, FrameVote)
			if err != nil {
				fail(sl, fmt.Errorf("network: vote from player %d: %w", sl.player, err))
				return
			}
			if vote.Player != sl.player {
				fail(sl, fmt.Errorf("network: vote claims player %d on player %d's connection", vote.Player, sl.player))
				return
			}
			if sl.bits < 64 && vote.Message >= 1<<sl.bits {
				fail(sl, fmt.Errorf("network: player %d sent message %#x wider than its announced %d bit(s)",
					sl.player, vote.Message, sl.bits))
				return
			}
			votes[sl.player] = core.Message(vote.Message)
			got[sl.player] = true
		}(sl)
	}
	wg.Wait()
	if s.strict() && firstErr != nil {
		return firstErr
	}
	return nil
}

// decideVotes checks the quorum and applies the decision function, with
// absent players entering per the resolved absentee policy. It returns
// the verdict and the number of votes received.
func (s *RefereeServer) decideVotes(votes []core.Message, got []bool) (bool, int, error) {
	received := 0
	for _, g := range got {
		if g {
			received++
		}
	}
	if received < s.minVotes {
		return false, received, fmt.Errorf("network: quorum not met: %d of %d votes, need %d", received, s.k, s.minVotes)
	}
	msgs := votes
	if received < s.k {
		switch core.ResolveAbsentee(s.policy, s.decide) {
		case core.AbsenteeOmit:
			msgs = make([]core.Message, 0, received)
			for i, g := range got {
				if g {
					msgs = append(msgs, votes[i])
				}
			}
		case core.AbsenteeAccept:
			//lint:ignore dut/hotalloc degraded-quorum branch (received < k); the steady received==k path above is allocation-free, and the copy is deliberate so the caller's votes stay unmutated
			msgs = append([]core.Message(nil), votes...)
			for i, g := range got {
				if !g {
					msgs[i] = core.Accept
				}
			}
		default: // core.AbsenteeReject
			//lint:ignore dut/hotalloc degraded-quorum branch (received < k); the steady received==k path above is allocation-free, and the copy is deliberate so the caller's votes stay unmutated
			msgs = append([]core.Message(nil), votes...)
			for i, g := range got {
				if !g {
					msgs[i] = core.Reject
				}
			}
		}
	}
	accept, err := s.decide.Decide(msgs)
	if err != nil {
		return false, received, fmt.Errorf("network: referee decision: %w", err)
	}
	return accept, received, nil
}

// broadcastVerdict sends VERDICT to every live slot. The write deadline
// is refreshed per connection: the deadline set before vote gathering may
// already be (nearly) consumed by a slow round, and reusing it makes the
// broadcast fail spuriously.
func (s *RefereeServer) broadcastVerdict(slots []*playerSlot, accept bool) error {
	for _, sl := range slots {
		if sl.dead {
			continue
		}
		setDeadline(sl.conn, s.timeout)
		if err := WriteVerdict(sl.conn, Verdict{Accept: accept}); err != nil {
			if s.strict() {
				return fmt.Errorf("network: verdict to player %d: %w", sl.player, err)
			}
			sl.dead = true
			_ = sl.conn.Close()
		}
	}
	return nil
}

// RunRoundStats accepts player connections on the listener, runs the
// HELLO / ROUND / VOTE / VERDICT exchange with the given public-coin seed,
// and returns the verdict together with the round's statistics. In strict
// mode (the default) all k players are required; with WithMinVotes the
// round tolerates stragglers down to the quorum. It closes every accepted
// connection before returning; the listener itself stays open for further
// rounds. ctx cancellation aborts the round.
func (s *RefereeServer) RunRoundStats(ctx context.Context, l net.Listener, seed uint64) (bool, RoundStats, error) {
	stats := RoundStats{}
	if l == nil {
		return false, stats, fmt.Errorf("network: nil listener")
	}
	sw := engine.StartStopwatch()
	tr := &connTracker{}
	defer tr.closeAll()
	stop := tr.watch(ctx)
	defer stop()

	slots, err := s.acceptPlayers(ctx, l, tr)
	if err != nil {
		return false, stats, err
	}
	votes := make([]core.Message, s.k)
	got := make([]bool, s.k)
	if err := s.gatherVotes(seed, slots, votes, got); err != nil {
		return false, stats, err
	}
	if err := ctx.Err(); err != nil {
		return false, stats, err
	}
	accept, received, err := s.decideVotes(votes, got)
	stats.Votes = received
	stats.Stragglers = s.k - received
	stats.Wall = sw.Elapsed()
	if err != nil {
		return false, stats, err
	}
	if err := s.broadcastVerdict(slots, accept); err != nil {
		return false, stats, err
	}
	stats.Verdict = accept
	stats.Wall = sw.Elapsed()
	return accept, stats, nil
}

// RunRound is RunRoundStats without the statistics, kept for callers that
// only need the verdict.
func (s *RefereeServer) RunRound(ctx context.Context, l net.Listener, seed uint64) (bool, error) {
	accept, _, err := s.RunRoundStats(ctx, l, seed)
	return accept, err
}

func setDeadline(conn net.Conn, d time.Duration) {
	// net.Pipe supports deadlines; failures here are non-fatal (reads will
	// still error out on close).
	//lint:ignore dut/nondeterminism net deadlines need an absolute instant; bounds frame IO waits, never the verdict
	_ = conn.SetDeadline(time.Now().Add(d))
}
