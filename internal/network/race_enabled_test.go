//go:build race

package network

// raceEnabled reports whether the race detector instruments this build;
// allocation-count guards skip themselves when it does.
const raceEnabled = true
