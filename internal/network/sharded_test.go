package network

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// The sharded suite pins the tree's one contract: for every rule shape,
// shard count, batch/window shape and message width, the two-tier
// referee tree decides bit-identically to the flat star — including
// quorum rounds with absentees and rounds where a whole aggregator
// dies.

// treeTestRule votes a value folded from every determinism-relevant
// input — player id, samples, shared seed and the private coin — so any
// stream divergence between topologies flips verdicts. skew > 0 votes
// Reject with probability 1/skew (exercises AND without collapsing it
// to a constant); skew < 0 votes Accept with probability 1/-skew (same
// for OR); skew = 0 votes a uniform bits-wide value.
type treeTestRule struct {
	bits int
	skew int
}

func (r treeTestRule) Message(player int, samples []int, shared uint64, private *rand.Rand) (core.Message, error) {
	h := shared ^ uint64(player)*0x9e3779b97f4a7c15
	for _, s := range samples {
		h = h*1099511628211 + uint64(s)
	}
	h ^= private.Uint64()
	switch {
	case r.skew > 0:
		if h%uint64(r.skew) == 0 {
			return core.Reject, nil
		}
		return core.Accept, nil
	case r.skew < 0:
		if h%uint64(-r.skew) == 0 {
			return core.Accept, nil
		}
		return core.Reject, nil
	}
	return core.Message(h & (1<<r.bits - 1)), nil
}

func (r treeTestRule) Bits() int { return r.bits }

const (
	treePlayers = 13
	treeSamples = 3
	treeTrials  = 12
	treeSeed    = 0x7ee5eed
)

// treeResults runs trials through a backend and keeps the fields the
// determinism contract covers: verdicts and vote accounting.
type treeResult struct {
	verdict    bool
	votes      int
	stragglers int
}

func treeResults(t *testing.T, b engine.Backend, sampler dist.Sampler, trials, batch, window int) []treeResult {
	t.Helper()
	results, err := engine.Run(context.Background(), b, engine.Fixed(sampler), trials,
		engine.Options{Seed: treeSeed, Workers: 1, Batch: batch, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]treeResult, len(results))
	for i, r := range results {
		out[i] = treeResult{verdict: r.Verdict, votes: r.Votes, stragglers: r.Stragglers}
	}
	return out
}

func assertSameResults(t *testing.T, name string, want, got []treeResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: trial %d = %+v, flat decided %+v", name, i, got[i], want[i])
		}
	}
}

func treeBackend(t *testing.T, c *Cluster, opts ...BackendOption) engine.Backend {
	t.Helper()
	b, err := NewBackend(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardedMatchesFlat is the determinism matrix of the referee tree:
// every rule shape the root can decide — AND, OR, Majority, fixed
// threshold, an opaque decision function (the AGG_PLANES forwarding
// path) and r-bit sums for r in {2, 4, 8} — across shard counts
// {1, 2, 4, 8} and batch/window shapes, against the flat star's
// unbatched verdicts.
func TestShardedMatchesFlat(t *testing.T) {
	parity := core.FuncRule{F: func(votes []bool) bool {
		odd := false
		for _, v := range votes {
			if !v {
				odd = !odd
			}
		}
		return !odd
	}, Label: "even-rejections"}
	cases := []struct {
		name    string
		rule    core.LocalRule
		referee core.Referee
	}{
		{"and", treeTestRule{bits: 1, skew: 16}, core.BitReferee{Rule: core.ANDRule{}}},
		{"or", treeTestRule{bits: 1, skew: -16}, core.BitReferee{Rule: core.ORRule{}}},
		{"majority", treeTestRule{bits: 1}, core.BitReferee{Rule: core.MajorityRule{}}},
		{"threshold", treeTestRule{bits: 1}, core.BitReferee{Rule: core.ThresholdRule{T: 6}}},
		{"opaque", treeTestRule{bits: 1}, core.BitReferee{Rule: parity}},
		{"sum-r2", treeTestRule{bits: 2}, core.SumThresholdReferee{Bits: 2, T: treePlayers * 3 / 2}},
		{"sum-r4", treeTestRule{bits: 4}, core.SumThresholdReferee{Bits: 4, T: treePlayers * 15 / 2}},
		{"sum-r8", treeTestRule{bits: 8}, core.SumThresholdReferee{Bits: 8, T: treePlayers * 255 / 2}},
	}
	shapes := []struct{ batch, window int }{
		{1, 1}, {3, 2}, {64, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			c, err := NewCluster(ClusterConfig{
				K: treePlayers, Q: treeSamples,
				Rule:    tc.rule,
				Referee: tc.referee,
				Timeout: 10 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			sampler := uniformSampler(t, 16)
			want := treeResults(t, treeBackend(t, c), sampler, treeTrials, 0, 0)
			varied := false
			for _, r := range want {
				if r.verdict != want[0].verdict {
					varied = true
				}
			}
			if !varied {
				t.Fatalf("flat verdicts are constant; the matrix would not catch a stuck tree")
			}
			// Shards = 1 keeps the flat star byte-for-byte: topology
			// disabled, same code path, same results.
			assertSameResults(t, "s=1", want,
				treeResults(t, treeBackend(t, c, WithShards(1)), sampler, treeTrials, 3, 2))
			for _, s := range []int{2, 4, 8} {
				for _, shape := range shapes {
					name := fmt.Sprintf("s=%d/batch=%d/window=%d", s, shape.batch, shape.window)
					got := treeResults(t, treeBackend(t, c, WithShards(s)), sampler,
						treeTrials, shape.batch, shape.window)
					assertSameResults(t, name, want, got)
				}
			}
			// A shuffled placement moves players between aggregators but
			// must never move a verdict.
			assertSameResults(t, "s=4/shuffled", want,
				treeResults(t, treeBackend(t, c, WithShards(4), WithShardSeed(0xdea1)), sampler, treeTrials, 5, 2))
			// A lopsided placement (one big aggregator, small siblings)
			// must not either.
			assertSameResults(t, "s=3/weighted", want,
				treeResults(t, treeBackend(t, c, WithShards(3), WithAggregatorWeights([]int{4, 1, 1})), sampler, treeTrials, 4, 2))
		})
	}
}

// TestShardedAbsenteePoliciesMatchFlat drives quorum rounds with two
// players that never connect, under every absentee policy and both
// decidable shapes: the tree's presence-adjusted thresholds must
// reproduce the flat referee's absentee accounting exactly.
func TestShardedAbsenteePoliciesMatchFlat(t *testing.T) {
	const k, trials = 12, 4
	referees := []struct {
		name    string
		rule    core.LocalRule
		referee core.Referee
	}{
		{"threshold", treeTestRule{bits: 1}, core.BitReferee{Rule: core.ThresholdRule{T: 5}}},
		{"majority", treeTestRule{bits: 1}, core.BitReferee{Rule: core.MajorityRule{}}},
		{"sum", treeTestRule{bits: 2}, core.SumThresholdReferee{Bits: 2, T: k * 3 / 2}},
	}
	policies := []struct {
		name   string
		policy core.AbsenteePolicy
	}{
		{"accept", core.AbsenteeAccept},
		{"reject", core.AbsenteeReject},
		{"omit", core.AbsenteeOmit},
	}
	absent := func() map[uint32]FaultPlan {
		return map[uint32]FaultPlan{
			3: {DropDials: 1},
			9: {DropDials: 1},
		}
	}
	for _, ref := range referees {
		for _, pol := range policies {
			t.Run(ref.name+"/"+pol.name, func(t *testing.T) {
				t.Parallel()
				cluster := func(s int) *Cluster {
					ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{Plans: absent()})
					if err != nil {
						t.Fatal(err)
					}
					c, err := NewCluster(ClusterConfig{
						K: k, Q: 2,
						Rule:        ref.rule,
						Referee:     ref.referee,
						Transport:   ft,
						Timeout:     250 * time.Millisecond,
						MinVotes:    8,
						Absentees:   pol.policy,
						DialRetries: -1,
						Shards:      s,
					})
					if err != nil {
						t.Fatal(err)
					}
					return c
				}
				sampler := uniformSampler(t, 16)
				want := treeResults(t, treeBackend(t, cluster(0)), sampler, trials, 3, 2)
				for _, r := range want {
					if r.stragglers != 2 || r.votes != k-2 {
						t.Fatalf("flat run counted %+v, want 2 stragglers of %d players", r, k)
					}
				}
				for _, s := range []int{2, 4} {
					got := treeResults(t, treeBackend(t, cluster(s)), sampler, trials, 3, 2)
					assertSameResults(t, fmt.Sprintf("s=%d", s), want, got)
				}
			})
		}
	}
}

// TestShardedKillAggregatorEqualsShardAbsent is the failure-domain
// contract: crashing one aggregator mid-session yields the same
// verdicts and RoundStats as every player of its shard crashing at the
// same round — on the tree and on the flat star alike.
func TestShardedKillAggregatorEqualsShardAbsent(t *testing.T) {
	const (
		k      = 8
		shards = 2
		rounds = 6
		crash  = 4 // 1-based round of the first missing vote
	)
	run := func(t *testing.T, s int, cfg FaultConfig) ([]bool, []RoundStats) {
		t.Helper()
		ft, err := NewFaultTransport(NewMemTransport(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCluster(ClusterConfig{
			K: k, Q: 2,
			Rule:      parityRule(),
			Referee:   core.BitReferee{Rule: core.ThresholdRule{T: 3}},
			Transport: ft,
			Timeout:   500 * time.Millisecond,
			MinVotes:  2,
			Shards:    s,
		})
		if err != nil {
			t.Fatal(err)
		}
		verdicts, stats, err := c.RunManyStats(context.Background(), paritySampler(t, true), testRand(77), rounds)
		if err != nil {
			t.Fatal(err)
		}
		return verdicts, stats
	}
	// Shard 1 of the contiguous 2-way partition owns players 4..7.
	shardPlans := func() map[uint32]FaultPlan {
		plans := make(map[uint32]FaultPlan)
		for _, p := range (Topology{Shards: shards}).Partition(k)[1] {
			plans[p] = FaultPlan{CrashAtRound: crash}
		}
		return plans
	}
	aggVerdicts, aggStats := run(t, shards, FaultConfig{
		AggPlans: map[uint32]FaultPlan{1: {CrashAtRound: crash}},
	})
	treeVerdicts, treeStats := run(t, shards, FaultConfig{Plans: shardPlans()})
	flatVerdicts, flatStats := run(t, 0, FaultConfig{Plans: shardPlans()})

	check := func(name string, verdicts []bool, stats []RoundStats) {
		t.Helper()
		for i := 0; i < rounds; i++ {
			if verdicts[i] != flatVerdicts[i] || verdicts[i] != stats[i].Verdict {
				t.Errorf("%s: round %d verdict %v, flat decided %v", name, i, verdicts[i], flatVerdicts[i])
			}
			if stats[i].Votes != flatStats[i].Votes || stats[i].Stragglers != flatStats[i].Stragglers {
				t.Errorf("%s: round %d votes/stragglers = %d/%d, flat counted %d/%d",
					name, i, stats[i].Votes, stats[i].Stragglers, flatStats[i].Votes, flatStats[i].Stragglers)
			}
		}
	}
	check("killed aggregator", aggVerdicts, aggStats)
	check("killed shard", treeVerdicts, treeStats)
	// And the baseline itself is what the plan says: full house before
	// the crash round, half the players gone from it onward.
	for i, s := range flatStats {
		wantVotes := k
		if i >= crash-1 {
			wantVotes = k / 2
		}
		if s.Votes != wantVotes || s.Stragglers != k-wantVotes {
			t.Errorf("flat round %d votes/stragglers = %d/%d, want %d/%d",
				i, s.Votes, s.Stragglers, wantVotes, k-wantVotes)
		}
	}
}

// TestShardedVerdictRelayFaultEqualsShardCrash extends the failure-
// domain contract to the downstream hop: an aggregator that dies during
// the verdict relay — killed on an AGG_VERDICT's arrival, or fed a
// corrupted one its echo audit rejects — is indistinguishable from its
// whole shard crashing one round later. The shard still votes in the
// faulted verdict's round (the root had already decided it before the
// relay) and is absent from the next round on.
func TestShardedVerdictRelayFaultEqualsShardCrash(t *testing.T) {
	const (
		k       = 8
		shards  = 2
		rounds  = 6
		verdict = 3 // 1-based AGG_VERDICT the relay dies on
	)
	run := func(t *testing.T, s int, cfg FaultConfig) ([]bool, []RoundStats, FaultStats) {
		t.Helper()
		ft, err := NewFaultTransport(NewMemTransport(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCluster(ClusterConfig{
			K: k, Q: 2,
			Rule:      parityRule(),
			Referee:   core.BitReferee{Rule: core.ThresholdRule{T: 3}},
			Transport: ft,
			Timeout:   500 * time.Millisecond,
			MinVotes:  2,
			Shards:    s,
		})
		if err != nil {
			t.Fatal(err)
		}
		verdicts, stats, err := c.RunManyStats(context.Background(), paritySampler(t, true), testRand(77), rounds)
		if err != nil {
			t.Fatal(err)
		}
		return verdicts, stats, ft.Stats()
	}
	// Baseline: shard 1 of the contiguous 2-way partition (players 4..7)
	// crashes one round after the faulted verdict.
	shardPlans := func() map[uint32]FaultPlan {
		plans := make(map[uint32]FaultPlan)
		for _, p := range (Topology{Shards: shards}).Partition(k)[1] {
			plans[p] = FaultPlan{CrashAtRound: verdict + 1}
		}
		return plans
	}
	flatVerdicts, flatStats, _ := run(t, 0, FaultConfig{Plans: shardPlans()})
	dropVerdicts, dropStats, dropFaults := run(t, shards, FaultConfig{
		AggPlans: map[uint32]FaultPlan{1: {DropVerdict: verdict}},
	})
	corrVerdicts, corrStats, corrFaults := run(t, shards, FaultConfig{
		Seed:     11,
		AggPlans: map[uint32]FaultPlan{1: {CorruptVerdict: verdict}},
	})
	if dropFaults.VerdictsDropped != 1 || dropFaults.VerdictsCorrupted != 0 {
		t.Errorf("drop run injected %+v, want exactly one dropped verdict", dropFaults)
	}
	if corrFaults.VerdictsCorrupted != 1 || corrFaults.VerdictsDropped != 0 {
		t.Errorf("corrupt run injected %+v, want exactly one corrupted verdict", corrFaults)
	}
	check := func(name string, verdicts []bool, stats []RoundStats) {
		t.Helper()
		for i := 0; i < rounds; i++ {
			if verdicts[i] != flatVerdicts[i] || verdicts[i] != stats[i].Verdict {
				t.Errorf("%s: round %d verdict %v, flat decided %v", name, i, verdicts[i], flatVerdicts[i])
			}
			if stats[i].Votes != flatStats[i].Votes || stats[i].Stragglers != flatStats[i].Stragglers {
				t.Errorf("%s: round %d votes/stragglers = %d/%d, flat counted %d/%d",
					name, i, stats[i].Votes, stats[i].Stragglers, flatStats[i].Votes, flatStats[i].Stragglers)
			}
		}
	}
	check("dropped verdict", dropVerdicts, dropStats)
	check("corrupted verdict", corrVerdicts, corrStats)
	// The baseline itself has the plan's shape: full house through the
	// faulted verdict's round, half the players gone from the next.
	for i, s := range flatStats {
		wantVotes := k
		if i >= verdict {
			wantVotes = k / 2
		}
		if s.Votes != wantVotes || s.Stragglers != k-wantVotes {
			t.Errorf("flat round %d votes/stragglers = %d/%d, want %d/%d",
				i, s.Votes, s.Stragglers, wantVotes, k-wantVotes)
		}
	}
}

// TestShardedMemberViolationSurfaces pins strict-mode error reporting
// through the tree: a protocol violation on a player -> aggregator hop
// must fail the session with the player named, not vanish behind the
// aggregator.
func TestShardedMemberViolationSurfaces(t *testing.T) {
	ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{
		Seed:  3,
		Plans: map[uint32]FaultPlan{2: {CorruptFrame: 2}}, // frames: HELLO=1, VOTE_BATCH b0=2
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		K: 8, Q: 1,
		Rule:      acceptAllRule(),
		Referee:   core.BitReferee{Rule: core.ANDRule{}},
		Transport: ft,
		Timeout:   500 * time.Millisecond,
		Shards:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.RunManyStats(context.Background(), uniformSampler(t, 4), testRand(55), 3)
	if err == nil || !strings.Contains(err.Error(), "player 2") {
		t.Errorf("err = %v, want a violation naming player 2", err)
	}
}

// TestShardedQuorumNotMet: losing a whole shard's worth of players
// below MinVotes fails the session with the flat referee's quorum
// error, not a hang.
func TestShardedQuorumNotMet(t *testing.T) {
	plans := make(map[uint32]FaultPlan)
	for p := uint32(4); p < 8; p++ {
		plans[p] = FaultPlan{DropDials: 1}
	}
	ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{Plans: plans})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		K: 8, Q: 1,
		Rule:        acceptAllRule(),
		Referee:     core.BitReferee{Rule: core.ThresholdRule{T: 3}},
		Transport:   ft,
		Timeout:     250 * time.Millisecond,
		MinVotes:    5,
		DialRetries: -1,
		Shards:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.RunManyStats(context.Background(), uniformSampler(t, 4), testRand(56), 2)
	if err == nil || !strings.Contains(err.Error(), "quorum not met") {
		t.Errorf("err = %v, want quorum-not-met error", err)
	}
}

func TestBackendOptionValidation(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		K: 4, Q: 1, Rule: acceptAllRule(), Referee: core.BitReferee{Rule: core.ANDRule{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBackend(c, WithShards(5)); err == nil {
		t.Error("more shards than players accepted")
	}
	if _, err := NewBackend(c, WithShards(2), WithAggregatorWeights([]int{1})); err == nil {
		t.Error("short weight vector accepted")
	}
	if _, err := NewBackend(nil); err == nil {
		t.Error("nil cluster accepted")
	}
	// Options must not leak into the caller's cluster.
	if _, err := NewBackend(c, WithShards(2)); err != nil {
		t.Fatal(err)
	}
	if c.topo.enabled() {
		t.Error("backend option mutated the shared cluster")
	}
	bad := ClusterConfig{
		K: 4, Q: 1, Rule: acceptAllRule(), Referee: core.BitReferee{Rule: core.ANDRule{}},
		Shards: 2, AggregatorWeights: []int{0, 1},
	}
	if _, err := NewCluster(bad); err == nil {
		t.Error("zero aggregator weight accepted")
	}
}

// TestVerdictRelayZeroAllocs guards the downstream half of the tree's
// hot path: once an aggregator's scratch is warm, auditing an
// AGG_VERDICT and fanning the re-encoded VERDICT_BATCH out to a full
// shard must not allocate — the frame is built once in the relay
// scratch and each member costs one queue enqueue into a settled
// buffer. The queues are drained between runs exactly as the slot
// writers would, so the ping-pong buffers settle at their high-water
// mark. Skipped under the race detector, whose instrumentation
// allocates.
func TestVerdictRelayZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	const (
		members = 64
		count   = 256
		present = 16
	)
	words := batchWords(count)
	a := &aggregator{id: 1, slots: make([]*batchSlot, members)}
	for i := range a.slots {
		a.slots[i] = &batchSlot{q: newFrameQueue()}
	}
	verdicts := make([]uint64, words)
	for i := range verdicts {
		verdicts[i] = 0xaaaaaaaaaaaaaaaa
	}
	m := AggVerdict{Count: count, Present: []uint32{present, present, present, present}, Bits: verdicts}
	spares := make([][]byte, members)
	next := uint32(0)
	relayOnce := func() {
		a.recordSent(aggSent{batch: next, count: count, present: present})
		m.Batch = next
		next++
		if err := a.relayVerdict(m); err != nil {
			t.Fatal(err)
		}
		for i, slot := range a.slots {
			run, _, _ := slot.q.drain(spares[i])
			spares[i] = run
		}
	}
	// Two warm runs: the first grows the relay scratch and the queue
	// buffers, the second grows the drain spares they ping-pong with.
	relayOnce()
	relayOnce()
	if n := testing.AllocsPerRun(100, relayOnce); n != 0 {
		t.Errorf("relayVerdict allocates %.1f per run", n)
	}
}

// TestVerdictRelayAuditRejects pins the aggregator-side audit: a
// verdict for the wrong batch, the wrong trial count, a foreign
// present-count echo or with no reduction awaiting one must all fail
// before a byte reaches the shard.
func TestVerdictRelayAuditRejects(t *testing.T) {
	mk := func() *aggregator {
		a := &aggregator{id: 1, slots: []*batchSlot{{q: newFrameQueue()}}}
		a.recordSent(aggSent{batch: 3, count: 64, present: 5})
		return a
	}
	good := AggVerdict{Batch: 3, Count: 64, Present: []uint32{9, 5}, Bits: []uint64{0}}
	cases := []struct {
		name   string
		mutate func(*AggVerdict)
	}{
		{"batch mismatch", func(v *AggVerdict) { v.Batch = 4 }},
		{"count mismatch", func(v *AggVerdict) { v.Count = 32; v.Bits = v.Bits[:1] }},
		{"present mismatch", func(v *AggVerdict) { v.Present = []uint32{9, 6} }},
		{"shard missing from accounting", func(v *AggVerdict) { v.Present = []uint32{9} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := mk()
			v := good
			v.Bits = append([]uint64(nil), good.Bits...)
			tc.mutate(&v)
			if err := a.relayVerdict(v); err == nil {
				t.Error("audited verdict accepted")
			}
			if got := a.slots[0].q.frames; got != 0 {
				t.Errorf("%d frame(s) relayed despite failed audit", got)
			}
		})
	}
	t.Run("no reduction in flight", func(t *testing.T) {
		a := &aggregator{id: 1, slots: []*batchSlot{{q: newFrameQueue()}}}
		if err := a.relayVerdict(good); err == nil {
			t.Error("verdict with no reduction awaiting one accepted")
		}
	})
	t.Run("echoed verdict relays", func(t *testing.T) {
		a := mk()
		if err := a.relayVerdict(good); err != nil {
			t.Fatal(err)
		}
		if got := a.slots[0].q.frames; got != 1 {
			t.Errorf("relayed %d frame(s), want 1", got)
		}
	})
}

// TestShardedReduceZeroAllocs guards the hot path of the tree: the L1
// reduction kernels and the root's combine-and-decide must not allocate
// per batch. Skipped under the race detector, whose instrumentation
// allocates.
func TestShardedReduceZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	const (
		members = 64
		count   = 256
		msgBits = 4
	)
	words := batchWords(count)
	planeCount := bits.Len(uint(members * (1<<msgBits - 1)))
	deliv := make([][]uint64, members)
	for i := range deliv {
		planes := make([]uint64, msgBits*words)
		for j := range planes {
			planes[j] = 0xdeadbeefcafef00d * uint64(i+j+1)
		}
		deliv[i] = planes
	}
	col := make([]uint64, planeCount)
	sums := make([]uint64, planeCount*words)
	if n := testing.AllocsPerRun(100, func() {
		reduceThresholdSums(deliv, count, words, col[:bits.Len(members)], sums[:bits.Len(members)*words])
	}); n != 0 {
		t.Errorf("reduceThresholdSums allocates %.1f per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		reduceValueSums(deliv, msgBits, words, col, sums)
	}); n != 0 {
		t.Errorf("reduceValueSums allocates %.1f per run", n)
	}
	acc := make([]uint64, planeCount*words)
	if n := testing.AllocsPerRun(100, func() {
		if combineShardSums(acc, sums, planeCount, words) {
			clear(acc) // keep repeated runs from saturating into overflow
		}
	}); n != 0 {
		t.Errorf("combineShardSums allocates %.1f per run", n)
	}
}

// TestShardedDecideZeroAllocs drives decideBatchShards — the root's
// whole per-batch decision — over a synthetic session and demands zero
// allocations once its scratch is warm.
func TestShardedDecideZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	const (
		k      = 128
		shards = 4
		count  = 256
	)
	referee := core.BitReferee{Rule: core.ThresholdRule{T: 40}}
	server, err := NewRefereeServer(k, referee, time.Second, WithMinVotes(100))
	if err != nil {
		t.Fatal(err)
	}
	words := batchWords(count)
	planeCount := bits.Len(uint(k))
	bs := &batchSession{
		c:            &Cluster{k: k},
		server:       server,
		planes:       make([]uint64, planeCount),
		shardGot:     make([]bool, shards),
		shardSums:    make([][]uint64, shards),
		shardPresent: make([]uint32, shards),
	}
	bs.shapeT, bs.shapeOK = core.ThresholdShape(referee, k)
	if !bs.shapeOK {
		t.Fatal("threshold referee lost its shape")
	}
	for i := range bs.shardSums {
		bs.shardGot[i] = true
		bs.shardPresent[i] = k / shards
		sums := make([]uint64, planeCount*words)
		for j := 0; j < words; j++ {
			sums[j] = 0x5555555555555555 // plane 0: 1 rejection per shard per lane
		}
		bs.shardSums[i] = sums
	}
	verdictBits := make([]uint64, words)
	// Warm run grows aggSums once; after that the decision is pure
	// arithmetic on the session's scratch.
	if err := bs.decideBatchShards(count, k, verdictBits); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := bs.decideBatchShards(count, k, verdictBits); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("decideBatchShards allocates %.1f per run", n)
	}
	// The presence-adjusted path (absentees under quorum) is just as
	// clean.
	if n := testing.AllocsPerRun(100, func() {
		if err := bs.decideBatchShards(count, k-8, verdictBits); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("decideBatchShards with absentees allocates %.1f per run", n)
	}
}
