package network

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// Transport abstracts how players reach the referee. Implementations must
// be safe for concurrent Dial calls.
type Transport interface {
	// Listen opens the referee's endpoint.
	Listen() (net.Listener, error)
	// Dial connects a player to the listener returned by Listen.
	Dial(addr net.Addr) (net.Conn, error)
}

// PlayerDialer is an optional Transport extension: transports that care
// which player is dialing — fault injection applies per-player plans —
// implement it, and PlayerNode prefers it over plain Dial.
type PlayerDialer interface {
	// DialPlayer connects the identified player to the listener.
	DialPlayer(addr net.Addr, player uint32) (net.Conn, error)
}

// AggregatorDialer is the aggregator-tier counterpart of PlayerDialer:
// transports that fault the L1 -> root hop per aggregator implement it,
// and the sharded referee tree's aggregators prefer it when dialing the
// root.
type AggregatorDialer interface {
	// DialAggregator connects the identified aggregator to the root.
	DialAggregator(addr net.Addr, agg uint32) (net.Conn, error)
}

// acceptDeadliner is the listener extension the quorum-mode referee needs:
// both *net.TCPListener and memListener provide it.
type acceptDeadliner interface {
	SetDeadline(t time.Time) error
}

// Verify interface compliance.
var (
	_ Transport = (*TCPTransport)(nil)
	_ Transport = (*MemTransport)(nil)
)

// TCPTransport connects over TCP loopback.
type TCPTransport struct{}

// Listen implements Transport on 127.0.0.1 with an ephemeral port.
func (TCPTransport) Listen() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// Dial implements Transport.
func (TCPTransport) Dial(addr net.Addr) (net.Conn, error) {
	return net.Dial(addr.Network(), addr.String())
}

// MemTransport connects through in-process net.Pipe pairs: zero syscalls,
// fully deterministic scheduling aside from goroutine interleaving.
type MemTransport struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	next      int
}

// NewMemTransport returns an empty in-memory fabric.
func NewMemTransport() *MemTransport {
	return &MemTransport{listeners: make(map[string]*memListener)}
}

// Listen implements Transport.
func (m *MemTransport) Listen() (net.Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name := fmt.Sprintf("mem-%d", m.next)
	m.next++
	l := &memListener{
		addr:   memAddr(name),
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
		onClose: func() {
			m.mu.Lock()
			delete(m.listeners, name)
			m.mu.Unlock()
		},
	}
	m.listeners[name] = l
	return l, nil
}

// Dial implements Transport.
func (m *MemTransport) Dial(addr net.Addr) (net.Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr.String()]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("network: no in-memory listener at %q", addr)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("network: listener %q closed", addr)
	}
}

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

type memListener struct {
	addr    memAddr
	accept  chan net.Conn
	done    chan struct{}
	once    sync.Once
	onClose func()

	mu       sync.Mutex
	deadline time.Time
}

// SetDeadline mirrors net.TCPListener's accept deadline: an Accept blocked
// past t fails with an error wrapping os.ErrDeadlineExceeded. The zero
// time clears the deadline.
func (l *memListener) SetDeadline(t time.Time) error {
	l.mu.Lock()
	l.deadline = t
	l.mu.Unlock()
	return nil
}

func (l *memListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	deadline := l.deadline
	l.mu.Unlock()
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil, fmt.Errorf("network: accept on %q: %w", l.addr, os.ErrDeadlineExceeded)
		}
		tm := time.NewTimer(wait)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("network: listener %q closed", l.addr)
	case <-timeout:
		return nil, fmt.Errorf("network: accept on %q: %w", l.addr, os.ErrDeadlineExceeded)
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		if l.onClose != nil {
			l.onClose()
		}
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return l.addr }
