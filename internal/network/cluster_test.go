package network

import (
	"context"
	"math"
	"math/rand/v2"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

func testRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed|1))
}

func acceptAllRule() core.LocalRule {
	return core.RuleFunc(func(int, []int, uint64, *rand.Rand) (core.Message, error) {
		return core.Accept, nil
	})
}

func uniformSampler(t *testing.T, n int) dist.Sampler {
	t.Helper()
	u, err := dist.Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dist.NewAliasSampler(u)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewClusterValidation(t *testing.T) {
	ref := core.BitReferee{Rule: core.ANDRule{}}
	rule := acceptAllRule()
	bad := []ClusterConfig{
		{K: 0, Q: 1, Rule: rule, Referee: ref},
		{K: 1, Q: -1, Rule: rule, Referee: ref},
		{K: 1, Q: 1, Referee: ref},
		{K: 1, Q: 1, Rule: rule},
		{K: 1, Q: 1, Rule: rule, Referee: ref, Timeout: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewCluster(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestClusterRoundOverMemTransport(t *testing.T) {
	// Players accept iff their first sample is even; with the AND rule the
	// verdict is the conjunction.
	rule := core.RuleFunc(func(_ int, samples []int, _ uint64, _ *rand.Rand) (core.Message, error) {
		if samples[0]%2 == 0 {
			return core.Accept, nil
		}
		return core.Reject, nil
	})
	c, err := NewCluster(ClusterConfig{
		K: 8, Q: 1, Rule: rule, Referee: core.BitReferee{Rule: core.ANDRule{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	evens, err := dist.FromWeights([]float64{1, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	s, err := dist.NewAliasSampler(evens)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Run(s, testRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("all-even input rejected under AND")
	}
	odds, err := dist.FromWeights([]float64{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := dist.NewAliasSampler(odds)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = c.Run(s2, testRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("all-odd input accepted under AND")
	}
}

func TestClusterRoundOverTCP(t *testing.T) {
	rule := acceptAllRule()
	c, err := NewCluster(ClusterConfig{
		K: 4, Q: 2, Rule: rule,
		Referee:   core.BitReferee{Rule: core.ANDRule{}},
		Transport: TCPTransport{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Run(uniformSampler(t, 8), testRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("accept-all cluster rejected over TCP")
	}
}

func TestClusterSharedSeedReachesAllNodes(t *testing.T) {
	// Each node votes a function of the shared seed; if the seeds differ,
	// the XOR-style referee sees disagreement.
	rule := core.RuleFunc(func(_ int, _ []int, shared uint64, _ *rand.Rand) (core.Message, error) {
		return core.Message(shared & 1), nil
	})
	agree := core.FuncRule{F: func(bits []bool) bool {
		for _, b := range bits {
			if b != bits[0] {
				return false
			}
		}
		return true
	}, Label: "all-equal"}
	c, err := NewCluster(ClusterConfig{
		K: 16, Q: 0, Rule: rule, Referee: core.BitReferee{Rule: agree},
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		ok, err := c.Run(uniformSampler(t, 4), testRand(uint64(10+trial)))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("nodes saw different shared seeds")
		}
	}
}

func TestClusterMatchesInProcessSMP(t *testing.T) {
	// The networked cluster and the in-process SMP runner implement the
	// same protocol; their acceptance probabilities must agree.
	const (
		n   = 256
		k   = 8
		eps = 0.5
	)
	q := core.RecommendedThresholdSamples(n, k, eps)
	smp, err := core.NewThresholdTester(core.ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(ClusterConfig{
		K: k, Q: q,
		Rule:    smp.Local(),
		Referee: core.BitReferee{Rule: core.ThresholdRule{T: core.DefaultThresholdT(k)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	far, err := dist.PairedBump(n, eps)
	if err != nil {
		t.Fatal(err)
	}
	opts := stats.EstimateOptions{Seed: 20, Parallelism: 2}
	inProc, err := core.EstimateAcceptance(smp, far, 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	networked, err := core.EstimateAcceptance(cluster, far, 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inProc.P-networked.P) > 0.15 {
		t.Errorf("in-process %v vs networked %v", inProc.P, networked.P)
	}
}

func TestClusterContextCancellation(t *testing.T) {
	// A rule that blocks forever: cancellation must abort the round.
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	rule := core.RuleFunc(func(int, []int, uint64, *rand.Rand) (core.Message, error) {
		<-block
		return core.Accept, nil
	})
	c, err := NewCluster(ClusterConfig{
		K: 2, Q: 0, Rule: rule,
		Referee: core.BitReferee{Rule: core.ANDRule{}},
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := c.RunContext(ctx, uniformSampler(t, 4), testRand(5))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled round reported success")
		}
	case <-time.After(3 * time.Second):
		t.Error("cancellation did not abort the round")
	}
}

func TestClusterRunValidation(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		K: 1, Q: 1, Rule: acceptAllRule(), Referee: core.BitReferee{Rule: core.ANDRule{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(nil, testRand(0)); err == nil {
		t.Error("nil sampler accepted")
	}
	if _, err := c.Run(uniformSampler(t, 2), nil); err == nil {
		t.Error("nil rng accepted")
	}
	if c.Players() != 1 || c.MaxSamplesPerPlayer() != 1 {
		t.Error("accessors wrong")
	}
}

func TestMemTransportDialUnknown(t *testing.T) {
	m := NewMemTransport()
	if _, err := m.Dial(memAddr("nope")); err == nil {
		t.Error("dial to unknown listener succeeded")
	}
}

func TestMemTransportClosedListener(t *testing.T) {
	m := NewMemTransport()
	l, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Accept(); err == nil {
		t.Error("accept on closed listener succeeded")
	}
	if _, err := m.Dial(addr); err == nil {
		t.Error("dial to closed listener succeeded")
	}
	// Double close is safe.
	if err := l.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestRefereeServerValidation(t *testing.T) {
	if _, err := NewRefereeServer(0, core.BitReferee{Rule: core.ANDRule{}}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewRefereeServer(1, nil, 0); err == nil {
		t.Error("nil decision accepted")
	}
	if _, err := NewRefereeServer(1, core.BitReferee{Rule: core.ANDRule{}}, -1); err == nil {
		t.Error("negative timeout accepted")
	}
	s, err := NewRefereeServer(1, core.BitReferee{Rule: core.ANDRule{}}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunRound(context.Background(), nil, 0); err == nil {
		t.Error("nil listener accepted")
	}
}

func TestPlayerNodeValidation(t *testing.T) {
	s := uniformSampler(t, 4)
	if _, err := NewPlayerNode(0, -1, acceptAllRule(), s, 0); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := NewPlayerNode(0, 1, nil, s, 0); err == nil {
		t.Error("nil rule accepted")
	}
	if _, err := NewPlayerNode(0, 1, acceptAllRule(), nil, 0); err == nil {
		t.Error("nil sampler accepted")
	}
	node, err := NewPlayerNode(0, 1, acceptAllRule(), s, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.RunRound(nil, memAddr("x")); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := node.RunRound(NewMemTransport(), memAddr("x")); err == nil {
		t.Error("dial to nowhere succeeded")
	}
}

func TestRefereeRejectsMisbehavingNode(t *testing.T) {
	// A node claiming a different player id in its VOTE must abort the
	// round.
	m := NewMemTransport()
	l, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	server, err := NewRefereeServer(1, core.BitReferee{Rule: core.ANDRule{}}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := m.Dial(l.Addr())
		if err != nil {
			return
		}
		defer func() { _ = conn.Close() }()
		_ = WriteHello(conn, Hello{Player: 0, Bits: 1})
		if _, err := expectFrame[Round](conn, FrameRound); err != nil {
			return
		}
		_ = WriteVote(conn, Vote{Player: 99, Message: 1})
	}()
	if _, err := server.RunRound(context.Background(), l, 7); err == nil {
		t.Error("mismatched vote accepted")
	}
}

func TestRefereeRejectsBadBits(t *testing.T) {
	m := NewMemTransport()
	l, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	server, err := NewRefereeServer(1, core.BitReferee{Rule: core.ANDRule{}}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := m.Dial(l.Addr())
		if err != nil {
			return
		}
		defer func() { _ = conn.Close() }()
		_ = WriteHello(conn, Hello{Player: 0, Bits: 0})
	}()
	if _, err := server.RunRound(context.Background(), l, 7); err == nil {
		t.Error("zero-bit hello accepted")
	}
}

// countingTransport counts Dial calls, to prove no node goroutine ever
// touched the network.
type countingTransport struct {
	Transport
	mu    sync.Mutex
	dials int
}

func (c *countingTransport) Dial(addr net.Addr) (net.Conn, error) {
	c.mu.Lock()
	c.dials++
	c.mu.Unlock()
	return c.Transport.Dial(addr)
}

// zeroBitRule is constructible but invalid: Bits() = 0 makes
// NewPlayerNode fail.
type zeroBitRule struct{}

func (zeroBitRule) Message(int, []int, uint64, *rand.Rand) (core.Message, error) {
	return core.Accept, nil
}

func (zeroBitRule) Bits() int { return 0 }

func TestClusterBuildsAllNodesBeforeSpawning(t *testing.T) {
	// Regression: node construction used to be interleaved with goroutine
	// spawning, so a construction failure left earlier nodes running
	// against a live listener. Now a bad rule must fail the round before
	// any node dials.
	ct := &countingTransport{Transport: NewMemTransport()}
	c, err := NewCluster(ClusterConfig{
		K: 4, Q: 1, Rule: zeroBitRule{},
		Referee:   core.BitReferee{Rule: core.ANDRule{}},
		Transport: ct,
		Timeout:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(uniformSampler(t, 4), testRand(40)); err == nil {
		t.Fatal("cluster with a zero-bit rule ran")
	}
	if _, err := c.RunMany(context.Background(), uniformSampler(t, 4), testRand(41), 2); err == nil {
		t.Fatal("session with a zero-bit rule ran")
	}
	ct.mu.Lock()
	dials := ct.dials
	ct.mu.Unlock()
	if dials != 0 {
		t.Errorf("%d dial(s) happened before construction failed, want 0", dials)
	}
}
