package network

import (
	"context"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
)

// The chaos suite drives a quorum-mode cluster through a FaultTransport
// with a mix of injected faults — crashes, dropped dials, delays and
// payload corruption — and checks that every round still reaches the
// correct verdict with the damage accounted for in RoundStats.

// paritySampler samples a distribution whose support is all-even (accept
// under parityRule) or all-odd (reject) outcomes of [0, 4).
func paritySampler(t *testing.T, even bool) dist.Sampler {
	t.Helper()
	w := []float64{0, 1, 0, 1}
	if even {
		w = []float64{1, 0, 1, 0}
	}
	d, err := dist.FromWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dist.NewAliasSampler(d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// parityRule accepts iff the player's first sample is even, making the
// verdict deterministic for the parity samplers above.
func parityRule() core.LocalRule {
	return core.RuleFunc(func(_ int, samples []int, _ uint64, _ *rand.Rand) (core.Message, error) {
		if samples[0]%2 == 0 {
			return core.Accept, nil
		}
		return core.Reject, nil
	})
}

// chaosPlans injects, against k=16 players, every fault kind at once:
//   - player 1 crashes before its first vote (straggler from round 0 on),
//   - player 2 crashes before its second vote (straggler from round 1 on),
//   - player 3 is slowed on every frame but completes,
//   - player 4's second vote is corrupted on the wire, tripping the bits
//     check (dead from round 1 on),
//   - player 5's first dial is dropped and recovered by one retry,
//   - player 6 never manages to connect at all.
//
// Worst case that leaves 4 stragglers per round — strictly below the
// ThresholdRule{T: 6} rejection threshold, so verdicts stay correct.
func chaosPlans() map[uint32]FaultPlan {
	return map[uint32]FaultPlan{
		1: {CrashAtRound: 1},
		2: {CrashAtRound: 2},
		3: {Delay: 2 * time.Millisecond},
		4: {CorruptFrame: 3}, // frames: HELLO=1, vote r1=2, vote r2=3
		5: {DropDials: 1},
		6: {DropDials: 100},
	}
}

func chaosCluster(t *testing.T, ft *FaultTransport) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		K:         16,
		Q:         2,
		Rule:      parityRule(),
		Referee:   core.BitReferee{Rule: core.ThresholdRule{T: 6}},
		Transport: ft,
		Timeout:   500 * time.Millisecond,
		MinVotes:  11,
		// Absentees left at core.AbsenteeDefault: the ThresholdRule advises
		// AbsenteeAccept (a straggler cannot push rejections over T).
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterSurvivesChaos(t *testing.T) {
	const rounds = 3
	for _, tt := range []struct {
		name string
		even bool
		want bool
	}{
		{name: "all-even accepts", even: true, want: true},
		{name: "all-odd rejects", even: false, want: false},
	} {
		t.Run(tt.name, func(t *testing.T) {
			ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{
				Seed:  99,
				Plans: chaosPlans(),
			})
			if err != nil {
				t.Fatal(err)
			}
			c := chaosCluster(t, ft)
			verdicts, stats, err := c.RunManyStats(context.Background(), paritySampler(t, tt.even), testRand(31), rounds)
			if err != nil {
				t.Fatalf("chaos session failed: %v", err)
			}
			if len(verdicts) != rounds || len(stats) != rounds {
				t.Fatalf("got %d verdicts, %d stats, want %d each", len(verdicts), len(stats), rounds)
			}
			for i, v := range verdicts {
				if v != tt.want {
					t.Errorf("round %d verdict = %v, want %v", i, v, tt.want)
				}
			}
			// Round 0: players 1 (crashed) and 6 (never connected) are out.
			// Round 1 on: players 2 (crashed) and 4 (corrupted) drop too.
			wantStragglers := []int{2, 4, 4}
			for i, s := range stats {
				if s.Round != i {
					t.Errorf("stats[%d].Round = %d", i, s.Round)
				}
				if s.Stragglers != wantStragglers[i] {
					t.Errorf("round %d stragglers = %d, want %d", i, s.Stragglers, wantStragglers[i])
				}
				if s.Votes != 16-wantStragglers[i] {
					t.Errorf("round %d votes = %d, want %d", i, s.Votes, 16-wantStragglers[i])
				}
				if s.Verdict != tt.want {
					t.Errorf("round %d stats verdict = %v, want %v", i, s.Verdict, tt.want)
				}
				if s.Wall <= 0 {
					t.Errorf("round %d wall time not recorded", i)
				}
			}
			// Player 5 burned one retry recovering its dropped dial; player 6
			// exhausted its default budget of two retries in vain.
			if stats[0].Retries != 3 {
				t.Errorf("Retries = %d, want 3", stats[0].Retries)
			}
			fs := ft.Stats()
			if fs.Crashes != 2 || fs.FramesCorrupted != 1 || fs.DialsDropped != 4 {
				t.Errorf("fault stats = %+v, want 2 crashes, 1 corruption, 4 dropped dials", fs)
			}
		})
	}
}

func TestClusterChaosSingleRound(t *testing.T) {
	// The single-round path tolerates the same chaos.
	ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{
		Seed:  7,
		Plans: chaosPlans(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := chaosCluster(t, ft)
	accept, stats, err := c.RunStats(context.Background(), paritySampler(t, true), testRand(32))
	if err != nil {
		t.Fatalf("chaos round failed: %v", err)
	}
	if !accept {
		t.Error("all-even chaos round rejected")
	}
	if stats.Votes != 14 || stats.Stragglers != 2 {
		t.Errorf("stats = %+v, want 14 votes, 2 stragglers", stats)
	}
}

func TestClusterQuorumNotMet(t *testing.T) {
	// Too many players never connect: the round fails with a quorum error
	// instead of a hang or a silent verdict.
	plans := make(map[uint32]FaultPlan)
	for p := uint32(0); p < 8; p++ {
		plans[p] = FaultPlan{DropDials: 100}
	}
	ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{Plans: plans})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		K:         16,
		Q:         1,
		Rule:      acceptAllRule(),
		Referee:   core.BitReferee{Rule: core.ThresholdRule{T: 6}},
		Transport: ft,
		Timeout:   300 * time.Millisecond,
		MinVotes:  11,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.RunStats(context.Background(), uniformSampler(t, 4), testRand(33))
	if err == nil || !strings.Contains(err.Error(), "quorum not met") {
		t.Errorf("err = %v, want quorum-not-met error", err)
	}
}

func TestClusterStrictModeStillFailsOnCrash(t *testing.T) {
	// Without MinVotes the seed semantics stand: any crash aborts.
	ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{
		Plans: map[uint32]FaultPlan{0: {CrashAtRound: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		K:         4,
		Q:         1,
		Rule:      acceptAllRule(),
		Referee:   andReferee(),
		Transport: ft,
		Timeout:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(uniformSampler(t, 4), testRand(34)); err == nil {
		t.Error("strict cluster tolerated a crash")
	}
}
