package network

import (
	"fmt"
	"testing"
)

func TestTopologyValidate(t *testing.T) {
	bad := []struct {
		name string
		topo Topology
		k    int
	}{
		{"negative shards", Topology{Shards: -1}, 4},
		{"more shards than players", Topology{Shards: 5}, 4},
		{"weights length mismatch", Topology{Shards: 2, Weights: []int{1}}, 4},
		{"zero weight", Topology{Shards: 2, Weights: []int{1, 0}}, 4},
		{"negative weight", Topology{Shards: 2, Weights: []int{1, -3}}, 4},
	}
	for _, tc := range bad {
		if err := tc.topo.validate(tc.k); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	good := []struct {
		name string
		topo Topology
		k    int
	}{
		{"flat zero value", Topology{}, 4},
		{"one shard", Topology{Shards: 1}, 4},
		{"shards equal players", Topology{Shards: 4}, 4},
		{"weighted", Topology{Shards: 2, Weights: []int{3, 1}}, 8},
		{"seeded", Topology{Shards: 2, Seed: 9}, 8},
	}
	for _, tc := range good {
		if err := tc.topo.validate(tc.k); err != nil {
			t.Errorf("%s rejected: %v", tc.name, err)
		}
	}
	if (Topology{}).enabled() || (Topology{Shards: 1}).enabled() {
		t.Error("flat topology reports enabled")
	}
	if !(Topology{Shards: 2}).enabled() {
		t.Error("two-shard topology reports disabled")
	}
}

func TestTopologyQuotas(t *testing.T) {
	cases := []struct {
		topo Topology
		k    int
		want []int
	}{
		// Uniform weights: players split as evenly as possible, earlier
		// shards absorbing the remainder.
		{Topology{Shards: 4}, 16, []int{4, 4, 4, 4}},
		{Topology{Shards: 4}, 18, []int{5, 5, 4, 4}},
		{Topology{Shards: 3}, 4, []int{2, 1, 1}},
		// The one-player floor: a shard never goes empty even when the
		// weights say it should round down to zero.
		{Topology{Shards: 3, Weights: []int{100, 1, 1}}, 4, []int{2, 1, 1}},
		// Weighted proportionality: a 3:1 weight ratio yields a 3:1 shard
		// ratio once the floor seats are dealt.
		{Topology{Shards: 2, Weights: []int{3, 1}}, 10, []int{7, 3}},
		// Largest-remainder tie goes to the lower index.
		{Topology{Shards: 2, Weights: []int{1, 1}}, 3, []int{2, 1}},
	}
	for _, tc := range cases {
		got := tc.topo.quotas(tc.k)
		sum := 0
		for _, n := range got {
			sum += n
		}
		if sum != tc.k {
			t.Errorf("quotas(%+v, k=%d) sum to %d, want %d", tc.topo, tc.k, sum, tc.k)
		}
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("quotas(%+v, k=%d) = %v, want %v", tc.topo, tc.k, got, tc.want)
		}
	}
}

// assertPartition checks the universal invariants of any partition:
// shards are disjoint, cover exactly the players 0..k-1, members are
// ascending within each shard, and shardOf inverts membership.
func assertPartition(t *testing.T, topo Topology, k int, shards [][]uint32) {
	t.Helper()
	if len(shards) != topo.Shards {
		t.Fatalf("%d shards, want %d", len(shards), topo.Shards)
	}
	seen := make(map[uint32]int)
	for i, members := range shards {
		if len(members) == 0 {
			t.Fatalf("shard %d is empty", i)
		}
		for j, p := range members {
			if j > 0 && members[j-1] >= p {
				t.Fatalf("shard %d members not ascending: %v", i, members)
			}
			if prev, dup := seen[p]; dup {
				t.Fatalf("player %d in shards %d and %d", p, prev, i)
			}
			seen[p] = i
			if got := topo.shardOf(shards, p); got != i {
				t.Fatalf("shardOf(%d) = %d, want %d", p, got, i)
			}
		}
	}
	if len(seen) != k {
		t.Fatalf("partition covers %d players, want %d", len(seen), k)
	}
	if topo.shardOf(shards, uint32(k)) != -1 {
		t.Fatal("shardOf accepted a player outside the partition")
	}
}

func TestTopologyPartitionContiguous(t *testing.T) {
	topo := Topology{Shards: 3}
	shards := topo.Partition(8)
	assertPartition(t, topo, 8, shards)
	// Seed zero keeps contiguous ranges: [0..2], [3..5], [6..7].
	want := [][]uint32{{0, 1, 2}, {3, 4, 5}, {6, 7}}
	for i := range want {
		if fmt.Sprint(shards[i]) != fmt.Sprint(want[i]) {
			t.Errorf("shard %d = %v, want %v", i, shards[i], want[i])
		}
	}
}

func TestTopologyPartitionSeeded(t *testing.T) {
	topo := Topology{Shards: 4, Seed: 0xabcdef}
	first := topo.Partition(32)
	assertPartition(t, topo, 32, first)
	// The same topology partitions identically every time — the router is
	// a pure function that players, aggregators and the root all evaluate
	// independently.
	second := topo.Partition(32)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("seeded partition not deterministic: %v vs %v", first, second)
	}
	// A different seed moves at least one player.
	other := Topology{Shards: 4, Seed: 0xfedcba}.Partition(32)
	if fmt.Sprint(first) == fmt.Sprint(other) {
		t.Error("distinct seeds produced identical partitions")
	}
	// The shuffle spreads membership: with 32 players over 4 shards at
	// this seed, at least one shard must not be a contiguous range.
	contiguous := 0
	for _, members := range first {
		if members[len(members)-1]-members[0] == uint32(len(members)-1) {
			contiguous++
		}
	}
	if contiguous == len(first) {
		t.Error("seeded partition degenerated to contiguous ranges")
	}
}

func TestTopologyPartitionWeighted(t *testing.T) {
	topo := Topology{Shards: 2, Weights: []int{3, 1}}
	shards := topo.Partition(12)
	assertPartition(t, topo, 12, shards)
	if len(shards[0]) != 9 || len(shards[1]) != 3 {
		t.Errorf("weighted shard sizes %d/%d, want 9/3", len(shards[0]), len(shards[1]))
	}
}
